// Differential property tests for the fallback ladder: over seeded random
// expression scripts and shrinking synthetic device capacities, the engine
// must land on the cheapest (fastest) strategy whose planned high-water
// fits the capacity — and every rung it lands on must produce a field
// bit-identical to a fault-free roundtrip reference. The planner's
// estimates are bit-exact against measured high-water (test_planner), so
// the expected landing rung is computable in closed form: the first ladder
// entry whose estimate fits.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "mesh/generators.hpp"
#include "runtime/fallback.hpp"
#include "runtime/planner.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

/// Random expression scripts over u, v, w. Roughly every other script also
/// takes a gradient; some take gradients of *computed* values, which the
/// streamed rung cannot execute (it must be skipped, not crash the chain).
std::string random_script(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> coin(0, 1);
  std::ostringstream os;

  std::vector<std::string> scalars{"u", "v", "w"};
  if (coin(rng) == 1) {
    os << "g = grad3d(u, dims, x, y, z)\n";
    std::uniform_int_distribution<int> comp(0, 2);
    os << "gc = g[" << comp(rng) << "]\n";
    scalars.push_back("gc");
  }

  const auto pick = [&] {
    std::uniform_int_distribution<std::size_t> d(0, scalars.size() - 1);
    return scalars[d(rng)];
  };
  const char* ops[] = {" + ", " - ", " * "};
  std::uniform_int_distribution<int> op(0, 2);
  std::uniform_int_distribution<int> statements(1, 4);
  const int n_statements = statements(rng);
  for (int s = 0; s < n_statements; ++s) {
    const std::string name = "t" + std::to_string(s);
    os << name << " = " << pick() << ops[op(rng)] << pick() << "\n";
    scalars.push_back(name);
  }
  // Occasionally a gradient of a computed value: a partitioned pipeline
  // that fusion handles but streamed rejects with KernelError.
  if (coin(rng) == 1) {
    os << "h = grad3d(t0, dims, x, y, z)\n";
    os << "result = h[0] + t" << (n_statements - 1) << "\n";
  } else {
    os << "result = t" << (n_statements - 1) << " + 0.0\n";
  }
  return os.str();
}

void expect_bitwise_equal(const std::vector<float>& got,
                          const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const bool nan = std::isnan(want[i]);
    ASSERT_EQ(std::isnan(got[i]), nan) << "cell " << i;
    if (!nan) ASSERT_EQ(got[i], want[i]) << "cell " << i;
  }
}

class FallbackChainTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FallbackChainTest, LandsOnCheapestRungThatFitsAndMatchesReference) {
  const std::string script = random_script(GetParam());
  SCOPED_TRACE(script);

  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({6, 5, 4});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh, GetParam());
  const std::size_t cells = mesh.cell_count();

  const auto bind = [&](Engine& engine) {
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
  };

  // Reference: the last (always-feasible) rung on an unconstrained device.
  std::vector<float> reference;
  {
    vcl::Device device(vcl::xeon_x5660_scaled());
    Engine engine(device, {StrategyKind::roundtrip, {}});
    bind(engine);
    reference = engine.evaluate(script).values;
  }

  // Planned high-water per rung; streamed is absent where unsupported.
  dataflow::Network network(dataflow::build_network(script));
  runtime::FieldBindings bindings;
  bindings.bind_mesh(mesh);
  bindings.bind("u", field.u);
  bindings.bind("v", field.v);
  bindings.bind("w", field.w);
  std::map<StrategyKind, std::size_t> estimate;
  for (const StrategyKind kind : runtime::kMemoryLadder) {
    try {
      estimate[kind] =
          runtime::estimate_high_water(network, bindings, cells, kind);
    } catch (const KernelError&) {
      // Unsupported rung: the chain must skip it.
    }
  }
  ASSERT_TRUE(estimate.count(StrategyKind::roundtrip));

  const auto expected_landing =
      [&](std::size_t cap) -> std::optional<StrategyKind> {
    for (const StrategyKind kind : runtime::kMemoryLadder) {
      const auto it = estimate.find(kind);
      if (it != estimate.end() && it->second <= cap) return kind;
    }
    return std::nullopt;
  };

  // Shrink the capacity through every rung's exact high-water. Capacities
  // are tested at equality, so the planner's bit-exactness is load-bearing:
  // one byte less and the rung must fail over.
  for (const auto& [rung, cap] : estimate) {
    const std::optional<StrategyKind> want = expected_landing(cap);
    ASSERT_TRUE(want.has_value());
    SCOPED_TRACE("capacity = " + std::to_string(cap) + " (" +
                 runtime::strategy_name(rung) + " high-water)");

    vcl::Device device(vcl::xeon_x5660_scaled());
    vcl::FaultPlan plan;
    plan.synthetic_capacity_bytes = cap;
    device.fault().arm(plan);
    EngineOptions options;
    options.strategy = StrategyKind::fusion;
    options.fallback.enabled = true;
    Engine engine(device, options);
    bind(engine);

    const EvaluationReport report = engine.evaluate(script);
    EXPECT_EQ(report.strategy, runtime::strategy_name(*want));
    // One degradation record per rung tried and abandoned before landing.
    EXPECT_EQ(report.degradations.size(), runtime::ladder_position(*want));
    EXPECT_LE(report.memory_high_water_bytes, cap);
    expect_bitwise_equal(report.values, reference);
    EXPECT_EQ(device.memory().in_use(), 0u);
  }

  // Below every rung's need, the whole ladder fails over and the final
  // rung's DeviceOutOfMemory propagates.
  std::size_t min_est = SIZE_MAX;
  for (const auto& [kind, est] : estimate) min_est = std::min(min_est, est);
  if (min_est > 1) {
    vcl::Device device(vcl::xeon_x5660_scaled());
    vcl::FaultPlan plan;
    plan.synthetic_capacity_bytes = min_est - 1;
    device.fault().arm(plan);
    EngineOptions options;
    options.strategy = StrategyKind::fusion;
    options.fallback.enabled = true;
    Engine engine(device, options);
    bind(engine);
    EXPECT_THROW(engine.evaluate(script), DeviceOutOfMemory);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScripts, FallbackChainTest,
                         ::testing::Range(0u, 12u));

TEST(FallbackChain, QCriterionDegradesUnderTheAcceptanceCapacity) {
  // The issue's acceptance scenario: a synthetic capacity below the
  // Q-criterion fusion high-water forces a degraded — but successful and
  // bit-exact — evaluation, with the degradation listed in the report.
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  const auto bind = [&](Engine& engine) {
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
  };

  std::vector<float> reference;
  std::size_t fusion_high_water = 0;
  {
    vcl::Device device(vcl::xeon_x5660_scaled());
    Engine engine(device, {StrategyKind::fusion, {}});
    bind(engine);
    const EvaluationReport clean = engine.evaluate(expressions::kQCriterion);
    reference = clean.values;
    fusion_high_water = clean.memory_high_water_bytes;
  }

  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.synthetic_capacity_bytes = fusion_high_water - 1;
  device.fault().arm(plan);
  EngineOptions options;
  options.strategy = StrategyKind::fusion;
  options.fallback.enabled = true;
  Engine engine(device, options);
  bind(engine);

  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  EXPECT_NE(report.strategy, "fusion");
  ASSERT_FALSE(report.degradations.empty());
  EXPECT_EQ(report.degradations[0].from, "fusion");
  EXPECT_EQ(report.values, reference);
  EXPECT_LE(report.memory_high_water_bytes, fusion_high_water - 1);
}

}  // namespace
