// Tests for the host interface (dfg::Engine): reports, in-situ reuse across
// time steps, element-count inference and error behaviour.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "mesh/generators.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

struct EngineFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({6, 6, 6});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device{vcl::xeon_x5660_scaled()};

  Engine make(StrategyKind kind = StrategyKind::fusion) {
    Engine engine(device, {kind, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine;
  }
};

TEST(Engine, ReportCarriesProfilingSnapshot) {
  EngineFixture fx;
  Engine engine = fx.make(StrategyKind::staged);
  const EvaluationReport report =
      engine.evaluate(expressions::kVelocityMagnitude);
  EXPECT_EQ(report.strategy, "staged");
  EXPECT_EQ(report.elements, fx.mesh.cell_count());
  EXPECT_EQ(report.dev_writes, 3u);
  EXPECT_EQ(report.dev_reads, 1u);
  EXPECT_EQ(report.kernel_execs, 6u);
  EXPECT_GT(report.sim_seconds, 0.0);
  EXPECT_GE(report.wall_seconds, 0.0);
  EXPECT_GT(report.memory_high_water_bytes, 0u);
}

TEST(Engine, ReportIsPerEvaluationNotCumulative) {
  EngineFixture fx;
  Engine engine = fx.make(StrategyKind::fusion);
  const auto first = engine.evaluate(expressions::kVelocityMagnitude);
  const auto second = engine.evaluate(expressions::kVelocityMagnitude);
  EXPECT_EQ(first.dev_writes, second.dev_writes);
  EXPECT_EQ(first.kernel_execs, second.kernel_execs);
  EXPECT_EQ(second.kernel_execs, 1u);
}

TEST(Engine, NetworkScriptDumpIsInspectable) {
  EngineFixture fx;
  Engine engine = fx.make();
  const auto report = engine.evaluate(expressions::kVelocityMagnitude);
  EXPECT_NE(report.network_script.find("add_field_source(\"u\")"),
            std::string::npos);
  EXPECT_NE(report.network_script.find("add_filter(\"sqrt\""),
            std::string::npos);
}

TEST(Engine, FusionReportsGeneratedKernelSource) {
  EngineFixture fx;
  Engine engine = fx.make(StrategyKind::fusion);
  const auto report = engine.evaluate(expressions::kVorticityMagnitude);
  EXPECT_NE(report.kernel_source.find("__kernel"), std::string::npos);
  EXPECT_NE(report.kernel_source.find("grad3d"), std::string::npos);
}

TEST(Engine, NonFusionStrategiesReportNoKernelSource) {
  EngineFixture fx;
  Engine engine = fx.make(StrategyKind::staged);
  const auto report = engine.evaluate(expressions::kVelocityMagnitude);
  EXPECT_TRUE(report.kernel_source.empty());
}

TEST(Engine, RebindingSimulatesTimeSteps) {
  // In-situ usage: the host rebinds per-time-step arrays and re-evaluates.
  EngineFixture fx;
  Engine engine = fx.make();
  const auto t0 = engine.evaluate(expressions::kVelocityMagnitude);

  const mesh::VectorField step2 = mesh::rayleigh_taylor_flow(fx.mesh, 99);
  engine.bind("u", step2.u);
  engine.bind("v", step2.v);
  engine.bind("w", step2.w);
  const auto t1 = engine.evaluate(expressions::kVelocityMagnitude);
  EXPECT_NE(t0.values, t1.values);
}

TEST(Engine, StrategySwitchMidSession) {
  EngineFixture fx;
  Engine engine = fx.make(StrategyKind::roundtrip);
  const auto a = engine.evaluate(expressions::kVelocityMagnitude);
  engine.set_strategy(StrategyKind::fusion);
  const auto b = engine.evaluate(expressions::kVelocityMagnitude);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(b.kernel_execs, 1u);
}

TEST(Engine, InfersElementsFromBoundFieldWithoutMesh) {
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine(device);
  const std::vector<float> u{1.0f, 2.0f, 3.0f, 4.0f};
  engine.bind("u", u);
  const auto report = engine.evaluate("r = u * u");
  ASSERT_EQ(report.values.size(), 4u);
  EXPECT_FLOAT_EQ(report.values[3], 16.0f);
}

TEST(Engine, PureConstantExpressionNeedsExplicitElements) {
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine(device);
  EXPECT_THROW(engine.evaluate("r = 1.0 + 2.0"), Error);
  const auto report = engine.evaluate("r = 1.0 + 2.0", 5);
  ASSERT_EQ(report.values.size(), 5u);
  EXPECT_FLOAT_EQ(report.values[4], 3.0f);
}

TEST(Engine, ZeroElementsRejected) {
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine(device);
  EXPECT_THROW(engine.evaluate("r = 1.0", 0), Error);
}

TEST(Engine, ParseErrorsPropagateWithPositions) {
  EngineFixture fx;
  Engine engine = fx.make();
  EXPECT_THROW(engine.evaluate("v_mag = sqrt(u*u +"), ParseError);
}

TEST(Engine, OutputNameIsLastAssignment) {
  EngineFixture fx;
  Engine engine = fx.make();
  EXPECT_EQ(engine.evaluate("a = u\nb = a * a").output_name, "b");
}

TEST(Engine, IntroConditionalExpressionRuns) {
  // The paper's introduction example, end to end.
  EngineFixture fx;
  Engine engine = fx.make();
  engine.bind("b", fx.field.u);
  engine.bind("c", fx.field.v);
  const auto report = engine.evaluate(expressions::kIntroConditional);
  ASSERT_EQ(report.values.size(), fx.mesh.cell_count());
  EXPECT_EQ(report.output_name, "a");
}

TEST(Engine, SpecOptionsControlCse) {
  EngineFixture fx;
  EngineOptions options;
  options.strategy = StrategyKind::staged;
  options.spec_options.cse = false;
  Engine engine(fx.device, options);
  engine.bind_mesh(fx.mesh);
  engine.bind("u", fx.field.u);
  engine.bind("v", fx.field.v);
  engine.bind("w", fx.field.w);
  const auto no_cse = engine.evaluate(expressions::kQCriterion);

  Engine engine2 = fx.make(StrategyKind::staged);
  const auto with_cse = engine2.evaluate(expressions::kQCriterion);
  EXPECT_GT(no_cse.kernel_execs, with_cse.kernel_execs)
      << "CSE must reduce kernel dispatches";
  // Same numeric result either way.
  EXPECT_EQ(no_cse.values, with_cse.values);
}

}  // namespace
