// Tests for the trace export and the network-script round trip.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "dataflow/script_io.hpp"
#include "mesh/generators.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"
#include "vcl/trace.hpp"

namespace {

using namespace dfg;

// ----- Script round trip -----

TEST(ScriptIo, RoundTripPreservesStructure) {
  const dataflow::NetworkSpec original =
      dataflow::build_network(expressions::kQCriterion);
  const dataflow::NetworkSpec reparsed =
      dataflow::parse_script(original.to_script());
  ASSERT_EQ(reparsed.nodes().size(), original.nodes().size());
  EXPECT_EQ(reparsed.to_script(), original.to_script());
}

TEST(ScriptIo, RoundTripPreservesLabelsAndOutput) {
  const dataflow::NetworkSpec original =
      dataflow::build_network("speed = sqrt(u*u)\nresult = speed + 1.0");
  const dataflow::NetworkSpec reparsed =
      dataflow::parse_script(original.to_script());
  EXPECT_EQ(reparsed.node(reparsed.output_id()).label, "result");
}

TEST(ScriptIo, ReloadedNetworkEvaluatesIdentically) {
  const mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({6, 6, 6});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device(vcl::xeon_x5660_scaled());

  runtime::FieldBindings bindings;
  bindings.bind_mesh(mesh);
  bindings.bind("u", field.u);
  bindings.bind("v", field.v);
  bindings.bind("w", field.w);

  const dataflow::NetworkSpec original =
      dataflow::build_network(expressions::kVorticityMagnitude);
  const std::string script = original.to_script();

  dataflow::Network net_a(dataflow::build_network(
      expressions::kVorticityMagnitude));
  dataflow::Network net_b{dataflow::parse_script(script)};
  vcl::ProfilingLog log;
  const auto strategy = runtime::make_strategy(runtime::StrategyKind::fusion);
  const auto a = strategy->execute(net_a, bindings, mesh.cell_count(),
                                   device, log);
  const auto b = strategy->execute(net_b, bindings, mesh.cell_count(),
                                   device, log);
  EXPECT_EQ(a, b);
}

TEST(ScriptIo, HandWrittenScriptWithDecompose) {
  const char* script = R"(
net = NetworkSpec()
n0 = net.add_field_source("u")
n1 = net.add_field_source("dims")
n2 = net.add_field_source("x")
n3 = net.add_field_source("y")
n4 = net.add_field_source("z")
n5 = net.add_filter("grad3d", [n0, n1, n2, n3, n4])  # du
n6 = net.add_filter("decompose", [n5], component=2)  # dudz
net.set_output(n6)
)";
  const dataflow::NetworkSpec spec = dataflow::parse_script(script);
  EXPECT_EQ(spec.node(spec.output_id()).kind, "decompose");
  EXPECT_EQ(spec.node(spec.output_id()).component, 2);
  EXPECT_EQ(spec.node(spec.output_id()).label, "dudz");
}

TEST(ScriptIo, MalformedScriptsNameTheLine) {
  const auto expect_error = [](const char* script, const char* fragment) {
    try {
      dataflow::parse_script(script);
      FAIL() << "expected NetworkError for: " << script;
    } catch (const NetworkError& err) {
      EXPECT_NE(std::string(err.what()).find(fragment), std::string::npos)
          << err.what();
    }
  };
  expect_error("n0 = net.add_field_source(u)", "quoted");
  expect_error("n0 = net.frobnicate()", "unrecognised");
  expect_error("n0 = net.add_filter(\"add\", [n5, n6])", "unknown node");
  expect_error("bogus line without equals", "assignment");
  expect_error("net.set_output(n9)", "unknown node");
}

// ----- Chrome trace export -----

TEST(Trace, ContainsAllEventsOnTwoTracks) {
  const mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({6, 6, 6});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine(device, {runtime::StrategyKind::staged, {}});
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);
  engine.evaluate(expressions::kVelocityMagnitude);

  const std::string trace =
      vcl::to_chrome_trace(engine.log(), {"test device", 3});
  // 3 writes + 6 kernels + 1 read = 10 duration events.
  std::size_t events = 0;
  for (std::size_t p = trace.find("\"ph\":\"X\""); p != std::string::npos;
       p = trace.find("\"ph\":\"X\"", p + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 10u);
  EXPECT_NE(trace.find("\"name\":\"test device\""), std::string::npos);
  EXPECT_NE(trace.find("\"compute\""), std::string::npos);
  EXPECT_NE(trace.find("\"copy\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"K-Exe\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"Dev-W\""), std::string::npos);
  // Valid JSON shape: balanced braces/brackets at the top level.
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace[trace.size() - 2], '}');
}

TEST(Trace, TimelineIsMonotonic) {
  vcl::ProfilingLog log;
  log.record({vcl::EventKind::host_to_device, "a", 100, 0, 0.25, 0.0});
  log.record({vcl::EventKind::kernel_exec, "k", 100, 10, 0.5, 0.0});
  log.record({vcl::EventKind::device_to_host, "b", 100, 0, 0.25, 0.0});
  const std::string trace = vcl::to_chrome_trace(log);
  // Timestamps in microseconds: 0, 250000, 750000.
  EXPECT_NE(trace.find("\"ts\":0,"), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":250000,"), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":750000,"), std::string::npos);
}

TEST(Trace, LabelsEscaped) {
  vcl::ProfilingLog log;
  log.record({vcl::EventKind::kernel_exec, "weird \"label\"\nline", 0, 0,
              0.1, 0.0});
  const std::string trace = vcl::to_chrome_trace(log);
  EXPECT_NE(trace.find("weird \\\"label\\\"\\nline"), std::string::npos);
}

TEST(Trace, EmptyLogStillValid) {
  vcl::ProfilingLog log;
  const std::string trace = vcl::to_chrome_trace(log);
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);
}

}  // namespace
