// Watchdog + integrity tests: the deterministic defenses against the three
// new fault families. Slowdowns below the deadline complete (slowly),
// severe slowdowns and hangs are abandoned at the deadline as T-Out events
// and retried, bit-flipped transfers are caught by the end-to-end checksum
// before a corrupted value can propagate, and every defensive layer is a
// pure observer on a healthy device — fault-free runs must produce event
// streams byte-identical to a policy-off run (the paper's Table II counts).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "mesh/generators.hpp"
#include "runtime/fallback.hpp"
#include "runtime/strategy.hpp"
#include "support/checksum.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"
#include "vcl/trace.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

/// Writes `trace` under DFGEN_TRACE_DIR (when set) so CI can upload the
/// fault-injection traces as artifacts; a no-op for local runs.
void dump_trace_artifact(const std::string& name, const std::string& trace) {
  const std::string dir = support::env::get_string("DFGEN_TRACE_DIR", "");
  if (dir.empty()) return;
  std::filesystem::create_directories(dir);
  std::ofstream out(dir + "/" + name + ".trace.json");
  out << trace;
}

struct WatchdogFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  // Declared before `reference`: clean_reference() assigns it.
  double clean_sim_seconds = 0.0;
  std::vector<float> reference = clean_reference();

  std::vector<float> clean_reference() {
    vcl::Device device(vcl::xeon_x5660_scaled());
    EngineOptions options;
    options.strategy = StrategyKind::fusion;
    Engine engine(device, options);
    bind(engine);
    const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
    clean_sim_seconds = report.sim_seconds;
    return report.values;
  }

  void bind(Engine& engine) {
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
  }

  Engine make(vcl::Device& device, EngineOptions options) {
    Engine engine(device, options);
    bind(engine);
    return engine;
  }

  EngineOptions resilient(StrategyKind kind = StrategyKind::fusion) {
    EngineOptions options;
    options.strategy = kind;
    options.fallback.enabled = true;
    return options;
  }
};

// ---------------------------------------------------------------- slowdown

TEST(Watchdog, MildSlowdownCompletesSlowlyWithoutTimeouts) {
  WatchdogFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.slow_command_index = 1;  // every command
  plan.slowdown_factor = 4.0;   // under the default deadline factor of 8
  device.fault().arm(plan);
  Engine engine = fx.make(device, fx.resilient());

  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.command_timeouts, 0u);
  EXPECT_EQ(report.checksum_mismatches, 0u);
  EXPECT_TRUE(report.degradations.empty());
  EXPECT_EQ(report.values, fx.reference)
      << "a slow device must still compute the exact field";
  // Every command is charged 4x its estimate.
  EXPECT_NEAR(report.sim_seconds, 4.0 * fx.clean_sim_seconds,
              1e-9 * fx.clean_sim_seconds);
}

TEST(Watchdog, SevereSlowdownTimesOutEveryRungAndEscapes) {
  WatchdogFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.slow_command_index = 1;
  plan.slowdown_factor = 50.0;  // far past the deadline factor of 8
  device.fault().arm(plan);
  Engine engine = fx.make(device, fx.resilient());

  // The slowdown follows the device down the whole ladder, so even the
  // resilient policy cannot complete: DeviceTimeout escapes from every
  // rung. A slowdown is a device-wide condition, so the watchdog fails
  // fast instead of burning its retry budget — one bounded deadline
  // charge per rung, four in total.
  EXPECT_THROW(engine.evaluate(expressions::kQCriterion), DeviceTimeout);
  EXPECT_EQ(engine.log().count(vcl::EventKind::timeout), 4u);
  dump_trace_artifact("severe_slowdown", vcl::to_chrome_trace(engine.log()));
}

TEST(Watchdog, DisabledWatchdogLetsSlowCommandsFinish) {
  WatchdogFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.slow_command_index = 1;
  plan.slowdown_factor = 50.0;
  device.fault().arm(plan);
  EngineOptions options = fx.resilient();
  options.fallback.deadline_factor = 0.0;  // watchdog off
  Engine engine = fx.make(device, options);

  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.command_timeouts, 0u);
  EXPECT_EQ(report.values, fx.reference);
  EXPECT_NEAR(report.sim_seconds, 50.0 * fx.clean_sim_seconds,
              1e-9 * fx.clean_sim_seconds);
}

// -------------------------------------------------------------------- hang

TEST(Watchdog, HangIsAbandonedAtTheDeadlineAndAbsorbedByOneRetry) {
  WatchdogFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.hang_command_index = 2;  // the second command never completes
  device.fault().arm(plan);
  Engine engine = fx.make(device, fx.resilient());

  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  // The retry is a fresh command (index 3), so one timeout absorbs it.
  EXPECT_EQ(report.command_timeouts, 1u);
  EXPECT_TRUE(report.degradations.empty());
  EXPECT_EQ(report.values, fx.reference);
  // The deadline was charged to the timeline: the device was tied up.
  EXPECT_GT(report.sim_seconds, fx.clean_sim_seconds);
}

TEST(Watchdog, ExhaustedTimeoutsDegradeOneRung) {
  WatchdogFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.hang_command_index = 1;
  device.fault().arm(plan);
  EngineOptions options = fx.resilient();
  options.fallback.retry.max_attempts = 1;  // no second chance
  Engine engine = fx.make(device, options);

  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.strategy, "streamed");
  ASSERT_EQ(report.degradations.size(), 1u);
  EXPECT_NE(report.degradations[0].reason.find("deadline"),
            std::string::npos);
  EXPECT_EQ(report.command_timeouts, 1u);
  EXPECT_EQ(report.values, fx.reference);
}

TEST(Watchdog, HangTimesOutEvenWithSlowdownDetectionDisabled) {
  WatchdogFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.hang_command_index = 2;
  device.fault().arm(plan);
  EngineOptions options = fx.resilient();
  options.fallback.deadline_factor = 0.0;
  Engine engine = fx.make(device, options);

  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.command_timeouts, 1u);
  EXPECT_EQ(report.values, fx.reference);
}

// ---------------------------------------------------------------- bit-flip

TEST(Integrity, FlippedWriteIsDetectedAndReExecuted) {
  WatchdogFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.corrupt_write_index = 1;  // first upload corrupted once
  device.fault().arm(plan);
  Engine engine = fx.make(device, fx.resilient());

  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.checksum_mismatches, 1u);
  EXPECT_GE(report.injected_faults, 1u);  // the bit-flip is a fault event
  EXPECT_TRUE(report.degradations.empty());
  EXPECT_EQ(report.values, fx.reference)
      << "the corrupted word must never reach the derived field";
  dump_trace_artifact("bit_flip_write", vcl::to_chrome_trace(engine.log()));
}

TEST(Integrity, FlippedReadbackIsDetectedAndReExecuted) {
  WatchdogFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.corrupt_read_index = 1;  // the result transfer corrupted once
  device.fault().arm(plan);
  Engine engine = fx.make(device, fx.resilient());

  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.checksum_mismatches, 1u);
  EXPECT_EQ(report.values, fx.reference);
}

TEST(Integrity, PersistentCorruptionEscalatesAsDataCorruption) {
  WatchdogFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.corrupt_write_index = 1;
  plan.corrupt_count = 3;  // defeats the three-attempt budget
  device.fault().arm(plan);
  Engine engine = fx.make(device, fx.resilient());

  // Degrading cannot fix a corrupting link, so the fallback policy must
  // not mask it: the error reaches the caller (the distributed engine
  // re-runs the block and quarantines on repeat).
  EXPECT_THROW(engine.evaluate(expressions::kQCriterion), DataCorruption);
  EXPECT_EQ(engine.log().count(vcl::EventKind::integrity), 3u);
}

TEST(Integrity, EveryWordOfEveryTransferIsCovered) {
  // The queue checksums with stride 1, so any single flipped word — at any
  // extent — changes the digest. Spot-check the checksum itself.
  std::vector<float> data(1000, 1.5f);
  const std::uint64_t clean = support::checksum_floats(data, 42);
  for (const std::size_t word : {0u, 1u, 499u, 998u, 999u}) {
    std::vector<float> flipped = data;
    flipped[word] = 1.5000001f;
    EXPECT_NE(support::checksum_floats(flipped, 42), clean)
        << "flip at word " << word << " went undetected";
  }
  // Truncation is not a collision either.
  EXPECT_NE(support::checksum_floats(
                std::span<const float>(data).first(999), 42),
            clean);
}

// -------------------------------------------------- observability & traces

TEST(Watchdog, TimeoutAndIntegrityEventsAppearInChromeTrace) {
  WatchdogFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.hang_command_index = 2;
  plan.corrupt_write_index = 3;
  device.fault().arm(plan);
  Engine engine = fx.make(device, fx.resilient());
  engine.evaluate(expressions::kQCriterion);

  const std::string trace = vcl::to_chrome_trace(engine.log());
  EXPECT_NE(trace.find("\"timeouts\""), std::string::npos);
  EXPECT_NE(trace.find("timeout:"), std::string::npos);
  EXPECT_NE(trace.find("\"integrity\""), std::string::npos);
  EXPECT_NE(trace.find("checksum:"), std::string::npos);
  dump_trace_artifact("hang_and_flip", trace);

  // A clean run's trace carries neither track.
  vcl::Device clean_device(vcl::xeon_x5660_scaled());
  Engine clean = fx.make(clean_device, fx.resilient());
  clean.evaluate(expressions::kQCriterion);
  const std::string clean_trace = vcl::to_chrome_trace(clean.log());
  EXPECT_EQ(clean_trace.find("timeouts"), std::string::npos);
  EXPECT_EQ(clean_trace.find("integrity"), std::string::npos);
}

TEST(Watchdog, FaultedRunsAreDeterministic) {
  const auto run = [] {
    WatchdogFixture fx;
    vcl::Device device(vcl::xeon_x5660_scaled());
    vcl::FaultPlan plan;
    plan.seed = 11;
    plan.slow_command_index = 3;
    plan.slowdown_factor = 4.0;
    plan.hang_command_index = 5;
    plan.corrupt_read_index = 1;
    device.fault().arm(plan);
    Engine engine = fx.make(device, fx.resilient());
    return engine.evaluate(expressions::kQCriterion);
  };
  const EvaluationReport a = run();
  const EvaluationReport b = run();
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.command_timeouts, b.command_timeouts);
  EXPECT_EQ(a.checksum_mismatches, b.checksum_mismatches);
}

// ------------------------------------------- FaultPlan coverage (armed())

TEST(FaultPlanCoverage, ArmedConsidersEverySchedulingField) {
  EXPECT_FALSE(vcl::FaultPlan{}.armed());
  const auto armed_with = [](auto mutate) {
    vcl::FaultPlan plan;
    mutate(plan);
    return plan.armed();
  };
  // Every scheduling field must arm the plan on its own. fault.cpp pins
  // sizeof(FaultPlan), so adding a field without extending armed() — and
  // this list — fails the build or this test.
  EXPECT_TRUE(armed_with([](auto& p) { p.fail_alloc_index = 1; }));
  EXPECT_TRUE(armed_with([](auto& p) { p.synthetic_capacity_bytes = 1; }));
  EXPECT_TRUE(armed_with([](auto& p) { p.fail_write_index = 1; }));
  EXPECT_TRUE(armed_with([](auto& p) { p.fail_read_index = 1; }));
  EXPECT_TRUE(armed_with([](auto& p) { p.fail_kernel_index = 1; }));
  EXPECT_TRUE(armed_with([](auto& p) { p.lose_device_after = 1; }));
  EXPECT_TRUE(armed_with([](auto& p) { p.slow_command_index = 1; }));
  EXPECT_TRUE(armed_with([](auto& p) { p.hang_command_index = 1; }));
  EXPECT_TRUE(armed_with([](auto& p) { p.corrupt_write_index = 1; }));
  EXPECT_TRUE(armed_with([](auto& p) { p.corrupt_read_index = 1; }));
  // Modifier fields alone schedule nothing.
  EXPECT_FALSE(armed_with([](auto& p) { p.seed = 7; }));
  EXPECT_FALSE(armed_with([](auto& p) { p.transient_count = 5; }));
  EXPECT_FALSE(armed_with([](auto& p) { p.corrupt_count = 5; }));
  EXPECT_FALSE(armed_with([](auto& p) { p.slowdown_factor = 9.0; }));
}

// ------------------------------- no-false-positive property (Table II lock)

class NoFalsePositiveTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(NoFalsePositiveTest, CleanRunsAreByteIdenticalToPolicyOffRuns) {
  const StrategyKind kind = GetParam();
  WatchdogFixture fx;
  const std::vector<const char*> expressions = {
      expressions::kVelocityMagnitude, expressions::kVorticityMagnitude,
      expressions::kQCriterion, expressions::kDivergence};

  for (const char* expression : expressions) {
    // Policy off: the seed's exact command stream, no watchdog installed.
    vcl::Device plain_device(vcl::xeon_x5660_scaled());
    EngineOptions plain_options;
    plain_options.strategy = kind;
    Engine plain = fx.make(plain_device, plain_options);
    const EvaluationReport base = plain.evaluate(expression);

    // Full defensive stack armed (resilient policy, watchdog, integrity,
    // empty fault plan): must be a pure observer.
    vcl::Device device(vcl::xeon_x5660_scaled());
    device.fault().arm(vcl::FaultPlan{});
    Engine engine = fx.make(device, fx.resilient(kind));
    const EvaluationReport report = engine.evaluate(expression);

    EXPECT_EQ(report.command_timeouts, 0u) << expression;
    EXPECT_EQ(report.checksum_mismatches, 0u) << expression;
    EXPECT_EQ(report.injected_faults, 0u) << expression;
    EXPECT_EQ(report.command_retries, 0u) << expression;
    EXPECT_TRUE(report.degradations.empty()) << expression;

    // Table II counts and the full event stream, byte for byte.
    EXPECT_EQ(report.dev_writes, base.dev_writes) << expression;
    EXPECT_EQ(report.dev_reads, base.dev_reads) << expression;
    EXPECT_EQ(report.kernel_execs, base.kernel_execs) << expression;
    EXPECT_EQ(report.sim_seconds, base.sim_seconds) << expression;
    EXPECT_EQ(report.values, base.values) << expression;
    ASSERT_EQ(engine.log().events().size(), plain.log().events().size())
        << expression;
    for (std::size_t i = 0; i < engine.log().events().size(); ++i) {
      const vcl::Event& a = engine.log().events()[i];
      const vcl::Event& b = plain.log().events()[i];
      EXPECT_EQ(a.kind, b.kind) << expression << " event " << i;
      EXPECT_EQ(a.label, b.label) << expression << " event " << i;
      EXPECT_EQ(a.bytes, b.bytes) << expression << " event " << i;
      EXPECT_EQ(a.sim_seconds, b.sim_seconds) << expression << " event " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, NoFalsePositiveTest,
                         ::testing::Values(StrategyKind::roundtrip,
                                           StrategyKind::staged,
                                           StrategyKind::fusion,
                                           StrategyKind::streamed),
                         [](const auto& info) {
                           return std::string(
                               runtime::strategy_name(info.param));
                         });

}  // namespace
