// Analytic validation of the CFD operator library: every vector-field
// builtin (divergence/curl/vorticity_mag/enstrophy/helicity/qcriterion/
// lambda2) checked against closed-form references on two classical flows —
// the ABC (Arnold–Beltrami–Childress) flow, whose curl equals its velocity,
// and the Taylor–Green vortex. References are derived from the analytic
// velocity Jacobian in double precision, so the suite pins down both the
// operator definitions (convergence under grid refinement) and the
// backend/strategy contract (bit-identical results on scalar, vm and jit
// under all four strategies, boundary rows included).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "bitwise.hpp"
#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "kernels/backend.hpp"
#include "mesh/generators.hpp"
#include "mesh/mesh.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;

constexpr float kTwoPi = 6.28318530717958647692f;

/// Analytic velocity Jacobian J[r][c] = d(v_r)/d(x_c) in double precision.
using JacobianFn = void (*)(double x, double y, double z, double J[3][3]);
using VelocityFn = void (*)(double x, double y, double z, double v[3]);

// ABC flow with the unit coefficients abc_flow defaults to:
//   u = sin z + cos y,  v = sin x + cos z,  w = sin y + cos x.
void abc_velocity(double x, double y, double z, double v[3]) {
  v[0] = std::sin(z) + std::cos(y);
  v[1] = std::sin(x) + std::cos(z);
  v[2] = std::sin(y) + std::cos(x);
}

void abc_jacobian(double x, double y, double z, double J[3][3]) {
  J[0][0] = 0.0;
  J[0][1] = -std::sin(y);
  J[0][2] = std::cos(z);
  J[1][0] = std::cos(x);
  J[1][1] = 0.0;
  J[1][2] = -std::sin(z);
  J[2][0] = -std::sin(x);
  J[2][1] = std::cos(y);
  J[2][2] = 0.0;
}

// Taylor–Green vortex (the t = 0 slice of the decaying solution):
//   u = sin x cos y cos z,  v = -cos x sin y cos z,  w = 0.
void taylor_green_velocity(double x, double y, double z, double v[3]) {
  v[0] = std::sin(x) * std::cos(y) * std::cos(z);
  v[1] = -std::cos(x) * std::sin(y) * std::cos(z);
  v[2] = 0.0;
}

void taylor_green_jacobian(double x, double y, double z, double J[3][3]) {
  J[0][0] = std::cos(x) * std::cos(y) * std::cos(z);
  J[0][1] = -std::sin(x) * std::sin(y) * std::cos(z);
  J[0][2] = -std::sin(x) * std::cos(y) * std::sin(z);
  J[1][0] = std::sin(x) * std::sin(y) * std::cos(z);
  J[1][1] = -std::cos(x) * std::cos(y) * std::cos(z);
  J[1][2] = std::cos(x) * std::sin(y) * std::sin(z);
  J[2][0] = 0.0;
  J[2][1] = 0.0;
  J[2][2] = 0.0;
}

/// Middle eigenvalue of A = S^2 + Omega^2 for the Jacobian J, computed in
/// double with the same trigonometric closed form the builtin lowers to —
/// the reference the float pipeline must converge to.
double lambda2_ref(const double J[3][3]) {
  double S[3][3], O[3][3], A[3][3];
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      S[r][c] = 0.5 * (J[r][c] + J[c][r]);
      O[r][c] = 0.5 * (J[r][c] - J[c][r]);
    }
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      A[r][c] = 0.0;
      for (int k = 0; k < 3; ++k) {
        A[r][c] += S[r][k] * S[k][c] + O[r][k] * O[k][c];
      }
    }
  }
  const double q = (A[0][0] + A[1][1] + A[2][2]) / 3.0;
  const double p1 =
      A[0][1] * A[0][1] + A[0][2] * A[0][2] + A[1][2] * A[1][2];
  const double p2 = (A[0][0] - q) * (A[0][0] - q) +
                    (A[1][1] - q) * (A[1][1] - q) +
                    (A[2][2] - q) * (A[2][2] - q) + 2.0 * p1;
  if (p2 == 0.0) return q;
  const double p = std::sqrt(p2 / 6.0);
  double B[3][3];
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      B[r][c] = (A[r][c] - (r == c ? q : 0.0)) / p;
    }
  }
  const double detb =
      B[0][0] * (B[1][1] * B[2][2] - B[1][2] * B[1][2]) -
      B[0][1] * (B[0][1] * B[2][2] - B[1][2] * B[0][2]) +
      B[0][2] * (B[0][1] * B[1][2] - B[1][1] * B[0][2]);
  const double r = std::max(-1.0, std::min(1.0, 0.5 * detb));
  const double phi = std::acos(r) / 3.0;
  const double eig1 = q + 2.0 * p * std::cos(phi);
  const double eig3 =
      q + 2.0 * p * std::cos(phi + 2.0 * 3.14159265358979323846 / 3.0);
  return 3.0 * q - eig1 - eig3;
}

/// Per-point double-precision reference for a named operator.
double operator_ref(const std::string& op, VelocityFn vel, JacobianFn jac,
                    double x, double y, double z) {
  double v[3], J[3][3];
  vel(x, y, z, v);
  jac(x, y, z, J);
  const double wx = J[2][1] - J[1][2];
  const double wy = J[0][2] - J[2][0];
  const double wz = J[1][0] - J[0][1];
  if (op == "divergence") return J[0][0] + J[1][1] + J[2][2];
  if (op == "curl_x") return wx;
  if (op == "curl_y") return wy;
  if (op == "curl_z") return wz;
  if (op == "vorticity_mag") return std::sqrt(wx * wx + wy * wy + wz * wz);
  if (op == "enstrophy") return 0.5 * (wx * wx + wy * wy + wz * wz);
  if (op == "helicity") return v[0] * wx + v[1] * wy + v[2] * wz;
  if (op == "qcriterion") {
    double s_norm = 0.0, o_norm = 0.0;
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        const double s = 0.5 * (J[r][c] + J[c][r]);
        const double o = 0.5 * (J[r][c] - J[c][r]);
        s_norm += s * s;
        o_norm += o * o;
      }
    }
    return 0.5 * (o_norm - s_norm);
  }
  return lambda2_ref(J);
}

struct FlowFixture {
  FlowFixture(std::size_t n, VelocityFn vel, JacobianFn jac)
      : mesh(mesh::RectilinearMesh::uniform({n, n, n}, kTwoPi, kTwoPi,
                                            kTwoPi)),
        velocity(vel),
        jacobian(jac) {
    const std::size_t cells = mesh.cell_count();
    field.u.resize(cells);
    field.v.resize(cells);
    field.w.resize(cells);
    const auto& d = mesh.dims();
    for (std::size_t k = 0; k < d.nz; ++k) {
      for (std::size_t j = 0; j < d.ny; ++j) {
        for (std::size_t i = 0; i < d.nx; ++i) {
          double v[3];
          vel(mesh.x_center(i), mesh.y_center(j), mesh.z_center(k), v);
          const std::size_t idx = mesh.cell_index(i, j, k);
          field.u[idx] = static_cast<float>(v[0]);
          field.v[idx] = static_cast<float>(v[1]);
          field.w[idx] = static_cast<float>(v[2]);
        }
      }
    }
  }

  std::vector<float> evaluate(const std::string& expression,
                              EngineOptions options = {}) {
    vcl::Device device(vcl::xeon_x5660());
    Engine engine(device, options);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine.evaluate(expression).values;
  }

  /// Max error over interior cells (boundary cells use one-sided
  /// first-order differences; convergence is a statement about the
  /// second-order interior stencil).
  double max_interior_error(const std::vector<float>& values,
                            const std::string& op) {
    double max_err = 0.0;
    const auto& d = mesh.dims();
    for (std::size_t k = 1; k + 1 < d.nz; ++k) {
      for (std::size_t j = 1; j + 1 < d.ny; ++j) {
        for (std::size_t i = 1; i + 1 < d.nx; ++i) {
          const double exact =
              operator_ref(op, velocity, jacobian, mesh.x_center(i),
                           mesh.y_center(j), mesh.z_center(k));
          max_err = std::max(
              max_err,
              std::fabs(values[mesh.cell_index(i, j, k)] - exact));
        }
      }
    }
    return max_err;
  }

  mesh::RectilinearMesh mesh;
  mesh::VectorField field;
  VelocityFn velocity;
  JacobianFn jacobian;
};

std::string operator_expression(const std::string& op) {
  if (op == "curl_x") return "f = curl(u, v, w, dims, x, y, z)[0]";
  if (op == "curl_y") return "f = curl(u, v, w, dims, x, y, z)[1]";
  if (op == "curl_z") return "f = curl(u, v, w, dims, x, y, z)[2]";
  return "f = " + op + "(u, v, w, dims, x, y, z)";
}

/// Coarse-vs-fine refinement check: the 32^3 error must be well under the
/// 16^3 error (central differences are second order, so the ideal ratio is
/// 4; 3 leaves headroom for float rounding), plus an absolute sanity bound
/// on the coarse grid.
void expect_converges(const std::string& op, VelocityFn vel, JacobianFn jac,
                      double coarse_bound) {
  FlowFixture coarse(16, vel, jac);
  FlowFixture fine(32, vel, jac);
  const std::string expr = operator_expression(op);
  const double err_coarse =
      coarse.max_interior_error(coarse.evaluate(expr), op);
  const double err_fine = fine.max_interior_error(fine.evaluate(expr), op);
  EXPECT_LT(err_coarse, coarse_bound) << op;
  EXPECT_LT(err_fine, err_coarse / 3.0)
      << op << ": expected ~2nd-order convergence, got " << err_coarse
      << " -> " << err_fine;
}

// --- Exact identities -------------------------------------------------------

TEST(CfdOperators, AbcDivergenceIsBitwiseZeroEverywhere) {
  // Each ABC velocity component is constant along its own derivative axis
  // (u has no x dependence, v no y, w no z), so every finite difference the
  // divergence sums — one-sided boundary stencils included — subtracts
  // equal floats: the discrete divergence is +0.0 at every cell, not just
  // small.
  FlowFixture fx(16, abc_velocity, abc_jacobian);
  const auto values = fx.evaluate(operator_expression("divergence"));
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(values[i]), 0u)
        << "cell " << i << " = " << values[i];
  }
}

TEST(CfdOperators, DivAtSevenArgumentsIsDivergence) {
  // "div" stays scalar division at two arguments and reads as the
  // divergence operator at the 7-argument vector signature.
  FlowFixture fx(8, abc_velocity, abc_jacobian);
  const auto named = fx.evaluate("f = divergence(u, v, w, dims, x, y, z)");
  const auto brief = fx.evaluate("f = div(u, v, w, dims, x, y, z)");
  test::expect_bits_equal(brief, named, "div vs divergence");
  const auto ratio = fx.evaluate("f = div(u, v)");
  ASSERT_EQ(ratio.size(), fx.mesh.cell_count());
}

TEST(CfdOperators, OperatorMacrosMatchHandwrittenScripts) {
  // The builtins expand to the same graphs the library's hand-written
  // Figure-3-style scripts build (same association order, same grad3d
  // sharing), so the results are bit-identical — the macro layer adds no
  // numerics of its own.
  FlowFixture fx(12, taylor_green_velocity, taylor_green_jacobian);
  test::expect_bits_equal(fx.evaluate(expressions::kOpDivergence),
                          fx.evaluate(expressions::kDivergence),
                          "divergence");
  test::expect_bits_equal(fx.evaluate(expressions::kOpVorticityMagnitude),
                          fx.evaluate(expressions::kVorticityMagnitude),
                          "vorticity_mag");
  test::expect_bits_equal(fx.evaluate(expressions::kOpEnstrophy),
                          fx.evaluate(expressions::kEnstrophy), "enstrophy");
  test::expect_bits_equal(fx.evaluate(expressions::kOpHelicity),
                          fx.evaluate(expressions::kHelicity), "helicity");
}

TEST(CfdOperators, AbcIsBeltramiCurlEqualsVelocity) {
  // curl(v) = v for the unit-coefficient ABC flow; compare each component
  // of the packed curl against the bound velocity arrays.
  FlowFixture fx(32, abc_velocity, abc_jacobian);
  const std::array<const std::vector<float>*, 3> vel = {
      &fx.field.u, &fx.field.v, &fx.field.w};
  for (int comp = 0; comp < 3; ++comp) {
    const auto values = fx.evaluate(
        "f = curl(u, v, w, dims, x, y, z)[" + std::to_string(comp) + "]");
    double max_err = 0.0;
    const auto& d = fx.mesh.dims();
    for (std::size_t k = 1; k + 1 < d.nz; ++k) {
      for (std::size_t j = 1; j + 1 < d.ny; ++j) {
        for (std::size_t i = 1; i + 1 < d.nx; ++i) {
          const std::size_t idx = fx.mesh.cell_index(i, j, k);
          max_err = std::max(
              max_err, static_cast<double>(std::fabs(
                           values[idx] - (*vel[comp])[idx])));
        }
      }
    }
    EXPECT_LT(max_err, 0.05) << "curl component " << comp;
  }
}

// --- Convergence under grid refinement --------------------------------------

TEST(CfdOperators, CurlConvergesOnTaylorGreen) {
  expect_converges("curl_x", taylor_green_velocity, taylor_green_jacobian,
                   0.2);
  expect_converges("curl_y", taylor_green_velocity, taylor_green_jacobian,
                   0.2);
  expect_converges("curl_z", taylor_green_velocity, taylor_green_jacobian,
                   0.2);
}

TEST(CfdOperators, VorticityMagnitudeConvergesOnAbc) {
  expect_converges("vorticity_mag", abc_velocity, abc_jacobian, 0.2);
}

TEST(CfdOperators, EnstrophyConvergesOnBothFlows) {
  expect_converges("enstrophy", abc_velocity, abc_jacobian, 0.4);
  expect_converges("enstrophy", taylor_green_velocity,
                   taylor_green_jacobian, 0.4);
}

TEST(CfdOperators, HelicityConvergesOnAbc) {
  // Beltrami: h = v . curl v = |v|^2.
  expect_converges("helicity", abc_velocity, abc_jacobian, 0.5);
}

TEST(CfdOperators, TaylorGreenHelicityIsSmall) {
  // w = 0 and curl has no z... rather: v and curl(v) are orthogonal for
  // Taylor-Green (v_z = 0, and the in-plane curl components are odd where
  // v is even), so helicity converges to zero.
  FlowFixture fx(32, taylor_green_velocity, taylor_green_jacobian);
  const auto values = fx.evaluate(operator_expression("helicity"));
  EXPECT_LT(fx.max_interior_error(values, "helicity"), 0.05);
}

TEST(CfdOperators, QCriterionConvergesOnBothFlows) {
  expect_converges("qcriterion", abc_velocity, abc_jacobian, 0.4);
  expect_converges("qcriterion", taylor_green_velocity,
                   taylor_green_jacobian, 0.4);
}

TEST(CfdOperators, QCriterionMatchesClosedFormAbcReference) {
  // Cross-check operator_ref against the mesh library's independent
  // abc_q_criterion closed form.
  FlowFixture fx(24, abc_velocity, abc_jacobian);
  const auto values = fx.evaluate(operator_expression("qcriterion"));
  double max_err = 0.0;
  const auto& d = fx.mesh.dims();
  for (std::size_t k = 1; k + 1 < d.nz; ++k) {
    for (std::size_t j = 1; j + 1 < d.ny; ++j) {
      for (std::size_t i = 1; i + 1 < d.nx; ++i) {
        const float exact = mesh::abc_q_criterion(
            fx.mesh.x_center(i), fx.mesh.y_center(j), fx.mesh.z_center(k),
            1.0f, 1.0f, 1.0f);
        max_err = std::max(
            max_err, static_cast<double>(std::fabs(
                         values[fx.mesh.cell_index(i, j, k)] - exact)));
      }
    }
  }
  EXPECT_LT(max_err, 0.2);
}

TEST(CfdOperators, Lambda2ConvergesOnBothFlows) {
  expect_converges("lambda2", abc_velocity, abc_jacobian, 0.5);
  expect_converges("lambda2", taylor_green_velocity, taylor_green_jacobian,
                   0.5);
}

TEST(CfdOperators, Lambda2IsExactOnUniformFlow) {
  // A constant velocity field has J = 0, so A = 0 is isotropic: the
  // closed-form eigensolve's select guard must return q = 0 exactly rather
  // than evaluate the general branch's 0/0.
  const std::size_t n = 8;
  mesh::RectilinearMesh mesh =
      mesh::RectilinearMesh::uniform({n, n, n}, kTwoPi, kTwoPi, kTwoPi);
  std::vector<float> ones(mesh.cell_count(), 1.0f);
  vcl::Device device(vcl::xeon_x5660());
  Engine engine(device, {});
  engine.bind_mesh(mesh);
  engine.bind("u", ones);
  engine.bind("v", ones);
  engine.bind("w", ones);
  const auto values =
      engine.evaluate("f = lambda2(u, v, w, dims, x, y, z)").values;
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(values[i], 0.0f) << "cell " << i;
  }
}

// --- Backend and strategy bit-exactness -------------------------------------

constexpr kernels::BackendKind kBackends[] = {kernels::BackendKind::scalar,
                                              kernels::BackendKind::vm,
                                              kernels::BackendKind::jit};
constexpr runtime::StrategyKind kStrategies[] = {
    runtime::StrategyKind::fusion, runtime::StrategyKind::streamed,
    runtime::StrategyKind::staged, runtime::StrategyKind::roundtrip};

TEST(CfdOperators, BitExactAcrossBackendsAndStrategies) {
  // Every operator, every backend, every strategy: one bit pattern. The
  // 19x7x5 grid keeps the cell count off the 1024-element tile size and
  // exercises the grad3d x-boundary peel rows in every tile.
  mesh::RectilinearMesh mesh =
      mesh::RectilinearMesh::uniform({19, 7, 5}, kTwoPi, kTwoPi, kTwoPi);
  mesh::VectorField field = mesh::abc_flow(mesh);

  const char* kOps[] = {"divergence", "curl_y",    "vorticity_mag",
                        "enstrophy",  "helicity",  "qcriterion",
                        "lambda2"};
  for (const char* op : kOps) {
    const std::string expr = operator_expression(op);
    std::vector<float> oracle;
    for (const kernels::BackendKind backend : kBackends) {
      for (const runtime::StrategyKind strategy : kStrategies) {
        EngineOptions options;
        options.strategy = strategy;
        options.backend = backend;
        vcl::Device device(vcl::xeon_x5660());
        Engine engine(device, options);
        engine.bind_mesh(mesh);
        engine.bind("u", field.u);
        engine.bind("v", field.v);
        engine.bind("w", field.w);
        std::vector<float> values = engine.evaluate(expr).values;
        if (oracle.empty()) {
          oracle = std::move(values);
          continue;
        }
        test::expect_bits_equal(
            values, oracle,
            std::string(op) + " on " + kernels::backend_name(backend) +
                "/" + runtime::strategy_name(strategy));
      }
    }
  }
}

TEST(CfdOperators, BoundaryRowsMatchScalarOracle) {
  // Regression pin for the grad3d x-boundary peel: lambda2 and the curl
  // components at i = 0 and i = nx-1 (one-sided stencils) must come out of
  // the tiled VM and the jit bit-identical to the scalar oracle. nx = 21
  // keeps rows off any tile-size multiple so peeled spans straddle tile
  // boundaries.
  mesh::RectilinearMesh mesh =
      mesh::RectilinearMesh::uniform({21, 9, 6}, kTwoPi, kTwoPi, kTwoPi);
  mesh::VectorField field = mesh::abc_flow(mesh);

  for (const char* op : {"lambda2", "curl_x", "curl_z"}) {
    const std::string expr = operator_expression(op);
    std::array<std::vector<float>, 3> results;
    for (std::size_t b = 0; b < 3; ++b) {
      EngineOptions options;
      options.backend = kBackends[b];
      vcl::Device device(vcl::xeon_x5660());
      Engine engine(device, options);
      engine.bind_mesh(mesh);
      engine.bind("u", field.u);
      engine.bind("v", field.v);
      engine.bind("w", field.w);
      results[b] = engine.evaluate(expr).values;
    }
    const auto& d = mesh.dims();
    for (std::size_t k = 0; k < d.nz; ++k) {
      for (std::size_t j = 0; j < d.ny; ++j) {
        for (const std::size_t i : {std::size_t{0}, d.nx - 1}) {
          const std::size_t idx = mesh.cell_index(i, j, k);
          ASSERT_EQ(std::bit_cast<std::uint32_t>(results[1][idx]),
                    std::bit_cast<std::uint32_t>(results[0][idx]))
              << op << " vm vs scalar at boundary cell (" << i << "," << j
              << "," << k << ")";
          ASSERT_EQ(std::bit_cast<std::uint32_t>(results[2][idx]),
                    std::bit_cast<std::uint32_t>(results[0][idx]))
              << op << " jit vs scalar at boundary cell (" << i << "," << j
              << "," << k << ")";
        }
      }
    }
    // The interior must agree too, of course — assert the full arrays.
    test::expect_bits_equal(results[1], results[0],
                            std::string(op) + " vm vs scalar");
    test::expect_bits_equal(results[2], results[0],
                            std::string(op) + " jit vs scalar");
  }
}

TEST(CfdOperators, WrongArityIsRejected) {
  vcl::Device device(vcl::xeon_x5660());
  Engine engine(device, {});
  std::vector<float> data(8, 1.0f);
  engine.bind("u", data);
  engine.bind("v", data);
  engine.bind("w", data);
  EXPECT_THROW(engine.evaluate("f = curl(u, v, w)", 8), NetworkError);
  EXPECT_THROW(engine.evaluate("f = lambda2(u, v)", 8), NetworkError);
}

}  // namespace
