// Tests for the observability layer (src/obs): golden JSON snapshots,
// shard-merge exactness under concurrency, the DFGEN_METRICS gate, span
// hierarchy, and the thread-attribution contract the report structs rely
// on.
//
// The golden tests run a Table II expression (Q-criterion, 8^3
// rayleigh-taylor flow, the scaled Xeon X5660 model) once per execution
// strategy inside a fresh registry and require the JSON snapshot to be
// byte-for-byte equal to tests/golden/metrics_<strategy>.json — and to be
// invariant under the parallel_for worker count, which is the registry's
// central determinism promise. Regenerate the goldens after an intentional
// metric change with:
//   DFGEN_UPDATE_GOLDEN=1 ./test_metrics
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "kernels/program_cache.hpp"
#include "mesh/generators.hpp"
#include "mesh/mesh.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "vcl/catalog.hpp"
#include "vcl/device.hpp"

namespace {

using namespace dfg;

std::string golden_path(const char* strategy) {
  return std::string(DFGEN_TEST_DIR) + "/golden/metrics_" + strategy +
         ".json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Runs the Table II workload under `kind` inside a fresh registry and
/// returns the registry's JSON snapshot. The program cache is cleared
/// *before* the registry is installed so each run starts cold and its
/// eviction counts land in the previous registry, not this snapshot.
std::string table2_snapshot(runtime::StrategyKind kind) {
  kernels::ProgramCache::instance().clear();
  obs::ScopedMetricsRegistry scoped;

  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device{vcl::xeon_x5660_scaled()};
  EngineOptions options;
  options.strategy = kind;
  // Pin the VM backend: the goldens' sim timings are priced at the
  // interpreter's compute efficiency, and running this suite under
  // DFGEN_BACKEND=jit must not perturb byte-pinned snapshots (jit runs
  // would also add compile spans and cache-counter traffic).
  options.backend = kernels::BackendKind::vm;
  Engine engine(device, options);
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);
  engine.evaluate(expressions::kQCriterion);

  return scoped.registry().to_json();
}

const runtime::StrategyKind kStrategies[] = {
    runtime::StrategyKind::roundtrip, runtime::StrategyKind::staged,
    runtime::StrategyKind::fusion, runtime::StrategyKind::streamed};

TEST(MetricsGolden, Table2SnapshotsMatchGoldenFiles) {
  const bool update = support::env::get_flag("DFGEN_UPDATE_GOLDEN", false);
  for (const runtime::StrategyKind kind : kStrategies) {
    const char* name = runtime::strategy_name(kind);
    const std::string got = table2_snapshot(kind);
    const std::string path = golden_path(name);
    if (update) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out) << "cannot write " << path;
      out << got;
      continue;
    }
    const std::string want = read_file(path);
    ASSERT_FALSE(want.empty())
        << "missing golden file " << path
        << " — generate it with DFGEN_UPDATE_GOLDEN=1 ./test_metrics";
    EXPECT_EQ(got, want) << "snapshot for strategy '" << name
                         << "' diverged from " << path;
  }
}

TEST(MetricsGolden, SnapshotIsByteIdenticalAcrossRunsAndWorkerCounts) {
  const std::string reference = table2_snapshot(runtime::StrategyKind::fusion);
  // Same workload, fresh registry: identical bytes.
  EXPECT_EQ(table2_snapshot(runtime::StrategyKind::fusion), reference);
  // Identical under any parallel_for split: instrumentation happens on the
  // evaluating thread and every stored value is an integer, so worker
  // count cannot reorder or perturb the merged totals.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}}) {
    support::set_worker_count(workers);
    EXPECT_EQ(table2_snapshot(runtime::StrategyKind::fusion), reference)
        << "snapshot changed with " << workers << " workers";
  }
  support::set_worker_count(0);
}

// ----- shard merge under concurrency (run under TSan in CI) -----

TEST(MetricsRegistry, ConcurrentIncrementsMergeExactly) {
  obs::ScopedMetricsRegistry scoped;
  obs::MetricsRegistry& reg = scoped.registry();
  const obs::MetricId counter = reg.counter("test_concurrent_total");
  const obs::MetricId histogram = reg.histogram("test_concurrent_nanos");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, counter, histogram] {
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        reg.add(counter);
        reg.observe(histogram, i % 1024);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Lock-free relaxed shard adds merged on scrape: not one lost update.
  EXPECT_EQ(reg.counter_value(counter), kThreads * kIncrements);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("test_concurrent_nanos_count{} " +
                      std::to_string(kThreads * kIncrements)),
            std::string::npos)
      << prom;
}

TEST(MetricsRegistry, ThreadCounterValueSeesOnlyTheCallingThread) {
  obs::ScopedMetricsRegistry scoped;
  obs::MetricsRegistry& reg = scoped.registry();
  const obs::MetricId counter = reg.counter("test_thread_local_total");
  reg.add(counter, 7);
  std::thread other([&] { reg.add(counter, 1000); });
  other.join();
  EXPECT_EQ(reg.thread_counter_value(counter), 7u);
  EXPECT_EQ(reg.counter_value(counter), 1007u);
}

// ----- the DFGEN_METRICS gate -----

TEST(MetricsRegistry, DisablingKeepsCountersButDropsGaugesAndSpans) {
  obs::ScopedMetricsRegistry scoped;
  obs::MetricsRegistry& reg = scoped.registry();
  reg.set_enabled(false);

  const obs::MetricId counter = reg.counter("test_gate_total");
  const obs::MetricId gauge = reg.gauge("test_gate_gauge");
  const obs::MetricId histogram = reg.histogram("test_gate_nanos");
  reg.add(counter, 3);          // counters are always live: reports need them
  reg.gauge_set(gauge, 42);     // dropped
  reg.observe(histogram, 100);  // dropped
  EXPECT_EQ(reg.counter_value(counter), 3u);
  EXPECT_EQ(reg.gauge_value(gauge), 0u);
  EXPECT_EQ(reg.to_prometheus().find("test_gate_nanos_count 1"),
            std::string::npos);

  obs::SpanTracer::instance().clear();
  {
    obs::Span span("gated", "request");
  }
  EXPECT_TRUE(obs::SpanTracer::instance().records().empty());

  reg.set_enabled(true);
  {
    obs::Span span("open", "request");
  }
  ASSERT_EQ(obs::SpanTracer::instance().records().size(), 1u);
  obs::SpanTracer::instance().clear();
}

// ----- span hierarchy -----

TEST(Spans, EvaluationProducesRequestAttemptCommandHierarchy) {
  kernels::ProgramCache::instance().clear();
  obs::ScopedMetricsRegistry scoped;
  obs::SpanTracer::instance().clear();

  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device{vcl::xeon_x5660_scaled()};
  Engine engine(device, {});
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);
  engine.evaluate(expressions::kQCriterion);

  const std::vector<obs::SpanRecord> records =
      obs::SpanTracer::instance().records();
  obs::SpanTracer::instance().clear();

  const obs::SpanRecord* request = nullptr;
  const obs::SpanRecord* attempt = nullptr;
  for (const obs::SpanRecord& record : records) {
    if (record.category == "request") request = &record;
    if (record.category == "attempt") attempt = &record;
  }
  ASSERT_NE(request, nullptr);
  ASSERT_NE(attempt, nullptr);
  EXPECT_EQ(request->name, "evaluate:q");
  EXPECT_EQ(request->parent, 0u);
  EXPECT_EQ(attempt->name, "strategy:fusion");
  EXPECT_EQ(attempt->parent, request->id);
  EXPECT_GT(request->sim_seconds, 0.0);

  std::size_t commands = 0;
  for (const obs::SpanRecord& record : records) {
    if (record.category != "command") continue;
    ++commands;
    EXPECT_EQ(record.parent, attempt->id)
        << "command span '" << record.name << "' not under the attempt";
  }
  // Fusion: 7 uploads (u, v, w, x, y, z, dims), 1 kernel, 1 download.
  EXPECT_GE(commands, 3u);

  // The Chrome trace export contains every span as an "X" event.
  const std::string trace = obs::SpanTracer::instance().to_chrome_trace();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
}

// ----- cache attribution across reused threads -----

// A worker thread reused across sessions must attribute each window's
// cache traffic exactly: thread_stats is monotonic (reset_stats leaves it
// alone) and per-thread (other threads' traffic is invisible), so
// before/after deltas can neither straddle a reset nor leak traffic.
TEST(CacheAttribution, ReusedThreadWindowsStayExactUnderConcurrency) {
  kernels::ProgramCache::instance().clear();
  obs::ScopedMetricsRegistry scoped;
  kernels::ProgramCache& cache = kernels::ProgramCache::instance();

  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({6, 6, 6});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);

  // Background noise: another thread hammering a *different* expression.
  std::atomic<bool> stop{false};
  std::thread noise([&] {
    vcl::Device device{vcl::xeon_x5660_scaled()};
    Engine engine(device, {});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    while (!stop.load()) {
      engine.evaluate(expressions::kVelocityMagnitude);
    }
  });

  // The "reused worker": two sessions on one OS thread, with a
  // reset_stats() between them as a hostile reuse boundary.
  std::thread worker([&] {
    vcl::Device device{vcl::xeon_x5660_scaled()};
    Engine engine(device, {});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);

    const kernels::ProgramCacheStats s0 = cache.thread_stats();
    const EvaluationReport first = engine.evaluate(expressions::kQCriterion);
    const kernels::ProgramCacheStats s1 = cache.thread_stats();
    EXPECT_GE(s1.pipeline_misses - s0.pipeline_misses, 1u)
        << "cold run must miss";
    EXPECT_GT(first.pipeline_cache_misses, 0u);

    cache.reset_stats();  // session boundary: must not disturb thread stats

    const kernels::ProgramCacheStats s2 = cache.thread_stats();
    EXPECT_EQ(s2.pipeline_misses, s1.pipeline_misses)
        << "reset_stats() must not rewind thread attribution";
    const EvaluationReport second = engine.evaluate(expressions::kQCriterion);
    const kernels::ProgramCacheStats s3 = cache.thread_stats();
    EXPECT_GE(s3.pipeline_hits - s2.pipeline_hits, 1u)
        << "warm run must hit";
    EXPECT_EQ(s3.pipeline_misses, s2.pipeline_misses)
        << "warm run must not miss";
    EXPECT_GT(second.pipeline_cache_hits, 0u);
    EXPECT_EQ(second.pipeline_cache_misses, 0u);
  });

  worker.join();
  stop.store(true);
  noise.join();
}

// ----- exposition formats -----

TEST(MetricsRegistry, PrometheusAndDumpCoverEveryKind) {
  obs::ScopedMetricsRegistry scoped;
  obs::MetricsRegistry& reg = scoped.registry();
  reg.add(reg.counter("test_fmt_total", {{"device", "cpu0"}}), 5);
  reg.gauge_set(reg.gauge("test_fmt_gauge"), 17);
  reg.observe(reg.histogram("test_fmt_nanos"), 1000);

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE test_fmt_total counter"), std::string::npos);
  EXPECT_NE(prom.find("test_fmt_total{device=\"cpu0\"} 5"),
            std::string::npos);
  EXPECT_NE(prom.find("test_fmt_gauge 17"), std::string::npos);
  EXPECT_NE(prom.find("test_fmt_nanos_count{} 1"), std::string::npos);
  EXPECT_NE(prom.find("test_fmt_nanos_sum{} 1000"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema\": \"dfgen-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"test_fmt_total\""), std::string::npos);

  // dump() writes the summary table without touching the snapshot.
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  reg.dump(sink);
  std::fclose(sink);
  EXPECT_EQ(reg.to_json(), json);
}

TEST(MetricsRegistry, EscapesLabelValuesAndRoundTripsThroughFiles) {
  obs::ScopedMetricsRegistry scoped;
  obs::MetricsRegistry& reg = scoped.registry();
  const obs::Labels hostile = {{"path", "a\"b\\c\nd\te\rf\x01g"}};
  reg.add(reg.counter("test_escape_total", hostile), 3);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te\\rf\\u0001g"), std::string::npos)
      << json;

  // The newline inside the label value must be encoded, not emitted: one
  // series stays one exposition line.
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("test_escape_total"), std::string::npos);
  EXPECT_NE(prom.find("c\\nd"), std::string::npos) << prom;
  EXPECT_EQ(prom.find("c\nd"), std::string::npos);

  // write_metrics_file picks the format from the extension; both formats
  // must round-trip byte-for-byte through the file.
  const std::string stem = ::testing::TempDir() + "test_metrics_out";
  obs::write_metrics_file(stem + ".json");
  obs::write_metrics_file(stem + ".prom");
  EXPECT_EQ(read_file(stem + ".json"), json);
  EXPECT_EQ(read_file(stem + ".prom"), prom);
  std::remove((stem + ".json").c_str());
  std::remove((stem + ".prom").c_str());

  // dump_metrics() is the global-registry convenience wrapper.
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  obs::dump_metrics(sink);
  std::fclose(sink);

  // reset_values zeroes data but keeps registrations.
  reg.reset_values();
  EXPECT_EQ(reg.counter_value(reg.counter("test_escape_total", hostile)), 0u);
}

TEST(MetricsRegistry, RejectsKindMismatchAndCapacityExhaustion) {
  obs::ScopedMetricsRegistry scoped;
  obs::MetricsRegistry& reg = scoped.registry();
  reg.counter("test_kind_total");
  EXPECT_THROW(reg.gauge("test_kind_total"), Error);

  // Gauges live in a fixed registry-level array; one past the end must
  // throw instead of corrupting a neighbor.
  bool gauge_threw = false;
  for (int i = 0; i < 1100 && !gauge_threw; ++i) {
    try {
      reg.gauge("test_gauge_capacity", {{"i", std::to_string(i)}});
    } catch (const Error&) {
      gauge_threw = true;
    }
  }
  EXPECT_TRUE(gauge_threw);

  // Counter/histogram slots come from the sharded block space; exhaust it
  // with histograms (50 slots each) and expect a clean throw.
  bool slot_threw = false;
  for (int i = 0; i < 1400 && !slot_threw; ++i) {
    try {
      reg.histogram("test_histo_capacity", {{"i", std::to_string(i)}});
    } catch (const Error&) {
      slot_threw = true;
    }
  }
  EXPECT_TRUE(slot_threw);
}

// ----- span exporter -----

TEST(Spans, ChromeTraceExportAndCurrentSpanTracking) {
  obs::ScopedMetricsRegistry scoped;  // fresh, enabled: tracing is live
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.clear();
  EXPECT_EQ(tracer.current(), 0u);
  {
    obs::Span outer("outer", "request");
    const std::uint64_t outer_id = tracer.current();
    EXPECT_NE(outer_id, 0u);
    {
      obs::Span inner("inner", "command");
      inner.add_sim_seconds(0.25);
      EXPECT_NE(tracer.current(), outer_id);
    }
    EXPECT_EQ(tracer.current(), outer_id);
  }
  EXPECT_EQ(tracer.current(), 0u);

  const std::string trace = tracer.to_chrome_trace();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("outer"), std::string::npos);
  EXPECT_NE(trace.find("inner"), std::string::npos);

  const std::string path = ::testing::TempDir() + "test_span_trace.json";
  obs::write_span_trace(path);
  EXPECT_EQ(read_file(path), trace);
  std::remove(path.c_str());
  tracer.clear();
}

}  // namespace
