// Tests for the extended math-primitive set (sin, cos, tan, exp, log, tanh,
// floor, ceil) across the whole stack: registry, VM, fusion codegen,
// source printing, and end-to-end strategy equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "kernels/primitives.hpp"
#include "kernels/source_printer.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "kernels/generator.hpp"
#include "mesh/generators.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;

struct UnaryCase {
  const char* name;
  float (*reference)(float);
};

float ref_sin(float x) { return std::sin(x); }
float ref_cos(float x) { return std::cos(x); }
float ref_tan(float x) { return std::tan(x); }
float ref_exp(float x) { return std::exp(x); }
float ref_log(float x) { return std::log(x); }
float ref_tanh(float x) { return std::tanh(x); }
float ref_floor(float x) { return std::floor(x); }
float ref_ceil(float x) { return std::ceil(x); }

class MathPrimitiveTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(MathPrimitiveTest, RegisteredWithMetadataAndSource) {
  const kernels::PrimitiveInfo* info =
      kernels::find_primitive(GetParam().name);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->arity, 1);
  EXPECT_EQ(info->result_components, 1);
  EXPECT_FALSE(info->ocl_source.empty());
}

TEST_P(MathPrimitiveTest, AllStrategiesMatchStdReference) {
  const UnaryCase& tc = GetParam();
  std::vector<float> input;
  for (float x = 0.1f; x < 3.0f; x += 0.37f) input.push_back(x);

  vcl::Device device(vcl::xeon_x5660_scaled());
  const std::string expression = std::string("r = ") + tc.name + "(u)";
  for (const auto kind :
       {runtime::StrategyKind::roundtrip, runtime::StrategyKind::staged,
        runtime::StrategyKind::fusion, runtime::StrategyKind::streamed}) {
    Engine engine(device, {kind, {}});
    engine.bind("u", input);
    const auto report = engine.evaluate(expression);
    ASSERT_EQ(report.values.size(), input.size());
    for (std::size_t i = 0; i < input.size(); ++i) {
      ASSERT_FLOAT_EQ(report.values[i], tc.reference(input[i]))
          << tc.name << "(" << input[i] << ") under "
          << runtime::strategy_name(kind);
    }
  }
}

TEST_P(MathPrimitiveTest, FusedSourceRendersBuiltinCall) {
  const std::string expression = std::string("r = ") + GetParam().name + "(u)";
  const dataflow::Network network(dataflow::build_network(expression));
  const std::string src =
      kernels::to_opencl_body(kernels::generate_fused(network));
  EXPECT_NE(src.find(std::string(GetParam().name) + "("), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryBuiltins, MathPrimitiveTest,
    ::testing::Values(UnaryCase{"sin", ref_sin}, UnaryCase{"cos", ref_cos},
                      UnaryCase{"tan", ref_tan}, UnaryCase{"exp", ref_exp},
                      UnaryCase{"log", ref_log}, UnaryCase{"tanh", ref_tanh},
                      UnaryCase{"floor", ref_floor},
                      UnaryCase{"ceil", ref_ceil}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(MathPrimitives, ComposeInsideExpressions) {
  vcl::Device device(vcl::xeon_x5660_scaled());
  const std::vector<float> u{0.25f, 1.0f, 2.25f};
  Engine engine(device);
  engine.bind("u", u);
  // log(exp(x)) == x ; sin^2 + cos^2 == 1 ; pythagorean smoke test.
  const auto r1 = engine.evaluate("r = log(exp(u))");
  const auto r2 = engine.evaluate("r = sin(u)*sin(u) + cos(u)*cos(u)");
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(r1.values[i], u[i], 1e-5f);
    EXPECT_NEAR(r2.values[i], 1.0f, 1e-6f);
  }
}

TEST(MathPrimitives, TrigonometricIdentityOnAbcFlow) {
  // The ABC flow expressed through framework primitives instead of a
  // generator: u = sin(z) + cos(y) recomputed from coordinates must match
  // the bound field.
  const float two_pi = 6.2831853f;
  const mesh::RectilinearMesh mesh =
      mesh::RectilinearMesh::uniform({8, 8, 8}, two_pi, two_pi, two_pi);
  const mesh::VectorField field = mesh::abc_flow(mesh);
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine(device);
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  const auto report = engine.evaluate("r = sin(z) + cos(y) - u");
  for (const float residual : report.values) {
    ASSERT_NEAR(residual, 0.0f, 1e-5f);
  }
}

TEST(MathPrimitives, FloorCeilIntegality) {
  vcl::Device device(vcl::xeon_x5660_scaled());
  const std::vector<float> u{-1.5f, -0.2f, 0.0f, 0.4f, 2.6f};
  Engine engine(device);
  engine.bind("u", u);
  const auto gap = engine.evaluate("r = ceil(u) - floor(u)");
  EXPECT_FLOAT_EQ(gap.values[2], 0.0f);  // integer input
  for (const std::size_t i : {0u, 1u, 3u, 4u}) {
    EXPECT_FLOAT_EQ(gap.values[i], 1.0f);
  }
}

}  // namespace
