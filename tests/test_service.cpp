// The concurrent evaluation service: admission control rejects with a
// reason, the coalescer executes one evaluation per distinct key, the
// fair-share scheduler honours weights and priorities, quotas degrade
// over-quota tenants down the fallback ladder, and — the load-bearing
// property — N concurrent sessions produce results bit-identical to N
// serialized Engine::evaluate calls, across strategies, with a seeded
// FaultPlan armed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "mesh/generators.hpp"
#include "runtime/fallback.hpp"
#include "runtime/planner.hpp"
#include "service/service.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;
using service::EvalService;
using service::Request;
using service::RequestStatus;
using service::ServiceOptions;
using service::ServiceReport;
using service::ServiceSnapshot;
using service::SessionConfig;
using service::Ticket;

struct Fixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({6, 5, 4});
  mesh::VectorField field;

  Fixture() : field(mesh::rayleigh_taylor_flow(mesh, 7)) {}

  Request request(const std::string& expression,
                  const std::string& session = "default") const {
    Request r;
    r.expression = expression;
    r.mesh = &mesh;
    r.fields = {{"u", field.u}, {"v", field.v}, {"w", field.w}};
    r.session = session;
    return r;
  }

  std::vector<float> reference(const std::string& expression,
                               StrategyKind kind = StrategyKind::fusion,
                               const vcl::FaultPlan* plan = nullptr) const {
    vcl::Device device(vcl::xeon_x5660_scaled());
    if (plan != nullptr) device.fault().arm(*plan);
    EngineOptions options;
    options.strategy = kind;
    options.fallback = runtime::FallbackPolicy::resilient();
    Engine engine(device, options);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine.evaluate(expression).values;
  }
};

void expect_bitwise_equal(const std::vector<float>& got,
                          const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const bool nan = std::isnan(want[i]);
    ASSERT_EQ(std::isnan(got[i]), nan) << "cell " << i;
    if (!nan) ASSERT_EQ(got[i], want[i]) << "cell " << i;
  }
}

TEST(Service, CoalescesDuplicateBurstIntoOneEvaluation) {
  Fixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  ServiceOptions options;
  options.start_paused = true;
  EvalService svc({&device}, options);

  std::vector<Ticket> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(
        svc.submit(fx.request(expressions::kQCriterion,
                              "tenant-" + std::to_string(i))));
  }
  svc.resume();
  svc.drain();

  const std::vector<float> want = fx.reference(expressions::kQCriterion);
  std::size_t leaders = 0;
  for (const Ticket& ticket : tickets) {
    const ServiceReport& report = ticket.wait();
    ASSERT_EQ(report.status, RequestStatus::completed) << report.error;
    EXPECT_EQ(report.coalesced_fanout, 8u);
    leaders += report.coalesce_leader ? 1 : 0;
    expect_bitwise_equal(report.evaluation->values, want);
  }
  EXPECT_EQ(leaders, 1u);

  const ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.submitted, 8u);
  EXPECT_EQ(snap.executed_evaluations, 1u);
  EXPECT_EQ(snap.coalesced_requests, 7u);
  EXPECT_EQ(snap.completed_requests, 8u);
}

TEST(Service, CoalesceKeyRespectsBoundArrayIdentity) {
  Fixture fx;
  // Same content, different storage: must NOT coalesce (pointer identity is
  // the data-equality proxy under the in-situ no-copy contract).
  const std::vector<float> u_copy = fx.field.u;
  vcl::Device device(vcl::xeon_x5660_scaled());
  ServiceOptions options;
  options.start_paused = true;
  EvalService svc({&device}, options);

  Request a = fx.request(expressions::kVelocityMagnitude, "a");
  Request b = fx.request(expressions::kVelocityMagnitude, "b");
  b.fields[0] = {"u", u_copy};
  Ticket ta = svc.submit(std::move(a));
  Ticket tb = svc.submit(std::move(b));
  svc.resume();
  svc.drain();

  ASSERT_EQ(ta.wait().status, RequestStatus::completed);
  ASSERT_EQ(tb.wait().status, RequestStatus::completed);
  EXPECT_EQ(svc.snapshot().executed_evaluations, 2u);

  // And different strategies must not coalesce either.
  Request c = fx.request(expressions::kVelocityMagnitude, "a");
  Request d = fx.request(expressions::kVelocityMagnitude, "b");
  d.strategy = StrategyKind::staged;
  Ticket tc = svc.submit(std::move(c));
  Ticket td = svc.submit(std::move(d));
  svc.drain();
  EXPECT_EQ(svc.snapshot().executed_evaluations, 4u);
}

TEST(Service, CoalescingOffExecutesEveryRequest) {
  Fixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  ServiceOptions options;
  options.start_paused = true;
  options.coalescing = false;
  EvalService svc({&device}, options);

  std::vector<Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(svc.submit(fx.request(expressions::kVelocityMagnitude)));
  }
  svc.resume();
  svc.drain();
  for (const Ticket& t : tickets) {
    ASSERT_EQ(t.wait().status, RequestStatus::completed);
    EXPECT_EQ(t.wait().coalesced_fanout, 1u);
  }
  EXPECT_EQ(svc.snapshot().executed_evaluations, 4u);
}

TEST(Service, QueueFullRejectsWithReason) {
  Fixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  ServiceOptions options;
  options.start_paused = true;
  options.max_queue_depth = 2;
  EvalService svc({&device}, options);

  Ticket t1 = svc.submit(fx.request(expressions::kVelocityMagnitude));
  Ticket t2 = svc.submit(fx.request(expressions::kDivergence));
  Ticket t3 = svc.submit(fx.request(expressions::kHelicity));
  EXPECT_TRUE(t3.ready()) << "rejection resolves the ticket immediately";
  const ServiceReport& rejected = t3.wait();
  EXPECT_EQ(rejected.status, RequestStatus::rejected);
  EXPECT_NE(rejected.reject_reason.find("queue full"), std::string::npos);

  svc.resume();
  svc.drain();
  EXPECT_EQ(t1.wait().status, RequestStatus::completed);
  EXPECT_EQ(t2.wait().status, RequestStatus::completed);
  const ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.rejected_queue_full, 1u);
  EXPECT_EQ(snap.admitted, 2u);
}

// A gradient of a *computed* value: the streamed rung (whose memory floor
// is tiny) cannot execute it, so the projected floor is problem-sized.
constexpr const char* kUnstreamable =
    "s = u * v\n"
    "g = grad3d(s, dims, x, y, z)\n"
    "result = g[0]\n";

TEST(Service, ProjectionRejectsRequestNoDeviceCanEverFit) {
  Fixture fx;
  vcl::DeviceSpec spec = vcl::xeon_x5660_scaled();
  spec.global_mem_bytes = 64;  // smaller than any viable rung's working set
  vcl::Device device(spec);
  EvalService svc({&device}, ServiceOptions{});

  Ticket ticket = svc.submit(fx.request(kUnstreamable));
  const ServiceReport& report = ticket.wait();
  EXPECT_EQ(report.status, RequestStatus::rejected);
  EXPECT_NE(report.reject_reason.find("exceeds every device"),
            std::string::npos)
      << report.reject_reason;
  EXPECT_EQ(svc.snapshot().rejected_projection, 1u);
}

TEST(Service, QuotaRejectsWhenNoRungFits) {
  Fixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  EvalService svc({&device}, ServiceOptions{});
  svc.configure_session("capped", {1, 64});  // 64-byte quota: nothing fits

  Ticket ticket = svc.submit(fx.request(kUnstreamable, "capped"));
  const ServiceReport& report = ticket.wait();
  EXPECT_EQ(report.status, RequestStatus::rejected);
  EXPECT_NE(report.reject_reason.find("quota"), std::string::npos);
  EXPECT_EQ(svc.snapshot().rejected_quota, 1u);
}

TEST(Service, QuotaDegradesOverQuotaTenantDownTheLadder) {
  Fixture fx;
  const std::string script = expressions::kQCriterion;
  const std::size_t cells = fx.mesh.cell_count();

  dataflow::Network network(dataflow::build_network(script));
  runtime::FieldBindings bindings;
  bindings.bind_mesh(fx.mesh);
  bindings.bind("u", fx.field.u);
  bindings.bind("v", fx.field.v);
  bindings.bind("w", fx.field.w);
  std::map<StrategyKind, std::size_t> estimate;
  for (const StrategyKind kind : runtime::kMemoryLadder) {
    try {
      estimate[kind] =
          runtime::estimate_high_water(network, bindings, cells, kind);
    } catch (const KernelError&) {
    }
  }
  ASSERT_TRUE(estimate.count(StrategyKind::fusion));
  ASSERT_TRUE(estimate.count(StrategyKind::streamed));
  // A quota one float short of fusion's working set: the tenant cannot run
  // the requested rung, but the streamed rung — whose chunks the service
  // sizes to the quota — fits, so it must degrade exactly one rung.
  const std::size_t quota = estimate[StrategyKind::fusion] - sizeof(float);
  ASSERT_LE(estimate[StrategyKind::streamed], quota)
      << "premise: the streamed memory floor fits the quota";

  vcl::Device device(vcl::xeon_x5660_scaled());
  EvalService svc({&device}, ServiceOptions{});
  svc.configure_session("capped", {1, quota});

  Ticket ticket = svc.submit(fx.request(script, "capped"));
  const ServiceReport& report = ticket.wait();
  ASSERT_EQ(report.status, RequestStatus::completed) << report.error;
  EXPECT_EQ(report.evaluation->strategy,
            runtime::strategy_name(StrategyKind::streamed));
  EXPECT_GE(report.evaluation->degradations.size(), 1u)
      << "an over-quota tenant must degrade, not fail";
  expect_bitwise_equal(report.evaluation->values, fx.reference(script));

  const ServiceSnapshot snap = svc.snapshot();
  EXPECT_GE(snap.degradations, 1u);
  EXPECT_GT(snap.sessions.at("capped").quota_high_water_bytes, 0u);
  EXPECT_LE(snap.sessions.at("capped").quota_high_water_bytes, quota);
}

TEST(Service, WeightedRoundRobinHonoursWeights) {
  Fixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  ServiceOptions options;
  options.start_paused = true;
  options.coalescing = false;
  EvalService svc({&device}, options);
  svc.configure_session("heavy", {2, 0});
  svc.configure_session("light", {1, 0});

  std::vector<Ticket> heavy;
  std::vector<Ticket> light;
  for (int i = 0; i < 4; ++i) {
    heavy.push_back(svc.submit(fx.request(expressions::kDivergence, "heavy")));
  }
  for (int i = 0; i < 2; ++i) {
    light.push_back(svc.submit(fx.request(expressions::kHelicity, "light")));
  }
  svc.resume();
  svc.drain();

  // One device, weights 2:1 → dispatch order H H L H H L.
  std::vector<std::size_t> heavy_idx;
  std::vector<std::size_t> light_idx;
  for (const Ticket& t : heavy) heavy_idx.push_back(t.wait().dispatch_index);
  for (const Ticket& t : light) light_idx.push_back(t.wait().dispatch_index);
  std::sort(heavy_idx.begin(), heavy_idx.end());
  std::sort(light_idx.begin(), light_idx.end());
  EXPECT_EQ(heavy_idx, (std::vector<std::size_t>{1, 2, 4, 5}));
  EXPECT_EQ(light_idx, (std::vector<std::size_t>{3, 6}));
}

TEST(Service, PriorityOrdersRequestsWithinASession) {
  Fixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  ServiceOptions options;
  options.start_paused = true;
  options.coalescing = false;
  EvalService svc({&device}, options);

  Request low = fx.request(expressions::kDivergence);
  low.priority = 0;
  Request high = fx.request(expressions::kHelicity);
  high.priority = 5;
  Ticket t_low = svc.submit(std::move(low));
  Ticket t_high = svc.submit(std::move(high));
  svc.resume();
  svc.drain();

  EXPECT_LT(t_high.wait().dispatch_index, t_low.wait().dispatch_index)
      << "the higher-priority request must dispatch first";
}

TEST(Service, PerRequestDeadlineArmsTheWatchdog) {
  Fixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.seed = 11;
  plan.slow_command_index = 1;  // every command crawls, 4x its estimate
  plan.slowdown_factor = 4.0;
  device.fault().arm(plan);

  EvalService svc({&device}, ServiceOptions{});

  // Under the service default deadline (8x) the 4x slowdown is tolerated.
  Ticket patient = svc.submit(fx.request(expressions::kVelocityMagnitude));
  const ServiceReport& ok = patient.wait();
  ASSERT_EQ(ok.status, RequestStatus::completed) << ok.error;
  EXPECT_EQ(ok.evaluation->command_timeouts, 0u);
  expect_bitwise_equal(ok.evaluation->values,
                       fx.reference(expressions::kVelocityMagnitude));

  // A tenant with a tight per-request deadline trips the watchdog instead:
  // the 4x slowdown now exceeds its 1.5x budget on every rung.
  Request tight = fx.request(expressions::kVelocityMagnitude, "impatient");
  tight.deadline_factor = 1.5;
  Ticket ticket = svc.submit(std::move(tight));
  const ServiceReport& report = ticket.wait();
  EXPECT_EQ(report.status, RequestStatus::failed);
  EXPECT_FALSE(report.error.empty());
  EXPECT_GE(svc.snapshot().command_timeouts, 1u)
      << "the tight deadline must abandon the slowed commands";
}

// The acceptance property: N concurrent sessions submitting the paper's
// expressions produce results bit-identical to N serialized
// Engine::evaluate calls, across strategies, with a seeded FaultPlan armed.
TEST(Service, ConcurrentSessionsMatchSerializedEnginesBitExactly) {
  Fixture fx;
  vcl::FaultPlan plan;
  plan.seed = 42;
  plan.fail_write_index = 2;  // transient: retried, then recovers
  plan.transient_count = 1;

  const std::vector<std::string> scripts = {expressions::kVelocityMagnitude,
                                            expressions::kVorticityMagnitude,
                                            expressions::kQCriterion};
  const std::vector<StrategyKind> strategies = {
      StrategyKind::fusion, StrategyKind::staged, StrategyKind::roundtrip};

  // Serialized reference: one engine, one device, back to back.
  std::vector<std::vector<float>> want;
  for (const std::string& script : scripts) {
    for (const StrategyKind kind : strategies) {
      want.push_back(fx.reference(script, kind, &plan));
    }
  }

  vcl::Device dev_a(vcl::xeon_x5660_scaled());
  vcl::Device dev_b(vcl::xeon_x5660_scaled());
  dev_a.fault().arm(plan);
  dev_b.fault().arm(plan);
  EvalService svc({&dev_a, &dev_b}, ServiceOptions{});

  constexpr int kSessions = 4;
  std::vector<std::vector<Ticket>> tickets(kSessions);
  {
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSessions; ++s) {
      submitters.emplace_back([&, s] {
        for (const std::string& script : scripts) {
          for (const StrategyKind kind : strategies) {
            Request request =
                fx.request(script, "session-" + std::to_string(s));
            request.strategy = kind;
            tickets[s].push_back(svc.submit(std::move(request)));
          }
        }
      });
    }
    for (std::thread& thread : submitters) thread.join();
  }
  svc.drain();

  for (int s = 0; s < kSessions; ++s) {
    std::size_t i = 0;
    for (const Ticket& ticket : tickets[s]) {
      const ServiceReport& report = ticket.wait();
      ASSERT_EQ(report.status, RequestStatus::completed) << report.error;
      expect_bitwise_equal(report.evaluation->values, want[i]);
      ++i;
    }
  }

  const ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.completed_requests,
            static_cast<std::size_t>(kSessions) * scripts.size() *
                strategies.size());
  EXPECT_EQ(snap.failed_requests, 0u);
}

// Satellite 1: per-report program-cache attribution stays correct when
// engines evaluate concurrently on distinct threads.
TEST(Service, ThreadLocalCacheStatsAttributePerEvaluation) {
  Fixture fx;
  constexpr int kThreads = 4;
  std::vector<std::size_t> second_run_misses(kThreads, 999);
  std::vector<std::size_t> second_run_hits(kThreads, 0);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        vcl::Device device(vcl::xeon_x5660_scaled());
        Engine engine(device, {});
        engine.bind_mesh(fx.mesh);
        engine.bind("u", fx.field.u);
        engine.bind("v", fx.field.v);
        engine.bind("w", fx.field.w);
        engine.evaluate(expressions::kQCriterion);  // warm (or find) cache
        const EvaluationReport report =
            engine.evaluate(expressions::kQCriterion);
        second_run_misses[t] = report.pipeline_cache_misses;
        second_run_hits[t] = report.pipeline_cache_hits;
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(second_run_misses[t], 0u)
        << "thread " << t << ": a repeat evaluation must be all hits — "
        << "cross-thread traffic leaked into this report";
    EXPECT_GE(second_run_hits[t], 1u) << "thread " << t;
  }
}

TEST(Service, ChromeTraceMergesAllDeviceTimelines) {
  Fixture fx;
  vcl::Device dev_a(vcl::xeon_x5660_scaled());
  vcl::Device dev_b(vcl::xeon_x5660_scaled());
  EvalService svc({&dev_a, &dev_b}, ServiceOptions{});
  std::vector<Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    Request request = fx.request(expressions::kVelocityMagnitude);
    request.session = "s" + std::to_string(i % 2);
    tickets.push_back(svc.submit(std::move(request)));
  }
  svc.drain();
  for (const Ticket& t : tickets) {
    ASSERT_EQ(t.wait().status, RequestStatus::completed);
  }
  const std::string trace = svc.chrome_trace();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\""), std::string::npos);
  // Well-formed: as many opening as closing braces.
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '{'),
            std::count(trace.begin(), trace.end(), '}'));
}

TEST(Service, OptionsFromEnvReadServiceKnobs) {
  ::setenv("DFGEN_SERVICE_QUEUE_DEPTH", "17", 1);
  ::setenv("DFGEN_SERVICE_QUOTA_MB", "3", 1);
  ::setenv("DFGEN_SERVICE_BACKLOG_MB", "9", 1);
  ::setenv("DFGEN_SERVICE_COALESCE", "0", 1);
  const ServiceOptions options = ServiceOptions::from_env();
  ::unsetenv("DFGEN_SERVICE_QUEUE_DEPTH");
  ::unsetenv("DFGEN_SERVICE_QUOTA_MB");
  ::unsetenv("DFGEN_SERVICE_BACKLOG_MB");
  ::unsetenv("DFGEN_SERVICE_COALESCE");
  EXPECT_EQ(options.max_queue_depth, 17u);
  EXPECT_EQ(options.default_session_quota_bytes, 3u << 20);
  EXPECT_EQ(options.max_backlog_bytes, 9u << 20);
  EXPECT_FALSE(options.coalescing);
}

TEST(Service, MalformedExpressionFailsTheTicketWithoutDispatch) {
  Fixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  EvalService svc({&device}, ServiceOptions{});
  Ticket ticket = svc.submit(fx.request("result = ((("));
  const ServiceReport& report = ticket.wait();
  EXPECT_EQ(report.status, RequestStatus::failed);
  EXPECT_FALSE(report.error.empty());
  EXPECT_EQ(svc.snapshot().executed_evaluations, 0u);
}

}  // namespace
