// Unit tests for the dataflow layer: spec construction, deduplication/CSE,
// AST translation, topological initialization and reference counting.
#include <gtest/gtest.h>

#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "dataflow/spec.hpp"
#include "support/error.hpp"

namespace {

using namespace dfg::dataflow;
using dfg::NetworkError;

TEST(Spec, FieldSourcesDeduplicateByName) {
  NetworkSpec spec;
  const int a = spec.add_field_source("u");
  const int b = spec.add_field_source("u");
  const int c = spec.add_field_source("v");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(spec.source_count(), 2u);
}

TEST(Spec, EmptyFieldNameRejected) {
  NetworkSpec spec;
  EXPECT_THROW(spec.add_field_source(""), NetworkError);
}

TEST(Spec, ConstantsDeduplicateWhenEnabled) {
  NetworkSpec spec;
  EXPECT_EQ(spec.add_constant(0.5), spec.add_constant(0.5));
  EXPECT_NE(spec.add_constant(0.5), spec.add_constant(2.0));
}

TEST(Spec, ConstantDedupCanBeDisabled) {
  SpecOptions options;
  options.dedup_constants = false;
  NetworkSpec spec(options);
  EXPECT_NE(spec.add_constant(0.5), spec.add_constant(0.5));
}

TEST(Spec, CseFoldsIdenticalInvocations) {
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  const int v = spec.add_field_source("v");
  EXPECT_EQ(spec.add_filter("add", {u, v}), spec.add_filter("add", {u, v}));
  EXPECT_EQ(spec.filter_count(), 1u);
}

TEST(Spec, LimitedCseKeepsSwappedCommutativeOperands) {
  // The paper's CSE is "limited": add(u, v) and add(v, u) stay distinct
  // (this is what keeps the Q-criterion's s_1 and s_3 as separate filters).
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  const int v = spec.add_field_source("v");
  EXPECT_NE(spec.add_filter("add", {u, v}), spec.add_filter("add", {v, u}));
}

TEST(Spec, CommutativeCanonicalizationFoldsSwappedOperands) {
  SpecOptions options;
  options.canonicalize_commutative = true;
  NetworkSpec spec(options);
  const int u = spec.add_field_source("u");
  const int v = spec.add_field_source("v");
  EXPECT_EQ(spec.add_filter("add", {u, v}), spec.add_filter("add", {v, u}));
  // Non-commutative filters never fold across operand order.
  EXPECT_NE(spec.add_filter("sub", {u, v}), spec.add_filter("sub", {v, u}));
}

TEST(Spec, CseCanBeDisabled) {
  SpecOptions options;
  options.cse = false;
  NetworkSpec spec(options);
  const int u = spec.add_field_source("u");
  EXPECT_NE(spec.add_filter("sqrt", {u}), spec.add_filter("sqrt", {u}));
}

TEST(Spec, DecomposeDistinguishedByComponent) {
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  const int x = spec.add_field_source("x");
  const int y = spec.add_field_source("y");
  const int z = spec.add_field_source("z");
  const int dims = spec.add_field_source("dims");
  const int grad = spec.add_filter("grad3d", {u, dims, x, y, z});
  const int c0 = spec.add_filter("decompose", {grad}, 0);
  const int c1 = spec.add_filter("decompose", {grad}, 1);
  EXPECT_NE(c0, c1);
  EXPECT_EQ(c0, spec.add_filter("decompose", {grad}, 0));
}

TEST(Spec, UnknownFilterRejected) {
  NetworkSpec spec;
  EXPECT_THROW(spec.add_filter("frobnicate", {}), NetworkError);
}

TEST(Spec, ArityMismatchRejected) {
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  EXPECT_THROW(spec.add_filter("add", {u}), NetworkError);
  EXPECT_THROW(spec.add_filter("sqrt", {u, u}), NetworkError);
}

TEST(Spec, ComponentShapeValidated) {
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  const int x = spec.add_field_source("x");
  const int y = spec.add_field_source("y");
  const int z = spec.add_field_source("z");
  const int dims = spec.add_field_source("dims");
  const int grad = spec.add_filter("grad3d", {u, dims, x, y, z});
  // Arithmetic on a vector value without decompose is a shape error.
  EXPECT_THROW(spec.add_filter("add", {grad, u}), NetworkError);
  // Decompose of a scalar is equally invalid.
  EXPECT_THROW(spec.add_filter("decompose", {u}, 0), NetworkError);
}

TEST(Spec, DecomposeComponentRangeChecked) {
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  const int x = spec.add_field_source("x");
  const int y = spec.add_field_source("y");
  const int z = spec.add_field_source("z");
  const int dims = spec.add_field_source("dims");
  const int grad = spec.add_filter("grad3d", {u, dims, x, y, z});
  EXPECT_THROW(spec.add_filter("decompose", {grad}, 3), NetworkError);
  EXPECT_THROW(spec.add_filter("decompose", {grad}, -1), NetworkError);
}

TEST(Spec, Grad3dMeshOperandsMustBeFieldSources) {
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  const int x = spec.add_field_source("x");
  const int y = spec.add_field_source("y");
  const int z = spec.add_field_source("z");
  const int dims = spec.add_field_source("dims");
  const int uu = spec.add_filter("mult", {u, u});
  // The *field* operand may be a computed value (handled by staged,
  // roundtrip and the partitioned fusion pipeline)...
  EXPECT_NO_THROW(spec.add_filter("grad3d", {uu, dims, x, y, z}));
  // ...but the mesh operands must be host-bound arrays,
  EXPECT_THROW(spec.add_filter("grad3d", {u, uu, x, y, z}), NetworkError);
  EXPECT_THROW(spec.add_filter("grad3d", {u, dims, uu, y, z}), NetworkError);
  // and the gradient of a constant is rejected as degenerate.
  const int c = spec.add_constant(2.0);
  EXPECT_THROW(spec.add_filter("grad3d", {c, dims, x, y, z}), NetworkError);
}

TEST(Spec, ConstFillNotAddableAsNetworkFilter) {
  NetworkSpec spec;
  EXPECT_THROW(spec.add_filter("const_fill", {}), NetworkError);
}

TEST(Spec, InvalidInputIdRejected) {
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  EXPECT_THROW(spec.add_filter("add", {u, 99}), NetworkError);
  EXPECT_THROW(spec.add_filter("add", {u, -1}), NetworkError);
}

TEST(Spec, OutputMustBeScalar) {
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  const int x = spec.add_field_source("x");
  const int y = spec.add_field_source("y");
  const int z = spec.add_field_source("z");
  const int dims = spec.add_field_source("dims");
  const int grad = spec.add_filter("grad3d", {u, dims, x, y, z});
  EXPECT_THROW(spec.set_output(grad), NetworkError);
  spec.set_output(spec.add_filter("decompose", {grad}, 0));
}

TEST(Spec, ScriptDumpListsAllApiCalls) {
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  const int half = spec.add_constant(0.5);
  const int scaled = spec.add_filter("mult", {u, half});
  spec.set_label(scaled, "scaled");
  spec.set_output(scaled);
  const std::string script = spec.to_script();
  EXPECT_NE(script.find("add_field_source(\"u\")"), std::string::npos);
  EXPECT_NE(script.find("add_constant(0.5)"), std::string::npos);
  EXPECT_NE(script.find("add_filter(\"mult\", [n0, n1])"), std::string::npos);
  EXPECT_NE(script.find("set_output(n2)"), std::string::npos);
  EXPECT_NE(script.find("# scaled"), std::string::npos);
}

// ----- AST translation -----

TEST(Builder, TranslatesArithmeticToFilters) {
  const NetworkSpec spec = build_network("r = (u + v) * w");
  EXPECT_EQ(spec.filter_count(), 2u);
  EXPECT_EQ(spec.source_count(), 3u);
  EXPECT_EQ(spec.node(spec.output_id()).kind, "mult");
  EXPECT_EQ(spec.node(spec.output_id()).label, "r");
}

TEST(Builder, AssignedNamesResolveBeforeFieldFallback) {
  const NetworkSpec spec = build_network("u = a + b\nr = u * u");
  // "u" names the add result, so no field source "u" exists.
  for (const SpecNode& node : spec.nodes()) {
    if (node.type == NodeType::field_source) {
      EXPECT_NE(node.field_name, "u");
    }
  }
}

TEST(Builder, BracketsBecomeDecomposeFilters) {
  const NetworkSpec spec =
      build_network("du = grad3d(u, dims, x, y, z)\nr = du[1] + du[2]");
  std::size_t decomposes = 0;
  for (const SpecNode& node : spec.nodes()) {
    if (node.kind == "decompose") ++decomposes;
  }
  EXPECT_EQ(decomposes, 2u);
}

TEST(Builder, ConditionalBecomesSelectWithComparison) {
  const NetworkSpec spec =
      build_network("r = if (u > 10.0) then (v) else (w)");
  bool has_select = false;
  bool has_cmp = false;
  for (const SpecNode& node : spec.nodes()) {
    if (node.kind == "select") has_select = true;
    if (node.kind == "cmp_gt") has_cmp = true;
  }
  EXPECT_TRUE(has_select);
  EXPECT_TRUE(has_cmp);
}

TEST(Builder, UnaryMinusBecomesNegFilter) {
  const NetworkSpec spec = build_network("r = -u");
  EXPECT_EQ(spec.node(spec.output_id()).kind, "neg");
}

TEST(Builder, UnknownFunctionNamed) {
  try {
    build_network("r = curl(u)");
    FAIL() << "expected NetworkError";
  } catch (const NetworkError& err) {
    EXPECT_NE(std::string(err.what()).find("curl"), std::string::npos);
  }
}

TEST(Builder, LastStatementIsOutput) {
  const NetworkSpec spec = build_network("a = u + v\nb = a * a\nc = b - u");
  EXPECT_EQ(spec.node(spec.output_id()).label, "c");
}

TEST(Builder, RepeatedSubexpressionsShareNodes) {
  const NetworkSpec spec = build_network("r = (u * v) + (u * v)");
  EXPECT_EQ(spec.filter_count(), 2u);  // one mult + one add
}

// ----- Network initialization -----

TEST(Network, TopoOrderRespectsDependencies) {
  NetworkSpec spec = build_network("r = sqrt(u * u + v * v)");
  const Network network{std::move(spec)};
  std::vector<int> position(network.spec().nodes().size());
  for (std::size_t i = 0; i < network.topo_order().size(); ++i) {
    position[network.topo_order()[i]] = static_cast<int>(i);
  }
  for (const SpecNode& node : network.spec().nodes()) {
    for (const int in : node.inputs) {
      EXPECT_LT(position[in], position[node.id]);
    }
  }
}

TEST(Network, UseCountsCountDuplicateUses) {
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  const int sq = spec.add_filter("mult", {u, u});
  spec.set_output(sq);
  const Network network{std::move(spec)};
  EXPECT_EQ(network.use_count(u), 2);
  EXPECT_EQ(network.use_count(sq), 1);  // the output reference
}

TEST(Network, OutputUnsetThrows) {
  NetworkSpec spec;
  spec.add_field_source("u");
  EXPECT_THROW(Network{std::move(spec)}, NetworkError);
}

TEST(Network, QCriterionNetworkHasPaperFilterCount) {
  // 57 executable filters + 9 decompose = 66, plus 7 field sources and one
  // constant: the counts behind the paper's Table II Q-Crit rows.
  const NetworkSpec spec = build_network(dfg::expressions::kQCriterion);
  std::size_t decomposes = 0;
  for (const SpecNode& node : spec.nodes()) {
    if (node.kind == "decompose") ++decomposes;
  }
  EXPECT_EQ(decomposes, 9u);
  EXPECT_EQ(spec.filter_count(), 66u);
  EXPECT_EQ(spec.source_count(), 8u);  // u,v,w,x,y,z,dims + 0.5
}

}  // namespace
