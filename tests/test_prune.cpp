// Tests for dead-code elimination over the dataflow DAG (an extension
// beyond the paper, off by default).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/spec.hpp"
#include "mesh/generators.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg::dataflow;

TEST(Prune, DropsUnusedStatements) {
  const char* script = "dead = u * u\nalso_dead = dead + 1.0\nlive = v + w";
  const NetworkSpec unpruned = build_network(script);
  EXPECT_EQ(unpruned.filter_count(), 3u);

  SpecOptions options;
  options.prune_unreachable = true;
  const NetworkSpec pruned = build_network(script, options);
  EXPECT_EQ(pruned.filter_count(), 1u);
  EXPECT_EQ(pruned.node(pruned.output_id()).label, "live");
  // The unused field source "u" and the constant disappear with their
  // consumers.
  for (const SpecNode& node : pruned.nodes()) {
    EXPECT_NE(node.field_name, "u");
    EXPECT_NE(node.type, NodeType::constant);
  }
}

TEST(Prune, KeepsEverythingWhenAllReachable) {
  SpecOptions options;
  options.prune_unreachable = true;
  const NetworkSpec spec =
      build_network("a = u + v\nb = a * a\nc = b - u", options);
  const NetworkSpec unpruned = build_network("a = u + v\nb = a * a\nc = b - u");
  EXPECT_EQ(spec.nodes().size(), unpruned.nodes().size());
}

TEST(Prune, StandaloneFunctionRequiresOutput) {
  NetworkSpec spec;
  spec.add_field_source("u");
  EXPECT_THROW(prune_unreachable(spec), dfg::NetworkError);
}

TEST(Prune, PreservesLabelsComponentsAndOutput) {
  NetworkSpec spec;
  const int u = spec.add_field_source("u");
  const int x = spec.add_field_source("x");
  const int y = spec.add_field_source("y");
  const int z = spec.add_field_source("z");
  const int dims = spec.add_field_source("dims");
  const int grad = spec.add_filter("grad3d", {u, dims, x, y, z});
  const int c1 = spec.add_filter("decompose", {grad}, 1);
  spec.set_label(c1, "dudy");
  spec.add_filter("decompose", {grad}, 2);  // dead
  spec.set_output(c1);

  const NetworkSpec pruned = prune_unreachable(spec);
  EXPECT_EQ(pruned.filter_count(), 2u);  // grad + one decompose
  const SpecNode& out = pruned.node(pruned.output_id());
  EXPECT_EQ(out.label, "dudy");
  EXPECT_EQ(out.kind, "decompose");
  EXPECT_EQ(out.component, 1);
}

TEST(Prune, PrunedNetworkEvaluatesIdentically) {
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({6, 6, 6});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  dfg::vcl::Device device(dfg::vcl::xeon_x5660_scaled());

  const char* script =
      "scratch = grad3d(u, dims, x, y, z)\n"
      "ignored = scratch[0] * 2.0\n"
      "r = sqrt(v*v + w*w)";

  dfg::EngineOptions pruned_options;
  pruned_options.spec_options.prune_unreachable = true;
  dfg::Engine pruned_engine(device, pruned_options);
  pruned_engine.bind_mesh(mesh);
  pruned_engine.bind("u", field.u);
  pruned_engine.bind("v", field.v);
  pruned_engine.bind("w", field.w);
  const auto pruned = pruned_engine.evaluate(script);

  dfg::Engine plain_engine(device);
  plain_engine.bind_mesh(mesh);
  plain_engine.bind("u", field.u);
  plain_engine.bind("v", field.v);
  plain_engine.bind("w", field.w);
  const auto plain = plain_engine.evaluate(script);

  EXPECT_EQ(pruned.values, plain.values);
  // The pruned fused kernel does not read u or the mesh arrays at all.
  EXPECT_EQ(pruned.kernel_source.find("grad3d"), std::string::npos);
  EXPECT_NE(plain.kernel_source.find("grad3d"), std::string::npos);
}

TEST(Prune, DeadStatementsStopCostingKernels) {
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({4, 4, 4});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  dfg::vcl::Device device(dfg::vcl::xeon_x5660_scaled());
  const char* script = "dead = u * u\nr = v + w";

  dfg::EngineOptions options;
  options.strategy = dfg::runtime::StrategyKind::staged;
  options.spec_options.prune_unreachable = true;
  dfg::Engine engine(device, options);
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);
  const auto report = engine.evaluate(script);
  EXPECT_EQ(report.kernel_execs, 1u);
  EXPECT_EQ(report.dev_writes, 2u);  // v, w only — u is never uploaded
}

}  // namespace
