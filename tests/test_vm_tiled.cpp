// Differential property tests for the tiled VM, the bytecode optimizer and
// the fused-program cache.
//
// The tiled interpreter, the optimizer and the cache are all required to be
// *bit-exact* against the element-at-a-time interpreter: randomized programs
// covering every opcode are executed through every path and compared at the
// bit-pattern level (NaN payloads and signed zeros included). A final guard
// re-runs a Table II expression through the engine twice and requires the
// cache-hit evaluation to replay a byte-identical device event stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "kernels/generator.hpp"
#include "kernels/optimizer.hpp"
#include "kernels/program.hpp"
#include "kernels/program_cache.hpp"
#include "kernels/vm.hpp"
#include "mesh/generators.hpp"
#include "support/parallel.hpp"
#include "vcl/catalog.hpp"

#include "bitwise.hpp"

namespace {

using namespace dfg::kernels;

// ----- randomized program construction -----

const Op kBinaryOps[] = {Op::add, Op::sub, Op::mul, Op::div,
                         Op::min, Op::max, Op::pow};
const Op kUnaryOps[] = {Op::sqrt, Op::neg,  Op::abs,   Op::sin,
                        Op::cos,  Op::tan,  Op::exp,   Op::log,
                        Op::tanh, Op::floor, Op::ceil};
const Op kCompareOps[] = {Op::cmp_gt, Op::cmp_lt, Op::cmp_ge,
                          Op::cmp_le, Op::cmp_eq, Op::cmp_ne};

/// Every opcode the random body can be forced to contain (loads are always
/// present in the preamble; store / store_vec alternate via out_components).
std::vector<Op> forceable_ops() {
  std::vector<Op> ops = {Op::load_global, Op::load_global_vec, Op::load_const,
                         Op::component,   Op::select,          Op::grad3d};
  for (Op op : kBinaryOps) ops.push_back(op);
  for (Op op : kUnaryOps) ops.push_back(op);
  for (Op op : kCompareOps) ops.push_back(op);
  return ops;
}

struct TestInputs {
  std::vector<std::vector<float>> buffers;
  std::size_t grad_cells = 0;

  std::vector<BufferBinding> bindings() const {
    std::vector<BufferBinding> b;
    b.reserve(buffers.size());
    for (const auto& v : buffers) b.push_back({v.data(), v.size()});
    return b;
  }
};

std::vector<float> random_floats(std::mt19937& rng, std::size_t count) {
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<float> v(count);
  for (float& f : v) f = dist(rng);
  // Plant the special values bit-exactness is really about.
  if (count > 0) v[0] = 0.0f;
  if (count > 1) v[1] = -0.0f;
  if (count > 2) v[2] = std::numeric_limits<float>::quiet_NaN();
  if (count > 3) v[3] = std::numeric_limits<float>::infinity();
  return v;
}

/// Builds a random program over n elements whose body contains `forced`,
/// with the matching random input buffers. Parameter layout: a, b (scalar),
/// v4 (vec), then the grad3d field/dims/x/y/z buffers.
struct RandomProgram {
  Program program;
  TestInputs inputs;
};

RandomProgram make_random_program(std::mt19937& rng, Op forced, std::size_t n,
                                  int out_components) {
  ProgramBuilder b("random");
  const auto pa = b.add_param("a");
  const auto pb = b.add_param("b");
  const auto pv = b.add_param("v4", /*is_vec=*/true);
  const auto pf = b.add_param("gf");
  const auto pd = b.add_param("gdims");
  const auto px = b.add_param("gx");
  const auto py = b.add_param("gy");
  const auto pz = b.add_param("gz");

  std::vector<std::uint16_t> regs;
  regs.push_back(b.emit_load_global(pa));
  regs.push_back(b.emit_load_global(pb));
  regs.push_back(b.emit_load_global_vec(pv));
  regs.push_back(b.emit_load_const(1.5f));
  regs.push_back(b.emit_grad3d(pf, pd, px, py, pz));

  const auto pick = [&] {
    return regs[std::uniform_int_distribution<std::size_t>(
        0, regs.size() - 1)(rng)];
  };
  const auto emit = [&](Op op) {
    for (Op bin : kBinaryOps) {
      if (op == bin) {
        regs.push_back(b.emit_binary(op, pick(), pick()));
        return;
      }
    }
    for (Op un : kUnaryOps) {
      if (op == un) {
        regs.push_back(b.emit_unary(op, pick()));
        return;
      }
    }
    for (Op cmp : kCompareOps) {
      if (op == cmp) {
        regs.push_back(b.emit_binary(op, pick(), pick()));
        return;
      }
    }
    switch (op) {
      case Op::component:
        regs.push_back(b.emit_component(
            pick(), std::uniform_int_distribution<int>(0, 3)(rng)));
        break;
      case Op::select:
        regs.push_back(b.emit_select(pick(), pick(), pick()));
        break;
      case Op::grad3d:
        regs.push_back(b.emit_grad3d(pf, pd, px, py, pz));
        break;
      case Op::load_const:
        regs.push_back(b.emit_load_const(
            std::uniform_real_distribution<float>(-3.0f, 3.0f)(rng)));
        break;
      case Op::load_global:
        regs.push_back(b.emit_load_global(pa));
        break;
      case Op::load_global_vec:
        regs.push_back(b.emit_load_global_vec(pv));
        break;
      default:
        break;
    }
  };

  emit(forced);
  const std::vector<Op> pool = forceable_ops();
  for (int i = 0; i < 15; ++i) {
    emit(pool[std::uniform_int_distribution<std::size_t>(0, pool.size() - 1)(
        rng)]);
  }
  // Combine the two freshest values so the tail of the body stays live.
  regs.push_back(b.emit_binary(Op::add, regs[regs.size() - 1],
                               regs[regs.size() - 2]));

  RandomProgram result;
  result.program = b.finish(regs.back(), out_components);

  // Grid for grad3d: fixed transverse shape, enough planes to cover n.
  const std::size_t nx = 8, ny = 4;
  const std::size_t nz = (n + nx * ny - 1) / (nx * ny);
  const std::size_t cells = nx * ny * nz;
  result.inputs.grad_cells = cells;
  result.inputs.buffers.push_back(random_floats(rng, n));      // a
  result.inputs.buffers.push_back(random_floats(rng, n));      // b
  result.inputs.buffers.push_back(random_floats(rng, n * 4));  // v4
  result.inputs.buffers.push_back(random_floats(rng, cells));  // gf
  result.inputs.buffers.push_back({static_cast<float>(nx),
                                   static_cast<float>(ny),
                                   static_cast<float>(nz)});   // gdims
  result.inputs.buffers.push_back(random_floats(rng, cells));  // gx
  result.inputs.buffers.push_back(random_floats(rng, cells));  // gy
  result.inputs.buffers.push_back(random_floats(rng, cells));  // gz
  return result;
}

using dfg::test::expect_bits_equal;

std::vector<float> run_tiled(const Program& p, const TestInputs& in,
                             std::size_t n) {
  std::vector<float> out(n * p.out_stride(), -42.0f);
  const auto bindings = in.bindings();
  run(p, bindings, out.data(), out.size(), 0, n);
  return out;
}

std::vector<float> run_reference(const Program& p, const TestInputs& in,
                                 std::size_t n) {
  std::vector<float> out(n * p.out_stride(), -42.0f);
  const auto bindings = in.bindings();
  run_scalar(p, bindings, out.data(), out.size(), 0, n);
  return out;
}

// The tile-size edge cases: below, at, above, and well past one tile, plus
// the degenerate single element.
const std::size_t kSizes[] = {1, 1023, 1024, 1025, 3 * 1024 + 17};

// ----- tiled interpreter vs scalar reference -----

TEST(TiledVm, BitIdenticalToScalarInterpreterOnAllOps) {
  std::mt19937 rng(20120615);  // fixed seed: the test is deterministic
  for (Op forced : forceable_ops()) {
    for (std::size_t n : kSizes) {
      const int out_components = (n % 2 == 0) ? 3 : 1;
      const RandomProgram rp =
          make_random_program(rng, forced, n, out_components);
      SCOPED_TRACE(std::string("op ") + op_name(forced) + ", n " +
                   std::to_string(n));
      const std::vector<float> reference =
          run_reference(rp.program, rp.inputs, n);
      expect_bits_equal(run_tiled(rp.program, rp.inputs, n), reference,
                        "tiled vs scalar");

      // The optimized program must match the *unoptimized scalar* run.
      OptimizerStats stats;
      const Program optimized = optimize_program(rp.program, &stats);
      expect_bits_equal(run_tiled(optimized, rp.inputs, n), reference,
                        "optimized tiled vs scalar");
      expect_bits_equal(run_reference(optimized, rp.inputs, n), reference,
                        "optimized scalar vs scalar");
      EXPECT_LE(optimized.register_count(), rp.program.register_count());
    }
  }
}

TEST(TiledVm, UnalignedSubrangesMatchFullRun) {
  std::mt19937 rng(42);
  const std::size_t n = 2600;  // spans three tiles
  const RandomProgram rp = make_random_program(rng, Op::select, n, 1);
  const std::vector<float> full = run_tiled(rp.program, rp.inputs, n);

  // Split at a boundary nowhere near a tile edge; out is indexed with
  // absolute global ids, so the two halves land in the same buffer.
  std::vector<float> split(n * rp.program.out_stride(), -42.0f);
  const auto bindings = rp.inputs.bindings();
  run(rp.program, bindings, split.data(), split.size(), 0, 517);
  run(rp.program, bindings, split.data(), split.size(), 517, n);
  expect_bits_equal(split, full, "split vs full");
}

// ----- optimizer unit tests -----

TEST(Optimizer, FoldsLiteralArithmeticToOneConstant) {
  ProgramBuilder b("fold");
  const auto c2 = b.emit_load_const(2.0f);
  const auto c3 = b.emit_load_const(3.0f);
  const auto c4 = b.emit_load_const(4.0f);
  const auto mul = b.emit_binary(Op::mul, c3, c4);
  const auto sum = b.emit_binary(Op::add, c2, mul);
  const Program raw = b.finish(sum, 1);

  OptimizerStats stats;
  const Program opt = optimize_program(raw, &stats);
  EXPECT_GT(stats.folded_constants, 0u);
  EXPECT_GT(stats.removed_dead, 0u);
  // Everything folds away: one constant load plus the store.
  EXPECT_EQ(opt.code().size(), 2u);
  ASSERT_EQ(opt.code()[0].op, Op::load_const);
  EXPECT_EQ(opt.code()[0].imm, 14.0f);
  // The signature survives even though no parameter is read.
  EXPECT_EQ(opt.params().size(), raw.params().size());
}

TEST(Optimizer, NanLanesBlockFoldingOnlyWhenObserved) {
  // 0/0 is NaN in every lane; a load_const replacement can only represent
  // NaN in lane 0. A vector store observes lanes 1..3, so the fold must be
  // suppressed; a scalar store observes lane 0 only, so it may proceed.
  const auto build = [](int out_components) {
    ProgramBuilder b("nan");
    const auto zero = b.emit_load_const(0.0f);
    const auto nan = b.emit_binary(Op::div, zero, zero);
    return b.finish(nan, out_components);
  };

  const Program vec_raw = build(3);
  OptimizerStats vec_stats;
  const Program vec_opt = optimize_program(vec_raw, &vec_stats);
  EXPECT_EQ(vec_stats.folded_constants, 0u);

  const Program scalar_raw = build(1);
  OptimizerStats scalar_stats;
  const Program scalar_opt = optimize_program(scalar_raw, &scalar_stats);
  EXPECT_GT(scalar_stats.folded_constants, 0u);

  // Both directions stay bit-exact regardless of what the optimizer chose.
  TestInputs none;
  for (const Program* pair : {&vec_raw, &scalar_raw}) {
    const Program opt = optimize_program(*pair);
    expect_bits_equal(run_tiled(opt, none, 5), run_reference(*pair, none, 5),
                      "nan folding");
  }
}

TEST(Optimizer, EliminatesCommonSubexpressions) {
  ProgramBuilder b("cse");
  const auto pa = b.add_param("a");
  const auto u = b.emit_load_global(pa);
  const auto sq1 = b.emit_binary(Op::mul, u, u);
  const auto sq2 = b.emit_binary(Op::mul, u, u);
  const auto sum = b.emit_binary(Op::add, sq1, sq2);
  const Program raw = b.finish(sum, 1);

  OptimizerStats stats;
  const Program opt = optimize_program(raw, &stats);
  EXPECT_GT(stats.eliminated_common, 0u);
  std::size_t muls = 0;
  for (const Instr& in : opt.code()) muls += in.op == Op::mul ? 1 : 0;
  EXPECT_EQ(muls, 1u);

  std::mt19937 rng(7);
  TestInputs in;
  in.buffers.push_back(random_floats(rng, 100));
  expect_bits_equal(run_tiled(opt, in, 100), run_reference(raw, in, 100),
                    "cse");
}

TEST(Optimizer, DeadCodeEliminationKeepsGrad3dAnchors) {
  ProgramBuilder b("dce");
  const auto pa = b.add_param("a");
  const auto pf = b.add_param("gf");
  const auto pd = b.add_param("gdims");
  const auto px = b.add_param("gx");
  const auto py = b.add_param("gy");
  const auto pz = b.add_param("gz");
  const auto u = b.emit_load_global(pa);
  b.emit_grad3d(pf, pd, px, py, pz);    // result unused
  b.emit_binary(Op::mul, u, u);         // genuinely dead
  const Program raw = b.finish(u, 1);

  OptimizerStats stats;
  const Program opt = optimize_program(raw, &stats);
  EXPECT_GT(stats.removed_dead, 0u);
  std::size_t grads = 0, muls = 0;
  for (const Instr& in : opt.code()) {
    grads += in.op == Op::grad3d ? 1 : 0;
    muls += in.op == Op::mul ? 1 : 0;
  }
  // grad3d is a DCE root (it anchors slab planning and buffer validation);
  // the dead mul is not.
  EXPECT_EQ(grads, 1u);
  EXPECT_EQ(muls, 0u);
}

TEST(Optimizer, CoalescingShrinksTheRegisterFile) {
  ProgramBuilder b("chain");
  const auto pa = b.add_param("a");
  auto r = b.emit_load_global(pa);
  for (int i = 0; i < 20; ++i) {
    r = b.emit_binary(Op::add, r, b.emit_load_const(1.0f + i));
  }
  const Program raw = b.finish(r, 1);

  OptimizerStats stats;
  const Program opt = optimize_program(raw, &stats);
  EXPECT_LT(opt.register_count(), raw.register_count());
  EXPECT_LT(stats.registers_after, stats.registers_before);

  std::mt19937 rng(11);
  TestInputs in;
  in.buffers.push_back(random_floats(rng, 2000));
  expect_bits_equal(run_tiled(opt, in, 2000), run_reference(raw, in, 2000),
                    "coalesced chain");
}

// ----- fused-program cache -----

TEST(ProgramCacheTest, FingerprintIsStructuralNotObjectIdentity) {
  const dfg::dataflow::Network n1(dfg::dataflow::build_network("r = u + v"));
  const dfg::dataflow::Network n2(dfg::dataflow::build_network("r = u + v"));
  const dfg::dataflow::Network n3(dfg::dataflow::build_network("r = u - v"));
  EXPECT_EQ(n1.fingerprint(), n2.fingerprint());
  EXPECT_NE(n1.fingerprint(), n3.fingerprint());
}

TEST(ProgramCacheTest, SecondRequestIsAPointerIdenticalHit) {
  auto& cache = ProgramCache::instance();
  cache.clear();
  const dfg::dataflow::Network n1(
      dfg::dataflow::build_network("r = u * v + u"));
  const dfg::dataflow::Network n2(
      dfg::dataflow::build_network("r = u * v + u"));

  const ProgramCacheStats before = cache.stats();
  const auto first = cache.fused_pipeline(n1);
  const auto second = cache.fused_pipeline(n2);
  const ProgramCacheStats after = cache.stats();

  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(after.pipeline_misses - before.pipeline_misses, 1u);
  EXPECT_EQ(after.pipeline_hits - before.pipeline_hits, 1u);
}

TEST(ProgramCacheTest, CachedPipelineMatchesFreshGeneration) {
  auto& cache = ProgramCache::instance();
  cache.clear();
  const dfg::dataflow::Network network(
      dfg::dataflow::build_network("r = sqrt(u*u + v*v + w*w)"));
  const auto cached = cache.fused_pipeline(network);
  const FusedPipeline fresh = generate_fused_pipeline(network);

  ASSERT_EQ(cached->stages.size(), fresh.stages.size());
  for (std::size_t s = 0; s < fresh.stages.size(); ++s) {
    const Program& a = cached->stages[s].program;
    const Program& b = fresh.stages[s].program;
    ASSERT_EQ(a.code().size(), b.code().size());
    for (std::size_t pc = 0; pc < a.code().size(); ++pc) {
      EXPECT_EQ(a.code()[pc].op, b.code()[pc].op) << "stage " << s;
      EXPECT_EQ(a.code()[pc].dst, b.code()[pc].dst) << "stage " << s;
      EXPECT_EQ(a.code()[pc].args, b.code()[pc].args) << "stage " << s;
      EXPECT_EQ(std::bit_cast<std::uint32_t>(a.code()[pc].imm),
                std::bit_cast<std::uint32_t>(b.code()[pc].imm))
          << "stage " << s;
    }
  }
}

// A cache-hit evaluation must replay a byte-identical device event stream —
// the Table II counts and the simulated-time study both depend on it.
TEST(ProgramCacheTest, CacheHitReplaysIdenticalEventStream) {
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({8, 8, 8});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);

  const auto evaluate = [&](dfg::EvaluationReport& report,
                            std::vector<dfg::vcl::Event>& events) {
    dfg::vcl::Device device(dfg::vcl::xeon_x5660_scaled());
    dfg::Engine engine(device,
                       {dfg::runtime::StrategyKind::fusion, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    report = engine.evaluate(dfg::expressions::kQCriterion);
    events = engine.log().events();
  };

  ProgramCache::instance().clear();
  dfg::EvaluationReport miss_report, hit_report;
  std::vector<dfg::vcl::Event> miss_events, hit_events;
  evaluate(miss_report, miss_events);
  evaluate(hit_report, hit_events);

  EXPECT_GE(miss_report.pipeline_cache_misses, 1u);
  EXPECT_EQ(hit_report.pipeline_cache_misses, 0u);
  EXPECT_GE(hit_report.pipeline_cache_hits, 1u);

  ASSERT_EQ(miss_events.size(), hit_events.size());
  for (std::size_t i = 0; i < miss_events.size(); ++i) {
    EXPECT_EQ(miss_events[i].kind, hit_events[i].kind) << "event " << i;
    EXPECT_EQ(miss_events[i].label, hit_events[i].label) << "event " << i;
    EXPECT_EQ(miss_events[i].bytes, hit_events[i].bytes) << "event " << i;
    EXPECT_EQ(miss_events[i].flops, hit_events[i].flops) << "event " << i;
    EXPECT_EQ(miss_events[i].sim_seconds, hit_events[i].sim_seconds)
        << "event " << i;
  }
  expect_bits_equal(hit_report.values, miss_report.values,
                    "cache-hit values");
}

// ----- parallel_for grain -----

TEST(ParallelForGrain, ChunksAreGrainAlignedAndCoverTheRange) {
  dfg::support::set_worker_count(4);
  const std::size_t n = 5000, grain = 1024;
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  dfg::support::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        std::scoped_lock lock(mutex);
        ranges.push_back({begin, end});
      },
      grain);
  dfg::support::set_worker_count(0);

  std::sort(ranges.begin(), ranges.end());
  ASSERT_FALSE(ranges.empty());
  std::size_t cursor = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, cursor);
    EXPECT_EQ(begin % grain, 0u) << "chunk not tile-aligned";
    EXPECT_LT(begin, end);
    cursor = end;
  }
  EXPECT_EQ(cursor, n);
}

TEST(ParallelForGrain, GrainOfOneReproducesHistoricalChunking) {
  dfg::support::set_worker_count(4);
  const std::size_t n = 10;
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  dfg::support::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        std::scoped_lock lock(mutex);
        ranges.push_back({begin, end});
      },
      1);
  dfg::support::set_worker_count(0);

  // ceil(10/4) = 3: [0,3) [3,6) [6,9) [9,10).
  std::sort(ranges.begin(), ranges.end());
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 3}, {3, 6}, {6, 9}, {9, 10}};
  EXPECT_EQ(ranges, expected);
}

}  // namespace
