// Property-based tests: randomly generated expression scripts must satisfy
// the framework's structural invariants on every strategy —
//   * all three strategies produce identical fields,
//   * fusion always issues exactly one kernel and one readback,
//   * staged always issues exactly one readback and uploads each unique
//     external input once,
//   * roundtrip's kernel count equals its readback count,
//   * device memory is fully released after every run.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

#include "core/engine.hpp"
#include "dataflow/builder.hpp"
#include "mesh/generators.hpp"
#include "runtime/strategy.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

/// Generates a random expression script over fields u, v, w (and the mesh
/// arrays via grad3d) with a bounded number of statements.
std::string random_script(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> coin(0, 1);
  std::ostringstream os;

  std::vector<std::string> scalars{"u", "v", "w"};
  std::uniform_int_distribution<int> statements(1, 5);
  const int n_statements = statements(rng);

  // Optionally introduce gradient components as extra scalars.
  if (coin(rng) == 1) {
    os << "g = grad3d(u, dims, x, y, z)\n";
    std::uniform_int_distribution<int> comp(0, 2);
    os << "gc = g[" << comp(rng) << "]\n";
    scalars.push_back("gc");
  }

  const auto pick = [&](const std::vector<std::string>& pool) {
    std::uniform_int_distribution<std::size_t> d(0, pool.size() - 1);
    return pool[d(rng)];
  };
  const auto term = [&]() -> std::string {
    std::uniform_int_distribution<int> kind(0, 4);
    switch (kind(rng)) {
      case 0:
        return pick(scalars);
      case 1: {
        std::uniform_real_distribution<double> c(-2.0, 2.0);
        std::ostringstream v;
        v << c(rng);
        return v.str();
      }
      case 2:
        return "abs(" + pick(scalars) + ")";
      case 3:
        return "sqrt(abs(" + pick(scalars) + ") + 1.0)";
      default:
        return "(" + pick(scalars) + " * " + pick(scalars) + ")";
    }
  };
  const char* ops[] = {" + ", " - ", " * "};
  std::uniform_int_distribution<int> op(0, 2);

  for (int s = 0; s < n_statements; ++s) {
    const std::string name = "t" + std::to_string(s);
    os << name << " = " << term() << ops[op(rng)] << term();
    if (coin(rng) == 1) {
      os << ops[op(rng)] << term();
    }
    os << "\n";
    scalars.push_back(name);
  }
  if (coin(rng) == 1) {
    os << "result = if (t0 > 0.0) then (t" << (n_statements - 1)
       << ") else (-t" << (n_statements - 1) << ")\n";
  } else {
    os << "result = t" << (n_statements - 1) << " + 0.0\n";
  }
  return os.str();
}

class PropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PropertyTest, StrategiesAgreeAndInvariantsHold) {
  const std::string script = random_script(GetParam());
  SCOPED_TRACE(script);

  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({5, 6, 4});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh, GetParam());
  vcl::Device device(vcl::xeon_x5660_scaled());

  // Count the unique external inputs the script uses.
  const auto spec = dataflow::build_network(script);
  const std::size_t unique_inputs = spec.field_names().size();

  std::vector<std::vector<float>> results;
  for (const auto kind : {StrategyKind::roundtrip, StrategyKind::staged,
                          StrategyKind::fusion}) {
    Engine engine(device, {kind, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    const EvaluationReport report = engine.evaluate(script);
    ASSERT_EQ(report.values.size(), mesh.cell_count());
    for (const float value : report.values) {
      ASSERT_TRUE(std::isfinite(value) || std::isnan(value));
    }

    switch (kind) {
      case StrategyKind::fusion:
        EXPECT_EQ(report.kernel_execs, 1u);
        EXPECT_EQ(report.dev_reads, 1u);
        EXPECT_EQ(report.dev_writes, unique_inputs);
        break;
      case StrategyKind::staged:
        EXPECT_EQ(report.dev_reads, 1u);
        // Unique inputs upload once; constants add fill kernels, not
        // writes.
        EXPECT_EQ(report.dev_writes, unique_inputs);
        EXPECT_GE(report.kernel_execs, 1u);
        break;
      case StrategyKind::roundtrip:
        // Every kernel result returns to the host.
        EXPECT_EQ(report.kernel_execs, report.dev_reads);
        EXPECT_GE(report.dev_writes, report.kernel_execs);
        break;
    }
    EXPECT_EQ(device.memory().in_use(), 0u)
        << "device memory must be fully released";
    results.push_back(report.values);
  }

  for (std::size_t i = 0; i < results[0].size(); ++i) {
    const bool nan0 = std::isnan(results[0][i]);
    ASSERT_EQ(nan0, std::isnan(results[1][i])) << "cell " << i;
    ASSERT_EQ(nan0, std::isnan(results[2][i])) << "cell " << i;
    if (!nan0) {
      ASSERT_EQ(results[0][i], results[1][i]) << "cell " << i;
      ASSERT_EQ(results[0][i], results[2][i]) << "cell " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScripts, PropertyTest,
                         ::testing::Range(0u, 40u));

TEST(PropertyEdge, DeeplyNestedExpressionStressesRegisters) {
  // A long product chain: fusion must still emit a single valid kernel.
  std::ostringstream os;
  os << "r = u";
  for (int i = 0; i < 60; ++i) os << " + u * " << (i + 1) << ".0";
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({4, 4, 4});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine(device, {StrategyKind::fusion, {}});
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  const auto report = engine.evaluate(os.str());
  EXPECT_EQ(report.kernel_execs, 1u);
  float expected = field.u[0];
  for (int i = 0; i < 60; ++i) {
    expected += field.u[0] * static_cast<float>(i + 1);
  }
  EXPECT_NEAR(report.values[0], expected, std::fabs(expected) * 1e-5f);
}

}  // namespace
