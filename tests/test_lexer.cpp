// Unit tests for the expression lexer.
#include <gtest/gtest.h>

#include "expr/lexer.hpp"
#include "support/error.hpp"

namespace {

using namespace dfg::expr;

std::vector<TokenKind> kinds(const std::string& source) {
  std::vector<TokenKind> out;
  for (const Token& t : tokenize(source)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEndOfInput) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::end_of_input);
}

TEST(Lexer, SingleCharacterOperators) {
  EXPECT_EQ(kinds("+ - * / ( ) [ ] , = < >"),
            (std::vector<TokenKind>{
                TokenKind::plus, TokenKind::minus, TokenKind::star,
                TokenKind::slash, TokenKind::lparen, TokenKind::rparen,
                TokenKind::lbracket, TokenKind::rbracket, TokenKind::comma,
                TokenKind::assign, TokenKind::less, TokenKind::greater,
                TokenKind::end_of_input}));
}

TEST(Lexer, TwoCharacterOperators) {
  EXPECT_EQ(kinds("<= >= == !="),
            (std::vector<TokenKind>{
                TokenKind::less_equal, TokenKind::greater_equal,
                TokenKind::equal_equal, TokenKind::not_equal,
                TokenKind::end_of_input}));
}

TEST(Lexer, AdjacentComparisonAndAssign) {
  // "a==b" must not lex as assign-assign.
  const auto tokens = tokenize("a==b");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].kind, TokenKind::equal_equal);
}

TEST(Lexer, Identifiers) {
  const auto tokens = tokenize("v_mag du2 _tmp");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "v_mag");
  EXPECT_EQ(tokens[1].text, "du2");
  EXPECT_EQ(tokens[2].text, "_tmp");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::identifier);
  }
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("if then else iffy"),
            (std::vector<TokenKind>{TokenKind::kw_if, TokenKind::kw_then,
                                    TokenKind::kw_else, TokenKind::identifier,
                                    TokenKind::end_of_input}));
}

TEST(Lexer, IntegerAndFloatLiterals) {
  const auto tokens = tokenize("42 0.5 10. .25");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_DOUBLE_EQ(tokens[0].value, 42.0);
  EXPECT_DOUBLE_EQ(tokens[1].value, 0.5);
  EXPECT_DOUBLE_EQ(tokens[2].value, 10.0);
  EXPECT_DOUBLE_EQ(tokens[3].value, 0.25);
}

TEST(Lexer, ExponentLiterals) {
  const auto tokens = tokenize("1e3 2.5E-2 7e+1");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_DOUBLE_EQ(tokens[0].value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[1].value, 0.025);
  EXPECT_DOUBLE_EQ(tokens[2].value, 70.0);
}

TEST(Lexer, MalformedExponentThrows) {
  EXPECT_THROW(tokenize("2e"), dfg::ParseError);
  EXPECT_THROW(tokenize("2e+"), dfg::ParseError);
}

TEST(Lexer, DoubleDotLiteralThrows) {
  EXPECT_THROW(tokenize("1.2.3"), dfg::ParseError);
}

TEST(Lexer, UnknownCharacterThrowsWithPosition) {
  try {
    tokenize("a = b $ c");
    FAIL() << "expected ParseError";
  } catch (const dfg::ParseError& err) {
    EXPECT_EQ(err.line(), 1);
    EXPECT_EQ(err.column(), 7);
  }
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = tokenize("a = 1\nbb = 2");
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[3].text, "bb");
  EXPECT_EQ(tokens[3].line, 2);
  EXPECT_EQ(tokens[3].column, 1);
  EXPECT_EQ(tokens[4].kind, TokenKind::assign);
  EXPECT_EQ(tokens[4].column, 4);
}

TEST(Lexer, CommentsSkippedToEndOfLine) {
  const auto tokens = tokenize("a = 1 # the answer\nb = 2");
  std::size_t identifiers = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::identifier) ++identifiers;
  }
  EXPECT_EQ(identifiers, 2u);
}

TEST(Lexer, WhitespaceVariantsIgnored) {
  EXPECT_EQ(kinds("a\t=\r\n 1").size(), 4u);
}

TEST(Lexer, PaperVelocityMagnitudeTokenCount) {
  // v_mag = sqrt(u*u + v*v + w*w): 16 tokens + EOI.
  EXPECT_EQ(tokenize("v_mag = sqrt(u*u + v*v + w*w)").size(), 17u);
}

}  // namespace
