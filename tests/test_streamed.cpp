// Tests for the streamed-fusion strategy and the multi-device executor —
// the paper's two future-work execution modes.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "kernels/generator.hpp"
#include "core/expressions.hpp"
#include "mesh/generators.hpp"
#include "runtime/multidevice.hpp"
#include "runtime/slab.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

struct StreamFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({12, 10, 24});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);

  Engine make(vcl::Device& device, StrategyKind kind,
              std::size_t chunk_cells = 0) {
    EngineOptions options;
    options.strategy = kind;
    options.streamed_chunk_cells = chunk_cells;
    Engine engine(device, options);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine;
  }
};

class StreamedEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(StreamedEquivalence, BitMatchesFusionAtSeveralChunkSizes) {
  StreamFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  const auto fusion =
      fx.make(device, StrategyKind::fusion).evaluate(GetParam()).values;
  const std::size_t plane = 12 * 10;
  for (const std::size_t chunk_cells :
       {plane, 3 * plane, 7 * plane, 24 * plane, std::size_t{0}}) {
    const auto streamed = fx.make(device, StrategyKind::streamed, chunk_cells)
                              .evaluate(GetParam())
                              .values;
    ASSERT_EQ(streamed.size(), fusion.size());
    for (std::size_t i = 0; i < fusion.size(); ++i) {
      ASSERT_EQ(streamed[i], fusion[i])
          << "cell " << i << " chunk " << chunk_cells;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, StreamedEquivalence,
    ::testing::Values(expressions::kVelocityMagnitude,
                      expressions::kVorticityMagnitude,
                      expressions::kQCriterion,
                      "r = if (u > 0.0) then (sqrt(abs(u))) else (-u)"));

TEST(Streamed, RunsWhereFusionCannotFit) {
  // The whole point of streaming: a device too small for fusion's full
  // working set still completes, with memory bounded by the chunk.
  StreamFixture fx;
  const std::size_t cells = fx.mesh.cell_count();
  vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
  spec.global_mem_bytes = 3 * cells * sizeof(float);  // < 8 arrays
  vcl::Device device(spec);

  Engine fusion_engine = fx.make(device, StrategyKind::fusion);
  EXPECT_THROW(fusion_engine.evaluate(expressions::kQCriterion),
               DeviceOutOfMemory);

  Engine streamed_engine = fx.make(device, StrategyKind::streamed);
  const auto report = streamed_engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.values.size(), cells);
  EXPECT_LE(report.memory_high_water_bytes, spec.global_mem_bytes);

  vcl::Device roomy(vcl::xeon_x5660_scaled());
  const auto fusion =
      fx.make(roomy, StrategyKind::fusion).evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.values, fusion.values);
}

TEST(Streamed, EventCountsScaleWithChunks) {
  StreamFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  const std::size_t plane = 12 * 10;
  // 24 planes in chunks of 6 -> 4 chunks; Q-criterion has 7 slabbed params
  // plus the rewritten dims, one kernel and one read per chunk.
  Engine engine = fx.make(device, StrategyKind::streamed, 8 * plane);
  const auto report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.kernel_execs, 4u);
  EXPECT_EQ(report.dev_reads, 4u);
  EXPECT_EQ(report.dev_writes, 4u * 7u);
  EXPECT_EQ(report.strategy, "streamed");
  EXPECT_FALSE(report.kernel_source.empty());
}

TEST(Streamed, SingleChunkDegeneratesToFusionEvents) {
  StreamFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine =
      fx.make(device, StrategyKind::streamed, fx.mesh.cell_count());
  const auto report = engine.evaluate(expressions::kVelocityMagnitude);
  EXPECT_EQ(report.kernel_execs, 1u);
  EXPECT_EQ(report.dev_reads, 1u);
  EXPECT_EQ(report.dev_writes, 3u);
}

TEST(Streamed, ElementwiseExpressionsChunkAtAnyGranularity) {
  // Without gradients there is no halo and no dims requirement: streaming
  // works on bare arrays of any length.
  vcl::Device device(vcl::xeon_x5660_scaled());
  std::vector<float> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i) * 0.01f;
  }
  EngineOptions options;
  options.strategy = StrategyKind::streamed;
  options.streamed_chunk_cells = 37;  // deliberately unaligned
  Engine engine(device, options);
  engine.bind("u", data);
  const auto report = engine.evaluate("r = u * u + 1.0");
  ASSERT_EQ(report.values.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(report.values[i], data[i] * data[i] + 1.0f);
  }
  EXPECT_EQ(report.kernel_execs, (1000 + 36) / 37);
}

TEST(Streamed, MismatchedDimsRejected) {
  StreamFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine = fx.make(device, StrategyKind::streamed);
  // Force elements inconsistent with nx*ny*nz.
  EXPECT_THROW(
      engine.evaluate(expressions::kVorticityMagnitude,
                      fx.mesh.cell_count() - 1),
      NetworkError);
}

// ----- Multi-device -----

TEST(MultiDevice, TwoDevicesBitMatchSingleDeviceFusion) {
  StreamFixture fx;
  runtime::FieldBindings bindings;
  bindings.bind_mesh(fx.mesh);
  bindings.bind("u", fx.field.u);
  bindings.bind("v", fx.field.v);
  bindings.bind("w", fx.field.w);

  vcl::Device gpu0(vcl::tesla_m2050_scaled());
  vcl::Device gpu1(vcl::tesla_m2050_scaled());
  std::vector<vcl::ProfilingLog> logs(2);
  const dataflow::Network network(
      dataflow::build_network(expressions::kQCriterion));
  const auto report = runtime::execute_multi_device_fusion(
      network, bindings, fx.mesh.cell_count(), {&gpu0, &gpu1}, logs);

  vcl::Device single(vcl::xeon_x5660_scaled());
  const auto fusion = fx.make(single, StrategyKind::fusion)
                          .evaluate(expressions::kQCriterion)
                          .values;
  EXPECT_EQ(report.values, fusion);
  EXPECT_EQ(report.devices_used, 2u);
  // Work split roughly in half: the critical path is well under the
  // aggregate.
  EXPECT_LT(report.critical_path_sim_seconds,
            0.75 * report.aggregate_sim_seconds);
  EXPECT_GT(logs[0].count(vcl::EventKind::kernel_exec), 0u);
  EXPECT_GT(logs[1].count(vcl::EventKind::kernel_exec), 0u);
}

TEST(MultiDevice, MoreDevicesThanPlanesLeavesSomeIdle) {
  vcl::Device d0(vcl::xeon_x5660_scaled());
  vcl::Device d1(vcl::xeon_x5660_scaled());
  vcl::Device d2(vcl::xeon_x5660_scaled());
  std::vector<vcl::ProfilingLog> logs(3);
  std::vector<float> data{1.0f, 2.0f};
  runtime::FieldBindings bindings;
  bindings.bind("u", data);
  const dataflow::Network network(dataflow::build_network("r = u + 1.0"));
  const auto report = runtime::execute_multi_device_fusion(
      network, bindings, 2, {&d0, &d1, &d2}, logs);
  EXPECT_EQ(report.devices_used, 2u);
  EXPECT_EQ(report.values, (std::vector<float>{2.0f, 3.0f}));
}

TEST(MultiDevice, ScalesAcrossDeviceCounts) {
  StreamFixture fx;
  runtime::FieldBindings bindings;
  bindings.bind_mesh(fx.mesh);
  bindings.bind("u", fx.field.u);
  bindings.bind("v", fx.field.v);
  bindings.bind("w", fx.field.w);
  const dataflow::Network network(
      dataflow::build_network(expressions::kQCriterion));

  double previous_critical = 1e9;
  for (const std::size_t count : {1u, 2u, 4u}) {
    std::vector<std::unique_ptr<vcl::Device>> devices;
    std::vector<vcl::Device*> device_ptrs;
    for (std::size_t d = 0; d < count; ++d) {
      devices.push_back(
          std::make_unique<vcl::Device>(vcl::tesla_m2050_scaled()));
      device_ptrs.push_back(devices.back().get());
    }
    std::vector<vcl::ProfilingLog> logs(count);
    const auto report = runtime::execute_multi_device_fusion(
        network, bindings, fx.mesh.cell_count(), device_ptrs, logs);
    EXPECT_LT(report.critical_path_sim_seconds, previous_critical)
        << count << " devices";
    previous_critical = report.critical_path_sim_seconds;
  }
}

TEST(MultiDevice, EmptyDeviceListRejected) {
  runtime::FieldBindings bindings;
  std::vector<float> data{1.0f};
  bindings.bind("u", data);
  std::vector<vcl::ProfilingLog> logs;
  const dataflow::Network network(dataflow::build_network("r = u"));
  EXPECT_THROW(
      runtime::execute_multi_device_fusion(network, bindings, 1, {}, logs),
      NetworkError);
}

// ----- Slab plan unit behaviour -----

TEST(SlabPlan, GradientProgramPlansByPlanesWithHalo) {
  StreamFixture fx;
  runtime::FieldBindings bindings;
  bindings.bind_mesh(fx.mesh);
  bindings.bind("u", fx.field.u);
  bindings.bind("v", fx.field.v);
  bindings.bind("w", fx.field.w);
  const dataflow::Network network(
      dataflow::build_network(expressions::kVorticityMagnitude));
  const auto program = kernels::generate_fused(network);
  const auto plan =
      runtime::make_slab_plan(program, bindings, fx.mesh.cell_count());
  EXPECT_EQ(plan.plane_cells, 12u * 10u);
  EXPECT_EQ(plan.total_planes, 24u);
  EXPECT_EQ(plan.halo, 1u);
  EXPECT_EQ(plan.slabbed_params, 6u);  // u, v, w, x, y, z (dims rewritten)
}

TEST(SlabPlan, ElementwiseProgramPlansByElements) {
  runtime::FieldBindings bindings;
  std::vector<float> data(100, 1.0f);
  bindings.bind("u", data);
  const dataflow::Network network(dataflow::build_network("r = u * 2.0"));
  const auto program = kernels::generate_fused(network);
  const auto plan = runtime::make_slab_plan(program, bindings, 100);
  EXPECT_EQ(plan.plane_cells, 1u);
  EXPECT_EQ(plan.total_planes, 100u);
  EXPECT_EQ(plan.halo, 0u);
}

}  // namespace
