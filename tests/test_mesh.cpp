// Unit tests for the mesh layer: rectilinear meshes, the flow generators
// and the Table I sub-grid catalog.
#include <gtest/gtest.h>

#include <cmath>

#include "mesh/catalog.hpp"
#include "mesh/generators.hpp"
#include "mesh/mesh.hpp"
#include "support/error.hpp"

namespace {

using namespace dfg::mesh;

TEST(Mesh, UniformMeshNodeCoordinates) {
  const RectilinearMesh mesh = RectilinearMesh::uniform({4, 2, 1}, 8.0f, 2.0f,
                                                        1.0f);
  EXPECT_EQ(mesh.dims(), (Dims{4, 2, 1}));
  EXPECT_EQ(mesh.cell_count(), 8u);
  ASSERT_EQ(mesh.x_nodes().size(), 5u);
  EXPECT_FLOAT_EQ(mesh.x_nodes()[0], 0.0f);
  EXPECT_FLOAT_EQ(mesh.x_nodes()[4], 8.0f);
  EXPECT_FLOAT_EQ(mesh.x_center(0), 1.0f);
  EXPECT_FLOAT_EQ(mesh.y_center(1), 1.5f);
}

TEST(Mesh, DimsArrayMatchesCellCounts) {
  const RectilinearMesh mesh = RectilinearMesh::uniform({3, 5, 7});
  ASSERT_EQ(mesh.dims_array().size(), 3u);
  EXPECT_FLOAT_EQ(mesh.dims_array()[0], 3.0f);
  EXPECT_FLOAT_EQ(mesh.dims_array()[1], 5.0f);
  EXPECT_FLOAT_EQ(mesh.dims_array()[2], 7.0f);
}

TEST(Mesh, CellIndexIsRowMajorXFastest) {
  const RectilinearMesh mesh = RectilinearMesh::uniform({3, 4, 5});
  EXPECT_EQ(mesh.cell_index(0, 0, 0), 0u);
  EXPECT_EQ(mesh.cell_index(1, 0, 0), 1u);
  EXPECT_EQ(mesh.cell_index(0, 1, 0), 3u);
  EXPECT_EQ(mesh.cell_index(0, 0, 1), 12u);
  EXPECT_EQ(mesh.cell_index(2, 3, 4), 3u * 4u * 5u - 1u);
}

TEST(Mesh, NonMonotonicAxisRejected) {
  EXPECT_THROW(
      RectilinearMesh({0.0f, 1.0f, 0.5f}, {0.0f, 1.0f}, {0.0f, 1.0f}),
      dfg::Error);
  EXPECT_THROW(RectilinearMesh({0.0f, 0.0f}, {0.0f, 1.0f}, {0.0f, 1.0f}),
               dfg::Error);
}

TEST(Mesh, TooFewNodesRejected) {
  EXPECT_THROW(RectilinearMesh({0.0f}, {0.0f, 1.0f}, {0.0f, 1.0f}),
               dfg::Error);
  EXPECT_THROW(RectilinearMesh::uniform({0, 4, 4}), dfg::Error);
}

TEST(Mesh, StretchedAxisCellCenters) {
  const RectilinearMesh mesh({0.0f, 1.0f, 4.0f}, {0.0f, 1.0f}, {0.0f, 1.0f});
  EXPECT_FLOAT_EQ(mesh.x_center(0), 0.5f);
  EXPECT_FLOAT_EQ(mesh.x_center(1), 2.5f);
}

// ----- Generators -----

TEST(Generators, RayleighTaylorIsDeterministicPerSeed) {
  const RectilinearMesh mesh = RectilinearMesh::uniform({6, 6, 6});
  const VectorField a = rayleigh_taylor_flow(mesh, 7);
  const VectorField b = rayleigh_taylor_flow(mesh, 7);
  const VectorField c = rayleigh_taylor_flow(mesh, 8);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.w, b.w);
  EXPECT_NE(a.u, c.u);
}

TEST(Generators, RayleighTaylorFieldsSizedAndFinite) {
  const RectilinearMesh mesh = RectilinearMesh::uniform({5, 7, 9});
  const VectorField f = rayleigh_taylor_flow(mesh);
  EXPECT_EQ(f.u.size(), mesh.cell_count());
  EXPECT_EQ(f.v.size(), mesh.cell_count());
  EXPECT_EQ(f.w.size(), mesh.cell_count());
  float max_mag = 0.0f;
  for (std::size_t i = 0; i < f.u.size(); ++i) {
    ASSERT_TRUE(std::isfinite(f.u[i]) && std::isfinite(f.v[i]) &&
                std::isfinite(f.w[i]));
    max_mag = std::max(max_mag, std::fabs(f.w[i]));
  }
  EXPECT_GT(max_mag, 0.0f) << "flow must not be identically zero";
}

TEST(Generators, RayleighTaylorEnvelopeConcentratesAtMidplane) {
  // Motion should be stronger near the mixing layer (z midplane) than at
  // the far z boundaries.
  const RectilinearMesh mesh = RectilinearMesh::uniform({8, 8, 32});
  const VectorField f = rayleigh_taylor_flow(mesh);
  double mid_energy = 0.0;
  double edge_energy = 0.0;
  for (std::size_t j = 0; j < 8; ++j) {
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t mid = mesh.cell_index(i, j, 16);
      const std::size_t edge = mesh.cell_index(i, j, 0);
      mid_energy += f.w[mid] * f.w[mid];
      edge_energy += f.w[edge] * f.w[edge];
    }
  }
  EXPECT_GT(mid_energy, edge_energy * 10.0);
}

TEST(Generators, AbcFlowMatchesClosedForm) {
  const float two_pi = 6.2831853f;
  const RectilinearMesh mesh =
      RectilinearMesh::uniform({8, 8, 8}, two_pi, two_pi, two_pi);
  const VectorField f = abc_flow(mesh, 1.0f, 2.0f, 3.0f);
  const std::size_t idx = mesh.cell_index(2, 3, 4);
  const float x = mesh.x_center(2);
  const float y = mesh.y_center(3);
  const float z = mesh.z_center(4);
  EXPECT_NEAR(f.u[idx], 1.0f * std::sin(z) + 3.0f * std::cos(y), 1e-6f);
  EXPECT_NEAR(f.v[idx], 2.0f * std::sin(x) + 1.0f * std::cos(z), 1e-6f);
  EXPECT_NEAR(f.w[idx], 3.0f * std::sin(y) + 2.0f * std::cos(x), 1e-6f);
}

TEST(Generators, AbcAnalyticGradientIsTraceFree) {
  float J[3][3];
  abc_velocity_gradient(0.3f, 1.1f, 2.7f, 1.0f, 1.0f, 1.0f, J);
  EXPECT_FLOAT_EQ(J[0][0] + J[1][1] + J[2][2], 0.0f)
      << "ABC flow is incompressible";
}

TEST(Generators, AbcVorticityEqualsVelocity) {
  // The Beltrami property at an arbitrary point.
  const float x = 0.7f, y = 1.9f, z = 0.2f;
  float omega[3];
  abc_vorticity(x, y, z, 1.0f, 1.5f, 0.5f, omega);
  EXPECT_NEAR(omega[0], 1.0f * std::sin(z) + 0.5f * std::cos(y), 1e-6f);
  EXPECT_NEAR(omega[1], 1.5f * std::sin(x) + 1.0f * std::cos(z), 1e-6f);
  EXPECT_NEAR(omega[2], 0.5f * std::sin(y) + 1.5f * std::cos(x), 1e-6f);
}

TEST(Generators, AbcQCriterionConsistentWithGradient) {
  // Q computed from the analytic J must match the closed-form helper.
  const float x = 0.4f, y = 2.2f, z = 1.3f;
  float J[3][3];
  abc_velocity_gradient(x, y, z, 1.0f, 1.0f, 1.0f, J);
  float s_norm = 0.0f, w_norm = 0.0f;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const float s = 0.5f * (J[r][c] + J[c][r]);
      const float w = 0.5f * (J[r][c] - J[c][r]);
      s_norm += s * s;
      w_norm += w * w;
    }
  }
  EXPECT_NEAR(abc_q_criterion(x, y, z, 1.0f, 1.0f, 1.0f),
              0.5f * (w_norm - s_norm), 1e-6f);
}

// ----- Table I catalog -----

TEST(Catalog, FullScaleMatchesTable1) {
  const auto catalog = subgrid_catalog(1);
  ASSERT_EQ(catalog.size(), 12u);
  EXPECT_EQ(catalog.front().dims, (Dims{192, 192, 256}));
  EXPECT_EQ(catalog.front().cells, 9'437'184u);
  EXPECT_EQ(catalog.back().dims, (Dims{192, 192, 3072}));
  EXPECT_EQ(catalog.back().cells, 113'246'208u);
  // Table I reports 218 MB for the smallest sub-grid (3 components, double
  // precision: 24 B/cell = 216 MiB ~ 218 MB decimal-ish).
  EXPECT_EQ(catalog.front().data_bytes, 9'437'184u * 24u);
  // Sizes grow linearly with k.
  for (std::size_t k = 1; k < catalog.size(); ++k) {
    EXPECT_EQ(catalog[k].cells, catalog.front().cells * (k + 1));
  }
}

TEST(Catalog, ScaledCatalogShrinksByAxisCube) {
  const auto full = subgrid_catalog(1);
  const auto scaled = subgrid_catalog(kEvaluationAxisScale);
  ASSERT_EQ(scaled.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(scaled[i].cells * 64, full[i].cells);
  }
  EXPECT_EQ(scaled.front().dims, (Dims{48, 48, 64}));
}

TEST(Catalog, InvalidScaleRejected) {
  EXPECT_THROW(subgrid_catalog(0), dfg::Error);
  EXPECT_THROW(subgrid_catalog(5), dfg::Error);
}

TEST(Catalog, LargestSubgridExceedsM2050EvenUnderFusion) {
  // Sanity link between Table I and the 3 GB device: even fusion's minimal
  // Q-criterion working set (7 inputs + 1 output) cannot fit the largest
  // sub-grid, matching the paper's failed GPU test cases at the top of the
  // sweep.
  const auto catalog = subgrid_catalog(1);
  const std::size_t bytes_per_array = catalog.back().cells * sizeof(float);
  EXPECT_GT(8 * bytes_per_array, std::size_t(3) << 30);
  // The smallest sub-grid fits comfortably.
  EXPECT_LT(8 * catalog.front().cells * sizeof(float), std::size_t(3) << 30);
}

}  // namespace
