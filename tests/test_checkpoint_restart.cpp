// Distributed resilience tests: straggler speculation, quarantine, and
// checkpointed restart. A rank running 50x slow must not stretch the
// critical path past 2x the fault-free run (its blocks move to healthy
// devices); a bit-flipping device must never leak a corrupted value into
// the global field; and a run killed at block k must resume from its
// journal, re-executing only the missing blocks, bit-identically.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/expressions.hpp"
#include "distrib/checkpoint.hpp"
#include "distrib/decomposition.hpp"
#include "distrib/dist_engine.hpp"
#include "mesh/generators.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

/// A fresh, empty scratch directory under the test temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "dfgen_ckpt_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// 8^3 mesh split into 4 blocks over a 1-node / 2-device cluster: enough
/// blocks for partial-progress journals, two ranks so quarantine and
/// speculation have somewhere to go.
struct ClusterFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);

  distrib::ClusterConfig config() {
    distrib::ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.devices_per_node = 2;
    cfg.device_spec = vcl::xeon_x5660_scaled();
    cfg.checkpoint_dir.clear();  // tests opt in explicitly
    return cfg;
  }

  distrib::DistributedReport run(
      const distrib::ClusterConfig& cfg,
      const char* expression = expressions::kQCriterion,
      StrategyKind kind = StrategyKind::fusion) {
    distrib::DistributedEngine engine(
        mesh, distrib::GridDecomposition({8, 8, 8}, 2, 2, 1), cfg);
    engine.bind_global("u", field.u);
    engine.bind_global("v", field.v);
    engine.bind_global("w", field.w);
    return engine.evaluate(expression, kind);
  }
};

// ------------------------------------------------------- straggler budgets

TEST(Straggler, MildSlowdownIsSpeculatedAndTheFastResultWins) {
  ClusterFixture fx;
  const distrib::DistributedReport baseline = fx.run(fx.config());

  distrib::ClusterConfig cfg = fx.config();
  // 6x: under the command watchdog's deadline of 8x (no timeouts) but past
  // the 4x block budget — the straggler path, not the quarantine path.
  cfg.fault_plan.slow_command_index = 1;
  cfg.fault_plan.slowdown_factor = 6.0;
  cfg.fault_rank = 0;
  const distrib::DistributedReport report = fx.run(cfg);

  EXPECT_EQ(report.command_timeouts, 0u);
  EXPECT_GE(report.straggler_blocks, 1u);
  EXPECT_GE(report.speculative_executions, 1u);
  EXPECT_GE(report.speculations_won, 1u);
  EXPECT_EQ(report.quarantined_devices, 0u);
  EXPECT_EQ(report.values, baseline.values);
  // The duplicate execution is charged: total time exceeds the baseline by
  // more than the slowdown alone would.
  EXPECT_GT(report.total_sim_seconds, baseline.total_sim_seconds);
}

TEST(Straggler, SpeculationDisabledByZeroBudgetFactor) {
  ClusterFixture fx;
  distrib::ClusterConfig cfg = fx.config();
  cfg.straggler_budget_factor = 0.0;
  cfg.fault_plan.slow_command_index = 1;
  cfg.fault_plan.slowdown_factor = 6.0;
  cfg.fault_rank = 0;
  const distrib::DistributedReport report = fx.run(cfg);
  EXPECT_EQ(report.straggler_blocks, 0u);
  EXPECT_EQ(report.speculative_executions, 0u);
}

TEST(Straggler, CleanRunNeverSpeculates) {
  ClusterFixture fx;
  const distrib::DistributedReport report = fx.run(fx.config());
  EXPECT_EQ(report.straggler_blocks, 0u);
  EXPECT_EQ(report.speculative_executions, 0u);
  EXPECT_EQ(report.command_timeouts, 0u);
  EXPECT_EQ(report.checksum_mismatches, 0u);
  EXPECT_EQ(report.quarantined_devices, 0u);
}

TEST(Straggler, SevereSlowdownIsQuarantinedWithinTwiceFaultFree) {
  ClusterFixture fx;
  const distrib::DistributedReport baseline = fx.run(fx.config());

  distrib::ClusterConfig cfg = fx.config();
  cfg.fault_plan.slow_command_index = 1;
  cfg.fault_plan.slowdown_factor = 50.0;  // far past the 8x deadline
  cfg.fault_rank = 0;
  const distrib::DistributedReport report = fx.run(cfg);

  EXPECT_EQ(report.quarantined_devices, 1u);
  EXPECT_GT(report.command_timeouts, 0u);
  EXPECT_EQ(report.values, baseline.values);
  // The healthy rank absorbs the quarantined rank's blocks; the critical
  // path must stay within 2x the fault-free run (the quarantined rank only
  // charged bounded watchdog deadlines, never a 50x command).
  EXPECT_LE(report.max_rank_sim_seconds,
            2.0 * baseline.max_rank_sim_seconds * (1.0 + 1e-9));
}

// ----------------------------------------------------------- silent flips

TEST(DistIntegrity, BitFlipIsDetectedAndNeverPropagates) {
  ClusterFixture fx;
  const distrib::DistributedReport baseline = fx.run(fx.config());

  distrib::ClusterConfig cfg = fx.config();
  cfg.fault_plan.corrupt_write_index = 1;  // one upload corrupted once
  cfg.fault_rank = 0;
  const distrib::DistributedReport report = fx.run(cfg);

  EXPECT_EQ(report.checksum_mismatches, 1u);
  EXPECT_EQ(report.quarantined_devices, 0u);
  EXPECT_EQ(report.values, baseline.values)
      << "a detected flip must be invisible in the assembled field";
}

TEST(DistIntegrity, PersistentlyCorruptingDeviceIsQuarantined) {
  ClusterFixture fx;
  const distrib::DistributedReport baseline = fx.run(fx.config());

  distrib::ClusterConfig cfg = fx.config();
  cfg.fault_plan.corrupt_write_index = 1;
  cfg.fault_plan.corrupt_count = 1 << 20;  // every transfer, forever
  cfg.fault_rank = 0;
  const distrib::DistributedReport report = fx.run(cfg);

  // Queue retries (3) fail, the block-level re-execution fails the same
  // way, the rank is quarantined, and a healthy rank redoes the block.
  EXPECT_EQ(report.quarantined_devices, 1u);
  EXPECT_GE(report.checksum_mismatches, 6u);
  EXPECT_EQ(report.values, baseline.values);
}

// ----------------------------------------------------- checkpoint journal

TEST(Checkpoint, CrashAfterTwoBlocksResumesBitIdentically) {
  ClusterFixture fx;
  const distrib::DistributedReport baseline = fx.run(fx.config());
  const std::string dir = scratch_dir("crash_resume");

  distrib::ClusterConfig cfg = fx.config();
  cfg.checkpoint_dir = dir;
  cfg.abort_after_blocks = 2;  // die mid-run, journal half the blocks
  EXPECT_THROW(fx.run(cfg), Error);

  cfg.abort_after_blocks = 0;
  const distrib::DistributedReport resumed = fx.run(cfg);
  EXPECT_EQ(resumed.resumed_blocks, 2u);
  EXPECT_EQ(resumed.journaled_blocks, 4u);
  EXPECT_EQ(resumed.values, baseline.values)
      << "resume must reassemble the exact field";
  // Only the two missing blocks executed: half the baseline's kernels.
  EXPECT_EQ(resumed.total_kernel_execs, baseline.total_kernel_execs / 2);
  EXPECT_EQ(resumed.total_dev_writes, baseline.total_dev_writes / 2);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, CompletedJournalShortCircuitsTheWholeRun) {
  ClusterFixture fx;
  const std::string dir = scratch_dir("full_journal");
  distrib::ClusterConfig cfg = fx.config();
  cfg.checkpoint_dir = dir;
  const distrib::DistributedReport first = fx.run(cfg);
  const distrib::DistributedReport second = fx.run(cfg);
  EXPECT_EQ(second.resumed_blocks, 4u);
  EXPECT_EQ(second.total_kernel_execs, 0u);
  EXPECT_EQ(second.values, first.values);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, JournalOfADifferentRunIsIgnored) {
  ClusterFixture fx;
  const std::string dir = scratch_dir("foreign_run");
  distrib::ClusterConfig cfg = fx.config();
  cfg.checkpoint_dir = dir;
  fx.run(cfg, expressions::kQCriterion);
  // Same directory, different expression: the run key differs, so nothing
  // resumes and nothing collides.
  const distrib::DistributedReport other =
      fx.run(cfg, expressions::kVorticityMagnitude);
  EXPECT_EQ(other.resumed_blocks, 0u);
  EXPECT_EQ(other.journaled_blocks, 4u);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, CorruptJournalEntryIsReExecutedNotTrusted) {
  ClusterFixture fx;
  const distrib::DistributedReport baseline = fx.run(fx.config());
  const std::string dir = scratch_dir("corrupt_entry");
  distrib::ClusterConfig cfg = fx.config();
  cfg.checkpoint_dir = dir;
  fx.run(cfg);

  // Truncate one entry; the next run must treat it as absent.
  bool truncated = false;
  for (const auto& file : std::filesystem::directory_iterator(dir)) {
    if (file.path().extension() != ".ckpt") continue;
    std::filesystem::resize_file(file.path(),
                                 std::filesystem::file_size(file.path()) / 2);
    truncated = true;
    break;
  }
  ASSERT_TRUE(truncated);

  const distrib::DistributedReport report = fx.run(cfg);
  EXPECT_EQ(report.resumed_blocks, 3u);
  EXPECT_EQ(report.values, baseline.values);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, JournalValidatesEntriesDirectly) {
  const std::string dir = scratch_dir("unit");
  distrib::CheckpointJournal journal(dir, 1234);
  EXPECT_TRUE(journal.enabled());
  EXPECT_FALSE(journal.has(0));

  const std::vector<float> slab = {1.0f, 2.5f, -3.0f};
  journal.append(7, slab);
  EXPECT_TRUE(journal.has(7));
  EXPECT_EQ(journal.load(7), slab);

  // A fresh journal over the same directory re-indexes the entry…
  distrib::CheckpointJournal reopened(dir, 1234);
  EXPECT_TRUE(reopened.has(7));
  EXPECT_EQ(reopened.load(7), slab);
  // …while a different run key sees nothing.
  distrib::CheckpointJournal foreign(dir, 999);
  EXPECT_FALSE(foreign.has(7));
  EXPECT_EQ(foreign.journaled_count(), 0u);

  // Disabled journal: inert.
  distrib::CheckpointJournal disabled;
  EXPECT_FALSE(disabled.enabled());
  disabled.append(1, slab);
  EXPECT_FALSE(disabled.has(1));
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, DirectoryDefaultsFromEnvironment) {
  ::setenv("DFGEN_CHECKPOINT_DIR", "/tmp/dfgen-env-probe", 1);
  const distrib::ClusterConfig cfg;
  EXPECT_EQ(cfg.checkpoint_dir, "/tmp/dfgen-env-probe");
  ::unsetenv("DFGEN_CHECKPOINT_DIR");
  const distrib::ClusterConfig cleared;
  EXPECT_TRUE(cleared.checkpoint_dir.empty());
}

TEST(Checkpoint, StaleTmpFilesAreReapedNotReplayed) {
  const std::string dir = scratch_dir("staletmp");
  {
    distrib::CheckpointJournal journal(dir, 77);
    journal.append(3, std::vector<float>{1.0f, 2.0f});
  }
  // Simulate a crash between writing the tmp file and the committing
  // rename: the orphan was never committed, so it must be removed on the
  // next open, never indexed or replayed.
  const std::string stale = dir + "/deadbeefdeadbeef-block-9.ckpt.tmp";
  {
    std::ofstream out(stale, std::ios::binary);
    out << "half-written entry";
  }
  // An unrelated tmp file in a shared directory is not ours to reap.
  const std::string unrelated = dir + "/notes.tmp";
  {
    std::ofstream out(unrelated);
    out << "keep me";
  }

  distrib::CheckpointJournal reopened(dir, 77);
  EXPECT_FALSE(std::filesystem::exists(stale))
      << "orphaned .ckpt.tmp must be reaped on open";
  EXPECT_TRUE(std::filesystem::exists(unrelated))
      << "non-checkpoint tmp files are left alone";
  EXPECT_TRUE(reopened.has(3));
  EXPECT_FALSE(reopened.has(9));
  EXPECT_EQ(reopened.blocks(), (std::vector<std::size_t>{3}));
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, BlocksEnumeratesIndexedEntriesAscending) {
  const std::string dir = scratch_dir("blocks");
  distrib::CheckpointJournal journal(dir, 55);
  EXPECT_TRUE(journal.blocks().empty());
  journal.append(5, std::vector<float>{1.0f});
  journal.append(2, std::vector<float>{2.0f});
  journal.append(9, std::vector<float>{3.0f});
  EXPECT_EQ(journal.blocks(), (std::vector<std::size_t>{2, 5, 9}));
  std::filesystem::remove_all(dir);
}

}  // namespace
