// Resident device-buffer pool: cache-coherence test battery.
//
// The pool eliminates host-to-device transfers by keeping bound-array
// uploads resident across evaluations, keyed by (pointer, length,
// generation tag). Everything here is differential: pool-enabled runs must
// be bit-identical to cold runs (the NaN-class rule of tests/bitwise.hpp),
// transfer elimination must be visible in the profiling log and the report
// counters, and the explicit coherence contract must hold — a stale read
// after an unannounced host mutation is *demonstrated* (proving the
// transfers really were eliminated), and note_host_mutation / invalidate
// must restore freshness. The seeded property test drives random
// evaluate / mutate / evict / fault schedules through all four strategies
// against a DFGEN_NO_RESIDENT_POOL=1 twin.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <random>
#include <thread>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "distrib/decomposition.hpp"
#include "distrib/dist_engine.hpp"
#include "mesh/generators.hpp"
#include "mesh/mesh.hpp"
#include "runtime/bindings.hpp"
#include "runtime/fallback.hpp"
#include "runtime/planner.hpp"
#include "service/service.hpp"
#include "vcl/catalog.hpp"
#include "vcl/device.hpp"
#include "vcl/event.hpp"
#include "vcl/profiling.hpp"
#include "vcl/queue.hpp"
#include "vcl/resident_pool.hpp"

#include "bitwise.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

/// Small CPU-modelled device whose float capacity the pool tests control
/// exactly.
vcl::DeviceSpec pool_spec(std::size_t capacity_floats) {
  vcl::DeviceSpec spec;
  spec.name = "pool_test";
  spec.type = vcl::DeviceType::cpu;
  spec.global_mem_bytes = capacity_floats * sizeof(float);
  spec.compute_units = 2;
  spec.transfer_gbps = 1.0;
  spec.global_mem_gbps = 20.0;
  spec.gflops = 50.0;
  return spec;
}

std::vector<float> ramp(std::size_t n, float base) {
  std::vector<float> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = base + static_cast<float>(i);
  }
  return values;
}

/// Exact involutive mutation: flipping the sign bit never rounds, so a
/// differential arm can replay it bit-identically.
void negate(std::vector<float>& values) {
  for (float& x : values) x = -x;
}

struct Workload {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);

  void bind(Engine& engine) {
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
  }
};

// ---------------------------------------------------------------------------
// Pool unit behaviour

TEST(ResidentPool, DisabledPoolNeverPoolsAnything) {
  vcl::Device device(pool_spec(4096));
  vcl::ProfilingLog log;
  vcl::CommandQueue queue(device, log);
  const std::vector<float> host = ramp(256, 1.0f);

  EXPECT_FALSE(device.resident().enabled());
  EXPECT_EQ(device.resident().acquire(queue, host, "u"), nullptr);
  EXPECT_FALSE(device.resident().would_hit(host));
  EXPECT_EQ(device.resident().entry_count(), 0u);
  EXPECT_EQ(device.resident().resident_bytes(), 0u);
  EXPECT_EQ(log.count(vcl::EventKind::host_to_device), 0u);
}

TEST(ResidentPool, HitEliminatesTheTransferAndCountsSavedBytes) {
  vcl::Device device(pool_spec(4096));
  vcl::ProfilingLog log;
  vcl::CommandQueue queue(device, log);
  device.resident().set_enabled(true);
  const std::vector<float> host = ramp(256, 1.0f);

  const vcl::Buffer* first = device.resident().acquire(queue, host, "u");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(log.count(vcl::EventKind::host_to_device), 1u);
  EXPECT_TRUE(device.resident().would_hit(host));

  const vcl::Buffer* second = device.resident().acquire(queue, host, "u");
  EXPECT_EQ(second, first);
  // The whole point: no second upload happened.
  EXPECT_EQ(log.count(vcl::EventKind::host_to_device), 1u);

  const vcl::ResidentPool::Stats stats = device.resident().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.upload_bytes_saved, host.size() * sizeof(float));
  EXPECT_EQ(device.resident().resident_bytes(), host.size() * sizeof(float));
}

TEST(ResidentPool, HostMutationBumpsGenerationAndForcesReupload) {
  vcl::Device device(pool_spec(4096));
  vcl::ProfilingLog log;
  vcl::CommandQueue queue(device, log);
  device.resident().set_enabled(true);
  std::vector<float> host = ramp(128, 2.0f);

  ASSERT_NE(device.resident().acquire(queue, host, "u"), nullptr);
  negate(host);
  vcl::note_host_mutation(host.data());

  EXPECT_FALSE(device.resident().would_hit(host));
  const vcl::Buffer* fresh = device.resident().acquire(queue, host, "u");
  ASSERT_NE(fresh, nullptr);
  // The stale entry was dropped and the mutated array re-uploaded.
  EXPECT_EQ(log.count(vcl::EventKind::host_to_device), 2u);
  const vcl::ResidentPool::Stats stats = device.resident().stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.misses, 2u);
  // The re-uploaded entry is honest again.
  EXPECT_TRUE(device.resident().would_hit(host));
  EXPECT_EQ(device.resident().acquire(queue, host, "u"), fresh);
  EXPECT_EQ(device.resident().stats().hits, 1u);
}

TEST(ResidentPool, InvalidateDropsEveryLengthOfAPointer) {
  vcl::Device device(pool_spec(4096));
  vcl::ProfilingLog log;
  vcl::CommandQueue queue(device, log);
  device.resident().set_enabled(true);
  const std::vector<float> host = ramp(256, 0.0f);
  const std::span<const float> all(host);

  ASSERT_NE(device.resident().acquire(queue, all.subspan(0, 100), "a"),
            nullptr);
  ASSERT_NE(device.resident().acquire(queue, all, "b"), nullptr);
  EXPECT_EQ(device.resident().entry_count(), 2u);

  device.resident().invalidate(host.data());
  EXPECT_EQ(device.resident().entry_count(), 0u);
  EXPECT_EQ(device.resident().resident_bytes(), 0u);
  EXPECT_EQ(device.resident().stats().invalidations, 2u);
}

TEST(ResidentPool, WatermarkEvictsLeastRecentlyUsed) {
  // Capacity 1024 floats, default watermark 0.5 -> 512 floats of residency.
  vcl::Device device(pool_spec(1024));
  vcl::ProfilingLog log;
  vcl::CommandQueue queue(device, log);
  device.resident().set_enabled(true);
  const std::vector<float> a = ramp(300, 1.0f);
  const std::vector<float> b = ramp(300, 2.0f);

  ASSERT_NE(device.resident().acquire(queue, a, "a"), nullptr);
  ASSERT_NE(device.resident().acquire(queue, b, "b"), nullptr);
  // Inserting b (300) next to a (300) would exceed the 512-float
  // watermark, so the older entry was evicted.
  EXPECT_EQ(device.resident().stats().evictions, 1u);
  EXPECT_FALSE(device.resident().would_hit(a));
  EXPECT_TRUE(device.resident().would_hit(b));
  EXPECT_LE(device.resident().resident_bytes(),
            device.resident().watermark_bytes());

  // An array larger than the whole watermark is never pooled.
  const std::vector<float> huge = ramp(600, 3.0f);
  EXPECT_EQ(device.resident().acquire(queue, huge, "huge"), nullptr);
  EXPECT_FALSE(device.resident().would_hit(huge));
}

TEST(ResidentPool, TransientAllocationEvictsResidentsAtTheCapacityWall) {
  vcl::Device device(pool_spec(1024));
  device.resident().set_enabled(true);
  device.resident().set_watermark_fraction(1.0);
  vcl::ProfilingLog log;
  vcl::CommandQueue queue(device, log);
  const std::vector<float> a = ramp(400, 1.0f);
  const std::vector<float> b = ramp(400, 2.0f);
  ASSERT_NE(device.resident().acquire(queue, a, "a"), nullptr);
  ASSERT_NE(device.resident().acquire(queue, b, "b"), nullptr);

  // 800 floats resident; a 400-float transient needs the LRU entry gone.
  vcl::Buffer transient = device.allocate(400);
  EXPECT_TRUE(transient.valid());
  EXPECT_EQ(device.resident().stats().evictions, 1u);
  EXPECT_FALSE(device.resident().would_hit(a));
  EXPECT_TRUE(device.resident().would_hit(b));
}

TEST(ResidentPool, PinnedResidentsAreImmuneToEviction) {
  vcl::Device device(pool_spec(1024));
  device.resident().set_enabled(true);
  device.resident().set_watermark_fraction(1.0);
  vcl::ProfilingLog log;
  vcl::CommandQueue queue(device, log);
  const std::vector<float> a = ramp(400, 1.0f);
  const std::vector<float> b = ramp(400, 2.0f);

  {
    vcl::ResidentPool::PinScope pins(device.resident());
    ASSERT_NE(device.resident().acquire(queue, a, "a"), nullptr);
    ASSERT_NE(device.resident().acquire(queue, b, "b"), nullptr);
    // Everything resident is pinned: the transient cannot make room.
    EXPECT_THROW(device.allocate(400), DeviceOutOfMemory);
    EXPECT_TRUE(device.resident().would_hit(a));
    EXPECT_TRUE(device.resident().would_hit(b));
  }
  // Scope closed: eviction works again and the allocation succeeds.
  vcl::Buffer transient = device.allocate(400);
  EXPECT_TRUE(transient.valid());
  EXPECT_EQ(device.resident().stats().evictions, 1u);
}

TEST(ResidentPool, InvalidationOfAPinnedEntryDefersEraseToUnpin) {
  vcl::Device device(pool_spec(4096));
  device.resident().set_enabled(true);
  vcl::ProfilingLog log;
  vcl::CommandQueue queue(device, log);
  const std::vector<float> a = ramp(128, 1.0f);

  {
    vcl::ResidentPool::PinScope pins(device.resident());
    ASSERT_NE(device.resident().acquire(queue, a, "a"), nullptr);
    device.resident().invalidate(a.data());
    // Doomed but pinned: it may not hit again, yet its buffer must stay
    // alive for the running evaluation.
    EXPECT_FALSE(device.resident().would_hit(a));
    EXPECT_EQ(device.resident().entry_count(), 1u);
  }
  EXPECT_EQ(device.resident().entry_count(), 0u);
  EXPECT_EQ(device.resident().resident_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Engine integration: transfer elimination, report counters, coherence

TEST(ResidentEngine, WarmEvaluationSkipsEveryUploadBitExactly) {
  Workload wl;
  vcl::Device cold_device(vcl::xeon_x5660_scaled());
  Engine cold(cold_device);
  wl.bind(cold);
  const EvaluationReport baseline = cold.evaluate(expressions::kQCriterion);

  vcl::Device device(vcl::xeon_x5660_scaled());
  EngineOptions options;
  options.resident_pool = true;
  Engine engine(device, options);
  wl.bind(engine);

  const EvaluationReport first = engine.evaluate(expressions::kQCriterion);
  test::expect_bits_equal(first.values, baseline.values, "first pooled run");
  EXPECT_EQ(first.resident_hits, 0u);
  EXPECT_GT(first.resident_misses, 0u);
  EXPECT_EQ(first.dev_writes, baseline.dev_writes);

  const EvaluationReport second = engine.evaluate(expressions::kQCriterion);
  test::expect_bits_equal(second.values, baseline.values, "warm pooled run");
  EXPECT_GT(second.resident_hits, 0u);
  EXPECT_EQ(second.resident_misses, 0u);
  // Every input was warm: the warm run moved zero bytes host-to-device.
  EXPECT_EQ(second.dev_writes, 0u);
  EXPECT_EQ(second.resident_upload_bytes_saved,
            baseline.dev_writes > 0 ? second.resident_upload_bytes_saved : 0);
  EXPECT_GT(second.resident_upload_bytes_saved, 0u);
  EXPECT_LT(second.sim_seconds, first.sim_seconds);
}

TEST(ResidentEngine, DisabledPoolReportsZerosAndMatchesColdCounters) {
  Workload wl;
  vcl::Device cold_device(vcl::xeon_x5660_scaled());
  Engine cold(cold_device);
  wl.bind(cold);
  const EvaluationReport a = cold.evaluate(expressions::kVelocityMagnitude);
  const EvaluationReport b = cold.evaluate(expressions::kVelocityMagnitude);
  EXPECT_EQ(a.resident_hits + a.resident_misses, 0u);
  EXPECT_EQ(b.resident_hits + b.resident_misses, 0u);
  // Without the pool, re-evaluation re-uploads everything.
  EXPECT_EQ(a.dev_writes, b.dev_writes);
  EXPECT_GT(b.dev_writes, 0u);
}

TEST(ResidentEngine, UnannouncedMutationServesStaleBitsUntilInvalidated) {
  Workload wl;
  EngineOptions options;
  options.resident_pool = true;
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine(device, options);
  wl.bind(engine);

  const EvaluationReport before = engine.evaluate(expressions::kQCriterion);

  // Mutate u in place without telling anyone. The warm run must serve the
  // *stale* resident copy — the hard proof that its upload was eliminated.
  negate(wl.field.u);
  const EvaluationReport stale = engine.evaluate(expressions::kQCriterion);
  test::expect_bits_equal(stale.values, before.values,
                          "stale warm run (coherence contract)");
  EXPECT_GT(stale.resident_hits, 0u);

  // Announce the mutation: the resident copy is dropped, the next run
  // re-uploads and matches a cold engine over the mutated data bit for bit.
  engine.invalidate("u");
  const EvaluationReport fresh = engine.evaluate(expressions::kQCriterion);
  EXPECT_GE(fresh.resident_invalidations, 0u);  // dropped before evaluate
  EXPECT_GT(fresh.dev_writes, 0u);

  vcl::Device cold_device(vcl::xeon_x5660_scaled());
  Engine cold(cold_device);
  wl.bind(cold);
  const EvaluationReport want = cold.evaluate(expressions::kQCriterion);
  test::expect_bits_equal(fresh.values, want.values,
                          "post-invalidate re-upload");
}

TEST(ResidentEngine, EnvKillSwitchBeatsTheOption) {
  Workload wl;
  EngineOptions options;
  options.resident_pool = true;
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine(device, options);
  wl.bind(engine);

  ASSERT_EQ(setenv("DFGEN_NO_RESIDENT_POOL", "1", 1), 0);
  const EvaluationReport off = engine.evaluate(expressions::kVelocityMagnitude);
  ASSERT_EQ(unsetenv("DFGEN_NO_RESIDENT_POOL"), 0);
  EXPECT_EQ(off.resident_hits + off.resident_misses, 0u);

  const EvaluationReport on = engine.evaluate(expressions::kVelocityMagnitude);
  EXPECT_GT(on.resident_misses, 0u);
}

// ---------------------------------------------------------------------------
// Differential property test: seeded schedules vs DFGEN_NO_RESIDENT_POOL=1

constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::roundtrip, StrategyKind::staged, StrategyKind::fusion,
    StrategyKind::streamed};

/// Runs one seeded schedule of evaluate / mutate / evict / fault / clear
/// steps and returns every evaluation's values. All randomness comes from
/// the seed, and mutations are sign flips, so two arms replay identically.
std::vector<std::vector<float>> run_schedule(std::uint64_t seed,
                                             StrategyKind kind) {
  std::mt19937_64 rng(seed);
  Workload wl;
  // Small enough that LRU eviction happens mid-schedule: capacity 8x one
  // field (512 cells), watermark half of it.
  vcl::Device device(pool_spec(8 * 512));
  EngineOptions options;
  options.strategy = kind;
  options.resident_pool = true;
  options.fallback = runtime::FallbackPolicy::resilient();
  Engine engine(device, options);
  wl.bind(engine);

  const char* exprs[] = {expressions::kVelocityMagnitude,
                         "e = (u + v) * w - u / (abs(w) + 1)"};
  std::vector<float>* fields[] = {&wl.field.u, &wl.field.v, &wl.field.w};
  const char* names[] = {"u", "v", "w"};

  std::vector<std::vector<float>> results;
  for (int step = 0; step < 12; ++step) {
    switch (rng() % 5) {
      case 0:
      case 1: {  // evaluate
        results.push_back(
            engine.evaluate(exprs[rng() % 2]).values);
        break;
      }
      case 2: {  // mutate + announce
        const std::size_t f = rng() % 3;
        negate(*fields[f]);
        engine.invalidate(names[f]);
        break;
      }
      case 3: {  // evict (no-op for the pool-off twin)
        device.resident().evict_lru_unpinned();
        if (rng() % 2 == 0) device.resident().clear();
        break;
      }
      case 4: {  // arm a transient fault for the next evaluation
        vcl::FaultPlan plan;
        plan.seed = static_cast<std::uint32_t>(rng());
        plan.fail_write_index = 1 + rng() % 3;
        plan.transient_count = 1;
        device.fault().arm(plan);
        results.push_back(engine.evaluate(exprs[rng() % 2]).values);
        device.fault().disarm();
        break;
      }
    }
  }
  return results;
}

TEST(ResidentDifferential, SeededSchedulesMatchPoolDisabledBitwise) {
  for (const StrategyKind kind : kAllStrategies) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const std::vector<std::vector<float>> with_pool =
          run_schedule(seed, kind);

      // The kill switch forces the identical schedule down the cold path.
      ASSERT_EQ(setenv("DFGEN_NO_RESIDENT_POOL", "1", 1), 0);
      const std::vector<std::vector<float>> without_pool =
          run_schedule(seed, kind);
      ASSERT_EQ(unsetenv("DFGEN_NO_RESIDENT_POOL"), 0);

      ASSERT_EQ(with_pool.size(), without_pool.size());
      for (std::size_t i = 0; i < with_pool.size(); ++i) {
        test::expect_bits_equal(
            with_pool[i], without_pool[i],
            std::string(runtime::strategy_name(kind)) + " seed " +
                std::to_string(seed) + " evaluation " + std::to_string(i));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Residency-aware planning

TEST(ResidentPlanner, ProbeReflectsTheDevicePoolState) {
  Workload wl;
  runtime::FieldBindings bindings;
  bindings.bind_mesh(wl.mesh);
  bindings.bind("u", wl.field.u);
  bindings.bind("v", wl.field.v);
  bindings.bind("w", wl.field.w);
  const dataflow::Network network(
      dataflow::build_network(expressions::kVelocityMagnitude));

  vcl::Device device(vcl::tesla_m2050_scaled());
  const runtime::Residency cold =
      runtime::Residency::probe(device, bindings, network);
  EXPECT_TRUE(cold.warm.empty());

  EngineOptions options;
  options.resident_pool = true;
  Engine engine(device, options);
  wl.bind(engine);
  engine.evaluate(expressions::kVelocityMagnitude);

  const runtime::Residency warm =
      runtime::Residency::probe(device, bindings, network);
  EXPECT_TRUE(warm.is_warm("u"));
  EXPECT_TRUE(warm.is_warm("v"));
  EXPECT_TRUE(warm.is_warm("w"));
}

TEST(ResidentPlanner, WarmEstimatesPriceTransfersAtZero) {
  Workload wl;
  runtime::FieldBindings bindings;
  bindings.bind_mesh(wl.mesh);
  bindings.bind("u", wl.field.u);
  bindings.bind("v", wl.field.v);
  bindings.bind("w", wl.field.w);
  const dataflow::Network network(
      dataflow::build_network(expressions::kVelocityMagnitude));
  const std::size_t elements = wl.mesh.cell_count();
  const vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();

  runtime::Residency warm;
  warm.warm = {"u", "v", "w"};

  for (const StrategyKind kind :
       {StrategyKind::roundtrip, StrategyKind::staged, StrategyKind::fusion}) {
    EXPECT_LT(runtime::estimate_sim_seconds(network, bindings, elements, spec,
                                            kind, 0, &warm),
              runtime::estimate_sim_seconds(network, bindings, elements, spec,
                                            kind))
        << runtime::strategy_name(kind);
    // Warm working sets never exceed cold ones; the peak may coincide when
    // it is reached among intermediates (roundtrip/staged on this network).
    EXPECT_LE(runtime::estimate_high_water(network, bindings, elements, kind,
                                           0, &warm),
              runtime::estimate_high_water(network, bindings, elements, kind))
        << runtime::strategy_name(kind);
  }
  // Fusion's working set is inputs + output, so full warmth strictly
  // shrinks it to the output alone.
  EXPECT_LT(runtime::estimate_high_water(network, bindings, elements,
                                         StrategyKind::fusion, 0, &warm),
            runtime::estimate_high_water(network, bindings, elements,
                                         StrategyKind::fusion));
  // Streamed slices per chunk, so its estimates deliberately stay cold.
  EXPECT_EQ(runtime::estimate_sim_seconds(network, bindings, elements, spec,
                                          StrategyKind::streamed, 0, &warm),
            runtime::estimate_sim_seconds(network, bindings, elements, spec,
                                          StrategyKind::streamed));
}

TEST(ResidentPlanner, WarmCheapRungsBeatColdFusionOnTransferBoundDevices) {
  // The planning claim behind the pool: on a PCIe-bound device the warm
  // re-evaluation of a cheaper rung undercuts a cold fused first run,
  // because the cold run must pay the full input upload the warm one
  // skips. Roundtrip needs a shallow network for this (its intermediate
  // host round-trips are never warm); staged inverts even on a deep one.
  Workload wl;
  runtime::FieldBindings bindings;
  bindings.bind_mesh(wl.mesh);
  bindings.bind("u", wl.field.u);
  bindings.bind("v", wl.field.v);
  bindings.bind("w", wl.field.w);
  const std::size_t elements = wl.mesh.cell_count();

  vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
  spec.transfer_gbps = 0.05;  // starve the link: uploads dominate
  runtime::Residency warm;
  warm.warm = {"u", "v", "w", "x", "y", "z", "dims"};

  const dataflow::Network deep(
      dataflow::build_network(expressions::kVelocityMagnitude));
  EXPECT_LT(runtime::estimate_sim_seconds(deep, bindings, elements, spec,
                                          StrategyKind::staged, 0, &warm),
            runtime::estimate_sim_seconds(deep, bindings, elements, spec,
                                          StrategyKind::fusion));

  const dataflow::Network shallow(
      dataflow::build_network("s = (u + v) * w"));
  EXPECT_LT(runtime::estimate_sim_seconds(shallow, bindings, elements, spec,
                                          StrategyKind::roundtrip, 0, &warm),
            runtime::estimate_sim_seconds(shallow, bindings, elements, spec,
                                          StrategyKind::fusion));
}

TEST(ResidentPlanner, SelectFastestMatchesArgminOfFeasibleEstimates) {
  Workload wl;
  runtime::FieldBindings bindings;
  bindings.bind_mesh(wl.mesh);
  bindings.bind("u", wl.field.u);
  bindings.bind("v", wl.field.v);
  bindings.bind("w", wl.field.w);
  const dataflow::Network network(
      dataflow::build_network(expressions::kVelocityMagnitude));
  const std::size_t elements = wl.mesh.cell_count();
  vcl::Device device(vcl::tesla_m2050_scaled());

  // Cold, no residency: must agree with the static preference selector.
  EXPECT_EQ(runtime::select_fastest_strategy(network, bindings, elements,
                                             device),
            runtime::select_strategy(network, bindings, elements, device));

  runtime::Residency warm;
  warm.warm = {"u", "v", "w"};
  const StrategyKind picked = runtime::select_fastest_strategy(
      network, bindings, elements, device, &warm);
  // Differential: nothing feasible may beat the pick's warm estimate.
  const double picked_sim = runtime::estimate_sim_seconds(
      network, bindings, elements, device.spec(), picked, 0, &warm);
  for (const StrategyKind kind : kAllStrategies) {
    const std::size_t hw = runtime::estimate_high_water(
        network, bindings, elements, kind, 0, &warm);
    if (hw > device.effective_available()) continue;
    EXPECT_LE(picked_sim,
              runtime::estimate_sim_seconds(network, bindings, elements,
                                            device.spec(), kind, 0, &warm))
        << runtime::strategy_name(kind);
  }
}

TEST(ResidentPlanner, AutoStrategyEngineStaysBitExactAcrossWarmRuns) {
  Workload wl;
  vcl::Device cold_device(vcl::tesla_m2050_scaled());
  Engine cold(cold_device);
  wl.bind(cold);
  const EvaluationReport baseline =
      cold.evaluate(expressions::kVelocityMagnitude);

  EngineOptions options;
  options.resident_pool = true;
  options.auto_strategy = true;
  vcl::Device device(vcl::tesla_m2050_scaled());
  Engine engine(device, options);
  wl.bind(engine);
  const EvaluationReport first =
      engine.evaluate(expressions::kVelocityMagnitude);
  const EvaluationReport second =
      engine.evaluate(expressions::kVelocityMagnitude);
  test::expect_bits_equal(first.values, baseline.values, "auto cold");
  test::expect_bits_equal(second.values, baseline.values, "auto warm");
  EXPECT_GT(second.resident_hits, 0u);
  EXPECT_LT(second.sim_seconds, first.sim_seconds);
}

// ---------------------------------------------------------------------------
// Distributed engine: loss and quarantine invalidate residency

distrib::DistributedReport run_distributed(const vcl::FaultPlan& plan,
                                           bool pool) {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  distrib::ClusterConfig config;
  config.nodes = 1;
  config.devices_per_node = 2;
  config.device_spec = vcl::tesla_m2050_scaled();
  config.checkpoint_dir.clear();
  config.fault_plan = plan;
  config.fault_rank = 0;
  config.resident_pool = pool;
  distrib::DistributedEngine engine(
      mesh, distrib::GridDecomposition(mesh.dims(), 2, 2, 2), config);
  engine.bind_global("u", field.u);
  engine.bind_global("v", field.v);
  engine.bind_global("w", field.w);
  return engine.evaluate(expressions::kQCriterion, StrategyKind::fusion);
}

TEST(ResidentDistrib, DeviceLossDropsResidentsAndRecoversBitExactly) {
  vcl::FaultPlan plan;
  plan.lose_device_after = 12;
  const distrib::DistributedReport cold = run_distributed(plan, false);
  const distrib::DistributedReport pooled = run_distributed(plan, true);

  EXPECT_GE(pooled.device_losses, 1u);
  EXPECT_GT(pooled.resident_misses, 0u);
  EXPECT_EQ(cold.resident_hits + cold.resident_misses, 0u);
  test::expect_bits_equal(pooled.values, cold.values,
                          "distributed values after device loss");
}

TEST(ResidentDistrib, QuarantineDropsResidentsAndRecoversBitExactly) {
  vcl::FaultPlan plan;
  plan.corrupt_read_index = 1;  // every readback on rank 0 is corrupted
  plan.corrupt_count = 1000;
  const distrib::DistributedReport cold = run_distributed(plan, false);
  const distrib::DistributedReport pooled = run_distributed(plan, true);

  EXPECT_GE(pooled.quarantined_devices, 1u);
  // quarantine() cleared the rank's residents; clear() counts each drop.
  EXPECT_GT(pooled.resident_invalidations, 0u);
  test::expect_bits_equal(pooled.values, cold.values,
                          "distributed values after quarantine");
}

// ---------------------------------------------------------------------------
// Evaluation service: residency under concurrency, quotas and eviction

TEST(ResidentService, SnapshotMatchesDevicePoolStats) {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device(vcl::xeon_x5660_scaled());

  service::ServiceOptions options;
  options.resident_pool = true;
  options.coalescing = false;
  service::ServiceSnapshot snapshot;
  {
    service::EvalService svc({&device}, options);
    for (int i = 0; i < 3; ++i) {
      service::Request request;
      request.expression = expressions::kVelocityMagnitude;
      request.mesh = &mesh;
      request.fields = {{"u", field.u}, {"v", field.v}, {"w", field.w}};
      svc.submit(request).wait();
    }
    snapshot = svc.snapshot();
  }

  EXPECT_EQ(snapshot.failed_requests, 0u);
  EXPECT_GT(snapshot.resident_hits, 0u);
  const vcl::ResidentPool::Stats stats = device.resident().stats();
  EXPECT_EQ(snapshot.resident_hits, stats.hits);
  EXPECT_EQ(snapshot.resident_misses, stats.misses);
  EXPECT_EQ(snapshot.resident_evictions, stats.evictions);
  EXPECT_EQ(snapshot.resident_invalidations, stats.invalidations);
  EXPECT_EQ(snapshot.resident_upload_bytes_saved, stats.upload_bytes_saved);
}

TEST(ResidentService, ConcurrentTenantsUnderEvictionPressureRespectQuotas) {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  const std::size_t cells = mesh.cell_count();

  // Per-tenant private copies of the flow: distinct pointers mean distinct
  // resident entries, so four tenants' arrays cannot all fit under the
  // watermark and the pool churns while the two workers race.
  mesh::VectorField shared_flow = mesh::rayleigh_taylor_flow(mesh);
  struct Tenant {
    std::string session;
    std::vector<float> u, v, w;
  };
  std::vector<Tenant> tenants;
  for (int t = 0; t < 4; ++t) {
    Tenant tenant;
    tenant.session = "tenant-" + std::to_string(t);
    tenant.u = shared_flow.u;
    tenant.v = shared_flow.v;
    tenant.w = shared_flow.w;
    negate(tenant.v);  // give tenants distinguishable data
    tenants.push_back(std::move(tenant));
  }

  // Capacity 16x one field; watermark 0.25 -> 4 fields resident at most,
  // while 4 tenants want 12 (plus mesh arrays): guaranteed eviction churn.
  vcl::Device device_a(pool_spec(16 * cells));
  vcl::Device device_b(pool_spec(16 * cells));
  device_a.resident().set_watermark_fraction(0.25);
  device_b.resident().set_watermark_fraction(0.25);

  service::ServiceOptions options;
  options.resident_pool = true;
  options.coalescing = false;
  options.max_queue_depth = 256;
  const std::size_t quota = 8 * cells * sizeof(float);
  service::ServiceSnapshot snapshot;
  {
    service::EvalService svc({&device_a, &device_b}, options);
    for (const Tenant& tenant : tenants) {
      svc.configure_session(tenant.session, {1, quota});
    }
    std::vector<service::Ticket> tickets;
    for (int round = 0; round < 6; ++round) {
      for (const Tenant& tenant : tenants) {
        service::Request request;
        request.expression = expressions::kVelocityMagnitude;
        request.mesh = &mesh;
        request.fields = {
            {"u", tenant.u}, {"v", tenant.v}, {"w", tenant.w}};
        request.session = tenant.session;
        tickets.push_back(svc.submit(request));
      }
    }
    for (const service::Ticket& ticket : tickets) {
      EXPECT_EQ(ticket.wait().status, service::RequestStatus::completed);
    }
    svc.drain();
    snapshot = svc.snapshot();
  }

  EXPECT_EQ(snapshot.failed_requests, 0u);
  EXPECT_GT(snapshot.resident_misses, 0u);
  EXPECT_GT(snapshot.resident_evictions, 0u);
  // MemoryTracker quotas bound every tenant's transient working set even
  // while residents churn (resident traffic is device-level, not charged).
  for (const Tenant& tenant : tenants) {
    const auto it = snapshot.sessions.find(tenant.session);
    ASSERT_NE(it, snapshot.sessions.end());
    EXPECT_LE(it->second.quota_high_water_bytes, quota) << tenant.session;
  }
  // No use-after-evict: every request completed, and both devices closed
  // the run with their books balanced.
  EXPECT_LE(device_a.resident().resident_bytes(),
            device_a.resident().watermark_bytes());
  EXPECT_LE(device_b.resident().resident_bytes(),
            device_b.resident().watermark_bytes());
}

// Satellite of the sharding PR: the coherence contract under *concurrent*
// invalidation. One tenant's evaluations hold PinScopes on the shared
// entries while another host thread hammers Engine::invalidate on the
// same arrays — the historical TSan hole this exercises is the pool's
// entry map and the MemoryTracker's accounting racing the worker. With
// the internal locks this must be data-race-free, every evaluation must
// complete, and — because the host bytes never actually change — every
// result must stay bit-identical to a cold run (an announced invalidation
// may only cost a re-upload, never correctness).
TEST(ResidentPoolService, ConcurrentInvalidateWhilePinnedIsCoherentAndSafe) {
  const mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 6, 4});
  const std::size_t cells = mesh.cell_count();
  mesh::VectorField flow = mesh::rayleigh_taylor_flow(mesh);

  std::vector<float> reference;
  {
    vcl::Device cold(pool_spec(64 * cells));
    Engine engine(cold);
    engine.bind_mesh(mesh);
    engine.bind("u", flow.u);
    engine.bind("v", flow.v);
    engine.bind("w", flow.w);
    reference = engine.evaluate(expressions::kVelocityMagnitude).values;
  }

  vcl::Device device(pool_spec(64 * cells));
  device.resident().set_watermark_fraction(0.5);

  // The invalidator engine shares the device and arrays but never
  // enqueues device work: invalidate() touches only the generation table
  // and the pool — what a host owner does when it announces a mutation of
  // arrays another session's in-flight evaluation has pinned.
  Engine invalidator(device);
  invalidator.bind_mesh(mesh);
  invalidator.bind("u", flow.u);
  invalidator.bind("v", flow.v);
  invalidator.bind("w", flow.w);

  service::ServiceOptions options;
  options.resident_pool = true;
  options.coalescing = false;
  options.max_queue_depth = 1024;
  {
    service::EvalService svc({&device}, options);
    std::atomic<bool> stop{false};
    std::thread hammer([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        invalidator.invalidate("u");
        invalidator.invalidate("v");
        invalidator.invalidate("w");
      }
    });
    std::vector<service::Ticket> tickets;
    for (int round = 0; round < 40; ++round) {
      service::Request request;
      request.expression = expressions::kVelocityMagnitude;
      request.mesh = &mesh;
      request.fields = {{"u", flow.u}, {"v", flow.v}, {"w", flow.w}};
      request.session = "pinned-tenant";
      tickets.push_back(svc.submit(request));
    }
    for (const service::Ticket& ticket : tickets) {
      const service::ServiceReport& report = ticket.wait();
      ASSERT_EQ(report.status, service::RequestStatus::completed)
          << report.error;
      dfg::test::expect_bits_equal(report.evaluation->values, reference,
                                   "concurrent invalidate storm");
    }
    stop.store(true, std::memory_order_relaxed);
    hammer.join();
    svc.drain();
  }
  // The storm over: pinned entries were never evicted mid-use, and the
  // books balance.
  EXPECT_LE(device.resident().resident_bytes(),
            device.resident().watermark_bytes());
}

}  // namespace
