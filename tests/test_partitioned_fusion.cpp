// Tests for gradients of computed values: the partitioned fusion pipeline
// plus the staged/roundtrip strategies' native handling. Lifts the paper's
// implicit restriction that grad3d only applies to host-bound fields,
// enabling second-derivative workflows (e.g. the gradient of velocity
// magnitude).
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "kernels/generator.hpp"
#include "mesh/generators.hpp"
#include "runtime/planner.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

// Gradient magnitude of velocity magnitude: a realistic second-derivative
// detector (sharp |v| fronts).
constexpr const char* kGradOfMagnitude = R"(
vm = sqrt(u*u + v*v + w*w)
g = grad3d(vm, dims, x, y, z)
r = sqrt(g[0]*g[0] + g[1]*g[1] + g[2]*g[2])
)";

// Two chained materialisations: gradient of a gradient component.
constexpr const char* kSecondDerivative = R"(
g1 = grad3d(u, dims, x, y, z)
gx = g1[0]
g2 = grad3d(gx, dims, x, y, z)
r = g2[0]
)";

struct PartitionFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 12});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);

  Engine make(vcl::Device& device, StrategyKind kind) {
    Engine engine(device, {kind, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine;
  }
};

TEST(PartitionedFusion, PipelineShape) {
  const dataflow::Network network(dataflow::build_network(kGradOfMagnitude));
  const kernels::FusedPipeline pipeline =
      kernels::generate_fused_pipeline(network);
  ASSERT_TRUE(pipeline.partitioned());
  ASSERT_EQ(pipeline.stages.size(), 2u);
  // Stage 1 computes vm from u, v, w; stage 2 gradients the materialised
  // buffer.
  EXPECT_EQ(pipeline.stages[0].program.params().size(), 3u);
  bool grads_materialized = false;
  for (const auto& param : pipeline.stages[1].program.params()) {
    if (param.name.rfind("__m", 0) == 0) grads_materialized = true;
  }
  EXPECT_TRUE(grads_materialized);
}

TEST(PartitionedFusion, SingleKernelGeneratorRefusesWithGuidance) {
  const dataflow::Network network(dataflow::build_network(kGradOfMagnitude));
  try {
    kernels::generate_fused(network);
    FAIL() << "expected KernelError";
  } catch (const KernelError& err) {
    EXPECT_NE(std::string(err.what()).find("generate_fused_pipeline"),
              std::string::npos);
  }
}

TEST(PartitionedFusion, NonPartitionedNetworksStaySingleStage) {
  const dataflow::Network network(
      dataflow::build_network("du = grad3d(u, dims, x, y, z)\nr = du[0]"));
  const kernels::FusedPipeline pipeline =
      kernels::generate_fused_pipeline(network);
  EXPECT_FALSE(pipeline.partitioned());
  EXPECT_EQ(pipeline.stages.size(), 1u);
}

TEST(PartitionedFusion, AllStrategiesAgree) {
  PartitionFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  for (const char* expr : {kGradOfMagnitude, kSecondDerivative}) {
    const auto roundtrip =
        fx.make(device, StrategyKind::roundtrip).evaluate(expr).values;
    const auto staged =
        fx.make(device, StrategyKind::staged).evaluate(expr).values;
    const auto fusion =
        fx.make(device, StrategyKind::fusion).evaluate(expr).values;
    ASSERT_EQ(roundtrip.size(), fusion.size());
    for (std::size_t i = 0; i < roundtrip.size(); ++i) {
      ASSERT_EQ(roundtrip[i], staged[i]) << expr << " cell " << i;
      ASSERT_EQ(roundtrip[i], fusion[i]) << expr << " cell " << i;
    }
  }
}

TEST(PartitionedFusion, EventCounts) {
  PartitionFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine = fx.make(device, StrategyKind::fusion);
  const auto report = engine.evaluate(kGradOfMagnitude);
  // Unique fields u,v,w,dims,x,y,z uploaded once; two fused kernels; one
  // readback.
  EXPECT_EQ(report.dev_writes, 7u);
  EXPECT_EQ(report.kernel_execs, 2u);
  EXPECT_EQ(report.dev_reads, 1u);
  // The report carries both stages' generated source.
  EXPECT_NE(report.kernel_source.find("_m"), std::string::npos);
  EXPECT_NE(report.kernel_source.find("grad3d"), std::string::npos);
}

TEST(PartitionedFusion, GradientOfLinearCombinationIsExact) {
  // s = x + 2y - 3z is linear, so grad(s) = (1, 2, -3) exactly, everywhere
  // (central and one-sided differences are exact on linear fields) —
  // even though s is a computed value.
  PartitionFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine = fx.make(device, StrategyKind::fusion);
  const auto report = engine.evaluate(
      "s = x + 2.0*y - 3.0*z\n"
      "g = grad3d(s, dims, x, y, z)\n"
      "r = g[0] + g[1] + g[2]");
  for (const float v : report.values) {
    ASSERT_NEAR(v, 1.0f + 2.0f - 3.0f, 1e-4f);
  }
}

TEST(PartitionedFusion, StreamedRefusesClearly) {
  PartitionFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine = fx.make(device, StrategyKind::streamed);
  EXPECT_THROW(engine.evaluate(kGradOfMagnitude), KernelError);
}

TEST(PartitionedFusion, PlannerPredictsPartitionedFootprintExactly) {
  PartitionFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine = fx.make(device, StrategyKind::fusion);
  const auto measured =
      engine.evaluate(kGradOfMagnitude).memory_high_water_bytes;

  const dataflow::Network network(dataflow::build_network(kGradOfMagnitude));
  runtime::FieldBindings bindings;
  bindings.bind_mesh(fx.mesh);
  bindings.bind("u", fx.field.u);
  bindings.bind("v", fx.field.v);
  bindings.bind("w", fx.field.w);
  EXPECT_EQ(runtime::estimate_high_water(network, bindings,
                                         fx.mesh.cell_count(),
                                         StrategyKind::fusion),
            measured);
}

TEST(PartitionedFusion, SelectStrategySkipsStreamedForTheseNetworks) {
  // select_strategy must never answer "streamed" for a network streaming
  // cannot execute, and must fall through it without surfacing the
  // KernelError. Sized so fusion does not fit but the best remaining
  // strategy does.
  PartitionFixture fx;
  const std::size_t cells = fx.mesh.cell_count();
  // A wide-input variant: fusion must keep all five fields plus the
  // materialised intermediate resident, while the fallbacks peak lower.
  const char* wide = R"(
vm = sqrt(u*u + v*v + w*w) + a - b
g = grad3d(vm, dims, x, y, z)
r = sqrt(g[0]*g[0] + g[1]*g[1] + g[2]*g[2])
)";
  const dataflow::Network network(dataflow::build_network(wide));
  runtime::FieldBindings bindings;
  bindings.bind_mesh(fx.mesh);
  bindings.bind("u", fx.field.u);
  bindings.bind("v", fx.field.v);
  bindings.bind("w", fx.field.w);
  bindings.bind("a", fx.field.u);
  bindings.bind("b", fx.field.v);

  const std::size_t fusion_needs = runtime::estimate_high_water(
      network, bindings, cells, StrategyKind::fusion);
  const std::size_t fallback_needs = std::min(
      runtime::estimate_high_water(network, bindings, cells,
                                   StrategyKind::staged),
      runtime::estimate_high_water(network, bindings, cells,
                                   StrategyKind::roundtrip));
  ASSERT_LT(fallback_needs, fusion_needs)
      << "fixture assumption: some fallback is cheaper than fusion";

  vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
  spec.global_mem_bytes = fallback_needs;
  vcl::Device device(spec);
  const StrategyKind kind =
      runtime::select_strategy(network, bindings, cells, device);
  EXPECT_TRUE(kind == StrategyKind::staged ||
              kind == StrategyKind::roundtrip);
  // And it really runs.
  vcl::ProfilingLog log;
  EXPECT_NO_THROW(
      runtime::make_strategy(kind)->execute(network, bindings, cells, device,
                                            log));
}

TEST(PartitionedFusion, GradOfConstantRejectedAtSpecLevel) {
  EXPECT_THROW(dataflow::build_network("r = grad3d(1.0, dims, x, y, z)[0]"),
               NetworkError);
}

}  // namespace
