// Tests for the memory planner: predictions must equal the tracker's
// measured high-water mark bit for bit, for every strategy and expression,
// and strategy selection must pick the fastest strategy that fits.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "mesh/generators.hpp"
#include "runtime/planner.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

struct PlannerFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({10, 12, 14});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);

  runtime::FieldBindings bindings() const {
    runtime::FieldBindings b;
    b.bind_mesh(mesh);
    b.bind("u", field.u);
    b.bind("v", field.v);
    b.bind("w", field.w);
    return b;
  }

  std::size_t measured(StrategyKind kind, const char* expression,
                       std::size_t chunk = 0) {
    vcl::Device device(vcl::xeon_x5660_scaled());
    EngineOptions options;
    options.strategy = kind;
    options.streamed_chunk_cells = chunk;
    Engine engine(device, options);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine.evaluate(expression).memory_high_water_bytes;
  }

  std::size_t predicted(StrategyKind kind, const char* expression,
                        std::size_t chunk = 0) const {
    const dataflow::Network network(dataflow::build_network(expression));
    const auto b = bindings();
    return runtime::estimate_high_water(network, b, mesh.cell_count(), kind,
                                        chunk);
  }
};

struct PlannerCase {
  const char* label;
  const char* expression;
  StrategyKind kind;
};

class PlannerExactness : public ::testing::TestWithParam<PlannerCase> {};

TEST_P(PlannerExactness, PredictionEqualsMeasurement) {
  PlannerFixture fx;
  const PlannerCase& tc = GetParam();
  EXPECT_EQ(fx.predicted(tc.kind, tc.expression),
            fx.measured(tc.kind, tc.expression))
      << tc.expression;
}

const PlannerCase kCases[] = {
    {"VelMag_roundtrip", expressions::kVelocityMagnitude,
     StrategyKind::roundtrip},
    {"VelMag_staged", expressions::kVelocityMagnitude, StrategyKind::staged},
    {"VelMag_fusion", expressions::kVelocityMagnitude, StrategyKind::fusion},
    {"VortMag_roundtrip", expressions::kVorticityMagnitude,
     StrategyKind::roundtrip},
    {"VortMag_staged", expressions::kVorticityMagnitude,
     StrategyKind::staged},
    {"VortMag_fusion", expressions::kVorticityMagnitude,
     StrategyKind::fusion},
    {"QCrit_roundtrip", expressions::kQCriterion, StrategyKind::roundtrip},
    {"QCrit_staged", expressions::kQCriterion, StrategyKind::staged},
    {"QCrit_fusion", expressions::kQCriterion, StrategyKind::fusion},
    {"Conditional_staged", "r = if (u > v) then (u*u) else (w)",
     StrategyKind::staged},
    {"Conditional_roundtrip", "r = if (u > v) then (u*u) else (w)",
     StrategyKind::roundtrip},
    {"Constants_staged", "r = 0.5 * u + 0.25", StrategyKind::staged},
    {"Constants_roundtrip", "r = 0.5 * u + 0.25", StrategyKind::roundtrip},
};

INSTANTIATE_TEST_SUITE_P(AllStrategies, PlannerExactness,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) {
                           return std::string(info.param.label);
                         });

TEST(Planner, StreamedPredictionEqualsMeasurementPerChunk) {
  PlannerFixture fx;
  const std::size_t plane = 10 * 12;
  for (const std::size_t chunk : {3 * plane, 6 * plane, 14 * plane}) {
    EXPECT_EQ(
        fx.predicted(StrategyKind::streamed, expressions::kQCriterion, chunk),
        fx.measured(StrategyKind::streamed, expressions::kQCriterion, chunk))
        << "chunk " << chunk;
  }
}

TEST(Planner, StreamedFloorIsSmallestFootprint) {
  PlannerFixture fx;
  const std::size_t floor =
      fx.predicted(StrategyKind::streamed, expressions::kQCriterion, 0);
  EXPECT_LT(floor,
            fx.predicted(StrategyKind::fusion, expressions::kQCriterion));
  EXPECT_LT(floor,
            fx.predicted(StrategyKind::roundtrip, expressions::kQCriterion));
}

TEST(Planner, SelectPrefersFusionWhenEverythingFits) {
  PlannerFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  const dataflow::Network network(
      dataflow::build_network(expressions::kQCriterion));
  const auto bindings = fx.bindings();
  EXPECT_EQ(runtime::select_strategy(network, bindings, fx.mesh.cell_count(),
                                     device),
            StrategyKind::fusion);
}

TEST(Planner, SelectFallsBackToStreamedUnderPressure) {
  PlannerFixture fx;
  const std::size_t cells = fx.mesh.cell_count();
  vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
  spec.global_mem_bytes = 4 * cells * sizeof(float);  // < fusion's 8 arrays
  vcl::Device device(spec);
  const dataflow::Network network(
      dataflow::build_network(expressions::kQCriterion));
  const auto bindings = fx.bindings();
  EXPECT_EQ(runtime::select_strategy(network, bindings, cells, device),
            StrategyKind::streamed);
}

TEST(Planner, SelectAccountsForMemoryAlreadyInUse) {
  PlannerFixture fx;
  const std::size_t cells = fx.mesh.cell_count();
  vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
  spec.global_mem_bytes = 10 * cells * sizeof(float);
  vcl::Device device(spec);
  const dataflow::Network network(
      dataflow::build_network(expressions::kQCriterion));
  const auto bindings = fx.bindings();
  EXPECT_EQ(runtime::select_strategy(network, bindings, cells, device),
            StrategyKind::fusion);
  // Another tenant occupies most of the device: fusion no longer fits the
  // *free* memory.
  vcl::Buffer resident = device.allocate(5 * cells);
  EXPECT_EQ(runtime::select_strategy(network, bindings, cells, device),
            StrategyKind::streamed);
}

TEST(Planner, SelectThrowsWhenNothingFits) {
  PlannerFixture fx;
  vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
  spec.global_mem_bytes = 1024;  // not even one plane
  vcl::Device device(spec);
  const dataflow::Network network(
      dataflow::build_network(expressions::kQCriterion));
  const auto bindings = fx.bindings();
  EXPECT_THROW(
      runtime::select_strategy(network, bindings, fx.mesh.cell_count(),
                               device),
      DeviceOutOfMemory);
}

TEST(Planner, SelectedStrategyActuallyExecutes) {
  // Property: whatever the planner picks must run without OOM on that
  // device, across a range of capacities.
  PlannerFixture fx;
  const std::size_t cells = fx.mesh.cell_count();
  const auto bindings = fx.bindings();
  const dataflow::Network network(
      dataflow::build_network(expressions::kQCriterion));
  for (const std::size_t arrays : {3u, 5u, 9u, 20u, 40u}) {
    vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
    spec.global_mem_bytes = arrays * cells * sizeof(float);
    vcl::Device device(spec);
    const StrategyKind kind =
        runtime::select_strategy(network, bindings, cells, device);
    vcl::ProfilingLog log;
    const auto strategy = runtime::make_strategy(kind);
    EXPECT_NO_THROW(strategy->execute(network, bindings, cells, device, log))
        << arrays << " arrays -> " << runtime::strategy_name(kind);
  }
}

}  // namespace
