// Tests for the transfer/compute overlap model (vcl::pipeline_makespan)
// and the analytic streamed chunk costs that feed it.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "mesh/generators.hpp"
#include "runtime/planner.hpp"
#include "vcl/catalog.hpp"
#include "vcl/pipeline.hpp"

namespace {

using namespace dfg;
using vcl::ChunkCost;
using vcl::pipeline_makespan;

TEST(Pipeline, EmptySequence) {
  const auto result = pipeline_makespan({});
  EXPECT_DOUBLE_EQ(result.serial, 0.0);
  EXPECT_DOUBLE_EQ(result.overlap_single_copy, 0.0);
  EXPECT_DOUBLE_EQ(result.overlap_dual_copy, 0.0);
}

TEST(Pipeline, SingleChunkCannotOverlap) {
  const std::vector<ChunkCost> chunks{{1.0, 2.0, 0.5}};
  const auto result = pipeline_makespan(chunks);
  EXPECT_DOUBLE_EQ(result.serial, 3.5);
  EXPECT_DOUBLE_EQ(result.overlap_single_copy, 3.5);
  EXPECT_DOUBLE_EQ(result.overlap_dual_copy, 3.5);
}

TEST(Pipeline, ComputeBoundApproachesKernelSum) {
  // Kernels dominate: overlap hides nearly all transfer time; makespan ->
  // first upload + sum of kernels + last read.
  std::vector<ChunkCost> chunks(10, ChunkCost{0.1, 5.0, 0.1});
  const auto result = pipeline_makespan(chunks);
  EXPECT_DOUBLE_EQ(result.overlap_dual_copy, 0.1 + 10 * 5.0 + 0.1);
  EXPECT_DOUBLE_EQ(result.overlap_single_copy, 0.1 + 10 * 5.0 + 0.1);
  EXPECT_DOUBLE_EQ(result.serial, 10 * 5.2);
}

TEST(Pipeline, TransferBoundApproachesCopySum) {
  // Transfers dominate: the copy engine is the bottleneck. With a single
  // copy engine the makespan approaches uploads+reads; with dual engines,
  // max(uploads, reads) (+ pipeline fill).
  std::vector<ChunkCost> chunks(10, ChunkCost{4.0, 0.1, 2.0});
  const auto result = pipeline_makespan(chunks);
  EXPECT_GE(result.overlap_single_copy, 10 * 6.0);
  EXPECT_LT(result.overlap_dual_copy, result.overlap_single_copy);
  EXPECT_GE(result.overlap_dual_copy, 10 * 4.0);
}

TEST(Pipeline, OrderingInvariants) {
  // For any cost mix: dual <= single <= serial, and both lower bounds
  // (total kernel time, max engine load) hold.
  const std::vector<std::vector<ChunkCost>> cases{
      {{1, 1, 1}, {1, 1, 1}, {1, 1, 1}},
      {{0.5, 2, 0.1}, {3, 0.2, 0.7}, {0.1, 0.1, 5}},
      {{2, 0, 2}, {0, 4, 0}},
      {{0, 0, 0}},
  };
  for (const auto& chunks : cases) {
    const auto result = pipeline_makespan(chunks);
    double kernels = 0.0, uploads = 0.0, reads = 0.0;
    for (const ChunkCost& c : chunks) {
      kernels += c.kernel;
      uploads += c.upload;
      reads += c.read;
    }
    EXPECT_LE(result.overlap_dual_copy, result.overlap_single_copy + 1e-12);
    EXPECT_LE(result.overlap_single_copy, result.serial + 1e-12);
    EXPECT_GE(result.overlap_dual_copy + 1e-12, kernels);
    EXPECT_GE(result.overlap_dual_copy + 1e-12, uploads);
    EXPECT_GE(result.overlap_dual_copy + 1e-12, reads);
    EXPECT_GE(result.overlap_single_copy + 1e-12, uploads + reads);
  }
}

// ----- Analytic chunk costs vs the executed streamed strategy -----

struct CostFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 9, 20});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);

  runtime::FieldBindings bindings() const {
    runtime::FieldBindings b;
    b.bind_mesh(mesh);
    b.bind("u", field.u);
    b.bind("v", field.v);
    b.bind("w", field.w);
    return b;
  }
};

TEST(StreamedCosts, SerialSumEqualsExecutedSimTime) {
  CostFixture fx;
  const vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
  const dataflow::Network network(
      dataflow::build_network(expressions::kQCriterion));
  const auto bindings = fx.bindings();
  const std::size_t plane = 8 * 9;

  for (const std::size_t chunk : {5 * plane, 20 * plane}) {
    const auto chunks = runtime::streamed_chunk_costs(
        network, bindings, fx.mesh.cell_count(), spec, chunk);
    const auto makespan = pipeline_makespan(chunks);

    vcl::Device device(spec);
    EngineOptions options;
    options.strategy = runtime::StrategyKind::streamed;
    options.streamed_chunk_cells = chunk;
    Engine engine(device, options);
    engine.bind_mesh(fx.mesh);
    engine.bind("u", fx.field.u);
    engine.bind("v", fx.field.v);
    engine.bind("w", fx.field.w);
    const auto report = engine.evaluate(expressions::kQCriterion);
    EXPECT_NEAR(makespan.serial, report.sim_seconds,
                1e-12 + 1e-9 * report.sim_seconds)
        << "chunk " << chunk;
  }
}

TEST(StreamedCosts, OverlapBuysTimeOnMultiChunkRuns) {
  CostFixture fx;
  const vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
  const dataflow::Network network(
      dataflow::build_network(expressions::kQCriterion));
  const auto bindings = fx.bindings();
  const auto chunks = runtime::streamed_chunk_costs(
      network, bindings, fx.mesh.cell_count(), spec, 5 * 8 * 9);
  ASSERT_GT(chunks.size(), 1u);
  const auto makespan = pipeline_makespan(chunks);
  EXPECT_LT(makespan.overlap_dual_copy, makespan.serial);
}

TEST(StreamedCosts, ChunkCountMatchesPlanes) {
  CostFixture fx;
  const dataflow::Network network(
      dataflow::build_network(expressions::kVelocityMagnitude));
  const auto bindings = fx.bindings();
  // Elementwise: 1440 cells in chunks of 100 -> 15 chunks.
  const auto chunks = runtime::streamed_chunk_costs(
      network, bindings, fx.mesh.cell_count(), vcl::xeon_x5660_scaled(), 100);
  EXPECT_EQ(chunks.size(), 15u);
}

}  // namespace
