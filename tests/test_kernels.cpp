// Unit tests for the kernel layer: program builder validation, per-opcode
// VM semantics, the primitive registry and standalone kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/primitives.hpp"
#include "kernels/program.hpp"
#include "kernels/vm.hpp"
#include "support/error.hpp"

namespace {

using namespace dfg::kernels;

BufferBinding bind(const std::vector<float>& v) {
  return BufferBinding{v.data(), v.size()};
}

std::vector<float> run1(const Program& prog,
                        const std::vector<std::vector<float>>& inputs,
                        std::size_t n) {
  std::vector<BufferBinding> bindings;
  bindings.reserve(inputs.size());
  for (const auto& in : inputs) bindings.push_back(bind(in));
  std::vector<float> out(n * prog.out_stride(), -999.0f);
  run_all(prog, bindings, out, n);
  return out;
}

// ----- ProgramBuilder validation -----

TEST(ProgramBuilder, StoreOfUndefinedRegisterThrows) {
  ProgramBuilder b("bad");
  b.emit_load_const(1.0f);  // r0
  EXPECT_THROW(b.finish(7, 1), dfg::KernelError);
}

TEST(ProgramBuilder, InvalidOutComponentsThrow) {
  ProgramBuilder b("bad");
  const auto r = b.emit_load_const(1.0f);
  EXPECT_THROW(b.finish(r, 2), dfg::KernelError);
}

TEST(ProgramBuilder, WrongEmitterArityThrows) {
  ProgramBuilder b("bad");
  const auto r = b.emit_load_const(1.0f);
  EXPECT_THROW(b.emit_binary(Op::sqrt, r, r), dfg::KernelError);
  EXPECT_THROW(b.emit_unary(Op::add, r), dfg::KernelError);
  EXPECT_THROW(b.emit_component(r, 4), dfg::KernelError);
}

TEST(ProgramBuilder, MetadataAccumulatesFlopsAndBytes) {
  ProgramBuilder b("meta");
  const auto a = b.emit_load_global(b.add_param("a"));
  const auto c = b.emit_load_global(b.add_param("c"));
  const auto s = b.emit_binary(Op::add, a, c);
  const Program prog = b.finish(s, 1);
  EXPECT_EQ(prog.flops_per_item(), 1u);
  // 2 loads + 1 store = 12 bytes per item.
  EXPECT_EQ(prog.global_bytes_per_item(), 12u);
  EXPECT_EQ(prog.params().size(), 2u);
}

TEST(ProgramBuilder, LivenessCountsPeakScalars) {
  ProgramBuilder b("live");
  const auto a = b.emit_load_global(b.add_param("a"));
  const auto c = b.emit_load_global(b.add_param("c"));
  const auto s = b.emit_binary(Op::add, a, c);  // a, c dead after this
  const auto t = b.emit_binary(Op::mul, s, s);
  const Program prog = b.finish(t, 1);
  // Peak: a, c and (at the add) the freshly defined s => 3 scalars.
  EXPECT_EQ(prog.max_live_scalar_registers(), 3);
}

TEST(ProgramBuilder, VectorRegistersCountAsThreeScalars) {
  ProgramBuilder b("vec_live");
  const auto field = b.add_param("f");
  const auto dims = b.add_param("dims");
  const auto x = b.add_param("x");
  const auto y = b.add_param("y");
  const auto z = b.add_param("z");
  const auto g = b.emit_grad3d(field, dims, x, y, z);
  const auto c0 = b.emit_component(g, 0);
  const Program prog = b.finish(c0, 1);
  EXPECT_GE(prog.max_live_scalar_registers(), 4);  // vec(3) + scalar
}

// ----- VM opcode semantics -----

TEST(Vm, ArithmeticOpcodes) {
  const std::vector<float> a{6.0f, -2.0f};
  const std::vector<float> c{3.0f, 4.0f};
  struct Case {
    const char* kind;
    float expect0, expect1;
  };
  const Case cases[] = {
      {"add", 9.0f, 2.0f},   {"sub", 3.0f, -6.0f}, {"mult", 18.0f, -8.0f},
      {"div", 2.0f, -0.5f},  {"min", 3.0f, -2.0f}, {"max", 6.0f, 4.0f},
  };
  for (const Case& tc : cases) {
    const Program prog = make_standalone_program(tc.kind);
    const auto out = run1(prog, {a, c}, 2);
    EXPECT_FLOAT_EQ(out[0], tc.expect0) << tc.kind;
    EXPECT_FLOAT_EQ(out[1], tc.expect1) << tc.kind;
  }
}

TEST(Vm, PowOpcode) {
  const Program prog = make_standalone_program("pow");
  const auto out = run1(prog, {{2.0f, 9.0f}, {10.0f, 0.5f}}, 2);
  EXPECT_FLOAT_EQ(out[0], 1024.0f);
  EXPECT_FLOAT_EQ(out[1], 3.0f);
}

TEST(Vm, UnaryOpcodes) {
  EXPECT_FLOAT_EQ(run1(make_standalone_program("sqrt"), {{16.0f}}, 1)[0],
                  4.0f);
  EXPECT_FLOAT_EQ(run1(make_standalone_program("neg"), {{16.0f}}, 1)[0],
                  -16.0f);
  EXPECT_FLOAT_EQ(run1(make_standalone_program("abs"), {{-3.5f}}, 1)[0],
                  3.5f);
}

TEST(Vm, ComparisonOpcodesProduceZeroOne) {
  struct Case {
    const char* kind;
    float expect;  // for a=2, c=2
  };
  const Case cases[] = {{"cmp_gt", 0.0f}, {"cmp_lt", 0.0f}, {"cmp_ge", 1.0f},
                        {"cmp_le", 1.0f}, {"cmp_eq", 1.0f}, {"cmp_ne", 0.0f}};
  for (const Case& tc : cases) {
    const Program prog = make_standalone_program(tc.kind);
    EXPECT_FLOAT_EQ(run1(prog, {{2.0f}, {2.0f}}, 1)[0], tc.expect) << tc.kind;
  }
}

TEST(Vm, SelectPicksByCondition) {
  const Program prog = make_standalone_program("select");
  const auto out =
      run1(prog, {{1.0f, 0.0f}, {10.0f, 10.0f}, {20.0f, 20.0f}}, 2);
  EXPECT_FLOAT_EQ(out[0], 10.0f);
  EXPECT_FLOAT_EQ(out[1], 20.0f);
}

TEST(Vm, ConstFillWritesImmediateEverywhere) {
  const Program prog = make_standalone_program("const_fill", 0, 2.5f);
  const auto out = run1(prog, {}, 4);
  for (const float v : out) EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(Vm, DecomposeSelectsLaneFromPackedVec) {
  // One packed float4 element per item.
  const std::vector<float> vec{1.0f, 2.0f, 3.0f, 0.0f,
                               5.0f, 6.0f, 7.0f, 0.0f};
  for (int comp = 0; comp < 3; ++comp) {
    const Program prog = make_standalone_program("decompose", comp);
    const auto out = run1(prog, {vec}, 2);
    EXPECT_FLOAT_EQ(out[0], vec[static_cast<std::size_t>(comp)]);
    EXPECT_FLOAT_EQ(out[1], vec[4 + static_cast<std::size_t>(comp)]);
  }
}

TEST(Vm, Grad3dLinearFieldIsExact) {
  // f = 2x + 3y - z on a 4x4x4 uniform unit grid: the central/one-sided
  // difference of a linear field is exact everywhere. Coordinates are the
  // problem-sized cell-center arrays the host pipeline provides.
  const std::size_t n = 4;
  const std::vector<float> dims{4.0f, 4.0f, 4.0f};
  std::vector<float> field(n * n * n);
  std::vector<float> xs(n * n * n), ys(n * n * n), zs(n * n * n);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        const auto center = [&](std::size_t c) {
          return (static_cast<float>(c) + 0.5f) / static_cast<float>(n);
        };
        const std::size_t idx = i + n * (j + n * k);
        xs[idx] = center(i);
        ys[idx] = center(j);
        zs[idx] = center(k);
        field[idx] = 2.0f * xs[idx] + 3.0f * ys[idx] - zs[idx];
      }
    }
  }
  const Program prog = make_standalone_program("grad3d");
  const auto out = run1(prog, {field, dims, xs, ys, zs}, n * n * n);
  for (std::size_t c = 0; c < n * n * n; ++c) {
    EXPECT_NEAR(out[c * 4 + 0], 2.0f, 1e-4f) << "cell " << c;
    EXPECT_NEAR(out[c * 4 + 1], 3.0f, 1e-4f) << "cell " << c;
    EXPECT_NEAR(out[c * 4 + 2], -1.0f, 1e-4f) << "cell " << c;
    EXPECT_FLOAT_EQ(out[c * 4 + 3], 0.0f);
  }
}

TEST(Vm, Grad3dSingleCellAxisIsZero) {
  // 1x1x2 grid: x/y axes have a single cell, z has two.
  const std::vector<float> dims{1.0f, 1.0f, 2.0f};
  const std::vector<float> xs{0.5f, 0.5f};
  const std::vector<float> ys{0.5f, 0.5f};
  const std::vector<float> zs{0.25f, 0.75f};
  const std::vector<float> field{1.0f, 3.0f};
  const Program prog = make_standalone_program("grad3d");
  const auto out = run1(prog, {field, dims, xs, ys, zs}, 2);
  EXPECT_FLOAT_EQ(out[0], 0.0f);  // d/dx with one cell
  EXPECT_FLOAT_EQ(out[1], 0.0f);  // d/dy with one cell
  EXPECT_FLOAT_EQ(out[2], 4.0f);  // (3-1)/0.5
}

TEST(Vm, MismatchedBindingCountThrows) {
  const Program prog = make_standalone_program("add");
  const std::vector<float> a{1.0f};
  std::vector<float> out(1);
  std::vector<BufferBinding> only_one{bind(a)};
  EXPECT_THROW(run_all(prog, only_one, out, 1), dfg::KernelError);
}

TEST(Vm, UndersizedInputBufferThrows) {
  const Program prog = make_standalone_program("add");
  const std::vector<float> a{1.0f, 2.0f};
  const std::vector<float> c{1.0f};  // too small for ndrange 2
  std::vector<float> out(2);
  std::vector<BufferBinding> bindings{bind(a), bind(c)};
  EXPECT_THROW(run_all(prog, bindings, out, 2), dfg::KernelError);
}

TEST(Vm, UndersizedOutputThrows) {
  const Program prog = make_standalone_program("const_fill", 0, 1.0f);
  std::vector<float> out(1);
  EXPECT_THROW(run_all(prog, {}, out, 2), dfg::KernelError);
}

TEST(Vm, Grad3dBadDimsBufferThrows) {
  const Program prog = make_standalone_program("grad3d");
  const std::vector<float> field(8, 0.0f);
  const std::vector<float> dims{2.0f, 2.0f};  // needs 3 entries
  const std::vector<float> nodes{0.0f, 0.5f, 1.0f};
  std::vector<float> out(8 * 4);
  std::vector<BufferBinding> bindings{bind(field), bind(dims), bind(nodes),
                                      bind(nodes), bind(nodes)};
  EXPECT_THROW(run_all(prog, bindings, out, 8), dfg::KernelError);
}

TEST(Vm, Grad3dUndersizedCoordinateBufferThrows) {
  const Program prog = make_standalone_program("grad3d");
  const std::vector<float> field(8, 0.0f);
  const std::vector<float> dims{2.0f, 2.0f, 2.0f};
  const std::vector<float> coords(8, 0.5f);
  const std::vector<float> short_coords(4, 0.5f);  // needs 8 (one per cell)
  std::vector<float> out(8 * 4);
  std::vector<BufferBinding> bindings{bind(field), bind(dims),
                                      bind(short_coords), bind(coords),
                                      bind(coords)};
  EXPECT_THROW(run_all(prog, bindings, out, 8), dfg::KernelError);
}

// ----- Primitive registry -----

TEST(Primitives, RegistryContainsPaperSubset) {
  // The subset the paper names in §III-B3.
  for (const char* name :
       {"add", "sub", "mult", "sqrt", "decompose", "grad3d"}) {
    EXPECT_NE(find_primitive(name), nullptr) << name;
  }
}

TEST(Primitives, UnknownLookupReturnsNull) {
  EXPECT_EQ(find_primitive("nope"), nullptr);
}

TEST(Primitives, MetadataShapes) {
  EXPECT_EQ(find_primitive("grad3d")->result_components, 3);
  EXPECT_EQ(find_primitive("grad3d")->arity, 5);
  EXPECT_EQ(find_primitive("decompose")->input_components[0], 3);
  EXPECT_EQ(find_primitive("select")->arity, 3);
}

TEST(Primitives, EveryPrimitiveCarriesOclSource) {
  for (const PrimitiveInfo& info : all_primitives()) {
    EXPECT_FALSE(info.ocl_source.empty()) << info.name;
  }
}

TEST(Primitives, Grad3dSourceIsTheFiftyLinePrimitive) {
  // The paper: "the 3D rectilinear mesh field gradient requires over 50
  // lines of OpenCL source code".
  const std::string& src = find_primitive("grad3d")->ocl_source;
  const std::size_t lines =
      static_cast<std::size_t>(std::count(src.begin(), src.end(), '\n'));
  EXPECT_GT(lines, 50u);
  EXPECT_NE(src.find("float4 grad3d"), std::string::npos);
}

TEST(Primitives, IsComparisonClassifier) {
  EXPECT_TRUE(is_comparison("cmp_gt"));
  EXPECT_TRUE(is_comparison("cmp_ne"));
  EXPECT_FALSE(is_comparison("add"));
  EXPECT_FALSE(is_comparison("cmp_bogus"));
}

TEST(Primitives, BinaryOpcodeForRejectsNonBinary) {
  EXPECT_THROW(binary_opcode_for("sqrt"), dfg::KernelError);
  EXPECT_EQ(binary_opcode_for("mult"), Op::mul);
}

TEST(Primitives, StandaloneUnknownKindThrows) {
  EXPECT_THROW(make_standalone_program("nope"), dfg::KernelError);
}

TEST(OpMetadata, NamesAndCosts) {
  EXPECT_STREQ(op_name(Op::grad3d), "grad3d");
  EXPECT_STREQ(op_name(Op::load_global), "load_global");
  EXPECT_EQ(op_flops(Op::add), 1u);
  EXPECT_EQ(op_flops(Op::load_global), 0u);
  EXPECT_GT(op_flops(Op::grad3d), op_flops(Op::sqrt));
  EXPECT_EQ(op_global_bytes(Op::store_vec), 16u);
  EXPECT_EQ(op_global_bytes(Op::add), 0u);
}

}  // namespace
