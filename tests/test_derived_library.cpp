// Analytic validation of the derived-quantity expression library on the
// ABC flow, whose closed forms make every quantity checkable:
//   divergence == 0 (incompressible), helicity == |v|^2 (Beltrami),
//   enstrophy == 0.5 |v|^2, and the paper's three quantities relate as
//   vorticity magnitude == velocity magnitude.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "mesh/generators.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;

constexpr float kTwoPi = 6.28318530717958647692f;

struct LibraryFixture {
  mesh::RectilinearMesh mesh =
      mesh::RectilinearMesh::uniform({24, 24, 24}, kTwoPi, kTwoPi, kTwoPi);
  mesh::VectorField field = mesh::abc_flow(mesh);
  vcl::Device device{vcl::xeon_x5660()};

  std::vector<float> evaluate(const char* expression,
                              runtime::StrategyKind kind =
                                  runtime::StrategyKind::fusion) {
    Engine engine(device, {kind, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine.evaluate(expression).values;
  }

  /// Max |values - reference| over interior cells (boundary stencils are
  /// first-order).
  double max_interior_error(const std::vector<float>& values,
                            const std::vector<float>& reference) {
    double max_err = 0.0;
    const auto& d = mesh.dims();
    for (std::size_t k = 1; k + 1 < d.nz; ++k) {
      for (std::size_t j = 1; j + 1 < d.ny; ++j) {
        for (std::size_t i = 1; i + 1 < d.nx; ++i) {
          const std::size_t idx = mesh.cell_index(i, j, k);
          max_err = std::max(
              max_err,
              static_cast<double>(std::fabs(values[idx] - reference[idx])));
        }
      }
    }
    return max_err;
  }
};

TEST(DerivedLibrary, DivergenceOfAbcFlowIsZero) {
  LibraryFixture fx;
  const auto div = fx.evaluate(expressions::kDivergence);
  const std::vector<float> zero(div.size(), 0.0f);
  EXPECT_LT(fx.max_interior_error(div, zero), 0.02);
}

TEST(DerivedLibrary, HelicityOfBeltramiFlowEqualsSpeedSquared) {
  LibraryFixture fx;
  const auto helicity = fx.evaluate(expressions::kHelicity);
  std::vector<float> speed_squared(fx.mesh.cell_count());
  for (std::size_t i = 0; i < speed_squared.size(); ++i) {
    speed_squared[i] = fx.field.u[i] * fx.field.u[i] +
                       fx.field.v[i] * fx.field.v[i] +
                       fx.field.w[i] * fx.field.w[i];
  }
  EXPECT_LT(fx.max_interior_error(helicity, speed_squared), 0.1);
}

TEST(DerivedLibrary, EnstrophyEqualsHalfSpeedSquaredOnAbc) {
  LibraryFixture fx;
  const auto enstrophy = fx.evaluate(expressions::kEnstrophy);
  std::vector<float> reference(fx.mesh.cell_count());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    reference[i] = 0.5f * (fx.field.u[i] * fx.field.u[i] +
                           fx.field.v[i] * fx.field.v[i] +
                           fx.field.w[i] * fx.field.w[i]);
  }
  EXPECT_LT(fx.max_interior_error(enstrophy, reference), 0.1);
}

TEST(DerivedLibrary, SpeedFrontStrengthRunsPartitioned) {
  LibraryFixture fx;
  const auto front = fx.evaluate(expressions::kSpeedFrontStrength);
  ASSERT_EQ(front.size(), fx.mesh.cell_count());
  for (const float v : front) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_GE(v, 0.0f);
  }
  // Same result from the staged strategy (native grad-of-intermediate).
  const auto staged = fx.evaluate(expressions::kSpeedFrontStrength,
                                  runtime::StrategyKind::staged);
  EXPECT_EQ(front, staged);
}

TEST(DerivedLibrary, EnstrophyConsistentWithVorticityMagnitude) {
  // ens == 0.5 * w_mag^2 by construction, through two separate
  // expression evaluations.
  LibraryFixture fx;
  const auto enstrophy = fx.evaluate(expressions::kEnstrophy);
  const auto w_mag = fx.evaluate(expressions::kVorticityMagnitude);
  for (std::size_t i = 0; i < enstrophy.size(); ++i) {
    ASSERT_NEAR(enstrophy[i], 0.5f * w_mag[i] * w_mag[i],
                2e-5f * (1.0f + w_mag[i] * w_mag[i]))
        << "cell " << i;
  }
}

TEST(DerivedLibrary, AllQuantitiesAgreeAcrossStrategies) {
  LibraryFixture fx;
  for (const char* expr :
       {expressions::kDivergence, expressions::kHelicity,
        expressions::kEnstrophy}) {
    const auto fusion = fx.evaluate(expr, runtime::StrategyKind::fusion);
    const auto staged = fx.evaluate(expr, runtime::StrategyKind::staged);
    const auto streamed = fx.evaluate(expr, runtime::StrategyKind::streamed);
    ASSERT_EQ(fusion, staged) << expr;
    ASSERT_EQ(fusion, streamed) << expr;
  }
}

}  // namespace
