// Tests for the jit execution backend (src/kernels/backend.*, jit.*) and
// the pre-codegen rewrite pass (src/kernels/rewrites.*).
//
// The jit pipeline — emit C for a fused program, invoke the system
// toolchain, dlopen the result — is exercised for real here: these tests
// compile shared objects into the process temp directory. Covered:
// compile-once-run-many caching, LRU eviction under a capacity cap,
// graceful degradation to the VM when the toolchain is broken (poisoned
// DFGEN_JIT_CC — the regression test for "auto never errors"), and the
// in-flight dedup that makes concurrent prepares of one fingerprint
// compile exactly once.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "kernels/backend.hpp"
#include "kernels/generator.hpp"
#include "kernels/optimizer.hpp"
#include "kernels/program.hpp"
#include "kernels/program_cache.hpp"
#include "kernels/rewrites.hpp"
#include "kernels/source_printer.hpp"
#include "kernels/vm.hpp"
#include "mesh/generators.hpp"
#include "mesh/mesh.hpp"
#include "runtime/bindings.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"
#include "vcl/device.hpp"

#include "bitwise.hpp"

namespace {

using namespace dfg;

struct JitFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({6, 5, 4});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);

  runtime::FieldBindings bindings() const {
    runtime::FieldBindings b;
    b.bind_mesh(mesh);
    b.bind("u", field.u);
    b.bind("v", field.v);
    b.bind("w", field.w);
    return b;
  }

  kernels::Program program(const std::string& text) const {
    const dataflow::Network network(dataflow::build_network(text));
    return kernels::optimize_program(kernels::generate_fused(network));
  }

  /// Runs `kernel` over the whole mesh and compares bitwise against the
  /// scalar interpreter.
  void expect_matches_scalar(const kernels::CompiledKernel& kernel,
                             const kernels::Program& program) const {
    const runtime::FieldBindings b = bindings();
    std::vector<kernels::BufferBinding> inputs;
    for (const kernels::BufferParam& param : program.params()) {
      const std::span<const float> view = b.get(param.name);
      inputs.push_back({view.data(), view.size()});
    }
    const std::size_t n = mesh.cell_count();
    std::vector<float> got(n * program.out_stride());
    std::vector<float> want(n * program.out_stride());
    kernel.run(program, inputs, got.data(), got.size(), 0, n);
    kernels::run_scalar(program, inputs, want.data(), want.size(), 0, n);
    EXPECT_EQ(test::first_bit_mismatch(got, want),
              static_cast<std::size_t>(-1));
  }
};

/// RAII poison/restore for DFGEN_JIT_CC. Poisoning changes the cache key
/// (fingerprint ^ compiler command), so the broken-toolchain entries never
/// shadow the healthy ones and vice versa.
struct PoisonedToolchain {
  PoisonedToolchain() {
    ::setenv("DFGEN_JIT_CC", "/nonexistent/dfgen-no-such-cc", 1);
  }
  ~PoisonedToolchain() { ::unsetenv("DFGEN_JIT_CC"); }
};

TEST(JitBackend, CompilesRunsAndMatchesScalarBits) {
  JitFixture fx;
  const kernels::Program program =
      fx.program("q = sqrt(u * u + v * v) + grad3d(w, dims, x, y, z)[2]");
  const auto backend = kernels::backend_for(kernels::BackendKind::jit);
  const auto kernel = backend->prepare(program);
  ASSERT_EQ(kernel->kind(), kernels::BackendKind::jit);
  fx.expect_matches_scalar(*kernel, program);
}

TEST(JitBackend, SecondPrepareIsACacheHitNotARecompile) {
  JitFixture fx;
  const kernels::Program program = fx.program("q = u * 2 + v / (w + 100)");
  const auto backend = kernels::backend_for(kernels::BackendKind::jit);
  backend->prepare(program);  // may compile or hit, depending on history
  const kernels::JitCacheStats before =
      kernels::ProgramCache::instance().jit_stats();
  const auto again = backend->prepare(program);
  const kernels::JitCacheStats after =
      kernels::ProgramCache::instance().jit_stats();
  EXPECT_EQ(again->kind(), kernels::BackendKind::jit);
  EXPECT_EQ(after.compiles, before.compiles);
  EXPECT_EQ(after.hits, before.hits + 1);
}

TEST(JitBackend, CapacityCapEvictsLeastRecentlyUsedModule) {
  JitFixture fx;
  kernels::ProgramCache& cache = kernels::ProgramCache::instance();
  const std::size_t old_cap = cache.jit_capacity();
  cache.clear();  // start from an empty module cache
  cache.set_jit_capacity(2);

  const kernels::Program a = fx.program("q = u + 0.5");
  const kernels::Program b = fx.program("q = v + 1.5");
  const kernels::Program c = fx.program("q = w + 3.25");
  const auto backend = kernels::backend_for(kernels::BackendKind::jit);

  backend->prepare(a);
  backend->prepare(b);
  backend->prepare(a);  // touch a: b is now the LRU entry
  const kernels::JitCacheStats before = cache.jit_stats();
  backend->prepare(c);  // capacity 2: evicts b
  const kernels::JitCacheStats evicted = cache.jit_stats();
  EXPECT_EQ(evicted.evictions, before.evictions + 1);

  // a survived the eviction (hit); b must compile again (miss).
  backend->prepare(a);
  const kernels::JitCacheStats hit_a = cache.jit_stats();
  EXPECT_EQ(hit_a.compiles, evicted.compiles);
  backend->prepare(b);
  const kernels::JitCacheStats miss_b = cache.jit_stats();
  EXPECT_EQ(miss_b.compiles, evicted.compiles + 1);

  cache.set_jit_capacity(old_cap);
}

TEST(JitBackend, PoisonedToolchainFallsBackToVmWithCorrectResults) {
  JitFixture fx;
  const kernels::Program program = fx.program("q = max(u, v) * tanh(w)");
  const kernels::JitCacheStats before =
      kernels::ProgramCache::instance().jit_stats();
  PoisonedToolchain poison;
  const auto backend = kernels::backend_for(kernels::BackendKind::jit);
  const auto kernel = backend->prepare(program);  // must not throw
  const kernels::JitCacheStats after =
      kernels::ProgramCache::instance().jit_stats();
  EXPECT_EQ(kernel->kind(), kernels::BackendKind::vm);
  EXPECT_EQ(after.compile_failures, before.compile_failures + 1);
  // The degraded kernel still computes the right bits.
  fx.expect_matches_scalar(*kernel, program);
  // A second prepare re-reads the negative-cached failure: no second
  // toolchain invocation, same VM fallback.
  const auto again = backend->prepare(program);
  EXPECT_EQ(again->kind(), kernels::BackendKind::vm);
  EXPECT_EQ(kernels::ProgramCache::instance().jit_stats().compiles,
            after.compiles);
}

TEST(JitBackend, AutoBackendNeverErrorsUnderPoisonedToolchain) {
  // The satellite regression test: a full Engine evaluation on the auto
  // backend with a broken DFGEN_JIT_CC must succeed end to end — per-
  // program degradation to the VM, zero failures surfaced to the caller.
  JitFixture fx;
  PoisonedToolchain poison;
  vcl::Device device{vcl::xeon_x5660_scaled()};
  EngineOptions options;
  options.backend = kernels::BackendKind::auto_select;
  Engine engine(device, options);
  engine.bind_mesh(fx.mesh);
  engine.bind("u", fx.field.u);
  engine.bind("v", fx.field.v);
  engine.bind("w", fx.field.w);
  const EvaluationReport report =
      engine.evaluate("q = sqrt(u * u + v * v + w * w)");
  EXPECT_EQ(report.backend, std::string("auto"));
  ASSERT_EQ(report.values.size(), fx.mesh.cell_count());

  // Same bits as an explicit VM run.
  EngineOptions vm_options;
  vm_options.backend = kernels::BackendKind::vm;
  vcl::Device vm_device{vcl::xeon_x5660_scaled()};
  Engine vm_engine(vm_device, vm_options);
  vm_engine.bind_mesh(fx.mesh);
  vm_engine.bind("u", fx.field.u);
  vm_engine.bind("v", fx.field.v);
  vm_engine.bind("w", fx.field.w);
  const EvaluationReport vm_report =
      vm_engine.evaluate("q = sqrt(u * u + v * v + w * w)");
  EXPECT_EQ(test::first_bit_mismatch(report.values, vm_report.values),
            static_cast<std::size_t>(-1));
}

TEST(JitBackend, ConcurrentPreparesOfOneFingerprintCompileExactlyOnce) {
  JitFixture fx;
  // A fresh expression shape so no earlier test has this fingerprint
  // cached; clear() drops completed modules either way.
  const kernels::Program program =
      fx.program("q = floor(u) + ceil(v) + pow(abs(w) + 1, 0.5)");
  kernels::ProgramCache::instance().clear();
  const kernels::JitCacheStats before =
      kernels::ProgramCache::instance().jit_stats();

  const auto backend = kernels::backend_for(kernels::BackendKind::jit);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const kernels::CompiledKernel>> kernels_out(
      kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { kernels_out[t] = backend->prepare(program); });
  }
  for (std::thread& thread : threads) thread.join();

  const kernels::JitCacheStats after =
      kernels::ProgramCache::instance().jit_stats();
  EXPECT_EQ(after.compiles, before.compiles + 1)
      << "racing prepares must join the in-flight compile, not duplicate it";
  for (const auto& kernel : kernels_out) {
    ASSERT_NE(kernel, nullptr);
    EXPECT_EQ(kernel->kind(), kernels::BackendKind::jit);
    fx.expect_matches_scalar(*kernel, program);
  }
}

TEST(JitBackend, GeneratedSourceIsSelfContained) {
  JitFixture fx;
  const kernels::Program program =
      fx.program("q = select(u > v, sin(u), grad3d(w, dims, x, y, z)[0])");
  const std::string source = kernels::to_c_source(program);
  EXPECT_NE(source.find(kernels::kJitEntryName), std::string::npos);
  EXPECT_NE(source.find("restrict"), std::string::npos);
  EXPECT_NE(source.find("dfgen_grad_rows"), std::string::npos);
  // No C++ leakage: the unit must compile as plain C.
  EXPECT_EQ(source.find("std::"), std::string::npos);
  EXPECT_EQ(source.find("namespace"), std::string::npos);
}

// ----- the shared pre-codegen rewrite pass -----

TEST(NetworkRewrites, DoubleNegationEdgesSkipBothSignFlips) {
  const dataflow::Network network(dataflow::build_network(
      "t0 = -(-u)\n"
      "q = t0 + v"));
  kernels::NetworkRewriteStats stats;
  const dataflow::NetworkSpec rewritten =
      kernels::rewrite_network(network.spec(), &stats);
  EXPECT_EQ(stats.double_negation, 1u);
  EXPECT_EQ(stats.total(), 1u);
  // Node count is preserved (ids are load-bearing); only edges moved.
  EXPECT_EQ(rewritten.nodes().size(), network.spec().nodes().size());
}

TEST(NetworkRewrites, AbsRulesCollapse) {
  const dataflow::Network network(dataflow::build_network(
      "t0 = abs(abs(u))\n"
      "t1 = abs(-v)\n"
      "q = t0 + t1"));
  kernels::NetworkRewriteStats stats;
  kernels::rewrite_network(network.spec(), &stats);
  EXPECT_GE(stats.nested_abs, 1u);
  EXPECT_GE(stats.abs_of_negation, 1u);
}

TEST(NetworkRewrites, CleanNetworkRewritesToZeroMoves) {
  const dataflow::Network network(
      dataflow::build_network("q = sqrt(u * u + v * v)"));
  kernels::NetworkRewriteStats stats;
  kernels::rewrite_network(network.spec(), &stats);
  EXPECT_EQ(stats.total(), 0u);
}

TEST(NetworkRewrites, RewrittenProgramsStayBitExact) {
  JitFixture fx;
  // Optimized codegen runs the rewrite pass; raw codegen does not. Both
  // must produce identical bits on every backend (spot-check scalar vs the
  // jit of the rewritten program).
  const std::string text =
      "t0 = -(-(u * v))\n"
      "t1 = abs(-(t0 + w))\n"
      "q = abs(abs(t1)) + t0";
  const dataflow::Network network(dataflow::build_network(text));
  const kernels::Program raw = kernels::generate_fused(network);
  const kernels::FusedPipeline optimized =
      kernels::generate_fused_pipeline(network);
  ASSERT_EQ(optimized.stages.size(), 1u);

  const runtime::FieldBindings b = fx.bindings();
  const auto run_scalar_of = [&](const kernels::Program& program) {
    std::vector<kernels::BufferBinding> inputs;
    for (const kernels::BufferParam& param : program.params()) {
      const std::span<const float> view = b.get(param.name);
      inputs.push_back({view.data(), view.size()});
    }
    const std::size_t n = fx.mesh.cell_count();
    std::vector<float> out(n * program.out_stride());
    kernels::run_scalar(program, inputs, out.data(), out.size(), 0, n);
    return out;
  };
  EXPECT_EQ(test::first_bit_mismatch(run_scalar_of(raw),
                                     run_scalar_of(optimized.stages[0].program)),
            static_cast<std::size_t>(-1));

  const auto jit = kernels::backend_for(kernels::BackendKind::jit)
                       ->prepare(optimized.stages[0].program);
  fx.expect_matches_scalar(*jit, optimized.stages[0].program);
}

TEST(NetworkRewrites, RewireInputValidatesItsArguments) {
  dataflow::NetworkSpec spec =
      dataflow::build_network("t0 = u + v\nq = t0 * t0");
  int filter_id = -1;
  for (const dataflow::SpecNode& node : spec.nodes()) {
    if (node.type == dataflow::NodeType::filter && node.kind == "mult") {
      filter_id = node.id;
    }
  }
  ASSERT_GE(filter_id, 0);
  // Forward edges (consumer before producer) are structurally impossible
  // and must be rejected, as must out-of-range argument indices.
  EXPECT_THROW(spec.rewire_input(filter_id, 0, filter_id),
               dfg::NetworkError);
  EXPECT_THROW(spec.rewire_input(filter_id, 99, 0), dfg::NetworkError);
}

}  // namespace
