// End-to-end smoke tests: the full pipeline (parse -> network -> strategy ->
// virtual device) on small grids, before the per-module suites dig in.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "mesh/generators.hpp"
#include "vcl/catalog.hpp"

namespace {

using dfg::runtime::StrategyKind;

class SmokeTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(SmokeTest, VelocityMagnitudeMatchesDirectComputation) {
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({8, 8, 8});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);

  dfg::vcl::Device device(dfg::vcl::xeon_x5660_scaled());
  dfg::Engine engine(device, {GetParam(), {}});
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);

  const dfg::EvaluationReport report =
      engine.evaluate(dfg::expressions::kVelocityMagnitude);
  ASSERT_EQ(report.values.size(), mesh.cell_count());
  EXPECT_EQ(report.output_name, "v_mag");
  for (std::size_t i = 0; i < mesh.cell_count(); ++i) {
    const float expected =
        std::sqrt(field.u[i] * field.u[i] + field.v[i] * field.v[i] +
                  field.w[i] * field.w[i]);
    ASSERT_NEAR(report.values[i], expected, 1e-5f) << "cell " << i;
  }
}

TEST_P(SmokeTest, QCriterionRunsOnAllStrategies) {
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({6, 6, 6});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);

  dfg::vcl::Device device(dfg::vcl::xeon_x5660_scaled());
  dfg::Engine engine(device, {GetParam(), {}});
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);

  const dfg::EvaluationReport report =
      engine.evaluate(dfg::expressions::kQCriterion);
  ASSERT_EQ(report.values.size(), mesh.cell_count());
  EXPECT_EQ(report.output_name, "q");
  for (const float q : report.values) {
    ASSERT_TRUE(std::isfinite(q));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SmokeTest,
    ::testing::Values(StrategyKind::roundtrip, StrategyKind::staged,
                      StrategyKind::fusion),
    [](const auto& info) {
      return dfg::runtime::strategy_name(info.param);
    });

}  // namespace
