// Fault-injection tests: the deterministic failure matrix behind the
// degradation machinery. Every strategy is driven through each injected
// fault family — allocation failure, transient transfer fault, transient
// kernel fault, whole-device loss — and must react exactly as the
// FallbackPolicy prescribes: retry transients with bounded backoff, degrade
// one rung per unrecoverable failure, propagate device loss, and always
// produce a field bit-identical to a fault-free run. Injected faults must
// be observable in the profiling log and the Chrome trace.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "distrib/decomposition.hpp"
#include "distrib/dist_engine.hpp"
#include "mesh/generators.hpp"
#include "runtime/fallback.hpp"
#include "runtime/reference.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"
#include "vcl/trace.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

/// The rung one degradation step below `kind` (the next ladder entry).
StrategyKind next_rung(StrategyKind kind) {
  const std::size_t pos = runtime::ladder_position(kind);
  return runtime::kMemoryLadder[pos + 1];
}

std::size_t fault_events(const vcl::ProfilingLog& log) {
  return log.count(vcl::EventKind::fault);
}

/// One engine wired to the Q-criterion workload (gradients of all three
/// velocity components — every strategy, including streamed, can run it).
struct FaultFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  std::vector<float> reference = clean_reference();

  /// The fault-free field (all strategies are bit-identical, so one clean
  /// fusion run is the reference for every scenario).
  std::vector<float> clean_reference() {
    vcl::Device device(vcl::xeon_x5660_scaled());
    Engine engine(device, {StrategyKind::fusion, {}});
    bind(engine);
    return engine.evaluate(expressions::kQCriterion).values;
  }

  void bind(Engine& engine) {
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
  }

  Engine make(vcl::Device& device, StrategyKind kind, bool fallback_on) {
    EngineOptions options;
    options.strategy = kind;
    options.fallback.enabled = fallback_on;
    Engine engine(device, options);
    bind(engine);
    return engine;
  }
};

class FaultMatrixTest : public ::testing::TestWithParam<StrategyKind> {
 protected:
  FaultFixture fx;
};

TEST_P(FaultMatrixTest, AllocationFailureDegradesOneRung) {
  const StrategyKind requested = GetParam();
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.fail_alloc_index = 1;  // the requested rung's very first allocation
  device.fault().arm(plan);
  Engine engine = fx.make(device, requested, /*fallback_on=*/true);

  if (requested == StrategyKind::roundtrip) {
    // The last rung has nowhere to degrade to: the policy rethrows.
    EXPECT_THROW(engine.evaluate(expressions::kQCriterion),
                 DeviceOutOfMemory);
    return;
  }
  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.strategy, runtime::strategy_name(next_rung(requested)));
  ASSERT_EQ(report.degradations.size(), 1u);
  EXPECT_EQ(report.degradations[0].from, runtime::strategy_name(requested));
  EXPECT_EQ(report.degradations[0].to,
            runtime::strategy_name(next_rung(requested)));
  EXPECT_EQ(report.injected_faults, 1u);
  EXPECT_EQ(report.command_retries, 0u);  // OOM is not retried
  EXPECT_EQ(report.values, fx.reference);
  EXPECT_GE(fault_events(engine.log()), 1u);
  EXPECT_EQ(device.memory().in_use(), 0u)
      << "the failed rung's device state must be released";
}

TEST_P(FaultMatrixTest, TransientTransferFaultIsRetriedInPlace) {
  const StrategyKind requested = GetParam();
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.fail_write_index = 1;  // first upload fails once, then recovers
  plan.transient_count = 1;
  device.fault().arm(plan);
  Engine engine = fx.make(device, requested, /*fallback_on=*/true);

  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  // A single retry absorbs the fault: no degradation at all.
  EXPECT_EQ(report.strategy, runtime::strategy_name(requested));
  EXPECT_TRUE(report.degradations.empty());
  EXPECT_EQ(report.command_retries, 1u);
  EXPECT_EQ(report.injected_faults, 1u);
  EXPECT_EQ(report.values, fx.reference);
  // Both the injected fault and the retry are log events.
  EXPECT_EQ(fault_events(engine.log()), 2u);
}

TEST_P(FaultMatrixTest, TransientKernelFaultExhaustsRetriesThenDegrades) {
  const StrategyKind requested = GetParam();
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  // Three consecutive failures defeat the default three-attempt budget.
  plan.fail_kernel_index = 1;
  plan.transient_count = 3;
  device.fault().arm(plan);
  Engine engine = fx.make(device, requested, /*fallback_on=*/true);

  if (requested == StrategyKind::roundtrip) {
    EXPECT_THROW(engine.evaluate(expressions::kQCriterion), DeviceError);
    return;
  }
  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.strategy, runtime::strategy_name(next_rung(requested)));
  ASSERT_EQ(report.degradations.size(), 1u);
  // Attempts 1 and 2 back off and retry; attempt 3 lets the error escape.
  EXPECT_EQ(report.command_retries, 2u);
  EXPECT_EQ(report.injected_faults, 3u);
  EXPECT_EQ(report.values, fx.reference);
}

TEST_P(FaultMatrixTest, DeviceLossIsFatalOnASingleDevice) {
  const StrategyKind requested = GetParam();
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.lose_device_after = 2;  // die once two commands have completed
  device.fault().arm(plan);
  Engine engine = fx.make(device, requested, /*fallback_on=*/true);

  // No rung can run on a lost device, so the fallback must not mask it.
  EXPECT_THROW(engine.evaluate(expressions::kQCriterion), DeviceLost);
  EXPECT_TRUE(device.fault().device_lost());
  // Loss is sticky: the next evaluation dies on its first command.
  EXPECT_THROW(engine.evaluate(expressions::kQCriterion), DeviceLost);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, FaultMatrixTest,
                         ::testing::Values(StrategyKind::roundtrip,
                                           StrategyKind::staged,
                                           StrategyKind::fusion,
                                           StrategyKind::streamed),
                         [](const auto& info) {
                           return std::string(
                               runtime::strategy_name(info.param));
                         });

TEST(FaultInjection, StrictModeAbortsExactlyLikeThePaper) {
  // With the policy disabled (the Engine default), an injected capacity
  // cliff reproduces the paper's aborted GPU cells: the evaluation throws.
  FaultFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.synthetic_capacity_bytes = 64;  // nothing fits
  device.fault().arm(plan);
  Engine engine = fx.make(device, StrategyKind::fusion, /*fallback_on=*/false);
  EXPECT_THROW(engine.evaluate(expressions::kQCriterion), DeviceOutOfMemory);
}

TEST(FaultInjection, RetryBackoffIsDeterministicPerSeed) {
  // Two identically-seeded runs charge identical simulated backoff; a
  // different seed jitters differently.
  const auto retry_backoff = [](std::uint32_t seed) {
    FaultFixture fx;
    vcl::Device device(vcl::xeon_x5660_scaled());
    vcl::FaultPlan plan;
    plan.seed = seed;
    plan.fail_write_index = 2;
    device.fault().arm(plan);
    Engine engine = fx.make(device, StrategyKind::fusion, true);
    engine.evaluate(expressions::kQCriterion);
    for (const vcl::Event& event : engine.log().events()) {
      if (event.kind == vcl::EventKind::fault &&
          event.label.rfind("retry:", 0) == 0) {
        return event.sim_seconds;
      }
    }
    return -1.0;
  };
  const double a = retry_backoff(7);
  EXPECT_GT(a, 0.0);
  EXPECT_EQ(a, retry_backoff(7));
  EXPECT_NE(a, retry_backoff(8));
}

TEST(FaultInjection, FaultsAppearInLogAndChromeTrace) {
  FaultFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.fail_write_index = 1;
  device.fault().arm(plan);
  Engine engine = fx.make(device, StrategyKind::fusion, true);
  engine.evaluate(expressions::kQCriterion);

  bool saw_injected = false, saw_retry = false;
  for (const vcl::Event& event : engine.log().events()) {
    if (event.kind != vcl::EventKind::fault) continue;
    if (event.label.rfind("fault:Dev-W:", 0) == 0) saw_injected = true;
    if (event.label.rfind("retry:Dev-W:", 0) == 0) saw_retry = true;
  }
  EXPECT_TRUE(saw_injected);
  EXPECT_TRUE(saw_retry);

  const std::string trace = vcl::to_chrome_trace(engine.log());
  EXPECT_NE(trace.find("faults"), std::string::npos);
  EXPECT_NE(trace.find("fault:Dev-W:"), std::string::npos);

  // A fault-free log keeps its trace free of the faults track.
  vcl::Device clean_device(vcl::xeon_x5660_scaled());
  Engine clean = fx.make(clean_device, StrategyKind::fusion, true);
  clean.evaluate(expressions::kQCriterion);
  EXPECT_EQ(vcl::to_chrome_trace(clean.log()).find("faults"),
            std::string::npos);
}

TEST(FaultInjection, DegradedRunStillMatchesReferenceInterpreter) {
  // A degraded field is bit-identical to the clean strategies, which in
  // turn match the hand-written reference kernel to rounding (it uses a
  // shorter float sequence — see test_reference): the same tolerance must
  // hold straight off a faulted run.
  FaultFixture fx;
  runtime::FieldBindings bindings;
  bindings.bind_mesh(fx.mesh);
  bindings.bind("u", fx.field.u);
  bindings.bind("v", fx.field.v);
  bindings.bind("w", fx.field.w);
  vcl::Device ref_device(vcl::xeon_x5660_scaled());
  vcl::ProfilingLog ref_log;
  const std::vector<float> ref =
      runtime::run_reference(runtime::reference_q_criterion(), bindings,
                             fx.mesh.cell_count(), ref_device, ref_log);

  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.fail_alloc_index = 1;
  device.fault().arm(plan);
  Engine engine = fx.make(device, StrategyKind::fusion, true);
  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  ASSERT_FALSE(report.degradations.empty());
  float scale = 1.0f;
  for (const float q : ref) scale = std::max(scale, std::fabs(q));
  ASSERT_EQ(report.values.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(report.values[i], ref[i], 1e-5f * scale) << "cell " << i;
  }
}

TEST(FaultInjection, EmptyPlanInjectsNothing) {
  FaultFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  device.fault().arm(vcl::FaultPlan{});  // empty: arming is a no-op
  EXPECT_FALSE(device.fault().armed());
  Engine engine = fx.make(device, StrategyKind::fusion, true);
  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.injected_faults, 0u);
  EXPECT_EQ(report.command_retries, 0u);
  EXPECT_TRUE(report.degradations.empty());
  EXPECT_EQ(report.values, fx.reference);
  EXPECT_EQ(fault_events(engine.log()), 0u);
}

// ----- Distributed engine: one block's failure must stay one block's -----

struct DistFaultFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);

  distrib::ClusterConfig config() {
    distrib::ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.devices_per_node = 2;
    cfg.device_spec = vcl::xeon_x5660_scaled();
    return cfg;
  }

  distrib::DistributedReport run(const distrib::ClusterConfig& cfg) {
    distrib::DistributedEngine engine(
        mesh, distrib::GridDecomposition({8, 8, 8}, 2, 1, 1), cfg);
    engine.bind_global("u", field.u);
    engine.bind_global("v", field.v);
    engine.bind_global("w", field.w);
    return engine.evaluate(expressions::kQCriterion,
                           StrategyKind::fusion);
  }
};

TEST(DistFault, SingleBlockDegradesInsteadOfFailingTheRun) {
  DistFaultFixture fx;
  const distrib::DistributedReport baseline = fx.run(fx.config());

  distrib::ClusterConfig cfg = fx.config();
  cfg.fault_plan.fail_alloc_index = 1;  // rank 0's first allocation
  cfg.fault_rank = 0;
  const distrib::DistributedReport report = fx.run(cfg);

  EXPECT_EQ(report.degraded_blocks, 1u);
  EXPECT_EQ(report.strategy_degradations, 1u);
  EXPECT_EQ(report.device_losses, 0u);
  EXPECT_GE(report.injected_faults, 1u);
  EXPECT_EQ(report.values, baseline.values)
      << "a degraded block must still compute the exact field";
}

TEST(DistFault, LostDeviceIsReplacedAndTheBlockReRun) {
  DistFaultFixture fx;
  const distrib::DistributedReport baseline = fx.run(fx.config());

  distrib::ClusterConfig cfg = fx.config();
  cfg.fault_plan.lose_device_after = 2;
  cfg.fault_rank = 0;
  const distrib::DistributedReport report = fx.run(cfg);

  EXPECT_EQ(report.device_losses, 1u);
  EXPECT_EQ(report.values, baseline.values);
}

TEST(DistFault, StrictClusterPropagatesTheLoss) {
  DistFaultFixture fx;
  distrib::ClusterConfig cfg = fx.config();
  cfg.fallback.enabled = false;
  cfg.fault_plan.lose_device_after = 2;
  EXPECT_THROW(fx.run(cfg), DeviceLost);
}

}  // namespace
