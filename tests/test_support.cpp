// Unit tests for the support module: parallel_for, string helpers,
// stopwatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/stopwatch.hpp"
#include "support/string_util.hpp"

namespace {

using dfg::support::parallel_for;

TEST(ParallelFor, CoversWholeRangeExactlyOnce) {
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(touched.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroElementsDoesNotInvokeBody) {
  bool called = false;
  parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleElement) {
  int sum = 0;
  parallel_for(1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum += static_cast<int>(i) + 5;
  });
  EXPECT_EQ(sum, 5);
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 0) throw dfg::Error("boom");
                   }),
      dfg::Error);
}

TEST(ParallelFor, WorkerOverrideRestorable) {
  dfg::support::set_worker_count(3);
  EXPECT_EQ(dfg::support::worker_count(), 3u);
  std::atomic<int> total{0};
  parallel_for(10, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 10);
  dfg::support::set_worker_count(0);
  EXPECT_GE(dfg::support::worker_count(), 1u);
}

TEST(ParallelFor, ChunksAreDisjointAndOrdered) {
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(97, [&](std::size_t begin, std::size_t end) {
    std::scoped_lock lock(m);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t covered = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, covered);
    EXPECT_GT(end, begin);
    covered = end;
  }
  EXPECT_EQ(covered, 97u);
}

TEST(StringUtil, JoinEmpty) { EXPECT_EQ(dfg::support::join({}, ", "), ""); }

TEST(StringUtil, JoinSingle) {
  EXPECT_EQ(dfg::support::join({"a"}, ", "), "a");
}

TEST(StringUtil, JoinMany) {
  EXPECT_EQ(dfg::support::join({"a", "b", "c"}, " + "), "a + b + c");
}

TEST(StringUtil, FormatBytesUnits) {
  EXPECT_EQ(dfg::support::format_bytes(512), "512 B");
  EXPECT_EQ(dfg::support::format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(dfg::support::format_bytes(std::size_t(218) << 20), "218.0 MiB");
  EXPECT_EQ(dfg::support::format_bytes(std::size_t(3) << 30), "3.0 GiB");
}

TEST(StringUtil, FormatFloatAlwaysHasDecimalMarker) {
  EXPECT_EQ(dfg::support::format_float(0.5), "0.5");
  EXPECT_EQ(dfg::support::format_float(2.0), "2.0");
  EXPECT_EQ(dfg::support::format_float(-3.0), "-3.0");
  // Round-trips through strtod.
  EXPECT_EQ(std::stod(dfg::support::format_float(1e-7)), 1e-7);
}

TEST(Stopwatch, MeasuresNonNegativeMonotonicTime) {
  dfg::support::Stopwatch watch;
  const double t1 = watch.seconds();
  const double t2 = watch.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  watch.reset();
  EXPECT_GE(watch.seconds(), 0.0);
}

TEST(Errors, DeviceOutOfMemoryCarriesContext) {
  const dfg::DeviceOutOfMemory err("gpu0", 100, 50, 120);
  EXPECT_EQ(err.device(), "gpu0");
  EXPECT_EQ(err.requested_bytes(), 100u);
  EXPECT_EQ(err.in_use_bytes(), 50u);
  EXPECT_EQ(err.capacity_bytes(), 120u);
  EXPECT_NE(std::string(err.what()).find("gpu0"), std::string::npos);
}

TEST(Errors, ParseErrorCarriesPosition) {
  const dfg::ParseError err("bad token", 3, 14);
  EXPECT_EQ(err.line(), 3);
  EXPECT_EQ(err.column(), 14);
  EXPECT_NE(std::string(err.what()).find("line 3"), std::string::npos);
}

}  // namespace
