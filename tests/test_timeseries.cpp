// Time-series evaluation mode: Engine::evaluate_series over T timesteps
// with the resident pool on must re-upload exactly the fields the advance
// callback reports mutated, keep everything else device-resident, and
// produce bit-identical values to a cold engine that re-uploads the world
// every step. The counters in each per-step EvaluationReport are the
// observable: dev_writes, resident hits/misses and invalidations.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "bitwise.hpp"
#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "mesh/generators.hpp"
#include "mesh/mesh.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;

constexpr float kTwoPi = 6.28318530717958647692f;
constexpr const char* kExpr = "q = qcriterion(u, v, w, dims, x, y, z)";

struct SeriesFixture {
  SeriesFixture()
      : mesh(mesh::RectilinearMesh::uniform({12, 12, 12}, kTwoPi, kTwoPi,
                                            kTwoPi)),
        field(mesh::abc_flow(mesh)) {}

  /// Deterministic in-place "simulation step" for one component.
  static void step_array(std::vector<float>& a, std::size_t step) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] += 0.01f * static_cast<float>(step) +
              0.001f * static_cast<float>(i % 7);
    }
  }

  Engine make_engine(vcl::Device& device, bool pool) {
    EngineOptions options;
    options.resident_pool = pool;
    Engine engine(device, options);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine;
  }

  mesh::RectilinearMesh mesh;
  mesh::VectorField field;
};

TEST(TimeSeries, OnlyChangedFieldsReupload) {
  SeriesFixture fx;
  vcl::Device device(vcl::xeon_x5660());
  Engine engine = fx.make_engine(device, /*pool=*/true);

  const std::size_t kSteps = 4;
  SeriesReport series = engine.evaluate_series(
      kExpr, fx.mesh.cell_count(), kSteps, [&](std::size_t step) {
        SeriesFixture::step_array(fx.field.u, step);
        return std::vector<std::string>{"u"};
      });

  ASSERT_EQ(series.steps.size(), kSteps);
  ASSERT_EQ(series.fields_invalidated, kSteps - 1);

  // Step 0 is cold: all seven inputs (u, v, w + the four mesh arrays)
  // upload, none hit the pool.
  const EvaluationReport& cold = series.steps[0];
  EXPECT_EQ(cold.resident_hits, 0u);
  EXPECT_GE(cold.dev_writes, 7u);

  // Every later step re-uploads exactly the mutated field; the other six
  // inputs are pool hits and move zero bytes.
  for (std::size_t t = 1; t < kSteps; ++t) {
    const EvaluationReport& warm = series.steps[t];
    EXPECT_EQ(warm.dev_writes, 1u) << "step " << t;
    EXPECT_EQ(warm.resident_hits, 6u) << "step " << t;
    // The invalidation itself happens between steps — outside the step's
    // counter window — so it shows up in fields_invalidated above, not in
    // the per-step resident_invalidations delta.
    EXPECT_GT(warm.resident_upload_bytes_saved, 0u) << "step " << t;
  }
}

TEST(TimeSeries, StaticFieldsMakeWarmStepsUploadFree) {
  SeriesFixture fx;
  vcl::Device device(vcl::xeon_x5660());
  Engine engine = fx.make_engine(device, /*pool=*/true);

  // No advance callback: nothing mutates, so steps 1..T-1 upload nothing.
  SeriesReport series =
      engine.evaluate_series(kExpr, fx.mesh.cell_count(), 3);
  ASSERT_EQ(series.steps.size(), 3u);
  EXPECT_EQ(series.fields_invalidated, 0u);
  for (std::size_t t = 1; t < series.steps.size(); ++t) {
    EXPECT_EQ(series.steps[t].dev_writes, 0u) << "step " << t;
    EXPECT_EQ(series.steps[t].resident_hits, 7u) << "step " << t;
  }
  // Totals are the per-step sums.
  std::size_t writes = 0;
  double sim = 0.0;
  for (const EvaluationReport& step : series.steps) {
    writes += step.dev_writes;
    sim += step.sim_seconds;
  }
  EXPECT_EQ(series.total_dev_writes, writes);
  EXPECT_DOUBLE_EQ(series.total_sim_seconds, sim);
}

TEST(TimeSeries, BitExactVersusColdPerStepReference) {
  // The pooled series and a pool-off engine fed the identical mutation
  // schedule must agree bit-for-bit at every step: transfer elimination
  // may never change a value.
  SeriesFixture pooled_fx;
  SeriesFixture cold_fx;

  vcl::Device pooled_device(vcl::xeon_x5660());
  Engine pooled = pooled_fx.make_engine(pooled_device, /*pool=*/true);
  const std::size_t kSteps = 4;
  SeriesReport series = pooled.evaluate_series(
      kExpr, pooled_fx.mesh.cell_count(), kSteps, [&](std::size_t step) {
        SeriesFixture::step_array(pooled_fx.field.u, step);
        SeriesFixture::step_array(pooled_fx.field.w, step);
        return std::vector<std::string>{"u", "w"};
      });

  for (std::size_t t = 0; t < kSteps; ++t) {
    if (t > 0) {
      SeriesFixture::step_array(cold_fx.field.u, t);
      SeriesFixture::step_array(cold_fx.field.w, t);
    }
    vcl::Device cold_device(vcl::xeon_x5660());
    Engine cold = cold_fx.make_engine(cold_device, /*pool=*/false);
    const EvaluationReport reference =
        cold.evaluate(kExpr, cold_fx.mesh.cell_count());
    test::expect_bits_equal(series.steps[t].values, reference.values,
                            "step " + std::to_string(t));
  }
}

TEST(TimeSeries, SeriesSavesUploadsVersusColdLoop) {
  // The headline accounting the time-series bench gates on: with 1 of 3
  // velocity components changing per step, the pooled series moves far
  // fewer host-to-device bytes than a cold engine looping evaluate().
  SeriesFixture fx;
  const std::size_t kSteps = 5;

  vcl::Device pooled_device(vcl::xeon_x5660());
  Engine pooled = fx.make_engine(pooled_device, /*pool=*/true);
  SeriesReport series = pooled.evaluate_series(
      kExpr, fx.mesh.cell_count(), kSteps, [&](std::size_t step) {
        SeriesFixture::step_array(fx.field.v, step);
        return std::vector<std::string>{"v"};
      });

  // A cold loop repeats step 0's uploads every step.
  const std::size_t naive_writes = series.steps[0].dev_writes * kSteps;
  EXPECT_GE(naive_writes, 2 * series.total_dev_writes)
      << "expected >=2x fewer uploads than per-step re-upload";
  EXPECT_GT(series.total_upload_bytes_saved, 0u);
}

TEST(TimeSeries, ZeroTimestepsIsRejected) {
  SeriesFixture fx;
  vcl::Device device(vcl::xeon_x5660());
  Engine engine = fx.make_engine(device, /*pool=*/true);
  EXPECT_THROW(engine.evaluate_series(kExpr, fx.mesh.cell_count(), 0),
               Error);
}

}  // namespace
