// The sharded evaluation cluster: the consistent-hash ring is
// deterministic and covers every shard, the traffic generator replays
// bit-identically from its seed, a multi-shard cluster produces results
// bit-identical to a single Engine, overload control sheds lower priority
// classes first with typed retry-after errors, a killed shard's keyed
// range reroutes to the ring successor and the supervisor restarts it,
// and a journal-re-warmed shard answers repeat requests from its warm
// cache. The invariant gated throughout: every submitted request reaches
// exactly one terminal state (completed + shed + failed == submitted).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "mesh/generators.hpp"
#include "shard/hash_ring.hpp"
#include "shard/router.hpp"
#include "shard/traffic.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using shard::ClusterOptions;
using shard::ClusterSnapshot;
using shard::HashRing;
using shard::PriorityClass;
using shard::ShardRequest;
using shard::ShardRequestStatus;
using shard::ShardRouter;
using shard::ShardTicket;

/// Submit-and-wait that returns the report BY VALUE: wait()'s reference
/// lives inside the ticket's shared state, which dies with the last ticket
/// copy once the router's monitor retires the flight.
shard::ShardReport submit_and_wait(shard::ShardRouter& router,
                                   shard::ShardRequest request) {
  shard::ShardTicket ticket = router.submit(std::move(request));
  return ticket.wait();
}

struct Fixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({6, 5, 4});
  mesh::VectorField field;

  Fixture() : field(mesh::rayleigh_taylor_flow(mesh, 7)) {}

  ShardRequest request(const std::string& expression,
                       const std::string& session = "default",
                       PriorityClass priority = PriorityClass::batch) const {
    ShardRequest r;
    r.expression = expression;
    r.mesh = &mesh;
    r.fields = {{"u", field.u}, {"v", field.v}, {"w", field.w}};
    r.session = session;
    r.priority = priority;
    return r;
  }

  std::vector<float> reference(const std::string& expression) const {
    vcl::Device device(vcl::xeon_x5660_scaled());
    Engine engine(device);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine.evaluate(expression).values;
  }
};

void expect_bitwise_equal(const std::vector<float>& got,
                          const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const bool nan = std::isnan(want[i]);
    ASSERT_EQ(std::isnan(got[i]), nan) << "cell " << i;
    if (!nan) {
      ASSERT_EQ(got[i], want[i]) << "cell " << i;
    }
  }
}

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("dfgen_shard_") + tag + "_" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(HashRing, DeterministicCoversEveryShardAndBalances) {
  const HashRing a(4, 16, 42);
  const HashRing b(4, 16, 42);
  std::vector<std::size_t> owned(4, 0);
  for (std::uint64_t key = 1; key <= 400; ++key) {
    const auto pa = a.preference(key * 0x9e3779b97f4a7c15ull);
    const auto pb = b.preference(key * 0x9e3779b97f4a7c15ull);
    ASSERT_EQ(pa, pb) << "same shape + seed must build the same ring";
    ASSERT_EQ(pa.size(), 4u);
    ASSERT_EQ(std::set<std::size_t>(pa.begin(), pa.end()).size(), 4u)
        << "preference order must visit every shard exactly once";
    owned[pa.front()] += 1;
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(owned[s], 0u) << "virtual nodes should spread ownership";
  }
  // A different seed lays out a different ring.
  const HashRing c(4, 16, 43);
  bool differs = false;
  for (std::uint64_t key = 1; key <= 64 && !differs; ++key) {
    differs = c.owner(key * 0x9e3779b97f4a7c15ull) !=
              a.owner(key * 0x9e3779b97f4a7c15ull);
  }
  EXPECT_TRUE(differs);
}

TEST(Traffic, SeededTraceReplaysBitIdentically) {
  shard::TrafficOptions options;
  options.seed = 99;
  options.requests = 300;
  const auto a = shard::generate_trace(options, 8);
  const auto b = shard::generate_trace(options, 8);
  ASSERT_EQ(a.size(), 300u);
  std::size_t interactive = 0;
  std::size_t rank0 = 0;
  std::size_t rank_last = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].at_seconds, b[i].at_seconds);
    ASSERT_EQ(a[i].expression, b[i].expression);
    ASSERT_EQ(a[i].session, b[i].session);
    ASSERT_EQ(a[i].priority, b[i].priority);
    if (i > 0) {
      ASSERT_GE(a[i].at_seconds, a[i - 1].at_seconds);
    }
    ASSERT_LT(a[i].expression, 8u);
    if (a[i].priority == PriorityClass::interactive) ++interactive;
    if (a[i].expression == 0) ++rank0;
    if (a[i].expression == 7) ++rank_last;
  }
  EXPECT_GT(interactive, 0u);
  EXPECT_GT(rank0, rank_last) << "Zipf skew: rank 0 must dominate the tail";
}

TEST(ShardRouter, FourShardsMatchSingleEngineBitExactly) {
  Fixture fx;
  ClusterOptions options;
  options.shards = 4;
  options.cluster_seed = 7;
  ShardRouter router(options);

  const std::vector<std::string> catalog = {
      expressions::kVelocityMagnitude, expressions::kVorticityMagnitude,
      expressions::kQCriterion, "e = u*u + 0.5*v", "f = sqrt(w*w) + u"};
  std::vector<ShardTicket> tickets;
  std::vector<std::size_t> expr_of;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t e = 0; e < catalog.size(); ++e) {
      tickets.push_back(router.submit(
          fx.request(catalog[e], "tenant" + std::to_string(round))));
      expr_of.push_back(e);
    }
  }
  router.drain();

  std::map<std::size_t, std::vector<float>> references;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const shard::ShardReport& report = tickets[i].wait();
    ASSERT_EQ(report.status, ShardRequestStatus::completed) << report.error;
    ASSERT_NE(report.evaluation, nullptr);
    if (references.count(expr_of[i]) == 0) {
      references[expr_of[i]] = fx.reference(catalog[expr_of[i]]);
    }
    expect_bitwise_equal(report.evaluation->values, references[expr_of[i]]);
  }

  const ClusterSnapshot snap = router.snapshot();
  EXPECT_EQ(snap.submitted, tickets.size());
  EXPECT_EQ(snap.completed + snap.shed + snap.failed, snap.submitted);
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_EQ(snap.shed, 0u);
  EXPECT_EQ(snap.shards.size(), 4u);
}

TEST(ShardRouter, UnroutableRequestFailsWithTypedError) {
  ClusterOptions options;
  options.shards = 1;
  ShardRouter router(options);
  ShardRequest r;
  r.expression = "a = b + c";  // no fields, no mesh, no elements
  const shard::ShardReport report = submit_and_wait(router, r);
  EXPECT_EQ(report.status, ShardRequestStatus::failed);
  EXPECT_FALSE(report.error.empty());

  ShardRequest bad;
  bad.expression = "a = nosuchfilter(b)";
  const shard::ShardReport parse = submit_and_wait(router, bad);
  EXPECT_EQ(parse.status, ShardRequestStatus::failed);
  EXPECT_FALSE(parse.error.empty());
}

TEST(ShardRouter, OverloadShedsLowerClassesFirstWithRetryAfter) {
  Fixture fx;
  ClusterOptions options;
  options.shards = 1;
  options.router.shard_queue_depth = 4;  // interactive 4, batch 3, spec 2
  options.shard.synthetic_delay_seconds = 0.02;
  ShardRouter router(options);

  std::vector<ShardTicket> tickets;
  for (int i = 0; i < 12; ++i) {
    tickets.push_back(router.submit(
        fx.request("e = u + v*" + std::to_string(i) + ".0", "spec",
                   PriorityClass::speculative)));
  }
  std::size_t sheds = 0;
  for (auto& t : tickets) {
    const shard::ShardReport& report = t.wait();
    if (report.status != ShardRequestStatus::shed) continue;
    ++sheds;
    ASSERT_TRUE(report.admission.has_value());
    EXPECT_EQ(report.admission->priority, PriorityClass::speculative);
    EXPECT_EQ(report.admission->queue_limit, 2u);
    EXPECT_GE(report.admission->queue_depth, report.admission->queue_limit);
    EXPECT_GT(report.admission->retry_after_seconds, 0.0);
    EXPECT_NE(report.admission->message().find("speculative"),
              std::string::npos);
  }
  EXPECT_GT(sheds, 0u) << "12 speculative submits against a limit of 2 "
                          "in-flight must shed";
  router.drain();

  const ClusterSnapshot snap = router.snapshot();
  EXPECT_EQ(
      snap.shed_by_class[static_cast<std::size_t>(PriorityClass::speculative)],
      sheds);
  EXPECT_EQ(snap.completed + snap.shed + snap.failed, snap.submitted);
  EXPECT_EQ(snap.failed, 0u);
}

TEST(ShardRouter, KilledShardReroutesToRingSuccessorAndRestarts) {
  Fixture fx;
  ClusterOptions options;
  options.shards = 2;
  options.cluster_seed = 11;
  options.router.shard_queue_depth = 64;
  // Queue work up behind a slow proxy so the kill lands on in-flight
  // attempts, exercising refuse -> reroute rather than admission-time
  // avoidance.
  options.shard.synthetic_delay_seconds = 0.01;
  ShardRouter router(options);

  // Pin every request to shard 0 (by its own ring), so the kill below is
  // guaranteed to strand keyed work that must move to the successor.
  std::vector<std::string> exprs;
  for (int i = 0; exprs.size() < 10 && i < 200; ++i) {
    const std::string candidate = "e = u*v + " + std::to_string(i) + ".0";
    const dataflow::Network net(dataflow::build_network(candidate, {}));
    if (router.ring().owner(net.fingerprint()) == 0) {
      exprs.push_back(candidate);
    }
  }
  ASSERT_GE(exprs.size(), 3u);
  std::vector<ShardTicket> tickets;
  for (const std::string& e : exprs) {
    tickets.push_back(router.submit(fx.request(e, "chaos")));
  }
  router.shard(0).kill();
  router.drain();

  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const shard::ShardReport& report = tickets[i].wait();
    ASSERT_EQ(report.status, ShardRequestStatus::completed) << report.error;
    expect_bitwise_equal(report.evaluation->values, fx.reference(exprs[i]));
  }

  ClusterSnapshot snap = router.snapshot();
  EXPECT_EQ(snap.completed, snap.submitted);
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_GE(snap.reroutes, 1u)
      << "work queued on the killed shard must move to the successor";

  // The killed shard stops heartbeating; the supervisor must walk it
  // through suspect -> draining -> restart and readmit it to the ring.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    snap = router.snapshot();
    if (snap.restarts >= 1 &&
        snap.shards[0].health == shard::ShardHealth::healthy) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(snap.restarts, 1u);
  EXPECT_EQ(snap.shards[0].health, shard::ShardHealth::healthy);
  EXPECT_GE(snap.heartbeat_misses, 1u);

  // And the revived shard serves again.
  const shard::ShardReport after =
      submit_and_wait(router, fx.request("e = u + w", "chaos"));
  EXPECT_EQ(after.status, ShardRequestStatus::completed) << after.error;
}

TEST(ShardRouter, JournalRewarmServesRepeatRequestsWithoutReexecution) {
  Fixture fx;
  const std::string dir = temp_dir("journal");
  ClusterOptions options;
  options.shards = 2;
  options.cluster_seed = 5;
  options.journal_dir = dir;
  {
    ShardRouter router(options);
    const shard::ShardReport first =
        submit_and_wait(router, fx.request(expressions::kVelocityMagnitude));
    ASSERT_EQ(first.status, ShardRequestStatus::completed) << first.error;
    router.drain();
    EXPECT_GE(router.journal().entries(), 1u)
        << "completions must be journaled";

    // Re-warm every shard from the journal; an identical request must now
    // be served from the warm cache at admission, no re-execution.
    for (std::size_t s = 0; s < router.shard_count(); ++s) {
      router.shard(s).restart(router.journal().all());
      EXPECT_GE(router.shard(s).warm_entries(), 1u);
    }
    const shard::ShardReport again =
        submit_and_wait(router, fx.request(expressions::kVelocityMagnitude));
    ASSERT_EQ(again.status, ShardRequestStatus::completed) << again.error;
    EXPECT_TRUE(again.served_warm);
    expect_bitwise_equal(again.evaluation->values,
                         fx.reference(expressions::kVelocityMagnitude));
    EXPECT_GE(router.snapshot().warm_hits, 1u);

    // Changed input content must change the digest: mutate one field value
    // and the warm cache must miss (full re-execution, fresh result).
    Fixture other;
    other.field.u[0] += 1.0f;
    const shard::ShardReport changed = submit_and_wait(
        router, other.request(expressions::kVelocityMagnitude));
    ASSERT_EQ(changed.status, ShardRequestStatus::completed) << changed.error;
    EXPECT_FALSE(changed.served_warm);
  }
  std::filesystem::remove_all(dir);
}

TEST(ClusterOptions, FromEnvReadsShardKnobs) {
  ::setenv("DFGEN_SHARDS", "6", 1);
  ::setenv("DFGEN_SHARD_QUEUE_DEPTH", "9", 1);
  ::setenv("DFGEN_SHED_POLICY", "hard", 1);
  const ClusterOptions options = ClusterOptions::from_env();
  EXPECT_EQ(options.shards, 6u);
  EXPECT_EQ(options.router.shard_queue_depth, 9u);
  EXPECT_EQ(options.router.shed_policy, "hard");
  ::unsetenv("DFGEN_SHARDS");
  ::unsetenv("DFGEN_SHARD_QUEUE_DEPTH");
  ::unsetenv("DFGEN_SHED_POLICY");
}

}  // namespace
