// Exact reproduction of the paper's Table II: the number of host-to-device
// transfers (Dev-W), device-to-host transfers (Dev-R) and kernel executions
// (K-Exe) for the three vortex-detection expressions under each execution
// strategy. These counts are a pure function of the command stream, so the
// reproduction must match the paper exactly, not approximately.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "mesh/generators.hpp"
#include "vcl/catalog.hpp"

namespace {

using dfg::runtime::StrategyKind;

struct Table2Case {
  const char* label;
  const char* expression;
  StrategyKind strategy;
  std::size_t dev_w;
  std::size_t dev_r;
  std::size_t k_exe;
};

// The paper's Table II, row by row.
const Table2Case kTable2[] = {
    {"VelMag_Roundtrip", dfg::expressions::kVelocityMagnitude,
     StrategyKind::roundtrip, 11, 6, 6},
    {"VelMag_Staged", dfg::expressions::kVelocityMagnitude,
     StrategyKind::staged, 3, 1, 6},
    {"VelMag_Fusion", dfg::expressions::kVelocityMagnitude,
     StrategyKind::fusion, 3, 1, 1},
    {"VortMag_Roundtrip", dfg::expressions::kVorticityMagnitude,
     StrategyKind::roundtrip, 32, 12, 12},
    {"VortMag_Staged", dfg::expressions::kVorticityMagnitude,
     StrategyKind::staged, 7, 1, 18},
    {"VortMag_Fusion", dfg::expressions::kVorticityMagnitude,
     StrategyKind::fusion, 7, 1, 1},
    {"QCrit_Roundtrip", dfg::expressions::kQCriterion,
     StrategyKind::roundtrip, 123, 57, 57},
    {"QCrit_Staged", dfg::expressions::kQCriterion, StrategyKind::staged, 7,
     1, 67},
    {"QCrit_Fusion", dfg::expressions::kQCriterion, StrategyKind::fusion, 7,
     1, 1},
};

class Table2Test : public ::testing::TestWithParam<Table2Case> {};

TEST_P(Table2Test, DeviceEventCountsMatchPaper) {
  const Table2Case& expected = GetParam();
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({8, 8, 8});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);

  dfg::vcl::Device device(dfg::vcl::xeon_x5660_scaled());
  dfg::Engine engine(device, {expected.strategy, {}});
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);

  const dfg::EvaluationReport report = engine.evaluate(expected.expression);
  EXPECT_EQ(report.dev_writes, expected.dev_w) << "Dev-W mismatch";
  EXPECT_EQ(report.dev_reads, expected.dev_r) << "Dev-R mismatch";
  EXPECT_EQ(report.kernel_execs, expected.k_exe) << "K-Exe mismatch";
}

INSTANTIATE_TEST_SUITE_P(PaperTable2, Table2Test, ::testing::ValuesIn(kTable2),
                         [](const auto& info) {
                           return std::string(info.param.label);
                         });

// No-fault regression guard: an *empty* armed FaultPlan — with the
// fallback policy enabled, for good measure — must not perturb the command
// stream at all. All 27 Table II counts stay byte-identical, and no fault
// events appear.
TEST(Table2NoFaultGuard, EmptyFaultPlanLeavesAllCountsIdentical) {
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({8, 8, 8});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  for (const Table2Case& expected : kTable2) {
    SCOPED_TRACE(expected.label);
    dfg::vcl::Device device(dfg::vcl::xeon_x5660_scaled());
    device.fault().arm(dfg::vcl::FaultPlan{});
    dfg::EngineOptions options;
    options.strategy = expected.strategy;
    options.fallback.enabled = true;
    dfg::Engine engine(device, options);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    const dfg::EvaluationReport report = engine.evaluate(expected.expression);
    EXPECT_EQ(report.dev_writes, expected.dev_w) << "Dev-W mismatch";
    EXPECT_EQ(report.dev_reads, expected.dev_r) << "Dev-R mismatch";
    EXPECT_EQ(report.kernel_execs, expected.k_exe) << "K-Exe mismatch";
    EXPECT_EQ(report.injected_faults, 0u);
    EXPECT_EQ(report.command_retries, 0u);
    EXPECT_TRUE(report.degradations.empty());
    EXPECT_EQ(engine.log().count(dfg::vcl::EventKind::fault), 0u);
  }
}

// Event counts must not depend on the data size (they are per-expression,
// per-strategy constants in the paper).
TEST(Table2Invariance, CountsIndependentOfGridSize) {
  for (const auto dims :
       {dfg::mesh::Dims{4, 4, 4}, dfg::mesh::Dims{8, 6, 10}}) {
    const dfg::mesh::RectilinearMesh mesh =
        dfg::mesh::RectilinearMesh::uniform(dims);
    const dfg::mesh::VectorField field =
        dfg::mesh::rayleigh_taylor_flow(mesh);
    dfg::vcl::Device device(dfg::vcl::xeon_x5660_scaled());
    dfg::Engine engine(device, {StrategyKind::staged, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    const auto report = engine.evaluate(dfg::expressions::kQCriterion);
    EXPECT_EQ(report.kernel_execs, 67u) << dfg::mesh::to_string(dims);
  }
}

}  // namespace
