// Seeded expression-grammar fuzzer.
//
// Generates random expression scripts (depth-bounded, covering every
// expression-language operation including grad3d), executes each through
// all four execution strategies crossed with all three execution backends
// (scalar interpreter, tiled VM, jit-compiled native code), and requires
// every combination to be bit-exact against the scalar-interpreter
// reference (the NaN-class rule of tests/bitwise.hpp). Input fields carry
// NaN / infinity / signed-zero specials so non-finite propagation is
// exercised on every path — including through the jit's generated C.
//
// On a failure the script is greedily shrunk — statements dropped, nodes
// replaced by their children or by a constant — while it still fails, and
// the minimal reproducer is printed together with the seed, so a failure
// in CI is directly replayable with
//   DFGEN_FUZZ_SEED=<seed> ./test_fuzz_expressions
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "kernels/backend.hpp"
#include "kernels/generator.hpp"
#include "kernels/program.hpp"
#include "kernels/vm.hpp"
#include "mesh/mesh.hpp"
#include "runtime/bindings.hpp"
#include "service/service.hpp"
#include "support/env.hpp"
#include "vcl/device.hpp"
#include "vcl/resident_pool.hpp"

#include "bitwise.hpp"

namespace {

using namespace dfg;

// ----- the expression tree the generator and shrinker share -----

struct FNode;
using FNodePtr = std::unique_ptr<FNode>;

enum class FKind {
  field,     ///< u / v / w leaf
  constant,  ///< literal from kConstPool
  ref,       ///< reference to an earlier statement's name
  infix,     ///< + - * / and the six comparisons
  call,      ///< named scalar function (sqrt .. ceil, min/max/pow, select)
  neg,       ///< unary minus
  gradc,     ///< grad3d(field, dims, x, y, z)[component]
  cfd,       ///< vector-field operator op(f1, f2, f3, dims, x, y, z)
};

struct FNode {
  FKind kind;
  std::string text;  ///< field/ref name, infix operator, or callee
  int component = 0;
  /// cfd only: the three velocity-slot field names (host-bound arrays, the
  /// same restriction gradc carries).
  std::vector<std::string> fields;
  std::vector<FNodePtr> kids;
};

const char* kFields[] = {"u", "v", "w"};
const char* kConstPool[] = {"0", "1", "2", "0.5", "1.5", "3.25", "100"};
const char* kInfixOps[] = {"+", "-",  "*",  "/",  ">",  "<",
                           ">=", "<=", "==", "!="};
struct CallOp {
  const char* name;
  int arity;
};
const CallOp kCallOps[] = {{"sqrt", 1}, {"abs", 1},  {"sin", 1},
                           {"cos", 1},  {"tan", 1},  {"exp", 1},
                           {"log", 1},  {"tanh", 1}, {"floor", 1},
                           {"ceil", 1}, {"min", 2},  {"max", 2},
                           {"pow", 2},  {"select", 3}};
/// The CFD vector-field builtins, all at the 7-argument signature
/// op(f1, f2, f3, dims, x, y, z). "div" doubles as scalar division at
/// arity 2, so including it here exercises the arity dispatch; curl is the
/// one vector-valued result and is always component-indexed.
const char* kCfdOps[] = {"divergence", "div",       "curl",
                         "vorticity_mag", "enstrophy", "helicity",
                         "qcriterion", "lambda2"};

FNodePtr clone(const FNode& node) {
  auto copy = std::make_unique<FNode>();
  copy->kind = node.kind;
  copy->text = node.text;
  copy->component = node.component;
  copy->fields = node.fields;
  for (const FNodePtr& kid : node.kids) copy->kids.push_back(clone(*kid));
  return copy;
}

void render(const FNode& node, std::string& out) {
  switch (node.kind) {
    case FKind::field:
    case FKind::constant:
    case FKind::ref:
      out += node.text;
      return;
    case FKind::neg:
      out += "(-";
      render(*node.kids[0], out);
      out += ")";
      return;
    case FKind::infix:
      out += "(";
      render(*node.kids[0], out);
      out += " " + node.text + " ";
      render(*node.kids[1], out);
      out += ")";
      return;
    case FKind::call:
      out += node.text;
      out += "(";
      for (std::size_t i = 0; i < node.kids.size(); ++i) {
        if (i != 0) out += ", ";
        render(*node.kids[i], out);
      }
      out += ")";
      return;
    case FKind::gradc:
      out += "grad3d(" + node.text + ", dims, x, y, z)[" +
             std::to_string(node.component) + "]";
      return;
    case FKind::cfd:
      out += node.text + "(" + node.fields[0] + ", " + node.fields[1] +
             ", " + node.fields[2] + ", dims, x, y, z)";
      if (node.text == "curl") {
        out += "[" + std::to_string(node.component) + "]";
      }
      return;
  }
}

struct Stmt {
  std::string name;
  FNodePtr expr;
};
using FScript = std::vector<Stmt>;

std::string render(const FScript& script) {
  std::string out;
  for (const Stmt& stmt : script) {
    out += stmt.name + " = ";
    render(*stmt.expr, out);
    out += "\n";
  }
  return out;
}

// ----- generation -----

struct Generator {
  std::mt19937_64 rng;

  explicit Generator(std::uint64_t seed) : rng(seed) {}

  std::size_t pick(std::size_t bound) {
    return std::uniform_int_distribution<std::size_t>(0, bound - 1)(rng);
  }

  FNodePtr leaf(const std::vector<std::string>& temps) {
    auto node = std::make_unique<FNode>();
    const std::size_t roll = pick(temps.empty() ? 2 : 3);
    if (roll == 0) {
      node->kind = FKind::field;
      node->text = kFields[pick(std::size(kFields))];
    } else if (roll == 1) {
      node->kind = FKind::constant;
      node->text = kConstPool[pick(std::size(kConstPool))];
    } else {
      node->kind = FKind::ref;
      node->text = temps[pick(temps.size())];
    }
    return node;
  }

  FNodePtr gradc() {
    auto node = std::make_unique<FNode>();
    node->kind = FKind::gradc;
    // The gradient's field operand must be a host-bound array (the spec
    // rejects anything else for the mesh operands, and restricting the
    // field operand too keeps every strategy — streamed has no partitioned
    // pipeline — able to execute the script).
    node->text = kFields[pick(std::size(kFields))];
    node->component = static_cast<int>(pick(3));
    return node;
  }

  FNodePtr cfd(std::size_t op_index) {
    auto node = std::make_unique<FNode>();
    node->kind = FKind::cfd;
    node->text = kCfdOps[op_index];
    // The three velocity slots draw independently (repeats allowed —
    // lambda2(u, u, v, ...) is a legal, degenerate Jacobian) but must be
    // host-bound fields, the same restriction gradc carries.
    for (int i = 0; i < 3; ++i) {
      node->fields.push_back(kFields[pick(std::size(kFields))]);
    }
    node->component = static_cast<int>(pick(3));
    return node;
  }

  FNodePtr expr(int depth, const std::vector<std::string>& temps) {
    if (depth <= 0) return leaf(temps);
    switch (pick(11)) {
      case 0:
      case 1:
      case 2: {  // infix
        auto node = std::make_unique<FNode>();
        node->kind = FKind::infix;
        node->text = kInfixOps[pick(std::size(kInfixOps))];
        node->kids.push_back(expr(depth - 1, temps));
        node->kids.push_back(expr(depth - 1, temps));
        return node;
      }
      case 3:
      case 4: {  // call
        auto node = std::make_unique<FNode>();
        node->kind = FKind::call;
        const CallOp& op = kCallOps[pick(std::size(kCallOps))];
        node->text = op.name;
        for (int i = 0; i < op.arity; ++i) {
          node->kids.push_back(expr(depth - 1, temps));
        }
        return node;
      }
      case 5: {  // unary minus
        auto node = std::make_unique<FNode>();
        node->kind = FKind::neg;
        node->kids.push_back(expr(depth - 1, temps));
        return node;
      }
      case 6:
        return gradc();
      case 7:  // stencil builtins keep composite weight: ~1 in 11 interior
               // nodes is a CFD operator, so they appear nested inside
               // larger scalar expressions, not only at statement roots.
        return cfd(pick(std::size(kCfdOps)));
      default:
        return leaf(temps);
    }
  }

  /// One forced construct per script, cycling through every operation so a
  /// bounded run still covers the whole grammar.
  FNodePtr forced(std::size_t index, const std::vector<std::string>& temps) {
    constexpr std::size_t infix_count = std::size(kInfixOps);
    constexpr std::size_t call_count = std::size(kCallOps);
    constexpr std::size_t cfd_count = std::size(kCfdOps);
    index %= infix_count + call_count + 2 + cfd_count;
    auto node = std::make_unique<FNode>();
    if (index < infix_count) {
      node->kind = FKind::infix;
      node->text = kInfixOps[index];
      node->kids.push_back(leaf(temps));
      node->kids.push_back(leaf(temps));
      return node;
    }
    index -= infix_count;
    if (index < call_count) {
      node->kind = FKind::call;
      node->text = kCallOps[index].name;
      for (int i = 0; i < kCallOps[index].arity; ++i) {
        node->kids.push_back(leaf(temps));
      }
      return node;
    }
    index -= call_count;
    if (index == 0) return gradc();
    if (index == 1) {
      node->kind = FKind::neg;
      node->kids.push_back(leaf(temps));
      return node;
    }
    // The tail slots cycle through every CFD builtin, so a bounded corpus
    // is guaranteed to execute each operator at least once.
    return cfd(index - 2);
  }

  FScript script(std::size_t forced_index) {
    FScript result;
    std::vector<std::string> temps;
    const std::size_t statements = 2 + pick(3);
    for (std::size_t s = 0; s < statements; ++s) {
      Stmt stmt;
      stmt.name = "t" + std::to_string(s);
      if (s == 0) {
        // Splice the forced construct into a small surrounding expression.
        auto wrap = std::make_unique<FNode>();
        wrap->kind = FKind::infix;
        wrap->text = "+";
        wrap->kids.push_back(forced(forced_index, temps));
        wrap->kids.push_back(expr(3, temps));
        stmt.expr = std::move(wrap);
      } else {
        stmt.expr = expr(static_cast<int>(2 + pick(4)), temps);
      }
      temps.push_back(stmt.name);
      result.push_back(std::move(stmt));
    }
    // The output must depend on at least one bound field or the network
    // has no element count of its own.
    const std::string text = render(result);
    if (text.find('u') == std::string::npos &&
        text.find('v') == std::string::npos &&
        text.find('w') == std::string::npos) {
      auto anchor = std::make_unique<FNode>();
      anchor->kind = FKind::infix;
      anchor->text = "+";
      auto field = std::make_unique<FNode>();
      field->kind = FKind::field;
      field->text = "u";
      anchor->kids.push_back(std::move(result.back().expr));
      anchor->kids.push_back(std::move(field));
      result.back().expr = std::move(anchor);
    }
    return result;
  }
};

// ----- execution harness -----

/// Generous capacity so every strategy (staged is the hungriest) runs the
/// whole corpus without tripping the allocator.
vcl::DeviceSpec fuzz_device_spec() {
  vcl::DeviceSpec spec;
  spec.name = "fuzz_cpu";
  spec.type = vcl::DeviceType::cpu;
  spec.global_mem_bytes = std::size_t{1} << 30;
  spec.compute_units = 4;
  spec.transfer_gbps = 10.0;
  spec.global_mem_gbps = 30.0;
  spec.gflops = 50.0;
  return spec;
}

struct Fixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 6, 5});
  std::vector<float> u, v, w;
  vcl::Device device{fuzz_device_spec()};

  explicit Fixture(std::uint64_t seed) {
    std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
    const auto field = [&] {
      std::vector<float> values(mesh.cell_count());
      std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
      for (float& x : values) x = dist(rng);
      // Sprinkle the special values whose propagation the comparator's
      // NaN-class rule exists for.
      const auto sprinkle = [&](float special, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
          values[rng() % values.size()] = special;
        }
      };
      sprinkle(std::numeric_limits<float>::quiet_NaN(), 4);
      sprinkle(std::numeric_limits<float>::infinity(), 2);
      sprinkle(-std::numeric_limits<float>::infinity(), 2);
      sprinkle(-0.0f, 2);
      return values;
    };
    u = field();
    v = field();
    w = field();
  }

  runtime::FieldBindings bindings() const {
    runtime::FieldBindings b;
    b.bind_mesh(mesh);
    b.bind("u", u);
    b.bind("v", v);
    b.bind("w", w);
    return b;
  }
};

/// Scalar-interpreter reference: the fused program of the script's network
/// executed element-at-a-time. grad3d is restricted to host-bound fields,
/// so the network always fuses to a single stage.
std::vector<float> reference(const std::string& text, const Fixture& fx) {
  const dataflow::Network network(dataflow::build_network(text));
  const kernels::Program program = kernels::generate_fused(network);
  const runtime::FieldBindings bindings = fx.bindings();
  std::vector<kernels::BufferBinding> inputs;
  for (const kernels::BufferParam& param : program.params()) {
    const std::span<const float> values = bindings.get(param.name);
    inputs.push_back({values.data(), values.size()});
  }
  const std::size_t cells = fx.mesh.cell_count();
  std::vector<float> out(cells * program.out_stride(), 0.0f);
  kernels::run_scalar(program, inputs, out.data(), out.size(), 0, cells);
  return out;
}

const runtime::StrategyKind kStrategies[] = {
    runtime::StrategyKind::roundtrip, runtime::StrategyKind::staged,
    runtime::StrategyKind::fusion, runtime::StrategyKind::streamed};

/// The backend dimension: every strategy must reproduce the reference bits
/// no matter how launch bodies execute. The jit entry degrades to the VM
/// when the toolchain is missing, which is itself a correct run (the
/// fallback path must stay bit-exact too).
const kernels::BackendKind kBackends[] = {kernels::BackendKind::scalar,
                                          kernels::BackendKind::vm,
                                          kernels::BackendKind::jit};

/// Residency state each iteration drives through every strategy: whether
/// the resident-buffer pool is on, how many warm re-evaluations run before
/// the result is compared again, and an optional in-place host mutation
/// (announced via Engine::invalidate) after the warm runs. Derived from
/// the iteration's seeded rng, so a reported seed replays the schedule.
struct ResidencySchedule {
  bool pool = false;
  int warm_runs = 1;       ///< evaluations expected to reproduce `want`
  int mutate_field = -1;   ///< index into kFields; -1 = no mutation step
  std::size_t mutate_index = 0;

  std::string describe() const {
    if (!pool) return "pool off";
    std::string out = "pool on, " + std::to_string(warm_runs) + " warm run(s)";
    if (mutate_field >= 0) {
      out += ", mutate " + std::string(kFields[mutate_field]) + "[" +
             std::to_string(mutate_index) + "]";
    }
    return out;
  }
};

/// Empty string when every strategy reproduces the reference bits across
/// the whole residency schedule; a description of the first divergence
/// otherwise. The fixture's fields are restored (and their generation tags
/// bumped) before returning, so repeated calls — the shrinker — see
/// identical inputs.
std::string check(const std::string& text, Fixture& fx,
                  const ResidencySchedule& sched = {}) {
  std::vector<float> want;
  try {
    want = reference(text, fx);
  } catch (const std::exception& e) {
    return std::string("reference failed: ") + e.what();
  }
  std::vector<float>* fields[] = {&fx.u, &fx.v, &fx.w};
  for (const kernels::BackendKind backend : kBackends)
  for (const runtime::StrategyKind kind : kStrategies) {
    std::string failure;
    try {
      EngineOptions options;
      options.strategy = kind;
      options.resident_pool = sched.pool;
      options.backend = backend;
      Engine engine(fx.device, options);
      engine.bind_mesh(fx.mesh);
      engine.bind("u", fx.u);
      engine.bind("v", fx.v);
      engine.bind("w", fx.w);
      const auto run_against = [&](const std::vector<float>& expect,
                                   const char* phase) {
        const EvaluationReport report = engine.evaluate(text);
        const std::size_t mismatch =
            test::first_bit_mismatch(report.values, expect);
        if (mismatch != static_cast<std::size_t>(-1)) {
          failure = std::string(runtime::strategy_name(kind)) + " on the " +
                    kernels::backend_name(backend) + " backend (" + phase +
                    ") diverges from the scalar reference at element " +
                    std::to_string(mismatch);
          return false;
        }
        return true;
      };
      bool ok = true;
      for (int r = 0; ok && r < std::max(1, sched.warm_runs); ++r) {
        ok = run_against(want, r == 0 ? "cold" : "warm");
      }
      if (ok && sched.mutate_field >= 0) {
        // Sign-flip one element in place (exact involution), announce it,
        // and require the next evaluation to track the mutated bits.
        std::vector<float>& field = *fields[sched.mutate_field];
        const std::size_t at = sched.mutate_index % field.size();
        field[at] = -field[at];
        engine.invalidate(kFields[sched.mutate_field]);
        std::vector<float> want_post;
        try {
          want_post = reference(text, fx);
          run_against(want_post, "post-mutation");
        } catch (const std::exception& e) {
          failure = std::string("post-mutation reference failed: ") + e.what();
        }
        field[at] = -field[at];
        // The restore is itself a host mutation other strategies' pooled
        // entries must observe.
        vcl::note_host_mutation(field.data());
      }
    } catch (const std::exception& e) {
      failure = std::string(runtime::strategy_name(kind)) + " on the " +
                kernels::backend_name(backend) + " backend threw: " + e.what();
    }
    if (!failure.empty()) return failure;
  }
  return {};
}

// ----- shrinking -----

void collect(FNode& node, std::vector<FNode*>& out) {
  out.push_back(&node);
  for (const FNodePtr& kid : node.kids) collect(*kid, out);
}

/// Replaces every reference to `name` with the constant 1 (used when the
/// defining statement is dropped).
void strip_refs(FNode& node, const std::string& name) {
  if (node.kind == FKind::ref && node.text == name) {
    node.kind = FKind::constant;
    node.text = "1";
    node.kids.clear();
    return;
  }
  for (const FNodePtr& kid : node.kids) strip_refs(*kid, name);
}

FScript clone(const FScript& script) {
  FScript copy;
  for (const Stmt& stmt : script) {
    copy.push_back({stmt.name, clone(*stmt.expr)});
  }
  return copy;
}

/// Greedy shrink: keep applying the first still-failing reduction until no
/// reduction fails, bounded by a re-execution budget. The residency
/// schedule is held fixed through every candidate re-execution, so a
/// failure that needs warm state (or a mutation step) to manifest keeps
/// failing while the script shrinks.
FScript shrink(FScript script, Fixture& fx, const ResidencySchedule& sched) {
  int budget = 400;
  bool reduced = true;
  while (reduced && budget > 0) {
    reduced = false;

    // Drop whole statements (the last one is the output and must stay).
    for (std::size_t s = 0; s + 1 < script.size() && !reduced; ++s) {
      FScript candidate = clone(script);
      const std::string dropped = candidate[s].name;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(s));
      for (Stmt& stmt : candidate) strip_refs(*stmt.expr, dropped);
      if (--budget <= 0) break;
      if (!check(render(candidate), fx, sched).empty()) {
        script = std::move(candidate);
        reduced = true;
      }
    }

    // Replace a node with one of its children, or with the constant 1.
    for (std::size_t s = 0; s < script.size() && !reduced; ++s) {
      std::vector<FNode*> nodes;
      collect(*script[s].expr, nodes);
      for (std::size_t n = 0; n < nodes.size() && !reduced; ++n) {
        const std::size_t options = nodes[n]->kids.size() +
                                    (nodes[n]->kind != FKind::constant ? 1 : 0);
        for (std::size_t o = 0; o < options && !reduced; ++o) {
          FScript candidate = clone(script);
          std::vector<FNode*> copy_nodes;
          collect(*candidate[s].expr, copy_nodes);
          FNode& target = *copy_nodes[n];
          if (o < target.kids.size()) {
            FNodePtr replacement = std::move(target.kids[o]);
            target = std::move(*replacement);
          } else {
            target.kind = FKind::constant;
            target.text = "1";
            target.kids.clear();
          }
          if (--budget <= 0) break;
          if (!check(render(candidate), fx, sched).empty()) {
            script = std::move(candidate);
            reduced = true;
          }
        }
      }
    }
  }
  return script;
}

// ----- the fuzz loop -----

TEST(FuzzExpressions, StrategiesMatchScalarReference) {
  const std::uint64_t base_seed = static_cast<std::uint64_t>(
      support::env::get_int("DFGEN_FUZZ_SEED", 20260805));
  const int iterations = support::env::get_int("DFGEN_FUZZ_ITERATIONS", 40);

  for (int i = 0; i < iterations; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    Generator gen(seed);
    Fixture fx(seed);
    FScript script = gen.script(static_cast<std::size_t>(i));

    // Randomize the residency state the script executes under: roughly
    // half the corpus runs with the pool on, re-evaluating warm and
    // sometimes mutating a field mid-iteration. Drawn from the same seeded
    // rng, so the reported seed reproduces the schedule too.
    ResidencySchedule sched;
    sched.pool = gen.pick(2) == 0;
    if (sched.pool) {
      sched.warm_runs = 1 + static_cast<int>(gen.pick(2));
      if (gen.pick(2) == 0) {
        sched.mutate_field = static_cast<int>(gen.pick(std::size(kFields)));
        sched.mutate_index = gen.pick(fx.mesh.cell_count());
      }
    }

    const std::string failure = check(render(script), fx, sched);
    if (failure.empty()) continue;

    const FScript minimal = shrink(std::move(script), fx, sched);
    const std::string minimal_text = render(minimal);
    ADD_FAILURE() << "fuzzer found a divergence (seed " << seed << "): "
                  << check(minimal_text, fx, sched)
                  << "\nresidency schedule: " << sched.describe()
                  << "\nminimal reproducer:\n" << minimal_text
                  << "replay with DFGEN_FUZZ_SEED=" << seed
                  << " DFGEN_FUZZ_ITERATIONS=" << (i + 1);
    return;
  }
}

// A deterministic guard that the harness itself works: a script exercising
// every construct class must round-trip through check() cleanly.
TEST(FuzzExpressions, HarnessAcceptsFullGrammar) {
  Fixture fx(7);
  const std::string text =
      "t0 = grad3d(u, dims, x, y, z)[0] + select(u > v, sin(u), cos(v))\n"
      "t1 = min(t0, max(v, 0.5)) * pow(abs(w) + 1, 0.5) - tanh(t0)\n"
      "t2 = select(t1 >= t0, exp(-abs(t1)), log(abs(t0) + 1)) / 1.5\n"
      "t3 = floor(t2) + ceil(t2) + (t2 == t1) + (t2 != t0) + (t1 <= t0) + "
      "(t1 < t0) + sqrt(abs(t2)) + tan(t2)\n";
  EXPECT_EQ(check(text, fx), "");
  // The CFD builtins, composed into surrounding scalar arithmetic the way
  // the generator splices them.
  const std::string cfd_text =
      "t0 = divergence(u, v, w, dims, x, y, z) + "
      "curl(u, v, w, dims, x, y, z)[2] * enstrophy(u, v, w, dims, x, y, z)\n"
      "t1 = helicity(u, v, w, dims, x, y, z) - "
      "min(qcriterion(u, v, w, dims, x, y, z), t0)\n"
      "t2 = select(t1 > t0, lambda2(u, v, w, dims, x, y, z), "
      "vorticity_mag(w, v, u, dims, x, y, z)) + div(u, v) + "
      "div(u, v, w, dims, x, y, z)\n";
  EXPECT_EQ(check(cfd_text, fx), "");
}

// ----- overlapping-request schedules (cross-request memoization) -----

struct ScopedEnv {
  std::string name;
  ScopedEnv(const std::string& n, const std::string& value) : name(n) {
    ::setenv(name.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

/// Submits K scripts that share a common prelude through an EvalService —
/// two rounds, so round one can materialize shared subtrees and round two
/// can serve them from the intermediate cache — and requires every
/// ticket's values to be bit-exact (the NaN-class rule) against that
/// script's scalar reference. Returns "" on success, the first divergence
/// otherwise. With memo on and off the references are the same, so a pass
/// in both modes is byte-for-byte memo-on == memo-off.
std::string check_overlapping(const std::vector<std::string>& scripts,
                              Fixture& fx, bool memo,
                              std::size_t* hits_out = nullptr) {
  std::vector<std::vector<float>> wants;
  for (const std::string& text : scripts) {
    try {
      wants.push_back(reference(text, fx));
    } catch (const std::exception& e) {
      return std::string("reference failed: ") + e.what();
    }
  }
  service::ServiceOptions options;
  options.start_paused = true;
  options.memo = memo;
  service::EvalService svc({&fx.device}, options);
  std::vector<service::Ticket> tickets;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t k = 0; k < scripts.size(); ++k) {
      service::Request request;
      request.expression = scripts[k];
      request.mesh = &fx.mesh;
      request.fields = {{"u", fx.u}, {"v", fx.v}, {"w", fx.w}};
      request.session = "tenant-" + std::to_string(k);
      tickets.push_back(svc.submit(request));
    }
    if (round == 0) svc.resume();
    svc.drain();
  }
  if (hits_out != nullptr) *hits_out = svc.snapshot().memo_hits;
  for (std::size_t t = 0; t < tickets.size(); ++t) {
    const service::ServiceReport& report = tickets[t].wait();
    if (report.status != service::RequestStatus::completed) {
      return "request " + std::to_string(t) + " failed: " + report.error;
    }
    const std::vector<float>& want = wants[t % scripts.size()];
    const std::size_t mismatch =
        test::first_bit_mismatch(report.evaluation->values, want);
    if (mismatch != static_cast<std::size_t>(-1)) {
      return std::string(memo ? "memo" : "no-memo") +
             " service diverges from the scalar reference on request " +
             std::to_string(t) + " at element " + std::to_string(mismatch);
    }
  }
  return {};
}

TEST(FuzzExpressions, OverlappingRequestsMatchUnderMemo) {
  const std::uint64_t base_seed = static_cast<std::uint64_t>(
      support::env::get_int("DFGEN_FUZZ_SEED", 20260805));
  // Each iteration runs 2x(K+1) service evaluations plus K references;
  // scale the count down against the single-engine fuzz loop.
  const int iterations = std::max(
      1, support::env::get_int("DFGEN_FUZZ_ITERATIONS", 40) / 4);

  for (int i = 0; i < iterations; ++i) {
    const std::uint64_t seed =
        (base_seed + static_cast<std::uint64_t>(i)) ^ 0x5eed5eedull;
    Generator gen(seed);
    Fixture fx(seed);
    // A shared prelude every variant includes, plus a per-variant output
    // statement anchored on the prelude's last temp — K different
    // networks guaranteed to share non-leaf subtrees.
    const FScript prelude = gen.script(static_cast<std::size_t>(i));
    std::vector<std::string> temps;
    for (const Stmt& stmt : prelude) temps.push_back(stmt.name);
    std::vector<std::string> scripts;
    const std::size_t variants = 2 + gen.pick(2);
    for (std::size_t k = 0; k < variants; ++k) {
      FScript variant = clone(prelude);
      auto anchor = std::make_unique<FNode>();
      anchor->kind = FKind::infix;
      anchor->text = "+";
      auto ref = std::make_unique<FNode>();
      ref->kind = FKind::ref;
      ref->text = temps.back();
      anchor->kids.push_back(std::move(ref));
      anchor->kids.push_back(gen.expr(2, temps));
      variant.push_back({"out", std::move(anchor)});
      scripts.push_back(render(variant));
    }

    std::string failure = check_overlapping(scripts, fx, true);
    if (failure.empty()) {
      // The kill switch must reproduce plain service behaviour bit-for-bit.
      ScopedEnv off("DFGEN_NO_MEMO", "1");
      failure = check_overlapping(scripts, fx, true);
    }
    if (failure.empty()) continue;

    std::string corpus;
    for (std::size_t k = 0; k < scripts.size(); ++k) {
      corpus += "--- script " + std::to_string(k) + " ---\n" + scripts[k];
    }
    ADD_FAILURE() << "overlapping-request fuzzer found a divergence (seed "
                  << seed << "): " << failure << "\n" << corpus
                  << "replay with DFGEN_FUZZ_SEED=" << base_seed
                  << " DFGEN_FUZZ_ITERATIONS=" << ((i + 1) * 4);
    return;
  }
}

// Deterministic guard that the overlapping harness works end to end: two
// networks over a shared heavy subtree must hit the intermediate cache
// while staying bit-exact, and the kill switch must pass the same check.
TEST(FuzzExpressions, HarnessAcceptsOverlappingSchedules) {
  Fixture fx(13);
  const std::vector<std::string> scripts = {
      "t0 = u*u + v*v + w*w\nout = sqrt(t0)",
      "t0 = u*u + v*v + w*w\nout = t0 * 0.5 + u",
  };
  std::size_t hits = 0;
  EXPECT_EQ(check_overlapping(scripts, fx, true, &hits), "");
  EXPECT_GE(hits, 1u);
  ScopedEnv off("DFGEN_NO_MEMO", "1");
  EXPECT_EQ(check_overlapping(scripts, fx, true, &hits), "");
  EXPECT_EQ(hits, 0u);
}

// Same guard under a fixed worst-case residency schedule: warm
// re-evaluations must reproduce the cold bits from resident buffers, and
// an announced mid-iteration mutation must be tracked by every strategy.
TEST(FuzzExpressions, HarnessAcceptsResidencySchedules) {
  Fixture fx(11);
  ResidencySchedule sched;
  sched.pool = true;
  sched.warm_runs = 2;
  sched.mutate_field = 0;
  sched.mutate_index = 3;
  const std::string text =
      "t0 = grad3d(u, dims, x, y, z)[1] + select(u > v, sin(u), cos(v))\n"
      "t1 = min(t0, max(v, 0.5)) * pow(abs(w) + 1, 0.5) - tanh(t0)\n";
  EXPECT_EQ(check(text, fx, sched), "");
}

}  // namespace
