// Tests for the Graphviz DOT rendering of dataflow networks (Figure 4).
#include <gtest/gtest.h>

#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/dot.hpp"

namespace {

using namespace dfg::dataflow;

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(Dot, RendersSourcesFiltersAndEdges) {
  const NetworkSpec spec = build_network("r = sqrt(u*u + v*v)");
  const std::string dot = to_dot(spec);
  EXPECT_NE(dot.find("digraph \"dataflow\""), std::string::npos);
  // Labels carry the subtree-fingerprint annotation by default.
  EXPECT_NE(dot.find("label=\"u\\\\n#"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  // u*u contributes two parallel edges from the same source.
  EXPECT_GE(count_occurrences(dot, "->"), 5u);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Dot, OutputNodeHighlighted) {
  const NetworkSpec spec = build_network("r = u + v");
  const std::string dot = to_dot(spec);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(Dot, DecomposeShowsComponent) {
  const NetworkSpec spec =
      build_network("du = grad3d(u, dims, x, y, z)\nr = du[2]");
  const std::string dot = to_dot(spec);
  EXPECT_NE(dot.find("decompose [2]"), std::string::npos);
}

TEST(Dot, ArgumentPositionsLabelledForMultiInputFilters) {
  const NetworkSpec spec = build_network("r = u - v");
  const std::string dot = to_dot(spec);
  EXPECT_NE(dot.find("label=\"0\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"1\""), std::string::npos);

  DotOptions options;
  options.label_argument_positions = false;
  const std::string plain = to_dot(spec, options);
  EXPECT_EQ(plain.find("label=\"0\""), std::string::npos);
}

TEST(Dot, CustomGraphNameEscaped) {
  const NetworkSpec spec = build_network("r = u");
  DotOptions options;
  options.graph_name = "my \"graph\"";
  const std::string dot = to_dot(spec, options);
  EXPECT_NE(dot.find("digraph \"my \\\"graph\\\"\""), std::string::npos);
}

TEST(Dot, QCriterionNetworkRendersFigure4) {
  const NetworkSpec spec = build_network(dfg::expressions::kQCriterion);
  const std::string dot = to_dot(spec, {"q_criterion", true});
  // 74 nodes, all present (every node line carries a shape attribute;
  // edge labels do not).
  EXPECT_EQ(count_occurrences(dot, "shape="), spec.nodes().size());
  EXPECT_EQ(count_occurrences(dot, "grad3d"), 3u);
  // Constants are rendered with their literal value.
  EXPECT_NE(dot.find("label=\"0.5\\\\n#"), std::string::npos);
}

TEST(Dot, SubtreeFingerprintAnnotationsToggle) {
  const NetworkSpec spec = build_network("r = sqrt(u*u + v*v)");
  // Every node label carries its subtree fingerprint as #<8 hex digits>.
  const std::string dot = to_dot(spec);
  EXPECT_EQ(count_occurrences(dot, "\\n#"), spec.nodes().size());
  DotOptions options;
  options.subtree_fingerprints = false;
  const std::string plain = to_dot(spec, options);
  EXPECT_EQ(plain.find("\\n#"), std::string::npos);
  EXPECT_NE(plain.find("label=\"u\""), std::string::npos);
}

TEST(Dot, IdenticalSubtreesShareFingerprintAnnotation) {
  // a and b are label-distinct but structurally identical over the same
  // leaf, so their nodes render the same fingerprint hash (CSE disabled so
  // both mult nodes actually exist).
  SpecOptions no_cse;
  no_cse.cse = false;
  const NetworkSpec spec =
      build_network("a = u*u\nb = u*u\nr = a + b", no_cse);
  const std::string dot = to_dot(spec);
  const std::size_t mult = dot.find("label=\"mult");
  ASSERT_NE(mult, std::string::npos);
  const std::size_t pos = dot.find("\\n#", mult);
  ASSERT_NE(pos, std::string::npos);
  const std::string hash = dot.substr(pos, 3 + 8);  // "\n#" + 8 hex digits
  EXPECT_GE(count_occurrences(dot, hash), 2u);
}

}  // namespace
