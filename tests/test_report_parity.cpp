// Differential parity tests between the report structs and the metrics
// registry.
//
// The refactor made some reports *views over registry deltas* (Engine,
// EvalService) while others stayed log-derived (DistributedEngine). Each
// direction gets an honest differential here:
//
//   * Engine — the registry-backed report must equal the seed-era
//     recomputation from the engine's profiling log (event counts, the
//     "retry:" label scan, the injector's run_faults) on clean AND faulty
//     runs.
//   * DistributedEngine — the log-derived report must equal the registry's
//     thread-shard deltas over the same evaluation, including the
//     dist-layer counters (device losses, quarantines), on a faulty run.
//   * EvalService — the registry-backed snapshot must equal what the
//     resolved tickets say happened.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "distrib/decomposition.hpp"
#include "distrib/dist_engine.hpp"
#include "mesh/generators.hpp"
#include "mesh/mesh.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"
#include "vcl/catalog.hpp"
#include "vcl/device.hpp"
#include "vcl/event.hpp"
#include "vcl/profiling.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

struct Workload {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);

  void bind(Engine& engine) {
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
  }
};

/// Recomputes an EvaluationReport's device counters the way the seed code
/// did — straight from the profiling log and the injector.
struct SeedEraCounts {
  std::uint64_t dev_writes, dev_reads, kernel_execs, command_timeouts,
      checksum_mismatches, command_retries, injected_faults;

  static SeedEraCounts from(const vcl::ProfilingLog& log,
                            const vcl::Device& device) {
    SeedEraCounts counts{};
    counts.dev_writes = log.count(vcl::EventKind::host_to_device);
    counts.dev_reads = log.count(vcl::EventKind::device_to_host);
    counts.kernel_execs = log.count(vcl::EventKind::kernel_exec);
    counts.command_timeouts = log.count(vcl::EventKind::timeout);
    counts.checksum_mismatches = log.count(vcl::EventKind::integrity);
    for (const vcl::Event& event : log.events()) {
      if (event.kind == vcl::EventKind::fault &&
          event.label.rfind("retry:", 0) == 0) {
        ++counts.command_retries;
      }
    }
    counts.injected_faults = device.fault().run_faults();
    return counts;
  }
};

void expect_report_matches(const EvaluationReport& report,
                           const SeedEraCounts& want) {
  EXPECT_EQ(report.dev_writes, want.dev_writes);
  EXPECT_EQ(report.dev_reads, want.dev_reads);
  EXPECT_EQ(report.kernel_execs, want.kernel_execs);
  EXPECT_EQ(report.command_timeouts, want.command_timeouts);
  EXPECT_EQ(report.checksum_mismatches, want.checksum_mismatches);
  EXPECT_EQ(report.command_retries, want.command_retries);
  EXPECT_EQ(report.injected_faults, want.injected_faults);
}

TEST(ReportParity, EngineReportEqualsLogRecomputationOnCleanRuns) {
  Workload wl;
  for (const StrategyKind kind :
       {StrategyKind::roundtrip, StrategyKind::staged, StrategyKind::fusion,
        StrategyKind::streamed}) {
    vcl::Device device(vcl::xeon_x5660_scaled());
    EngineOptions options;
    options.strategy = kind;
    Engine engine(device, options);
    wl.bind(engine);
    const EvaluationReport report =
        engine.evaluate(expressions::kQCriterion);
    expect_report_matches(report, SeedEraCounts::from(engine.log(), device));
    EXPECT_GT(report.dev_writes, 0u);
    EXPECT_GT(report.kernel_execs, 0u);
  }
}

TEST(ReportParity, EngineReportEqualsLogRecomputationUnderFaults) {
  Workload wl;
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::FaultPlan plan;
  plan.fail_write_index = 2;  // transient on the 2nd upload: one retry
  plan.transient_count = 1;
  device.fault().arm(plan);

  EngineOptions options;
  options.strategy = StrategyKind::fusion;
  options.fallback = runtime::FallbackPolicy::resilient();
  Engine engine(device, options);
  wl.bind(engine);
  const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
  const SeedEraCounts want = SeedEraCounts::from(engine.log(), device);
  EXPECT_GE(want.command_retries, 1u);
  EXPECT_GE(want.injected_faults, 1u);
  expect_report_matches(report, want);
}

TEST(ReportParity, EngineResidentCountersEqualRegistryDeltas) {
  // The resident counters are registry-backed like the rest of the report:
  // their per-evaluation deltas must equal the device pool's cumulative
  // stats deltas sampled around the evaluate call.
  obs::ScopedMetricsRegistry scoped;
  Workload wl;
  vcl::Device device(vcl::xeon_x5660_scaled());
  EngineOptions options;
  options.resident_pool = true;
  Engine engine(device, options);
  wl.bind(engine);

  for (int run = 0; run < 3; ++run) {
    const vcl::ResidentPool::Stats before = device.resident().stats();
    const EvaluationReport report = engine.evaluate(expressions::kQCriterion);
    const vcl::ResidentPool::Stats after = device.resident().stats();
    EXPECT_EQ(report.resident_hits, after.hits - before.hits);
    EXPECT_EQ(report.resident_misses, after.misses - before.misses);
    EXPECT_EQ(report.resident_evictions, after.evictions - before.evictions);
    EXPECT_EQ(report.resident_invalidations,
              after.invalidations - before.invalidations);
    EXPECT_EQ(report.resident_upload_bytes_saved,
              after.upload_bytes_saved - before.upload_bytes_saved);
    if (run > 0) EXPECT_GT(report.resident_hits, 0u);
  }
}

TEST(ReportParity, DistributedResidentCountersEqualRegistryDeltas) {
  obs::ScopedMetricsRegistry scoped;
  obs::MetricsRegistry& reg = scoped.registry();

  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  distrib::ClusterConfig config;
  config.nodes = 1;
  config.devices_per_node = 2;
  config.device_spec = vcl::tesla_m2050_scaled();
  config.checkpoint_dir.clear();
  config.resident_pool = true;
  // Every readback on rank 0 corrupts: the first block's corruption escapes
  // the queue-level retry, the block re-executes on the same rank — and the
  // re-run's uploads hit the residents the first attempt left behind. The
  // second escape quarantines the rank, which drops its residents.
  config.fault_plan.corrupt_read_index = 1;
  config.fault_plan.corrupt_count = 1000;
  config.fault_rank = 0;
  distrib::DistributedEngine engine(
      mesh, distrib::GridDecomposition(mesh.dims(), 2, 2, 2), config);
  engine.bind_global("u", field.u);
  engine.bind_global("v", field.v);
  engine.bind_global("w", field.w);
  const distrib::DistributedReport report =
      engine.evaluate(expressions::kQCriterion, StrategyKind::fusion);

  // Fresh registry + single evaluating thread: the report's deltas are the
  // registry's whole content for this device label.
  const auto resident = [&](const char* name) {
    return reg.thread_counter_sum(name,
                                  {{"device", config.device_spec.name}});
  };
  EXPECT_EQ(report.resident_hits, resident("dfgen_resident_hits_total"));
  EXPECT_EQ(report.resident_misses, resident("dfgen_resident_misses_total"));
  EXPECT_EQ(report.resident_evictions,
            resident("dfgen_resident_evictions_total"));
  EXPECT_EQ(report.resident_invalidations,
            resident("dfgen_resident_invalidations_total"));
  EXPECT_EQ(report.resident_upload_bytes_saved,
            resident("dfgen_resident_upload_bytes_saved"));
  // The corruption-forced block re-run hit the first attempt's residents;
  // the quarantine that followed dropped them.
  EXPECT_GT(report.resident_hits, 0u);
  EXPECT_GT(report.resident_upload_bytes_saved, 0u);
  EXPECT_GT(report.resident_invalidations, 0u);
  EXPECT_GE(report.quarantined_devices, 1u);
}

TEST(ReportParity, DistributedReportEqualsRegistryDeltasUnderFaults) {
  // Fresh registry: the evaluation runs entirely on this thread, so the
  // registry's thread-shard sums over all devices must equal the report's
  // per-rank log scans exactly.
  obs::ScopedMetricsRegistry scoped;
  obs::MetricsRegistry& reg = scoped.registry();

  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  distrib::ClusterConfig config;
  config.nodes = 2;
  config.devices_per_node = 2;
  config.device_spec = vcl::tesla_m2050_scaled();
  config.checkpoint_dir.clear();
  config.fault_plan.fail_write_index = 5;  // transient: a retry + a fault
  config.fault_plan.transient_count = 1;
  config.fault_plan.lose_device_after = 12;  // then lose the whole device
  distrib::DistributedEngine engine(
      mesh, distrib::GridDecomposition(mesh.dims(), 2, 2, 2), config);
  engine.bind_global("u", field.u);
  engine.bind_global("v", field.v);
  engine.bind_global("w", field.w);
  const distrib::DistributedReport report =
      engine.evaluate(expressions::kQCriterion, StrategyKind::fusion);

  const auto events = [&](const char* kind) {
    return reg.thread_counter_sum("dfgen_vcl_events_total",
                                  {{"kind", kind}});
  };
  EXPECT_EQ(report.total_dev_writes, events("host_to_device"));
  EXPECT_EQ(report.total_dev_reads, events("device_to_host"));
  EXPECT_EQ(report.total_kernel_execs, events("kernel_exec"));
  EXPECT_EQ(report.command_timeouts, events("timeout"));
  EXPECT_EQ(report.checksum_mismatches, events("integrity"));
  EXPECT_EQ(report.command_retries,
            reg.thread_counter_sum("dfgen_vcl_command_retries_total"));
  EXPECT_EQ(report.injected_faults,
            reg.thread_counter_sum("dfgen_vcl_faults_injected_total"));
  EXPECT_GE(report.injected_faults, 1u);
  EXPECT_GE(report.device_losses, 1u);

  const auto dist_total = [&](const char* name, obs::Labels labels = {}) {
    return reg.counter_value(reg.counter(name, std::move(labels)));
  };
  EXPECT_EQ(report.blocks - report.resumed_blocks,
            dist_total("dfgen_dist_blocks_executed_total"));
  EXPECT_EQ(report.resumed_blocks,
            dist_total("dfgen_dist_resumed_blocks_total"));
  EXPECT_EQ(report.device_losses,
            dist_total("dfgen_dist_device_losses_total"));
  EXPECT_EQ(report.quarantined_devices,
            dist_total("dfgen_dist_quarantines_total"));
  EXPECT_EQ(report.straggler_blocks,
            dist_total("dfgen_dist_straggler_blocks_total"));
  EXPECT_EQ(report.speculative_executions,
            dist_total("dfgen_dist_speculations_total",
                       {{"result", "run"}}));
  EXPECT_EQ(report.speculations_won,
            dist_total("dfgen_dist_speculations_total",
                       {{"result", "won"}}));
  EXPECT_EQ(report.degraded_blocks,
            dist_total("dfgen_dist_degraded_blocks_total"));
}

TEST(ReportParity, ServiceSnapshotEqualsResolvedTickets) {
  obs::ScopedMetricsRegistry scoped;

  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, 8});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device(vcl::xeon_x5660_scaled());

  service::ServiceOptions options;
  options.start_paused = true;  // queue the whole burst, then dispatch
  options.coalescing = true;
  options.max_queue_depth = 2;

  std::vector<service::Ticket> tickets;
  service::ServiceSnapshot snapshot;
  {
    service::EvalService svc({&device}, options);
    const auto make_request = [&](const std::string& session) {
      service::Request request;
      request.expression = expressions::kVelocityMagnitude;
      request.mesh = &mesh;
      request.fields = {{"u", field.u}, {"v", field.v}, {"w", field.w}};
      request.session = session;
      return request;
    };
    // Two key-equal requests coalesce into one evaluation; the third hits
    // the depth limit and is rejected at admission.
    tickets.push_back(svc.submit(make_request("tenant-a")));
    tickets.push_back(svc.submit(make_request("tenant-b")));
    tickets.push_back(svc.submit(make_request("tenant-c")));
    svc.resume();
    svc.drain();
    snapshot = svc.snapshot();
  }

  std::size_t completed = 0, rejected = 0, followers = 0, leaders = 0;
  for (const service::Ticket& ticket : tickets) {
    const service::ServiceReport& report = ticket.wait();
    switch (report.status) {
      case service::RequestStatus::completed:
        ++completed;
        if (report.coalesce_leader) {
          ++leaders;
        } else {
          ++followers;
        }
        break;
      case service::RequestStatus::rejected:
        ++rejected;
        break;
      default:
        break;
    }
  }
  ASSERT_EQ(completed, 2u);
  ASSERT_EQ(rejected, 1u);

  EXPECT_EQ(snapshot.submitted, tickets.size());
  EXPECT_EQ(snapshot.admitted, completed);
  EXPECT_EQ(snapshot.completed_requests, completed);
  EXPECT_EQ(snapshot.rejected_queue_full, rejected);
  EXPECT_EQ(snapshot.rejected_projection, 0u);
  EXPECT_EQ(snapshot.rejected_quota, 0u);
  EXPECT_EQ(snapshot.executed_evaluations, leaders);
  EXPECT_EQ(snapshot.coalesced_requests, followers);
  EXPECT_EQ(snapshot.failed_requests, 0u);
  EXPECT_EQ(snapshot.command_timeouts, 0u);
  EXPECT_EQ(snapshot.max_queue_depth_seen, 2u);
}

}  // namespace
