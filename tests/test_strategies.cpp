// Integration tests for the execution strategies: cross-strategy result
// equivalence, failure behaviour under memory pressure, and the strategy
// trade-offs the paper's discussion section calls out.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "mesh/generators.hpp"
#include "runtime/strategy.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

struct Fixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({6, 5, 7});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device{vcl::xeon_x5660_scaled()};

  Engine make_engine(StrategyKind kind) {
    Engine engine(device, {kind, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine;
  }
};

std::vector<float> evaluate(Fixture& fx, StrategyKind kind,
                            const char* expression) {
  Engine engine = fx.make_engine(kind);
  return engine.evaluate(expression).values;
}

class EquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EquivalenceTest, AllStrategiesProduceTheSameField) {
  Fixture fx;
  const auto roundtrip = evaluate(fx, StrategyKind::roundtrip, GetParam());
  const auto staged = evaluate(fx, StrategyKind::staged, GetParam());
  const auto fusion = evaluate(fx, StrategyKind::fusion, GetParam());
  ASSERT_EQ(roundtrip.size(), staged.size());
  ASSERT_EQ(roundtrip.size(), fusion.size());
  for (std::size_t i = 0; i < roundtrip.size(); ++i) {
    // Identical primitive implementations => identical float results.
    ASSERT_EQ(roundtrip[i], staged[i]) << "cell " << i;
    ASSERT_EQ(roundtrip[i], fusion[i]) << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, EquivalenceTest,
    ::testing::Values(
        expressions::kVelocityMagnitude, expressions::kVorticityMagnitude,
        expressions::kQCriterion,
        "r = u + v * w - u / (v + 10.0)",
        "a = u - 0.25\nb = a * a\nr = sqrt(b + 1.0)",
        "r = min(u, max(v, w)) + abs(u)",
        "r = if (u > v) then (u) else (v)",
        "du = grad3d(u, dims, x, y, z)\nr = du[0] + du[1] + du[2]",
        "r = pow(abs(u) + 1.0, 2.0)",
        "r = -u * -v",
        "r = 3.0"));

TEST(Strategies, ConditionalSelectsPerElement) {
  Fixture fx;
  const auto result =
      evaluate(fx, StrategyKind::fusion, "r = if (u > 0.0) then (u) else (-u)");
  for (std::size_t i = 0; i < result.size(); ++i) {
    ASSERT_NEAR(result[i], std::fabs(fx.field.u[i]), 1e-6f);
  }
}

TEST(Strategies, UnboundFieldNamedInError) {
  Fixture fx;
  Engine engine = fx.make_engine(StrategyKind::staged);
  try {
    engine.evaluate("r = u + missing_field");
    FAIL() << "expected NetworkError";
  } catch (const NetworkError& err) {
    EXPECT_NE(std::string(err.what()).find("missing_field"),
              std::string::npos);
  }
}

TEST(Strategies, IdentityExpressionReturnsInput) {
  Fixture fx;
  for (const auto kind : {StrategyKind::roundtrip, StrategyKind::staged,
                          StrategyKind::fusion}) {
    const auto result = evaluate(fx, kind, "r = u + 0.0");
    for (std::size_t i = 0; i < result.size(); ++i) {
      ASSERT_EQ(result[i], fx.field.u[i]);
    }
  }
}

TEST(Strategies, ConstantExpressionFillsField) {
  Fixture fx;
  for (const auto kind : {StrategyKind::roundtrip, StrategyKind::staged,
                          StrategyKind::fusion}) {
    const auto result = evaluate(fx, kind, "r = 2.0 * 3.0");
    for (const float v : result) ASSERT_EQ(v, 6.0f);
  }
}

// ----- Memory-pressure behaviour (the paper's §V-D discussion) -----

/// A device sized so that staged Q-criterion does not fit but roundtrip
/// does: roundtrip can use host memory for intermediates, which is exactly
/// the capability the paper keeps it around for.
TEST(Strategies, RoundtripSurvivesWhereStagedFailsOnSmallDevice) {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({16, 16, 16});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  const std::size_t cells = mesh.cell_count();

  vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
  // Roundtrip's Q-crit peak is the gradient kernel: the field, the three
  // problem-sized coordinate arrays, dims and the float4 output — just
  // over 8 problem arrays. Staged peaks far higher (~30 arrays). Pick 10
  // arrays of headroom.
  spec.global_mem_bytes = 10 * cells * sizeof(float);
  vcl::Device device(spec);

  Engine engine(device, {StrategyKind::staged, {}});
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);
  EXPECT_THROW(engine.evaluate(expressions::kQCriterion),
               DeviceOutOfMemory);

  engine.set_strategy(StrategyKind::roundtrip);
  const auto report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(report.values.size(), cells);
}

TEST(Strategies, FusionFailsWhenInputsExceedDevice) {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({16, 16, 16});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
  spec.global_mem_bytes = 3 * mesh.cell_count() * sizeof(float);
  vcl::Device device(spec);
  Engine engine(device, {StrategyKind::fusion, {}});
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);
  // velocity magnitude needs 3 inputs + 1 output > 3 arrays of capacity.
  EXPECT_THROW(engine.evaluate(expressions::kVelocityMagnitude),
               DeviceOutOfMemory);
}

TEST(Strategies, FailedRunReleasesAllDeviceMemory) {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({16, 16, 16});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::DeviceSpec spec = vcl::tesla_m2050_scaled();
  spec.global_mem_bytes = 8 * mesh.cell_count() * sizeof(float);
  vcl::Device device(spec);
  Engine engine(device, {StrategyKind::staged, {}});
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);
  EXPECT_THROW(engine.evaluate(expressions::kQCriterion), DeviceOutOfMemory);
  EXPECT_EQ(device.memory().in_use(), 0u)
      << "RAII buffers must unwind cleanly after OOM";
  // The device remains usable for a strategy that fits.
  engine.set_strategy(StrategyKind::fusion);
  EXPECT_EQ(engine.evaluate(expressions::kVelocityMagnitude).values.size(),
            mesh.cell_count());
}

// ----- Simulated runtime ordering (Figure 5's headline shape) -----

TEST(Strategies, SimulatedRuntimeOrderingFusionStagedRoundtrip) {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({24, 24, 24});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device(vcl::tesla_m2050_scaled());
  Engine engine(device, {StrategyKind::roundtrip, {}});
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);

  const double roundtrip =
      engine.evaluate(expressions::kQCriterion).sim_seconds;
  engine.set_strategy(StrategyKind::staged);
  const double staged = engine.evaluate(expressions::kQCriterion).sim_seconds;
  engine.set_strategy(StrategyKind::fusion);
  const double fusion = engine.evaluate(expressions::kQCriterion).sim_seconds;

  EXPECT_LT(fusion, staged);
  EXPECT_LT(staged, roundtrip);
}

TEST(Strategies, GpuFasterThanCpuWhenItFits) {
  // Needs an evaluation-scale grid: on tiny grids the GPU's per-transfer
  // latency dominates and the CPU wins, as on real hardware.
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({48, 48, 64});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device cpu(vcl::xeon_x5660_scaled());
  vcl::Device gpu(vcl::tesla_m2050_scaled());
  double times[2];
  vcl::Device* devices[2] = {&cpu, &gpu};
  for (int d = 0; d < 2; ++d) {
    Engine engine(*devices[d], {StrategyKind::fusion, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    times[d] = engine.evaluate(expressions::kQCriterion).sim_seconds;
  }
  EXPECT_LT(times[1], times[0]);
}

}  // namespace
