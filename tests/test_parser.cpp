// Unit tests for the expression parser: grammar, precedence, positions,
// error reporting.
#include <gtest/gtest.h>

#include "expr/ast.hpp"
#include "expr/parser.hpp"
#include "support/error.hpp"

namespace {

using namespace dfg::expr;

std::string parsed(const std::string& source) {
  return to_string(*parse_expression(source));
}

TEST(Parser, NumberLiteral) { EXPECT_EQ(parsed("42"), "42.0"); }

TEST(Parser, Identifier) { EXPECT_EQ(parsed("velocity"), "velocity"); }

TEST(Parser, AdditionIsLeftAssociative) {
  EXPECT_EQ(parsed("a + b + c"), "((a + b) + c)");
}

TEST(Parser, SubtractionIsLeftAssociative) {
  EXPECT_EQ(parsed("a - b - c"), "((a - b) - c)");
}

TEST(Parser, MultiplicationBindsTighterThanAddition) {
  EXPECT_EQ(parsed("a + b * c"), "(a + (b * c))");
  EXPECT_EQ(parsed("a * b + c"), "((a * b) + c)");
}

TEST(Parser, DivisionBindsLikeMultiplication) {
  EXPECT_EQ(parsed("a / b * c"), "((a / b) * c)");
}

TEST(Parser, ParenthesesOverridePrecedence) {
  EXPECT_EQ(parsed("(a + b) * c"), "((a + b) * c)");
}

TEST(Parser, UnaryMinusOnIdentifier) {
  EXPECT_EQ(parsed("-a * b"), "((-a) * b)");
}

TEST(Parser, UnaryMinusFoldsNumberLiterals) {
  // "-c * c" in the paper's intro example: the sign belongs to the literal
  // when the operand is a number, and to a neg filter otherwise.
  EXPECT_EQ(parsed("-2"), "-2.0");
  EXPECT_EQ(parsed("--2"), "2.0");
}

TEST(Parser, ComparisonLowerPrecedenceThanArithmetic) {
  EXPECT_EQ(parsed("a + b > c * d"), "((a + b) > (c * d))");
}

TEST(Parser, AllComparisonOperators) {
  EXPECT_EQ(parsed("a < b"), "(a < b)");
  EXPECT_EQ(parsed("a >= b"), "(a >= b)");
  EXPECT_EQ(parsed("a <= b"), "(a <= b)");
  EXPECT_EQ(parsed("a == b"), "(a == b)");
  EXPECT_EQ(parsed("a != b"), "(a != b)");
}

TEST(Parser, CallWithArguments) {
  EXPECT_EQ(parsed("grad3d(u, dims, x, y, z)"), "grad3d(u, dims, x, y, z)");
}

TEST(Parser, CallNoArguments) { EXPECT_EQ(parsed("foo()"), "foo()"); }

TEST(Parser, NestedCalls) {
  EXPECT_EQ(parsed("sqrt(abs(a))"), "sqrt(abs(a))");
}

TEST(Parser, IndexPostfix) {
  EXPECT_EQ(parsed("du[1]"), "du[1]");
  EXPECT_EQ(parsed("grad3d(u, dims, x, y, z)[2]"),
            "grad3d(u, dims, x, y, z)[2]");
}

TEST(Parser, ChainedIndex) { EXPECT_EQ(parsed("a[1][0]"), "a[1][0]"); }

TEST(Parser, IndexRequiresIntegerLiteral) {
  EXPECT_THROW(parse_expression("a[b]"), dfg::ParseError);
  EXPECT_THROW(parse_expression("a[1.5]"), dfg::ParseError);
}

TEST(Parser, Conditional) {
  EXPECT_EQ(parsed("if (a > 10) then (c * c) else (-c * c)"),
            "if ((a > 10.0)) then ((c * c)) else (((-c) * c))");
}

TEST(Parser, ConditionalRequiresFullSyntax) {
  EXPECT_THROW(parse_expression("if (a) then (b)"), dfg::ParseError);
  EXPECT_THROW(parse_expression("if a then (b) else (c)"), dfg::ParseError);
}

TEST(Parser, ScriptWithMultipleStatements) {
  const Script script = parse("a = 1\nb = a + 2\nc = b * b");
  ASSERT_EQ(script.statements.size(), 3u);
  EXPECT_EQ(script.statements[0].target, "a");
  EXPECT_EQ(script.statements[2].target, "c");
  EXPECT_EQ(to_string(*script.statements[2].value), "(b * b)");
}

TEST(Parser, StatementsNeedNoSeparators) {
  // Newlines are pure whitespace; statement boundaries come from the
  // IDENT '=' lookahead, like the paper's one-statement-per-line listings.
  const Script script = parse("a = u + v b = a * a");
  ASSERT_EQ(script.statements.size(), 2u);
}

TEST(Parser, EmptyScriptThrows) {
  EXPECT_THROW(parse(""), dfg::ParseError);
  EXPECT_THROW(parse("   # only a comment"), dfg::ParseError);
}

TEST(Parser, MissingAssignThrows) {
  EXPECT_THROW(parse("a b"), dfg::ParseError);
}

TEST(Parser, UnbalancedParenthesisThrowsWithPosition) {
  try {
    parse("a = (b + c");
    FAIL() << "expected ParseError";
  } catch (const dfg::ParseError& err) {
    EXPECT_EQ(err.line(), 1);
    EXPECT_GT(err.column(), 1);
  }
}

TEST(Parser, DanglingOperatorThrows) {
  EXPECT_THROW(parse("a = b +"), dfg::ParseError);
}

TEST(Parser, TrailingTokensAfterExpressionThrow) {
  EXPECT_THROW(parse_expression("a + b)"), dfg::ParseError);
}

TEST(Parser, PaperQCriterionParses) {
  const Script script = parse(R"(
du = grad3d(u, dims, x, y, z)
s_1 = 0.5 * (du[1] + dv[0])
q = 0.5 * (w_norm - s_norm)
)");
  EXPECT_EQ(script.statements.size(), 3u);
  EXPECT_EQ(script.statements[1].target, "s_1");
  EXPECT_EQ(to_string(*script.statements[1].value),
            "(0.5 * (du[1] + dv[0]))");
}

TEST(Parser, PositionsPropagateToNodes) {
  const Script script = parse("abc = u + v");
  const auto& bin = static_cast<const BinaryNode&>(*script.statements[0].value);
  EXPECT_EQ(bin.line, 1);
  EXPECT_EQ(bin.column, 9);  // the '+'
}

}  // namespace
