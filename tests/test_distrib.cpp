// Tests for the distributed layer: decomposition arithmetic, ghost
// exchange, and the distributed engine's bit-equality with serial results
// (the correctness claim behind the paper's Figure 7 run).
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "distrib/decomposition.hpp"
#include "distrib/dist_engine.hpp"
#include "distrib/ghost.hpp"
#include "mesh/generators.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using namespace dfg::distrib;

TEST(Decomposition, BlockCountAndDims) {
  const GridDecomposition decomp({12, 8, 16}, 3, 2, 4);
  EXPECT_EQ(decomp.block_count(), 24u);
  EXPECT_EQ(decomp.block_dims(), (mesh::Dims{4, 4, 4}));
}

TEST(Decomposition, UnevenSplitRejected) {
  EXPECT_THROW(GridDecomposition({10, 8, 8}, 3, 2, 2), Error);
  EXPECT_THROW(GridDecomposition({8, 8, 8}, 0, 1, 1), Error);
}

TEST(Decomposition, IdCoordRoundTrip) {
  const GridDecomposition decomp({8, 8, 8}, 2, 2, 2);
  for (std::size_t id = 0; id < decomp.block_count(); ++id) {
    EXPECT_EQ(decomp.block_id(decomp.block_coord(id)), id);
  }
  EXPECT_THROW(decomp.block_coord(8), Error);
  EXPECT_THROW(decomp.block_id({2, 0, 0}), Error);
}

TEST(Decomposition, ExtentsTileTheGlobalGrid) {
  const GridDecomposition decomp({6, 4, 4}, 3, 2, 2);
  std::vector<int> covered(6 * 4 * 4, 0);
  for (std::size_t b = 0; b < decomp.block_count(); ++b) {
    const BlockExtent e = decomp.extent(b);
    for (std::size_t k = e.k_begin; k < e.k_end; ++k) {
      for (std::size_t j = e.j_begin; j < e.j_end; ++j) {
        for (std::size_t i = e.i_begin; i < e.i_end; ++i) {
          covered[i + 6 * (j + 4 * k)] += 1;
        }
      }
    }
  }
  for (const int c : covered) EXPECT_EQ(c, 1);
}

TEST(Decomposition, NeighborsAtBoundaries) {
  const GridDecomposition decomp({8, 8, 8}, 2, 2, 2);
  const std::size_t origin = decomp.block_id({0, 0, 0});
  EXPECT_FALSE(decomp.neighbor(origin, 0, -1).has_value());
  EXPECT_FALSE(decomp.neighbor(origin, 1, -1).has_value());
  ASSERT_TRUE(decomp.neighbor(origin, 0, +1).has_value());
  EXPECT_EQ(*decomp.neighbor(origin, 0, +1), decomp.block_id({1, 0, 0}));
  EXPECT_EQ(*decomp.neighbor(origin, 2, +1), decomp.block_id({0, 0, 1}));
  EXPECT_THROW(decomp.neighbor(origin, 3, 1), Error);
}

TEST(Ghost, ScatterGatherRoundTrips) {
  const GridDecomposition decomp({8, 8, 8}, 2, 2, 2);
  GhostExchanger exchanger(decomp, 1);
  std::vector<float> global_values(8 * 8 * 8);
  for (std::size_t i = 0; i < global_values.size(); ++i) {
    global_values[i] = static_cast<float>(i) * 0.25f;
  }
  const auto interiors = exchanger.scatter(global_values);
  ASSERT_EQ(interiors.size(), 8u);
  const auto padded = exchanger.exchange(interiors);
  EXPECT_EQ(exchanger.gather(padded), global_values);
}

TEST(Ghost, FaceGhostsHoldNeighborValues) {
  const GridDecomposition decomp({8, 4, 4}, 2, 1, 1);
  GhostExchanger exchanger(decomp, 1);
  std::vector<float> global_values(8 * 4 * 4);
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t i = 0; i < 8; ++i) {
        global_values[i + 8 * (j + 4 * k)] = static_cast<float>(i);
      }
    }
  }
  const auto padded = exchanger.exchange(exchanger.scatter(global_values));
  // Block 0 spans i in [0,4); its high-x ghost plane must hold i=4 values
  // from block 1.
  const PaddedBlock& b0 = padded[0];
  EXPECT_EQ(b0.dims, (mesh::Dims{5, 4, 4}));  // +1 ghost on high x only
  EXPECT_EQ(b0.lo_i, 0u);
  EXPECT_FLOAT_EQ(b0.values[b0.index(4, 2, 1)], 4.0f);
  // Block 1 spans i in [4,8); its low-x ghost must hold i=3 values.
  const PaddedBlock& b1 = padded[1];
  EXPECT_EQ(b1.lo_i, 1u);
  EXPECT_FLOAT_EQ(b1.values[b1.index(0, 2, 1)], 3.0f);
}

TEST(Ghost, MessageAndByteAccounting) {
  const GridDecomposition decomp({8, 8, 8}, 2, 2, 2);
  GhostExchanger exchanger(decomp, 1);
  const std::vector<float> global_values(8 * 8 * 8, 1.0f);
  exchanger.exchange(exchanger.scatter(global_values));
  // 8 blocks x 3 interior faces each = 24 messages of one 4x4 plane.
  EXPECT_EQ(exchanger.messages(), 24u);
  EXPECT_EQ(exchanger.bytes(), 24u * 16u * sizeof(float));
}

TEST(Ghost, WidthTooLargeRejected) {
  const GridDecomposition decomp({8, 8, 8}, 2, 2, 2);
  EXPECT_THROW(GhostExchanger(decomp, 4), Error);
}

TEST(Ghost, MismatchedInteriorsRejected) {
  const GridDecomposition decomp({8, 8, 8}, 2, 2, 2);
  GhostExchanger exchanger(decomp, 1);
  std::vector<std::vector<float>> wrong_count(4);
  EXPECT_THROW(exchanger.exchange(wrong_count), Error);
  std::vector<std::vector<float>> wrong_size(8, std::vector<float>(3));
  EXPECT_THROW(exchanger.exchange(wrong_size), Error);
}

// ----- Distributed engine -----

struct DistFixture {
  mesh::RectilinearMesh mesh =
      mesh::RectilinearMesh::uniform({16, 16, 32}, 1.0f, 1.0f, 2.0f);
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);

  std::vector<float> serial(const char* expression) {
    vcl::Device device(vcl::xeon_x5660());
    Engine engine(device, {runtime::StrategyKind::fusion, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine.evaluate(expression).values;
  }

  DistributedReport distributed(const char* expression,
                                std::size_t bx, std::size_t by,
                                std::size_t bz) {
    ClusterConfig config;
    config.nodes = 2;
    config.devices_per_node = 2;
    config.device_spec = vcl::tesla_m2050_scaled();
    DistributedEngine engine(mesh, GridDecomposition(mesh.dims(), bx, by, bz),
                             config);
    engine.bind_global("u", field.u);
    engine.bind_global("v", field.v);
    engine.bind_global("w", field.w);
    return engine.evaluate(expression, runtime::StrategyKind::fusion);
  }
};

TEST(DistributedEngine, QCriterionBitMatchesSerialEverywhere) {
  // Ghost data makes the gradient stencil see exactly the same operands a
  // single-grid run sees, so every cell must match bit for bit.
  DistFixture fx;
  const auto serial = fx.serial(expressions::kQCriterion);
  const auto report = fx.distributed(expressions::kQCriterion, 2, 2, 4);
  ASSERT_EQ(report.values.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(report.values[i], serial[i]) << "cell " << i;
  }
}

TEST(DistributedEngine, VorticityMagnitudeMatchesSerial) {
  DistFixture fx;
  const auto serial = fx.serial(expressions::kVorticityMagnitude);
  const auto report = fx.distributed(expressions::kVorticityMagnitude, 4, 2, 2);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(report.values[i], serial[i]) << "cell " << i;
  }
}

TEST(DistributedEngine, ReportDescribesClusterLayout) {
  DistFixture fx;
  const auto report = fx.distributed(expressions::kQCriterion, 2, 2, 4);
  EXPECT_EQ(report.blocks, 16u);
  EXPECT_EQ(report.ranks, 4u);  // 2 nodes x 2 devices (one MPI task each)
  EXPECT_EQ(report.blocks_per_rank_max, 4u);
  EXPECT_GT(report.ghost_messages, 0u);
  EXPECT_GT(report.ghost_bytes, 0u);
  EXPECT_GT(report.total_kernel_execs, 0u);
  EXPECT_GT(report.max_device_high_water, 0u);
  // Critical path <= aggregate over ranks.
  EXPECT_LE(report.max_rank_sim_seconds, report.total_sim_seconds);
  EXPECT_GT(report.max_rank_sim_seconds, 0.0);
}

TEST(DistributedEngine, EveryBlockDispatchesOneFusedKernel) {
  DistFixture fx;
  const auto report = fx.distributed(expressions::kQCriterion, 2, 2, 4);
  EXPECT_EQ(report.total_kernel_execs, report.blocks);
  // 7 uploads + 1 readback per block under fusion.
  EXPECT_EQ(report.total_dev_writes, report.blocks * 7u);
  EXPECT_EQ(report.total_dev_reads, report.blocks);
}

TEST(DistributedEngine, UnboundFieldRejected) {
  DistFixture fx;
  ClusterConfig config;
  config.device_spec = vcl::tesla_m2050_scaled();
  DistributedEngine engine(
      fx.mesh, GridDecomposition(fx.mesh.dims(), 2, 2, 2), config);
  engine.bind_global("u", fx.field.u);
  EXPECT_THROW(
      engine.evaluate(expressions::kVelocityMagnitude,
                      runtime::StrategyKind::fusion),
      NetworkError);
}

TEST(DistributedEngine, MismatchedDecompositionRejected) {
  DistFixture fx;
  ClusterConfig config;
  config.device_spec = vcl::tesla_m2050_scaled();
  EXPECT_THROW(DistributedEngine(fx.mesh,
                                 GridDecomposition({8, 8, 8}, 2, 2, 2),
                                 config),
               Error);
}

TEST(DistributedEngine, StagedStrategyAlsoMatchesSerial) {
  DistFixture fx;
  ClusterConfig config;
  config.nodes = 1;
  config.devices_per_node = 2;
  config.device_spec = vcl::xeon_x5660_scaled();
  DistributedEngine engine(
      fx.mesh, GridDecomposition(fx.mesh.dims(), 2, 2, 2), config);
  engine.bind_global("u", fx.field.u);
  engine.bind_global("v", fx.field.v);
  engine.bind_global("w", fx.field.w);
  const auto report =
      engine.evaluate(expressions::kQCriterion, runtime::StrategyKind::staged);
  const auto serial = fx.serial(expressions::kQCriterion);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(report.values[i], serial[i]) << "cell " << i;
  }
}

}  // namespace

namespace {

TEST(Ghost, WidthTwoExchangeCarriesTwoPlanes) {
  const dfg::distrib::GridDecomposition decomp({12, 4, 4}, 2, 1, 1);
  dfg::distrib::GhostExchanger exchanger(decomp, 2);
  std::vector<float> global_values(12 * 4 * 4);
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t i = 0; i < 12; ++i) {
        global_values[i + 12 * (j + 4 * k)] = static_cast<float>(i);
      }
    }
  }
  const auto padded = exchanger.exchange(exchanger.scatter(global_values));
  // Block 0 spans i in [0,6); its two high-x ghost planes hold i=6 and i=7.
  const dfg::distrib::PaddedBlock& b0 = padded[0];
  EXPECT_EQ(b0.dims, (dfg::mesh::Dims{8, 4, 4}));
  EXPECT_FLOAT_EQ(b0.values[b0.index(6, 1, 2)], 6.0f);
  EXPECT_FLOAT_EQ(b0.values[b0.index(7, 1, 2)], 7.0f);
  // Block 1 spans i in [6,12); its low-x ghosts hold i=4 and i=5.
  const dfg::distrib::PaddedBlock& b1 = padded[1];
  EXPECT_EQ(b1.lo_i, 2u);
  EXPECT_FLOAT_EQ(b1.values[b1.index(0, 1, 2)], 4.0f);
  EXPECT_FLOAT_EQ(b1.values[b1.index(1, 1, 2)], 5.0f);
  // Round trip still exact.
  EXPECT_EQ(exchanger.gather(padded), global_values);
}

TEST(DistributedEngine, WiderGhostsStillBitExact) {
  DistFixture fx;
  dfg::distrib::ClusterConfig config;
  config.nodes = 2;
  config.devices_per_node = 2;
  config.device_spec = dfg::vcl::tesla_m2050_scaled();
  config.ghost_width = 2;  // more than the gradient stencil needs
  dfg::distrib::DistributedEngine engine(
      fx.mesh, dfg::distrib::GridDecomposition(fx.mesh.dims(), 2, 2, 4),
      config);
  engine.bind_global("u", fx.field.u);
  engine.bind_global("v", fx.field.v);
  engine.bind_global("w", fx.field.w);
  const auto report = engine.evaluate(dfg::expressions::kQCriterion,
                                      dfg::runtime::StrategyKind::fusion);
  const auto serial = fx.serial(dfg::expressions::kQCriterion);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(report.values[i], serial[i]) << "cell " << i;
  }
}

}  // namespace
