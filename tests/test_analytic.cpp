// Analytic validation: the paper's three vortex-detection expressions
// evaluated on the ABC (Arnold–Beltrami–Childress) flow, whose vorticity
// and Q-criterion have closed forms. This is a stronger correctness check
// than the paper could run on DNS data: the framework's numerical results
// must converge to exact values.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "mesh/generators.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;

constexpr float kTwoPi = 6.28318530717958647692f;

struct AbcFixture {
  explicit AbcFixture(std::size_t n)
      : mesh(mesh::RectilinearMesh::uniform({n, n, n}, kTwoPi, kTwoPi,
                                            kTwoPi)),
        field(mesh::abc_flow(mesh)) {}

  mesh::RectilinearMesh mesh;
  mesh::VectorField field;

  std::vector<float> evaluate(const char* expression) {
    vcl::Device device(vcl::xeon_x5660());
    Engine engine(device, {runtime::StrategyKind::fusion, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine.evaluate(expression).values;
  }

  /// Max interior error against a per-point analytic reference. Boundary
  /// cells use one-sided differences (first-order), so the convergence
  /// check is over the interior.
  double max_interior_error(const std::vector<float>& values,
                            float (*reference)(float, float, float)) {
    double max_err = 0.0;
    const auto& d = mesh.dims();
    for (std::size_t k = 1; k + 1 < d.nz; ++k) {
      for (std::size_t j = 1; j + 1 < d.ny; ++j) {
        for (std::size_t i = 1; i + 1 < d.nx; ++i) {
          const float exact = reference(mesh.x_center(i), mesh.y_center(j),
                                        mesh.z_center(k));
          const double err =
              std::fabs(values[mesh.cell_index(i, j, k)] - exact);
          max_err = std::max(max_err, err);
        }
      }
    }
    return max_err;
  }
};

float velocity_magnitude_ref(float x, float y, float z) {
  const float u = std::sin(z) + std::cos(y);
  const float v = std::sin(x) + std::cos(z);
  const float w = std::sin(y) + std::cos(x);
  return std::sqrt(u * u + v * v + w * w);
}

float vorticity_magnitude_ref(float x, float y, float z) {
  // Beltrami: |curl v| = |v|.
  return velocity_magnitude_ref(x, y, z);
}

float q_criterion_ref(float x, float y, float z) {
  return mesh::abc_q_criterion(x, y, z, 1.0f, 1.0f, 1.0f);
}

TEST(Analytic, VelocityMagnitudeIsExactUpToRounding) {
  AbcFixture fx(16);
  const auto values = fx.evaluate(expressions::kVelocityMagnitude);
  EXPECT_LT(fx.max_interior_error(values, velocity_magnitude_ref), 1e-5);
}

TEST(Analytic, VorticityMagnitudeConvergesToVelocityMagnitude) {
  // Central differences are second order: refining the grid 2x should
  // shrink the error by ~4x. Check both accuracy and convergence order.
  AbcFixture coarse(16);
  AbcFixture fine(32);
  const double err_coarse = coarse.max_interior_error(
      coarse.evaluate(expressions::kVorticityMagnitude),
      vorticity_magnitude_ref);
  const double err_fine = fine.max_interior_error(
      fine.evaluate(expressions::kVorticityMagnitude),
      vorticity_magnitude_ref);
  EXPECT_LT(err_coarse, 0.2);
  EXPECT_LT(err_fine, err_coarse / 3.0)
      << "expected ~2nd-order convergence of the gradient stencil";
}

TEST(Analytic, QCriterionConvergesToClosedForm) {
  AbcFixture coarse(16);
  AbcFixture fine(32);
  const double err_coarse = coarse.max_interior_error(
      coarse.evaluate(expressions::kQCriterion), q_criterion_ref);
  const double err_fine = fine.max_interior_error(
      fine.evaluate(expressions::kQCriterion), q_criterion_ref);
  EXPECT_LT(err_coarse, 0.3);
  EXPECT_LT(err_fine, err_coarse / 3.0);
}

TEST(Analytic, QCriterionOfAbcIsPositiveMeanZero) {
  // For the symmetric ABC flow on a periodic box, Q = 0.5(|Omega|^2-|S|^2)
  // integrates to zero: vortical and straining regions balance.
  AbcFixture fx(24);
  const auto values = fx.evaluate(expressions::kQCriterion);
  double mean = 0.0;
  double max_abs = 0.0;
  for (const float q : values) {
    mean += q;
    max_abs = std::max(max_abs, static_cast<double>(std::fabs(q)));
  }
  mean /= static_cast<double>(values.size());
  EXPECT_GT(max_abs, 0.1) << "field must have structure";
  EXPECT_LT(std::fabs(mean), 0.05 * max_abs);
}

TEST(Analytic, VorticityVectorMatchesVelocityComponentwise) {
  // Check the three curl components separately through the expression
  // language (Beltrami: curl v = v).
  AbcFixture fx(32);
  const char* curl_x =
      "du = grad3d(u,dims,x,y,z)\n"
      "dv = grad3d(v,dims,x,y,z)\n"
      "dw = grad3d(w,dims,x,y,z)\n"
      "w_x = dw[1] - dv[2]";
  const auto wx = fx.evaluate(curl_x);
  double max_err = 0.0;
  const auto& d = fx.mesh.dims();
  for (std::size_t k = 1; k + 1 < d.nz; ++k) {
    for (std::size_t j = 1; j + 1 < d.ny; ++j) {
      for (std::size_t i = 1; i + 1 < d.nx; ++i) {
        const std::size_t idx = fx.mesh.cell_index(i, j, k);
        max_err = std::max(
            max_err,
            static_cast<double>(std::fabs(wx[idx] - fx.field.u[idx])));
      }
    }
  }
  EXPECT_LT(max_err, 0.05);
}

}  // namespace
