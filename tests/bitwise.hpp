// Shared bit-exact float comparison for the differential tests.
//
// The strategies, interpreters and the fuzzer are all required to agree at
// the bit-pattern level (signed zeros, infinities and single-NaN
// propagation included), with one documented exception: when BOTH operands
// of a commutative float op (add, mul) are NaN, x86 keeps the payload of
// whichever operand the compiler placed first — IEEE 754 leaves the choice
// unspecified and GCC commutes freely per code context. NaN must still
// meet NaN; everything else must match to the bit.
#pragma once

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace dfg::test {

/// Fails the current test (non-fatally per element, so every divergence is
/// reported) unless `got` matches `want` under the NaN-class rule above.
inline void expect_bits_equal(const std::vector<float>& got,
                              const std::vector<float>& want,
                              const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::isnan(got[i]) && std::isnan(want[i])) continue;
    ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
              std::bit_cast<std::uint32_t>(want[i]))
        << what << " diverges at element " << i << ": " << got[i] << " vs "
        << want[i];
  }
}

/// Non-asserting form: the index of the first divergent element under the
/// same NaN-class rule, or SIZE_MAX when the vectors agree. The fuzzer's
/// shrinker uses this to test candidate reductions without failing the
/// test.
inline std::size_t first_bit_mismatch(const std::vector<float>& got,
                                      const std::vector<float>& want) {
  if (got.size() != want.size()) return 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::isnan(got[i]) && std::isnan(want[i])) continue;
    if (std::bit_cast<std::uint32_t>(got[i]) !=
        std::bit_cast<std::uint32_t>(want[i])) {
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace dfg::test
