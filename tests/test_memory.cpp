// Memory-constraint tests: the paper's Figure 2 example network and the
// strategy memory relations behind Figure 6.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/network.hpp"
#include "dataflow/spec.hpp"
#include "mesh/generators.hpp"
#include "runtime/strategy.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

/// The Figure 2 example: a network with four problem-sized external inputs
/// feeding two first-level filters whose results a third filter combines.
/// Figure 2 annotates the device footprints as roundtrip = 3 arrays,
/// staged = 4 and fusion = 5.
dataflow::Network figure2_network() {
  dataflow::NetworkSpec spec;
  const int a = spec.add_field_source("A");
  const int b = spec.add_field_source("B");
  const int c = spec.add_field_source("C");
  const int d = spec.add_field_source("D");
  const int t1 = spec.add_filter("add", {a, b});
  const int t2 = spec.add_filter("mult", {c, d});
  spec.set_output(spec.add_filter("sub", {t1, t2}));
  return dataflow::Network(std::move(spec));
}

/// Executes a network and returns the device high-water mark in units of
/// problem-sized arrays.
double high_water_arrays(const dataflow::Network& network, StrategyKind kind,
                         std::size_t elements) {
  std::vector<float> data(elements, 1.0f);
  runtime::FieldBindings bindings;
  for (const std::string& name : network.spec().field_names()) {
    bindings.bind(name, data);
  }
  vcl::Device device(vcl::xeon_x5660_scaled());
  vcl::ProfilingLog log;
  const auto strategy = runtime::make_strategy(kind);
  strategy->execute(network, bindings, elements, device, log);
  return static_cast<double>(device.memory().high_water()) /
         static_cast<double>(elements * sizeof(float));
}

TEST(Figure2, RoundtripNeedsThreeArrays) {
  EXPECT_DOUBLE_EQ(
      high_water_arrays(figure2_network(), StrategyKind::roundtrip, 4096),
      3.0);
}

TEST(Figure2, StagedNeedsFourArrays) {
  EXPECT_DOUBLE_EQ(
      high_water_arrays(figure2_network(), StrategyKind::staged, 4096), 4.0);
}

TEST(Figure2, FusionNeedsFiveArrays) {
  EXPECT_DOUBLE_EQ(
      high_water_arrays(figure2_network(), StrategyKind::fusion, 4096), 5.0);
}

// ----- Figure 6 shape relations on the paper's expressions -----

struct MemoryFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({16, 16, 16});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device{vcl::xeon_x5660_scaled()};

  std::size_t high_water(StrategyKind kind, const char* expression) {
    Engine engine(device, {kind, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine.evaluate(expression).memory_high_water_bytes;
  }
};

TEST(Figure6Shape, StagedUsesTheMostMemoryOnGradientExpressions) {
  MemoryFixture fx;
  for (const char* expr :
       {expressions::kVorticityMagnitude, expressions::kQCriterion}) {
    const std::size_t staged = fx.high_water(StrategyKind::staged, expr);
    const std::size_t roundtrip = fx.high_water(StrategyKind::roundtrip, expr);
    const std::size_t fusion = fx.high_water(StrategyKind::fusion, expr);
    EXPECT_GT(staged, roundtrip) << expr;
    EXPECT_GT(staged, fusion) << expr;
  }
}

TEST(Figure6Shape, RoundtripSmallestForVelocityMagnitude) {
  // "Due to the number of inputs, roundtrip used less memory for the
  // velocity magnitude test cases than the other two strategies."
  // Deviation (documented in EXPERIMENTS.md): our staged strategy releases
  // consumed inputs eagerly via reference counting, so on this expression
  // it *ties* roundtrip at 3 problem arrays instead of exceeding it; the
  // strict inequality against fusion (4 arrays) holds.
  MemoryFixture fx;
  const char* expr = expressions::kVelocityMagnitude;
  const std::size_t roundtrip = fx.high_water(StrategyKind::roundtrip, expr);
  EXPECT_LE(roundtrip, fx.high_water(StrategyKind::staged, expr));
  EXPECT_LT(roundtrip, fx.high_water(StrategyKind::fusion, expr));
  EXPECT_EQ(roundtrip, 3 * fx.mesh.cell_count() * sizeof(float));
}

TEST(Figure6Shape, RoundtripExceedsFusionOnGradientExpressions) {
  // "For the vorticity magnitude and Q-criterion cases, roundtrip used
  // more memory than fusion."
  MemoryFixture fx;
  for (const char* expr :
       {expressions::kVorticityMagnitude, expressions::kQCriterion}) {
    EXPECT_GT(fx.high_water(StrategyKind::roundtrip, expr),
              fx.high_water(StrategyKind::fusion, expr))
        << expr;
  }
}

TEST(Figure6Shape, HighWaterGrowsLinearlyWithCells) {
  // "As expected, the reserved memory grows linearly as the input data
  // size grows."
  vcl::Device device(vcl::xeon_x5660_scaled());
  std::vector<double> per_cell;
  for (const std::size_t nz : {8u, 16u, 32u}) {
    mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 8, nz});
    const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
    Engine engine(device, {StrategyKind::staged, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    const auto report = engine.evaluate(expressions::kQCriterion);
    per_cell.push_back(static_cast<double>(report.memory_high_water_bytes) /
                       static_cast<double>(mesh.cell_count()));
  }
  // Bytes per cell should be nearly constant across sizes (small additive
  // terms from coordinate arrays aside).
  EXPECT_NEAR(per_cell[0], per_cell[2], 0.15 * per_cell[2]);
}

TEST(Figure6Shape, FusionMatchesReferenceKernelFootprint) {
  // "Both fusion and the OpenCL reference kernel showed the same memory
  // usage" — both hold exactly inputs + output.
  MemoryFixture fx;
  const std::size_t cells = fx.mesh.cell_count();
  const std::size_t fusion =
      fx.high_water(StrategyKind::fusion, expressions::kVelocityMagnitude);
  EXPECT_EQ(fusion, 4 * cells * sizeof(float));  // u, v, w, out
}

TEST(Figure6Shape, StagedQCriterionFootprintIsDeterministic) {
  // Regression pin for the staged Q-criterion working set; reference
  // counting keeps it bounded, and any change to the release discipline
  // shows up here.
  MemoryFixture fx;
  const std::size_t cells = fx.mesh.cell_count();
  const std::size_t staged =
      fx.high_water(StrategyKind::staged, expressions::kQCriterion);
  const double arrays = static_cast<double>(staged) /
                        static_cast<double>(cells * sizeof(float));
  // Three float4 gradients (12 scalar arrays) dominate the peak; the exact
  // value also counts live decompose lanes and the small coordinate arrays.
  EXPECT_GT(arrays, 12.0);
  EXPECT_LT(arrays, 32.0);
}

}  // namespace
