// Tests for the hand-written reference kernels: result equivalence with the
// expression framework, lower operation counts, and fusion-equal transfer
// patterns — the properties the paper's runtime study relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "kernels/generator.hpp"
#include "mesh/generators.hpp"
#include "runtime/reference.hpp"
#include "vcl/catalog.hpp"

namespace {

using namespace dfg;
using runtime::StrategyKind;

struct ReferenceFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({8, 7, 9});
  mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh);
  vcl::Device device{vcl::xeon_x5660_scaled()};
  vcl::ProfilingLog log;

  runtime::FieldBindings bindings() {
    runtime::FieldBindings b;
    b.bind_mesh(mesh);
    b.bind("u", field.u);
    b.bind("v", field.v);
    b.bind("w", field.w);
    return b;
  }

  std::vector<float> expression_result(const char* expression) {
    Engine engine(device, {StrategyKind::fusion, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine.evaluate(expression).values;
  }
};

TEST(Reference, VelocityMagnitudeMatchesExpression) {
  ReferenceFixture fx;
  const auto bindings = fx.bindings();
  const auto ref =
      run_reference(runtime::reference_velocity_magnitude(), bindings,
                    fx.mesh.cell_count(), fx.device, fx.log);
  const auto expr = fx.expression_result(expressions::kVelocityMagnitude);
  ASSERT_EQ(ref.size(), expr.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i], expr[i]) << "cell " << i;
  }
}

TEST(Reference, VorticityMagnitudeMatchesExpression) {
  ReferenceFixture fx;
  const auto bindings = fx.bindings();
  const auto ref =
      run_reference(runtime::reference_vorticity_magnitude(), bindings,
                    fx.mesh.cell_count(), fx.device, fx.log);
  const auto expr = fx.expression_result(expressions::kVorticityMagnitude);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(ref[i], expr[i], 1e-5f) << "cell " << i;
  }
}

TEST(Reference, QCriterionMatchesExpressionWithinTolerance) {
  // The reference exploits S/Omega symmetry, so it performs a different
  // (shorter) float operation sequence: equality holds to rounding.
  ReferenceFixture fx;
  const auto bindings = fx.bindings();
  const auto ref = run_reference(runtime::reference_q_criterion(), bindings,
                                 fx.mesh.cell_count(), fx.device, fx.log);
  const auto expr = fx.expression_result(expressions::kQCriterion);
  float scale = 1.0f;
  for (const float q : expr) scale = std::max(scale, std::fabs(q));
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(ref[i], expr[i], 1e-5f * scale) << "cell " << i;
  }
}

TEST(Reference, QCriterionUsesFewerFlopsThanFusedExpression) {
  // "They were written to directly compute the desired expression and
  // hence are able to execute the expressions using less memory fetches
  // and floating point operations than our strategies."
  const dataflow::Network network(
      dataflow::build_network(expressions::kQCriterion));
  const kernels::Program fused = kernels::generate_fused(network);
  const kernels::Program ref = runtime::reference_q_criterion();
  EXPECT_LT(ref.flops_per_item(), fused.flops_per_item());
  EXPECT_LE(ref.global_bytes_per_item(), fused.global_bytes_per_item());
}

TEST(Reference, TransferPatternMatchesFusion) {
  // "The reference kernels have the same input and output global device
  // memory constraints as our fusion strategy."
  ReferenceFixture fx;
  const auto bindings = fx.bindings();
  run_reference(runtime::reference_q_criterion(), bindings,
                fx.mesh.cell_count(), fx.device, fx.log);
  EXPECT_EQ(fx.log.count(vcl::EventKind::host_to_device), 7u);
  EXPECT_EQ(fx.log.count(vcl::EventKind::device_to_host), 1u);
  EXPECT_EQ(fx.log.count(vcl::EventKind::kernel_exec), 1u);
}

TEST(Reference, MemoryFootprintMatchesFusion) {
  ReferenceFixture fx;
  const auto bindings = fx.bindings();
  run_reference(runtime::reference_q_criterion(), bindings,
                fx.mesh.cell_count(), fx.device, fx.log);
  const std::size_t ref_high_water = fx.device.memory().high_water();

  vcl::Device device2(vcl::xeon_x5660_scaled());
  Engine engine(device2, {StrategyKind::fusion, {}});
  engine.bind_mesh(fx.mesh);
  engine.bind("u", fx.field.u);
  engine.bind("v", fx.field.v);
  engine.bind("w", fx.field.w);
  const auto report = engine.evaluate(expressions::kQCriterion);
  EXPECT_EQ(ref_high_water, report.memory_high_water_bytes);
}

TEST(Reference, SimulatedRuntimeAtLeastAsFastAsFusion) {
  ReferenceFixture fx;
  const auto bindings = fx.bindings();
  run_reference(runtime::reference_q_criterion(), bindings,
                fx.mesh.cell_count(), fx.device, fx.log);
  const double ref_time = fx.log.total_sim_seconds();

  vcl::Device device2(vcl::xeon_x5660_scaled());
  Engine engine(device2, {StrategyKind::fusion, {}});
  engine.bind_mesh(fx.mesh);
  engine.bind("u", fx.field.u);
  engine.bind("v", fx.field.v);
  engine.bind("w", fx.field.w);
  const double fusion_time =
      engine.evaluate(expressions::kQCriterion).sim_seconds;
  EXPECT_LE(ref_time, fusion_time);
}

}  // namespace
