// Unit tests for the virtual compute layer: memory tracking, buffers,
// queues, profiling events and the cost model.
#include <gtest/gtest.h>

#include <vector>

#include "vcl/buffer.hpp"
#include "vcl/catalog.hpp"
#include "vcl/cost_model.hpp"
#include "vcl/device.hpp"
#include "vcl/profiling.hpp"
#include "vcl/queue.hpp"

namespace {

using namespace dfg::vcl;

DeviceSpec tiny_device(std::size_t capacity_bytes) {
  DeviceSpec spec;
  spec.name = "tiny";
  spec.type = DeviceType::gpu;
  spec.global_mem_bytes = capacity_bytes;
  spec.transfer_gbps = 1.0;
  spec.global_mem_gbps = 10.0;
  spec.gflops = 100.0;
  return spec;
}

TEST(MemoryTracker, TracksInUseAndHighWater) {
  MemoryTracker tracker("dev", 1000);
  tracker.reserve(400);
  tracker.reserve(300);
  EXPECT_EQ(tracker.in_use(), 700u);
  EXPECT_EQ(tracker.high_water(), 700u);
  tracker.release(300);
  EXPECT_EQ(tracker.in_use(), 400u);
  EXPECT_EQ(tracker.high_water(), 700u);
  tracker.reserve(100);
  EXPECT_EQ(tracker.high_water(), 700u) << "high water must not drop";
  EXPECT_EQ(tracker.available(), 500u);
}

TEST(MemoryTracker, ReserveBeyondCapacityThrowsAndLeavesStateUnchanged) {
  MemoryTracker tracker("dev", 100);
  tracker.reserve(60);
  EXPECT_THROW(tracker.reserve(41), dfg::DeviceOutOfMemory);
  EXPECT_EQ(tracker.in_use(), 60u);
  EXPECT_EQ(tracker.high_water(), 60u);
  tracker.reserve(40);  // exactly fits
  EXPECT_EQ(tracker.in_use(), 100u);
}

TEST(MemoryTracker, ResetHighWaterClampsToCurrentUse) {
  MemoryTracker tracker("dev", 1000);
  tracker.reserve(500);
  tracker.release(400);
  tracker.reset_high_water();
  EXPECT_EQ(tracker.high_water(), 100u);
}

TEST(Buffer, AllocationAccountsAgainstDevice) {
  Device device(tiny_device(1024));
  {
    Buffer buffer = device.allocate(64);  // 256 bytes
    EXPECT_TRUE(buffer.valid());
    EXPECT_EQ(buffer.size(), 64u);
    EXPECT_EQ(buffer.bytes(), 256u);
    EXPECT_EQ(device.memory().in_use(), 256u);
  }
  EXPECT_EQ(device.memory().in_use(), 0u) << "destructor releases";
  EXPECT_EQ(device.memory().high_water(), 256u);
}

TEST(Buffer, OverCapacityAllocationThrows) {
  Device device(tiny_device(1024));
  EXPECT_THROW(device.allocate(1024), dfg::DeviceOutOfMemory);
  EXPECT_EQ(device.memory().in_use(), 0u);
}

TEST(Buffer, MoveTransfersOwnership) {
  Device device(tiny_device(4096));
  Buffer a = device.allocate(16);
  Buffer b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(device.memory().in_use(), 64u);
  Buffer c = device.allocate(8);
  c = std::move(b);  // move-assign releases c's old allocation
  EXPECT_EQ(device.memory().in_use(), 64u);
}

TEST(Buffer, ExplicitReleaseIsIdempotent) {
  Device device(tiny_device(4096));
  Buffer a = device.allocate(16);
  a.release();
  EXPECT_EQ(device.memory().in_use(), 0u);
  a.release();
  EXPECT_EQ(device.memory().in_use(), 0u);
  EXPECT_FALSE(a.valid());
}

TEST(CostModel, TransferIsLatencyPlusBandwidth) {
  DeviceSpec spec = tiny_device(1 << 20);
  spec.transfer_gbps = 2.0;
  spec.transfer_latency_us = 10.0;
  const CostModel model(spec);
  // 2e9 bytes at 2 GB/s = 1 s, plus 10 us.
  EXPECT_NEAR(model.transfer_seconds(2'000'000'000), 1.0 + 10e-6, 1e-9);
  EXPECT_NEAR(model.transfer_seconds(0), 10e-6, 1e-12);
}

TEST(CostModel, KernelRooflineTakesMaxOfComputeAndMemory) {
  DeviceSpec spec = tiny_device(1 << 20);
  spec.gflops = 1.0;  // 1e9 flops/s peak
  spec.global_mem_gbps = 1.0;
  spec.launch_overhead_us = 0.0;
  const CostModel model(spec);
  const double eff = CostModel::kComputeEfficiency;
  // Compute-bound: many flops, few bytes.
  EXPECT_NEAR(model.kernel_seconds(1'000'000'000, 1000, 8), 1.0 / eff, 1e-6);
  // Memory-bound: few flops, many bytes.
  EXPECT_NEAR(model.kernel_seconds(10, 1'000'000'000, 8), 1.0, 1e-6);
}

TEST(CostModel, RegisterSpillAddsBandwidthSurcharge) {
  DeviceSpec spec = tiny_device(1 << 20);
  spec.register_budget = 8;
  spec.global_mem_gbps = 1.0;
  spec.gflops = 1000.0;
  spec.launch_overhead_us = 0.0;
  const CostModel model(spec);
  const double fits = model.kernel_seconds(0, 4'000'000, 8);
  const double spills = model.kernel_seconds(0, 4'000'000, 10);
  EXPECT_GT(spills, fits);
}

TEST(CostModel, LaunchOverheadCharged) {
  DeviceSpec spec = tiny_device(1 << 20);
  spec.launch_overhead_us = 50.0;
  const CostModel model(spec);
  EXPECT_NEAR(model.kernel_seconds(0, 0, 0), 50e-6, 1e-12);
}

TEST(ProfilingLog, CategorisesEvents) {
  ProfilingLog log;
  log.record(Event{EventKind::host_to_device, "u", 100, 0, 0.5, 0.1});
  log.record(Event{EventKind::host_to_device, "v", 50, 0, 0.25, 0.1});
  log.record(Event{EventKind::kernel_exec, "add", 32, 77, 0.125, 0.1});
  log.record(Event{EventKind::device_to_host, "out", 100, 0, 0.5, 0.1});
  EXPECT_EQ(log.count(EventKind::host_to_device), 2u);
  EXPECT_EQ(log.count(EventKind::device_to_host), 1u);
  EXPECT_EQ(log.count(EventKind::kernel_exec), 1u);
  EXPECT_EQ(log.total_count(), 4u);
  EXPECT_DOUBLE_EQ(log.sim_seconds(EventKind::host_to_device), 0.75);
  EXPECT_DOUBLE_EQ(log.total_sim_seconds(), 1.375);
  EXPECT_NEAR(log.total_wall_seconds(), 0.4, 1e-12);
  EXPECT_EQ(log.bytes(EventKind::host_to_device), 150u);
  EXPECT_EQ(log.total_flops(), 77u);
  log.clear();
  EXPECT_EQ(log.total_count(), 0u);
  EXPECT_DOUBLE_EQ(log.total_sim_seconds(), 0.0);
}

TEST(EventKindNames, MatchTable2Headers) {
  EXPECT_STREQ(event_kind_name(EventKind::host_to_device), "Dev-W");
  EXPECT_STREQ(event_kind_name(EventKind::device_to_host), "Dev-R");
  EXPECT_STREQ(event_kind_name(EventKind::kernel_exec), "K-Exe");
}

TEST(CommandQueue, WriteReadRoundTripRecordsEvents) {
  Device device(tiny_device(4096));
  ProfilingLog log;
  CommandQueue queue(device, log);
  Buffer buffer = device.allocate(4);
  const std::vector<float> host{1.0f, 2.0f, 3.0f, 4.0f};
  queue.write(buffer, host, "in");
  std::vector<float> back(4, 0.0f);
  queue.read(buffer, back, "out");
  EXPECT_EQ(back, host);
  EXPECT_EQ(log.count(EventKind::host_to_device), 1u);
  EXPECT_EQ(log.count(EventKind::device_to_host), 1u);
  EXPECT_EQ(log.bytes(EventKind::host_to_device), 16u);
  EXPECT_GT(log.total_sim_seconds(), 0.0);
}

TEST(CommandQueue, OversizedWriteThrows) {
  Device device(tiny_device(4096));
  ProfilingLog log;
  CommandQueue queue(device, log);
  Buffer buffer = device.allocate(2);
  const std::vector<float> host(3, 1.0f);
  EXPECT_THROW(queue.write(buffer, host, "in"), dfg::KernelError);
}

TEST(CommandQueue, UndersizedReadThrows) {
  Device device(tiny_device(4096));
  ProfilingLog log;
  CommandQueue queue(device, log);
  Buffer buffer = device.allocate(4);
  std::vector<float> host(2, 0.0f);
  EXPECT_THROW(queue.read(buffer, host, "out"), dfg::KernelError);
}

TEST(CommandQueue, LaunchRunsBodyOverNDRangeAndRecordsKernelEvent) {
  Device device(tiny_device(4096));
  ProfilingLog log;
  CommandQueue queue(device, log);
  std::vector<float> data(100, 0.0f);
  KernelLaunch launch;
  launch.label = "fill";
  launch.ndrange = data.size();
  launch.flops = 100;
  launch.global_bytes = 400;
  launch.body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) data[i] = 1.0f;
  };
  queue.launch(launch);
  for (const float v : data) EXPECT_EQ(v, 1.0f);
  EXPECT_EQ(log.count(EventKind::kernel_exec), 1u);
  EXPECT_EQ(log.events().back().flops, 100u);
}

TEST(CommandQueue, LaunchWithoutBodyThrows) {
  Device device(tiny_device(4096));
  ProfilingLog log;
  CommandQueue queue(device, log);
  KernelLaunch launch;
  launch.label = "empty";
  launch.ndrange = 10;
  EXPECT_THROW(queue.launch(launch), dfg::KernelError);
}

TEST(Catalog, FullSizeDevicesMatchEdgeHardware) {
  const DeviceSpec cpu = xeon_x5660();
  EXPECT_EQ(cpu.type, DeviceType::cpu);
  EXPECT_EQ(cpu.global_mem_bytes, std::size_t(96) << 30);
  const DeviceSpec gpu = tesla_m2050();
  EXPECT_EQ(gpu.type, DeviceType::gpu);
  // 3 GiB GDDR5 minus the 12.5% Fermi ECC reservation (Edge runs ECC on).
  EXPECT_EQ(gpu.global_mem_bytes, (std::size_t(3) << 30) / 8 * 7);
  EXPECT_GT(gpu.gflops, cpu.gflops);
  EXPECT_GT(gpu.global_mem_gbps, cpu.global_mem_gbps);
  // PCIe gen2 and a host-side memcpy land in the same few-GB/s regime.
  EXPECT_NEAR(gpu.transfer_gbps, cpu.transfer_gbps, 2.0);
}

TEST(Catalog, ScaledDevicesKeepPerformanceShrinkCapacity) {
  const DeviceSpec gpu = tesla_m2050();
  const DeviceSpec scaled = tesla_m2050_scaled();
  EXPECT_EQ(scaled.global_mem_bytes, gpu.global_mem_bytes / 64);
  EXPECT_DOUBLE_EQ(scaled.gflops, gpu.gflops);
  EXPECT_DOUBLE_EQ(scaled.transfer_gbps, gpu.transfer_gbps);
}

}  // namespace
