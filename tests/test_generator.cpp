// Unit tests for the fusion kernel generator and the OpenCL source printer.
#include <gtest/gtest.h>

#include <vector>

#include "core/expressions.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "kernels/generator.hpp"
#include "kernels/source_printer.hpp"
#include "kernels/vm.hpp"
#include "support/error.hpp"

namespace {

using namespace dfg::kernels;
using dfg::dataflow::Network;
using dfg::dataflow::build_network;

Program fuse(const char* expression) {
  return generate_fused(Network(build_network(expression)));
}

std::vector<std::string> param_names(const Program& prog) {
  std::vector<std::string> names;
  for (const BufferParam& p : prog.params()) names.push_back(p.name);
  return names;
}

std::size_t count_ops(const Program& prog, Op op) {
  std::size_t n = 0;
  for (const Instr& in : prog.code()) {
    if (in.op == op) ++n;
  }
  return n;
}

TEST(Generator, VelocityMagnitudeSignature) {
  const Program prog = fuse(dfg::expressions::kVelocityMagnitude);
  EXPECT_EQ(param_names(prog), (std::vector<std::string>{"u", "v", "w"}));
  EXPECT_EQ(prog.out_components(), 1);
  // 3 loads, 3 muls, 2 adds, 1 sqrt, 1 store.
  EXPECT_EQ(prog.code().size(), 10u);
}

TEST(Generator, EachExternalInputLoadedOnce) {
  const Program prog = fuse("r = u*u + u*u + u");
  EXPECT_EQ(count_ops(prog, Op::load_global), 1u);
}

TEST(Generator, ConstantsInlinedNotBuffered) {
  const Program prog = fuse("r = 0.5 * u + 0.5 * v");
  // Constant dedup at the network level plus source-level insertion: one
  // load_const, no extra buffer parameters.
  EXPECT_EQ(count_ops(prog, Op::load_const), 1u);
  EXPECT_EQ(prog.params().size(), 2u);
  bool found = false;
  for (const Instr& in : prog.code()) {
    if (in.op == Op::load_const) {
      EXPECT_FLOAT_EQ(in.imm, 0.5f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Generator, DecomposeLowersToComponentSelect) {
  const Program prog =
      fuse("du = grad3d(u, dims, x, y, z)\nr = du[2] - du[0]");
  EXPECT_EQ(count_ops(prog, Op::grad3d), 1u);
  EXPECT_EQ(count_ops(prog, Op::component), 2u);
  EXPECT_EQ(count_ops(prog, Op::load_global_vec), 0u)
      << "fused kernels never materialise the vector intermediate";
}

TEST(Generator, GradFieldsAreNotLoadedAsScalars) {
  // u feeds only grad3d: it must appear as a parameter (direct global
  // access) but never as a load_global.
  const Program prog =
      fuse("du = grad3d(u, dims, x, y, z)\nr = du[0] * du[0]");
  EXPECT_EQ(count_ops(prog, Op::load_global), 0u);
  EXPECT_EQ(param_names(prog),
            (std::vector<std::string>{"u", "dims", "x", "y", "z"}));
}

TEST(Generator, FieldUsedBothWaysLoadsOnceAndPassesBuffer) {
  const Program prog = fuse("du = grad3d(u, dims, x, y, z)\nr = du[0] + u");
  EXPECT_EQ(count_ops(prog, Op::load_global), 1u);
  EXPECT_EQ(count_ops(prog, Op::grad3d), 1u);
  EXPECT_EQ(prog.params().size(), 5u);
}

TEST(Generator, SingleStoreAtEnd) {
  const Program prog = fuse(dfg::expressions::kQCriterion);
  EXPECT_EQ(count_ops(prog, Op::store), 1u);
  EXPECT_EQ(prog.code().back().op, Op::store);
}

TEST(Generator, QCriterionParamsMatchTable2FusionWrites) {
  // 7 unique inputs -> the 7 Dev-W of Table II's fusion rows.
  const Program prog = fuse(dfg::expressions::kQCriterion);
  EXPECT_EQ(prog.params().size(), 7u);
  EXPECT_EQ(count_ops(prog, Op::grad3d), 3u);
  EXPECT_EQ(count_ops(prog, Op::component), 9u);
}

TEST(Generator, SelectAndComparisonsFuse) {
  const Program prog = fuse("r = if (u > 0.0) then (v) else (-v)");
  EXPECT_EQ(count_ops(prog, Op::select), 1u);
  EXPECT_EQ(count_ops(prog, Op::cmp_gt), 1u);
  EXPECT_EQ(count_ops(prog, Op::neg), 1u);
}

TEST(Generator, FusedProgramComputesSameAsInstructions) {
  // Fused "r = sqrt(u*u + v*v)" over concrete data.
  const Program prog = fuse("r = sqrt(u*u + v*v)");
  const std::vector<float> u{3.0f, 5.0f};
  const std::vector<float> v{4.0f, 12.0f};
  std::vector<BufferBinding> inputs{{u.data(), u.size()},
                                    {v.data(), v.size()}};
  std::vector<float> out(2);
  run_all(prog, inputs, out, 2);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 13.0f);
}

TEST(Generator, RegisterPressureGrowsWithExpressionComplexity) {
  const Program velmag = fuse(dfg::expressions::kVelocityMagnitude);
  const Program qcrit = fuse(dfg::expressions::kQCriterion);
  EXPECT_GT(qcrit.max_live_scalar_registers(),
            velmag.max_live_scalar_registers());
  // The fused Q-criterion must still fit a Fermi register budget (63): the
  // paper's fusion runs did not spill.
  EXPECT_LE(qcrit.max_live_scalar_registers(), 63);
}

// ----- Source printer -----

TEST(SourcePrinter, KernelSignatureListsParams) {
  const Program prog = fuse(dfg::expressions::kVelocityMagnitude);
  const std::string src = to_opencl_body(prog);
  EXPECT_NE(src.find("__kernel void fused_expression"), std::string::npos);
  EXPECT_NE(src.find("__global const float *u"), std::string::npos);
  EXPECT_NE(src.find("__global float *out"), std::string::npos);
  EXPECT_NE(src.find("get_global_id(0)"), std::string::npos);
  EXPECT_NE(src.find("out[gid] ="), std::string::npos);
}

TEST(SourcePrinter, ConstantsAppearAsLiterals) {
  const Program prog = fuse("r = 0.5 * u");
  const std::string src = to_opencl_body(prog);
  EXPECT_NE(src.find("0.5f"), std::string::npos);
}

TEST(SourcePrinter, DecomposePrintsVectorComponentAccess) {
  const Program prog =
      fuse("du = grad3d(u, dims, x, y, z)\nr = du[1] * du[1]");
  const std::string src = to_opencl_body(prog);
  EXPECT_NE(src.find(".s1"), std::string::npos);
}

TEST(SourcePrinter, GradPreambleIncludedExactlyOnce) {
  const Program prog = fuse(dfg::expressions::kVorticityMagnitude);
  const std::string src = to_opencl_source(prog);
  std::size_t count = 0;
  for (std::size_t pos = src.find("inline float4 grad3d");
       pos != std::string::npos;
       pos = src.find("inline float4 grad3d", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(SourcePrinter, SqrtAndSelectRendered) {
  const Program prog = fuse("r = if (u > 1.0) then (sqrt(u)) else (u)");
  const std::string src = to_opencl_body(prog);
  EXPECT_NE(src.find("sqrt("), std::string::npos);
  EXPECT_NE(src.find("!= 0.0f) ?"), std::string::npos);
}

TEST(SourcePrinter, HeaderStatesRegisterPressure) {
  const Program prog = fuse(dfg::expressions::kQCriterion);
  const std::string src = to_opencl_source(prog);
  EXPECT_NE(src.find("live scalar registers"), std::string::npos);
}

}  // namespace
