// Centralized DFGEN_* environment parsing: typed accessors, malformed
// values falling back instead of misbehaving, and typo detection via the
// unknown-variable scan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "support/env.hpp"

namespace {

using namespace dfg::support;

struct ScopedEnv {
  std::string name;
  ScopedEnv(const std::string& n, const std::string& value) : name(n) {
    ::setenv(name.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

TEST(Env, TypedAccessorsParseAndFallBack) {
  {
    ScopedEnv runs("DFGEN_RUNS", "7");
    EXPECT_EQ(env::get_int("DFGEN_RUNS", 1), 7);
  }
  EXPECT_EQ(env::get_int("DFGEN_RUNS", 1), 1);  // unset -> fallback

  {
    ScopedEnv factor("DFGEN_DEADLINE_FACTOR", "12.5");
    EXPECT_DOUBLE_EQ(env::get_double("DFGEN_DEADLINE_FACTOR", 8.0), 12.5);
  }
  {
    ScopedEnv factor("DFGEN_DEADLINE_FACTOR", "banana");
    EXPECT_DOUBLE_EQ(env::get_double("DFGEN_DEADLINE_FACTOR", 8.0), 8.0)
        << "malformed values fall back, never crash";
  }
  {
    ScopedEnv flag("DFGEN_FALLBACK", "1");
    EXPECT_TRUE(env::get_flag("DFGEN_FALLBACK"));
  }
  {
    ScopedEnv flag("DFGEN_FALLBACK", "0");
    EXPECT_FALSE(env::get_flag("DFGEN_FALLBACK"));
  }
  {
    ScopedEnv dir("DFGEN_CHECKPOINT_DIR", "/tmp/j");
    EXPECT_EQ(env::get_string("DFGEN_CHECKPOINT_DIR", ""), "/tmp/j");
  }
}

TEST(Env, UnknownVariablesAreReported) {
  ScopedEnv typo("DFGEN_FALBACK", "1");  // a plausible typo
  const auto unknowns = env::unknown_variables();
  EXPECT_NE(std::find(unknowns.begin(), unknowns.end(), "DFGEN_FALBACK"),
            unknowns.end());
}

TEST(Env, CanonicalVariablesAreKnown) {
  // The canonical set is pre-registered: none of these may be flagged.
  ScopedEnv a("DFGEN_RUNS", "1");
  ScopedEnv b("DFGEN_FALLBACK", "0");
  ScopedEnv c("DFGEN_DEADLINE_FACTOR", "8");
  ScopedEnv d("DFGEN_CHECKPOINT_DIR", "/tmp/j");
  ScopedEnv e("DFGEN_TRACE_DIR", "/tmp/t");
  ScopedEnv f("DFGEN_SERVICE_QUEUE_DEPTH", "16");
  ScopedEnv g("DFGEN_SERVICE_QUOTA_MB", "64");
  ScopedEnv h("DFGEN_SERVICE_BACKLOG_MB", "256");
  ScopedEnv i("DFGEN_SERVICE_COALESCE", "1");
  const auto unknowns = env::unknown_variables();
  for (const char* name :
       {"DFGEN_RUNS", "DFGEN_FALLBACK", "DFGEN_DEADLINE_FACTOR",
        "DFGEN_CHECKPOINT_DIR", "DFGEN_TRACE_DIR",
        "DFGEN_SERVICE_QUEUE_DEPTH", "DFGEN_SERVICE_QUOTA_MB",
        "DFGEN_SERVICE_BACKLOG_MB", "DFGEN_SERVICE_COALESCE"}) {
    EXPECT_EQ(std::find(unknowns.begin(), unknowns.end(), name),
              unknowns.end())
        << name << " must be pre-registered";
  }
}

TEST(Env, ShardVariablesAreKnown) {
  ScopedEnv a("DFGEN_SHARDS", "4");
  ScopedEnv b("DFGEN_SHARD_QUEUE_DEPTH", "32");
  ScopedEnv c("DFGEN_SHED_POLICY", "priority");
  const auto unknowns = env::unknown_variables();
  for (const char* name :
       {"DFGEN_SHARDS", "DFGEN_SHARD_QUEUE_DEPTH", "DFGEN_SHED_POLICY"}) {
    EXPECT_EQ(std::find(unknowns.begin(), unknowns.end(), name),
              unknowns.end())
        << name << " must be pre-registered";
  }
}

TEST(Env, BackendVariablesAreKnown) {
  ScopedEnv a("DFGEN_BACKEND", "jit");
  ScopedEnv b("DFGEN_JIT_CC", "cc");
  ScopedEnv c("DFGEN_JIT_CACHE_CAP", "8");
  const auto unknowns = env::unknown_variables();
  for (const char* name :
       {"DFGEN_BACKEND", "DFGEN_JIT_CC", "DFGEN_JIT_CACHE_CAP"}) {
    EXPECT_EQ(std::find(unknowns.begin(), unknowns.end(), name),
              unknowns.end())
        << name << " must be pre-registered";
  }
}

TEST(Env, MemoVariablesAreKnown) {
  ScopedEnv a("DFGEN_MEMO", "1");
  ScopedEnv b("DFGEN_NO_MEMO", "1");
  ScopedEnv c("DFGEN_MEMO_CAP", "64");
  const auto unknowns = env::unknown_variables();
  for (const char* name :
       {"DFGEN_MEMO", "DFGEN_NO_MEMO", "DFGEN_MEMO_CAP"}) {
    EXPECT_EQ(std::find(unknowns.begin(), unknowns.end(), name),
              unknowns.end())
        << name << " must be pre-registered";
  }
}

TEST(Env, MemoTypoSuggestionsNameTheNearestKnob) {
  EXPECT_EQ(env::suggestion_for("DFGEN_MEMMO"), "DFGEN_MEMO");
  EXPECT_EQ(env::suggestion_for("DFGEN_NO_MEM"), "DFGEN_NO_MEMO");
  EXPECT_EQ(env::suggestion_for("DFGEN_MEMO_CAPS"), "DFGEN_MEMO_CAP");
}

TEST(Env, BackendTypoSuggestionsNameTheNearestKnob) {
  EXPECT_EQ(env::suggestion_for("DFGEN_BACKEN"), "DFGEN_BACKEND");
  EXPECT_EQ(env::suggestion_for("DFGEN_JIT_CCC"), "DFGEN_JIT_CC");
  EXPECT_EQ(env::suggestion_for("DFGEN_JIT_CACHECAP"),
            "DFGEN_JIT_CACHE_CAP");
}

TEST(Env, TypoSuggestionsNameTheNearestKnob) {
  EXPECT_EQ(env::suggestion_for("DFGEN_SHARD_QUEUE_DEPT"),
            "DFGEN_SHARD_QUEUE_DEPTH");
  EXPECT_EQ(env::suggestion_for("DFGEN_SHRDS"), "DFGEN_SHARDS");
  EXPECT_EQ(env::suggestion_for("DFGEN_SHED_POLICI"), "DFGEN_SHED_POLICY");
  EXPECT_EQ(env::suggestion_for("DFGEN_COMPLETELY_UNRELATED_NAME"), "")
      << "nothing within edit distance 3 -> no suggestion";

  // The warn path reports the typo (with its suggestion) instead of
  // silently ignoring the knob.
  ScopedEnv typo("DFGEN_SHARD_QUEUE_DEPT", "8");
  EXPECT_GE(env::warn_unknown_variables(), 1u);
}

}  // namespace
