// The cross-request subgraph memoizer: subtree fingerprints are value
// identities (label-insensitive, constant- and component-sensitive), the
// spec rewrites round-trip bit-exactly, the IntermediateCache admits,
// evicts by LRU-with-cost and invalidates on dependency mutation, and —
// the load-bearing property — a memo-enabled service serves overlapping
// requests bit-identically to plain evaluation while actually hitting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "memo/intermediate_cache.hpp"
#include "memo/subgraph.hpp"
#include "mesh/generators.hpp"
#include "service/service.hpp"
#include "vcl/catalog.hpp"
#include "vcl/resident_pool.hpp"

namespace {

using namespace dfg;
using service::EvalService;
using service::Request;
using service::RequestStatus;
using service::ServiceOptions;
using service::ServiceReport;
using service::ServiceSnapshot;
using service::Ticket;

struct ScopedEnv {
  std::string name;
  ScopedEnv(const std::string& n, const std::string& value) : name(n) {
    ::setenv(name.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

void expect_bitwise_equal(const std::vector<float>& got,
                          const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const bool nan = std::isnan(want[i]);
    ASSERT_EQ(std::isnan(got[i]), nan) << "cell " << i;
    if (!nan) ASSERT_EQ(got[i], want[i]) << "cell " << i;
  }
}

// ---------------------------------------------------------------------------
// Subtree fingerprints

TEST(SubtreeFingerprint, SharedAcrossDifferentNetworks) {
  const dataflow::Network a(
      dataflow::build_network("ke = u*u + v*v\nr = sqrt(ke)"));
  const dataflow::Network b(
      dataflow::build_network("ke = u*u + v*v\nr = ke * 0.5"));
  ASSERT_NE(a.fingerprint(), b.fingerprint());
  // The shared ke subtree fingerprints identically in both.
  std::uint64_t ke_a = 0;
  for (const auto& node : a.spec().nodes()) {
    if (node.label == "ke") ke_a = a.subtree_fingerprint(node.id);
  }
  std::uint64_t ke_b = 0;
  for (const auto& node : b.spec().nodes()) {
    if (node.label == "ke") ke_b = b.subtree_fingerprint(node.id);
  }
  ASSERT_NE(ke_a, 0u);
  EXPECT_EQ(ke_a, ke_b);
}

TEST(SubtreeFingerprint, LabelInsensitiveConstantAndComponentSensitive) {
  const auto fp_of_output = [](const std::string& script) {
    const dataflow::Network net(dataflow::build_network(script));
    return net.subtree_fingerprint(net.output_id());
  };
  // Same structure under different assignment names: same fingerprint
  // (value identity, not program identity)...
  EXPECT_EQ(fp_of_output("a = u*u"), fp_of_output("b = u*u"));
  // ...but different constants and different vector components differ.
  EXPECT_NE(fp_of_output("r = u * 2"), fp_of_output("r = u * 3"));
  EXPECT_NE(fp_of_output("du = grad3d(u, dims, x, y, z)\nr = du[0]"),
            fp_of_output("du = grad3d(u, dims, x, y, z)\nr = du[1]"));
}

// ---------------------------------------------------------------------------
// Candidate enumeration and spec rewrites

TEST(SubgraphCandidates, EnumeratesBoundScalarNonOutputSubtrees) {
  const dataflow::Network net(
      dataflow::build_network("r = sqrt(u*u + v*v)"));
  std::vector<float> u(16, 1.0f), v(16, 2.0f);
  memo::EvalContext ctx;
  ctx.network = &net;
  ctx.elements = 16;
  ctx.fields = {{"u", u.data(), u.size()}, {"v", v.data(), v.size()}};
  const std::vector<memo::Candidate> candidates =
      memo::enumerate_candidates(ctx);
  // The only subtree with >= 2 filters that is not the output: the add.
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].filters, 3u);
  EXPECT_EQ(candidates[0].deps.size(), 2u);

  // An unbound leaf disqualifies every subtree through it.
  memo::EvalContext unbound = ctx;
  unbound.fields = {{"u", u.data(), u.size()}};
  EXPECT_TRUE(memo::enumerate_candidates(unbound).empty());
}

TEST(SubgraphCandidates, KeyTracksContentIdentity) {
  const dataflow::Network net(
      dataflow::build_network("r = sqrt(u*u + v*v)"));
  std::vector<float> u(16, 1.0f), v(16, 2.0f), other(16, 3.0f);
  memo::EvalContext ctx;
  ctx.network = &net;
  ctx.elements = 16;
  ctx.fields = {{"u", u.data(), u.size()}, {"v", v.data(), v.size()}};
  const auto base = memo::enumerate_candidates(ctx);
  // Same arrays -> same key; a different backing array -> different key.
  EXPECT_EQ(memo::enumerate_candidates(ctx)[0].key, base[0].key);
  ctx.fields[1] = {"v", other.data(), other.size()};
  EXPECT_NE(memo::enumerate_candidates(ctx)[0].key, base[0].key);
}

TEST(SubgraphRewrites, ExtractAndSpliceRoundTripBitExactly) {
  const std::string script =
      "ke = u*u + v*v + w*w\nr = sqrt(ke) * 0.5 + u";
  const dataflow::Network full(dataflow::build_network(script));
  int ke_root = -1;
  for (const auto& node : full.spec().nodes()) {
    if (node.label == "ke") ke_root = node.id;
  }
  ASSERT_GE(ke_root, 0);

  const mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({6, 5, 4});
  const mesh::VectorField field = mesh::rayleigh_taylor_flow(mesh, 7);
  vcl::Device device(vcl::xeon_x5660_scaled());
  Engine engine(device);
  engine.bind_mesh(mesh);
  engine.bind("u", field.u);
  engine.bind("v", field.v);
  engine.bind("w", field.w);

  const std::vector<float> want =
      engine.evaluate_network(full, mesh.cell_count()).values;

  // Materialize the subtree standalone, splice it back as a field source.
  const dataflow::Network subtree(
      memo::extract_subtree(full.spec(), ke_root));
  const std::vector<float> ke =
      engine.evaluate_network(subtree, mesh.cell_count()).values;
  const dataflow::Network spliced(memo::splice_materialized(
      full.spec(), {{ke_root, std::string("_memo_test")}}));
  engine.bind("_memo_test", ke);
  const std::vector<float> got =
      engine.evaluate_network(spliced, mesh.cell_count()).values;
  expect_bitwise_equal(got, want);
  // The spliced network really lost the subtree interior.
  EXPECT_LT(spliced.spec().nodes().size(), full.spec().nodes().size());
}

// ---------------------------------------------------------------------------
// IntermediateCache

TEST(IntermediateCache, AdmitLookupAndOversizeRefusal) {
  memo::IntermediateCache cache({1024});
  EXPECT_EQ(cache.lookup(1), nullptr);  // miss
  const auto entry = cache.admit(1, std::vector<float>(8, 2.0f), 0.5, {});
  ASSERT_NE(entry, nullptr);
  const auto hit = cache.lookup(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->values[0], 2.0f);
  // A value larger than the whole cache is refused outright.
  EXPECT_EQ(cache.admit(2, std::vector<float>(1024, 0.0f), 9.0, {}), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.admits, 1u);
  EXPECT_EQ(cache.resident_bytes(), 8 * sizeof(float));
}

TEST(IntermediateCache, EvictsLeastRecomputeSavedPerByte) {
  // Capacity fits exactly two 8-float entries.
  memo::IntermediateCache cache({2 * 8 * sizeof(float)});
  ASSERT_NE(cache.admit(1, std::vector<float>(8, 1.0f), 0.001, {}), nullptr);
  ASSERT_NE(cache.admit(2, std::vector<float>(8, 2.0f), 9.0, {}), nullptr);
  // Admitting a third evicts the cheapest-to-recompute entry (key 1).
  ASSERT_NE(cache.admit(3, std::vector<float>(8, 3.0f), 1.0, {}), nullptr);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(IntermediateCache, DependencyMutationInvalidatesOnLookup) {
  std::vector<float> input(8, 1.0f);
  memo::IntermediateCache cache({1024});
  const std::uint64_t generation = vcl::host_generation(input.data());
  ASSERT_NE(cache.admit(7, std::vector<float>(8, 2.0f), 1.0,
                        {{input.data(), generation}}),
            nullptr);
  ASSERT_NE(cache.lookup(7), nullptr);
  // The host mutates the dependency: the cached value is stale.
  input[0] = 42.0f;
  vcl::note_host_mutation(input.data());
  EXPECT_EQ(cache.lookup(7), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(IntermediateCache, InvalidateDependentsDropsEagerly) {
  std::vector<float> a(8, 1.0f), b(8, 2.0f);
  memo::IntermediateCache cache({1024});
  cache.admit(1, std::vector<float>(8, 0.0f), 1.0,
              {{a.data(), vcl::host_generation(a.data())}});
  cache.admit(2, std::vector<float>(8, 0.0f), 1.0,
              {{b.data(), vcl::host_generation(b.data())}});
  cache.invalidate_dependents(a.data());
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_NE(cache.lookup(2), nullptr);
}

// ---------------------------------------------------------------------------
// SubgraphIndex

TEST(SubgraphIndex, PopularityCountsDistinctNetworks) {
  const dataflow::Network a(
      dataflow::build_network("ke = u*u + v*v\nr = sqrt(ke)"));
  const dataflow::Network b(
      dataflow::build_network("ke = u*u + v*v\nr = ke * 0.5"));
  std::vector<float> u(16, 1.0f), v(16, 2.0f);
  const auto ctx_for = [&](const dataflow::Network& net) {
    memo::EvalContext ctx;
    ctx.network = &net;
    ctx.elements = 16;
    ctx.fields = {{"u", u.data(), u.size()}, {"v", v.data(), v.size()}};
    return ctx;
  };
  memo::SubgraphIndex index;
  const auto cand_a = memo::enumerate_candidates(ctx_for(a));
  ASSERT_FALSE(cand_a.empty());
  // First sighting: nothing to share with yet.
  EXPECT_FALSE(index.observe(a, cand_a));
  EXPECT_EQ(index.popularity(cand_a[0].key).networks, 1u);
  // The same network again is not a near-miss (the coalescer's case)...
  EXPECT_FALSE(index.observe(a, cand_a));
  EXPECT_EQ(index.popularity(cand_a[0].key).networks, 1u);
  // ...but a *different* network sharing the ke subtree is.
  const auto cand_b = memo::enumerate_candidates(ctx_for(b));
  EXPECT_TRUE(index.observe(b, cand_b));
  std::uint64_t shared_key = 0;
  for (const auto& candidate : cand_b) {
    for (const auto& other : cand_a) {
      if (candidate.key == other.key) shared_key = candidate.key;
    }
  }
  ASSERT_NE(shared_key, 0u);
  EXPECT_EQ(index.popularity(shared_key).networks, 2u);
}

// ---------------------------------------------------------------------------
// Service end-to-end

struct ServiceFixture {
  mesh::RectilinearMesh mesh = mesh::RectilinearMesh::uniform({12, 10, 8});
  mesh::VectorField field;
  // Two different networks hanging off the same heavy subtree.
  std::string shared = "ke = u*u + v*v + w*w\n";
  std::string expr_a = shared + "r = sqrt(ke)";
  std::string expr_b = shared + "r = ke * 0.5 + u";

  ServiceFixture() : field(mesh::rayleigh_taylor_flow(mesh, 7)) {}

  Request request(const std::string& expression,
                  const std::string& session) const {
    Request r;
    r.expression = expression;
    r.mesh = &mesh;
    r.fields = {{"u", field.u}, {"v", field.v}, {"w", field.w}};
    r.session = session;
    return r;
  }

  std::vector<float> reference(const std::string& expression) const {
    vcl::Device device(vcl::xeon_x5660_scaled());
    Engine engine(device);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    return engine.evaluate(expression).values;
  }
};

TEST(MemoService, OverlappingRequestsHitBitExactly) {
  ServiceFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  ServiceOptions options;
  options.start_paused = true;
  options.memo = true;
  EvalService svc({&device}, options);

  // Both requests are observed at admission, so by the time the first
  // batch runs the ke subtree is popular across two distinct networks:
  // the first batch materializes it, the second serves it from cache.
  const Ticket ta = svc.submit(fx.request(fx.expr_a, "alice"));
  const Ticket tb = svc.submit(fx.request(fx.expr_b, "bob"));
  svc.resume();
  svc.drain();

  const ServiceReport& ra = ta.wait();
  const ServiceReport& rb = tb.wait();
  ASSERT_EQ(ra.status, RequestStatus::completed) << ra.error;
  ASSERT_EQ(rb.status, RequestStatus::completed) << rb.error;
  expect_bitwise_equal(ra.evaluation->values, fx.reference(fx.expr_a));
  expect_bitwise_equal(rb.evaluation->values, fx.reference(fx.expr_b));

  const ServiceSnapshot snap = svc.snapshot();
  EXPECT_GE(snap.memo_admits, 1u);
  EXPECT_GE(snap.memo_hits, 1u);
  EXPECT_GT(snap.memo_bytes_saved, 0u);
  EXPECT_GE(snap.memo_candidate_requests, 1u);
}

TEST(MemoService, NoMemoKillSwitchWins) {
  ScopedEnv no_memo("DFGEN_NO_MEMO", "1");
  ServiceFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  ServiceOptions options;
  options.start_paused = true;
  options.memo = true;  // env must override the option
  EvalService svc({&device}, options);
  const Ticket ta = svc.submit(fx.request(fx.expr_a, "alice"));
  const Ticket tb = svc.submit(fx.request(fx.expr_b, "bob"));
  svc.resume();
  svc.drain();
  expect_bitwise_equal(ta.wait().evaluation->values,
                       fx.reference(fx.expr_a));
  expect_bitwise_equal(tb.wait().evaluation->values,
                       fx.reference(fx.expr_b));
  const ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.memo_hits, 0u);
  EXPECT_EQ(snap.memo_admits, 0u);
  // The near-miss counter observes regardless: memo-off deployments can
  // chart the hit-rate ceiling before enabling.
  EXPECT_GE(snap.memo_candidate_requests, 1u);
}

TEST(MemoService, HostMutationInvalidatesCachedIntermediates) {
  ServiceFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  ServiceOptions options;
  options.start_paused = true;
  options.memo = true;
  EvalService svc({&device}, options);
  {
    const Ticket ta = svc.submit(fx.request(fx.expr_a, "alice"));
    const Ticket tb = svc.submit(fx.request(fx.expr_b, "bob"));
    svc.resume();
    svc.drain();
    ASSERT_EQ(ta.wait().status, RequestStatus::completed);
    ASSERT_EQ(tb.wait().status, RequestStatus::completed);
  }
  ASSERT_GE(svc.snapshot().memo_admits, 1u);

  // The host mutates a shared input in place and declares it. Cached
  // intermediates derived from it must not be served again.
  for (float& value : fx.field.u) value += 1.0f;
  vcl::note_host_mutation(fx.field.u.data());

  const Ticket ta = svc.submit(fx.request(fx.expr_a, "alice"));
  const Ticket tb = svc.submit(fx.request(fx.expr_b, "bob"));
  svc.drain();
  const ServiceReport& ra = ta.wait();
  const ServiceReport& rb = tb.wait();
  ASSERT_EQ(ra.status, RequestStatus::completed) << ra.error;
  ASSERT_EQ(rb.status, RequestStatus::completed) << rb.error;
  // References computed from the mutated arrays.
  expect_bitwise_equal(ra.evaluation->values, fx.reference(fx.expr_a));
  expect_bitwise_equal(rb.evaluation->values, fx.reference(fx.expr_b));
}

TEST(MemoService, RepeatTrafficServesFromCacheAcrossRounds) {
  ServiceFixture fx;
  vcl::Device device(vcl::xeon_x5660_scaled());
  ServiceOptions options;
  options.memo = true;
  EvalService svc({&device}, options);
  // Sequential rounds (no pause): after the warm-up round the subtree is
  // materialized and every later round hits it.
  for (int round = 0; round < 3; ++round) {
    const Ticket ta = svc.submit(fx.request(fx.expr_a, "alice"));
    const Ticket tb = svc.submit(fx.request(fx.expr_b, "bob"));
    svc.drain();
    expect_bitwise_equal(ta.wait().evaluation->values,
                         fx.reference(fx.expr_a));
    expect_bitwise_equal(tb.wait().evaluation->values,
                         fx.reference(fx.expr_b));
  }
  const ServiceSnapshot snap = svc.snapshot();
  EXPECT_GE(snap.memo_hits, 3u);
  EXPECT_GT(snap.memo_recompute_saved_nanos, 0u);
}

}  // namespace
