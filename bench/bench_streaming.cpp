// Future-work study (paper §VI): execution strategies in a streaming
// context. Three questions the paper poses, answered with the streamed
// fusion strategy:
//   1. What does streaming cost when the data fits anyway? (chunk-size
//      sweep vs single-kernel fusion)
//   2. Does streaming rescue the GPU test cases that fail on memory in the
//      Figure 5/6 sweep? (re-run of every failed case with streaming)
//   3. How does the chunk size trade device memory against transfers?
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "runtime/planner.hpp"
#include "support/string_util.hpp"
#include "vcl/pipeline.hpp"

namespace {

void print_chunk_sweep() {
  std::printf(
      "=== Streaming: chunk-size sweep, Q-criterion, mid-size grid ===\n");
  const auto catalog = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  const auto& info = catalog[5];
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform(info.dims);
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  dfg::vcl::Device device(dfgbench::scaled_gpu());

  std::printf("grid %s (%zu cells) on %s\n",
              dfg::mesh::to_string(info.dims).c_str(), info.cells,
              device.spec().name.c_str());
  std::printf("overlap columns: projected makespan with one / two DMA copy\n"
              "engines overlapping compute (the M2050 has two)\n");
  std::printf("%-22s %10s %8s %8s %16s %10s %10s\n", "configuration",
              "sim [s]", "K-Exe", "Dev-W", "mem high water", "1-copy[s]",
              "2-copy[s]");

  const dfg::dataflow::Network network(
      dfg::dataflow::build_network(dfg::expressions::kQCriterion));
  dfg::runtime::FieldBindings bindings;
  bindings.bind_mesh(mesh);
  bindings.bind("u", field.u);
  bindings.bind("v", field.v);
  bindings.bind("w", field.w);

  // Baseline: single-kernel fusion.
  {
    dfg::Engine engine(device, {dfg::runtime::StrategyKind::fusion, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    const auto report = engine.evaluate(dfg::expressions::kQCriterion);
    std::printf("%-22s %10.5f %8zu %8zu %16s\n", "fusion (baseline)",
                report.sim_seconds, report.kernel_execs, report.dev_writes,
                dfg::support::format_bytes(report.memory_high_water_bytes)
                    .c_str());
  }
  const std::size_t plane = info.dims.nx * info.dims.ny;
  for (const std::size_t planes_per_chunk : {256u, 64u, 16u, 4u, 1u}) {
    dfg::EngineOptions options;
    options.strategy = dfg::runtime::StrategyKind::streamed;
    options.streamed_chunk_cells = planes_per_chunk * plane;
    dfg::Engine engine(device, options);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    const auto report = engine.evaluate(dfg::expressions::kQCriterion);
    const auto chunks = dfg::runtime::streamed_chunk_costs(
        network, bindings, info.cells, device.spec(),
        options.streamed_chunk_cells);
    const auto makespan = dfg::vcl::pipeline_makespan(chunks);
    char label[64];
    std::snprintf(label, sizeof(label), "streamed %4zu planes",
                  planes_per_chunk);
    std::printf("%-22s %10.5f %8zu %8zu %16s %10.5f %10.5f\n", label,
                report.sim_seconds, report.kernel_execs, report.dev_writes,
                dfg::support::format_bytes(report.memory_high_water_bytes)
                    .c_str(),
                makespan.overlap_single_copy, makespan.overlap_dual_copy);
  }
  std::printf("\n");
}

void print_gpu_rescue(int& missed) {
  std::printf(
      "=== Streaming: GPU cases that failed in the Figure 5/6 sweep ===\n");
  const auto catalog = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  dfg::vcl::Device gpu(dfgbench::scaled_gpu());
  std::size_t failed_without = 0;
  std::size_t rescued = 0;
  for (const auto& expr : dfgbench::paper_expressions()) {
    for (const auto& info : catalog) {
      const dfg::mesh::RectilinearMesh mesh =
          dfg::mesh::RectilinearMesh::uniform(info.dims);
      const dfg::mesh::VectorField field =
          dfg::mesh::rayleigh_taylor_flow(mesh);
      for (const auto execution :
           {dfgbench::Execution::roundtrip, dfgbench::Execution::staged,
            dfgbench::Execution::fusion}) {
        const auto base =
            dfgbench::run_case(mesh, field, expr, execution, gpu);
        if (!base.failed) continue;
        ++failed_without;
        // Retry the same case with auto-chunked streaming.
        dfg::EngineOptions options;
        options.strategy = dfg::runtime::StrategyKind::streamed;
        dfg::Engine engine(gpu, options);
        engine.bind_mesh(mesh);
        engine.bind("u", field.u);
        engine.bind("v", field.v);
        engine.bind("w", field.w);
        try {
          const auto report = engine.evaluate(expr.expression);
          ++rescued;
          std::printf("%-8s %12zu cells, %-10s failed -> streamed OK "
                      "(%zu chunks, sim %.5f s)\n",
                      expr.short_name, info.cells,
                      dfgbench::execution_name(execution),
                      report.kernel_execs, report.sim_seconds);
        } catch (const dfg::DeviceOutOfMemory&) {
          ++missed;
          std::printf("%-8s %12zu cells, %-10s failed -> streaming also "
                      "failed\n",
                      expr.short_name, info.cells,
                      dfgbench::execution_name(execution));
        }
      }
    }
  }
  std::printf("streaming rescued %zu of %zu failed GPU cases\n\n", rescued,
              failed_without);
}

void BM_StreamedQCrit(benchmark::State& state) {
  const auto catalog = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  const auto& info = catalog[2];
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform(info.dims);
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  dfg::vcl::Device device(dfgbench::scaled_gpu());
  dfg::EngineOptions options;
  options.strategy = dfg::runtime::StrategyKind::streamed;
  options.streamed_chunk_cells =
      static_cast<std::size_t>(state.range(0)) * info.dims.nx * info.dims.ny;
  double sim = 0.0;
  for (auto _ : state) {
    dfg::Engine engine(device, options);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    sim = engine.evaluate(dfg::expressions::kQCriterion).sim_seconds;
  }
  state.counters["sim_ms"] = sim * 1e3;
}
BENCHMARK(BM_StreamedQCrit)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dfgbench::check_environment();
  int missed = 0;
  print_chunk_sweep();
  print_gpu_rescue(missed);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return missed == 0 ? 0 : 1;
}
