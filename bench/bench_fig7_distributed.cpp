// Figure 7 reproduction: the distributed-memory parallel test. The paper
// computes the Q-criterion with the fusion strategy on the full 3072^3
// (27 billion cell) data set: 3072 sub-grids of 192x192x256 over 256 GPUs
// on 128 nodes (two GPUs = two MPI tasks per node, twelve sub-grids per
// GPU), with ghost data requested from the host pipeline.
//
// The reproduction preserves every structural ratio at 1/16 scale per axis:
// a 192^3 global grid decomposed into 3072 sub-grids of 12x12x16, processed
// by 256 simulated GPUs on 128 nodes — two devices per node and twelve
// sub-grids per device, exactly the paper's layout — with width-1 ghost
// exchange. Correctness is
// checked by bit-comparing the distributed result with a serial single-grid
// evaluation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "distrib/dist_engine.hpp"
#include "support/string_util.hpp"

namespace {

struct Fig7Setup {
  dfg::mesh::RectilinearMesh mesh;
  dfg::mesh::VectorField field;

  Fig7Setup()
      : mesh(dfg::mesh::RectilinearMesh::uniform({192, 192, 192}, 1.0f, 1.0f,
                                                 1.0f)),
        field(dfg::mesh::rayleigh_taylor_flow(mesh)) {}
};

int run_figure7() {
  std::printf("=== Figure 7: distributed-memory parallel Q-criterion ===\n");
  Fig7Setup setup;
  const auto global_cells = setup.mesh.cell_count();

  dfg::distrib::ClusterConfig config;
  config.nodes = 128;  // the paper's full Edge allocation: 256 MPI tasks
  config.devices_per_node = 2;
  // Device capacity scaled by the same 1/16-per-axis factor as the grid.
  config.device_spec = dfg::vcl::tesla_m2050();
  config.device_spec.global_mem_bytes /= 4096;
  config.ghost_width = 1;

  dfg::distrib::GridDecomposition decomposition(setup.mesh.dims(), 16, 16,
                                                12);
  dfg::distrib::DistributedEngine engine(setup.mesh, decomposition, config);
  engine.bind_global("u", setup.field.u);
  engine.bind_global("v", setup.field.v);
  engine.bind_global("w", setup.field.w);

  const auto report = engine.evaluate(dfg::expressions::kQCriterion,
                                      dfg::runtime::StrategyKind::fusion);

  std::printf("global grid: 192^3 = %zu cells (paper: 3072^3 = 27e9)\n",
              global_cells);
  std::printf("sub-grids: %zu of 12x12x16 (paper: 3072 of 192x192x256)\n",
              report.blocks);
  std::printf("ranks: %zu MPI tasks = %zu nodes x %zu GPUs "
              "(paper: 256 = 128 x 2)\n",
              report.ranks, config.nodes, config.devices_per_node);
  std::printf("sub-grids per device: %zu (paper: 12)\n",
              report.blocks_per_rank_max);
  std::printf("ghost exchange: %zu messages, %s\n", report.ghost_messages,
              dfg::support::format_bytes(report.ghost_bytes).c_str());
  std::printf("simulated device time: critical path %.4f s, aggregate "
              "%.4f s (speedup %.1fx over one device)\n",
              report.max_rank_sim_seconds, report.total_sim_seconds,
              report.total_sim_seconds / report.max_rank_sim_seconds);
  std::printf("per-device memory high-water: %s of %s\n",
              dfg::support::format_bytes(report.max_device_high_water).c_str(),
              dfg::support::format_bytes(config.device_spec.global_mem_bytes)
                  .c_str());

  // Correctness: distributed == serial, bit for bit.
  dfg::vcl::Device serial_device(dfg::vcl::xeon_x5660());
  dfg::Engine serial(serial_device, {dfg::runtime::StrategyKind::fusion, {}});
  serial.bind_mesh(setup.mesh);
  serial.bind("u", setup.field.u);
  serial.bind("v", setup.field.v);
  serial.bind("w", setup.field.w);
  const auto serial_values =
      serial.evaluate(dfg::expressions::kQCriterion).values;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < serial_values.size(); ++i) {
    if (report.values[i] != serial_values[i]) ++mismatches;
  }
  std::printf("distributed vs serial: %zu mismatched cells of %zu (%s)\n\n",
              mismatches, global_cells,
              mismatches == 0 ? "BIT-EXACT" : "MISMATCH");
  return mismatches == 0 ? 0 : 1;
}

void BM_GhostExchange192(benchmark::State& state) {
  Fig7Setup setup;
  dfg::distrib::GridDecomposition decomposition(setup.mesh.dims(), 16, 16,
                                                12);
  for (auto _ : state) {
    dfg::distrib::GhostExchanger exchanger(decomposition, 1);
    const auto padded =
        exchanger.exchange(exchanger.scatter(setup.field.u));
    benchmark::DoNotOptimize(padded.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(setup.mesh.cell_count()));
}
BENCHMARK(BM_GhostExchange192)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dfgbench::check_environment();
  const int status = run_figure7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return status;
}
