// Cross-request subgraph memoization study: what sharing materialized
// intermediates across *different* networks buys for overlapping traffic.
//
// The workload is a catalog of vorticity-derived fields that all hang off
// one heavy enstrophy subtree (three grad3d stencils plus the curl
// arithmetic) but diverge at the final consumer — the dashboard pattern
// where every panel renders a different view of the same expensive
// intermediate. A seeded Zipf trace (shard::generate_trace) replays the
// catalog through two EvalServices on identical GPU-class devices: one
// with memoization enabled, one with it off. The memoizing service should
// materialize the enstrophy subtree once, then serve every later request
// from the device cache and only pay for the cheap per-panel tail.
//
// Gates: every request completes, every result is bit-identical to a
// single-Engine reference for its expression, the memoizing run records
// nonzero cache hits and bytes saved, the memo-off run records zero hits
// but still counts near-miss candidates, and total simulated device time
// improves by at least 1.5x end to end.
//
// Results land in BENCH_memo.json in the working directory. DFGEN_SMOKE=1
// shrinks the grid and the trace; every gate still applies (the simulated
// clock is deterministic, so the speedup threshold is scale-free).
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/service.hpp"
#include "shard/traffic.hpp"

namespace {

using dfg::service::EvalService;
using dfg::service::Request;
using dfg::service::RequestStatus;
using dfg::service::ServiceOptions;
using dfg::service::Ticket;

// Every catalog entry shares this enstrophy prelude; only the final
// consumer statement differs, so cross-request memoization can serve the
// `ens` subtree from cache while the coalescer (which matches whole
// networks) cannot.
const char* kEnstrophyPrelude =
    "wx = grad3d(w, dims, x, y, z)[1] - grad3d(v, dims, x, y, z)[2]\n"
    "wy = grad3d(u, dims, x, y, z)[2] - grad3d(w, dims, x, y, z)[0]\n"
    "wz = grad3d(v, dims, x, y, z)[0] - grad3d(u, dims, x, y, z)[1]\n"
    "ens = wx*wx + wy*wy + wz*wz\n";

std::vector<std::string> catalog() {
  const std::string prelude = kEnstrophyPrelude;
  return {
      prelude + "r = sqrt(ens)",            // vorticity magnitude
      prelude + "r = ens * 0.5",            // enstrophy density
      prelude + "r = sqrt(ens) + u",        // magnitude over advection
      prelude + "r = ens * 0.5 - w",        // density against updraft
      prelude + "r = sqrt(ens + 1.0)",      // regularized magnitude
      prelude + "r = ens * ens * 0.25",     // palinstrophy proxy
  };
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

struct TraceResult {
  std::size_t requests = 0;
  std::size_t leaders = 0;
  double sim_seconds = 0.0;
  bool bit_exact = true;
  bool all_completed = true;
  dfg::service::ServiceSnapshot snapshot;
};

/// Replays `trace` through one service in waves (a wave models one
/// timestep's dashboard refresh: submit the burst, drain, next step).
TraceResult run_trace(const std::vector<dfg::shard::TrafficEvent>& trace,
                      const std::vector<std::string>& exprs,
                      const dfg::mesh::RectilinearMesh& mesh,
                      const dfg::mesh::VectorField& field,
                      const std::vector<std::vector<float>>& references,
                      bool memo, std::size_t wave) {
  dfg::vcl::Device device(dfgbench::scaled_gpu());
  ServiceOptions options;
  options.memo = memo;
  options.start_paused = true;
  EvalService service({&device}, options);

  TraceResult result;
  result.requests = trace.size();
  std::vector<std::pair<Ticket, std::size_t>> tickets;
  tickets.reserve(trace.size());
  bool resumed = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& event = trace[i];
    Request request;
    request.expression = exprs[event.expression];
    request.mesh = &mesh;
    request.fields = {{"u", field.u}, {"v", field.v}, {"w", field.w}};
    std::string session = "s";
    session += std::to_string(event.session);
    request.session = std::move(session);
    request.priority = 2 - static_cast<int>(event.priority);
    tickets.emplace_back(service.submit(std::move(request)),
                         event.expression);
    if ((i + 1) % wave == 0 || i + 1 == trace.size()) {
      if (!resumed) {
        service.resume();
        resumed = true;
      }
      service.drain();
    }
  }
  service.drain();

  for (const auto& [ticket, expr_index] : tickets) {
    const auto& report = ticket.wait();
    if (report.status != RequestStatus::completed) {
      result.all_completed = false;
      continue;
    }
    if (report.coalesce_leader) {
      ++result.leaders;
      result.sim_seconds += report.evaluation->sim_seconds;
    }
    if (!bits_equal(report.evaluation->values, references[expr_index])) {
      result.bit_exact = false;
    }
  }
  result.snapshot = service.snapshot();
  return result;
}

void write_json(const TraceResult& on, const TraceResult& off, bool smoke,
                std::size_t elements) {
  std::FILE* out = std::fopen("BENCH_memo.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_memo.json for writing\n");
    return;
  }
  const auto section = [&](const char* name, const TraceResult& r) {
    std::fprintf(
        out,
        "  \"%s\": {\n"
        "    \"requests\": %zu,\n"
        "    \"leaders\": %zu,\n"
        "    \"sim_seconds\": %.9f,\n"
        "    \"bit_exact\": %s,\n"
        "    \"memo_hits\": %zu,\n"
        "    \"memo_misses\": %zu,\n"
        "    \"memo_admits\": %zu,\n"
        "    \"memo_bytes_saved\": %zu,\n"
        "    \"memo_recompute_saved_nanos\": %zu,\n"
        "    \"memo_candidate_requests\": %zu,\n"
        "    \"coalesced_requests\": %zu\n"
        "  }",
        name, r.requests, r.leaders, r.sim_seconds,
        r.bit_exact ? "true" : "false", r.snapshot.memo_hits,
        r.snapshot.memo_misses, r.snapshot.memo_admits,
        r.snapshot.memo_bytes_saved, r.snapshot.memo_recompute_saved_nanos,
        r.snapshot.memo_candidate_requests, r.snapshot.coalesced_requests);
  };
  std::fprintf(out, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"elements\": %zu,\n", elements);
  section("memo", on);
  std::fprintf(out, ",\n");
  section("no_memo", off);
  std::fprintf(out, ",\n  \"speedup\": %.3f\n}\n",
               off.sim_seconds / on.sim_seconds);
  std::fclose(out);
}

}  // namespace

int main() {
  // The bench pins its own memo configuration per service; a stray
  // environment override would silently collapse the A/B comparison.
  ::unsetenv("DFGEN_MEMO");
  ::unsetenv("DFGEN_NO_MEMO");
  const bool smoke = dfg::support::env::get_flag("DFGEN_SMOKE");
  dfgbench::check_environment();

  const dfg::mesh::Dims dims =
      smoke ? dfg::mesh::Dims{16, 16, 16} : dfg::mesh::Dims{32, 32, 32};
  const auto mesh = dfg::mesh::RectilinearMesh::uniform(dims);
  const auto field = dfg::mesh::rayleigh_taylor_flow(mesh, 11);
  const auto exprs = catalog();

  // Bit-exactness oracle: one plain Engine per expression, no service, no
  // memoization, same device class.
  std::vector<std::vector<float>> references;
  references.reserve(exprs.size());
  {
    dfg::vcl::Device device(dfgbench::scaled_gpu());
    dfg::Engine engine(device);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    for (const auto& expr : exprs) {
      references.push_back(engine.evaluate(expr).values);
    }
  }

  dfg::shard::TrafficOptions traffic;
  traffic.seed = 42;
  traffic.requests = smoke ? 36 : 240;
  traffic.sessions = 8;
  const auto trace = dfg::shard::generate_trace(traffic, exprs.size());
  const std::size_t wave = 12;

  const TraceResult off =
      run_trace(trace, exprs, mesh, field, references, false, wave);
  const TraceResult on =
      run_trace(trace, exprs, mesh, field, references, true, wave);
  const double speedup = off.sim_seconds / on.sim_seconds;

  std::printf("subgraph memoization: %zu requests over %zu expressions "
              "(%zux%zux%zu grid)\n",
              trace.size(), exprs.size(), dims.nx, dims.ny, dims.nz);
  std::printf("  memo off: %zu leader evaluations, %.6f sim s\n",
              off.leaders, off.sim_seconds);
  std::printf("  memo on:  %zu leader evaluations, %.6f sim s "
              "(hits %zu, admits %zu, bytes saved %zu)\n",
              on.leaders, on.sim_seconds, on.snapshot.memo_hits,
              on.snapshot.memo_admits, on.snapshot.memo_bytes_saved);
  std::printf("  end-to-end speedup: %.2fx\n", speedup);

  write_json(on, off, smoke, mesh.cell_count());

  bool ok = true;
  if (!on.all_completed || !off.all_completed) {
    std::fprintf(stderr, "FAIL: a request was rejected or failed\n");
    ok = false;
  }
  if (!off.bit_exact) {
    std::fprintf(stderr,
                 "FAIL: memo-off run diverged from engine references\n");
    ok = false;
  }
  if (!on.bit_exact) {
    std::fprintf(stderr,
                 "FAIL: memoized run diverged from engine references\n");
    ok = false;
  }
  if (on.snapshot.memo_hits == 0 || on.snapshot.memo_admits == 0) {
    std::fprintf(stderr,
                 "FAIL: memoized run never hit the intermediate cache "
                 "(hits %zu, admits %zu)\n",
                 on.snapshot.memo_hits, on.snapshot.memo_admits);
    ok = false;
  }
  if (on.snapshot.memo_bytes_saved == 0) {
    std::fprintf(stderr, "FAIL: memoized run saved zero bytes\n");
    ok = false;
  }
  if (off.snapshot.memo_hits != 0) {
    std::fprintf(stderr, "FAIL: memo-off run recorded cache hits\n");
    ok = false;
  }
  if (off.snapshot.memo_candidate_requests == 0) {
    std::fprintf(stderr,
                 "FAIL: near-miss candidate counter stayed zero with "
                 "memoization off\n");
    ok = false;
  }
  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: end-to-end speedup %.2fx below the 1.5x gate\n",
                 speedup);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("all subgraph-memoization gates passed\n");
  return 0;
}
