// Shared helpers for the reproduction benchmarks: evaluation-scale grids,
// scaled devices, and a single-case runner that mirrors the paper's timing
// protocol (N identical runs, drop fastest and slowest, average the rest —
// the paper uses N=7; the simulated device time is deterministic, so the
// default here is N=1, overridable with DFGEN_RUNS for wall-time studies).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/expressions.hpp"
#include "mesh/catalog.hpp"
#include "mesh/generators.hpp"
#include "runtime/reference.hpp"
#include "runtime/strategy.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "vcl/catalog.hpp"

namespace dfgbench {

/// Axis scale of the evaluation grids (192 -> 48 per transverse axis).
inline constexpr std::size_t kAxisScale = dfg::mesh::kEvaluationAxisScale;

inline int run_count() {
  const int n = dfg::support::env::get_int("DFGEN_RUNS", 1);
  return n > 0 ? n : 1;
}

/// DFGEN_FALLBACK=1 re-runs the studies with strategy degradation enabled:
/// cells the paper charts as failed instead degrade down the memory ladder
/// and report which rung completed them. Off by default — strict mode
/// reproduces the paper's aborts.
inline bool fallback_enabled() {
  return dfg::support::env::get_flag("DFGEN_FALLBACK");
}

/// One-time startup hygiene for every bench: touch the canonical knobs so
/// they are registered, then report DFGEN_* typos to stderr.
inline void check_environment() {
  run_count();
  fallback_enabled();
  dfg::support::env::get_double("DFGEN_DEADLINE_FACTOR", 8.0);
  dfg::support::env::get_string("DFGEN_CHECKPOINT_DIR", "");
  dfg::support::env::get_string("DFGEN_TRACE_DIR", "");
  dfg::support::env::warn_unknown_variables();
}

struct ExpressionCase {
  const char* short_name;  // "VelMag"
  const char* expression;
};

inline const std::vector<ExpressionCase>& paper_expressions() {
  static const std::vector<ExpressionCase> cases = {
      {"VelMag", dfg::expressions::kVelocityMagnitude},
      {"VortMag", dfg::expressions::kVorticityMagnitude},
      {"Q-Crit", dfg::expressions::kQCriterion},
  };
  return cases;
}

/// Execution modes of the runtime study: the three strategies plus the
/// hand-written reference kernel.
enum class Execution { roundtrip, staged, fusion, reference };

inline const char* execution_name(Execution e) {
  switch (e) {
    case Execution::roundtrip:
      return "roundtrip";
    case Execution::staged:
      return "staged";
    case Execution::fusion:
      return "fusion";
    case Execution::reference:
      return "reference";
  }
  return "?";
}

struct CaseResult {
  bool failed = false;  ///< device out of memory (the paper's gray series)
  bool degraded = false;  ///< a fallback rung, not the requested strategy
  std::string executed_strategy;  ///< the strategy that produced the result
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::size_t high_water_bytes = 0;
  std::size_t dev_writes = 0;
  std::size_t dev_reads = 0;
  std::size_t kernel_execs = 0;
};

inline const dfg::kernels::Program& reference_program(
    const ExpressionCase& expr) {
  static const dfg::kernels::Program velmag =
      dfg::runtime::reference_velocity_magnitude();
  static const dfg::kernels::Program vortmag =
      dfg::runtime::reference_vorticity_magnitude();
  static const dfg::kernels::Program qcrit =
      dfg::runtime::reference_q_criterion();
  if (std::string(expr.short_name) == "VelMag") return velmag;
  if (std::string(expr.short_name) == "VortMag") return vortmag;
  return qcrit;
}

/// Runs one (expression, execution, device) case following the paper's
/// protocol and returns averaged timings plus the profiling snapshot.
inline CaseResult run_case(const dfg::mesh::RectilinearMesh& mesh,
                           const dfg::mesh::VectorField& field,
                           const ExpressionCase& expr, Execution execution,
                           dfg::vcl::Device& device) {
  const int runs = run_count();
  std::vector<CaseResult> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    CaseResult sample;
    try {
      if (execution == Execution::reference) {
        dfg::runtime::FieldBindings bindings;
        bindings.bind_mesh(mesh);
        bindings.bind("u", field.u);
        bindings.bind("v", field.v);
        bindings.bind("w", field.w);
        dfg::vcl::ProfilingLog log;
        device.memory().reset_high_water();
        dfg::runtime::run_reference(reference_program(expr), bindings,
                                    mesh.cell_count(), device, log);
        sample.sim_seconds = log.total_sim_seconds();
        sample.wall_seconds = log.total_wall_seconds();
        sample.high_water_bytes = device.memory().high_water();
        sample.dev_writes = log.count(dfg::vcl::EventKind::host_to_device);
        sample.dev_reads = log.count(dfg::vcl::EventKind::device_to_host);
        sample.kernel_execs = log.count(dfg::vcl::EventKind::kernel_exec);
      } else {
        const auto kind = execution == Execution::roundtrip
                              ? dfg::runtime::StrategyKind::roundtrip
                          : execution == Execution::staged
                              ? dfg::runtime::StrategyKind::staged
                              : dfg::runtime::StrategyKind::fusion;
        dfg::EngineOptions opts{kind, {}};
        opts.fallback.enabled = fallback_enabled();
        dfg::Engine engine(device, opts);
        engine.bind_mesh(mesh);
        engine.bind("u", field.u);
        engine.bind("v", field.v);
        engine.bind("w", field.w);
        const dfg::EvaluationReport report = engine.evaluate(expr.expression);
        sample.degraded = !report.degradations.empty();
        sample.executed_strategy = report.strategy;
        sample.sim_seconds = report.sim_seconds;
        sample.wall_seconds = report.wall_seconds;
        sample.high_water_bytes = report.memory_high_water_bytes;
        sample.dev_writes = report.dev_writes;
        sample.dev_reads = report.dev_reads;
        sample.kernel_execs = report.kernel_execs;
      }
    } catch (const dfg::DeviceOutOfMemory&) {
      sample.failed = true;
    }
    samples.push_back(sample);
    if (sample.failed) break;  // deterministic: repeats would fail too
  }

  CaseResult result = samples.front();
  if (result.failed || samples.size() < 3) {
    if (samples.size() > 1) {
      double sim = 0.0, wall = 0.0;
      for (const CaseResult& s : samples) {
        sim += s.sim_seconds;
        wall += s.wall_seconds;
      }
      result.sim_seconds = sim / static_cast<double>(samples.size());
      result.wall_seconds = wall / static_cast<double>(samples.size());
    }
    return result;
  }
  // Drop fastest and slowest (by wall time), average the rest.
  std::size_t fastest = 0, slowest = 0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].wall_seconds < samples[fastest].wall_seconds) fastest = i;
    if (samples[i].wall_seconds > samples[slowest].wall_seconds) slowest = i;
  }
  double sim = 0.0, wall = 0.0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i == fastest || i == slowest) continue;
    sim += samples[i].sim_seconds;
    wall += samples[i].wall_seconds;
    ++kept;
  }
  result.sim_seconds = sim / static_cast<double>(kept);
  result.wall_seconds = wall / static_cast<double>(kept);
  return result;
}

/// Device specs scaled to the benchmark grids (capacity / kAxisScale^3).
inline dfg::vcl::DeviceSpec scaled_cpu() {
  return dfg::vcl::xeon_x5660_scaled();
}
inline dfg::vcl::DeviceSpec scaled_gpu() {
  return dfg::vcl::tesla_m2050_scaled();
}

}  // namespace dfgbench
