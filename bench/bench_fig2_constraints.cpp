// Figure 2 reproduction: the example dataflow network whose device-memory
// footprint differs per strategy — roundtrip 3 problem-sized arrays, staged
// 4, fusion 5. The google-benchmark section dispatches each strategy on the
// example network so the footprint/latency trade-off is visible in one
// place.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "dataflow/network.hpp"
#include "dataflow/spec.hpp"

namespace {

/// Four problem-sized inputs, two first-level filters, one combiner — the
/// shape Figure 2 annotates.
dfg::dataflow::Network example_network() {
  dfg::dataflow::NetworkSpec spec;
  const int a = spec.add_field_source("A");
  const int b = spec.add_field_source("B");
  const int c = spec.add_field_source("C");
  const int d = spec.add_field_source("D");
  const int t1 = spec.add_filter("add", {a, b});
  const int t2 = spec.add_filter("mult", {c, d});
  spec.set_output(spec.add_filter("sub", {t1, t2}));
  return dfg::dataflow::Network(std::move(spec));
}

constexpr std::size_t kElements = 1 << 16;

double run_strategy(dfg::runtime::StrategyKind kind, std::size_t elements,
                    std::size_t* high_water) {
  const dfg::dataflow::Network network = example_network();
  std::vector<float> data(elements, 1.5f);
  dfg::runtime::FieldBindings bindings;
  for (const auto& name : network.spec().field_names()) {
    bindings.bind(name, data);
  }
  dfg::vcl::Device device(dfgbench::scaled_cpu());
  dfg::vcl::ProfilingLog log;
  const auto strategy = dfg::runtime::make_strategy(kind);
  strategy->execute(network, bindings, elements, device, log);
  if (high_water != nullptr) *high_water = device.memory().high_water();
  return log.total_sim_seconds();
}

void print_figure2() {
  std::printf("=== Figure 2: per-strategy device memory constraints ===\n");
  std::printf("example network: T1 = A + B ; T2 = C * D ; out = T1 - T2\n");
  std::printf("%-10s | %18s | %8s | paper\n", "Strategy",
              "high water (bytes)", "arrays");
  const std::size_t array_bytes = kElements * sizeof(float);
  const int paper_arrays[] = {3, 4, 5};
  int idx = 0;
  for (const auto kind : {dfg::runtime::StrategyKind::roundtrip,
                          dfg::runtime::StrategyKind::staged,
                          dfg::runtime::StrategyKind::fusion}) {
    std::size_t high_water = 0;
    run_strategy(kind, kElements, &high_water);
    std::printf("%-10s | %18zu | %8.1f | %d\n",
                dfg::runtime::strategy_name(kind), high_water,
                static_cast<double>(high_water) /
                    static_cast<double>(array_bytes),
                paper_arrays[idx++]);
  }
  std::printf("\n");
}

void BM_ExampleNetwork(benchmark::State& state) {
  const auto kind =
      static_cast<dfg::runtime::StrategyKind>(state.range(0));
  std::size_t high_water = 0;
  double sim = 0.0;
  for (auto _ : state) {
    sim = run_strategy(kind, kElements, &high_water);
  }
  state.counters["sim_ms"] = sim * 1e3;
  state.counters["high_water_arrays"] =
      static_cast<double>(high_water) /
      static_cast<double>(kElements * sizeof(float));
  state.SetLabel(dfg::runtime::strategy_name(kind));
}
BENCHMARK(BM_ExampleNetwork)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dfgbench::check_environment();
  print_figure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
