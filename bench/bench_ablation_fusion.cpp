// Ablation study (beyond the paper): what each front-end transformation and
// code-generation feature buys, measured on the Q-criterion —
//   * limited CSE on/off (duplicate decompose/filter folding),
//   * constant deduplication on/off,
//   * commutative canonicalization (folds the Q-criterion's s_1/s_3 pair,
//     which the paper's limited CSE keeps separate),
//   * register-pressure spill penalty at artificially small budgets.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "kernels/generator.hpp"

namespace {

struct AblationResult {
  std::size_t filters = 0;
  std::size_t kernel_execs = 0;
  double staged_sim = 0.0;
  double fusion_sim = 0.0;
  std::size_t fused_instructions = 0;
};

AblationResult run_variant(const dfg::dataflow::SpecOptions& options) {
  const auto catalog = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform(catalog[1].dims);
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  dfg::vcl::Device device(dfgbench::scaled_cpu());

  AblationResult result;
  {
    dfg::Engine engine(device,
                       {dfg::runtime::StrategyKind::staged, options});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    const auto report = engine.evaluate(dfg::expressions::kQCriterion);
    result.kernel_execs = report.kernel_execs;
    result.staged_sim = report.sim_seconds;
  }
  {
    dfg::Engine engine(device,
                       {dfg::runtime::StrategyKind::fusion, options});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    const auto report = engine.evaluate(dfg::expressions::kQCriterion);
    result.fusion_sim = report.sim_seconds;
  }
  const auto spec =
      dfg::dataflow::build_network(dfg::expressions::kQCriterion, options);
  result.filters = spec.filter_count();
  const dfg::dataflow::Network network(
      dfg::dataflow::build_network(dfg::expressions::kQCriterion, options));
  result.fused_instructions =
      dfg::kernels::generate_fused(network).code().size();
  return result;
}

void print_frontend_ablation() {
  std::printf(
      "=== Ablation: front-end transformations on the Q-criterion ===\n");
  std::printf("%-34s %8s %8s %12s %12s %10s\n", "variant", "filters", "K-Exe",
              "staged[s]", "fusion[s]", "fused-ops");
  struct Variant {
    const char* name;
    dfg::dataflow::SpecOptions options;
  };
  dfg::dataflow::SpecOptions base;
  dfg::dataflow::SpecOptions no_cse = base;
  no_cse.cse = false;
  dfg::dataflow::SpecOptions no_const = base;
  no_const.dedup_constants = false;
  dfg::dataflow::SpecOptions neither = base;
  neither.cse = false;
  neither.dedup_constants = false;
  dfg::dataflow::SpecOptions commutative = base;
  commutative.canonicalize_commutative = true;
  const Variant variants[] = {
      {"paper (limited CSE + const dedup)", base},
      {"no CSE", no_cse},
      {"no constant dedup", no_const},
      {"no CSE, no constant dedup", neither},
      {"+ commutative canonicalization", commutative},
  };
  for (const Variant& v : variants) {
    const AblationResult r = run_variant(v.options);
    std::printf("%-34s %8zu %8zu %12.5f %12.5f %10zu\n", v.name, r.filters,
                r.kernel_execs, r.staged_sim, r.fusion_sim,
                r.fused_instructions);
  }
  std::printf("\n");
}

void print_register_ablation() {
  std::printf(
      "=== Ablation: register budget vs fused Q-criterion cost ===\n");
  const auto catalog = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform(catalog[1].dims);
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);

  const dfg::dataflow::Network network(
      dfg::dataflow::build_network(dfg::expressions::kQCriterion));
  const int pressure = dfg::kernels::generate_fused(network)
                           .max_live_scalar_registers();
  std::printf("fused kernel peak live scalar registers: %d\n", pressure);
  std::printf("%-18s %14s %8s\n", "register budget", "fusion sim [s]",
              "spills");
  for (const int budget : {63, 32, 16, 8}) {
    dfg::vcl::DeviceSpec spec = dfgbench::scaled_gpu();
    spec.register_budget = budget;
    dfg::vcl::Device device(spec);
    dfg::Engine engine(device, {dfg::runtime::StrategyKind::fusion, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    const auto report = engine.evaluate(dfg::expressions::kQCriterion);
    std::printf("%-18d %14.5f %8d\n", budget, report.sim_seconds,
                pressure > budget ? pressure - budget : 0);
  }
  std::printf("\n");
}

void BM_QCritStrategy(benchmark::State& state) {
  const auto catalog = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform(catalog[0].dims);
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  dfg::vcl::Device device(dfgbench::scaled_cpu());
  const auto execution = static_cast<dfgbench::Execution>(state.range(0));
  double sim = 0.0;
  for (auto _ : state) {
    const auto result =
        dfgbench::run_case(mesh, field, dfgbench::paper_expressions()[2],
                           execution, device);
    sim = result.sim_seconds;
  }
  state.counters["sim_ms"] = sim * 1e3;
  state.SetLabel(dfgbench::execution_name(execution));
}
BENCHMARK(BM_QCritStrategy)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dfgbench::check_environment();
  print_frontend_ablation();
  print_register_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
