// Table I reproduction: the twelve RT sub-grids of the single-device
// evaluation, printed at full scale (the paper's numbers) and at the
// evaluation scale this reproduction runs (1/4 per axis, paired with
// 1/64-capacity devices). The google-benchmark section measures the
// synthetic data generator that stands in for reading the DNS files.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "support/string_util.hpp"

namespace {

void print_table1() {
  std::printf("=== Table I: sub-grids of the 3072^3 RT time step ===\n");
  std::printf("%-22s %14s %12s      | scaled (1/%zu per axis)\n",
              "Sub-grid Dimensions", "# of Cells", "Data Size",
              dfgbench::kAxisScale);
  const auto full = dfg::mesh::subgrid_catalog(1);
  const auto scaled = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::printf("%-22s %14zu %12s      | %-14s %10zu cells\n",
                dfg::mesh::to_string(full[i].dims).c_str(), full[i].cells,
                dfg::support::format_bytes(full[i].data_bytes).c_str(),
                dfg::mesh::to_string(scaled[i].dims).c_str(),
                scaled[i].cells);
  }
  std::printf("\n");
}

void BM_GenerateRtSubgrid(benchmark::State& state) {
  const auto catalog = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  const auto& info = catalog[static_cast<std::size_t>(state.range(0))];
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform(info.dims);
  for (auto _ : state) {
    const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
    benchmark::DoNotOptimize(field.u.data());
  }
  state.counters["cells"] = static_cast<double>(info.cells);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(info.cells));
}
BENCHMARK(BM_GenerateRtSubgrid)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_GenerateAbcSubgrid(benchmark::State& state) {
  const auto catalog = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  const auto& info = catalog[static_cast<std::size_t>(state.range(0))];
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform(info.dims);
  for (auto _ : state) {
    const dfg::mesh::VectorField field = dfg::mesh::abc_flow(mesh);
    benchmark::DoNotOptimize(field.u.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(info.cells));
}
BENCHMARK(BM_GenerateAbcSubgrid)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dfgbench::check_environment();
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
