// Figure 5 reproduction: single-device runtime of the three expressions on
// data sets of increasing size (the twelve scaled Table I sub-grids), for
// the three execution strategies and the hand-written reference kernel, on
// the virtual Xeon X5660 (CPU series) and virtual Tesla M2050 (GPU series).
// Failed GPU cases — allocations beyond the device's scaled 48 MiB — are
// reported as FAILED, the paper's gray series.
//
// Reported runtimes are the cost model's simulated device seconds, which
// include all host-to-device transfers, kernel executions, and
// device-to-host transfers, exactly as the paper's timing methodology
// prescribes. Set DFGEN_RUNS=7 to follow the paper's 7-run
// drop-min/max-average protocol on wall time as well.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"

namespace {

struct SweepPoint {
  std::size_t cells;
  dfgbench::CaseResult cpu;
  dfgbench::CaseResult gpu;
};

using Series =
    std::vector<std::pair<dfgbench::Execution, std::vector<SweepPoint>>>;

Series run_sweep(const dfgbench::ExpressionCase& expr) {
  const auto catalog = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  Series series;
  for (const auto execution :
       {dfgbench::Execution::roundtrip, dfgbench::Execution::staged,
        dfgbench::Execution::fusion, dfgbench::Execution::reference}) {
    series.emplace_back(execution, std::vector<SweepPoint>{});
  }
  dfg::vcl::Device cpu(dfgbench::scaled_cpu());
  dfg::vcl::Device gpu(dfgbench::scaled_gpu());
  for (const auto& info : catalog) {
    const dfg::mesh::RectilinearMesh mesh =
        dfg::mesh::RectilinearMesh::uniform(info.dims);
    const dfg::mesh::VectorField field =
        dfg::mesh::rayleigh_taylor_flow(mesh);
    for (auto& [execution, points] : series) {
      SweepPoint point;
      point.cells = info.cells;
      point.cpu = dfgbench::run_case(mesh, field, expr, execution, cpu);
      point.gpu = dfgbench::run_case(mesh, field, expr, execution, gpu);
      points.push_back(point);
    }
  }
  return series;
}

void print_series(const dfgbench::ExpressionCase& expr, const Series& series) {
  std::printf("--- %s: simulated device seconds vs cells ---\n",
              expr.short_name);
  std::printf("%12s", "cells");
  for (const auto& [execution, points] : series) {
    std::printf(" %13s-CPU %13s-GPU", dfgbench::execution_name(execution),
                dfgbench::execution_name(execution));
  }
  std::printf("\n");
  const std::size_t rows = series.front().second.size();
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("%12zu", series.front().second[r].cells);
    for (const auto& [execution, points] : series) {
      const SweepPoint& p = points[r];
      std::printf(" %17.5f", p.cpu.sim_seconds);
      if (p.gpu.failed) {
        std::printf(" %17s", "FAILED");
      } else {
        std::printf(" %17.5f", p.gpu.sim_seconds);
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void check_shapes(const dfgbench::ExpressionCase& expr, const Series& series,
                  int& violations, int& gpu_failures, int& gpu_cases) {
  const auto& roundtrip = series[0].second;
  const auto& staged = series[1].second;
  const auto& fusion = series[2].second;
  const auto& reference = series[3].second;
  for (std::size_t r = 0; r < roundtrip.size(); ++r) {
    // CPU never fails; strategy ordering must hold on it.
    if (!(fusion[r].cpu.sim_seconds <= staged[r].cpu.sim_seconds &&
          staged[r].cpu.sim_seconds <= roundtrip[r].cpu.sim_seconds)) {
      ++violations;
      std::printf("shape violation (%s row %zu): CPU ordering\n",
                  expr.short_name, r);
    }
    if (reference[r].cpu.sim_seconds > fusion[r].cpu.sim_seconds * 1.001) {
      ++violations;
      std::printf("shape violation (%s row %zu): reference slower than "
                  "fusion on CPU\n",
                  expr.short_name, r);
    }
    for (const auto& pts : {&roundtrip, &staged, &fusion, &reference}) {
      ++gpu_cases;
      if ((*pts)[r].gpu.failed) {
        ++gpu_failures;
      } else if ((*pts)[r].gpu.sim_seconds >
                 (*pts)[r].cpu.sim_seconds * 1.001) {
        // "The GPU ran faster or on-par with the CPU for all test cases
        // that the GPU executed successfully."
        ++violations;
        std::printf("shape violation (%s row %zu): GPU slower than CPU\n",
                    expr.short_name, r);
      }
    }
  }
}

void BM_FusedQCritDispatch(benchmark::State& state) {
  // Wall-clock cost of one fused Q-criterion dispatch at a mid-sweep size,
  // for tracking the virtual machine's execution overhead.
  const auto catalog = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  const auto& info = catalog[3];
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform(info.dims);
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  dfg::vcl::Device device(dfgbench::scaled_cpu());
  for (auto _ : state) {
    const auto result = dfgbench::run_case(
        mesh, field, dfgbench::paper_expressions()[2],
        dfgbench::Execution::fusion, device);
    benchmark::DoNotOptimize(&result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(info.cells));
}
BENCHMARK(BM_FusedQCritDispatch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dfgbench::check_environment();
  std::printf(
      "=== Figure 5: single-device runtime performance (simulated) ===\n");
  std::printf("devices: %s | %s\n\n", dfgbench::scaled_cpu().name.c_str(),
              dfgbench::scaled_gpu().name.c_str());
  int violations = 0, gpu_failures = 0, gpu_cases = 0;
  for (const auto& expr : dfgbench::paper_expressions()) {
    const Series series = run_sweep(expr);
    print_series(expr, series);
    check_shapes(expr, series, violations, gpu_failures, gpu_cases);
  }
  std::printf("GPU completed %d of %d test cases (paper: 106 of 144)\n",
              gpu_cases - gpu_failures, gpu_cases);
  std::printf("shape checks: %s (%d violations)\n\n",
              violations == 0 ? "ALL HOLD" : "VIOLATED", violations);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return violations == 0 ? 0 : 1;
}
