// Figure 6 reproduction: maximum global device memory reserved for buffers
// during the Figure 5 runs, against the scaled M2050 capacity line
// (48 MiB = 3 GiB / 64). Cases whose high-water would exceed the capacity
// fail on the GPU (gray series); the CPU column shows the memory a device
// would need to succeed.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "support/string_util.hpp"

namespace {

void run_figure6(int& violations) {
  const auto catalog = dfg::mesh::subgrid_catalog(dfgbench::kAxisScale);
  const std::size_t gpu_capacity = dfgbench::scaled_gpu().global_mem_bytes;
  std::printf("GPU capacity line: %s\n\n",
              dfg::support::format_bytes(gpu_capacity).c_str());

  dfg::vcl::Device cpu(dfgbench::scaled_cpu());
  dfg::vcl::Device gpu(dfgbench::scaled_gpu());

  for (const auto& expr : dfgbench::paper_expressions()) {
    std::printf("--- %s: device memory high-water (bytes) vs cells ---\n",
                expr.short_name);
    std::printf("%12s %14s %14s %14s %14s %6s\n", "cells", "roundtrip",
                "staged", "fusion", "reference", "GPU");
    for (const auto& info : catalog) {
      const dfg::mesh::RectilinearMesh mesh =
          dfg::mesh::RectilinearMesh::uniform(info.dims);
      const dfg::mesh::VectorField field =
          dfg::mesh::rayleigh_taylor_flow(mesh);

      std::size_t high_water[4] = {0, 0, 0, 0};
      char gpu_mark[5] = "FFFF";
      int idx = 0;
      for (const auto execution :
           {dfgbench::Execution::roundtrip, dfgbench::Execution::staged,
            dfgbench::Execution::fusion, dfgbench::Execution::reference}) {
        const auto cpu_result =
            dfgbench::run_case(mesh, field, expr, execution, cpu);
        const auto gpu_result =
            dfgbench::run_case(mesh, field, expr, execution, gpu);
        high_water[idx] = cpu_result.high_water_bytes;
        const bool fits = cpu_result.high_water_bytes <= gpu_capacity;
        if (gpu_result.failed) {
          gpu_mark[idx] = 'F';
          if (fits) ++violations;  // fitting cases must not fail
        } else if (gpu_result.degraded) {
          // DFGEN_FALLBACK rescue: only a non-fitting case may degrade,
          // and the degraded rung must itself fit.
          gpu_mark[idx] = 'd';
          if (fits) ++violations;
          if (gpu_result.high_water_bytes > gpu_capacity) ++violations;
        } else {
          // Strict success: the CPU-measured working set fits, and both
          // devices reserve identical buffers.
          gpu_mark[idx] = '.';
          if (!fits) ++violations;
          if (gpu_result.high_water_bytes != cpu_result.high_water_bytes) {
            ++violations;  // "GPU results are identical to the CPU results"
          }
        }
        ++idx;
      }
      std::printf("%12zu %14zu %14zu %14zu %14zu %s\n", info.cells,
                  high_water[0], high_water[1], high_water[2], high_water[3],
                  gpu_mark);
    }
    std::printf("(GPU column: roundtrip/staged/fusion/reference, "
                "'.'=ran, 'd'=degraded, 'F'=failed)\n\n");
  }
}

void BM_MemoryTrackedAllocation(benchmark::State& state) {
  // Allocation-path overhead of the capacity-enforcing tracker.
  dfg::vcl::Device device(dfgbench::scaled_cpu());
  const auto elements = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dfg::vcl::Buffer buffer = device.allocate(elements);
    benchmark::DoNotOptimize(buffer.device_view().data());
  }
}
BENCHMARK(BM_MemoryTrackedAllocation)->Arg(1 << 10)->Arg(1 << 18);

}  // namespace

int main(int argc, char** argv) {
  dfgbench::check_environment();
  std::printf("=== Figure 6: single-device memory usage ===\n");
  int violations = 0;
  run_figure6(violations);
  std::printf("memory consistency checks: %s (%d violations)\n\n",
              violations == 0 ? "ALL HOLD" : "VIOLATED", violations);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return violations == 0 ? 0 : 1;
}
