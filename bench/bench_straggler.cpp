// Straggler-injection study: the distributed engine under a slow rank.
//
// One rank of the cluster is slowed by a configurable factor starting at
// its first command; the table reports how the resilience layer answers:
//   * up to the block budget (4x) the slowdown is simply absorbed;
//   * past the budget but under the command watchdog's deadline (8x) the
//     blocks are speculatively re-executed on the least-loaded healthy
//     rank and the faster result wins (the duplicate stays charged);
//   * past the deadline every command is abandoned at a bounded watchdog
//     charge, the rank is quarantined, and its blocks migrate — the
//     acceptance bar is a critical path within 2x of the fault-free run
//     even with a 50x-slow rank.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "distrib/dist_engine.hpp"

namespace {

dfg::distrib::ClusterConfig cluster() {
  dfg::distrib::ClusterConfig config;
  config.nodes = 2;
  config.devices_per_node = 2;
  config.device_spec = dfgbench::scaled_gpu();
  return config;
}

dfg::distrib::DistributedReport run_with_slowdown(
    const dfg::mesh::RectilinearMesh& mesh,
    const dfg::mesh::VectorField& field, double factor) {
  dfg::distrib::ClusterConfig config = cluster();
  if (factor > 1.0) {
    config.fault_plan.slow_command_index = 1;  // slow from the first command
    config.fault_plan.slowdown_factor = factor;
    config.fault_rank = 0;
  }
  dfg::distrib::GridDecomposition decomposition(mesh.dims(), 2, 2, 2);
  dfg::distrib::DistributedEngine engine(mesh, decomposition, config);
  engine.bind_global("u", field.u);
  engine.bind_global("v", field.v);
  engine.bind_global("w", field.w);
  return engine.evaluate(dfg::expressions::kQCriterion,
                         dfg::runtime::StrategyKind::fusion);
}

int print_straggler_sweep() {
  std::printf(
      "=== Straggler injection: Q-criterion, 48^3, 8 blocks, "
      "2 nodes x 2 devices, rank 0 slowed ===\n");
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({48, 48, 48});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);

  std::printf("%9s %14s %9s %6s %6s %6s %6s %6s %6s\n", "slowdown",
              "critical [s]", "vs clean", "strag", "spec", "won", "t-out",
              "quar", "match");
  const dfg::distrib::DistributedReport clean =
      run_with_slowdown(mesh, field, 1.0);
  int failures = 0;
  for (const double factor : {1.0, 3.0, 6.0, 50.0}) {
    const dfg::distrib::DistributedReport report =
        run_with_slowdown(mesh, field, factor);
    const double ratio =
        report.max_rank_sim_seconds / clean.max_rank_sim_seconds;
    const bool match = report.values == clean.values;
    std::printf("%8.0fx %14.6f %8.2fx %6zu %6zu %6zu %6zu %6zu %6s\n",
                factor, report.max_rank_sim_seconds, ratio,
                report.straggler_blocks, report.speculative_executions,
                report.speculations_won, report.command_timeouts,
                report.quarantined_devices, match ? "yes" : "NO");
    if (!match) ++failures;
    // The acceptance bar: even a 50x-slow rank must not stretch the
    // critical path past 2x fault-free (quarantine + migration).
    if (factor >= 50.0 && ratio > 2.0 * (1.0 + 1e-9)) {
      std::printf("  !! critical path %.2fx exceeds the 2x bound\n", ratio);
      ++failures;
    }
  }
  std::printf("\n");
  return failures;
}

void BM_QuarantinedRank(benchmark::State& state) {
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({48, 48, 48});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  const double factor = static_cast<double>(state.range(0));
  double critical = 0.0;
  for (auto _ : state) {
    const auto report = run_with_slowdown(mesh, field, factor);
    critical = report.max_rank_sim_seconds;
  }
  state.counters["critical_ms"] = critical * 1e3;
}
BENCHMARK(BM_QuarantinedRank)->Arg(1)->Arg(6)->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dfgbench::check_environment();
  const int failures = print_straggler_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return failures == 0 ? 0 : 1;
}
