// Future-work study (paper §VI): "a comprehensive performance study of our
// framework in a distributed-memory parallel setting". Two sweeps over the
// Figure 7 workload:
//   * strong scaling — fixed 192^3 global grid, rank counts from 2 to 256
//    (two devices per node, as on Edge), critical-path simulated time and
//    parallel efficiency per point;
//   * multi-device single-node scaling — the fused Q-criterion split
//     across 1..8 devices of one node via the multi-device executor.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "distrib/dist_engine.hpp"
#include "runtime/multidevice.hpp"

namespace {

void print_strong_scaling() {
  std::printf("=== Strong scaling: Q-criterion, 192^3, fusion strategy ===\n");
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({192, 192, 192});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);

  std::printf("%7s %7s %16s %16s %12s\n", "nodes", "ranks",
              "critical [s]", "aggregate [s]", "efficiency");
  double t1 = 0.0;
  for (const std::size_t nodes : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    dfg::distrib::ClusterConfig config;
    config.nodes = nodes;
    config.devices_per_node = 2;
    config.device_spec = dfg::vcl::tesla_m2050();
    config.device_spec.global_mem_bytes /= 4096;  // 1/16 per axis scale

    dfg::distrib::GridDecomposition decomposition(mesh.dims(), 16, 16, 12);
    dfg::distrib::DistributedEngine engine(mesh, decomposition, config);
    engine.bind_global("u", field.u);
    engine.bind_global("v", field.v);
    engine.bind_global("w", field.w);
    const auto report = engine.evaluate(dfg::expressions::kQCriterion,
                                        dfg::runtime::StrategyKind::fusion);
    if (nodes == 1) t1 = report.max_rank_sim_seconds;
    const double efficiency =
        t1 / (report.max_rank_sim_seconds *
              static_cast<double>(report.ranks) / 2.0);
    std::printf("%7zu %7zu %16.5f %16.5f %11.1f%%\n", nodes, report.ranks,
                report.max_rank_sim_seconds, report.total_sim_seconds,
                100.0 * efficiency);
  }
  std::printf("\n");
}

void print_multi_device_scaling() {
  std::printf(
      "=== Multi-device single node: fused Q-criterion, 48x48x256 ===\n");
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({48, 48, 256});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  dfg::runtime::FieldBindings bindings;
  bindings.bind_mesh(mesh);
  bindings.bind("u", field.u);
  bindings.bind("v", field.v);
  bindings.bind("w", field.w);
  const dfg::dataflow::Network network(
      dfg::dataflow::build_network(dfg::expressions::kQCriterion));

  std::printf("%9s %16s %16s %10s\n", "devices", "critical [s]",
              "aggregate [s]", "speedup");
  double t1 = 0.0;
  for (const std::size_t count : {1u, 2u, 4u, 8u}) {
    std::vector<std::unique_ptr<dfg::vcl::Device>> devices;
    std::vector<dfg::vcl::Device*> device_ptrs;
    for (std::size_t d = 0; d < count; ++d) {
      devices.push_back(
          std::make_unique<dfg::vcl::Device>(dfgbench::scaled_gpu()));
      device_ptrs.push_back(devices.back().get());
    }
    std::vector<dfg::vcl::ProfilingLog> logs(count);
    const auto report = dfg::runtime::execute_multi_device_fusion(
        network, bindings, mesh.cell_count(), device_ptrs, logs);
    if (count == 1) t1 = report.critical_path_sim_seconds;
    std::printf("%9zu %16.5f %16.5f %9.2fx\n", count,
                report.critical_path_sim_seconds,
                report.aggregate_sim_seconds,
                t1 / report.critical_path_sim_seconds);
  }
  std::printf("\n");
}

void BM_DistributedQCrit(benchmark::State& state) {
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({96, 96, 96});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  dfg::distrib::ClusterConfig config;
  config.nodes = static_cast<std::size_t>(state.range(0));
  config.devices_per_node = 2;
  config.device_spec = dfgbench::scaled_gpu();
  double critical = 0.0;
  for (auto _ : state) {
    dfg::distrib::GridDecomposition decomposition(mesh.dims(), 4, 4, 4);
    dfg::distrib::DistributedEngine engine(mesh, decomposition, config);
    engine.bind_global("u", field.u);
    engine.bind_global("v", field.v);
    engine.bind_global("w", field.w);
    const auto report = engine.evaluate(dfg::expressions::kQCriterion,
                                        dfg::runtime::StrategyKind::fusion);
    critical = report.max_rank_sim_seconds;
  }
  state.counters["critical_ms"] = critical * 1e3;
}
BENCHMARK(BM_DistributedQCrit)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dfgbench::check_environment();
  print_strong_scaling();
  print_multi_device_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
