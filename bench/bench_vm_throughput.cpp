// VM throughput study: what the tiled interpreter and the bytecode
// optimizer buy over the seed element-at-a-time interpreter, and what the
// fused-program cache saves across repeated and distributed evaluations.
//
// Section 1 times the three paper expressions' fused kernels directly on
// host arrays (no virtual device in the loop): the element interpreter
// (run_scalar), the tiled interpreter (run) on the raw program, and the
// tiled interpreter on the optimized program. Outputs must be bit-identical
// across all three; in a full (non-smoke) run the optimized tiled
// interpreter must clear 5x the seed interpreter's cells/sec on the
// Q-criterion.
//
// Section 1 also runs the optimized program through the jit backend: the
// program is compiled to native code once (the cached path — compile time
// excluded, as in steady-state in-situ use), its output must stay
// bit-identical, and in a full run it must clear 3x the optimized tiled
// interpreter's cells/sec on the Q-criterion. If the toolchain is missing
// the jit column degrades to the VM (reported as "fallback": true) and the
// jit gate is skipped — fallback is never a failure.
//
// Section 2 counts fused-program cache traffic over repeated Engine
// evaluations and one distributed run: generator invocations (misses) must
// be at least 10x rarer than requests.
//
// Results land in BENCH_vm.json in the working directory. DFGEN_SMOKE=1
// shrinks the grid and skips the throughput thresholds (CI smoke run);
// correctness assertions always apply.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "distrib/decomposition.hpp"
#include "distrib/dist_engine.hpp"
#include "kernels/backend.hpp"
#include "kernels/generator.hpp"
#include "kernels/optimizer.hpp"
#include "kernels/program_cache.hpp"
#include "kernels/vm.hpp"
#include "runtime/bindings.hpp"

namespace {

using dfg::kernels::BufferBinding;
using dfg::kernels::Program;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ExprResult {
  std::string name;
  std::size_t cells = 0;
  double scalar_cells_per_sec = 0.0;
  double tiled_cells_per_sec = 0.0;
  double optimized_cells_per_sec = 0.0;
  double jit_cells_per_sec = 0.0;
  bool jit_fallback = false;  ///< toolchain missing: jit column is the VM
  std::size_t instructions_raw = 0;
  std::size_t instructions_optimized = 0;
  int registers_raw = 0;
  int registers_optimized = 0;

  double tiled_speedup() const {
    return tiled_cells_per_sec / scalar_cells_per_sec;
  }
  double optimized_speedup() const {
    return optimized_cells_per_sec / scalar_cells_per_sec;
  }
  /// The issue's gate: compiled code vs. the optimized tiled interpreter.
  double jit_speedup_vs_tiled() const {
    return jit_cells_per_sec / optimized_cells_per_sec;
  }
};

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

/// Times `fn` (which fills its output buffer) and returns the best seconds
/// over `reps` runs after one warmup.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  fn();  // warmup
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

ExprResult run_expression(const dfgbench::ExpressionCase& expr,
                          const dfg::mesh::RectilinearMesh& mesh,
                          const dfg::mesh::VectorField& field, int reps) {
  const dfg::dataflow::Network network(
      dfg::dataflow::build_network(expr.expression));
  const Program raw = dfg::kernels::generate_fused(network);
  const Program optimized = dfg::kernels::optimize_program(raw);

  dfg::runtime::FieldBindings bindings;
  bindings.bind_mesh(mesh);
  bindings.bind("u", field.u);
  bindings.bind("v", field.v);
  bindings.bind("w", field.w);
  std::vector<BufferBinding> inputs;
  for (const dfg::kernels::BufferParam& param : raw.params()) {
    const auto view = bindings.get(param.name);
    inputs.push_back({view.data(), view.size()});
  }

  const std::size_t n = mesh.cell_count();
  std::vector<float> out_scalar(n * raw.out_stride());
  std::vector<float> out_tiled(n * raw.out_stride());
  std::vector<float> out_opt(n * raw.out_stride());
  std::vector<float> out_jit(n * raw.out_stride());

  ExprResult result;
  result.name = expr.short_name;
  result.cells = n;
  result.instructions_raw = raw.code().size();
  result.instructions_optimized = optimized.code().size();
  result.registers_raw = raw.register_count();
  result.registers_optimized = optimized.register_count();

  const double scalar_s = best_seconds(reps, [&] {
    dfg::kernels::run_scalar(raw, inputs, out_scalar.data(),
                             out_scalar.size(), 0, n);
  });
  const double tiled_s = best_seconds(reps, [&] {
    dfg::kernels::run(raw, inputs, out_tiled.data(), out_tiled.size(), 0, n);
  });
  const double opt_s = best_seconds(reps, [&] {
    dfg::kernels::run(optimized, inputs, out_opt.data(), out_opt.size(), 0,
                      n);
  });

  // Jit column: compile once through the backend (the cached, steady-state
  // path), then time only the launches. A missing toolchain degrades this
  // to the VM kernel — recorded, not failed.
  const std::shared_ptr<const dfg::kernels::CompiledKernel> jit_kernel =
      dfg::kernels::backend_for(dfg::kernels::BackendKind::jit)
          ->prepare(optimized);
  result.jit_fallback =
      jit_kernel->kind() != dfg::kernels::BackendKind::jit;
  const double jit_s = best_seconds(reps, [&] {
    jit_kernel->run(optimized, inputs, out_jit.data(), out_jit.size(), 0, n);
  });

  if (!bits_equal(out_tiled, out_scalar) || !bits_equal(out_opt, out_scalar) ||
      !bits_equal(out_jit, out_scalar)) {
    std::fprintf(stderr,
                 "FAIL: %s tiled/optimized/jit output not bit-identical to "
                 "the element interpreter\n",
                 expr.short_name);
    std::exit(1);
  }

  result.scalar_cells_per_sec = static_cast<double>(n) / scalar_s;
  result.tiled_cells_per_sec = static_cast<double>(n) / tiled_s;
  result.optimized_cells_per_sec = static_cast<double>(n) / opt_s;
  result.jit_cells_per_sec = static_cast<double>(n) / jit_s;
  return result;
}

struct CacheResult {
  std::size_t engine_evaluations = 0;
  std::size_t engine_hits = 0;
  std::size_t engine_misses = 0;
  std::size_t distributed_hits = 0;
  std::size_t distributed_misses = 0;

  double invocation_reduction() const {
    const std::size_t requests = engine_hits + engine_misses +
                                 distributed_hits + distributed_misses;
    const std::size_t misses = engine_misses + distributed_misses;
    return misses == 0 ? static_cast<double>(requests)
                       : static_cast<double>(requests) /
                             static_cast<double>(misses);
  }
};

CacheResult run_cache_study(bool smoke) {
  dfg::kernels::ProgramCache::instance().clear();
  CacheResult result;

  // Repeated single-node evaluations of the same expression: the paper's
  // in-situ loop, one evaluation per time step.
  const dfg::mesh::RectilinearMesh mesh = dfg::mesh::RectilinearMesh::uniform(
      smoke ? dfg::mesh::Dims{8, 8, 8} : dfg::mesh::Dims{16, 16, 16});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  result.engine_evaluations = 20;
  for (std::size_t step = 0; step < result.engine_evaluations; ++step) {
    dfg::vcl::Device device(dfgbench::scaled_cpu());
    dfg::Engine engine(device, {dfg::runtime::StrategyKind::fusion, {}});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    const dfg::EvaluationReport report =
        engine.evaluate(dfg::expressions::kQCriterion);
    result.engine_hits += report.pipeline_cache_hits;
    result.engine_misses += report.pipeline_cache_misses;
  }

  // One distributed run: every block shares the cached pipeline.
  const dfg::mesh::RectilinearMesh global =
      dfg::mesh::RectilinearMesh::uniform({16, 16, 16});
  const dfg::mesh::VectorField gfield = dfg::mesh::rayleigh_taylor_flow(global);
  dfg::distrib::ClusterConfig config;
  config.nodes = 2;
  config.devices_per_node = 2;
  config.device_spec = dfgbench::scaled_cpu();
  dfg::distrib::DistributedEngine dist(
      global, dfg::distrib::GridDecomposition(global.dims(), 2, 2, 2),
      config);
  dist.bind_global("u", gfield.u);
  dist.bind_global("v", gfield.v);
  dist.bind_global("w", gfield.w);
  const dfg::distrib::DistributedReport dreport = dist.evaluate(
      dfg::expressions::kVorticityMagnitude,
      dfg::runtime::StrategyKind::fusion);
  result.distributed_hits = dreport.pipeline_cache_hits;
  result.distributed_misses = dreport.pipeline_cache_misses;
  return result;
}

void write_json(const std::vector<ExprResult>& exprs, const CacheResult& cache,
                bool smoke) {
  std::FILE* f = std::fopen("BENCH_vm.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_vm.json for writing\n");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"smoke\": %s,\n  \"expressions\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    const ExprResult& e = exprs[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"cells\": %zu,\n"
        "     \"scalar_cells_per_sec\": %.3e, \"tiled_cells_per_sec\": "
        "%.3e,\n"
        "     \"optimized_cells_per_sec\": %.3e,\n"
        "     \"jit_cells_per_sec\": %.3e, \"jit_fallback\": %s,\n"
        "     \"tiled_speedup\": %.2f, \"optimized_speedup\": %.2f,\n"
        "     \"jit_speedup_vs_tiled\": %.2f,\n"
        "     \"instructions\": {\"raw\": %zu, \"optimized\": %zu},\n"
        "     \"registers\": {\"raw\": %d, \"optimized\": %d}}%s\n",
        e.name.c_str(), e.cells, e.scalar_cells_per_sec,
        e.tiled_cells_per_sec, e.optimized_cells_per_sec,
        e.jit_cells_per_sec, e.jit_fallback ? "true" : "false",
        e.tiled_speedup(), e.optimized_speedup(), e.jit_speedup_vs_tiled(),
        e.instructions_raw, e.instructions_optimized,
        e.registers_raw, e.registers_optimized,
        i + 1 < exprs.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"cache\": {\n"
      "    \"engine_evaluations\": %zu,\n"
      "    \"engine_hits\": %zu, \"engine_misses\": %zu,\n"
      "    \"distributed_hits\": %zu, \"distributed_misses\": %zu,\n"
      "    \"invocation_reduction\": %.1f\n  }\n}\n",
      cache.engine_evaluations, cache.engine_hits, cache.engine_misses,
      cache.distributed_hits, cache.distributed_misses,
      cache.invocation_reduction());
  std::fclose(f);
}

}  // namespace

int main() {
  const bool smoke = dfg::support::env::get_flag("DFGEN_SMOKE");
  dfgbench::check_environment();

  const dfg::mesh::RectilinearMesh mesh = dfg::mesh::RectilinearMesh::uniform(
      smoke ? dfg::mesh::Dims{16, 16, 16} : dfg::mesh::Dims{64, 64, 64});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  const int reps = smoke ? 1 : 3;

  std::printf("=== VM throughput: %zu cells, %d timed reps ===\n",
              mesh.cell_count(), reps);
  std::printf("%-10s %14s %14s %14s %14s %8s %8s %8s\n", "expr",
              "scalar[c/s]", "tiled[c/s]", "optimized[c/s]", "jit[c/s]",
              "tile-x", "opt-x", "jit-x");
  std::vector<ExprResult> results;
  for (const dfgbench::ExpressionCase& expr : dfgbench::paper_expressions()) {
    const ExprResult r = run_expression(expr, mesh, field, reps);
    std::printf("%-10s %14.3e %14.3e %14.3e %14.3e %7.2fx %7.2fx %7.2fx%s\n",
                r.name.c_str(), r.scalar_cells_per_sec, r.tiled_cells_per_sec,
                r.optimized_cells_per_sec, r.jit_cells_per_sec,
                r.tiled_speedup(), r.optimized_speedup(),
                r.jit_speedup_vs_tiled(),
                r.jit_fallback ? "  (vm fallback)" : "");
    results.push_back(r);
  }

  const CacheResult cache = run_cache_study(smoke);
  std::printf(
      "\n=== Program cache: %zu engine evals + 1 distributed run ===\n",
      cache.engine_evaluations);
  std::printf("engine hits/misses: %zu/%zu, distributed: %zu/%zu, "
              "invocation reduction: %.1fx\n",
              cache.engine_hits, cache.engine_misses, cache.distributed_hits,
              cache.distributed_misses, cache.invocation_reduction());

  write_json(results, cache, smoke);
  std::printf("\nwrote BENCH_vm.json\n");

  // Correctness gates (bit-exactness already enforced per expression).
  if (cache.engine_misses + cache.distributed_misses == 0) {
    std::fprintf(stderr, "FAIL: expected at least one generator invocation\n");
    return 1;
  }
  if (cache.invocation_reduction() < 10.0) {
    std::fprintf(stderr,
                 "FAIL: cache cut generator invocations only %.1fx (< 10x)\n",
                 cache.invocation_reduction());
    return 1;
  }
  if (!smoke) {
    const ExprResult& qcrit = results.back();  // Q-Crit is the last case
    if (qcrit.optimized_speedup() < 5.0) {
      std::fprintf(stderr,
                   "FAIL: optimized tiled Q-criterion only %.2fx over the "
                   "element interpreter (< 5x)\n",
                   qcrit.optimized_speedup());
      return 1;
    }
    if (qcrit.jit_fallback) {
      std::printf("jit toolchain unavailable: 3x gate skipped "
                  "(fallback to the VM is by design)\n");
    } else if (qcrit.jit_speedup_vs_tiled() < 3.0) {
      std::fprintf(stderr,
                   "FAIL: jit Q-criterion only %.2fx over the optimized "
                   "tiled interpreter (< 3x)\n",
                   qcrit.jit_speedup_vs_tiled());
      return 1;
    }
  }
  std::printf("all throughput and cache gates passed\n");
  return 0;
}
