// Table II reproduction: host-to-device transfers (Dev-W), device-to-host
// transfers (Dev-R) and kernel executions (K-Exe) per expression and
// strategy, printed next to the paper's values. Also prints the Q-criterion
// network summary (Figure 4's dataflow) and, as google-benchmarks, the cost
// of the front-end work each evaluation performs (parse, network build,
// fusion codegen).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "dataflow/dot.hpp"
#include "expr/parser.hpp"
#include "kernels/generator.hpp"

namespace {

struct PaperRow {
  const char* expr;
  const char* strategy;
  std::size_t w, r, k;
};

constexpr PaperRow kPaper[] = {
    {"VelMag", "roundtrip", 11, 6, 6},   {"VelMag", "staged", 3, 1, 6},
    {"VelMag", "fusion", 3, 1, 1},       {"VortMag", "roundtrip", 32, 12, 12},
    {"VortMag", "staged", 7, 1, 18},     {"VortMag", "fusion", 7, 1, 1},
    {"Q-Crit", "roundtrip", 123, 57, 57}, {"Q-Crit", "staged", 7, 1, 67},
    {"Q-Crit", "fusion", 7, 1, 1},
};

void print_table2() {
  std::printf(
      "=== Table II: device events per expression and strategy ===\n");
  std::printf("%-10s %-10s | %6s %6s %6s | paper:  %5s %5s %5s | %s\n",
              "Expression", "Strategy", "Dev-W", "Dev-R", "K-Exe", "Dev-W",
              "Dev-R", "K-Exe", "match");
  const dfg::mesh::RectilinearMesh mesh =
      dfg::mesh::RectilinearMesh::uniform({8, 8, 8});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  dfg::vcl::Device device(dfgbench::scaled_cpu());

  std::size_t row_index = 0;
  bool all_match = true;
  for (const auto& expr : dfgbench::paper_expressions()) {
    for (const auto execution :
         {dfgbench::Execution::roundtrip, dfgbench::Execution::staged,
          dfgbench::Execution::fusion}) {
      const auto result =
          dfgbench::run_case(mesh, field, expr, execution, device);
      const PaperRow& paper = kPaper[row_index++];
      const bool match = result.dev_writes == paper.w &&
                         result.dev_reads == paper.r &&
                         result.kernel_execs == paper.k;
      all_match = all_match && match;
      std::printf(
          "%-10s %-10s | %6zu %6zu %6zu | paper:  %5zu %5zu %5zu | %s\n",
          expr.short_name, dfgbench::execution_name(execution),
          result.dev_writes, result.dev_reads, result.kernel_execs, paper.w,
          paper.r, paper.k, match ? "yes" : "NO");
    }
  }
  std::printf("Table II reproduction: %s\n\n",
              all_match ? "EXACT MATCH" : "MISMATCH");
}

void print_figure4() {
  std::printf("=== Figure 4: Q-criterion dataflow network summary ===\n");
  const auto spec =
      dfg::dataflow::build_network(dfg::expressions::kQCriterion);
  std::printf("sources: %zu (fields + constants), filters: %zu\n",
              spec.source_count(), spec.filter_count());
  std::printf(
      "network definition script (first lines, full dump available via "
      "EvaluationReport::network_script):\n");
  const std::string script = spec.to_script();
  std::size_t printed = 0, pos = 0;
  while (printed < 12 && pos < script.size()) {
    const std::size_t next = script.find('\n', pos);
    std::printf("  %s\n", script.substr(pos, next - pos).c_str());
    pos = next + 1;
    ++printed;
  }
  std::printf("  ... (%zu nodes total)\n", spec.nodes().size());
  // Render the actual Figure 4 diagram as Graphviz DOT.
  std::FILE* dot = std::fopen("q_criterion_network.dot", "w");
  if (dot != nullptr) {
    const std::string rendered =
        dfg::dataflow::to_dot(spec, {"q_criterion", true});
    std::fwrite(rendered.data(), 1, rendered.size(), dot);
    std::fclose(dot);
    std::printf("wrote q_criterion_network.dot (render with `dot -Tsvg`)\n");
  }
  std::printf("\n");
}

void BM_ParseQCriterion(benchmark::State& state) {
  for (auto _ : state) {
    auto script = dfg::expr::parse(dfg::expressions::kQCriterion);
    benchmark::DoNotOptimize(&script);
  }
}
BENCHMARK(BM_ParseQCriterion);

void BM_BuildNetworkQCriterion(benchmark::State& state) {
  const auto ast = dfg::expr::parse(dfg::expressions::kQCriterion);
  for (auto _ : state) {
    auto spec = dfg::dataflow::build_network(ast);
    benchmark::DoNotOptimize(&spec);
  }
}
BENCHMARK(BM_BuildNetworkQCriterion);

void BM_GenerateFusedQCriterion(benchmark::State& state) {
  const dfg::dataflow::Network network(
      dfg::dataflow::build_network(dfg::expressions::kQCriterion));
  for (auto _ : state) {
    auto program = dfg::kernels::generate_fused(network);
    benchmark::DoNotOptimize(&program);
  }
}
BENCHMARK(BM_GenerateFusedQCriterion);

}  // namespace

int main(int argc, char** argv) {
  dfgbench::check_environment();
  print_table2();
  print_figure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
