// Resident-buffer reuse study: what keeping bound arrays resident on the
// device buys for repeated-workload traffic.
//
// Section 1 — steady-state reuse: a client re-derives fields from one time
// step, cycling three paper expressions over the same bound u/v/w for 21
// steps (the in-situ visualization pattern). The cold baseline re-uploads
// every input on every step; the pooled run uploads each array once and
// hits residents afterwards. Gates: results bit-identical to the cold
// baseline at every step, warm steps move zero host-to-device bytes for
// pooled inputs, and total simulated device time at least 2x faster than
// the cold baseline end to end.
//
// Section 2 — mutating trace: every 5th step the host mutates u in place
// and announces it (Engine::invalidate), as a running simulation would
// between renders. The pooled run must re-upload exactly the invalidated
// array, stay bit-exact, and still come out ahead overall.
//
// Results land in BENCH_resident.json in the working directory.
// DFGEN_SMOKE=1 shrinks the grid; every gate still applies (the simulated
// clock is deterministic, so the speedup threshold is scale-free).
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

struct TraceResult {
  std::size_t steps = 0;
  double cold_sim_seconds = 0.0;
  double pooled_sim_seconds = 0.0;
  std::size_t cold_dev_writes = 0;
  std::size_t pooled_dev_writes = 0;
  std::size_t resident_hits = 0;
  std::size_t upload_bytes_saved = 0;
  std::size_t reuploads_after_invalidate = 0;
  bool bit_exact = true;

  double speedup() const { return cold_sim_seconds / pooled_sim_seconds; }
};

/// Runs the same expression trace through a cold engine and a pooled
/// engine on identical GPU-class devices, comparing bits per step. A
/// positive `mutate_every` sign-flips u in place (and announces it) before
/// those steps — on the host arrays both engines share, so both see it.
TraceResult run_trace(const dfg::mesh::RectilinearMesh& mesh,
                      dfg::mesh::VectorField& field, std::size_t steps,
                      std::size_t mutate_every) {
  TraceResult result;
  result.steps = steps;

  dfg::vcl::Device cold_device(dfgbench::scaled_gpu());
  dfg::Engine cold(cold_device, {});
  cold.bind_mesh(mesh);
  cold.bind("u", field.u);
  cold.bind("v", field.v);
  cold.bind("w", field.w);

  dfg::vcl::Device pooled_device(dfgbench::scaled_gpu());
  dfg::EngineOptions pooled_options;
  pooled_options.resident_pool = true;
  dfg::Engine pooled(pooled_device, pooled_options);
  pooled.bind_mesh(mesh);
  pooled.bind("u", field.u);
  pooled.bind("v", field.v);
  pooled.bind("w", field.w);

  const auto& expressions = dfgbench::paper_expressions();
  for (std::size_t step = 0; step < steps; ++step) {
    if (mutate_every != 0 && step != 0 && step % mutate_every == 0) {
      for (float& x : field.u) x = -x;
      cold.invalidate("u");
      pooled.invalidate("u");
    }
    const char* expression =
        expressions[step % expressions.size()].expression;
    const dfg::EvaluationReport want = cold.evaluate(expression);
    const dfg::EvaluationReport got = pooled.evaluate(expression);
    result.bit_exact = result.bit_exact && bits_equal(got.values, want.values);
    result.cold_sim_seconds += want.sim_seconds;
    result.pooled_sim_seconds += got.sim_seconds;
    result.cold_dev_writes += want.dev_writes;
    result.pooled_dev_writes += got.dev_writes;
    result.resident_hits += got.resident_hits;
    result.upload_bytes_saved += got.resident_upload_bytes_saved;
    if (mutate_every != 0 && step != 0 && step % mutate_every == 0) {
      result.reuploads_after_invalidate += got.dev_writes;
    }
  }
  return result;
}

void write_json(const TraceResult& steady, const TraceResult& mutating,
                bool smoke) {
  std::FILE* out = std::fopen("BENCH_resident.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_resident.json for writing\n");
    std::exit(1);
  }
  const auto section = [&](const char* name, const TraceResult& r,
                           const char* tail) {
    std::fprintf(
        out,
        "  \"%s\": {\n"
        "    \"steps\": %zu,\n"
        "    \"cold_sim_seconds\": %.6f, \"pooled_sim_seconds\": %.6f,\n"
        "    \"speedup\": %.2f,\n"
        "    \"cold_dev_writes\": %zu, \"pooled_dev_writes\": %zu,\n"
        "    \"resident_hits\": %zu, \"upload_bytes_saved\": %zu,\n"
        "    \"reuploads_after_invalidate\": %zu,\n"
        "    \"bit_exact\": %s\n  }%s\n",
        name, r.steps, r.cold_sim_seconds, r.pooled_sim_seconds, r.speedup(),
        r.cold_dev_writes, r.pooled_dev_writes, r.resident_hits,
        r.upload_bytes_saved, r.reuploads_after_invalidate,
        r.bit_exact ? "true" : "false", tail);
  };
  std::fprintf(out, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
  section("steady_state", steady, ",");
  section("mutating", mutating, "");
  std::fprintf(out, "}\n");
  std::fclose(out);
}

}  // namespace

int main() {
  const bool smoke = dfg::support::env::get_flag("DFGEN_SMOKE");
  dfgbench::check_environment();

  const dfg::mesh::RectilinearMesh mesh = dfg::mesh::RectilinearMesh::uniform(
      smoke ? dfg::mesh::Dims{16, 16, 16} : dfg::mesh::Dims{48, 48, 48});
  dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  const std::size_t steps = smoke ? 9 : 21;

  std::printf("=== Resident-buffer reuse: %zu cells, %zu-step trace ===\n",
              mesh.cell_count(), steps);

  const TraceResult steady = run_trace(mesh, field, steps, 0);
  std::printf(
      "steady state: cold %.6fs vs pooled %.6fs sim (%.2fx), "
      "uploads %zu -> %zu, %zu hits saved %zu bytes, bit-exact %s\n",
      steady.cold_sim_seconds, steady.pooled_sim_seconds, steady.speedup(),
      steady.cold_dev_writes, steady.pooled_dev_writes, steady.resident_hits,
      steady.upload_bytes_saved, steady.bit_exact ? "yes" : "NO");

  const TraceResult mutating = run_trace(mesh, field, steps, 5);
  std::printf(
      "mutating trace: cold %.6fs vs pooled %.6fs sim (%.2fx), "
      "uploads %zu -> %zu (re-uploads after invalidate %zu), bit-exact %s\n",
      mutating.cold_sim_seconds, mutating.pooled_sim_seconds,
      mutating.speedup(), mutating.cold_dev_writes, mutating.pooled_dev_writes,
      mutating.reuploads_after_invalidate, mutating.bit_exact ? "yes" : "NO");

  write_json(steady, mutating, smoke);
  std::printf("\nwrote BENCH_resident.json\n");

  // Gates: all deterministic (simulated clock), so they apply in smoke too.
  if (!steady.bit_exact || !mutating.bit_exact) {
    std::fprintf(stderr,
                 "FAIL: pooled results not bit-identical to the cold "
                 "baseline\n");
    return 1;
  }
  if (steady.pooled_dev_writes >= steady.cold_dev_writes) {
    std::fprintf(stderr,
                 "FAIL: pooling eliminated no uploads (%zu vs %zu cold)\n",
                 steady.pooled_dev_writes, steady.cold_dev_writes);
    return 1;
  }
  if (steady.resident_hits == 0 || steady.upload_bytes_saved == 0) {
    std::fprintf(stderr, "FAIL: steady-state trace never hit a resident\n");
    return 1;
  }
  if (mutating.reuploads_after_invalidate == 0) {
    std::fprintf(stderr,
                 "FAIL: invalidated array was never re-uploaded — the "
                 "mutation gate cannot have been exercised\n");
    return 1;
  }
  if (steady.speedup() < 2.0) {
    std::fprintf(stderr,
                 "FAIL: steady-state resident reuse only %.2fx the cold "
                 "baseline (< 2x end-to-end)\n",
                 steady.speedup());
    return 1;
  }
  if (mutating.speedup() <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: mutating trace came out behind the cold baseline "
                 "(%.2fx)\n",
                 mutating.speedup());
    return 1;
  }
  std::printf("all resident-reuse gates passed\n");
  return 0;
}
