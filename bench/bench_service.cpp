// Evaluation-service study: what admission control, request coalescing and
// fair-share scheduling buy when many tenants want derived fields from the
// same simulation state at once.
//
// Section 1 — coalescing throughput: 8 concurrent sessions each submit the
// same Q-criterion request (same mesh, same bound arrays). The coalescer
// must execute exactly ONE evaluation per burst and fan the result out;
// the gates require the results bit-identical to back-to-back serialized
// Engine::evaluate calls and, in a full run, service throughput at least
// 3x the serialized baseline.
//
// Section 2 — multi-tenant fairness and quotas: a weight-3 and a weight-1
// session flood the queue with distinct requests (coalescing off) and the
// dispatch order must interleave at the weight ratio; a quota-capped
// session must degrade to the streamed rung (chunks sized to its quota)
// instead of failing, bit-exact against the unconstrained reference.
//
// Results land in BENCH_service.json in the working directory.
// DFGEN_SMOKE=1 shrinks the grid and skips the throughput threshold;
// correctness gates (coalescing count, bit-exactness, degradation) always
// apply.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "runtime/planner.hpp"
#include "service/service.hpp"

namespace {

using dfg::service::EvalService;
using dfg::service::Request;
using dfg::service::RequestStatus;
using dfg::service::ServiceOptions;
using dfg::service::ServiceReport;
using dfg::service::ServiceSnapshot;
using dfg::service::Ticket;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

Request make_request(const dfg::mesh::RectilinearMesh& mesh,
                     const dfg::mesh::VectorField& field,
                     const char* expression, std::string session) {
  Request request;
  request.expression = expression;
  request.mesh = &mesh;
  request.fields = {{"u", field.u}, {"v", field.v}, {"w", field.w}};
  request.session = std::move(session);
  return request;
}

struct CoalesceResult {
  std::size_t sessions = 0;
  std::size_t rounds = 0;
  double serialized_seconds = 0.0;
  double service_seconds = 0.0;
  std::size_t evaluations_per_round = 0;
  std::size_t coalesced_fanout = 0;
  bool bit_exact = false;

  double speedup() const { return serialized_seconds / service_seconds; }
};

CoalesceResult run_coalescing_study(const dfg::mesh::RectilinearMesh& mesh,
                                    const dfg::mesh::VectorField& field,
                                    std::size_t rounds) {
  CoalesceResult result;
  result.sessions = 8;
  result.rounds = rounds;

  // Serialized baseline: one engine, 8 back-to-back evaluations — what 8
  // tenants cost without the service. Best-of-rounds wall time.
  std::vector<float> reference;
  double serialized_best = 1e30;
  for (std::size_t round = 0; round < rounds; ++round) {
    dfg::vcl::Device device(dfgbench::scaled_cpu());
    dfg::Engine engine(device, {});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < result.sessions; ++i) {
      dfg::EvaluationReport report =
          engine.evaluate(dfg::expressions::kQCriterion);
      if (round == 0 && i == 0) reference = std::move(report.values);
    }
    serialized_best = std::min(serialized_best, now_seconds() - t0);
  }
  result.serialized_seconds = serialized_best;

  // Service path: the same 8 requests submitted as a paused burst so the
  // coalescer sees all of them, then timed from dispatch to drain.
  double service_best = 1e30;
  for (std::size_t round = 0; round < rounds; ++round) {
    dfg::vcl::Device device(dfgbench::scaled_cpu());
    ServiceOptions options;
    options.start_paused = true;
    EvalService service({&device}, options);
    std::vector<Ticket> tickets;
    for (std::size_t s = 0; s < result.sessions; ++s) {
      tickets.push_back(
          service.submit(make_request(mesh, field, dfg::expressions::kQCriterion,
                                      "tenant-" + std::to_string(s))));
    }
    const double t0 = now_seconds();
    service.resume();
    service.drain();
    service_best = std::min(service_best, now_seconds() - t0);

    const ServiceSnapshot snap = service.snapshot();
    result.evaluations_per_round = snap.executed_evaluations;
    result.bit_exact = true;
    for (const Ticket& ticket : tickets) {
      const ServiceReport& report = ticket.wait();
      if (report.status != RequestStatus::completed) {
        std::fprintf(stderr, "FAIL: request did not complete: %s\n",
                     report.error.c_str());
        std::exit(1);
      }
      result.coalesced_fanout = report.coalesced_fanout;
      result.bit_exact =
          result.bit_exact && bits_equal(report.evaluation->values, reference);
    }
  }
  result.service_seconds = service_best;
  return result;
}

struct FairnessResult {
  std::size_t heavy_requests = 0;
  std::size_t light_requests = 0;
  int heavy_weight = 3;
  int light_weight = 1;
  /// Heavy dispatches among the first (heavy+light)/2 dispatch slots — the
  /// window where both sessions are backlogged and WRR ratios are visible.
  std::size_t heavy_in_first_half = 0;
  std::size_t first_half = 0;
};

FairnessResult run_fairness_study(const dfg::mesh::RectilinearMesh& mesh,
                                  const dfg::mesh::VectorField& field) {
  FairnessResult result;
  result.heavy_requests = 9;
  result.light_requests = 9;

  dfg::vcl::Device device(dfgbench::scaled_cpu());
  ServiceOptions options;
  options.start_paused = true;
  options.coalescing = false;
  EvalService service({&device}, options);
  service.configure_session("heavy", {result.heavy_weight, 0});
  service.configure_session("light", {result.light_weight, 0});

  std::vector<Ticket> heavy;
  std::vector<Ticket> light;
  for (std::size_t i = 0; i < result.heavy_requests; ++i) {
    heavy.push_back(service.submit(
        make_request(mesh, field, dfg::expressions::kDivergence, "heavy")));
  }
  for (std::size_t i = 0; i < result.light_requests; ++i) {
    light.push_back(service.submit(
        make_request(mesh, field, dfg::expressions::kHelicity, "light")));
  }
  service.resume();
  service.drain();

  // While both queues are backlogged (the first 12 dispatches: 9 heavy
  // turns arrive within them), heavy must hold a ~3:1 share.
  result.first_half = (result.heavy_requests + result.light_requests) / 2;
  for (const Ticket& ticket : heavy) {
    const ServiceReport& report = ticket.wait();
    if (report.status != RequestStatus::completed) {
      std::fprintf(stderr, "FAIL: fairness request failed: %s\n",
                   report.error.c_str());
      std::exit(1);
    }
    if (report.dispatch_index <= result.first_half) ++result.heavy_in_first_half;
  }
  for (const Ticket& ticket : light) ticket.wait();
  return result;
}

struct QuotaResult {
  std::size_t quota_bytes = 0;
  std::string landed_strategy;
  std::size_t degradations = 0;
  std::size_t quota_high_water = 0;
  bool bit_exact = false;
};

QuotaResult run_quota_study(const dfg::mesh::RectilinearMesh& mesh,
                            const dfg::mesh::VectorField& field) {
  QuotaResult result;
  const char* script = dfg::expressions::kQCriterion;
  const std::size_t cells = mesh.cell_count();

  dfg::dataflow::Network network(dfg::dataflow::build_network(script));
  dfg::runtime::FieldBindings bindings;
  bindings.bind_mesh(mesh);
  bindings.bind("u", field.u);
  bindings.bind("v", field.v);
  bindings.bind("w", field.w);
  const std::size_t fusion_bytes = dfg::runtime::estimate_high_water(
      network, bindings, cells, dfg::runtime::StrategyKind::fusion);
  result.quota_bytes = fusion_bytes - sizeof(float);

  std::vector<float> reference;
  {
    dfg::vcl::Device device(dfgbench::scaled_cpu());
    dfg::Engine engine(device, {});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    reference = engine.evaluate(script).values;
  }

  dfg::vcl::Device device(dfgbench::scaled_cpu());
  EvalService service({&device}, ServiceOptions{});
  service.configure_session("capped", {1, result.quota_bytes});
  Ticket ticket =
      service.submit(make_request(mesh, field, script, "capped"));
  const ServiceReport& report = ticket.wait();
  if (report.status != RequestStatus::completed) {
    std::fprintf(stderr, "FAIL: quota-capped request failed: %s\n",
                 report.error.c_str());
    std::exit(1);
  }
  result.landed_strategy = report.evaluation->strategy;
  result.degradations = report.evaluation->degradations.size();
  result.bit_exact = bits_equal(report.evaluation->values, reference);
  result.quota_high_water =
      service.snapshot().sessions.at("capped").quota_high_water_bytes;
  return result;
}

void write_json(const CoalesceResult& c, const FairnessResult& f,
                const QuotaResult& q, bool smoke) {
  std::FILE* out = std::fopen("BENCH_service.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_service.json for writing\n");
    std::exit(1);
  }
  std::fprintf(
      out,
      "{\n  \"smoke\": %s,\n"
      "  \"coalescing\": {\n"
      "    \"sessions\": %zu, \"rounds\": %zu,\n"
      "    \"serialized_seconds\": %.6f, \"service_seconds\": %.6f,\n"
      "    \"speedup\": %.2f,\n"
      "    \"evaluations_per_round\": %zu, \"coalesced_fanout\": %zu,\n"
      "    \"bit_exact\": %s\n  },\n",
      smoke ? "true" : "false", c.sessions, c.rounds, c.serialized_seconds,
      c.service_seconds, c.speedup(), c.evaluations_per_round,
      c.coalesced_fanout, c.bit_exact ? "true" : "false");
  std::fprintf(
      out,
      "  \"fairness\": {\n"
      "    \"weights\": {\"heavy\": %d, \"light\": %d},\n"
      "    \"requests\": {\"heavy\": %zu, \"light\": %zu},\n"
      "    \"heavy_in_first_half\": %zu, \"first_half\": %zu\n  },\n",
      f.heavy_weight, f.light_weight, f.heavy_requests, f.light_requests,
      f.heavy_in_first_half, f.first_half);
  std::fprintf(
      out,
      "  \"quota\": {\n"
      "    \"quota_bytes\": %zu, \"landed_strategy\": \"%s\",\n"
      "    \"degradations\": %zu, \"quota_high_water_bytes\": %zu,\n"
      "    \"bit_exact\": %s\n  }\n}\n",
      q.quota_bytes, q.landed_strategy.c_str(), q.degradations,
      q.quota_high_water, q.bit_exact ? "true" : "false");
  std::fclose(out);
}

}  // namespace

int main() {
  const bool smoke = dfg::support::env::get_flag("DFGEN_SMOKE");
  dfgbench::check_environment();

  const dfg::mesh::RectilinearMesh mesh = dfg::mesh::RectilinearMesh::uniform(
      smoke ? dfg::mesh::Dims{16, 16, 16} : dfg::mesh::Dims{48, 48, 48});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  const std::size_t rounds = smoke ? 1 : 3;

  std::printf("=== Evaluation service: %zu cells ===\n", mesh.cell_count());
  const CoalesceResult coalesce = run_coalescing_study(mesh, field, rounds);
  std::printf(
      "coalescing: %zu sessions, serialized %.4fs vs service %.4fs "
      "(%.2fx), %zu evaluation(s), fan-out %zu, bit-exact %s\n",
      coalesce.sessions, coalesce.serialized_seconds,
      coalesce.service_seconds, coalesce.speedup(),
      coalesce.evaluations_per_round, coalesce.coalesced_fanout,
      coalesce.bit_exact ? "yes" : "NO");

  const FairnessResult fairness = run_fairness_study(mesh, field);
  std::printf("fairness: heavy held %zu of the first %zu dispatch slots "
              "(weights %d:%d)\n",
              fairness.heavy_in_first_half, fairness.first_half,
              fairness.heavy_weight, fairness.light_weight);

  const QuotaResult quota = run_quota_study(mesh, field);
  std::printf("quota: capped at %zu bytes -> landed on %s after %zu "
              "degradation(s), high-water %zu, bit-exact %s\n",
              quota.quota_bytes, quota.landed_strategy.c_str(),
              quota.degradations, quota.quota_high_water,
              quota.bit_exact ? "yes" : "NO");

  write_json(coalesce, fairness, quota, smoke);
  std::printf("\nwrote BENCH_service.json\n");

  // Gates. Correctness always; the throughput threshold only in full runs.
  if (coalesce.evaluations_per_round != 1) {
    std::fprintf(stderr,
                 "FAIL: coalescer executed %zu evaluations for one "
                 "duplicate burst (want 1)\n",
                 coalesce.evaluations_per_round);
    return 1;
  }
  if (coalesce.coalesced_fanout != coalesce.sessions) {
    std::fprintf(stderr, "FAIL: fan-out %zu != %zu sessions\n",
                 coalesce.coalesced_fanout, coalesce.sessions);
    return 1;
  }
  if (!coalesce.bit_exact || !quota.bit_exact) {
    std::fprintf(stderr,
                 "FAIL: service results not bit-identical to the serialized "
                 "reference\n");
    return 1;
  }
  // Weight 3:1 → heavy owns 3/4 of contended slots; allow one slot of
  // slack for the rotation boundary.
  const std::size_t expected_heavy = fairness.first_half * 3 / 4;
  if (fairness.heavy_in_first_half + 1 < expected_heavy) {
    std::fprintf(stderr,
                 "FAIL: weight-3 session held only %zu of the first %zu "
                 "slots (want ~%zu)\n",
                 fairness.heavy_in_first_half, fairness.first_half,
                 expected_heavy);
    return 1;
  }
  if (quota.degradations < 1 ||
      quota.landed_strategy !=
          dfg::runtime::strategy_name(dfg::runtime::StrategyKind::streamed)) {
    std::fprintf(stderr,
                 "FAIL: quota-capped tenant landed on %s after %zu "
                 "degradations (want streamed after >= 1)\n",
                 quota.landed_strategy.c_str(), quota.degradations);
    return 1;
  }
  if (quota.quota_high_water > quota.quota_bytes) {
    std::fprintf(stderr, "FAIL: session exceeded its quota (%zu > %zu)\n",
                 quota.quota_high_water, quota.quota_bytes);
    return 1;
  }
  if (!smoke && coalesce.speedup() < 3.0) {
    std::fprintf(stderr,
                 "FAIL: coalesced service throughput only %.2fx the "
                 "serialized baseline (< 3x)\n",
                 coalesce.speedup());
    return 1;
  }
  std::printf("all service gates passed\n");
  return 0;
}
