// Sharded-service scale study: what the shard layer buys — and survives —
// under heavy-tailed traffic. Three sections, all driven by the seeded
// traffic generator so every run replays bit-for-bit:
//
// Section 1 — latency scaling: the same bursty Zipf trace (arrival times
// honoured with real sleeps) is replayed against a 1-shard and a 4-shard
// cluster. Arrival rate is calibrated to ~3x one shard's measured service
// rate, so the single shard drowns while the ring spreads the same load
// across four isolated device sets. Gate (full runs): 4-shard p99 <= 0.5x
// single-shard p99; always: zero sheds, zero failures.
//
// Section 2 — chaos differential: four shards, a seeded FaultPlan loses
// shard 1's device mid-trace. Every admitted request must still reach a
// terminal state (completed + shed == submitted, failed == 0 — the
// zero-lost-requests invariant), completions must be bit-exact against a
// single-Engine reference, the ring must have rerouted (reroutes >= 1) and
// the supervisor must have restarted the dead shard (restarts >= 1).
//
// Section 3 — overload control: one deliberately slow shard (2 ms
// straggler delay) behind a queue depth of 4 is flooded with an equal
// interactive/batch/speculative mix. The priority shed policy must shed
// strictly more speculative than interactive work, and a sampled shed must
// carry a positive retry-after hint.
//
// Results land in BENCH_scale.json. DFGEN_SMOKE=1 or --smoke shrinks the
// grid and trace and skips the latency-ratio threshold; the correctness
// and chaos gates always apply.
#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "shard/router.hpp"

namespace {

using dfg::shard::ClusterOptions;
using dfg::shard::ClusterSnapshot;
using dfg::shard::PriorityClass;
using dfg::shard::ShardReport;
using dfg::shard::ShardRequest;
using dfg::shard::ShardRequestStatus;
using dfg::shard::ShardRouter;
using dfg::shard::ShardTicket;
using dfg::shard::TrafficEvent;
using dfg::shard::TrafficOptions;

/// Ring salt chosen (deterministically, offline) so the 12-expression
/// catalog spreads its Zipf mass across all four shards: shares of
/// 0.35/0.11/0.19/0.36 instead of one shard owning most of the catalog.
constexpr std::uint64_t kClusterSeed = 1337;

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

/// The canonical expressions plus synthetic fillers: a wider catalog
/// smooths the Zipf skew across the ring so no single shard owns most of
/// the popular mass in the scaling study.
std::vector<std::string> make_catalog(std::size_t size) {
  std::vector<std::string> catalog = {
      dfg::expressions::kVelocityMagnitude,
      dfg::expressions::kVorticityMagnitude,
      dfg::expressions::kQCriterion,
      dfg::expressions::kDivergence,
      dfg::expressions::kHelicity,
  };
  for (std::size_t i = catalog.size(); i < size; ++i) {
    catalog.push_back("d = u * " + std::to_string(i + 2) +
                      ".0 + v * w - w * " + std::to_string(i) + ".0");
  }
  catalog.resize(size);
  return catalog;
}

ShardRequest make_request(const std::string& expression,
                          const dfg::mesh::RectilinearMesh& mesh,
                          const dfg::mesh::VectorField& field,
                          std::size_t session, PriorityClass priority) {
  ShardRequest request;
  request.expression = expression;
  request.mesh = &mesh;
  request.fields = {{"u", field.u}, {"v", field.v}, {"w", field.w}};
  request.session = "tenant-" + std::to_string(session);
  request.priority = priority;
  return request;
}

// --- Section 1: latency scaling ------------------------------------------

/// Measures one shard's steady completion latency (seconds per request)
/// so the trace's arrival rate can be pinned relative to service capacity.
double calibrate_service_seconds(const dfg::mesh::RectilinearMesh& mesh,
                                 const dfg::mesh::VectorField& field,
                                 const std::string& expression) {
  ClusterOptions options;
  options.shards = 1;
  options.cluster_seed = kClusterSeed;
  options.shard.service.coalescing = false;
  options.router.shard_queue_depth = 64;
  ShardRouter router(options);
  double total = 0.0;
  const std::size_t rounds = 6;
  for (std::size_t i = 0; i < rounds; ++i) {
    ShardTicket ticket = router.submit(
        make_request(expression, mesh, field, i, PriorityClass::interactive));
    const ShardReport& report = ticket.wait();
    if (report.status != ShardRequestStatus::completed) {
      std::fprintf(stderr, "FAIL: calibration request failed: %s\n",
                   report.error.c_str());
      std::exit(1);
    }
    if (i > 0) total += report.latency_seconds;  // drop the compile warmup
  }
  return std::max(total / static_cast<double>(rounds - 1), 5e-5);
}

struct ScalingRun {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
};

ScalingRun replay_trace(std::size_t shards,
                        const std::vector<TrafficEvent>& trace,
                        const std::vector<std::string>& catalog,
                        const dfg::mesh::RectilinearMesh& mesh,
                        const dfg::mesh::VectorField& field) {
  ClusterOptions options;
  options.shards = shards;
  options.cluster_seed = kClusterSeed;
  options.shard.service.coalescing = false;
  // The latency study measures queueing, not admission control: depth is
  // sized so even the speculative class limit (half the depth) clears the
  // whole trace and nothing sheds while the backlog grows.
  options.router.shard_queue_depth = trace.size() * 4;
  ShardRouter router(options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<ShardTicket> tickets;
  tickets.reserve(trace.size());
  for (const TrafficEvent& event : trace) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(event.at_seconds)));
    tickets.push_back(router.submit(make_request(catalog[event.expression],
                                                 mesh, field, event.session,
                                                 event.priority)));
  }
  router.drain();

  for (const ShardTicket& ticket : tickets) {
    const ShardReport& report = ticket.wait();
    if (report.status == ShardRequestStatus::failed) {
      std::fprintf(stderr, "FAIL: scaling request failed: %s\n",
                   report.error.c_str());
      std::exit(1);
    }
  }
  const ClusterSnapshot snap = router.snapshot();
  ScalingRun run;
  run.submitted = snap.submitted;
  run.completed = snap.completed;
  run.shed = snap.shed;
  run.failed = snap.failed;
  run.p50_ns = snap.latency_p50_ns;
  run.p99_ns = snap.latency_p99_ns;
  run.p999_ns = snap.latency_p999_ns;
  return run;
}

// --- Section 2: chaos differential ---------------------------------------

struct ChaosResult {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t restarts = 0;
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t journal_serves = 0;
  std::size_t journal_entries = 0;
  std::size_t lose_device_after = 0;
  std::size_t victim_shard = 0;
  bool bit_exact = true;
};

ChaosResult run_chaos(const std::vector<TrafficEvent>& trace,
                      const std::vector<std::string>& catalog,
                      const dfg::mesh::RectilinearMesh& mesh,
                      const dfg::mesh::VectorField& field) {
  // Single-Engine references, one per catalog entry (all sessions bind the
  // same arrays, so expression identity is result identity).
  std::map<std::size_t, std::vector<float>> references;
  {
    dfg::vcl::Device device(dfgbench::scaled_cpu());
    dfg::Engine engine(device, {});
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      references[i] = engine.evaluate(catalog[i]).values;
    }
  }

  const std::filesystem::path journal_dir =
      std::filesystem::temp_directory_path() /
      ("dfgen-bench-shard-" + std::to_string(::getpid()));
  std::filesystem::remove_all(journal_dir);
  std::filesystem::create_directories(journal_dir);

  ChaosResult result;
  // Fault counters reset every evaluation (FaultInjector::begin_run), so
  // the loss must land inside one evaluation's command stream: a fusion
  // evaluation issues ~5 commands (3 writes, kernel, read), and loss is
  // sticky once it fires. The victim is whichever shard owns the most
  // popular expression — guaranteed traffic, so it dies mid-evaluation
  // early in the trace.
  result.lose_device_after = 4;
  ClusterOptions options;
  options.shards = 4;
  options.cluster_seed = kClusterSeed;
  options.shard.service.coalescing = false;
  options.router.shard_queue_depth = trace.size() * 4;
  options.router.hedge_after_seconds = 0.05;
  options.journal_dir = journal_dir.string();
  {
    const dfg::shard::HashRing ring(options.shards,
                                    options.router.virtual_nodes,
                                    options.cluster_seed);
    const dfg::dataflow::Network net(
        dfg::dataflow::build_network(catalog.front(), {}));
    result.victim_shard = ring.owner(net.fingerprint());
  }
  options.shard_fault_plans.resize(options.shards);
  options.shard_fault_plans[result.victim_shard].seed = 2026;
  options.shard_fault_plans[result.victim_shard].lose_device_after =
      result.lose_device_after;

  {
    ShardRouter router(options);
    std::vector<ShardTicket> tickets;
    std::vector<std::size_t> expressions;
    tickets.reserve(trace.size());
    for (const TrafficEvent& event : trace) {
      tickets.push_back(router.submit(make_request(catalog[event.expression],
                                                   mesh, field, event.session,
                                                   event.priority)));
      expressions.push_back(event.expression);
    }
    router.drain();

    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const ShardReport& report = tickets[i].wait();
      if (report.status == ShardRequestStatus::completed) {
        result.bit_exact =
            result.bit_exact && report.evaluation != nullptr &&
            bits_equal(report.evaluation->values, references[expressions[i]]);
      } else if (report.status == ShardRequestStatus::failed) {
        std::fprintf(stderr, "chaos: request %zu failed: %s\n", i,
                     report.error.c_str());
      }
    }

    // The supervisor restarts the dead shard asynchronously (drain the
    // outage, swap the board, re-warm from the journal); give it a bounded
    // window to finish before snapshotting.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (router.snapshot().restarts == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    const ClusterSnapshot snap = router.snapshot();
    result.submitted = snap.submitted;
    result.completed = snap.completed;
    result.shed = snap.shed;
    result.failed = snap.failed;
    result.reroutes = snap.reroutes;
    result.hedges_launched = snap.hedges_launched;
    result.hedges_won = snap.hedges_won;
    result.restarts = snap.restarts;
    result.heartbeat_misses = snap.heartbeat_misses;
    result.journal_serves = snap.journal_serves;
    result.journal_entries = router.journal().entries();
  }
  std::filesystem::remove_all(journal_dir);
  return result;
}

// --- Section 3: overload control -----------------------------------------

struct OverloadResult {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::array<std::uint64_t, 3> shed_by_class{};
  double retry_after_sample = 0.0;
  std::string sample_message;
};

OverloadResult run_overload(const dfg::mesh::RectilinearMesh& mesh,
                            const dfg::mesh::VectorField& field) {
  OverloadResult result;
  ClusterOptions options;
  options.shards = 1;
  options.cluster_seed = kClusterSeed;
  options.shard.service.coalescing = false;
  options.shard.synthetic_delay_seconds = 0.002;  // a deliberate straggler
  options.router.shard_queue_depth = 4;
  options.router.shed_policy = "priority";
  ShardRouter router(options);

  const std::array<PriorityClass, 3> classes = {PriorityClass::interactive,
                                                PriorityClass::batch,
                                                PriorityClass::speculative};
  std::vector<ShardTicket> tickets;
  for (std::size_t i = 0; i < 60; ++i) {
    tickets.push_back(router.submit(
        make_request(dfg::expressions::kVelocityMagnitude, mesh, field,
                     i % 4, classes[i % classes.size()])));
  }
  router.drain();

  for (const ShardTicket& ticket : tickets) {
    const ShardReport& report = ticket.wait();
    if (report.status == ShardRequestStatus::shed && report.admission &&
        result.retry_after_sample == 0.0) {
      result.retry_after_sample = report.admission->retry_after_seconds;
      result.sample_message = report.admission->message();
    }
  }
  const ClusterSnapshot snap = router.snapshot();
  result.submitted = snap.submitted;
  result.completed = snap.completed;
  result.failed = snap.failed;
  result.shed_by_class = snap.shed_by_class;
  return result;
}

// --- Output ---------------------------------------------------------------

void write_json(bool smoke, double calibrated_seconds,
                double interarrival_seconds, std::size_t trace_requests,
                const ScalingRun& single, const ScalingRun& four,
                const ChaosResult& chaos, const OverloadResult& overload) {
  std::FILE* out = std::fopen("BENCH_scale.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_scale.json for writing\n");
    std::exit(1);
  }
  const double ratio =
      single.p99_ns == 0
          ? 0.0
          : static_cast<double>(four.p99_ns) / static_cast<double>(single.p99_ns);
  std::fprintf(
      out,
      "{\n  \"smoke\": %s,\n"
      "  \"scaling\": {\n"
      "    \"requests\": %zu,\n"
      "    \"calibrated_service_seconds\": %.6f,\n"
      "    \"mean_interarrival_seconds\": %.6f,\n"
      "    \"single_shard\": {\"completed\": %llu, \"shed\": %llu, "
      "\"failed\": %llu, \"p50_ns\": %llu, \"p99_ns\": %llu, "
      "\"p999_ns\": %llu},\n"
      "    \"four_shards\": {\"completed\": %llu, \"shed\": %llu, "
      "\"failed\": %llu, \"p50_ns\": %llu, \"p99_ns\": %llu, "
      "\"p999_ns\": %llu},\n"
      "    \"p99_ratio\": %.4f\n  },\n",
      smoke ? "true" : "false", trace_requests, calibrated_seconds,
      interarrival_seconds,
      static_cast<unsigned long long>(single.completed),
      static_cast<unsigned long long>(single.shed),
      static_cast<unsigned long long>(single.failed),
      static_cast<unsigned long long>(single.p50_ns),
      static_cast<unsigned long long>(single.p99_ns),
      static_cast<unsigned long long>(single.p999_ns),
      static_cast<unsigned long long>(four.completed),
      static_cast<unsigned long long>(four.shed),
      static_cast<unsigned long long>(four.failed),
      static_cast<unsigned long long>(four.p50_ns),
      static_cast<unsigned long long>(four.p99_ns),
      static_cast<unsigned long long>(four.p999_ns), ratio);
  std::fprintf(
      out,
      "  \"chaos\": {\n"
      "    \"shards\": 4, \"victim_shard\": %zu, \"lose_device_after\": %zu,\n"
      "    \"submitted\": %llu, \"completed\": %llu, \"shed\": %llu, "
      "\"failed\": %llu,\n"
      "    \"reroutes\": %llu, \"hedges_launched\": %llu, "
      "\"hedges_won\": %llu,\n"
      "    \"restarts\": %llu, \"heartbeat_misses\": %llu,\n"
      "    \"journal_serves\": %llu, \"journal_entries\": %zu,\n"
      "    \"bit_exact\": %s\n  },\n",
      chaos.victim_shard, chaos.lose_device_after,
      static_cast<unsigned long long>(chaos.submitted),
      static_cast<unsigned long long>(chaos.completed),
      static_cast<unsigned long long>(chaos.shed),
      static_cast<unsigned long long>(chaos.failed),
      static_cast<unsigned long long>(chaos.reroutes),
      static_cast<unsigned long long>(chaos.hedges_launched),
      static_cast<unsigned long long>(chaos.hedges_won),
      static_cast<unsigned long long>(chaos.restarts),
      static_cast<unsigned long long>(chaos.heartbeat_misses),
      static_cast<unsigned long long>(chaos.journal_serves),
      chaos.journal_entries, chaos.bit_exact ? "true" : "false");
  std::fprintf(
      out,
      "  \"overload\": {\n"
      "    \"submitted\": %llu, \"completed\": %llu, \"failed\": %llu,\n"
      "    \"shed_interactive\": %llu, \"shed_batch\": %llu, "
      "\"shed_speculative\": %llu,\n"
      "    \"retry_after_sample_seconds\": %.6f\n  }\n}\n",
      static_cast<unsigned long long>(overload.submitted),
      static_cast<unsigned long long>(overload.completed),
      static_cast<unsigned long long>(overload.failed),
      static_cast<unsigned long long>(overload.shed_by_class[0]),
      static_cast<unsigned long long>(overload.shed_by_class[1]),
      static_cast<unsigned long long>(overload.shed_by_class[2]),
      overload.retry_after_sample);
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = dfg::support::env::get_flag("DFGEN_SMOKE");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  dfgbench::check_environment();

  const dfg::mesh::RectilinearMesh mesh = dfg::mesh::RectilinearMesh::uniform(
      smoke ? dfg::mesh::Dims{12, 12, 12} : dfg::mesh::Dims{24, 24, 24});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  const std::vector<std::string> catalog = make_catalog(12);

  std::printf("=== Sharded service at scale: %zu cells, %zu expressions ===\n",
              mesh.cell_count(), catalog.size());

  // Section 1 — calibrate, then replay the same trace at 1 and 4 shards.
  const double service_seconds =
      calibrate_service_seconds(mesh, field, catalog.front());
  TrafficOptions traffic;
  traffic.seed = 42;
  // Burst dwell averages triple the base rate; aim the aggregate at ~2x one
  // shard's capacity: the single shard saturates (backlog grows for the
  // whole trace) while the hottest ring shard (~0.36 of the Zipf mass)
  // stays below capacity and keeps its queue short.
  traffic.mean_interarrival_seconds = 1.5 * service_seconds;
  // Bound the trace so the saturated single shard's tail latency stays
  // well under the latency histogram's top bucket (~4.3 s) — a clamped
  // quantile would flatten the very ratio the gate measures.
  const double effective_gap = traffic.mean_interarrival_seconds / 3.0;
  const std::size_t full_requests = std::clamp<std::size_t>(
      static_cast<std::size_t>(4.0 / std::max(effective_gap, 1e-6)), 300,
      1200);
  traffic.requests = smoke ? 240 : full_requests;
  const std::vector<TrafficEvent> trace =
      dfg::shard::generate_trace(traffic, catalog.size());

  std::printf("calibrated %.4fs per request; trace of %zu requests, "
              "mean gap %.4fs\n",
              service_seconds, trace.size(),
              traffic.mean_interarrival_seconds);

  const ScalingRun single = replay_trace(1, trace, catalog, mesh, field);
  const ScalingRun four = replay_trace(4, trace, catalog, mesh, field);
  std::printf("scaling: 1 shard p50/p99/p999 = %llu/%llu/%llu ns; "
              "4 shards = %llu/%llu/%llu ns\n",
              static_cast<unsigned long long>(single.p50_ns),
              static_cast<unsigned long long>(single.p99_ns),
              static_cast<unsigned long long>(single.p999_ns),
              static_cast<unsigned long long>(four.p50_ns),
              static_cast<unsigned long long>(four.p99_ns),
              static_cast<unsigned long long>(four.p999_ns));

  // Section 2 — chaos: lose shard 1's device mid-trace.
  const ChaosResult chaos = run_chaos(trace, catalog, mesh, field);
  std::printf("chaos: %llu submitted, %llu completed, %llu shed, %llu "
              "failed; %llu reroute(s), %llu restart(s), %llu hedge(s), "
              "bit-exact %s\n",
              static_cast<unsigned long long>(chaos.submitted),
              static_cast<unsigned long long>(chaos.completed),
              static_cast<unsigned long long>(chaos.shed),
              static_cast<unsigned long long>(chaos.failed),
              static_cast<unsigned long long>(chaos.reroutes),
              static_cast<unsigned long long>(chaos.restarts),
              static_cast<unsigned long long>(chaos.hedges_launched),
              chaos.bit_exact ? "yes" : "NO");

  // Section 3 — overload shedding.
  const OverloadResult overload = run_overload(mesh, field);
  std::printf("overload: sheds interactive/batch/speculative = "
              "%llu/%llu/%llu; sample retry-after %.4fs\n",
              static_cast<unsigned long long>(overload.shed_by_class[0]),
              static_cast<unsigned long long>(overload.shed_by_class[1]),
              static_cast<unsigned long long>(overload.shed_by_class[2]),
              overload.retry_after_sample);

  write_json(smoke, service_seconds, traffic.mean_interarrival_seconds,
             trace.size(), single, four, chaos, overload);
  std::printf("\nwrote BENCH_scale.json\n");

  // Gates.
  if (single.failed != 0 || single.shed != 0 || four.failed != 0 ||
      four.shed != 0) {
    std::fprintf(stderr,
                 "FAIL: scaling study shed or failed requests (1-shard "
                 "shed %llu failed %llu, 4-shard shed %llu failed %llu)\n",
                 static_cast<unsigned long long>(single.shed),
                 static_cast<unsigned long long>(single.failed),
                 static_cast<unsigned long long>(four.shed),
                 static_cast<unsigned long long>(four.failed));
    return 1;
  }
  if (!smoke && four.p99_ns * 2 > single.p99_ns) {
    std::fprintf(stderr,
                 "FAIL: 4-shard p99 %llu ns not <= 0.5x single-shard p99 "
                 "%llu ns\n",
                 static_cast<unsigned long long>(four.p99_ns),
                 static_cast<unsigned long long>(single.p99_ns));
    return 1;
  }
  if (chaos.failed != 0 ||
      chaos.completed + chaos.shed != chaos.submitted) {
    std::fprintf(stderr,
                 "FAIL: chaos lost requests (%llu submitted, %llu "
                 "completed, %llu shed, %llu failed)\n",
                 static_cast<unsigned long long>(chaos.submitted),
                 static_cast<unsigned long long>(chaos.completed),
                 static_cast<unsigned long long>(chaos.shed),
                 static_cast<unsigned long long>(chaos.failed));
    return 1;
  }
  if (!chaos.bit_exact) {
    std::fprintf(stderr,
                 "FAIL: chaos completions not bit-identical to the "
                 "single-engine reference\n");
    return 1;
  }
  if (chaos.reroutes < 1) {
    std::fprintf(stderr, "FAIL: shard loss produced no reroutes\n");
    return 1;
  }
  if (chaos.restarts < 1) {
    std::fprintf(stderr,
                 "FAIL: supervisor never restarted the lost shard\n");
    return 1;
  }
  if (overload.completed + overload.shed_by_class[0] +
          overload.shed_by_class[1] + overload.shed_by_class[2] !=
      overload.submitted ||
      overload.failed != 0) {
    std::fprintf(stderr, "FAIL: overload study lost requests\n");
    return 1;
  }
  if (overload.shed_by_class[2] <= overload.shed_by_class[0]) {
    std::fprintf(stderr,
                 "FAIL: priority policy shed %llu speculative vs %llu "
                 "interactive (want strictly more speculative)\n",
                 static_cast<unsigned long long>(overload.shed_by_class[2]),
                 static_cast<unsigned long long>(overload.shed_by_class[0]));
    return 1;
  }
  if (overload.retry_after_sample <= 0.0) {
    std::fprintf(stderr, "FAIL: shed report carried no retry-after hint\n");
    return 1;
  }
  std::printf("all shard-scale gates passed\n");
  return 0;
}
