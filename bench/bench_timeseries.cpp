// Time-series evaluation study: what Engine::evaluate_series buys an
// in-situ consumer stepping a simulation, versus the naive loop that
// re-uploads every bound array on every step.
//
// The trace derives lambda2 (the heaviest CFD-library operator: three
// grad3d stencils feeding the closed-form symmetric eigensolve) from an
// ABC velocity field for T timesteps. Each step the "simulation" advances
// exactly one of the three velocity components in place — the four mesh
// arrays and the other two components are unchanged — and the series
// advance callback names it, so the resident pool re-uploads one array and
// serves the other six from device memory. The naive baseline runs the
// identical schedule through a pool-off engine, paying full upload cost
// per step.
//
// Gates (all deterministic — the simulated clock and transfer accounting
// are cost-model driven, so they hold in smoke mode too):
//   * every step's values bit-identical to the naive baseline,
//   * the naive loop moves >= 2x the host-to-device bytes of the series
//     (the incremental re-upload headline, with 1/3 of fields changing),
//   * the series finishes faster end to end in simulated time.
//
// Results land in BENCH_timeseries.json. Smoke mode: --smoke or
// DFGEN_SMOKE=1.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "vcl/event.hpp"

namespace {

constexpr const char* kExpression = "l2 = lambda2(u, v, w, dims, x, y, z)";
constexpr float kTwoPi = 6.28318530717958647692f;

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

/// Deterministic in-place advance of one velocity component — the same
/// schedule is replayed for the series run and the naive baseline.
void advance_component(dfg::mesh::VectorField& field, std::size_t step) {
  std::vector<float>* components[] = {&field.u, &field.v, &field.w};
  std::vector<float>& target = *components[step % 3];
  const float scale = 1.0f + 0.001f * static_cast<float>(step % 11);
  for (std::size_t i = 0; i < target.size(); ++i) {
    target[i] = target[i] * scale + 0.0005f * static_cast<float>(i % 13);
  }
}

const char* component_name(std::size_t step) {
  const char* names[] = {"u", "v", "w"};
  return names[step % 3];
}

struct SeriesResult {
  std::size_t steps = 0;
  std::size_t series_dev_writes = 0;
  std::size_t series_upload_bytes = 0;
  std::size_t naive_dev_writes = 0;
  std::size_t naive_upload_bytes = 0;
  std::size_t resident_hits = 0;
  std::size_t upload_bytes_saved = 0;
  double series_sim_seconds = 0.0;
  double naive_sim_seconds = 0.0;
  bool bit_exact = true;

  double speedup() const { return naive_sim_seconds / series_sim_seconds; }
  double upload_ratio() const {
    return static_cast<double>(naive_upload_bytes) /
           static_cast<double>(series_upload_bytes);
  }
};

SeriesResult run(const dfg::mesh::RectilinearMesh& mesh, std::size_t steps) {
  SeriesResult result;
  result.steps = steps;

  // Series run: one engine, pool on, the advance callback naming the one
  // mutated component per step.
  dfg::mesh::VectorField series_field = dfg::mesh::abc_flow(mesh);
  dfg::vcl::Device series_device(dfgbench::scaled_gpu());
  dfg::EngineOptions series_options;
  series_options.resident_pool = true;
  dfg::Engine series_engine(series_device, series_options);
  series_engine.bind_mesh(mesh);
  series_engine.bind("u", series_field.u);
  series_engine.bind("v", series_field.v);
  series_engine.bind("w", series_field.w);
  const dfg::SeriesReport series = series_engine.evaluate_series(
      kExpression, mesh.cell_count(), steps, [&](std::size_t step) {
        advance_component(series_field, step);
        return std::vector<std::string>{component_name(step)};
      });
  result.series_dev_writes = series.total_dev_writes;
  result.series_upload_bytes = series.total_upload_bytes;
  result.resident_hits = series.total_resident_hits;
  result.upload_bytes_saved = series.total_upload_bytes_saved;
  result.series_sim_seconds = series.total_sim_seconds;

  // Naive baseline: fresh field, identical advance schedule, pool off —
  // every step re-uploads all seven bound arrays.
  dfg::mesh::VectorField naive_field = dfg::mesh::abc_flow(mesh);
  dfg::vcl::Device naive_device(dfgbench::scaled_gpu());
  dfg::Engine naive_engine(naive_device, {});
  naive_engine.bind_mesh(mesh);
  naive_engine.bind("u", naive_field.u);
  naive_engine.bind("v", naive_field.v);
  naive_engine.bind("w", naive_field.w);
  for (std::size_t step = 0; step < steps; ++step) {
    if (step > 0) advance_component(naive_field, step);
    const dfg::EvaluationReport report =
        naive_engine.evaluate(kExpression, mesh.cell_count());
    result.naive_dev_writes += report.dev_writes;
    result.naive_upload_bytes +=
        naive_engine.log().bytes(dfg::vcl::EventKind::host_to_device);
    result.naive_sim_seconds += report.sim_seconds;
    result.bit_exact =
        result.bit_exact &&
        bits_equal(series.steps[step].values, report.values);
  }
  return result;
}

void write_json(const SeriesResult& r, bool smoke) {
  std::FILE* out = std::fopen("BENCH_timeseries.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_timeseries.json for writing\n");
    std::exit(1);
  }
  std::fprintf(
      out,
      "{\n"
      "  \"smoke\": %s,\n"
      "  \"expression\": \"lambda2(u, v, w, dims, x, y, z)\",\n"
      "  \"steps\": %zu,\n"
      "  \"series_dev_writes\": %zu, \"naive_dev_writes\": %zu,\n"
      "  \"series_upload_bytes\": %zu, \"naive_upload_bytes\": %zu,\n"
      "  \"upload_ratio\": %.2f,\n"
      "  \"resident_hits\": %zu, \"upload_bytes_saved\": %zu,\n"
      "  \"series_sim_seconds\": %.6f, \"naive_sim_seconds\": %.6f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"bit_exact\": %s\n"
      "}\n",
      smoke ? "true" : "false", r.steps, r.series_dev_writes,
      r.naive_dev_writes, r.series_upload_bytes, r.naive_upload_bytes,
      r.upload_ratio(), r.resident_hits, r.upload_bytes_saved,
      r.series_sim_seconds, r.naive_sim_seconds, r.speedup(),
      r.bit_exact ? "true" : "false");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = dfg::support::env::get_flag("DFGEN_SMOKE");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  dfgbench::check_environment();

  const dfg::mesh::RectilinearMesh mesh = dfg::mesh::RectilinearMesh::uniform(
      smoke ? dfg::mesh::Dims{16, 16, 16} : dfg::mesh::Dims{48, 48, 48},
      kTwoPi, kTwoPi, kTwoPi);
  const std::size_t steps = smoke ? 6 : 15;

  std::printf("=== Time-series evaluation: %zu cells, %zu steps, 1 of 3 "
              "velocity components advancing per step ===\n",
              mesh.cell_count(), steps);

  const SeriesResult r = run(mesh, steps);
  std::printf(
      "series: %zu uploads (%zu bytes), %zu resident hits saved %zu bytes, "
      "%.6fs sim\n",
      r.series_dev_writes, r.series_upload_bytes, r.resident_hits,
      r.upload_bytes_saved, r.series_sim_seconds);
  std::printf(
      "naive:  %zu uploads (%zu bytes), %.6fs sim\n"
      "upload ratio %.2fx, speedup %.2fx, bit-exact %s\n",
      r.naive_dev_writes, r.naive_upload_bytes, r.naive_sim_seconds,
      r.upload_ratio(), r.speedup(), r.bit_exact ? "yes" : "NO");

  write_json(r, smoke);
  std::printf("\nwrote BENCH_timeseries.json\n");

  if (!r.bit_exact) {
    std::fprintf(stderr,
                 "FAIL: series values not bit-identical to the naive "
                 "per-step baseline\n");
    return 1;
  }
  if (r.naive_upload_bytes < 2 * r.series_upload_bytes) {
    std::fprintf(stderr,
                 "FAIL: naive loop moved only %.2fx the series upload "
                 "bytes (< 2x with 1/3 of fields changing per step)\n",
                 r.upload_ratio());
    return 1;
  }
  if (r.speedup() <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: time-series mode came out behind the naive loop "
                 "(%.2fx)\n",
                 r.speedup());
    return 1;
  }
  std::printf("all time-series gates passed\n");
  return 0;
}
