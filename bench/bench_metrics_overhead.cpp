// Metrics overhead study: what the always-on observability layer costs.
//
// Section 1 times repeated Engine fusion evaluations of the Q-criterion in
// two arms, interleaved to cancel machine drift: metrics fully enabled
// (counters + gauges + histograms + spans) versus `set_enabled(false)`
// (counters only — the floor, since report structs are views over counter
// deltas and cannot be turned off). In a full (non-smoke) run the enabled
// arm must stay within 2% of the disabled arm's cells/sec.
//
// Section 2 re-runs the Table-II style workload under fresh registries at
// several worker-pool widths, twice each, and requires every JSON snapshot
// to be byte-identical: the exposition is deterministic across runs AND
// across `-j` parallelism because all values are integers summed from
// per-thread shards.
//
// Results land in BENCH_metrics.json; the run ends with the
// `dump_metrics()` summary table for the last enabled arm. DFGEN_SMOKE=1
// shrinks the grid and skips the overhead threshold (CI smoke run);
// determinism assertions always apply.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/program_cache.hpp"
#include "obs/metrics.hpp"
#include "support/parallel.hpp"

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One timed batch: `evals` fresh Engine evaluations under a private
/// registry with the gauge/histogram/span layer on or off. Returns wall
/// seconds for the batch (construction included in both arms equally).
double run_batch(bool metrics_on, std::size_t evals,
                 const dfg::mesh::RectilinearMesh& mesh,
                 const dfg::mesh::VectorField& field, bool dump_after) {
  dfg::obs::ScopedMetricsRegistry scoped;
  scoped.registry().set_enabled(metrics_on);
  const double t0 = now_seconds();
  for (std::size_t i = 0; i < evals; ++i) {
    dfg::vcl::Device device(dfgbench::scaled_cpu());
    dfg::EngineOptions options;
    options.strategy = dfg::runtime::StrategyKind::fusion;
    dfg::Engine engine(device, options);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    engine.evaluate(dfg::expressions::kQCriterion);
  }
  const double elapsed = now_seconds() - t0;
  if (dump_after) {
    std::printf("\n=== dump_metrics() after the last enabled batch ===\n");
    dfg::obs::dump_metrics(stdout);  // the scoped registry is current here
  }
  return elapsed;
}

struct OverheadResult {
  std::size_t cells = 0;
  std::size_t evals = 0;
  int reps = 0;
  double enabled_cells_per_sec = 0.0;
  double disabled_cells_per_sec = 0.0;

  double overhead_pct() const {
    return 100.0 *
           (disabled_cells_per_sec - enabled_cells_per_sec) /
           disabled_cells_per_sec;
  }
};

OverheadResult run_overhead_study(const dfg::mesh::RectilinearMesh& mesh,
                                  const dfg::mesh::VectorField& field,
                                  std::size_t evals, int reps) {
  OverheadResult result;
  result.cells = mesh.cell_count();
  result.evals = evals;
  result.reps = reps;

  run_batch(true, evals, mesh, field, false);   // warmup both arms
  run_batch(false, evals, mesh, field, false);
  double best_on = 1e30, best_off = 1e30;
  for (int r = 0; r < reps; ++r) {
    best_on = std::min(best_on, run_batch(true, evals, mesh, field,
                                          r + 1 == reps));
    best_off = std::min(best_off, run_batch(false, evals, mesh, field, false));
  }
  const double work =
      static_cast<double>(mesh.cell_count()) * static_cast<double>(evals);
  result.enabled_cells_per_sec = work / best_on;
  result.disabled_cells_per_sec = work / best_off;
  return result;
}

/// The Table-II style workload under a fresh registry at a given worker
/// count; returns the deterministic JSON snapshot.
std::string snapshot_at(int workers, const dfg::mesh::RectilinearMesh& mesh,
                        const dfg::mesh::VectorField& field) {
  dfg::support::set_worker_count(static_cast<std::size_t>(workers));
  dfg::kernels::ProgramCache::instance().clear();
  dfg::obs::ScopedMetricsRegistry scoped;
  for (const dfgbench::ExpressionCase& expr : dfgbench::paper_expressions()) {
    dfg::vcl::Device device(dfgbench::scaled_cpu());
    dfg::EngineOptions options;
    options.strategy = dfg::runtime::StrategyKind::fusion;
    dfg::Engine engine(device, options);
    engine.bind_mesh(mesh);
    engine.bind("u", field.u);
    engine.bind("v", field.v);
    engine.bind("w", field.w);
    engine.evaluate(expr.expression);
  }
  return scoped.registry().to_json();
}

bool run_determinism_study(const dfg::mesh::RectilinearMesh& mesh,
                           const dfg::mesh::VectorField& field) {
  const int worker_counts[] = {1, 3, 0};  // 0 = hardware default
  std::vector<std::string> snapshots;
  for (const int workers : worker_counts) {
    snapshots.push_back(snapshot_at(workers, mesh, field));
    snapshots.push_back(snapshot_at(workers, mesh, field));
  }
  dfg::support::set_worker_count(0);
  bool identical = true;
  for (const std::string& snapshot : snapshots) {
    identical = identical && snapshot == snapshots.front();
  }
  return identical;
}

void write_json(const OverheadResult& overhead, bool snapshots_identical,
                bool smoke) {
  std::FILE* f = std::fopen("BENCH_metrics.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_metrics.json for writing\n");
    std::exit(1);
  }
  std::fprintf(
      f,
      "{\n  \"smoke\": %s,\n"
      "  \"overhead\": {\n"
      "    \"cells\": %zu, \"evaluations\": %zu, \"reps\": %d,\n"
      "    \"enabled_cells_per_sec\": %.3e,\n"
      "    \"disabled_cells_per_sec\": %.3e,\n"
      "    \"overhead_pct\": %.2f\n  },\n"
      "  \"snapshots_byte_identical\": %s\n}\n",
      smoke ? "true" : "false", overhead.cells, overhead.evals, overhead.reps,
      overhead.enabled_cells_per_sec, overhead.disabled_cells_per_sec,
      overhead.overhead_pct(), snapshots_identical ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main() {
  const bool smoke = dfg::support::env::get_flag("DFGEN_SMOKE");
  dfgbench::check_environment();

  const dfg::mesh::RectilinearMesh mesh = dfg::mesh::RectilinearMesh::uniform(
      smoke ? dfg::mesh::Dims{16, 16, 16} : dfg::mesh::Dims{48, 48, 48});
  const dfg::mesh::VectorField field = dfg::mesh::rayleigh_taylor_flow(mesh);
  const std::size_t evals = smoke ? 3 : 10;
  const int reps = smoke ? 1 : 5;

  std::printf("=== Metrics overhead: %zu cells x %zu evals, %d reps ===\n",
              mesh.cell_count(), evals, reps);
  const OverheadResult overhead = run_overhead_study(mesh, field, evals, reps);
  std::printf(
      "enabled: %.3e cells/s, disabled: %.3e cells/s, overhead: %.2f%%\n",
      overhead.enabled_cells_per_sec, overhead.disabled_cells_per_sec,
      overhead.overhead_pct());

  const bool identical = run_determinism_study(mesh, field);
  std::printf("snapshot determinism (2 runs x 3 worker counts): %s\n",
              identical ? "byte-identical" : "DIVERGED");

  write_json(overhead, identical, smoke);
  std::printf("wrote BENCH_metrics.json\n");

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: JSON snapshots diverged across runs/worker counts\n");
    return 1;
  }
  if (!smoke && overhead.overhead_pct() >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: metrics layer costs %.2f%% throughput (>= 2%%)\n",
                 overhead.overhead_pct());
    return 1;
  }
  std::printf("all overhead and determinism gates passed\n");
  return 0;
}
