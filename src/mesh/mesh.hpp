// Mesh layer: rectilinear meshes and cell-centered fields.
//
// The paper's data sets are sub-grids of a 3072^3 rectilinear mesh carrying
// cell-centered velocity components (u, v, w) and per-axis point (node)
// coordinates (x, y, z). This module provides that mesh model plus the
// index arithmetic shared by the gradient primitive and the data
// generators.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dfg::mesh {

/// Cell counts per axis.
struct Dims {
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::size_t nz = 0;

  std::size_t cell_count() const { return nx * ny * nz; }
  bool operator==(const Dims&) const = default;
};

std::string to_string(const Dims& dims);

class RectilinearMesh {
 public:
  /// Mesh from explicit per-axis node coordinates (nx+1, ny+1, nz+1 values,
  /// strictly increasing). Throws Error on malformed axes.
  RectilinearMesh(std::vector<float> x_nodes, std::vector<float> y_nodes,
                  std::vector<float> z_nodes);

  /// Uniform mesh covering [0, extent] per axis with `dims` cells.
  static RectilinearMesh uniform(const Dims& dims, float extent_x = 1.0f,
                                 float extent_y = 1.0f, float extent_z = 1.0f);

  const Dims& dims() const { return dims_; }
  std::size_t cell_count() const { return dims_.cell_count(); }

  const std::vector<float>& x_nodes() const { return x_; }
  const std::vector<float>& y_nodes() const { return y_; }
  const std::vector<float>& z_nodes() const { return z_; }

  /// The 3-value dims array bound as the "dims" argument of grad3d.
  const std::vector<float>& dims_array() const { return dims_array_; }

  float x_center(std::size_t i) const { return 0.5f * (x_[i] + x_[i + 1]); }
  float y_center(std::size_t j) const { return 0.5f * (y_[j] + y_[j + 1]); }
  float z_center(std::size_t k) const { return 0.5f * (z_[k] + z_[k + 1]); }

  std::size_t cell_index(std::size_t i, std::size_t j, std::size_t k) const {
    return i + dims_.nx * (j + dims_.ny * k);
  }

  /// Problem-sized cell-center coordinate array for one axis (0 = x,
  /// 1 = y, 2 = z): one coordinate value per cell, in cell-index order.
  /// This is the coordinate representation the host pipeline hands to the
  /// framework alongside the fields (Table I's 24 bytes per cell = six
  /// float arrays: u, v, w, x, y, z).
  std::vector<float> cell_center_array(int axis) const;

 private:
  Dims dims_;
  std::vector<float> x_, y_, z_;
  std::vector<float> dims_array_;
};

/// A cell-centered vector field over a mesh, stored as three scalar arrays
/// — the layout simulation codes hand to the framework in situ.
struct VectorField {
  std::vector<float> u, v, w;
};

}  // namespace dfg::mesh
