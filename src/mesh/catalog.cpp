#include "mesh/catalog.hpp"

#include "support/error.hpp"

namespace dfg::mesh {

std::vector<SubgridInfo> subgrid_catalog(std::size_t axis_scale) {
  if (axis_scale == 0 || 192 % axis_scale != 0 || 256 % axis_scale != 0) {
    throw Error("axis_scale must divide 192 and 256");
  }
  std::vector<SubgridInfo> catalog;
  catalog.reserve(12);
  for (std::size_t k = 1; k <= 12; ++k) {
    SubgridInfo info;
    info.dims = Dims{192 / axis_scale, 192 / axis_scale,
                     256 * k / axis_scale};
    info.cells = info.dims.cell_count();
    info.data_bytes = info.cells * 6 * sizeof(float);
    catalog.push_back(info);
  }
  return catalog;
}

}  // namespace dfg::mesh
