// Mesh layer: synthetic flow-field generators.
//
// Substitutes for the LLNL Rayleigh-Taylor DNS dataset (Cabot & Cook 2006)
// the paper evaluates on. Two generators:
//
//  * rayleigh_taylor_flow — a deterministic multi-mode perturbed buoyant
//    flow with vortical roll-ups. It is not the DNS solution, but it
//    exercises the identical code path (same arrays, kernels, sizes) and
//    contains the vortical features the three detection expressions probe.
//
//  * abc_flow — the Arnold–Beltrami–Childress flow, a Beltrami field whose
//    curl equals itself (unit wavenumber). Its velocity gradient has a
//    closed form, giving the test suite exact references for grad3d,
//    vorticity magnitude and Q-criterion — something the paper's DNS data
//    could not provide.
#pragma once

#include <cstdint>

#include "mesh/mesh.hpp"

namespace dfg::mesh {

/// Deterministic RT-like vortical velocity field at cell centers.
VectorField rayleigh_taylor_flow(const RectilinearMesh& mesh,
                                 std::uint32_t seed = 7);

/// ABC flow sampled at cell centers:
///   u = A sin(z) + C cos(y)
///   v = B sin(x) + A cos(z)
///   w = C sin(y) + B cos(x)
/// Use a mesh spanning multiples of 2*pi for periodicity.
VectorField abc_flow(const RectilinearMesh& mesh, float a = 1.0f,
                     float b = 1.0f, float c = 1.0f);

/// Exact velocity-gradient tensor of the ABC flow at one point, row-major
/// J[r][c] = d(v_r)/d(x_c).
void abc_velocity_gradient(float x, float y, float z, float a, float b,
                           float c, float J[3][3]);

/// Exact vorticity vector of the ABC flow (Beltrami: equals the velocity).
void abc_vorticity(float x, float y, float z, float a, float b, float c,
                   float omega[3]);

/// Exact Q-criterion of the ABC flow at one point.
float abc_q_criterion(float x, float y, float z, float a, float b, float c);

}  // namespace dfg::mesh
