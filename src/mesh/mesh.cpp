#include "mesh/mesh.hpp"

#include "support/error.hpp"

namespace dfg::mesh {

std::string to_string(const Dims& dims) {
  return std::to_string(dims.nx) + "x" + std::to_string(dims.ny) + "x" +
         std::to_string(dims.nz);
}

namespace {
void check_axis(const std::vector<float>& nodes, const char* axis) {
  if (nodes.size() < 2) {
    throw Error(std::string("mesh axis ") + axis +
                " needs at least 2 node coordinates");
  }
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (!(nodes[i] > nodes[i - 1])) {
      throw Error(std::string("mesh axis ") + axis +
                  " coordinates must be strictly increasing");
    }
  }
}
}  // namespace

RectilinearMesh::RectilinearMesh(std::vector<float> x_nodes,
                                 std::vector<float> y_nodes,
                                 std::vector<float> z_nodes)
    : x_(std::move(x_nodes)), y_(std::move(y_nodes)), z_(std::move(z_nodes)) {
  check_axis(x_, "x");
  check_axis(y_, "y");
  check_axis(z_, "z");
  dims_ = Dims{x_.size() - 1, y_.size() - 1, z_.size() - 1};
  dims_array_ = {static_cast<float>(dims_.nx), static_cast<float>(dims_.ny),
                 static_cast<float>(dims_.nz)};
}

std::vector<float> RectilinearMesh::cell_center_array(int axis) const {
  if (axis < 0 || axis > 2) {
    throw Error("cell_center_array axis must be 0, 1 or 2");
  }
  std::vector<float> centers(cell_count());
  for (std::size_t k = 0; k < dims_.nz; ++k) {
    for (std::size_t j = 0; j < dims_.ny; ++j) {
      for (std::size_t i = 0; i < dims_.nx; ++i) {
        const float value = axis == 0   ? x_center(i)
                            : axis == 1 ? y_center(j)
                                        : z_center(k);
        centers[cell_index(i, j, k)] = value;
      }
    }
  }
  return centers;
}

RectilinearMesh RectilinearMesh::uniform(const Dims& dims, float extent_x,
                                         float extent_y, float extent_z) {
  if (dims.cell_count() == 0) {
    throw Error("uniform mesh requires positive cell counts");
  }
  const auto axis = [](std::size_t n, float extent) {
    std::vector<float> nodes(n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
      nodes[i] = extent * static_cast<float>(i) / static_cast<float>(n);
    }
    return nodes;
  };
  return RectilinearMesh(axis(dims.nx, extent_x), axis(dims.ny, extent_y),
                         axis(dims.nz, extent_z));
}

}  // namespace dfg::mesh
