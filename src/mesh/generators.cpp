#include "mesh/generators.hpp"

#include <cmath>

namespace dfg::mesh {

namespace {
constexpr float kTwoPi = 6.28318530717958647692f;

/// Small deterministic hash -> [0, 1) for reproducible mode phases.
float hash01(std::uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return static_cast<float>(x) / 4294967296.0f;
}
}  // namespace

VectorField rayleigh_taylor_flow(const RectilinearMesh& mesh,
                                 std::uint32_t seed) {
  const Dims& d = mesh.dims();
  VectorField field;
  field.u.resize(d.cell_count());
  field.v.resize(d.cell_count());
  field.w.resize(d.cell_count());

  // Multi-mode interface perturbation: a handful of transverse modes with
  // hashed phases, plus a vertical shear that rolls the interface up into
  // counter-rotating vortex sheets (the structures vortex detectors key on).
  constexpr int kModes = 5;
  float kx[kModes], ky[kModes], phase[kModes], amp[kModes];
  for (int m = 0; m < kModes; ++m) {
    kx[m] = kTwoPi * static_cast<float>(2 + m);
    ky[m] = kTwoPi * static_cast<float>(1 + (m * 2) % 5);
    phase[m] = kTwoPi * hash01(seed * 31u + static_cast<std::uint32_t>(m));
    amp[m] = 1.0f / static_cast<float>(1 + m);
  }

  const float z_extent = mesh.z_nodes().back() - mesh.z_nodes().front();
  const float z_mid = 0.5f * (mesh.z_nodes().back() + mesh.z_nodes().front());

  for (std::size_t k = 0; k < d.nz; ++k) {
    const float z = mesh.z_center(k);
    // Mixing-layer envelope: strongest motion near the interface.
    const float zn = (z - z_mid) / (0.25f * z_extent);
    const float envelope = std::exp(-zn * zn);
    for (std::size_t j = 0; j < d.ny; ++j) {
      const float y = mesh.y_center(j);
      for (std::size_t i = 0; i < d.nx; ++i) {
        const float x = mesh.x_center(i);
        float uu = 0.0f, vv = 0.0f, ww = 0.0f;
        for (int m = 0; m < kModes; ++m) {
          const float px = kx[m] * x + phase[m];
          const float py = ky[m] * y + 0.5f * phase[m];
          // Divergence-suppressed roll pattern per mode.
          uu += amp[m] * std::sin(px) * std::cos(py) * zn;
          vv += amp[m] * std::cos(px) * std::sin(py) * zn;
          ww += amp[m] * std::cos(px) * std::cos(py);
        }
        const std::size_t idx = mesh.cell_index(i, j, k);
        field.u[idx] = envelope * uu;
        field.v[idx] = envelope * vv;
        field.w[idx] = envelope * ww;
      }
    }
  }
  return field;
}

VectorField abc_flow(const RectilinearMesh& mesh, float a, float b, float c) {
  const Dims& d = mesh.dims();
  VectorField field;
  field.u.resize(d.cell_count());
  field.v.resize(d.cell_count());
  field.w.resize(d.cell_count());
  for (std::size_t k = 0; k < d.nz; ++k) {
    const float z = mesh.z_center(k);
    for (std::size_t j = 0; j < d.ny; ++j) {
      const float y = mesh.y_center(j);
      for (std::size_t i = 0; i < d.nx; ++i) {
        const float x = mesh.x_center(i);
        const std::size_t idx = mesh.cell_index(i, j, k);
        field.u[idx] = a * std::sin(z) + c * std::cos(y);
        field.v[idx] = b * std::sin(x) + a * std::cos(z);
        field.w[idx] = c * std::sin(y) + b * std::cos(x);
      }
    }
  }
  return field;
}

void abc_velocity_gradient(float x, float y, float z, float a, float b,
                           float c, float J[3][3]) {
  // u = A sin z + C cos y ; v = B sin x + A cos z ; w = C sin y + B cos x
  J[0][0] = 0.0f;
  J[0][1] = -c * std::sin(y);
  J[0][2] = a * std::cos(z);
  J[1][0] = b * std::cos(x);
  J[1][1] = 0.0f;
  J[1][2] = -a * std::sin(z);
  J[2][0] = -b * std::sin(x);
  J[2][1] = c * std::cos(y);
  J[2][2] = 0.0f;
}

void abc_vorticity(float x, float y, float z, float a, float b, float c,
                   float omega[3]) {
  // Beltrami property: curl(v) = v for unit wavenumber.
  omega[0] = a * std::sin(z) + c * std::cos(y);
  omega[1] = b * std::sin(x) + a * std::cos(z);
  omega[2] = c * std::sin(y) + b * std::cos(x);
}

float abc_q_criterion(float x, float y, float z, float a, float b, float c) {
  float J[3][3];
  abc_velocity_gradient(x, y, z, a, b, c, J);
  float s_norm = 0.0f;
  float w_norm = 0.0f;
  for (int r = 0; r < 3; ++r) {
    for (int col = 0; col < 3; ++col) {
      const float s = 0.5f * (J[r][col] + J[col][r]);
      const float w = 0.5f * (J[r][col] - J[col][r]);
      s_norm += s * s;
      w_norm += w * w;
    }
  }
  return 0.5f * (w_norm - s_norm);
}

}  // namespace dfg::mesh
