// Mesh layer: the Table I sub-grid catalog.
//
// The paper's single-device evaluation sweeps twelve sub-grids of the
// 3072^3 RT time step, 192x192x(256k) for k = 1..12, from 9.4M to 113.2M
// cells (218 MB to 2.6 GB). The reproduction runs the same sweep scaled by
// 1/4 per axis (1/64 of the cells), paired with 1/64-capacity devices from
// vcl::catalog so the memory-constraint behaviour is preserved (see
// DESIGN.md).
#pragma once

#include <cstddef>
#include <vector>

#include "mesh/mesh.hpp"

namespace dfg::mesh {

struct SubgridInfo {
  Dims dims;
  std::size_t cells = 0;
  /// Bytes of simulation data per sub-grid: the three cell-centered
  /// velocity components plus the three problem-sized point-coordinate
  /// arrays, in float32 (6 arrays x 4 B = 24 B/cell — matching Table I's
  /// reported sizes).
  std::size_t data_bytes = 0;
};

/// The paper's full-size Table I catalog (axis_scale = 1) or a scaled
/// variant (axis_scale = 4 gives the 48x48x(64k) evaluation grids).
std::vector<SubgridInfo> subgrid_catalog(std::size_t axis_scale = 1);

/// The axis scale used throughout the reproduction's benchmarks.
constexpr std::size_t kEvaluationAxisScale = 4;

}  // namespace dfg::mesh
