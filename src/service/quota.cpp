#include "service/quota.hpp"

#include "support/error.hpp"

namespace dfg::service {

void SessionUsage::charge(const std::string& label, std::size_t quota_bytes,
                          std::size_t bytes) {
  std::scoped_lock lock(mutex_);
  if (quota_bytes > 0 && bytes > quota_bytes - std::min(in_use_, quota_bytes)) {
    // Shaped exactly like a device-capacity failure so the fallback ladder
    // degrades; the "device" name makes the cause readable in reports.
    throw DeviceOutOfMemory("session '" + label + "' quota", bytes, in_use_,
                            quota_bytes);
  }
  in_use_ += bytes;
  if (in_use_ > high_water_) high_water_ = in_use_;
}

void SessionUsage::release(std::size_t bytes) {
  std::scoped_lock lock(mutex_);
  in_use_ = bytes > in_use_ ? 0 : in_use_ - bytes;
}

std::size_t SessionUsage::in_use() const {
  std::scoped_lock lock(mutex_);
  return in_use_;
}

std::size_t SessionUsage::high_water() const {
  std::scoped_lock lock(mutex_);
  return high_water_;
}

}  // namespace dfg::service
