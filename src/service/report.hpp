// Service layer: request / report / configuration types.
//
// The vocabulary of the concurrent evaluation service. A Request is what a
// tenant submits (expression, mesh binding, session identity, priority,
// deadline); a ServiceReport is what the tenant gets back (the shared
// EvaluationReport plus per-request scheduling metrics: queue wait,
// coalescing fan-out, dispatch order); a ServiceSnapshot aggregates the
// service-wide counters the benchmarks chart (admission rejections by
// cause, evaluations actually executed vs. requests served, degradations).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "mesh/mesh.hpp"
#include "runtime/fallback.hpp"
#include "runtime/strategy.hpp"

namespace dfg::service {

/// One named host array bound into a request. The view must stay valid
/// until the request's ticket completes (the service never copies inputs —
/// the paper's in-situ contract, §III-D, extended to multi-tenancy).
struct FieldRef {
  std::string name;
  std::span<const float> values;
};

/// One unit of work a tenant submits. The mesh and field views must
/// outlive the ticket.
struct Request {
  /// Expression script (the paper's network-definition language).
  std::string expression;
  /// Optional mesh binding: binds x/y/z/dims and supplies the default
  /// element count, exactly like Engine::bind_mesh.
  const mesh::RectilinearMesh* mesh = nullptr;
  std::vector<FieldRef> fields;
  /// Tenant identity; sessions are created on first use with the service
  /// defaults and arbitrated by the fair-share scheduler.
  std::string session = "default";
  /// Higher-priority requests dispatch before lower-priority ones *within
  /// the same session* (fairness across sessions is the scheduler's job).
  int priority = 0;
  runtime::StrategyKind strategy = runtime::StrategyKind::fusion;
  /// Output element count; 0 derives it from the mesh (or the first bound
  /// field the expression uses).
  std::size_t elements = 0;
  /// Per-request watchdog deadline: a command charged more than this many
  /// times its cost-model estimate is abandoned (vcl::Device watchdog), so
  /// a slow tenant degrades down the fallback ladder instead of starving
  /// the queue. 0 = the service default.
  double deadline_factor = 0.0;
};

enum class RequestStatus {
  queued,     ///< admitted, waiting for dispatch
  rejected,   ///< refused at admission (reject_reason says why)
  completed,  ///< evaluation produced a result
  failed,     ///< evaluation threw (error holds the message)
};

/// Everything one request produced. Coalesced requests share one
/// `evaluation` object (the fan-out is literal: one execution, N owners);
/// the scheduling metrics are per request.
struct ServiceReport {
  RequestStatus status = RequestStatus::queued;
  std::string session;
  /// Why admission refused the request (rejected status only).
  std::string reject_reason;
  /// The evaluation error that failed the request (failed status only).
  std::string error;
  /// Shared result of the (possibly coalesced) evaluation; null unless
  /// status == completed.
  std::shared_ptr<const EvaluationReport> evaluation;
  /// Wall-clock seconds between admission and dispatch.
  double queue_wait_seconds = 0.0;
  /// Requests served by the same evaluation (1 = not coalesced).
  std::size_t coalesced_fanout = 1;
  /// True for the request whose dispatch executed the evaluation; false
  /// for coalesced followers that rode along.
  bool coalesce_leader = true;
  /// 1-based order in which the batch containing this request was
  /// dispatched (0 = never dispatched). Exposes the fair-share schedule.
  std::size_t dispatch_index = 0;
  /// Index into the service's device list that executed the batch.
  int device_index = -1;
};

/// Per-session scheduler configuration.
struct SessionConfig {
  /// Weighted-round-robin share: a session with weight w dispatches w
  /// batches per scheduler cycle. Clamped to >= 1.
  int weight = 1;
  /// Device-memory quota (bytes of live vcl::Buffer allocations, enforced
  /// through the MemoryTracker accounting hook). 0 = unlimited.
  std::size_t quota_bytes = 0;
};

struct SessionStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t rejected = 0;
  /// Requests served as coalesced followers (no execution of their own).
  std::size_t coalesced = 0;
  /// Batches this session led (evaluations charged to it).
  std::size_t evaluations = 0;
  std::size_t degradations = 0;
  /// High-water of the session's live device bytes (quota accounting).
  std::size_t quota_high_water_bytes = 0;
  double queue_wait_seconds = 0.0;
};

/// Service-wide counters, all monotonic since construction. The scalar
/// fields are views over the service's `svc=<N>` metrics-registry series
/// (see obs/metrics.hpp); the per-session map is tracked in-service.
struct ServiceSnapshot {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_projection = 0;
  std::size_t rejected_quota = 0;
  /// Batches executed (each ran exactly one Engine::evaluate).
  std::size_t executed_evaluations = 0;
  std::size_t completed_requests = 0;
  std::size_t failed_requests = 0;
  /// Requests served without an execution of their own (fan-out wins).
  std::size_t coalesced_requests = 0;
  std::size_t degradations = 0;
  std::size_t command_timeouts = 0;
  std::size_t command_retries = 0;
  std::size_t injected_faults = 0;
  std::size_t max_queue_depth_seen = 0;
  double total_queue_wait_seconds = 0.0;
  /// Resident-buffer pool traffic across the service's devices since
  /// construction (zeros while ServiceOptions::resident_pool is off):
  /// per-device vcl::ResidentPool::stats() deltas against baselines taken
  /// when the service was built, so devices shared across services only
  /// report traffic this service caused.
  std::size_t resident_hits = 0;
  std::size_t resident_misses = 0;
  std::size_t resident_evictions = 0;
  std::size_t resident_invalidations = 0;
  std::size_t resident_upload_bytes_saved = 0;
  /// Cross-request subgraph memoizer traffic (views over the service's
  /// dfgen_memo_* registry series; all zero while memoization is off).
  /// A hit is a shared subtree served from the materialized-intermediate
  /// cache instead of recomputed; bytes/recompute-saved total what those
  /// hits avoided (materialized bytes, planner-estimated sim time).
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
  std::size_t memo_admits = 0;
  std::size_t memo_evictions = 0;
  std::size_t memo_invalidations = 0;
  std::size_t memo_bytes_saved = 0;
  std::size_t memo_recompute_saved_nanos = 0;
  /// Coalescer near-misses: admitted requests whose whole-network
  /// fingerprint differs from every queued/seen request's but which share
  /// at least one non-leaf subtree fingerprint — the memo hit-rate
  /// ceiling, counted whether or not memoization is enabled.
  std::size_t memo_candidate_requests = 0;
  std::map<std::string, SessionStats> sessions;
};

/// Service-level knobs. from_env() overlays the DFGEN_SERVICE_* variables
/// (registered with support::env so typos are caught).
struct ServiceOptions {
  /// Admission: total queued requests across all sessions.
  std::size_t max_queue_depth = 64;
  /// Admission: sum of queued requests' projected device-memory floors may
  /// not exceed this (0 = no backlog limit).
  std::size_t max_backlog_bytes = 0;
  /// Default quota for sessions not configured explicitly (0 = unlimited).
  std::size_t default_session_quota_bytes = 0;
  /// Batch key-equal concurrent requests into one evaluation.
  bool coalescing = true;
  /// Watchdog deadline factor applied when a request does not set one.
  double default_deadline_factor = 8.0;
  /// Degradation policy for every evaluation; resilient() by default so a
  /// quota-capped or slow tenant lands on a cheaper rung instead of
  /// failing (strict single-caller semantics stay available by disabling).
  runtime::FallbackPolicy fallback = runtime::FallbackPolicy::resilient();
  /// Construct with dispatch suspended; resume() starts the workers. Lets
  /// callers submit a burst atomically — the coalescer then sees the whole
  /// burst, which the tests use for determinism.
  bool start_paused = false;
  /// Keep tenants' field uploads resident on the service's devices across
  /// batches (vcl::ResidentPool): a tenant re-deriving fields from the
  /// same bound arrays skips their uploads, and dispatch prefers queued
  /// requests whose arrays are already warm on the picking worker's
  /// device. Off by default. Tenants that mutate a bound array between
  /// submissions must bump its tag (vcl::note_host_mutation). The per-
  /// evaluation env overrides still apply (DFGEN_NO_RESIDENT_POOL wins).
  bool resident_pool = false;
  /// Execution backend for every worker engine's device. Unset defers to
  /// DFGEN_BACKEND (resolved per evaluation).
  std::optional<kernels::BackendKind> backend;
  /// Memoize shared subtrees across *different* tenants' networks: batch
  /// leaders' plans are rewritten to serve repeated subtrees from a
  /// device-resident materialized-intermediate cache (memo::Memoizer).
  /// Off by default — the off path is byte-identical to previous
  /// releases. Env overrides, read per batch: DFGEN_MEMO=1 forces on,
  /// DFGEN_NO_MEMO=1 forces off (and wins).
  bool memo = false;
  /// Materialized-intermediate cache capacity in bytes. 0 = DFGEN_MEMO_CAP
  /// (megabytes) when set, else a quarter of the largest device's memory.
  std::size_t memo_cap_bytes = 0;

  /// Defaults overlaid with DFGEN_SERVICE_QUEUE_DEPTH,
  /// DFGEN_SERVICE_QUOTA_MB, DFGEN_SERVICE_BACKLOG_MB,
  /// DFGEN_SERVICE_COALESCE, DFGEN_SERVICE_RESIDENT_POOL and DFGEN_MEMO /
  /// DFGEN_MEMO_CAP.
  static ServiceOptions from_env();
};

}  // namespace dfg::service
