// Service layer: the concurrent multi-tenant evaluation front door.
//
// The paper's host interface (§III-D) serves one caller; in situ, many
// consumers want derived fields from the same simulation state at once.
// EvalService multiplexes them over a fixed set of devices:
//
//   * Admission control — submit() either admits a request into a bounded
//     queue or rejects it immediately with a reason: queue depth exceeded,
//     projected backlog bytes exceeded, no device can ever fit the
//     request's planner-projected memory floor, or the session's quota
//     cannot fit it on any permissible ladder rung. Rejection is
//     backpressure the tenant can act on, instead of unbounded queueing.
//   * Request coalescing — concurrently-queued requests with equal
//     CoalesceKeys (same network fingerprint, mesh, element count, bound
//     arrays, strategy) execute once and fan the shared report out to every
//     ticket. Piggybacks the fused-program cache: followers cost zero
//     device work, the leader usually hits the cache.
//   * Fair-share scheduling — one worker per device pops batches via
//     weighted round-robin over sessions (priority orders requests within
//     a session), a per-session quota hook degrades over-quota tenants
//     down the fallback ladder, and per-request deadlines arm the device
//     watchdog so a slow tenant times out and degrades instead of
//     starving the queue.
//   * Observability — every ticket resolves to a ServiceReport (shared
//     EvaluationReport + queue wait, fan-out, dispatch order), snapshot()
//     aggregates service-wide counters, and chrome_trace() merges every
//     device's profiling log into one multi-process trace document on the
//     existing copy/compute/faults/timeouts/integrity tracks.
//
// Threading: submit() and snapshot() are safe from any thread; one worker
// thread per device drives Engine::evaluate under the engine thread-safety
// contract (distinct engines, distinct devices). Tickets are fulfilled
// outside the service lock, so wait() never blocks dispatch.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "memo/memoizer.hpp"
#include "service/coalescer.hpp"
#include "service/quota.hpp"
#include "service/report.hpp"
#include "service/scheduler.hpp"
#include "vcl/device.hpp"
#include "vcl/profiling.hpp"
#include "vcl/resident_pool.hpp"

namespace dfg::service {

namespace detail {
/// Shared completion state behind a Ticket (one per submitted request).
struct TicketState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  ServiceReport report;
};
}  // namespace detail

/// Handle to one submitted request. Copyable (all copies share the state);
/// wait() blocks until the service resolves the request and returns the
/// report, which stays valid as long as any Ticket copy lives.
class Ticket {
 public:
  Ticket() = default;

  /// Blocks until the request is rejected, completed or failed.
  const ServiceReport& wait() const;
  /// Non-blocking: true once wait() would return immediately.
  bool ready() const;

 private:
  friend class EvalService;
  explicit Ticket(std::shared_ptr<detail::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::TicketState> state_;
};

class EvalService {
 public:
  /// One worker thread is started per device; devices must outlive the
  /// service and must not be driven by anyone else while it runs.
  explicit EvalService(std::vector<vcl::Device*> devices,
                       ServiceOptions options = {});
  /// Drains every queued request, then joins the workers.
  ~EvalService();

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Admits or rejects `request`. Never blocks on device work: admission
  /// (parse, projection, quota check) runs on the caller's thread and the
  /// returned ticket resolves asynchronously. A rejected request's ticket
  /// is already resolved with status == rejected.
  Ticket submit(Request request);

  /// Sets a session's scheduler weight and quota. Sessions appear on first
  /// submit with weight 1 and the service default quota; configuring an
  /// unknown session creates it.
  void configure_session(const std::string& id, SessionConfig config);

  /// Starts dispatch when the service was constructed start_paused (no-op
  /// otherwise). Submissions made while paused are queued atomically, so
  /// the coalescer sees the whole burst at once.
  void resume();

  /// Blocks until every admitted request has resolved.
  void drain();

  /// Declares that the host mutated the array at `ptr` (a time-series
  /// driver stepping the simulation between submit bursts): bumps its
  /// generation tag and drops resident copies on *every* device, so
  /// whichever worker the next request lands on re-uploads. The memo
  /// layer's intermediate cache needs no explicit call — it re-checks
  /// generation tags on every lookup. Callers must drain() (or otherwise
  /// know the array's requests resolved) before mutating the host data
  /// itself; this call only publishes the mutation.
  void note_host_mutation(const void* ptr);

  ServiceSnapshot snapshot() const;

  /// Merged Chrome trace of every device's profiling events since
  /// construction, one trace-viewer process per device (pid = index + 1).
  std::string chrome_trace() const;

  std::size_t device_count() const { return devices_.size(); }

 private:
  struct Pending {
    Request request;
    /// The parsed network (admission already built it for projection); the
    /// memoizer and the quota chunk sizing reuse it at dispatch.
    std::shared_ptr<const dataflow::Network> network;
    std::size_t elements = 0;
    CoalesceKey key;
    /// Planner-projected memory floor, for backlog accounting.
    std::size_t floor_bytes = 0;
    std::shared_ptr<detail::TicketState> ticket;
    std::chrono::steady_clock::time_point admitted_at{};
  };

  /// Per-session scheduler state (stable address: sessions_ is a std::map).
  struct Session {
    SessionConfig config;
    SessionUsage usage;
    std::deque<std::shared_ptr<Pending>> queue;
  };

  Session& session_locked(const std::string& id);
  /// Pops the session's next request for `device`: highest priority first,
  /// and — with the resident pool active — residency affinity among equal
  /// priorities (a request whose arrays are all warm on `device` beats
  /// FIFO order, so warm work lands where its buffers already live).
  std::shared_ptr<Pending> pop_locked(Session& session,
                                      const vcl::Device& device);
  /// Publishes queued_count_ to the queue-depth gauge and its high-water.
  void note_queue_depth_locked();
  void reject(const std::shared_ptr<detail::TicketState>& ticket,
              std::string reason);
  void worker(std::size_t device_index);
  void execute_batch(std::size_t device_index,
                     std::vector<std::shared_ptr<Pending>> batch);
  void resolve(const std::shared_ptr<Pending>& pending, ServiceReport report);

  std::vector<vcl::Device*> devices_;
  ServiceOptions options_;
  /// Process-unique instance label for this service's registry series
  /// (`svc=<N>`), so concurrent services never merge their counters.
  std::string svc_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  bool paused_ = false;
  bool stopping_ = false;
  std::map<std::string, Session> sessions_;
  WeightedRoundRobin scheduler_;
  std::size_t queued_count_ = 0;
  std::size_t backlog_bytes_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t dispatch_counter_ = 0;
  /// Per-session stats, queue-depth high-water and wall-clock waits. The
  /// service-wide monotonic scalars are *not* accumulated here: they live
  /// in the metrics registry (the `svc=<N>` series) and snapshot() reads
  /// them back, making ServiceSnapshot a view over registry counters.
  ServiceSnapshot snapshot_;
  /// Accumulated per-device profiling events (appended after each batch).
  std::vector<vcl::ProfilingLog> device_logs_;
  /// Per-device resident-pool stats at construction; snapshot() reports
  /// deltas against these so pre-existing pool traffic is excluded.
  std::vector<vcl::ResidentPool::Stats> resident_baseline_;
  /// Cross-request subgraph memoizer (memo/). Constructed always — its
  /// SubgraphIndex feeds the near-miss counter even with memoization off —
  /// but execute_batch only routes evaluations through it when
  /// ServiceOptions::memo (or DFGEN_MEMO, minus DFGEN_NO_MEMO) says so.
  std::unique_ptr<memo::Memoizer> memo_;

  std::vector<std::thread> workers_;
};

}  // namespace dfg::service
