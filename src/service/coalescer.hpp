// Service layer: request coalescing key.
//
// The run-time code-generation argument (Klöckner et al.: generate once,
// serve many) applied to whole evaluation requests: concurrently-queued
// requests that would execute the *same* evaluation are batched, executed
// once, and the result fanned out. Two requests coalesce exactly when
//   * their networks share a canonical fingerprint (same generated
//     programs — the fused-program cache key),
//   * they bind the same mesh object and resolve the same element count,
//   * they bind the identical host arrays (pointer + extent identity: the
//     in-situ contract hands the service views of host memory, so view
//     identity is the sound data-equality proxy — equal-content copies in
//     different storage do not coalesce, which is conservative but never
//     wrong), and
//   * they request the same strategy.
// Priority, session and deadline are deliberately NOT part of the key: the
// batch dispatches under its leader's session, priority and deadline, and
// followers simply receive the shared result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/network.hpp"
#include "service/report.hpp"

namespace dfg::service {

struct CoalesceKey {
  std::uint64_t network_fingerprint = 0;
  const mesh::RectilinearMesh* mesh = nullptr;
  std::size_t elements = 0;
  runtime::StrategyKind strategy{};
  /// (name, data pointer, extent) of every bound field, sorted by name.
  std::vector<std::tuple<std::string, const float*, std::size_t>> fields;

  bool operator==(const CoalesceKey&) const = default;
};

/// Builds the key for `request` whose network is already initialised.
/// `resolved_elements` is the element count admission resolved (explicit,
/// or the mesh cell count).
CoalesceKey make_coalesce_key(const Request& request,
                              const dataflow::Network& network,
                              std::size_t resolved_elements);

}  // namespace dfg::service
