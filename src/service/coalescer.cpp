#include "service/coalescer.hpp"

#include <algorithm>

namespace dfg::service {

CoalesceKey make_coalesce_key(const Request& request,
                              const dataflow::Network& network,
                              std::size_t resolved_elements) {
  CoalesceKey key;
  key.network_fingerprint = network.fingerprint();
  key.mesh = request.mesh;
  key.elements = resolved_elements;
  key.strategy = request.strategy;
  key.fields.reserve(request.fields.size());
  for (const FieldRef& field : request.fields) {
    key.fields.emplace_back(field.name, field.values.data(),
                            field.values.size());
  }
  // Binding order must not affect the key.
  std::sort(key.fields.begin(), key.fields.end());
  return key;
}

}  // namespace dfg::service
