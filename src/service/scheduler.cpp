#include "service/scheduler.hpp"

#include <algorithm>

namespace dfg::service {

void WeightedRoundRobin::add_session(const std::string& id, int weight) {
  const int clamped = std::max(weight, 1);
  for (Entry& entry : entries_) {
    if (entry.id == id) {
      entry.weight = clamped;
      return;
    }
  }
  entries_.push_back({id, clamped});
}

bool WeightedRoundRobin::has_session(const std::string& id) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.id == id; });
}

void WeightedRoundRobin::advance() {
  cursor_ = (cursor_ + 1) % entries_.size();
  credits_ = 0;
}

std::string WeightedRoundRobin::pick(
    const std::function<bool(const std::string&)>& has_work) {
  if (entries_.empty()) return {};
  // Scan at most one full rotation; a busy session early in the rotation
  // returns without consuming the scan budget of the sessions behind it.
  for (std::size_t scanned = 0; scanned < entries_.size();) {
    const Entry& entry = entries_[cursor_];
    if (credits_ <= 0) credits_ = entry.weight;
    if (has_work(entry.id)) {
      const std::string id = entry.id;
      if (--credits_ <= 0) advance();
      return id;
    }
    advance();  // idle session forfeits its remaining turns
    ++scanned;
  }
  return {};
}

}  // namespace dfg::service
