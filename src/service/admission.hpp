// Service layer: admission control.
//
// Backpressure with a reason attached. A request is admitted only when
//   * the bounded queue has room (max_queue_depth),
//   * the projected device-memory *floor* of the request — the smallest
//     planner-estimated high-water over the rungs the fallback policy may
//     execute — fits at least one device's hard capacity (a request no
//     rung can ever run is refused up front, not after queueing), and
//   * that floor fits the session's quota (a request the quota guard would
//     inevitably veto on every rung is refused up front), and
//   * the summed projected floors of all queued requests stay under the
//     backlog byte limit (when configured).
// The projections reuse runtime::estimate_high_water, which is bit-exact
// against the memory tracker, so admission never refuses a request that
// would in fact have fit, and never admits one that cannot.
#pragma once

#include <cstddef>
#include <string>

#include "dataflow/network.hpp"
#include "runtime/bindings.hpp"
#include "runtime/strategy.hpp"

namespace dfg::service {

/// The smallest planner-projected device high-water (bytes) over the
/// ladder rungs reachable from `requested`: just `requested` itself when
/// `fallback_enabled` is false, otherwise every rung at or below it.
/// Rungs that cannot execute or estimate this network (KernelError) are
/// skipped; SIZE_MAX means no rung could be estimated — admission then
/// lets execution produce the canonical error instead of guessing.
std::size_t projected_floor_bytes(const dataflow::Network& network,
                                  const runtime::FieldBindings& bindings,
                                  std::size_t elements,
                                  runtime::StrategyKind requested,
                                  bool fallback_enabled);

}  // namespace dfg::service
