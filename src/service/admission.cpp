#include "service/admission.hpp"

#include <limits>

#include "runtime/fallback.hpp"
#include "runtime/planner.hpp"
#include "support/error.hpp"

namespace dfg::service {

std::size_t projected_floor_bytes(const dataflow::Network& network,
                                  const runtime::FieldBindings& bindings,
                                  std::size_t elements,
                                  runtime::StrategyKind requested,
                                  bool fallback_enabled) {
  std::size_t floor = std::numeric_limits<std::size_t>::max();
  const std::size_t first = runtime::ladder_position(requested);
  const std::size_t last =
      fallback_enabled ? std::size(runtime::kMemoryLadder) : first + 1;
  for (std::size_t i = first; i < last; ++i) {
    try {
      floor = std::min(floor,
                       runtime::estimate_high_water(
                           network, bindings, elements,
                           runtime::kMemoryLadder[i]));
    } catch (const KernelError&) {
      // Rung structurally unsupported for this network (e.g. streamed on
      // gradients of computed values) — the ladder would skip it too.
    }
  }
  return floor;
}

}  // namespace dfg::service
