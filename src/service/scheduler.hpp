// Service layer: weighted round-robin session arbitration.
//
// Arbitrates dispatch turns between sessions. A session with weight w is
// offered w consecutive turns before the cursor advances to the next
// session, so over any window in which all sessions stay backlogged the
// dispatch counts converge to the weight ratio — the classic WRR fairness
// bound. An idle session forfeits its turns immediately (work-conserving:
// the device never idles while any session has queued work), and the
// schedule is a pure function of the pick sequence, so single-device tests
// can assert the exact dispatch order.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace dfg::service {

class WeightedRoundRobin {
 public:
  /// Registers a session at the end of the rotation (idempotent: a known
  /// id only updates its weight). Weights clamp to >= 1.
  void add_session(const std::string& id, int weight);

  /// True when `id` is registered.
  bool has_session(const std::string& id) const;

  /// The next session to serve among those for which `has_work` returns
  /// true, honouring weights, or "" when none has work. Calling pick
  /// consumes one of the returned session's turns.
  std::string pick(const std::function<bool(const std::string&)>& has_work);

 private:
  struct Entry {
    std::string id;
    int weight = 1;
  };

  void advance();

  std::vector<Entry> entries_;
  std::size_t cursor_ = 0;
  /// Turns left for entries_[cursor_]; 0 = refill from its weight on the
  /// next pick that reaches it.
  int credits_ = 0;
};

}  // namespace dfg::service
