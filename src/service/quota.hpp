// Service layer: per-session device-memory quotas.
//
// Quota math: a session's usage is the sum of its live vcl::Buffer bytes
// across every device currently executing its requests. The guard is a
// vcl::AllocationHook installed on a device's MemoryTracker for the
// duration of one batch; a reservation that would push the session past
// its quota is vetoed with DeviceOutOfMemory *before* the tracker commits,
// so the runtime's fallback ladder observes an ordinary capacity failure
// and degrades the strategy (fusion → streamed → staged → roundtrip) until
// one fits inside the quota. The planner's estimates are bit-exact against
// the tracker, so "which rung fits a quota of Q bytes" is decidable up
// front: the rung r with estimate_high_water(r) <= Q.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>

#include "vcl/device.hpp"

namespace dfg::service {

/// Session-wide usage counter, shared by every guard charging the same
/// session (one per device executing that session's batches).
class SessionUsage {
 public:
  /// Charges `bytes`; throws DeviceOutOfMemory when quota_bytes > 0 and
  /// the charge would exceed it. `label` names the session in the error.
  void charge(const std::string& label, std::size_t quota_bytes,
              std::size_t bytes);
  /// Releases `bytes` (saturating: bytes reserved before a guard was
  /// installed release through it harmlessly).
  void release(std::size_t bytes);

  std::size_t in_use() const;
  std::size_t high_water() const;

 private:
  mutable std::mutex mutex_;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
};

/// The hook itself: binds one device's allocation traffic to a session's
/// usage counter for the lifetime of one batch execution.
class SessionQuotaGuard final : public vcl::AllocationHook {
 public:
  SessionQuotaGuard(std::string session, std::size_t quota_bytes,
                    SessionUsage& usage)
      : session_(std::move(session)), quota_bytes_(quota_bytes),
        usage_(&usage) {}

  void on_reserve(std::size_t bytes) override {
    usage_->charge(session_, quota_bytes_, bytes);
  }
  void on_release(std::size_t bytes) override { usage_->release(bytes); }

 private:
  std::string session_;
  std::size_t quota_bytes_;
  SessionUsage* usage_;
};

/// RAII installer: swaps a hook onto a tracker and restores the previous
/// hook on destruction (exception-safe around Engine::evaluate).
class ScopedAllocationHook {
 public:
  ScopedAllocationHook(vcl::MemoryTracker& tracker, vcl::AllocationHook* hook)
      : tracker_(&tracker), previous_(tracker.hook()) {
    tracker_->set_hook(hook);
  }
  ~ScopedAllocationHook() { tracker_->set_hook(previous_); }

  ScopedAllocationHook(const ScopedAllocationHook&) = delete;
  ScopedAllocationHook& operator=(const ScopedAllocationHook&) = delete;

 private:
  vcl::MemoryTracker* tracker_;
  vcl::AllocationHook* previous_;
};

}  // namespace dfg::service
