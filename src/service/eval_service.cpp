#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <utility>

#include "dataflow/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "runtime/planner.hpp"
#include "service/admission.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "vcl/trace.hpp"

namespace dfg::service {

namespace {

constexpr std::size_t kNoFloor = std::numeric_limits<std::size_t>::max();

/// Source of the `svc=<N>` instance labels.
std::atomic<std::uint64_t> g_next_service{1};

/// Resolves one of this service's registry counters against the *current*
/// registry (never cached: a test's ScopedMetricsRegistry must capture
/// traffic from services constructed before it was installed).
obs::MetricId svc_counter(const std::string& svc, const char* name,
                          obs::Labels extra = {}) {
  extra.emplace_back("svc", svc);
  return obs::metrics().counter(name, std::move(extra));
}

/// The snapshot scalars are views over these series (see snapshot()).
obs::MetricId requests_counter(const std::string& svc, const char* outcome) {
  return svc_counter(svc, "dfgen_svc_requests_total", {{"outcome", outcome}});
}
obs::MetricId rejects_counter(const std::string& svc, const char* reason) {
  return svc_counter(svc, "dfgen_svc_admission_rejects_total",
                     {{"reason", reason}});
}
obs::MetricId incidents_counter(const std::string& svc, const char* kind) {
  return svc_counter(svc, "dfgen_svc_device_incidents_total",
                     {{"kind", kind}});
}

/// Resolves ServiceOptions::memo against the env overrides per batch
/// (DFGEN_MEMO forces on, DFGEN_NO_MEMO forces off — the latter wins, and
/// is the differential tests' kill switch), mirroring the resident pool.
bool memo_enabled(const ServiceOptions& options) {
  if (support::env::get_flag("DFGEN_NO_MEMO", false)) return false;
  return options.memo || support::env::get_flag("DFGEN_MEMO", false);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Largest streamed chunk (cells) whose planned high-water fits `budget`,
/// or 0 when even the minimal chunk does not (the quota guard then vetoes
/// the rung and the ladder moves on). The streamed strategy auto-sizes its
/// chunks from the device's *free memory*, which a session quota does not
/// shrink — so the service must pick the chunk explicitly or a quota-capped
/// tenant would be vetoed on a rung that could have fit. The planner's
/// estimates are bit-exact against the tracker, so the largest fitting
/// chunk is decidable by binary search.
std::size_t quota_chunk_cells(const dataflow::Network& network,
                              const runtime::FieldBindings& bindings,
                              std::size_t elements, std::size_t budget) {
  const auto fits = [&](std::size_t chunk) {
    return runtime::estimate_high_water(network, bindings, elements,
                                        runtime::StrategyKind::streamed,
                                        chunk) <= budget;
  };
  try {
    if (!fits(1)) return 0;
    std::size_t lo = 1;  // fits
    std::size_t hi = elements;
    if (fits(hi)) return hi;
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      (fits(mid) ? lo : hi) = mid;
    }
    return lo;
  } catch (const KernelError&) {
    return 0;  // streamed cannot execute this network at all
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Ticket

const ServiceReport& Ticket::wait() const {
  if (state_ == nullptr) throw Error("wait() on an empty Ticket");
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->report;
}

bool Ticket::ready() const {
  if (state_ == nullptr) return false;
  std::scoped_lock lock(state_->mutex);
  return state_->done;
}

// ---------------------------------------------------------------------------
// ServiceOptions

ServiceOptions ServiceOptions::from_env() {
  ServiceOptions options;
  options.max_queue_depth = static_cast<std::size_t>(
      std::max(1, support::env::get_int("DFGEN_SERVICE_QUEUE_DEPTH",
                                        static_cast<int>(
                                            options.max_queue_depth))));
  const int quota_mb = support::env::get_int("DFGEN_SERVICE_QUOTA_MB", 0);
  if (quota_mb > 0) {
    options.default_session_quota_bytes = static_cast<std::size_t>(quota_mb)
                                          << 20;
  }
  const int backlog_mb = support::env::get_int("DFGEN_SERVICE_BACKLOG_MB", 0);
  if (backlog_mb > 0) {
    options.max_backlog_bytes = static_cast<std::size_t>(backlog_mb) << 20;
  }
  options.coalescing =
      support::env::get_flag("DFGEN_SERVICE_COALESCE", options.coalescing);
  options.resident_pool = support::env::get_flag(
      "DFGEN_SERVICE_RESIDENT_POOL", options.resident_pool);
  options.memo = support::env::get_flag("DFGEN_MEMO", options.memo);
  const int memo_cap_mb = support::env::get_int("DFGEN_MEMO_CAP", 0);
  if (memo_cap_mb > 0) {
    options.memo_cap_bytes = static_cast<std::size_t>(memo_cap_mb) << 20;
  }
  return options;
}

// ---------------------------------------------------------------------------
// EvalService

EvalService::EvalService(std::vector<vcl::Device*> devices,
                         ServiceOptions options)
    : devices_(std::move(devices)), options_(options),
      svc_(std::to_string(
          g_next_service.fetch_add(1, std::memory_order_relaxed))),
      paused_(options.start_paused), device_logs_(devices_.size()) {
  if (devices_.empty()) {
    throw Error("EvalService requires at least one device");
  }
  resident_baseline_.reserve(devices_.size());
  for (const vcl::Device* device : devices_) {
    resident_baseline_.push_back(device->resident().stats());
  }
  // The memoizer exists whether or not memoization is on: its index feeds
  // the near-miss counter (the hit-rate ceiling a memo-off deployment can
  // chart before enabling), and eager construction keeps this service's
  // dfgen_memo_* series schema-stable.
  memo::Memoizer::Options memo_options;
  memo_options.svc = svc_;
  std::size_t memo_cap = options_.memo_cap_bytes;
  if (memo_cap == 0) {
    const int cap_mb = support::env::get_int("DFGEN_MEMO_CAP", 0);
    if (cap_mb > 0) memo_cap = static_cast<std::size_t>(cap_mb) << 20;
  }
  if (memo_cap == 0) {
    // Default: a quarter of the largest device's memory, so cached
    // intermediates never crowd out the working set the MemoryTracker and
    // ResidentPool watermarks are sized for.
    std::size_t best_capacity = 0;
    for (const vcl::Device* device : devices_) {
      best_capacity = std::max(best_capacity, device->memory().capacity());
    }
    memo_cap = best_capacity / 4;
  }
  memo_options.capacity_bytes = memo_cap;
  memo_ = std::make_unique<memo::Memoizer>(std::move(memo_options));
  workers_.reserve(devices_.size());
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    workers_.emplace_back([this, i] { worker(i); });
  }
}

EvalService::~EvalService() {
  drain();
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : workers_) thread.join();
}

void EvalService::resume() {
  {
    std::scoped_lock lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void EvalService::drain() {
  std::unique_lock lock(mutex_);
  // Dispatch must be running for the queue to empty.
  if (paused_) {
    paused_ = false;
    work_cv_.notify_all();
  }
  drain_cv_.wait(lock, [&] { return queued_count_ == 0 && in_flight_ == 0; });
}

void EvalService::note_host_mutation(const void* ptr) {
  // The generation bump is the authoritative signal (memo intermediates
  // and any pool check it lazily); dropping the per-device resident
  // entries eagerly also frees their device memory right away.
  vcl::note_host_mutation(ptr);
  for (vcl::Device* device : devices_) device->resident().invalidate(ptr);
}

void EvalService::configure_session(const std::string& id,
                                    SessionConfig config) {
  std::scoped_lock lock(mutex_);
  Session& session = session_locked(id);
  config.weight = std::max(config.weight, 1);
  session.config = config;
  scheduler_.add_session(id, config.weight);
}

EvalService::Session& EvalService::session_locked(const std::string& id) {
  auto [it, inserted] = sessions_.try_emplace(id);
  if (inserted) {
    it->second.config.weight = 1;
    it->second.config.quota_bytes = options_.default_session_quota_bytes;
    scheduler_.add_session(id, 1);
  }
  return it->second;
}

void EvalService::reject(const std::shared_ptr<detail::TicketState>& ticket,
                         std::string reason) {
  std::scoped_lock lock(ticket->mutex);
  ticket->report.status = RequestStatus::rejected;
  ticket->report.reject_reason = std::move(reason);
  ticket->done = true;
  ticket->cv.notify_all();
}

void EvalService::resolve(const std::shared_ptr<Pending>& pending,
                          ServiceReport report) {
  const std::shared_ptr<detail::TicketState>& ticket = pending->ticket;
  std::scoped_lock lock(ticket->mutex);
  ticket->report = std::move(report);
  ticket->done = true;
  ticket->cv.notify_all();
}

Ticket EvalService::submit(Request request) {
  auto state = std::make_shared<detail::TicketState>();
  state->report.session = request.session;
  Ticket ticket(state);

  // Parse and resolve outside the service lock: admission work scales with
  // the submitting tenants, not with the dispatch path.
  std::shared_ptr<dataflow::Network> network;
  std::string failure;
  try {
    network = std::make_shared<dataflow::Network>(
        dataflow::build_network(request.expression, {}));
  } catch (const std::exception& error) {
    failure = error.what();
  }

  std::size_t elements = request.elements;
  if (failure.empty() && elements == 0) {
    if (request.mesh != nullptr) {
      elements = request.mesh->cell_count();
    } else {
      for (const std::string& name : network->spec().field_names()) {
        if (name == "x" || name == "y" || name == "z" || name == "dims") {
          continue;
        }
        for (const FieldRef& field : request.fields) {
          if (field.name == name) {
            elements = field.values.size();
            break;
          }
        }
        if (elements != 0) break;
      }
      if (elements == 0) {
        failure =
            "cannot infer the output element count: bind a mesh or set "
            "Request::elements";
      }
    }
  }

  std::size_t floor = kNoFloor;
  memo::EvalContext memo_ctx;
  if (failure.empty()) {
    runtime::FieldBindings probe;
    if (request.mesh != nullptr) probe.bind_mesh(*request.mesh);
    for (const FieldRef& field : request.fields) {
      probe.bind(field.name, field.values);
    }
    floor = projected_floor_bytes(*network, probe, elements, request.strategy,
                                  options_.fallback.enabled);
    // Snapshot the request's identity for the memoizer before std::move
    // below; only the admitted path uses it.
    memo_ctx.network = network.get();
    memo_ctx.mesh = request.mesh;
    memo_ctx.elements = elements;
    memo_ctx.fields.reserve(request.fields.size());
    for (const FieldRef& field : request.fields) {
      memo_ctx.fields.push_back(
          {field.name, field.values.data(), field.values.size()});
    }
  }

  std::vector<std::shared_ptr<Pending>> batch_to_notify;
  {
    std::scoped_lock lock(mutex_);
    obs::MetricsRegistry& reg = obs::metrics();
    reg.add(requests_counter(svc_, "submitted"));
    Session& session = session_locked(request.session);
    ++snapshot_.sessions[request.session].submitted;

    if (!failure.empty()) {
      reg.add(requests_counter(svc_, "failed"));
      ++snapshot_.sessions[request.session].failed;
      std::scoped_lock ticket_lock(state->mutex);
      state->report.status = RequestStatus::failed;
      state->report.error = failure;
      state->done = true;
      state->cv.notify_all();
      return ticket;
    }

    std::string reject_reason;
    if (queued_count_ >= options_.max_queue_depth) {
      reg.add(rejects_counter(svc_, "queue_full"));
      reject_reason = "queue full: " + std::to_string(queued_count_) +
                      " requests queued (limit " +
                      std::to_string(options_.max_queue_depth) + ")";
    } else if (floor != kNoFloor) {
      std::size_t best_capacity = 0;
      for (const vcl::Device* device : devices_) {
        best_capacity = std::max(best_capacity, device->memory().capacity());
      }
      const std::size_t quota = session.config.quota_bytes;
      if (floor > best_capacity) {
        reg.add(rejects_counter(svc_, "projection"));
        reject_reason = "projected device-memory floor of " +
                        std::to_string(floor) + " bytes exceeds every "
                        "device's capacity (largest " +
                        std::to_string(best_capacity) + " bytes)";
      } else if (quota > 0 && floor > quota) {
        reg.add(rejects_counter(svc_, "quota"));
        reject_reason = "projected device-memory floor of " +
                        std::to_string(floor) + " bytes exceeds session '" +
                        request.session + "' quota of " +
                        std::to_string(quota) + " bytes on every "
                        "permissible strategy rung";
      } else if (options_.max_backlog_bytes > 0 &&
                 backlog_bytes_ + floor > options_.max_backlog_bytes) {
        reg.add(rejects_counter(svc_, "projection"));
        reject_reason = "projected backlog of " +
                        std::to_string(backlog_bytes_ + floor) +
                        " bytes exceeds the limit of " +
                        std::to_string(options_.max_backlog_bytes) + " bytes";
      }
    }
    if (!reject_reason.empty()) {
      ++snapshot_.sessions[request.session].rejected;
      std::scoped_lock ticket_lock(state->mutex);
      state->report.status = RequestStatus::rejected;
      state->report.reject_reason = std::move(reject_reason);
      state->done = true;
      state->cv.notify_all();
      return ticket;
    }

    auto pending = std::make_shared<Pending>();
    pending->key = make_coalesce_key(request, *network, elements);
    pending->network = network;
    pending->request = std::move(request);
    pending->elements = elements;
    pending->floor_bytes = floor == kNoFloor ? 0 : floor;
    pending->ticket = state;
    pending->admitted_at = std::chrono::steady_clock::now();
    session.queue.push_back(std::move(pending));
    ++queued_count_;
    backlog_bytes_ += floor == kNoFloor ? 0 : floor;
    reg.add(requests_counter(svc_, "admitted"));
    snapshot_.max_queue_depth_seen =
        std::max(snapshot_.max_queue_depth_seen, queued_count_);
    note_queue_depth_locked();
  }
  // Feed the memoizer's subgraph index outside the lock (it is internally
  // synchronized): every *admitted* request contributes its subtree
  // fingerprints, and cross-network sharing bumps the near-miss counter —
  // the failure and reject paths returned above.
  memo_->observe(memo_ctx);
  work_cv_.notify_one();
  return ticket;
}

void EvalService::note_queue_depth_locked() {
  obs::MetricsRegistry& reg = obs::metrics();
  const obs::Labels labels{{"svc", svc_}};
  reg.gauge_set(reg.gauge("dfgen_svc_queue_depth", labels), queued_count_);
  reg.gauge_max(reg.gauge("dfgen_svc_queue_depth_high_water", labels),
                queued_count_);
}

std::shared_ptr<EvalService::Pending> EvalService::pop_locked(
    Session& session, const vcl::Device& device) {
  // Highest priority first; FIFO among equals — except that with the
  // resident pool active, a request whose bound arrays are all warm on
  // this worker's device beats colder equals (the would_hit probe is safe
  // here: the worker owns its idle device while it holds the service
  // lock). Priority strictly dominates affinity, so a hot-array tenant
  // can never starve a higher-priority one.
  const auto warm_on_device = [&](const Pending& pending) {
    if (!device.resident().enabled() || pending.request.fields.empty()) {
      return false;
    }
    for (const FieldRef& field : pending.request.fields) {
      if (!device.resident().would_hit(field.values)) return false;
    }
    return true;
  };
  auto best = session.queue.begin();
  bool best_warm = warm_on_device(**best);
  for (auto it = session.queue.begin(); it != session.queue.end(); ++it) {
    if ((*it)->request.priority > (*best)->request.priority) {
      best = it;
      best_warm = warm_on_device(**best);
    } else if ((*it)->request.priority == (*best)->request.priority &&
               !best_warm && warm_on_device(**it)) {
      best = it;
      best_warm = true;
    }
  }
  std::shared_ptr<Pending> pending = *best;
  session.queue.erase(best);
  --queued_count_;
  backlog_bytes_ -= std::min(backlog_bytes_, pending->floor_bytes);
  note_queue_depth_locked();
  return pending;
}

void EvalService::worker(std::size_t device_index) {
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stopping_ || (!paused_ && queued_count_ > 0);
    });
    if (queued_count_ == 0) {
      if (stopping_) return;
      continue;
    }

    const std::string picked = scheduler_.pick([&](const std::string& id) {
      auto it = sessions_.find(id);
      return it != sessions_.end() && !it->second.queue.empty();
    });
    if (picked.empty()) continue;

    std::vector<std::shared_ptr<Pending>> batch;
    batch.push_back(
        pop_locked(sessions_.at(picked), *devices_[device_index]));
    if (options_.coalescing) {
      const CoalesceKey& key = batch.front()->key;
      for (auto& [id, session] : sessions_) {
        for (auto it = session.queue.begin(); it != session.queue.end();) {
          if ((*it)->key == key) {
            batch.push_back(*it);
            it = session.queue.erase(it);
            --queued_count_;
            backlog_bytes_ -=
                std::min(backlog_bytes_, batch.back()->floor_bytes);
          } else {
            ++it;
          }
        }
      }
      note_queue_depth_locked();
    }
    ++in_flight_;
    lock.unlock();
    // More queued work may remain for the other workers.
    work_cv_.notify_one();

    execute_batch(device_index, std::move(batch));

    lock.lock();
    --in_flight_;
    if (queued_count_ == 0 && in_flight_ == 0) drain_cv_.notify_all();
  }
}

void EvalService::execute_batch(std::size_t device_index,
                                std::vector<std::shared_ptr<Pending>> batch) {
  const std::shared_ptr<Pending>& leader = batch.front();
  const std::string& session_id = leader->request.session;

  // Parent of the Engine's "evaluate:" request span (and everything below
  // it) for this dispatch.
  obs::Span batch_span("dispatch:" + session_id, "batch");

  std::size_t dispatch_index = 0;
  std::size_t quota_bytes = 0;
  SessionUsage* usage = nullptr;
  {
    std::scoped_lock lock(mutex_);
    dispatch_index = ++dispatch_counter_;
    Session& session = session_locked(session_id);
    quota_bytes = session.config.quota_bytes;
    usage = &session.usage;
  }

  // The batch runs under its leader's strategy, session and deadline.
  EngineOptions engine_options;
  engine_options.strategy = leader->request.strategy;
  engine_options.resident_pool = options_.resident_pool;
  engine_options.backend = options_.backend;
  engine_options.fallback = options_.fallback;
  engine_options.fallback.deadline_factor =
      leader->request.deadline_factor > 0.0 ? leader->request.deadline_factor
                                            : options_.default_deadline_factor;
  if (quota_bytes > 0) {
    // Size streamed chunks to the quota, not the device's free memory.
    try {
      runtime::FieldBindings probe;
      if (leader->request.mesh != nullptr) probe.bind_mesh(*leader->request.mesh);
      for (const FieldRef& field : leader->request.fields) {
        probe.bind(field.name, field.values);
      }
      engine_options.streamed_chunk_cells = quota_chunk_cells(
          *leader->network, probe, leader->elements, quota_bytes);
    } catch (const std::exception&) {
      // Planning is advisory: fall through to auto-sizing on any failure.
    }
  }

  vcl::Device& device = *devices_[device_index];
  Engine engine(device, engine_options);
  if (leader->request.mesh != nullptr) engine.bind_mesh(*leader->request.mesh);
  for (const FieldRef& field : leader->request.fields) {
    engine.bind(field.name, field.values);
  }

  std::shared_ptr<const EvaluationReport> evaluation;
  std::string error;
  // Merged profiling for the whole batch: the memo path runs several
  // evaluations (sub-materializations plus the rewritten consumer), and
  // the engine clears its log per evaluation. The memo-off path appends
  // its single evaluation's log, so its content is byte-identical to
  // engine.log().
  vcl::ProfilingLog merged_log;
  {
    // Every device byte this batch reserves is charged to the leading
    // session; a veto surfaces as DeviceOutOfMemory inside evaluate and
    // degrades the strategy via the fallback ladder.
    SessionQuotaGuard guard(session_id, quota_bytes, *usage);
    ScopedAllocationHook scoped(device.memory(), &guard);
    try {
      if (memo_enabled(options_)) {
        memo::EvalContext ctx;
        ctx.network = leader->network.get();
        ctx.mesh = leader->request.mesh;
        ctx.elements = leader->elements;
        ctx.fields.reserve(leader->request.fields.size());
        for (const FieldRef& field : leader->request.fields) {
          ctx.fields.push_back(
              {field.name, field.values.data(), field.values.size()});
        }
        evaluation = std::make_shared<const EvaluationReport>(
            memo_->evaluate(engine, ctx, &merged_log));
      } else {
        evaluation = std::make_shared<const EvaluationReport>(
            engine.evaluate_network(*leader->network, leader->elements));
        merged_log.append(engine.log());
      }
    } catch (const std::exception& e) {
      error = e.what();
      // The failing evaluation's partial log still carries its device
      // events (timeouts, faults) for the incident counters below.
      merged_log.append(engine.log());
    }
  }

  batch_span.add_sim_seconds(merged_log.total_sim_seconds());

  {
    std::scoped_lock lock(mutex_);
    obs::MetricsRegistry& reg = obs::metrics();
    reg.add(svc_counter(svc_, "dfgen_svc_evaluations_total"));
    reg.observe(reg.histogram("dfgen_svc_coalesce_fanout", {{"svc", svc_}}),
                batch.size());
    device_logs_[device_index].append(merged_log);
    SessionStats& leader_stats = snapshot_.sessions[session_id];
    ++leader_stats.evaluations;
    leader_stats.quota_high_water_bytes =
        std::max(leader_stats.quota_high_water_bytes, usage->high_water());
    reg.gauge_max(
        reg.gauge("dfgen_svc_quota_pressure_bytes",
                  {{"svc", svc_}, {"session", session_id}}),
        usage->high_water());
    if (evaluation != nullptr) {
      reg.add(svc_counter(svc_, "dfgen_svc_degradations_total"),
              evaluation->degradations.size());
      leader_stats.degradations += evaluation->degradations.size();
      reg.add(incidents_counter(svc_, "timeout"),
              evaluation->command_timeouts);
      reg.add(incidents_counter(svc_, "retry"), evaluation->command_retries);
      reg.add(incidents_counter(svc_, "fault"), evaluation->injected_faults);
    } else {
      // The failed evaluation left no report; its device events still count.
      reg.add(incidents_counter(svc_, "timeout"),
              merged_log.count(vcl::EventKind::timeout));
      reg.add(incidents_counter(svc_, "fault"), device.fault().run_faults());
    }
    for (const std::shared_ptr<Pending>& pending : batch) {
      SessionStats& stats = snapshot_.sessions[pending->request.session];
      const double wait = seconds_since(pending->admitted_at);
      stats.queue_wait_seconds += wait;
      snapshot_.total_queue_wait_seconds += wait;
      if (evaluation != nullptr) {
        reg.add(requests_counter(svc_, "completed"));
        ++stats.completed;
      } else {
        reg.add(requests_counter(svc_, "failed"));
        ++stats.failed;
      }
      if (pending != leader) {
        reg.add(requests_counter(svc_, "coalesced"));
        ++stats.coalesced;
      }
    }
  }

  for (const std::shared_ptr<Pending>& pending : batch) {
    ServiceReport report;
    report.session = pending->request.session;
    report.queue_wait_seconds = seconds_since(pending->admitted_at);
    report.coalesced_fanout = batch.size();
    report.coalesce_leader = pending == leader;
    report.dispatch_index = dispatch_index;
    report.device_index = static_cast<int>(device_index);
    if (evaluation != nullptr) {
      report.status = RequestStatus::completed;
      report.evaluation = evaluation;
    } else {
      report.status = RequestStatus::failed;
      report.error = error;
    }
    resolve(pending, std::move(report));
  }
}

ServiceSnapshot EvalService::snapshot() const {
  std::scoped_lock lock(mutex_);
  ServiceSnapshot copy = snapshot_;
  for (const auto& [id, session] : sessions_) {
    SessionStats& stats = copy.sessions[id];
    stats.quota_high_water_bytes =
        std::max(stats.quota_high_water_bytes, session.usage.high_water());
  }
  // The service-wide scalars are delta-free views over this instance's
  // registry series (counter_value merges every worker thread's shard).
  obs::MetricsRegistry& reg = obs::metrics();
  const auto value = [&](obs::MetricId id) { return reg.counter_value(id); };
  copy.submitted = value(requests_counter(svc_, "submitted"));
  copy.admitted = value(requests_counter(svc_, "admitted"));
  copy.completed_requests = value(requests_counter(svc_, "completed"));
  copy.failed_requests = value(requests_counter(svc_, "failed"));
  copy.coalesced_requests = value(requests_counter(svc_, "coalesced"));
  copy.rejected_queue_full = value(rejects_counter(svc_, "queue_full"));
  copy.rejected_projection = value(rejects_counter(svc_, "projection"));
  copy.rejected_quota = value(rejects_counter(svc_, "quota"));
  copy.executed_evaluations =
      value(svc_counter(svc_, "dfgen_svc_evaluations_total"));
  copy.degradations = value(svc_counter(svc_, "dfgen_svc_degradations_total"));
  copy.command_timeouts = value(incidents_counter(svc_, "timeout"));
  copy.command_retries = value(incidents_counter(svc_, "retry"));
  copy.injected_faults = value(incidents_counter(svc_, "fault"));
  const auto memo_value = [&](const char* name) {
    return value(svc_counter(svc_, name));
  };
  copy.memo_hits = memo_value("dfgen_memo_hits_total");
  copy.memo_misses = memo_value("dfgen_memo_misses_total");
  copy.memo_admits = memo_value("dfgen_memo_admits_total");
  copy.memo_evictions = memo_value("dfgen_memo_evictions_total");
  copy.memo_invalidations = memo_value("dfgen_memo_invalidations_total");
  copy.memo_bytes_saved = memo_value("dfgen_memo_bytes_saved_total");
  copy.memo_recompute_saved_nanos =
      memo_value("dfgen_memo_recompute_saved_nanos_total");
  copy.memo_candidate_requests =
      memo_value("dfgen_svc_memo_candidates_total");
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const vcl::ResidentPool::Stats now = devices_[i]->resident().stats();
    const vcl::ResidentPool::Stats& base = resident_baseline_[i];
    copy.resident_hits += now.hits - base.hits;
    copy.resident_misses += now.misses - base.misses;
    copy.resident_evictions += now.evictions - base.evictions;
    copy.resident_invalidations += now.invalidations - base.invalidations;
    copy.resident_upload_bytes_saved +=
        now.upload_bytes_saved - base.upload_bytes_saved;
  }
  return copy;
}

std::string EvalService::chrome_trace() const {
  std::scoped_lock lock(mutex_);
  std::string merged = "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    vcl::TraceOptions trace_options;
    trace_options.device_name = devices_[i]->spec().name;
    trace_options.pid = static_cast<int>(i) + 1;
    const std::string doc =
        vcl::to_chrome_trace(device_logs_[i], trace_options);
    // Splice this device's event array into the merged document.
    const std::size_t open = doc.find('[');
    const std::size_t close = doc.rfind(']');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open + 1) {
      continue;
    }
    std::string inner = doc.substr(open + 1, close - open - 1);
    // Trim surrounding whitespace left by the per-device pretty-printer.
    const std::size_t begin = inner.find_first_not_of(" \n");
    const std::size_t end = inner.find_last_not_of(" \n,");
    if (begin == std::string::npos) continue;
    if (!first) merged += ",";
    merged += "\n";
    merged += inner.substr(begin, end - begin + 1);
    first = false;
  }
  merged += "\n]}\n";
  return merged;
}

}  // namespace dfg::service
