#include "memo/intermediate_cache.hpp"

#include <algorithm>
#include <limits>

#include "vcl/resident_pool.hpp"

namespace dfg::memo {

IntermediateCache::IntermediateCache() : IntermediateCache(Options()) {}

IntermediateCache::IntermediateCache(Options options) : options_(options) {}

IntermediateCache::~IntermediateCache() { clear(); }

void IntermediateCache::drop_locked(
    std::map<std::uint64_t, std::shared_ptr<Entry>>::iterator it) {
  // Bump the storage's own generation tag: any device-resident copy keyed
  // by this address goes stale immediately, and an unrelated array that
  // later reuses the address can never stale-hit. The storage itself is
  // freed when the last in-flight reader drops its shared_ptr.
  vcl::note_host_mutation(it->second->values.data());
  resident_bytes_ -= std::min(resident_bytes_, it->second->bytes());
  entries_.erase(it);
}

IntermediateCache::EntryPtr IntermediateCache::lookup(std::uint64_t key) {
  std::scoped_lock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  for (const auto& [ptr, generation] : it->second->deps) {
    if (vcl::host_generation(ptr) != generation) {
      // A dependency mutated since materialization: the value is stale.
      ++stats_.invalidations;
      ++stats_.misses;
      drop_locked(it);
      return nullptr;
    }
  }
  ++stats_.hits;
  Entry& entry = *it->second;
  ++entry.hits;
  entry.last_use = ++tick_;
  return it->second;
}

void IntermediateCache::evict_to_fit_locked(std::size_t incoming_bytes) {
  while (!entries_.empty() &&
         resident_bytes_ + incoming_bytes > options_.capacity_bytes) {
    // LRU-with-cost: evict the entry with the least estimated recompute
    // time saved per byte kept; least-recently-used among (near-)equals.
    auto victim = entries_.end();
    double victim_score = std::numeric_limits<double>::infinity();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& entry = *it->second;
      const double score = entry.recompute_seconds *
                           static_cast<double>(1 + entry.hits) /
                           static_cast<double>(std::max<std::size_t>(
                               entry.bytes(), 1));
      if (victim == entries_.end() || score < victim_score ||
          (score == victim_score &&
           entry.last_use < victim->second->last_use)) {
        victim = it;
        victim_score = score;
      }
    }
    ++stats_.evictions;
    drop_locked(victim);
  }
}

IntermediateCache::EntryPtr IntermediateCache::admit(
    std::uint64_t key, std::vector<float> values, double recompute_seconds,
    std::vector<std::pair<const void*, std::uint64_t>> deps) {
  std::scoped_lock lock(mutex_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    return it->second;  // a concurrent worker won the materialization race
  }
  const std::size_t bytes = values.size() * sizeof(float);
  if (bytes > options_.capacity_bytes) return nullptr;
  evict_to_fit_locked(bytes);
  auto entry = std::make_shared<Entry>();
  entry->key = key;
  entry->values = std::move(values);
  entry->recompute_seconds = recompute_seconds;
  entry->deps = std::move(deps);
  entry->last_use = ++tick_;
  resident_bytes_ += bytes;
  ++stats_.admits;
  entries_.emplace(key, entry);
  return entry;
}

void IntermediateCache::invalidate_dependents(const void* ptr) {
  std::scoped_lock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const auto& deps = it->second->deps;
    const bool dependent =
        std::any_of(deps.begin(), deps.end(),
                    [ptr](const auto& dep) { return dep.first == ptr; });
    if (dependent) {
      ++stats_.invalidations;
      drop_locked(it++);
    } else {
      ++it;
    }
  }
}

void IntermediateCache::clear() {
  std::scoped_lock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) drop_locked(it++);
}

std::size_t IntermediateCache::resident_bytes() const {
  std::scoped_lock lock(mutex_);
  return resident_bytes_;
}

std::size_t IntermediateCache::entry_count() const {
  std::scoped_lock lock(mutex_);
  return entries_.size();
}

IntermediateCache::Stats IntermediateCache::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace dfg::memo
