#include "memo/memoizer.hpp"

#include <cstdio>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/planner.hpp"
#include "vcl/cost_model.hpp"
#include "vcl/resident_pool.hpp"

namespace dfg::memo {

namespace {

/// Resolved against the *current* registry on every use (a test's
/// ScopedMetricsRegistry must capture traffic from memoizers constructed
/// before it was installed — the service counter pattern).
obs::MetricId memo_counter(const std::string& svc, const char* name) {
  return obs::metrics().counter(name, {{"svc", svc}});
}

/// Spliced field sources are named after the cache key. The "_memo_"
/// prefix cannot collide with user fields from the expression front end
/// (identifiers there never start with an underscore by convention, and
/// the full 16-hex key makes accidental collision astronomically
/// unlikely) nor with the generator's reserved "__m<id>" materialized
/// parameters.
std::string memo_field_name(std::uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "_memo_%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

void mark_covered(const dataflow::NetworkSpec& spec, int root,
                  std::vector<bool>& covered) {
  std::vector<int> stack{root};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (covered[static_cast<std::size_t>(id)]) continue;
    covered[static_cast<std::size_t>(id)] = true;
    for (const int in : spec.node(id).inputs) stack.push_back(in);
  }
}

/// Folds a sub-evaluation's device traffic into the report the tickets
/// will see: the memoized batch's accounting covers everything it ran.
void fold(EvaluationReport& into, const EvaluationReport& sub) {
  into.degradations.insert(into.degradations.end(), sub.degradations.begin(),
                           sub.degradations.end());
  into.dev_writes += sub.dev_writes;
  into.dev_reads += sub.dev_reads;
  into.kernel_execs += sub.kernel_execs;
  into.sim_seconds += sub.sim_seconds;
  into.wall_seconds += sub.wall_seconds;
  into.memory_high_water_bytes =
      std::max(into.memory_high_water_bytes, sub.memory_high_water_bytes);
  into.command_retries += sub.command_retries;
  into.injected_faults += sub.injected_faults;
  into.command_timeouts += sub.command_timeouts;
  into.checksum_mismatches += sub.checksum_mismatches;
  into.pipeline_cache_hits += sub.pipeline_cache_hits;
  into.pipeline_cache_misses += sub.pipeline_cache_misses;
  into.resident_hits += sub.resident_hits;
  into.resident_misses += sub.resident_misses;
  into.resident_evictions += sub.resident_evictions;
  into.resident_invalidations += sub.resident_invalidations;
  into.resident_upload_bytes_saved += sub.resident_upload_bytes_saved;
}

}  // namespace

Memoizer::Memoizer(Options options)
    : options_(std::move(options)), cache_({options_.capacity_bytes}) {
  // Eager registration: the dfgen_memo_* series appear — as zeros — in
  // snapshots of memo-disabled services, keeping snapshot schemas stable.
  memo_counter(options_.svc, "dfgen_memo_hits_total");
  memo_counter(options_.svc, "dfgen_memo_misses_total");
  memo_counter(options_.svc, "dfgen_memo_admits_total");
  memo_counter(options_.svc, "dfgen_memo_evictions_total");
  memo_counter(options_.svc, "dfgen_memo_invalidations_total");
  memo_counter(options_.svc, "dfgen_memo_bytes_saved_total");
  memo_counter(options_.svc, "dfgen_memo_recompute_saved_nanos_total");
  memo_counter(options_.svc, "dfgen_svc_memo_candidates_total");
}

void Memoizer::observe(const EvalContext& ctx) {
  const std::vector<Candidate> candidates = enumerate_candidates(ctx);
  if (index_.observe(*ctx.network, candidates)) {
    obs::metrics().add(
        memo_counter(options_.svc, "dfgen_svc_memo_candidates_total"));
  }
}

void Memoizer::publish_cache_stats() {
  const IntermediateCache::Stats now = cache_.stats();
  std::scoped_lock lock(publish_mutex_);
  obs::MetricsRegistry& reg = obs::metrics();
  const auto bump = [&](const char* name, std::uint64_t then,
                        std::uint64_t current) {
    if (current > then) {
      reg.add(memo_counter(options_.svc, name), current - then);
    }
  };
  bump("dfgen_memo_hits_total", published_.hits, now.hits);
  bump("dfgen_memo_misses_total", published_.misses, now.misses);
  bump("dfgen_memo_admits_total", published_.admits, now.admits);
  bump("dfgen_memo_evictions_total", published_.evictions, now.evictions);
  bump("dfgen_memo_invalidations_total", published_.invalidations,
       now.invalidations);
  published_ = now;
  reg.gauge_set(reg.gauge("dfgen_memo_resident_bytes",
                          {{"svc", options_.svc}}),
                cache_.resident_bytes());
}

EvaluationReport Memoizer::evaluate(Engine& engine, const EvalContext& ctx,
                                    vcl::ProfilingLog* merged) {
  const dataflow::NetworkSpec& spec = ctx.network->spec();
  std::vector<Candidate> candidates = enumerate_candidates(ctx);

  struct Selection {
    Candidate candidate;
    IntermediateCache::EntryPtr entry;  // null until materialized
    double estimate_seconds = 0.0;
  };
  std::vector<Selection> selected;
  std::vector<bool> covered(spec.nodes().size(), false);
  const vcl::CostModel cost(engine.device().spec());
  std::uint64_t bytes_saved = 0;
  double recompute_saved = 0.0;

  // Greedy maximal selection: candidates arrive largest-first, so a
  // chosen subtree covers (and thereby skips) all of its sub-candidates.
  for (const Candidate& candidate : candidates) {
    if (covered[static_cast<std::size_t>(candidate.root)]) continue;
    if (IntermediateCache::EntryPtr entry = cache_.lookup(candidate.key)) {
      bytes_saved += entry->bytes();
      recompute_saved += entry->recompute_seconds;
      selected.push_back({candidate, std::move(entry), 0.0});
      mark_covered(spec, candidate.root, covered);
      continue;
    }
    // Cost-model admission: only cross-network keys (two or more distinct
    // whole-network fingerprints have presented this subtree), and only
    // when recomputing it — priced by the planner at the armed backend's
    // efficiency — costs more than one transfer of the materialized bytes.
    if (index_.popularity(candidate.key).networks < 2) continue;
    double estimate = 0.0;
    try {
      const dataflow::Network subnet(extract_subtree(spec, candidate.root));
      estimate = runtime::estimate_sim_seconds(
          subnet, engine.bindings(), ctx.elements, engine.device().spec(),
          runtime::StrategyKind::fusion, 0, nullptr,
          engine.device().backend().compute_efficiency());
    } catch (const std::exception&) {
      continue;  // planning is advisory: an unplannable subtree stays put
    }
    if (estimate <= cost.transfer_seconds(ctx.elements * sizeof(float))) {
      continue;
    }
    selected.push_back({candidate, nullptr, estimate});
    mark_covered(spec, candidate.root, covered);
  }

  if (bytes_saved > 0) {
    obs::MetricsRegistry& reg = obs::metrics();
    reg.add(memo_counter(options_.svc, "dfgen_memo_bytes_saved_total"),
            bytes_saved);
    reg.add(memo_counter(options_.svc,
                         "dfgen_memo_recompute_saved_nanos_total"),
            static_cast<std::uint64_t>(recompute_saved * 1e9));
  }

  if (selected.empty()) {
    EvaluationReport report = engine.evaluate_network(*ctx.network,
                                                      ctx.elements);
    if (merged != nullptr) merged->append(engine.log());
    publish_cache_stats();
    return report;
  }

  // Materialize the admitted misses: one standalone evaluation each, its
  // output admitted into the cache. Dependency generations are recorded
  // *before* evaluating, so a host mutation racing the materialization
  // leaves a stale-detected entry, never a stale-served one.
  EvaluationReport sub_totals;
  bool have_sub = false;
  for (Selection& selection : selected) {
    if (selection.entry != nullptr) continue;
    std::vector<std::pair<const void*, std::uint64_t>> deps;
    deps.reserve(selection.candidate.deps.size());
    for (const void* ptr : selection.candidate.deps) {
      deps.emplace_back(ptr, vcl::host_generation(ptr));
    }
    const dataflow::Network subnet(
        extract_subtree(spec, selection.candidate.root));
    EvaluationReport sub = engine.evaluate_network(subnet, ctx.elements);
    if (merged != nullptr) merged->append(engine.log());
    fold(sub_totals, sub);
    have_sub = true;
    selection.entry =
        cache_.admit(selection.candidate.key, std::move(sub.values),
                     selection.estimate_seconds, std::move(deps));
  }

  // Splice every materialized value in as a bound field source. A
  // selection whose admit was refused (value larger than the cache) stays
  // in the network and is evaluated inline like before.
  std::map<int, std::string> replacements;
  for (const Selection& selection : selected) {
    if (selection.entry == nullptr) continue;
    const std::string name = memo_field_name(selection.candidate.key);
    engine.bind(name, std::span<const float>(selection.entry->values));
    replacements.emplace(selection.candidate.root, name);
  }

  EvaluationReport report;
  if (replacements.empty()) {
    report = engine.evaluate_network(*ctx.network, ctx.elements);
  } else {
    const dataflow::Network rewritten(
        splice_materialized(spec, replacements));
    report = engine.evaluate_network(rewritten, ctx.elements);
  }
  if (merged != nullptr) merged->append(engine.log());
  if (have_sub) fold(report, sub_totals);
  publish_cache_stats();
  return report;
}

}  // namespace dfg::memo
