#include "memo/subgraph.hpp"

#include <algorithm>
#include <cstdint>

#include "support/checksum.hpp"

namespace dfg::memo {

namespace {

using dataflow::NetworkSpec;
using dataflow::NodeType;
using dataflow::SpecNode;

bool is_mesh_name(const std::string& name) {
  return name == "x" || name == "y" || name == "z" || name == "dims";
}

}  // namespace

std::vector<Candidate> enumerate_candidates(const EvalContext& ctx) {
  const NetworkSpec& spec = ctx.network->spec();
  const std::vector<std::uint64_t>& fps = ctx.network->subtree_fingerprints();
  std::map<std::string, const BoundInput*> bound;
  for (const BoundInput& field : ctx.fields) {
    bound.emplace(field.name, &field);
  }

  std::vector<Candidate> out;
  std::vector<bool> seen(spec.nodes().size());
  for (const SpecNode& root : spec.nodes()) {
    if (root.type != NodeType::filter || root.components != 1) continue;
    if (root.id == spec.output_id()) continue;

    // Walk the subtree: count its filters and collect its field leaves.
    std::fill(seen.begin(), seen.end(), false);
    std::vector<int> stack{root.id};
    std::size_t filters = 0;
    bool eligible = true;
    std::set<std::string> leaves;  // sorted, for a canonical key
    while (eligible && !stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      if (seen[static_cast<std::size_t>(id)]) continue;
      seen[static_cast<std::size_t>(id)] = true;
      const SpecNode& node = spec.node(id);
      switch (node.type) {
        case NodeType::filter:
          ++filters;
          for (const int in : node.inputs) stack.push_back(in);
          break;
        case NodeType::field_source:
          if (bound.count(node.field_name) == 0 &&
              !(ctx.mesh != nullptr && is_mesh_name(node.field_name))) {
            eligible = false;  // unbound leaf: cannot materialize
            break;
          }
          leaves.insert(node.field_name);
          break;
        case NodeType::constant:
          break;
      }
    }
    // Constant-only subtrees are folded by the optimizer anyway, and a
    // single-filter subtree never beats re-running it.
    if (!eligible || filters < 2 || leaves.empty()) continue;

    Candidate candidate;
    candidate.root = root.id;
    candidate.subtree_fp = fps[static_cast<std::size_t>(root.id)];
    candidate.filters = filters;
    std::uint64_t hash = support::kFnvOffsetBasis;
    const auto mix = [&hash](std::uint64_t value) {
      hash = support::fnv1a(&value, sizeof(value), hash);
    };
    mix(candidate.subtree_fp);
    mix(static_cast<std::uint64_t>(ctx.elements));
    for (const std::string& name : leaves) {
      hash = support::fnv1a(name.data(), name.size(), hash);
      if (const auto it = bound.find(name); it != bound.end()) {
        mix(reinterpret_cast<std::uintptr_t>(it->second->data));
        mix(static_cast<std::uint64_t>(it->second->len));
        candidate.deps.push_back(it->second->data);
      } else {
        // Mesh coordinates: identified by the mesh object itself (the
        // service regenerates the x/y/z arrays per engine, so their
        // pointers are not stable identities — the mesh is).
        mix(reinterpret_cast<std::uintptr_t>(ctx.mesh));
      }
    }
    candidate.key = hash;
    out.push_back(std::move(candidate));
  }

  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.filters != b.filters ? a.filters > b.filters : a.root < b.root;
  });
  return out;
}

dataflow::NetworkSpec extract_subtree(const NetworkSpec& spec, int root) {
  // Mark everything reachable from the root.
  std::vector<bool> keep(spec.nodes().size(), false);
  std::vector<int> stack{root};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (keep[static_cast<std::size_t>(id)]) continue;
    keep[static_cast<std::size_t>(id)] = true;
    for (const int in : spec.node(id).inputs) stack.push_back(in);
  }

  // Rebuild through the public API with compacted ids (the
  // prune_unreachable pattern: dedup/CSE off — folding already happened,
  // or was deliberately off, in the source spec).
  dataflow::SpecOptions rebuild_options = spec.options();
  rebuild_options.cse = false;
  rebuild_options.dedup_constants = false;
  NetworkSpec sub(rebuild_options);
  std::vector<int> remap(spec.nodes().size(), -1);
  for (const SpecNode& node : spec.nodes()) {
    if (!keep[static_cast<std::size_t>(node.id)]) continue;
    int new_id = -1;
    switch (node.type) {
      case NodeType::field_source:
        new_id = sub.add_field_source(node.field_name);
        break;
      case NodeType::constant:
        new_id = sub.add_constant(node.const_value);
        break;
      case NodeType::filter: {
        std::vector<int> inputs;
        inputs.reserve(node.inputs.size());
        for (const int in : node.inputs) inputs.push_back(remap[in]);
        new_id = sub.add_filter(node.kind, inputs, node.component);
        break;
      }
    }
    sub.set_label(new_id, node.label);
    remap[node.id] = new_id;
  }
  sub.set_output(remap[root]);
  return sub;
}

dataflow::NetworkSpec splice_materialized(
    const NetworkSpec& spec, const std::map<int, std::string>& replacements) {
  // Mark everything reachable from the output, treating replaced roots as
  // leaves: their subtree interiors drop out of the rewritten network, so
  // the planner prices the memoized work at zero simply because it is no
  // longer there.
  std::vector<bool> keep(spec.nodes().size(), false);
  std::vector<int> stack{spec.output_id()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (keep[static_cast<std::size_t>(id)]) continue;
    keep[static_cast<std::size_t>(id)] = true;
    if (replacements.count(id) != 0) continue;
    for (const int in : spec.node(id).inputs) stack.push_back(in);
  }

  dataflow::SpecOptions rebuild_options = spec.options();
  rebuild_options.cse = false;
  rebuild_options.dedup_constants = false;
  NetworkSpec spliced(rebuild_options);
  std::vector<int> remap(spec.nodes().size(), -1);
  for (const SpecNode& node : spec.nodes()) {
    if (!keep[static_cast<std::size_t>(node.id)]) continue;
    int new_id = -1;
    if (const auto it = replacements.find(node.id); it != replacements.end()) {
      new_id = spliced.add_field_source(it->second);
    } else {
      switch (node.type) {
        case NodeType::field_source:
          new_id = spliced.add_field_source(node.field_name);
          break;
        case NodeType::constant:
          new_id = spliced.add_constant(node.const_value);
          break;
        case NodeType::filter: {
          std::vector<int> inputs;
          inputs.reserve(node.inputs.size());
          for (const int in : node.inputs) inputs.push_back(remap[in]);
          new_id = spliced.add_filter(node.kind, inputs, node.component);
          break;
        }
      }
    }
    spliced.set_label(new_id, node.label);
    remap[node.id] = new_id;
  }
  spliced.set_output(remap[spec.output_id()]);
  return spliced;
}

bool SubgraphIndex::observe(const dataflow::Network& network,
                            const std::vector<Candidate>& candidates) {
  std::scoped_lock lock(mutex_);
  if (keys_.size() > kMaxKeys) keys_.clear();
  if (subtree_networks_.size() > kMaxKeys) subtree_networks_.clear();

  const std::uint64_t net_fp = network.fingerprint();
  const NetworkSpec& spec = network.spec();
  const std::vector<std::uint64_t>& fps = network.subtree_fingerprints();

  // Near-miss check before this network's own fingerprints register, so a
  // request only counts against *previously seen different* networks.
  bool near_miss = false;
  for (const SpecNode& node : spec.nodes()) {
    if (node.type != NodeType::filter) continue;
    const auto it =
        subtree_networks_.find(fps[static_cast<std::size_t>(node.id)]);
    if (it == subtree_networks_.end()) continue;
    for (const std::uint64_t seen_fp : it->second) {
      if (seen_fp != net_fp) {
        near_miss = true;
        break;
      }
    }
    if (near_miss) break;
  }

  for (const SpecNode& node : spec.nodes()) {
    if (node.type != NodeType::filter) continue;
    std::set<std::uint64_t>& nets =
        subtree_networks_[fps[static_cast<std::size_t>(node.id)]];
    if (nets.size() < 8) nets.insert(net_fp);
  }
  for (const Candidate& candidate : candidates) {
    KeyStats& stats = keys_[candidate.key];
    ++stats.count;
    if (stats.networks.size() < 8) stats.networks.insert(net_fp);
  }
  return near_miss;
}

SubgraphIndex::Popularity SubgraphIndex::popularity(std::uint64_t key) const {
  std::scoped_lock lock(mutex_);
  const auto it = keys_.find(key);
  if (it == keys_.end()) return {};
  return {it->second.count, it->second.networks.size()};
}

}  // namespace dfg::memo
