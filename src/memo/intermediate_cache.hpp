// Memo layer: the materialized-intermediate cache.
//
// Holds the materialized outputs of memoized subtrees — one float per
// element, host-canonical — keyed by the subgraph key (structure ⊕
// bound-array content identity). Device residency is not duplicated here:
// a consumer binds the entry's host array like any other field, so the
// per-device ResidentPool keeps it resident with its usual content-
// identity discipline, pin scopes, watermark and quota cooperation — and
// drops it on device loss/quarantine like every other resident. What the
// cache adds is the cross-device canonical value plus the policies the
// pool cannot provide:
//
//   * Coherence: each entry records the generation tag of every host
//     array its value derives from (vcl::host_generation at
//     materialization). Every lookup re-checks them; a mutation of any
//     dependency (note_host_mutation / Engine::invalidate) drops the
//     entry — dependent intermediates can never be served stale.
//   * LRU-with-cost eviction: when over capacity, the entry with the
//     least estimated recompute-seconds-saved per byte goes first
//     (recompute × (1 + hits) / bytes), LRU among equals. Cheap, cold
//     intermediates make room for expensive, hot ones.
//   * Pin-scoped safety: entries are handed out as shared_ptrs; an
//     eviction concurrent with an in-flight read frees nothing until the
//     reader drops its reference. The evicted storage's generation tag is
//     bumped on the way out, so device-resident copies keyed by its
//     address can never stale-hit after the memory is reused.
//
// Thread safety: internally synchronized; entries are immutable after
// admission (hit counters mutate under the cache lock only).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace dfg::memo {

class IntermediateCache {
 public:
  struct Options {
    /// Total bytes of materialized values kept (host-canonical mirror;
    /// the device copies live in each device's ResidentPool under its own
    /// watermark).
    std::size_t capacity_bytes = 64ull << 20;
  };

  /// Cumulative traffic since construction (unit-test visibility; the
  /// service mirrors these into dfgen_memo_* registry counters).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t admits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
  };

  struct Entry {
    std::uint64_t key = 0;
    std::vector<float> values;
    /// Planner-estimated sim-seconds to recompute this subtree (backend-
    /// efficiency-aware); drives eviction scoring and the bench's
    /// recompute-saved accounting.
    double recompute_seconds = 0.0;
    /// (host array, generation at materialization) for every dependency.
    std::vector<std::pair<const void*, std::uint64_t>> deps;
    std::uint64_t hits = 0;
    std::uint64_t last_use = 0;

    std::size_t bytes() const { return values.size() * sizeof(float); }
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  IntermediateCache();
  explicit IntermediateCache(Options options);
  /// Bumps every remaining entry's storage generation (see drop path).
  ~IntermediateCache();
  IntermediateCache(const IntermediateCache&) = delete;
  IntermediateCache& operator=(const IntermediateCache&) = delete;

  /// Coherent lookup: null on miss. An entry whose recorded dependency
  /// generations no longer match the live tags is dropped (counted as an
  /// invalidation) and reported as a miss.
  EntryPtr lookup(std::uint64_t key);

  /// Inserts a materialized value (dependencies' generations are recorded
  /// by the caller *before* materialization, so a mutation racing the
  /// evaluation invalidates rather than lingers), evicting by
  /// LRU-with-cost until it fits. Values larger than capacity are not
  /// admitted (null). An existing entry under `key` is kept (first write
  /// wins; concurrent workers may materialize the same subtree).
  EntryPtr admit(std::uint64_t key, std::vector<float> values,
                 double recompute_seconds,
                 std::vector<std::pair<const void*, std::uint64_t>> deps);

  /// Drops every entry that depends on `ptr` (explicit invalidation; the
  /// lazy generation check catches mutations anyway — this frees the
  /// bytes immediately).
  void invalidate_dependents(const void* ptr);

  /// Drops everything (teardown, device quarantine).
  void clear();

  std::size_t resident_bytes() const;
  std::size_t entry_count() const;
  std::size_t capacity_bytes() const { return options_.capacity_bytes; }
  Stats stats() const;

 private:
  // The *_locked helpers assume mutex_ is held.
  void drop_locked(std::map<std::uint64_t, std::shared_ptr<Entry>>::iterator
                       it);
  void evict_to_fit_locked(std::size_t incoming_bytes);

  Options options_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<Entry>> entries_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace dfg::memo
