// Memo layer: cross-request subgraph analysis.
//
// The EvalService's coalescer (PR 4) deduplicates *identical* requests —
// same whole-network fingerprint, same bound arrays. Real traffic overlaps
// partially: v_mag, vorticity_mag and q_crit all hang off the same grad3d
// subtrees. This module generalizes "same request" to "same work": it
// names the memoizable subtrees of a request (enumerate_candidates), keys
// them by structure *and* bound-array content identity (the ResidentPool's
// pointer + length + generation discipline), tracks their popularity
// across in-flight requests of different networks (SubgraphIndex), and
// provides the two spec rewrites the memoizer executes with — extracting
// a subtree into a standalone network to materialize it once, and
// splicing a materialized value back into a consumer as a field source.
//
// A memoizable subtree root is a non-output scalar filter whose field
// leaves are all bound and whose subtree contains at least two filters:
// scalar because the spliced replacement is a field source (always one
// component), non-output so the rewritten network stays non-trivial, and
// two+ filters so the candidate set skips work too cheap to ever admit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "dataflow/network.hpp"

namespace dfg::memo {

/// One named host array bound into a request, by content identity. The
/// generation tag is *not* part of the identity here — the cache records
/// generations at materialization time and re-checks them on every lookup,
/// so host mutation invalidates instead of silently forking entries.
struct BoundInput {
  std::string name;
  const float* data = nullptr;
  std::size_t len = 0;
};

/// Everything the memoizer needs to know about one request.
struct EvalContext {
  const dataflow::Network* network = nullptr;
  /// Mesh identity (the service's mesh pointer; meshes are immutable while
  /// bound). Folded into keys of subtrees that read x/y/z/dims.
  const void* mesh = nullptr;
  std::size_t elements = 0;
  /// Non-mesh bound arrays, in request order.
  std::vector<BoundInput> fields;
};

/// One memoizable subtree of a request's network.
struct Candidate {
  /// Spec node id of the subtree root.
  int root = -1;
  /// Structural subtree fingerprint (dataflow::subtree_fingerprints).
  std::uint64_t subtree_fp = 0;
  /// Cache key: subtree_fp ⊕ element count ⊕ the content identity of every
  /// host array the subtree reads (sorted by field name). Equal keys name
  /// the same floats.
  std::uint64_t key = 0;
  /// Filters inside the subtree (recompute-cost proxy for ranking).
  std::size_t filters = 0;
  /// Host arrays the subtree's value derives from (generation-checked by
  /// the cache on every lookup).
  std::vector<const void*> deps;
};

/// Enumerates the memoizable subtrees of ctx.network, largest first
/// (descending filter count, ascending root id among equals) — the order
/// the memoizer greedily selects maximal non-overlapping subtrees in.
std::vector<Candidate> enumerate_candidates(const EvalContext& ctx);

/// Returns the subtree rooted at `root` as a standalone network spec with
/// `root` as its output (prune_unreachable restricted to one root). The
/// materialized evaluation of this spec over the same bound arrays
/// produces bit-exactly the floats the full network computes at `root`.
dataflow::NetworkSpec extract_subtree(const dataflow::NetworkSpec& spec,
                                      int root);

/// Returns a copy of `spec` where each subtree root in `replacements` is
/// replaced by a field source of the mapped name (to be bound to the
/// materialized value) and the now-unreachable subtree interiors are
/// dropped. Labels and the output marker are preserved; ids compact.
dataflow::NetworkSpec splice_materialized(
    const dataflow::NetworkSpec& spec,
    const std::map<int, std::string>& replacements);

/// Cross-request popularity of subtree keys, fed at admission and
/// consulted by the memoizer's cost-model admission: a key is only worth
/// materializing once requests of at least two *different* networks have
/// presented it. Also tracks fingerprint-level near-misses — requests
/// whose whole-network fingerprints differ but which share a non-leaf
/// subtree fingerprint — so the memo hit-rate ceiling is observable even
/// with the memoizer disabled. Internally synchronized.
class SubgraphIndex {
 public:
  struct Popularity {
    /// Requests that presented this key.
    std::size_t count = 0;
    /// Distinct whole-network fingerprints among them.
    std::size_t networks = 0;
  };

  /// Records one admitted request. Returns true when the request shares at
  /// least one non-leaf subtree fingerprint with a previously observed
  /// network of a different whole-network fingerprint (the coalescer
  /// near-miss the service counts).
  bool observe(const dataflow::Network& network,
               const std::vector<Candidate>& candidates);

  Popularity popularity(std::uint64_t key) const;

 private:
  /// Aging bound: the maps reset once they exceed this many keys, so a
  /// long-lived service with churning traffic cannot grow them unboundedly
  /// (popularity then re-accumulates — admission is advisory).
  static constexpr std::size_t kMaxKeys = 1 << 16;

  struct KeyStats {
    std::size_t count = 0;
    std::set<std::uint64_t> networks;
  };

  mutable std::mutex mutex_;
  std::map<std::uint64_t, KeyStats> keys_;
  /// Non-leaf subtree fingerprint -> whole-network fingerprints seen.
  std::map<std::uint64_t, std::set<std::uint64_t>> subtree_networks_;
};

}  // namespace dfg::memo
