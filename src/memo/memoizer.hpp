// Memo layer: the cross-request subgraph memoizer.
//
// The EvalService's memo-aware batch planner, sitting ahead of the
// coalescer's identical-request dedup: where the coalescer fans one
// evaluation out to equal requests, the memoizer makes *different*
// requests share their common subtrees. Per batch it
//
//   1. greedily selects maximal non-overlapping memoizable subtrees of
//      the leader's network (enumerate_candidates order);
//   2. serves selected subtrees from the IntermediateCache when their
//      key (structure ⊕ bound-array content identity) hits — coherently:
//      the cache re-checks every dependency's generation tag;
//   3. on a miss, admits by cost model once the SubgraphIndex has seen
//      the key from two or more distinct networks *and* the planner's
//      backend-efficiency-aware recompute estimate exceeds the cost of
//      one transfer of the materialized bytes (vcl::CostModel) — then
//      materializes the subtree with one standalone evaluation;
//   4. splices each materialized value into the consumer network as a
//      bound field source and evaluates the rewritten network. The
//      spliced subtree prices at zero in all planner estimates because
//      its nodes are simply gone, and the ResidentPool keeps the
//      materialized array device-resident across consumers.
//
// Bit-exactness: every node's value is a deterministic float function of
// its inputs' values, identical across strategies and backends (the
// fuzzer's standing invariant), so cutting the dataflow at a node and
// feeding the materialized floats back produces bit-identical outputs.
//
// Counters are svc-labeled registry series (dfgen_memo_*) resolved per
// call, mirroring the EvalService's pattern; ServiceSnapshot reads them
// back. Thread safety: evaluate() may run concurrently from multiple
// workers with distinct engines; index, cache and counter publication are
// internally synchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/engine.hpp"
#include "memo/intermediate_cache.hpp"
#include "memo/subgraph.hpp"
#include "vcl/profiling.hpp"

namespace dfg::memo {

class Memoizer {
 public:
  struct Options {
    /// IntermediateCache capacity (bytes of materialized values).
    std::size_t capacity_bytes = 64ull << 20;
    /// Registry instance label value for this memoizer's `svc=<N>` series
    /// (the owning service's label, so snapshots stay per-service).
    std::string svc = "0";
  };

  explicit Memoizer(Options options);

  /// Admission-time hook, called for every admitted request whether or
  /// not memoization is enabled: feeds the SubgraphIndex and counts the
  /// coalescer near-miss (dfgen_svc_memo_candidates_total) when the
  /// request shares a non-leaf subtree fingerprint with a previously seen
  /// different network.
  void observe(const EvalContext& ctx);

  /// Memo-aware evaluation of ctx through `engine` (already bound with
  /// the request's mesh and fields). Appends every sub-evaluation's
  /// profiling log to `merged` (the engine clears its log per
  /// evaluation); sub-evaluation device traffic and sim time are folded
  /// into the returned report so throughput accounting stays honest.
  EvaluationReport evaluate(Engine& engine, const EvalContext& ctx,
                            vcl::ProfilingLog* merged);

  /// Drops every cached intermediate (device quarantine, tests).
  void clear() { cache_.clear(); }

  const IntermediateCache& cache() const { return cache_; }

 private:
  void publish_cache_stats();

  Options options_;
  SubgraphIndex index_;
  IntermediateCache cache_;
  std::mutex publish_mutex_;
  IntermediateCache::Stats published_;
};

}  // namespace dfg::memo
