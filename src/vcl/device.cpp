#include "vcl/device.hpp"

#include "kernels/backend.hpp"

// Device::allocate is defined in buffer.cpp next to the Buffer
// implementation to keep the allocation/release pairing in one translation
// unit.

namespace dfg::vcl {

kernels::ExecutionBackend& Device::backend() const {
  if (backend_ != nullptr) return *backend_;
  // Unpinned devices follow the process default on every call, so a
  // harness flipping DFGEN_BACKEND between evaluations takes effect
  // immediately. backend_for returns process-lifetime singletons, so the
  // reference stays valid.
  return *kernels::backend_for(kernels::default_backend_kind());
}

}  // namespace dfg::vcl
