#include "vcl/device.hpp"

// Device::allocate is defined in buffer.cpp next to the Buffer
// implementation to keep the allocation/release pairing in one translation
// unit. This file exists so the device model owns a TU of its own if it
// grows non-inline behaviour.
