#include "vcl/fault.hpp"

#include <cstring>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "vcl/profiling.hpp"

namespace dfg::vcl {

// Pin the plan's layout so a new fault family cannot be added without
// revisiting FaultPlan::armed() (and the coverage test in
// test_fault_injection). If this assert fires you added/removed a member:
// update armed(), the begin_run() counters if needed, and this size.
#if defined(__x86_64__) || defined(__aarch64__)
static_assert(sizeof(FaultPlan) == 112,
              "FaultPlan changed: update FaultPlan::armed() and the "
              "coverage test, then adjust this size");
#endif

void FaultInjector::arm(FaultPlan plan) {
  plan_ = plan;
  armed_ = plan_.armed();
  lost_ = false;
  rng_.seed(plan_.seed);
  begin_run();
}

void FaultInjector::begin_run() {
  alloc_index_ = 0;
  write_index_ = 0;
  read_index_ = 0;
  kernel_index_ = 0;
  command_index_ = 0;
  completed_commands_ = 0;
  slowdown_recorded_ = false;
  run_faults_ = 0;
  run_alloc_faults_ = 0;
  run_transient_faults_ = 0;
  run_corrupt_faults_ = 0;
}

void FaultInjector::record(const std::string& label) {
  ++run_faults_;
  // Counted here, not at the sink: the injector survives device
  // replacement (the distributed engine swaps quarantined devices), so the
  // registry total tracks every injection even when the sink changes.
  obs::MetricsRegistry& reg = obs::metrics();
  reg.add(reg.counter("dfgen_vcl_faults_injected_total",
                      {{"device", device_name_}}));
  if (sink_ != nullptr) {
    sink_->record(Event{EventKind::fault, label, 0, 0, 0.0, 0.0});
  }
}

void FaultInjector::on_alloc(std::size_t bytes, std::size_t in_use,
                             std::size_t capacity) {
  if (!armed_) return;
  if (lost_) {
    record("fault:lost:alloc");
    throw DeviceLost(device_name_);
  }
  ++alloc_index_;
  if (plan_.fail_alloc_index != 0 && alloc_index_ == plan_.fail_alloc_index) {
    ++run_alloc_faults_;
    record("fault:alloc#" + std::to_string(alloc_index_));
    throw DeviceOutOfMemory(device_name_, bytes, in_use, capacity);
  }
  const std::size_t cap = plan_.synthetic_capacity_bytes;
  if (cap != 0 && (bytes > cap || in_use > cap - bytes)) {
    ++run_alloc_faults_;
    record("fault:capacity");
    throw DeviceOutOfMemory(device_name_, bytes, in_use, cap);
  }
}

CommandPerturbation FaultInjector::on_enqueue(EventKind site,
                                              const std::string& label) {
  if (!armed_) return {};
  const char* site_name = event_kind_name(site);
  if (lost_) {
    record(std::string("fault:lost:") + site_name + ":" + label);
    throw DeviceLost(device_name_);
  }
  if (plan_.lose_device_after != 0 &&
      completed_commands_ >= plan_.lose_device_after) {
    lost_ = true;
    record(std::string("fault:device-lost:") + site_name + ":" + label);
    throw DeviceLost(device_name_);
  }

  std::size_t* index = nullptr;
  std::size_t fail_at = 0;
  std::size_t corrupt_at = 0;
  switch (site) {
    case EventKind::host_to_device:
      index = &write_index_;
      fail_at = plan_.fail_write_index;
      corrupt_at = plan_.corrupt_write_index;
      break;
    case EventKind::device_to_host:
      index = &read_index_;
      fail_at = plan_.fail_read_index;
      corrupt_at = plan_.corrupt_read_index;
      break;
    case EventKind::kernel_exec:
      index = &kernel_index_;
      fail_at = plan_.fail_kernel_index;
      break;
    default:
      return {};  // not an enqueue site
  }
  const std::size_t i = ++(*index);
  const std::size_t command = ++command_index_;
  const std::size_t window =
      static_cast<std::size_t>(plan_.transient_count > 0
                                   ? plan_.transient_count
                                   : 1);
  if (fail_at != 0 && i >= fail_at && i < fail_at + window) {
    ++run_transient_faults_;
    record(std::string("fault:") + site_name + ":" + label);
    throw DeviceError(device_name_, site_name, label);
  }

  CommandPerturbation perturbation;
  if (plan_.hang_command_index != 0 &&
      command == plan_.hang_command_index) {
    record(std::string("fault:hang:") + site_name + ":" + label);
    perturbation.hang = true;
  }
  if (plan_.slow_command_index != 0 && plan_.slowdown_factor > 1.0 &&
      command >= plan_.slow_command_index) {
    perturbation.time_scale = plan_.slowdown_factor;
    // One fault event marks the onset; recording every slowed command
    // would swamp the log (the slowdown itself is visible as inflated or
    // timed-out command durations).
    if (!slowdown_recorded_) {
      slowdown_recorded_ = true;
      record("fault:slowdown:x" + std::to_string(plan_.slowdown_factor));
    }
  }
  const std::size_t corrupt_window = static_cast<std::size_t>(
      plan_.corrupt_count > 0 ? plan_.corrupt_count : 1);
  if (corrupt_at != 0 && i >= corrupt_at && i < corrupt_at + corrupt_window) {
    perturbation.corrupt = true;
  }
  return perturbation;
}

void FaultInjector::corrupt_word(EventKind site, const std::string& label,
                                 std::span<float> data) {
  if (data.empty()) return;
  // Deterministic target: word and bit derived from the plan seed and the
  // extent. The flipped bit lands in the mantissa, so the corrupted value
  // stays ordinary — exactly the silent kind of corruption checksums
  // exist to catch.
  const std::size_t word =
      (static_cast<std::size_t>(plan_.seed) * 2654435761u + data.size()) %
      data.size();
  std::uint32_t bits;
  std::memcpy(&bits, &data[word], sizeof(bits));
  bits ^= 1u << (plan_.seed % 23u);
  std::memcpy(&data[word], &bits, sizeof(bits));
  ++run_corrupt_faults_;
  record(std::string("fault:bit-flip:") + event_kind_name(site) + ":" +
         label + "@" + std::to_string(word));
}

double FaultInjector::backoff_seconds(int attempt, const RetryPolicy& policy) {
  double us = policy.backoff_base_us;
  for (int a = 1; a < attempt; ++a) us *= policy.backoff_multiplier;
  std::uniform_real_distribution<double> jitter(0.0, 1.0);
  us *= 1.0 + policy.backoff_jitter * jitter(rng_);
  return us * 1.0e-6;
}

std::size_t FaultInjector::synthetic_available(std::size_t in_use) const {
  const std::size_t cap = armed_ ? plan_.synthetic_capacity_bytes : 0;
  if (cap == 0) return std::numeric_limits<std::size_t>::max();
  return cap > in_use ? cap - in_use : 0;
}

}  // namespace dfg::vcl
