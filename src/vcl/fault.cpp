#include "vcl/fault.hpp"

#include <limits>
#include <utility>

#include "support/error.hpp"
#include "vcl/profiling.hpp"

namespace dfg::vcl {

void FaultInjector::arm(FaultPlan plan) {
  plan_ = plan;
  armed_ = plan_.armed();
  lost_ = false;
  rng_.seed(plan_.seed);
  begin_run();
}

void FaultInjector::begin_run() {
  alloc_index_ = 0;
  write_index_ = 0;
  read_index_ = 0;
  kernel_index_ = 0;
  completed_commands_ = 0;
  run_faults_ = 0;
  run_alloc_faults_ = 0;
  run_transient_faults_ = 0;
}

void FaultInjector::record(const std::string& label) {
  ++run_faults_;
  if (sink_ != nullptr) {
    sink_->record(Event{EventKind::fault, label, 0, 0, 0.0, 0.0});
  }
}

void FaultInjector::on_alloc(std::size_t bytes, std::size_t in_use,
                             std::size_t capacity) {
  if (!armed_) return;
  if (lost_) {
    record("fault:lost:alloc");
    throw DeviceLost(device_name_);
  }
  ++alloc_index_;
  if (plan_.fail_alloc_index != 0 && alloc_index_ == plan_.fail_alloc_index) {
    ++run_alloc_faults_;
    record("fault:alloc#" + std::to_string(alloc_index_));
    throw DeviceOutOfMemory(device_name_, bytes, in_use, capacity);
  }
  const std::size_t cap = plan_.synthetic_capacity_bytes;
  if (cap != 0 && (bytes > cap || in_use > cap - bytes)) {
    ++run_alloc_faults_;
    record("fault:capacity");
    throw DeviceOutOfMemory(device_name_, bytes, in_use, cap);
  }
}

void FaultInjector::on_enqueue(EventKind site, const std::string& label) {
  if (!armed_) return;
  const char* site_name = event_kind_name(site);
  if (lost_) {
    record(std::string("fault:lost:") + site_name + ":" + label);
    throw DeviceLost(device_name_);
  }
  if (plan_.lose_device_after != 0 &&
      completed_commands_ >= plan_.lose_device_after) {
    lost_ = true;
    record(std::string("fault:device-lost:") + site_name + ":" + label);
    throw DeviceLost(device_name_);
  }

  std::size_t* index = nullptr;
  std::size_t fail_at = 0;
  switch (site) {
    case EventKind::host_to_device:
      index = &write_index_;
      fail_at = plan_.fail_write_index;
      break;
    case EventKind::device_to_host:
      index = &read_index_;
      fail_at = plan_.fail_read_index;
      break;
    case EventKind::kernel_exec:
      index = &kernel_index_;
      fail_at = plan_.fail_kernel_index;
      break;
    case EventKind::fault:
      return;  // not an enqueue site
  }
  const std::size_t i = ++(*index);
  const std::size_t window =
      static_cast<std::size_t>(plan_.transient_count > 0
                                   ? plan_.transient_count
                                   : 1);
  if (fail_at != 0 && i >= fail_at && i < fail_at + window) {
    ++run_transient_faults_;
    record(std::string("fault:") + site_name + ":" + label);
    throw DeviceError(device_name_, site_name, label);
  }
}

double FaultInjector::backoff_seconds(int attempt, const RetryPolicy& policy) {
  double us = policy.backoff_base_us;
  for (int a = 1; a < attempt; ++a) us *= policy.backoff_multiplier;
  std::uniform_real_distribution<double> jitter(0.0, 1.0);
  us *= 1.0 + policy.backoff_jitter * jitter(rng_);
  return us * 1.0e-6;
}

std::size_t FaultInjector::synthetic_available(std::size_t in_use) const {
  const std::size_t cap = armed_ ? plan_.synthetic_capacity_bytes : 0;
  if (cap == 0) return std::numeric_limits<std::size_t>::max();
  return cap > in_use ? cap - in_use : 0;
}

}  // namespace dfg::vcl
