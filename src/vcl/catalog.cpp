#include "vcl/catalog.hpp"

namespace dfg::vcl {

namespace {
constexpr std::size_t kGiB = std::size_t(1) << 30;
constexpr std::size_t kMiB = std::size_t(1) << 20;
}  // namespace

DeviceSpec xeon_x5660() {
  DeviceSpec spec;
  spec.name = "Intel Xeon X5660 (virtual OpenCL CPU)";
  spec.type = DeviceType::cpu;
  // The CPU OpenCL device shares the node's 96 GB of host RAM.
  spec.global_mem_bytes = 96 * kGiB;
  spec.compute_units = 12;  // two six-core sockets
  // "Transfers" to a CPU device are host-side memcpys: read + write traffic
  // against the same DDR3 halves the effective copy bandwidth.
  spec.transfer_gbps = 5.0;
  spec.transfer_latency_us = 2.0;
  spec.global_mem_gbps = 18.0;  // triple-channel DDR3, streaming, derated
  spec.gflops = 120.0;          // 12 cores x 2.8 GHz x 4-wide SSE (sp)
  spec.launch_overhead_us = 25.0;
  spec.register_budget = 256;  // spilling to stack is cheap on a CPU
  return spec;
}

DeviceSpec tesla_m2050() {
  DeviceSpec spec;
  spec.name = "NVIDIA Tesla M2050 (virtual OpenCL GPU)";
  spec.type = DeviceType::gpu;
  // 3 GiB GDDR5 physically; Edge runs with ECC enabled, which reserves
  // 12.5% of Fermi device memory, leaving ~2.62 GiB allocatable.
  spec.global_mem_bytes = 3 * kGiB / 8 * 7;
  spec.compute_units = 14;  // Fermi SMs
  spec.transfer_gbps = 5.5;  // PCIe gen2 x16, effective
  spec.transfer_latency_us = 12.0;
  spec.global_mem_gbps = 110.0;  // 148 GB/s peak GDDR5, derated
  spec.gflops = 1030.0;          // single precision peak
  spec.launch_overhead_us = 8.0;
  spec.register_budget = 63;  // Fermi per-thread register limit
  return spec;
}

DeviceSpec xeon_x5660_scaled() {
  DeviceSpec spec = xeon_x5660();
  spec.name = "Intel Xeon X5660 (virtual, 1/64 scale)";
  spec.global_mem_bytes /= 64;
  return spec;
}

DeviceSpec tesla_m2050_scaled() {
  DeviceSpec spec = tesla_m2050();
  spec.name = "NVIDIA Tesla M2050 (virtual, 1/64 scale)";
  spec.global_mem_bytes = 42 * kMiB;  // (3 GiB * 7/8 ECC) / 64
  return spec;
}

}  // namespace dfg::vcl
