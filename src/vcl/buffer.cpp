#include "vcl/buffer.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "vcl/device.hpp"

namespace dfg::vcl {

Buffer::Buffer(Device& device, std::size_t elements) : device_(&device) {
  const std::size_t bytes = elements * sizeof(float);
  // The fault injector sees the allocation before the tracker commits, so
  // an injected DeviceOutOfMemory (scheduled or synthetic-capacity) leaves
  // the tracker untouched, exactly like a real over-capacity failure.
  device_->fault().on_alloc(bytes, device_->memory().in_use(),
                            device_->memory().capacity());
  device_->memory().reserve(bytes);
  {
    obs::MetricsRegistry& reg = obs::metrics();
    reg.gauge_max(reg.gauge("dfgen_vcl_buffer_high_water_bytes",
                            {{"device", device_->spec().name}}),
                  device_->memory().high_water());
  }
  // Reserve happened first: if it throws, no storage is allocated and the
  // tracker is untouched.
  storage_.assign(elements, 0.0f);
}

Buffer::~Buffer() { release(); }

Buffer::Buffer(Buffer&& other) noexcept
    : device_(std::exchange(other.device_, nullptr)),
      storage_(std::move(other.storage_)) {
  other.storage_.clear();
}

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this != &other) {
    release();
    device_ = std::exchange(other.device_, nullptr);
    storage_ = std::move(other.storage_);
    other.storage_.clear();
  }
  return *this;
}

void Buffer::release() {
  if (device_ != nullptr) {
    device_->memory().release(bytes());
    device_ = nullptr;
    storage_.clear();
    storage_.shrink_to_fit();
  }
}

Buffer Device::allocate(std::size_t elements) {
  for (;;) {
    try {
      return Buffer(*this, elements);
    } catch (const DeviceOutOfMemory&) {
      // Only genuine capacity pressure (real or synthetic) justifies
      // shrinking the resident pool. A quota veto or a scheduled alloc
      // fault throws the same type while the device itself has room —
      // evicting residents would not change their outcome, so those
      // surface unchanged.
      if (elements * sizeof(float) <= effective_available()) throw;
      if (resident_.evict_lru_unpinned() == 0) throw;
    }
  }
}

}  // namespace dfg::vcl
