// Virtual compute layer: profiling events.
//
// Mirrors the OpenCL device-event profiling API the paper's "OpenCL
// environment interface" is built on. Every queue operation produces one
// Event categorised as a host-to-device transfer, a device-to-host
// transfer, or a kernel execution — exactly the three categories of
// Table II (Dev-W / Dev-R / K-Exe).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace dfg::vcl {

enum class EventKind : int {
  host_to_device = 0,  ///< Dev-W in the paper's Table II.
  device_to_host = 1,  ///< Dev-R.
  kernel_exec = 2,     ///< K-Exe.
  /// An injected fault or a retry of a faulted command. Never produced by a
  /// healthy run: Table II's three categories stay byte-identical when no
  /// FaultPlan is armed.
  fault = 3,
  /// The watchdog abandoned a command that exceeded its deadline (k times
  /// the cost-model estimate). The event's sim_seconds is the deadline —
  /// the simulated time the device was tied up before the abort. Never
  /// produced by a healthy run.
  timeout = 4,
  /// A transfer's destination checksum did not match its source: silent
  /// corruption detected (and the transfer re-executed). Never produced by
  /// a healthy run.
  integrity = 5,
};

constexpr int kEventKindCount = 6;

/// Human-readable name ("Dev-W", "Dev-R", "K-Exe", "Fault", "T-Out",
/// "Chksum").
const char* event_kind_name(EventKind kind);

/// Metric-label slug ("host_to_device", "device_to_host", "kernel_exec",
/// "fault", "timeout", "integrity") — the `kind` label every per-device
/// obs counter and histogram uses.
const char* event_kind_slug(EventKind kind);

struct Event {
  EventKind kind = EventKind::kernel_exec;
  /// Free-form label, e.g. the kernel or buffer name; for diagnostics only.
  std::string label;
  /// Bytes moved (transfers) or read+written against global memory (kernels).
  std::size_t bytes = 0;
  /// Floating point operations performed (kernels only).
  std::uint64_t flops = 0;
  /// Duration attributed by the device cost model (seconds). This is the
  /// quantity the runtime study (Figure 5) reports.
  double sim_seconds = 0.0;
  /// Real host wall-clock duration of the virtual operation (seconds).
  double wall_seconds = 0.0;
};

}  // namespace dfg::vcl
