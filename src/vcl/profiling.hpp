// Virtual compute layer: profiling log.
//
// The paper's framework "records and categorizes timing events" through an
// OpenCL environment interface; this class is that interface. It
// accumulates events per category and exposes the aggregates the three
// evaluation studies need: event counts (Table II), summed simulated time
// (Figure 5) and bytes moved.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "vcl/event.hpp"

namespace dfg::vcl {

class ProfilingLog {
 public:
  void record(Event event);

  /// Appends every event of `other` (the distributed engine executes each
  /// block into a private log and merges it into the owning rank's log —
  /// or discards it, when a straggler's attempt is abandoned).
  void append(const ProfilingLog& other);

  /// Number of events of one kind (e.g. Dev-W count for Table II).
  std::size_t count(EventKind kind) const;
  std::size_t total_count() const;

  /// Summed simulated duration over one kind / over everything (seconds).
  double sim_seconds(EventKind kind) const;
  double total_sim_seconds() const;

  /// Summed wall-clock duration over everything (seconds).
  double total_wall_seconds() const;

  /// Bytes moved by events of one kind.
  std::size_t bytes(EventKind kind) const;

  /// Total floating point operations recorded on kernel events.
  std::uint64_t total_flops() const;

  const std::vector<Event>& events() const { return events_; }

  void clear();

 private:
  std::vector<Event> events_;
  std::array<std::size_t, kEventKindCount> counts_{};
  std::array<double, kEventKindCount> sim_seconds_{};
  std::array<std::size_t, kEventKindCount> bytes_{};
  double wall_seconds_ = 0.0;
  std::uint64_t flops_ = 0;
};

}  // namespace dfg::vcl
