// Virtual compute layer: transfer/compute overlap analysis.
//
// The streamed strategy issues (upload, kernel, read) triples per chunk.
// On real hardware those stages can overlap: every discrete GPU has at
// least one DMA copy engine running concurrently with the compute engine,
// and Tesla-class Fermi boards (like the paper's M2050) have two copy
// engines, so uploads of chunk k+1, compute of chunk k and readback of
// chunk k-1 can all proceed at once. This module computes the pipeline
// makespan of a chunk sequence under three machine models:
//
//   * serial        — one engine, fully in-order (what the virtual
//                     command queue executes; the baseline the profiling
//                     log reports);
//   * single copy   — one copy engine shared by uploads and readbacks,
//                     overlapping with the compute engine;
//   * dual copy     — dedicated upload and readback engines (M2050).
//
// Dependencies per chunk: kernel after its upload, readback after its
// kernel; each engine processes its work in issue order.
#pragma once

#include <cstddef>
#include <span>

namespace dfg::vcl {

/// Stage durations of one streamed chunk, in seconds.
struct ChunkCost {
  double upload = 0.0;
  double kernel = 0.0;
  double read = 0.0;
};

struct PipelineResult {
  double serial = 0.0;
  double overlap_single_copy = 0.0;
  double overlap_dual_copy = 0.0;
};

/// Makespan of executing the chunks in order under each machine model.
PipelineResult pipeline_makespan(std::span<const ChunkCost> chunks);

}  // namespace dfg::vcl
