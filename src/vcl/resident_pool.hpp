// Virtual compute layer: content-identity resident-buffer pool.
//
// The paper's host interface re-uploads every bound array on every
// evaluation, even when consecutive evaluations bind the exact same host
// arrays — the common case for repeated-workload traffic (a visualization
// client re-deriving fields from one time step, the evaluation service
// re-running a tenant's expression). This pool keeps those uploads
// *resident* on their device across evaluations, keyed by content
// identity:
//
//     (host pointer, length in floats, generation tag)
//
// A strategy that is about to upload a bound array first asks the pool;
// a hit reuses the device buffer from a previous evaluation and the
// transfer is eliminated entirely (no Dev-W event, no simulated transfer
// time). A miss uploads through the normal profiled path and the buffer
// stays in the pool afterwards.
//
// Coherence is explicit, like OpenCL's: the framework never copies bound
// arrays (the in-situ contract, paper §III-D), so it cannot observe host
// mutation. A caller that mutates — or frees and re-creates — a bound
// array must bump its generation tag with note_host_mutation() (or
// Engine::invalidate). The pool compares the tag recorded at upload time
// with the current tag on every acquire; a mismatch drops the stale entry
// and re-uploads. FieldBindings bumps tags for arrays it owns when they
// are destroyed, so short-lived owned arrays can never produce a stale
// hit through pointer reuse. Transient intermediates (roundtrip host
// values, slab dims arrays) are never pooled at all.
//
// Capacity cooperation:
//   * residents are charged to the device's MemoryTracker like any buffer,
//     but with the AllocationHook suspended — session quotas bound each
//     evaluation's *transient* working set, while residents are
//     device-level state shared across sessions;
//   * the pool keeps itself under a watermark fraction of device capacity
//     with LRU eviction, and Device::allocate evicts unpinned residents
//     one by one when a transient allocation hits the capacity wall, so a
//     full pool degrades to exactly the cold-path behaviour instead of
//     causing spurious DeviceOutOfMemory;
//   * entries acquired under a PinScope are pinned until the scope closes
//     (the engine opens one per evaluation, slab execution one per chunk),
//     so eviction can never free a buffer a running kernel still reads.
//
// Thread safety: the pool is internally synchronized. Strategies acquire
// from the device's evaluating thread, but invalidation arrives from
// wherever the host mutates data — Engine::invalidate on another session's
// thread, the service's bind teardown — and Device::allocate's evict-retry
// may run concurrently with either. All public methods lock one pool
// mutex; the only state readable without it is the atomic counters and the
// enabled flag. Pinned entries are never freed by a concurrent
// invalidation: they are doomed and erased at the last unpin, so an
// in-flight evaluation keeps its buffers while losing the race only for
// *future* hits.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "vcl/buffer.hpp"

namespace dfg::vcl {

class Device;
class CommandQueue;

/// Current generation tag of a host allocation (0 until first mutation).
/// Process-wide and thread-safe: the evaluation service's workers consult
/// it concurrently.
std::uint64_t host_generation(const void* ptr);

/// Bumps the generation tag of a host allocation. Call after mutating a
/// bound array in place, or after freeing it (so a new array that reuses
/// the address can never stale-hit). Engine::invalidate and FieldBindings'
/// owned-array teardown call this; hosts mutating their own arrays call it
/// directly (or through Engine::invalidate).
void note_host_mutation(const void* ptr);

class ResidentPool {
 public:
  /// Cumulative traffic counters. Atomic so snapshot readers on other
  /// threads (the service) race-freely observe a device they do not drive.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t upload_bytes_saved = 0;
  };

  /// Pins every entry acquired while it is the innermost open scope, and
  /// unpins them on destruction. Strategies hold buffers only inside the
  /// evaluation (or, for slab execution, inside one chunk), so scopes give
  /// eviction an exact definition of "in use".
  class PinScope {
   public:
    explicit PinScope(ResidentPool& pool);
    ~PinScope();
    PinScope(const PinScope&) = delete;
    PinScope& operator=(const PinScope&) = delete;

   private:
    friend class ResidentPool;
    ResidentPool* pool_;
    PinScope* parent_;
    /// Keys pinned under this scope (an entry acquired twice is recorded
    /// twice and unpinned twice — pin counts balance exactly).
    std::vector<std::pair<const void*, std::size_t>> keys_;
  };

  explicit ResidentPool(Device& device);
  ~ResidentPool();
  ResidentPool(const ResidentPool&) = delete;
  ResidentPool& operator=(const ResidentPool&) = delete;

  /// Gate consulted on every acquire. Disabled (the default), acquire
  /// returns nullptr without touching any state, so the cold upload path
  /// is byte-identical to a build without the pool. Entries survive a
  /// disable: re-enabling sees the old residents (generation checks keep
  /// them honest).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Fraction of device capacity the pool may occupy (LRU-evicted back
  /// under it on insert). Clamped to [0, 1].
  void set_watermark_fraction(double fraction);
  double watermark_fraction() const;

  /// Returns a resident device buffer holding `host`, or nullptr when the
  /// caller must take the cold path (pool disabled, array larger than the
  /// watermark, or no room and nothing evictable). On a hit no transfer
  /// happens; on a miss the array is uploaded through `queue` under
  /// `label` — the same profiled write the cold path would issue — and
  /// stays resident. `generation_key` identifies the allocation whose
  /// generation tag governs this span; defaults to host.data() and is
  /// overridden by slab execution, whose sub-range uploads must follow the
  /// *base* array's tag.
  const Buffer* acquire(CommandQueue& queue, std::span<const float> host,
                        const std::string& label,
                        const void* generation_key = nullptr);

  /// True when acquire() would hit right now (no state is touched). The
  /// planner's residency probe prices warm inputs with this.
  bool would_hit(std::span<const float> host,
                 const void* generation_key = nullptr) const;

  /// Drops every entry whose host pointer is `ptr` (all lengths).
  void invalidate(const void* ptr);

  /// Drops everything (device quarantine, teardown).
  void clear();

  /// Evicts the least-recently-used unpinned entry; returns the bytes
  /// freed (0 when nothing is evictable). Device::allocate calls this to
  /// make room for transient allocations.
  std::size_t evict_lru_unpinned();

  std::size_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t entry_count() const;
  std::size_t watermark_bytes() const;

  Stats stats() const;

 private:
  struct Key {
    const void* ptr = nullptr;
    std::size_t len = 0;
    bool operator<(const Key& other) const {
      return ptr != other.ptr ? ptr < other.ptr : len < other.len;
    }
  };
  struct Entry {
    Buffer buffer;
    std::uint64_t generation = 0;
    std::uint64_t last_use = 0;
    int pins = 0;
    /// Invalidated while pinned: never hits again, erased at unpin.
    bool doomed = false;
  };
  using EntryMap = std::map<Key, Entry>;

  // The *_locked helpers assume mutex_ is held by the caller.
  void pin_locked(EntryMap::iterator it);
  void end_scope(PinScope& scope);
  std::size_t evict_lru_unpinned_locked();
  std::size_t watermark_bytes_locked() const;
  /// Erases an entry (hook suspended) and keeps resident_bytes_ exact.
  void erase_entry_locked(EntryMap::iterator it);
  /// Invalidation path: erase now, or doom until unpinned.
  void drop_entry_locked(EntryMap::iterator it);
  void count(std::uint64_t Stats::*member, const char* counter,
             std::uint64_t delta = 1);
  void publish_gauge();

  Device* device_;
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  double watermark_fraction_ = 0.5;
  EntryMap entries_;
  std::uint64_t tick_ = 0;
  PinScope* active_scope_ = nullptr;
  std::atomic<std::size_t> resident_bytes_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> upload_bytes_saved_{0};
};

}  // namespace dfg::vcl
