#include "vcl/profiling.hpp"

#include <utility>

namespace dfg::vcl {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::host_to_device:
      return "Dev-W";
    case EventKind::device_to_host:
      return "Dev-R";
    case EventKind::kernel_exec:
      return "K-Exe";
    case EventKind::fault:
      return "Fault";
    case EventKind::timeout:
      return "T-Out";
    case EventKind::integrity:
      return "Chksum";
  }
  return "?";
}

const char* event_kind_slug(EventKind kind) {
  switch (kind) {
    case EventKind::host_to_device:
      return "host_to_device";
    case EventKind::device_to_host:
      return "device_to_host";
    case EventKind::kernel_exec:
      return "kernel_exec";
    case EventKind::fault:
      return "fault";
    case EventKind::timeout:
      return "timeout";
    case EventKind::integrity:
      return "integrity";
  }
  return "unknown";
}

void ProfilingLog::record(Event event) {
  const auto idx = static_cast<std::size_t>(event.kind);
  counts_[idx] += 1;
  sim_seconds_[idx] += event.sim_seconds;
  bytes_[idx] += event.bytes;
  wall_seconds_ += event.wall_seconds;
  flops_ += event.flops;
  events_.push_back(std::move(event));
}

void ProfilingLog::append(const ProfilingLog& other) {
  events_.reserve(events_.size() + other.events_.size());
  for (const Event& event : other.events_) record(event);
}

std::size_t ProfilingLog::count(EventKind kind) const {
  return counts_[static_cast<std::size_t>(kind)];
}

std::size_t ProfilingLog::total_count() const { return events_.size(); }

double ProfilingLog::sim_seconds(EventKind kind) const {
  return sim_seconds_[static_cast<std::size_t>(kind)];
}

double ProfilingLog::total_sim_seconds() const {
  double total = 0.0;
  for (double s : sim_seconds_) total += s;
  return total;
}

double ProfilingLog::total_wall_seconds() const { return wall_seconds_; }

std::size_t ProfilingLog::bytes(EventKind kind) const {
  return bytes_[static_cast<std::size_t>(kind)];
}

std::uint64_t ProfilingLog::total_flops() const { return flops_; }

void ProfilingLog::clear() {
  events_.clear();
  counts_.fill(0);
  sim_seconds_.fill(0.0);
  bytes_.fill(0);
  wall_seconds_ = 0.0;
  flops_ = 0;
}

}  // namespace dfg::vcl
