// Virtual compute layer: device model.
//
// The paper executes on OpenCL 1.1 devices (an Intel Xeon X5660 CPU runtime
// and an NVIDIA Tesla M2050 GPU). This module substitutes a *virtual* OpenCL
// device: it reproduces the parts of the OpenCL device model the paper's
// evaluation depends on —
//   * a global memory pool with a hard capacity, enforced at buffer
//     allocation time (the source of the paper's failed GPU test cases),
//   * allocation tracking with a high-water mark (Figure 6's metric),
//   * a performance envelope (bandwidths, flop rate, overheads) consumed by
//     the cost model to attribute simulated durations to profiling events
//     (Figure 5's metric).
// Kernels genuinely execute on the host, so results are numerically real;
// only the *timing* is simulated.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "support/error.hpp"
#include "vcl/fault.hpp"
#include "vcl/resident_pool.hpp"

namespace dfg::kernels {
class ExecutionBackend;
}  // namespace dfg::kernels

namespace dfg::vcl {

enum class DeviceType { cpu, gpu };

/// Static description of a virtual OpenCL device. The performance fields
/// parameterise the cost model; the capacity field parameterises the
/// allocator.
struct DeviceSpec {
  std::string name;
  DeviceType type = DeviceType::cpu;
  /// Hard capacity of device global memory, enforced by the allocator.
  std::size_t global_mem_bytes = 0;
  int compute_units = 1;
  /// Host<->device transfer bandwidth (GB/s) and per-transfer latency (us).
  /// For a CPU device the "transfer" is a host-side copy, so bandwidth is
  /// high and latency low; for a GPU it models the PCIe link.
  double transfer_gbps = 1.0;
  double transfer_latency_us = 0.0;
  /// Device global memory streaming bandwidth (GB/s).
  double global_mem_gbps = 1.0;
  /// Peak single-precision throughput (GFLOP/s).
  double gflops = 1.0;
  /// Fixed overhead charged per kernel dispatch (us).
  double launch_overhead_us = 0.0;
  /// Per-work-item register budget before the cost model charges a spill
  /// penalty (mirrors the paper's note that fused kernels must avoid
  /// spilling local registers into global memory).
  int register_budget = 64;
};

/// Observer of one device's allocation traffic, consulted by the
/// MemoryTracker on every reserve/release. The evaluation service installs
/// one per executing request to charge device bytes against the owning
/// session's quota; on_reserve may throw DeviceOutOfMemory to veto the
/// allocation — the tracker stays untouched, so the fallback ladder sees an
/// ordinary capacity failure and degrades to a cheaper strategy instead of
/// letting one tenant take the whole device.
class AllocationHook {
 public:
  virtual ~AllocationHook() = default;
  /// Called before the tracker commits `bytes`. Throwing aborts the
  /// allocation without changing tracker state.
  virtual void on_reserve(std::size_t bytes) = 0;
  /// Called after the tracker releases `bytes`. Must not throw.
  virtual void on_release(std::size_t bytes) = 0;
};

/// Tracks live device allocations against a capacity and records the
/// high-water mark. reserve() throws DeviceOutOfMemory when the capacity
/// would be exceeded, leaving the tracker unchanged.
///
/// Internally synchronized: the resident pool may release device buffers
/// from a thread that is not driving the device (Engine::invalidate from
/// another session while an evaluation is in flight), so reserve/release
/// must tolerate concurrent callers. The hook is still called under the
/// tracker lock, preserving the reserve-then-veto atomicity quotas rely on.
class MemoryTracker {
 public:
  MemoryTracker(std::string device_name, std::size_t capacity_bytes)
      : device_name_(std::move(device_name)), capacity_(capacity_bytes) {}
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// RAII: suspends hook callbacks for reserve/release calls made by the
  /// *calling thread* while alive. Thread-local rather than clearing the
  /// hook pointer, so a concurrent thread's allocations still see the
  /// hook (the resident pool suspends accounting for its own traffic
  /// without un-hooking whichever session is currently metered).
  class HookSuspension {
   public:
    HookSuspension() { ++t_hook_suspended_; }
    ~HookSuspension() { --t_hook_suspended_; }
    HookSuspension(const HookSuspension&) = delete;
    HookSuspension& operator=(const HookSuspension&) = delete;
  };

  void reserve(std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (bytes > capacity_ - in_use_) {
      throw DeviceOutOfMemory(device_name_, bytes, in_use_, capacity_);
    }
    // The hook may veto (throw) before any state changes; ordering keeps
    // veto semantics identical to a real over-capacity failure.
    if (hook_ != nullptr && t_hook_suspended_ == 0) hook_->on_reserve(bytes);
    in_use_ += bytes;
    if (in_use_ > high_water_) high_water_ = in_use_;
  }

  void release(std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    in_use_ = bytes > in_use_ ? 0 : in_use_ - bytes;
    if (hook_ != nullptr && t_hook_suspended_ == 0) hook_->on_release(bytes);
  }

  /// Installs (or clears, with nullptr) the accounting hook. The hook must
  /// outlive every allocation made while it is installed; callers install
  /// it only while they have exclusive use of the device.
  void set_hook(AllocationHook* hook) {
    std::lock_guard<std::mutex> lock(mutex_);
    hook_ = hook;
  }
  AllocationHook* hook() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hook_;
  }

  std::size_t in_use() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return in_use_;
  }
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }
  std::size_t capacity() const { return capacity_; }
  std::size_t available() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_ - in_use_;
  }

  /// Resets the high-water mark to the current usage (used between test
  /// cases; live buffers keep counting).
  void reset_high_water() {
    std::lock_guard<std::mutex> lock(mutex_);
    high_water_ = in_use_;
  }

 private:
  inline static thread_local int t_hook_suspended_ = 0;

  std::string device_name_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  AllocationHook* hook_ = nullptr;
};

class Buffer;

/// A virtual OpenCL device: a spec plus an allocator. Buffers reference the
/// device that created them and must not outlive it.
class Device {
 public:
  explicit Device(DeviceSpec spec)
      : spec_(std::move(spec)),
        memory_(spec_.name, spec_.global_mem_bytes),
        fault_(spec_.name),
        resident_(*this) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  MemoryTracker& memory() { return memory_; }
  const MemoryTracker& memory() const { return memory_; }

  /// Fault-injection state: arm a FaultPlan here to synthesize allocation
  /// failures, transient command errors, or whole-device loss. Unarmed, the
  /// injector is inert and the device behaves exactly as before.
  FaultInjector& fault() { return fault_; }
  const FaultInjector& fault() const { return fault_; }

  /// Retry behaviour the command queue applies to transient command faults.
  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Watchdog deadline: a command whose simulated duration exceeds
  /// `factor` times its cost-model estimate is abandoned with
  /// DeviceTimeout. A healthy command runs at exactly its estimate, so any
  /// factor > 1 never trips on a clean device. Values <= 0 disable the
  /// slowdown watchdog — but a command that would *never* complete (an
  /// injected hang) still times out rather than stalling the process.
  void set_watchdog_factor(double factor) { watchdog_factor_ = factor; }
  double watchdog_factor() const { return watchdog_factor_; }

  /// Free memory actually allocatable right now: the tracker's headroom
  /// clamped by any armed synthetic capacity. Consumers that size working
  /// sets to the device (the streamed auto-sizer, the strategy planner)
  /// must use this, not the raw tracker, or their plans overshoot an
  /// injected capacity cliff.
  std::size_t effective_available() const {
    return std::min(memory_.available(),
                    fault_.synthetic_available(memory_.in_use()));
  }

  /// Resident-buffer pool: bound host inputs kept on-device across
  /// evaluations (disabled by default; the engine arms it per evaluate).
  ResidentPool& resident() { return resident_; }
  const ResidentPool& resident() const { return resident_; }

  /// The execution backend realizing this device's kernel launches. Unset
  /// (the default), backend() resolves the process default on every call —
  /// DFGEN_BACKEND, vm when absent — so a harness flipping the variable
  /// between evaluations is honoured without re-arming each device. The
  /// engines pin an explicit backend here when their options name one.
  void set_backend(std::shared_ptr<kernels::ExecutionBackend> backend) {
    backend_ = std::move(backend);
  }
  kernels::ExecutionBackend& backend() const;

  /// Allocates a device buffer of `elements` float32 values. Throws
  /// DeviceOutOfMemory if the device capacity would be exceeded. When the
  /// capacity wall is hit, unpinned resident buffers are evicted LRU-first
  /// and the allocation retried, so pool occupancy can never fail a
  /// transient allocation the cold path would have satisfied.
  Buffer allocate(std::size_t elements);

 private:
  DeviceSpec spec_;
  MemoryTracker memory_;
  FaultInjector fault_;
  RetryPolicy retry_;
  double watchdog_factor_ = 8.0;
  std::shared_ptr<kernels::ExecutionBackend> backend_;
  /// Declared last: destroyed first, while the tracker is still alive to
  /// account the released resident bytes.
  ResidentPool resident_;
};

}  // namespace dfg::vcl
