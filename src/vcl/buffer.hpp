// Virtual compute layer: device buffer.
//
// An RAII handle to a device global-memory allocation. Storage physically
// lives in host memory (the device is virtual) but is accounted against the
// owning device's capacity, so allocation failures and high-water marks
// behave exactly like real device buffers. Host code must move data in and
// out through CommandQueue::write/read so transfers are profiled; direct
// access to the backing store is reserved for the kernel executor.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dfg::vcl {

class Device;

class Buffer {
 public:
  Buffer() = default;
  Buffer(Device& device, std::size_t elements);
  ~Buffer();

  Buffer(Buffer&& other) noexcept;
  Buffer& operator=(Buffer&& other) noexcept;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  bool valid() const { return device_ != nullptr; }
  std::size_t size() const { return storage_.size(); }
  std::size_t bytes() const { return storage_.size() * sizeof(float); }

  /// Direct views of the backing store. Used by the kernel executor and by
  /// CommandQueue; host application code should go through the queue.
  std::span<float> device_view() { return storage_; }
  std::span<const float> device_view() const { return storage_; }

  /// Releases the allocation early (idempotent). Equivalent to destroying
  /// the buffer; used by strategies that free intermediates by refcount.
  void release();

 private:
  Device* device_ = nullptr;
  std::vector<float> storage_;
};

}  // namespace dfg::vcl
