// Virtual compute layer: Chrome trace export.
//
// Serialises a profiling log as a Chrome trace-event JSON document
// (loadable in chrome://tracing or Perfetto), reconstructing the device
// timeline from the recorded event order and simulated durations. Events
// are grouped onto two tracks per device — a copy track for host<->device
// transfers and a compute track for kernels — mirroring how the paper's
// profiling tooling categorises device events.
#pragma once

#include <string>

#include "vcl/profiling.hpp"

namespace dfg::vcl {

struct TraceOptions {
  /// Process name shown in the trace viewer.
  std::string device_name = "virtual device";
  /// Process id distinguishing multiple devices in one trace.
  int pid = 1;
};

/// Full trace document for one log (in-order timeline of its events).
std::string to_chrome_trace(const ProfilingLog& log,
                            const TraceOptions& options = {});

}  // namespace dfg::vcl
