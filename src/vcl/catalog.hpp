// Virtual compute layer: built-in device catalog.
//
// Provides virtual equivalents of the two OpenCL devices on LLNL's Edge
// cluster used by the paper's evaluation:
//   * dual Intel Xeon X5660 "Westmere" (OpenCL CPU runtime, 96 GB host RAM)
//   * NVIDIA Tesla M2050 (3 GB GDDR5, PCIe gen2 x16)
// plus 1/64-scaled variants matched to the scaled evaluation grids (see
// DESIGN.md): scaling device capacity by the same factor as the data keeps
// the memory-constraint behaviour — which test cases fail and where the
// curves cross the capacity line — identical to the paper's.
#pragma once

#include "vcl/device.hpp"

namespace dfg::vcl {

/// Full-size virtual Xeon X5660 node (OpenCL CPU platform).
DeviceSpec xeon_x5660();

/// Full-size virtual Tesla M2050 (OpenCL GPU platform, 3 GB).
DeviceSpec tesla_m2050();

/// 1/64-capacity variants used with the 1/64-cell evaluation grids.
DeviceSpec xeon_x5660_scaled();
DeviceSpec tesla_m2050_scaled();

}  // namespace dfg::vcl
