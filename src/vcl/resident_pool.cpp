#include "vcl/resident_pool.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "vcl/device.hpp"
#include "vcl/queue.hpp"

namespace dfg::vcl {

namespace {

// Process-wide generation tags. Tags are monotonic and never erased: a
// freed-then-reused address keeps its bumped tag, which is exactly what
// makes pointer reuse safe (the stale pool entry recorded the old tag).
std::mutex g_generation_mutex;
std::unordered_map<const void*, std::uint64_t>& generation_map() {
  static auto* map = new std::unordered_map<const void*, std::uint64_t>();
  return *map;
}

}  // namespace

std::uint64_t host_generation(const void* ptr) {
  std::lock_guard<std::mutex> lock(g_generation_mutex);
  const auto& map = generation_map();
  const auto it = map.find(ptr);
  return it == map.end() ? 0 : it->second;
}

void note_host_mutation(const void* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard<std::mutex> lock(g_generation_mutex);
  ++generation_map()[ptr];
}

ResidentPool::PinScope::PinScope(ResidentPool& pool) : pool_(&pool) {
  std::lock_guard<std::mutex> lock(pool.mutex_);
  parent_ = pool.active_scope_;
  pool.active_scope_ = this;
}

ResidentPool::PinScope::~PinScope() { pool_->end_scope(*this); }

ResidentPool::ResidentPool(Device& device) : device_(&device) {
  set_watermark_fraction(support::env::get_double(
      "DFGEN_RESIDENT_WATERMARK", watermark_fraction_));
}

ResidentPool::~ResidentPool() {
  // Device teardown: every scope is gone, so force-drop even entries a
  // buggy caller left pinned rather than leak tracker bytes.
  for (auto& [key, entry] : entries_) entry.pins = 0;
  MemoryTracker::HookSuspension suspend;
  entries_.clear();
  resident_bytes_.store(0, std::memory_order_relaxed);
}

void ResidentPool::set_watermark_fraction(double fraction) {
  std::lock_guard<std::mutex> lock(mutex_);
  watermark_fraction_ = std::clamp(fraction, 0.0, 1.0);
}

double ResidentPool::watermark_fraction() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watermark_fraction_;
}

std::size_t ResidentPool::watermark_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watermark_bytes_locked();
}

std::size_t ResidentPool::watermark_bytes_locked() const {
  return static_cast<std::size_t>(
      watermark_fraction_ *
      static_cast<double>(device_->memory().capacity()));
}

std::size_t ResidentPool::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

const Buffer* ResidentPool::acquire(CommandQueue& queue,
                                    std::span<const float> host,
                                    const std::string& label,
                                    const void* generation_key) {
  if (!enabled() || host.empty()) return nullptr;
  if (generation_key == nullptr) generation_key = host.data();
  const Key key{host.data(), host.size()};
  const std::uint64_t generation = host_generation(generation_key);

  // The lock is held across the whole acquire, including a miss's upload:
  // the returned Buffer* must not be invalidated between insert and pin,
  // and a concurrent invalidate() of this key must either run before (we
  // re-upload) or after (it dooms the now-pinned entry, erased at unpin).
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end() && !it->second.doomed &&
      it->second.generation == generation) {
    count(&Stats::hits, "dfgen_resident_hits_total");
    count(&Stats::upload_bytes_saved, "dfgen_resident_upload_bytes_saved",
          host.size() * sizeof(float));
    it->second.last_use = ++tick_;
    pin_locked(it);
    return &it->second.buffer;
  }
  if (it != entries_.end()) {
    // Stale generation: the host array changed under us. Re-uploading is
    // mandatory; serving the old bytes would be a coherence violation.
    drop_entry_locked(it);
  }

  const std::size_t bytes = host.size() * sizeof(float);
  const std::size_t cap = watermark_bytes_locked();
  if (bytes > cap) return nullptr;  // will never fit: stay transient
  while (resident_bytes_.load(std::memory_order_relaxed) + bytes > cap) {
    if (evict_lru_unpinned_locked() == 0) {
      return nullptr;  // all pinned: cold path
    }
  }

  Buffer buffer;
  {
    MemoryTracker::HookSuspension suspend;
    for (;;) {
      try {
        buffer = Buffer(*device_, host.size());
        break;
      } catch (const DeviceOutOfMemory&) {
        // Transients own the rest of the device right now; shrink the pool
        // before giving up and letting the caller upload transiently.
        if (evict_lru_unpinned_locked() == 0) return nullptr;
      }
    }
  }
  // The profiled upload — same label, same event, same simulated cost as
  // the cold path. Faults injected here (transient, loss, corruption)
  // propagate exactly as the cold path's write would; the entry is only
  // inserted once the write succeeded.
  queue.write(buffer, host, label);

  Entry entry;
  entry.buffer = std::move(buffer);
  entry.generation = generation;
  entry.last_use = ++tick_;
  auto [pos, inserted] = entries_.insert_or_assign(key, std::move(entry));
  (void)inserted;
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  count(&Stats::misses, "dfgen_resident_misses_total");
  publish_gauge();
  pin_locked(pos);
  return &pos->second.buffer;
}

bool ResidentPool::would_hit(std::span<const float> host,
                             const void* generation_key) const {
  if (!enabled() || host.empty()) return false;
  if (generation_key == nullptr) generation_key = host.data();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(Key{host.data(), host.size()});
  return it != entries_.end() && !it->second.doomed &&
         it->second.generation == host_generation(generation_key);
}

void ResidentPool::invalidate(const void* ptr) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.lower_bound(Key{ptr, 0});
       it != entries_.end() && it->first.ptr == ptr;) {
    auto next = std::next(it);
    drop_entry_locked(it);
    it = next;
  }
}

void ResidentPool::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto next = std::next(it);
    drop_entry_locked(it);
    it = next;
  }
}

std::size_t ResidentPool::evict_lru_unpinned() {
  std::lock_guard<std::mutex> lock(mutex_);
  return evict_lru_unpinned_locked();
}

std::size_t ResidentPool::evict_lru_unpinned_locked() {
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.pins > 0) continue;
    if (victim == entries_.end() ||
        it->second.last_use < victim->second.last_use) {
      victim = it;
    }
  }
  if (victim == entries_.end()) return 0;
  const std::size_t freed = victim->second.buffer.bytes();
  erase_entry_locked(victim);
  count(&Stats::evictions, "dfgen_resident_evictions_total");
  publish_gauge();
  return freed;
}

ResidentPool::Stats ResidentPool::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.upload_bytes_saved =
      upload_bytes_saved_.load(std::memory_order_relaxed);
  return out;
}

void ResidentPool::pin_locked(EntryMap::iterator it) {
  // Without an open scope nothing records the release, so the entry stays
  // unpinned; callers that hold buffers across commands open a PinScope.
  if (active_scope_ == nullptr) return;
  ++it->second.pins;
  active_scope_->keys_.emplace_back(it->first.ptr, it->first.len);
}

void ResidentPool::end_scope(PinScope& scope) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_scope_ = scope.parent_;
  for (const auto& [ptr, len] : scope.keys_) {
    const auto it = entries_.find(Key{ptr, len});
    if (it == entries_.end()) continue;
    if (--it->second.pins <= 0 && it->second.doomed) erase_entry_locked(it);
  }
}

void ResidentPool::erase_entry_locked(EntryMap::iterator it) {
  const std::size_t bytes = it->second.buffer.bytes();
  MemoryTracker::HookSuspension suspend;
  entries_.erase(it);
  resident_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

void ResidentPool::drop_entry_locked(EntryMap::iterator it) {
  count(&Stats::invalidations, "dfgen_resident_invalidations_total");
  if (it->second.pins > 0) {
    // A kernel may still read this buffer; keep the allocation alive but
    // never serve it again. end_scope() erases it at the last unpin.
    it->second.doomed = true;
    return;
  }
  erase_entry_locked(it);
  publish_gauge();
}

void ResidentPool::count(std::uint64_t Stats::*member, const char* counter,
                         std::uint64_t delta) {
  if (member == &Stats::hits) {
    hits_.fetch_add(delta, std::memory_order_relaxed);
  } else if (member == &Stats::misses) {
    misses_.fetch_add(delta, std::memory_order_relaxed);
  } else if (member == &Stats::evictions) {
    evictions_.fetch_add(delta, std::memory_order_relaxed);
  } else if (member == &Stats::invalidations) {
    invalidations_.fetch_add(delta, std::memory_order_relaxed);
  } else {
    upload_bytes_saved_.fetch_add(delta, std::memory_order_relaxed);
  }
  obs::MetricsRegistry& reg = obs::metrics();
  reg.add(reg.counter(counter, {{"device", device_->spec().name}}), delta);
}

void ResidentPool::publish_gauge() {
  obs::MetricsRegistry& reg = obs::metrics();
  reg.gauge_set(reg.gauge("dfgen_resident_bytes",
                          {{"device", device_->spec().name}}),
                resident_bytes_.load(std::memory_order_relaxed));
}

}  // namespace dfg::vcl
