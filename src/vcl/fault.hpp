// Virtual compute layer: deterministic fault injection.
//
// The paper's GPU evaluation is defined as much by its failures as its
// wins: staged and fusion runs abort when the working set crosses the
// M2050's 3 GB capacity. This module makes such failures — and a wider
// family the paper could not synthesize on real hardware — reproducible on
// demand, so the engine's degradation and retry machinery can be tested
// deterministically. A FaultPlan is armed on a Device and injects failures
// at named sites:
//   * buffer allocation — DeviceOutOfMemory on the Nth allocation, or once
//     usage would cross a synthetic capacity below the real one,
//   * transfer / kernel enqueue — transient DeviceError on the Nth enqueue
//     of each site, for a configurable number of consecutive attempts,
//   * whole-device loss — DeviceLost once K commands have completed, and on
//     every command after that,
//   * slowdown — every command from the Nth onward is charged `factor`
//     times its cost-model duration (a thermally-throttled or contended
//     device; the queue's watchdog converts severe cases to DeviceTimeout),
//   * hang — the Nth command never completes (the watchdog abandons it at
//     the deadline),
//   * bit-flip — one word of the Nth host-to-device or device-to-host
//     transfer is corrupted in flight (caught by the queue's end-to-end
//     checksum).
// Every injected fault is recorded in the attached ProfilingLog as an
// EventKind::fault event (and therefore in the Chrome trace), so
// degradation decisions are observable. All behaviour is a pure function of
// the plan (counters plus a seeded RNG for retry backoff): two runs with
// the same plan inject exactly the same faults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <string>

#include "vcl/event.hpp"

namespace dfg::vcl {

class ProfilingLog;

/// Deterministic fault schedule. All indices are 1-based and count from the
/// start of a run (Engine::evaluate resets them; the DistributedEngine
/// counts across a whole evaluation so one block fails, not every block).
/// A zero value disables that site. The default-constructed plan is empty:
/// arming it injects nothing and perturbs nothing.
struct FaultPlan {
  /// Seeds the backoff jitter; two plans with equal seeds produce equal
  /// retry timing.
  std::uint32_t seed = 0;

  /// Throw DeviceOutOfMemory on exactly the Nth buffer allocation.
  std::size_t fail_alloc_index = 0;
  /// Cap usable device memory below the hardware capacity: any allocation
  /// that would push usage past this many bytes throws DeviceOutOfMemory.
  /// This is how a capacity cliff (the paper's failed GPU cells) is
  /// synthesized on an otherwise roomy device.
  std::size_t synthetic_capacity_bytes = 0;

  /// Throw transient DeviceError on the Nth host-to-device enqueue…
  std::size_t fail_write_index = 0;
  /// …the Nth device-to-host enqueue…
  std::size_t fail_read_index = 0;
  /// …the Nth kernel-launch enqueue.
  std::size_t fail_kernel_index = 0;
  /// How many consecutive enqueue attempts at a scheduled site fail before
  /// the site recovers (1 = a single retry succeeds).
  int transient_count = 1;

  /// Lose the device after this many commands have completed: the next
  /// enqueue, and every one after it, throws DeviceLost.
  std::size_t lose_device_after = 0;

  /// Slowdown: every command (any site) from the Nth enqueue onward is
  /// charged slowdown_factor times its cost-model duration. Models a
  /// straggling device — throttled, contended, or failing slowly.
  std::size_t slow_command_index = 0;
  /// Duration multiplier applied by the slowdown family (values <= 1 make
  /// slow_command_index a no-op).
  double slowdown_factor = 1.0;

  /// Hang: the Nth command (any site) never completes. The queue's
  /// watchdog abandons it at the deadline and charges the deadline to the
  /// timeline; the retry (a fresh command) proceeds normally.
  std::size_t hang_command_index = 0;

  /// Bit-flip: corrupt one word of the Nth host-to-device transfer…
  std::size_t corrupt_write_index = 0;
  /// …or the Nth device-to-host transfer, for `corrupt_count` consecutive
  /// transfers at that site.
  std::size_t corrupt_read_index = 0;
  /// How many consecutive transfers at a scheduled corruption site are
  /// corrupted (1 = a single re-execution reads clean data).
  int corrupt_count = 1;

  /// True when any fault family is scheduled. Must consider every
  /// scheduling member above; fault.cpp pins sizeof(FaultPlan) with a
  /// static_assert so a new member cannot be added without revisiting this
  /// function, and test_fault_injection enumerates every member.
  bool armed() const {
    return fail_alloc_index != 0 || synthetic_capacity_bytes != 0 ||
           fail_write_index != 0 || fail_read_index != 0 ||
           fail_kernel_index != 0 || lose_device_after != 0 ||
           slow_command_index != 0 || hang_command_index != 0 ||
           corrupt_write_index != 0 || corrupt_read_index != 0;
  }
};

/// Bounded retry behaviour for transient command failures, applied by the
/// CommandQueue. Backoff is simulated (charged to the profiling timeline as
/// a Fault event), never slept, and jittered deterministically from the
/// FaultPlan's seed.
struct RetryPolicy {
  /// Total enqueue attempts per command, including the first.
  int max_attempts = 3;
  /// First backoff duration (microseconds of simulated time).
  double backoff_base_us = 50.0;
  /// Exponential growth factor between attempts.
  double backoff_multiplier = 2.0;
  /// Uniform jitter fraction: each backoff is scaled by 1 + jitter * u with
  /// u drawn from the plan-seeded RNG.
  double backoff_jitter = 0.5;
};

/// How the injector perturbs one accepted command, returned by on_enqueue.
/// A default-constructed value (scale 1, no hang, no corruption) leaves the
/// command untouched — the only value an unarmed injector produces.
struct CommandPerturbation {
  /// Multiplier on the command's cost-model duration.
  double time_scale = 1.0;
  /// The command never completes: the queue's watchdog must abandon it.
  bool hang = false;
  /// One word of this transfer's destination is flipped after the copy.
  bool corrupt = false;
};

/// Owned by a Device; consulted by the allocator and the command queue.
/// With no plan armed every hook is a no-op, so a fault-free run's command
/// stream is byte-identical to a build without this layer.
class FaultInjector {
 public:
  explicit FaultInjector(std::string device_name)
      : device_name_(std::move(device_name)) {}

  /// Installs a plan and resets all counters (including a prior device
  /// loss — arming models swapping in a fresh board).
  void arm(FaultPlan plan);
  void disarm() { arm(FaultPlan{}); }
  bool armed() const { return armed_; }
  const FaultPlan& plan() const { return plan_; }

  /// Resets the per-run indices so a plan fires the same way on every
  /// evaluation. Device loss is sticky: a lost device stays lost.
  void begin_run();

  /// Where injected-fault events are recorded. The CommandQueue attaches
  /// its log on construction; the sink is only dereferenced while commands
  /// run and must stay valid for that long.
  void set_sink(ProfilingLog* sink) { sink_ = sink; }

  /// Allocation site: called before the MemoryTracker reserves. Throws
  /// DeviceOutOfMemory (scheduled or synthetic-capacity) or DeviceLost.
  void on_alloc(std::size_t bytes, std::size_t in_use, std::size_t capacity);

  /// Enqueue site: called before a transfer or launch executes. `site` is
  /// one of host_to_device / device_to_host / kernel_exec. Throws
  /// DeviceError (transient, scheduled) or DeviceLost. For a command that
  /// is accepted, returns how it must be perturbed (slowdown, hang,
  /// bit-flip); every attempt — including a retry — counts as a fresh
  /// command, so a hang is absorbed by one retry while a slowdown
  /// persists.
  CommandPerturbation on_enqueue(EventKind site, const std::string& label);

  /// Flips one word of `data` in place (deterministically chosen from the
  /// plan seed and the extent) and records the injection. The queue calls
  /// this when on_enqueue scheduled a corruption for the transfer.
  void corrupt_word(EventKind site, const std::string& label,
                    std::span<float> data);

  /// A command completed; advances the device-loss countdown.
  void note_complete() { ++completed_commands_; }

  /// Deterministic backoff duration (seconds) before retry `attempt`
  /// (1-based), drawn from the plan-seeded RNG.
  double backoff_seconds(int attempt, const RetryPolicy& policy);

  bool device_lost() const { return lost_; }
  /// Faults injected since begin_run() (all sites).
  std::size_t run_faults() const { return run_faults_; }
  std::size_t run_alloc_faults() const { return run_alloc_faults_; }
  std::size_t run_transient_faults() const { return run_transient_faults_; }
  std::size_t run_corrupt_faults() const { return run_corrupt_faults_; }

  /// Bytes still allocatable under the synthetic capacity (SIZE_MAX when
  /// the plan does not cap memory). The streamed auto-sizer and the planner
  /// consult this so degradation targets fit the *effective* device.
  std::size_t synthetic_available(std::size_t in_use) const;

 private:
  void record(const std::string& label);

  std::string device_name_;
  FaultPlan plan_;
  bool armed_ = false;
  bool lost_ = false;
  ProfilingLog* sink_ = nullptr;
  std::mt19937 rng_;

  std::size_t alloc_index_ = 0;
  std::size_t write_index_ = 0;
  std::size_t read_index_ = 0;
  std::size_t kernel_index_ = 0;
  std::size_t command_index_ = 0;  ///< all enqueue attempts, any site
  std::size_t completed_commands_ = 0;
  bool slowdown_recorded_ = false;
  std::size_t run_faults_ = 0;
  std::size_t run_alloc_faults_ = 0;
  std::size_t run_transient_faults_ = 0;
  std::size_t run_corrupt_faults_ = 0;
};

}  // namespace dfg::vcl
