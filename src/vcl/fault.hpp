// Virtual compute layer: deterministic fault injection.
//
// The paper's GPU evaluation is defined as much by its failures as its
// wins: staged and fusion runs abort when the working set crosses the
// M2050's 3 GB capacity. This module makes such failures — and a wider
// family the paper could not synthesize on real hardware — reproducible on
// demand, so the engine's degradation and retry machinery can be tested
// deterministically. A FaultPlan is armed on a Device and injects failures
// at named sites:
//   * buffer allocation — DeviceOutOfMemory on the Nth allocation, or once
//     usage would cross a synthetic capacity below the real one,
//   * transfer / kernel enqueue — transient DeviceError on the Nth enqueue
//     of each site, for a configurable number of consecutive attempts,
//   * whole-device loss — DeviceLost once K commands have completed, and on
//     every command after that.
// Every injected fault is recorded in the attached ProfilingLog as an
// EventKind::fault event (and therefore in the Chrome trace), so
// degradation decisions are observable. All behaviour is a pure function of
// the plan (counters plus a seeded RNG for retry backoff): two runs with
// the same plan inject exactly the same faults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <string>

#include "vcl/event.hpp"

namespace dfg::vcl {

class ProfilingLog;

/// Deterministic fault schedule. All indices are 1-based and count from the
/// start of a run (Engine::evaluate resets them; the DistributedEngine
/// counts across a whole evaluation so one block fails, not every block).
/// A zero value disables that site. The default-constructed plan is empty:
/// arming it injects nothing and perturbs nothing.
struct FaultPlan {
  /// Seeds the backoff jitter; two plans with equal seeds produce equal
  /// retry timing.
  std::uint32_t seed = 0;

  /// Throw DeviceOutOfMemory on exactly the Nth buffer allocation.
  std::size_t fail_alloc_index = 0;
  /// Cap usable device memory below the hardware capacity: any allocation
  /// that would push usage past this many bytes throws DeviceOutOfMemory.
  /// This is how a capacity cliff (the paper's failed GPU cells) is
  /// synthesized on an otherwise roomy device.
  std::size_t synthetic_capacity_bytes = 0;

  /// Throw transient DeviceError on the Nth host-to-device enqueue…
  std::size_t fail_write_index = 0;
  /// …the Nth device-to-host enqueue…
  std::size_t fail_read_index = 0;
  /// …the Nth kernel-launch enqueue.
  std::size_t fail_kernel_index = 0;
  /// How many consecutive enqueue attempts at a scheduled site fail before
  /// the site recovers (1 = a single retry succeeds).
  int transient_count = 1;

  /// Lose the device after this many commands have completed: the next
  /// enqueue, and every one after it, throws DeviceLost.
  std::size_t lose_device_after = 0;

  bool armed() const {
    return fail_alloc_index != 0 || synthetic_capacity_bytes != 0 ||
           fail_write_index != 0 || fail_read_index != 0 ||
           fail_kernel_index != 0 || lose_device_after != 0;
  }
};

/// Bounded retry behaviour for transient command failures, applied by the
/// CommandQueue. Backoff is simulated (charged to the profiling timeline as
/// a Fault event), never slept, and jittered deterministically from the
/// FaultPlan's seed.
struct RetryPolicy {
  /// Total enqueue attempts per command, including the first.
  int max_attempts = 3;
  /// First backoff duration (microseconds of simulated time).
  double backoff_base_us = 50.0;
  /// Exponential growth factor between attempts.
  double backoff_multiplier = 2.0;
  /// Uniform jitter fraction: each backoff is scaled by 1 + jitter * u with
  /// u drawn from the plan-seeded RNG.
  double backoff_jitter = 0.5;
};

/// Owned by a Device; consulted by the allocator and the command queue.
/// With no plan armed every hook is a no-op, so a fault-free run's command
/// stream is byte-identical to a build without this layer.
class FaultInjector {
 public:
  explicit FaultInjector(std::string device_name)
      : device_name_(std::move(device_name)) {}

  /// Installs a plan and resets all counters (including a prior device
  /// loss — arming models swapping in a fresh board).
  void arm(FaultPlan plan);
  void disarm() { arm(FaultPlan{}); }
  bool armed() const { return armed_; }
  const FaultPlan& plan() const { return plan_; }

  /// Resets the per-run indices so a plan fires the same way on every
  /// evaluation. Device loss is sticky: a lost device stays lost.
  void begin_run();

  /// Where injected-fault events are recorded. The CommandQueue attaches
  /// its log on construction; the sink is only dereferenced while commands
  /// run and must stay valid for that long.
  void set_sink(ProfilingLog* sink) { sink_ = sink; }

  /// Allocation site: called before the MemoryTracker reserves. Throws
  /// DeviceOutOfMemory (scheduled or synthetic-capacity) or DeviceLost.
  void on_alloc(std::size_t bytes, std::size_t in_use, std::size_t capacity);

  /// Enqueue site: called before a transfer or launch executes. `site` is
  /// one of host_to_device / device_to_host / kernel_exec. Throws
  /// DeviceError (transient, scheduled) or DeviceLost.
  void on_enqueue(EventKind site, const std::string& label);

  /// A command completed; advances the device-loss countdown.
  void note_complete() { ++completed_commands_; }

  /// Deterministic backoff duration (seconds) before retry `attempt`
  /// (1-based), drawn from the plan-seeded RNG.
  double backoff_seconds(int attempt, const RetryPolicy& policy);

  bool device_lost() const { return lost_; }
  /// Faults injected since begin_run() (all sites).
  std::size_t run_faults() const { return run_faults_; }
  std::size_t run_alloc_faults() const { return run_alloc_faults_; }
  std::size_t run_transient_faults() const { return run_transient_faults_; }

  /// Bytes still allocatable under the synthetic capacity (SIZE_MAX when
  /// the plan does not cap memory). The streamed auto-sizer and the planner
  /// consult this so degradation targets fit the *effective* device.
  std::size_t synthetic_available(std::size_t in_use) const;

 private:
  void record(const std::string& label);

  std::string device_name_;
  FaultPlan plan_;
  bool armed_ = false;
  bool lost_ = false;
  ProfilingLog* sink_ = nullptr;
  std::mt19937 rng_;

  std::size_t alloc_index_ = 0;
  std::size_t write_index_ = 0;
  std::size_t read_index_ = 0;
  std::size_t kernel_index_ = 0;
  std::size_t completed_commands_ = 0;
  std::size_t run_faults_ = 0;
  std::size_t run_alloc_faults_ = 0;
  std::size_t run_transient_faults_ = 0;
};

}  // namespace dfg::vcl
