// Virtual compute layer: device cost model.
//
// Attributes a simulated duration to each queue operation from the device
// spec's performance envelope. Transfers follow a latency + bytes/bandwidth
// model (PCIe gen2 x16 for the virtual M2050); kernels follow a roofline:
// launch overhead plus the larger of compute time (flops / peak rate,
// derated by an efficiency factor) and memory time (global bytes /
// bandwidth). A register-spill penalty models the paper's caveat that a
// fused kernel must "avoid spilling results intended for local registers
// into the global memory".
//
// The model is deliberately simple — the reproduction targets the *shape*
// of the paper's Figure 5 (strategy ordering, CPU/GPU crossover, transfer-
// dominated roundtrip), not its absolute milliseconds.
#pragma once

#include <cstddef>
#include <cstdint>

#include "vcl/device.hpp"

namespace dfg::vcl {

class CostModel {
 public:
  explicit CostModel(const DeviceSpec& spec) : spec_(&spec) {}

  /// Simulated duration of moving `bytes` across the host<->device link.
  double transfer_seconds(std::size_t bytes) const;

  /// Simulated duration of one kernel dispatch touching `global_bytes` of
  /// device global memory and executing `flops` floating point operations
  /// with `registers_used` live per-work-item registers. `efficiency` is
  /// the fraction of peak flop rate the launch's execution backend
  /// achieves (kernels::kInterpretedEfficiency / kCompiledEfficiency); the
  /// default keeps the historical interpreted derate for callers that
  /// price launches without naming a backend.
  double kernel_seconds(std::uint64_t flops, std::size_t global_bytes,
                        int registers_used,
                        double efficiency = kComputeEfficiency) const;

  /// Fraction of peak flops a generated (non hand-tuned) kernel achieves.
  static constexpr double kComputeEfficiency = 0.35;
  /// Each spilled register adds one extra global round-trip of the spilled
  /// value per element, approximated as a bandwidth surcharge.
  static constexpr double kSpillBytesPerRegister = 8.0;

 private:
  const DeviceSpec* spec_;
};

}  // namespace dfg::vcl
