#include "vcl/trace.hpp"

#include <sstream>

namespace dfg::vcl {

namespace {

constexpr double kMicro = 1.0e6;

const char* track_name(EventKind kind) {
  switch (kind) {
    case EventKind::kernel_exec:
      return "compute";
    case EventKind::fault:
      return "faults";
    case EventKind::timeout:
      return "timeouts";
    case EventKind::integrity:
      return "integrity";
    default:
      return "copy";
  }
}

int track_id(EventKind kind) {
  switch (kind) {
    case EventKind::kernel_exec:
      return 2;
    case EventKind::fault:
      return 3;
    case EventKind::timeout:
      return 4;
    case EventKind::integrity:
      return 5;
    default:
      return 1;
  }
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string to_chrome_trace(const ProfilingLog& log,
                            const TraceOptions& options) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& json) {
    if (!first) os << ",";
    first = false;
    os << "\n" << json;
  };

  // Process / thread metadata.
  {
    std::ostringstream meta;
    meta << "{\"ph\":\"M\",\"pid\":" << options.pid
         << ",\"name\":\"process_name\",\"args\":{\"name\":\""
         << escape(options.device_name) << "\"}}";
    emit(meta.str());
  }
  // The faults / timeouts / integrity tracks only appear when the log
  // holds such events, keeping fault-free traces identical to the seed's.
  for (const EventKind kind :
       {EventKind::host_to_device, EventKind::kernel_exec, EventKind::fault,
        EventKind::timeout, EventKind::integrity}) {
    if ((kind == EventKind::fault || kind == EventKind::timeout ||
         kind == EventKind::integrity) &&
        log.count(kind) == 0) {
      continue;
    }
    std::ostringstream meta;
    meta << "{\"ph\":\"M\",\"pid\":" << options.pid
         << ",\"tid\":" << track_id(kind)
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
         << track_name(kind) << "\"}}";
    emit(meta.str());
  }

  // In-order device timeline: each event occupies [t, t + sim_seconds).
  double t = 0.0;
  for (const Event& event : log.events()) {
    std::ostringstream row;
    row << "{\"ph\":\"X\",\"pid\":" << options.pid
        << ",\"tid\":" << track_id(event.kind) << ",\"name\":\""
        << escape(event.label) << "\",\"cat\":\""
        << event_kind_name(event.kind) << "\",\"ts\":" << t * kMicro
        << ",\"dur\":" << event.sim_seconds * kMicro
        << ",\"args\":{\"bytes\":" << event.bytes
        << ",\"flops\":" << event.flops << "}}";
    emit(row.str());
    t += event.sim_seconds;
  }

  os << "\n]}\n";
  return os.str();
}

}  // namespace dfg::vcl
