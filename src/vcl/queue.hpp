// Virtual compute layer: in-order command queue.
//
// The analogue of an OpenCL command queue created with profiling enabled.
// Every operation executes synchronously (the paper's framework also
// enqueues, waits and then reads the profiling timestamps), is timed with a
// wall clock, priced by the device cost model, and recorded in the attached
// ProfilingLog as a Dev-W / Dev-R / K-Exe event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "vcl/buffer.hpp"
#include "vcl/cost_model.hpp"
#include "vcl/device.hpp"
#include "vcl/profiling.hpp"

namespace dfg::vcl {

/// Everything the queue needs to dispatch one kernel over a 1-D NDRange.
/// The body is invoked over disjoint [begin, end) chunks, possibly
/// concurrently, covering [0, ndrange).
struct KernelLaunch {
  std::string label;
  std::size_t ndrange = 0;
  /// Totals across the whole NDRange, used by the cost model.
  std::uint64_t flops = 0;
  std::size_t global_bytes = 0;
  int registers_used = 0;
  std::function<void(std::size_t, std::size_t)> body;
};

class CommandQueue {
 public:
  CommandQueue(Device& device, ProfilingLog& log)
      : device_(&device), log_(&log), cost_(device.spec()) {
    // Injected faults during this queue's lifetime (including allocation
    // faults raised outside the queue) are recorded into this log.
    device_->fault().set_sink(log_);
  }

  Device& device() { return *device_; }
  ProfilingLog& log() { return *log_; }

  /// Host-to-device transfer (clEnqueueWriteBuffer). `host` must not exceed
  /// the buffer extent.
  void write(Buffer& buffer, std::span<const float> host,
             const std::string& label);

  /// Device-to-host transfer (clEnqueueReadBuffer). `host` must be at least
  /// the buffer extent.
  void read(const Buffer& buffer, std::span<float> host,
            const std::string& label);

  /// Kernel dispatch (clEnqueueNDRangeKernel) over launch.ndrange items.
  void launch(const KernelLaunch& launch);

 private:
  /// Fault-injection gate in front of every enqueue: consults the device's
  /// injector, retrying transient faults up to the device retry policy with
  /// seeded backoff (charged to the timeline as Fault events). A no-op when
  /// no FaultPlan is armed.
  void guard(EventKind site, const std::string& label);
  /// Marks a command complete (advances the device-loss countdown).
  void complete();

  Device* device_;
  ProfilingLog* log_;
  CostModel cost_;
};

}  // namespace dfg::vcl
