// Virtual compute layer: in-order command queue.
//
// The analogue of an OpenCL command queue created with profiling enabled.
// Every operation executes synchronously (the paper's framework also
// enqueues, waits and then reads the profiling timestamps), is timed with a
// wall clock, priced by the device cost model, and recorded in the attached
// ProfilingLog as a Dev-W / Dev-R / K-Exe event.
//
// Two defensive layers wrap every command:
//   * a watchdog — the command's charged simulated duration is compared
//     against `device.watchdog_factor()` times its cost-model estimate; a
//     command that would exceed the deadline (an injected hang or a severe
//     slowdown) is abandoned and the deadline is charged to the timeline
//     as a T-Out event. A hang is retried (one wedged command, a fresh
//     attempt probes the device); a slowdown escalates as DeviceTimeout
//     immediately — it is a device-wide condition and re-probing would
//     only burn another deadline;
//   * end-to-end transfer integrity — a seeded FNV-1a checksum of every
//     transfer's source is verified against its destination after the
//     copy; a mismatch (an injected bit-flip) is charged as a Chksum event
//     and the transfer re-executed, then DataCorruption escapes.
// Both layers are pure observers on a healthy device: the command stream,
// event counts and simulated durations of a fault-free run are
// byte-identical to a build without them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "support/checksum.hpp"
#include "vcl/buffer.hpp"
#include "vcl/cost_model.hpp"
#include "vcl/device.hpp"
#include "vcl/profiling.hpp"

namespace dfg::vcl {

/// Everything the queue needs to dispatch one kernel over a 1-D NDRange.
/// The body is invoked over disjoint [begin, end) chunks, possibly
/// concurrently, covering [0, ndrange).
struct KernelLaunch {
  std::string label;
  std::size_t ndrange = 0;
  /// Totals across the whole NDRange, used by the cost model.
  std::uint64_t flops = 0;
  std::size_t global_bytes = 0;
  int registers_used = 0;
  /// Work-partitioning grain: worker chunks are multiples of this (except
  /// the NDRange tail). Strategies launching bytecode programs set it to
  /// kernels::kTileSize so the tiled VM only ever sees whole tiles; the
  /// default of 1 reproduces plain ceil(n/workers) chunking.
  std::size_t grain = 1;
  /// Fraction of peak flop rate the cost model credits this launch — set
  /// from the executing backend (interpreted dispatch keeps the historical
  /// CostModel::kComputeEfficiency; jit-compiled launches run at
  /// kernels::kCompiledEfficiency). The watchdog estimate uses the same
  /// value, so switching backends rescales estimate and charge together
  /// and never trips a deadline by itself.
  double compute_efficiency = CostModel::kComputeEfficiency;
  std::function<void(std::size_t, std::size_t)> body;
};

class CommandQueue {
 public:
  CommandQueue(Device& device, ProfilingLog& log)
      : device_(&device),
        log_(&log),
        cost_(device.spec()),
        integrity_seed_(support::fnv1a(device.spec().name)) {
    // Injected faults during this queue's lifetime (including allocation
    // faults raised outside the queue) are recorded into this log.
    device_->fault().set_sink(log_);
  }

  Device& device() { return *device_; }
  ProfilingLog& log() { return *log_; }

  /// Host-to-device transfer (clEnqueueWriteBuffer). `host` must not exceed
  /// the buffer extent.
  void write(Buffer& buffer, std::span<const float> host,
             const std::string& label);

  /// Device-to-host transfer (clEnqueueReadBuffer). `host` must be at least
  /// the buffer extent.
  void read(const Buffer& buffer, std::span<float> host,
            const std::string& label);

  /// Kernel dispatch (clEnqueueNDRangeKernel) over launch.ndrange items.
  void launch(const KernelLaunch& launch);

 private:
  /// Runs one command through the full defensive stack: fault-injection
  /// gate (transient retries with seeded backoff), watchdog deadline, the
  /// command body, integrity verification, and event recording. `execute`
  /// performs the data movement / dispatch and returns the destination
  /// span to verify (empty span = no verification, used by kernels whose
  /// output integrity is covered by the later readback checksum).
  /// `source_checksum` is recomputed per attempt for transfers.
  void run_command(EventKind site, const std::string& label,
                   std::size_t bytes, std::uint64_t flops,
                   double estimate_seconds,
                   const std::function<std::uint64_t()>& source_checksum,
                   const std::function<std::span<float>()>& execute);

  /// Marks a command complete (advances the device-loss countdown).
  void complete();

  Device* device_;
  ProfilingLog* log_;
  CostModel cost_;
  /// Seed of the transfer checksums, derived from the device name so two
  /// devices never share a digest stream.
  std::uint64_t integrity_seed_;
};

}  // namespace dfg::vcl
