#include "vcl/queue.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/checksum.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/stopwatch.hpp"

namespace dfg::vcl {

namespace {

/// Mirrors one recorded Event into the metrics registry: the per-device
/// event/byte/sim-nanosecond counters (always live — the report structs are
/// views over their deltas) and, when metrics are enabled, the per-command
/// simulated-latency histogram. Commands execute on the evaluating thread
/// (parallel_for workers never reach here), so thread-shard deltas
/// attribute exactly one evaluation's traffic.
void count_event(const std::string& device, EventKind kind, std::size_t bytes,
                 std::uint64_t flops, double sim_seconds) {
  obs::MetricsRegistry& reg = obs::metrics();
  const obs::Labels by_kind{{"device", device},
                            {"kind", event_kind_slug(kind)}};
  const std::uint64_t nanos = obs::sim_nanos(sim_seconds);
  reg.add(reg.counter("dfgen_vcl_events_total", by_kind));
  reg.add(reg.counter("dfgen_vcl_bytes_total", by_kind), bytes);
  reg.add(reg.counter("dfgen_vcl_sim_nanos_total", by_kind), nanos);
  if (flops != 0) {
    reg.add(reg.counter("dfgen_vcl_flops_total", {{"device", device}}),
            flops);
  }
  reg.observe(reg.histogram("dfgen_vcl_command_sim_nanos", by_kind), nanos);
}

}  // namespace

void CommandQueue::run_command(
    EventKind site, const std::string& label, std::size_t bytes,
    std::uint64_t flops, double estimate_seconds,
    const std::function<std::uint64_t()>& source_checksum,
    const std::function<std::span<float>()>& execute) {
  FaultInjector& fault = device_->fault();
  const bool armed = fault.armed();
  if (armed) fault.set_sink(log_);
  const RetryPolicy& policy = device_->retry_policy();
  const char* site_name = event_kind_name(site);
  const std::string& device_name = device_->spec().name;
  // One command = one span, covering every retry attempt. The simulated
  // time attributed to it is the sum of everything charged to the device
  // timeline on its behalf (backoffs, burnt deadlines, re-executions).
  obs::Span span(std::string(site_name) + ":" + label, "command");

  for (int attempt = 1;; ++attempt) {
    CommandPerturbation perturbation;
    if (armed) {
      try {
        perturbation = fault.on_enqueue(site, label);
      } catch (const DeviceError&) {
        // Transient: back off (simulated, seeded) and re-enqueue until the
        // attempt budget is spent; then let the error reach the fallback
        // layer, which degrades the strategy instead.
        if (attempt >= policy.max_attempts) throw;
        const double backoff = fault.backoff_seconds(attempt, policy);
        log_->record(Event{EventKind::fault,
                           "retry:" + std::string(site_name) + ":" + label,
                           0, 0, backoff, 0.0});
        count_event(device_name, EventKind::fault, 0, 0, backoff);
        obs::metrics().add(obs::metrics().counter(
            "dfgen_vcl_command_retries_total", {{"device", device_name}}));
        span.add_sim_seconds(backoff);
        continue;
      }
    }

    // Watchdog: simulated timing is deterministic, so the charged duration
    // is known before the command runs and an over-deadline command is
    // abandoned up front — the virtual analogue of a watchdog killing a
    // wedged or crawling command at the deadline. The deadline itself is
    // charged to the timeline: the device *was* tied up that long.
    const double factor = device_->watchdog_factor();
    const double charged = estimate_seconds * perturbation.time_scale;
    const bool over_deadline =
        factor > 0.0 && charged > factor * estimate_seconds;
    if (perturbation.hang || over_deadline) {
      const double deadline =
          factor > 0.0 ? factor * estimate_seconds : estimate_seconds;
      log_->record(Event{EventKind::timeout,
                         "timeout:" + std::string(site_name) + ":" + label,
                         bytes, 0, deadline, 0.0});
      count_event(device_name, EventKind::timeout, bytes, 0, deadline);
      span.add_sim_seconds(deadline);
      // A hang is one wedged command: a fresh attempt probes the device
      // and is absorbed by the retry budget. An over-deadline slowdown is
      // a device-wide condition — the deadline charge already proved the
      // device slow, so re-probing would only burn another deadline;
      // escalate immediately and let the fallback ladder (or the
      // distributed engine's quarantine) move the work.
      if (!perturbation.hang || attempt >= policy.max_attempts) {
        throw DeviceTimeout(device_->spec().name, site_name, label,
                            estimate_seconds, deadline);
      }
      continue;
    }

    const std::uint64_t expected =
        source_checksum ? source_checksum() : 0;
    support::Stopwatch watch;
    const std::span<float> destination = execute();
    const double wall = watch.seconds();

    if (armed && perturbation.corrupt && !destination.empty()) {
      fault.corrupt_word(site, label, destination);
    }
    if (source_checksum) {
      // End-to-end integrity: the destination must mirror the source bit
      // for bit. A mismatch re-executes the transfer (charged — the
      // corrupted transfer consumed device time) until the retry budget is
      // spent, then escalates as DataCorruption.
      const std::uint64_t actual =
          support::checksum_floats(destination, integrity_seed_);
      if (actual != expected) {
        log_->record(Event{EventKind::integrity,
                           "checksum:" + std::string(site_name) + ":" +
                               label,
                           bytes, 0, charged, wall});
        count_event(device_name, EventKind::integrity, bytes, 0, charged);
        span.add_sim_seconds(charged);
        if (attempt >= policy.max_attempts) {
          throw DataCorruption(device_->spec().name, site_name, label);
        }
        continue;
      }
    }

    log_->record(Event{site, label, bytes, flops, charged, wall});
    count_event(device_name, site, bytes, flops, charged);
    span.add_sim_seconds(charged);
    complete();
    return;
  }
}

void CommandQueue::complete() {
  FaultInjector& fault = device_->fault();
  if (fault.armed()) fault.note_complete();
}

void CommandQueue::write(Buffer& buffer, std::span<const float> host,
                         const std::string& label) {
  if (host.size() > buffer.size()) {
    throw KernelError("write of " + std::to_string(host.size()) +
                      " elements exceeds buffer '" + label + "' extent " +
                      std::to_string(buffer.size()));
  }
  const std::size_t bytes = host.size() * sizeof(float);
  run_command(
      EventKind::host_to_device, label, bytes, 0,
      cost_.transfer_seconds(bytes),
      [&] { return support::checksum_floats(host, integrity_seed_); },
      [&]() -> std::span<float> {
        std::copy(host.begin(), host.end(), buffer.device_view().begin());
        return buffer.device_view().first(host.size());
      });
}

void CommandQueue::read(const Buffer& buffer, std::span<float> host,
                        const std::string& label) {
  if (host.size() < buffer.size()) {
    throw KernelError("read into " + std::to_string(host.size()) +
                      " elements from larger buffer '" + label + "' of " +
                      std::to_string(buffer.size()));
  }
  const std::size_t bytes = buffer.bytes();
  run_command(
      EventKind::device_to_host, label, bytes, 0,
      cost_.transfer_seconds(bytes),
      [&] {
        return support::checksum_floats(buffer.device_view(),
                                        integrity_seed_);
      },
      [&]() -> std::span<float> {
        const auto view = buffer.device_view();
        std::copy(view.begin(), view.end(), host.begin());
        return host.first(buffer.size());
      });
}

void CommandQueue::launch(const KernelLaunch& launch) {
  if (!launch.body) {
    throw KernelError("kernel '" + launch.label + "' has no body");
  }
  run_command(
      EventKind::kernel_exec, launch.label, launch.global_bytes,
      launch.flops,
      cost_.kernel_seconds(launch.flops, launch.global_bytes,
                           launch.registers_used, launch.compute_efficiency),
      nullptr,  // kernel output integrity is covered by the readback
      [&]() -> std::span<float> {
        support::parallel_for(launch.ndrange, launch.body, launch.grain);
        return {};
      });
}

}  // namespace dfg::vcl
