#include "vcl/queue.hpp"

#include <algorithm>
#include <cstring>

#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/stopwatch.hpp"

namespace dfg::vcl {

void CommandQueue::guard(EventKind site, const std::string& label) {
  FaultInjector& fault = device_->fault();
  if (!fault.armed()) return;
  fault.set_sink(log_);
  const RetryPolicy& policy = device_->retry_policy();
  for (int attempt = 1;; ++attempt) {
    try {
      fault.on_enqueue(site, label);
      return;
    } catch (const DeviceError&) {
      // Transient: back off (simulated, seeded) and re-enqueue until the
      // attempt budget is spent; then let the error reach the fallback
      // layer, which degrades the strategy instead.
      if (attempt >= policy.max_attempts) throw;
      const double backoff = fault.backoff_seconds(attempt, policy);
      log_->record(Event{EventKind::fault,
                         "retry:" + std::string(event_kind_name(site)) + ":" +
                             label,
                         0, 0, backoff, 0.0});
    }
  }
}

void CommandQueue::complete() {
  FaultInjector& fault = device_->fault();
  if (fault.armed()) fault.note_complete();
}

void CommandQueue::write(Buffer& buffer, std::span<const float> host,
                         const std::string& label) {
  if (host.size() > buffer.size()) {
    throw KernelError("write of " + std::to_string(host.size()) +
                      " elements exceeds buffer '" + label + "' extent " +
                      std::to_string(buffer.size()));
  }
  guard(EventKind::host_to_device, label);
  support::Stopwatch watch;
  std::copy(host.begin(), host.end(), buffer.device_view().begin());
  const std::size_t bytes = host.size() * sizeof(float);
  log_->record(Event{EventKind::host_to_device, label, bytes, 0,
                     cost_.transfer_seconds(bytes), watch.seconds()});
  complete();
}

void CommandQueue::read(const Buffer& buffer, std::span<float> host,
                        const std::string& label) {
  if (host.size() < buffer.size()) {
    throw KernelError("read into " + std::to_string(host.size()) +
                      " elements from larger buffer '" + label + "' of " +
                      std::to_string(buffer.size()));
  }
  guard(EventKind::device_to_host, label);
  support::Stopwatch watch;
  const auto view = buffer.device_view();
  std::copy(view.begin(), view.end(), host.begin());
  const std::size_t bytes = buffer.bytes();
  log_->record(Event{EventKind::device_to_host, label, bytes, 0,
                     cost_.transfer_seconds(bytes), watch.seconds()});
  complete();
}

void CommandQueue::launch(const KernelLaunch& launch) {
  if (!launch.body) {
    throw KernelError("kernel '" + launch.label + "' has no body");
  }
  guard(EventKind::kernel_exec, launch.label);
  support::Stopwatch watch;
  support::parallel_for(launch.ndrange, launch.body);
  log_->record(Event{
      EventKind::kernel_exec, launch.label, launch.global_bytes, launch.flops,
      cost_.kernel_seconds(launch.flops, launch.global_bytes,
                           launch.registers_used),
      watch.seconds()});
  complete();
}

}  // namespace dfg::vcl
