#include "vcl/cost_model.hpp"

#include <algorithm>

namespace dfg::vcl {

namespace {
constexpr double kGiga = 1.0e9;
constexpr double kMicro = 1.0e-6;
}  // namespace

double CostModel::transfer_seconds(std::size_t bytes) const {
  const double bw = spec_->transfer_gbps * kGiga;
  return spec_->transfer_latency_us * kMicro + static_cast<double>(bytes) / bw;
}

double CostModel::kernel_seconds(std::uint64_t flops, std::size_t global_bytes,
                                 int registers_used,
                                 double efficiency) const {
  const double compute =
      static_cast<double>(flops) / (spec_->gflops * kGiga * efficiency);
  double effective_bytes = static_cast<double>(global_bytes);
  const int spilled = registers_used - spec_->register_budget;
  if (spilled > 0 && global_bytes > 0) {
    // Spills scale with NDRange size; approximate elements from the global
    // traffic (float32) and charge a read+write round trip per spill.
    const double elements = static_cast<double>(global_bytes) / sizeof(float);
    effective_bytes += elements * kSpillBytesPerRegister * spilled;
  }
  const double memory = effective_bytes / (spec_->global_mem_gbps * kGiga);
  return spec_->launch_overhead_us * kMicro + std::max(compute, memory);
}

}  // namespace dfg::vcl
