#include "vcl/pipeline.hpp"

#include <algorithm>
#include <vector>

namespace dfg::vcl {

PipelineResult pipeline_makespan(std::span<const ChunkCost> chunks) {
  PipelineResult result;

  // Serial: simple sum.
  for (const ChunkCost& c : chunks) {
    result.serial += c.upload + c.kernel + c.read;
  }

  // Single copy engine: uploads and readbacks share one engine, kernels
  // run on the compute engine. Issue order on the copy engine follows the
  // command stream: U0, U1 may run ahead, but R_i is enqueued after K_i
  // completes. We model the copy engine as in-order with respect to the
  // issue sequence U0, R0?, U1, R1?, ... where each item additionally
  // waits for its dependency (R_i on K_i; K_i on U_i).
  {
    double copy_free = 0.0;
    double compute_free = 0.0;
    // Upload of chunk i+1 is issued right after upload i (the host can
    // enqueue ahead); readback i is issued when kernel i finishes. To keep
    // the copy engine in-order we process items in dependency-resolved
    // issue order: U_i before R_i, and R_i before U_{i+2} is not required
    // — we conservatively interleave as U_0, U_1, R_0, U_2, R_1, ...
    // which is what a double-buffered host loop issues.
    std::size_t n = chunks.size();
    std::vector<double> kernel_end(n, 0.0);
    std::vector<double> upload_end(n, 0.0);
    // First process uploads/kernels with one look-ahead upload, then
    // readbacks between them.
    for (std::size_t i = 0; i < n; ++i) {
      // Upload i (engine in-order; may start as soon as the engine is
      // free — data is host-resident).
      const double upload_start = copy_free;
      upload_end[i] = upload_start + chunks[i].upload;
      copy_free = upload_end[i];
      // Kernel i waits for its upload.
      const double kernel_start = std::max(compute_free, upload_end[i]);
      kernel_end[i] = kernel_start + chunks[i].kernel;
      compute_free = kernel_end[i];
      // Readback of the previous chunk slots in after this upload.
      if (i > 0) {
        const double read_start = std::max(copy_free, kernel_end[i - 1]);
        copy_free = read_start + chunks[i - 1].read;
      }
    }
    if (n > 0) {
      const double read_start = std::max(copy_free, kernel_end[n - 1]);
      copy_free = read_start + chunks[n - 1].read;
    }
    result.overlap_single_copy = std::max(copy_free, compute_free);
  }

  // Dual copy engines: uploads and readbacks each have a dedicated
  // in-order engine.
  {
    double upload_free = 0.0;
    double compute_free = 0.0;
    double read_free = 0.0;
    for (const ChunkCost& c : chunks) {
      const double upload_end = upload_free + c.upload;
      upload_free = upload_end;
      const double kernel_end = std::max(compute_free, upload_end) + c.kernel;
      compute_free = kernel_end;
      read_free = std::max(read_free, kernel_end) + c.read;
    }
    result.overlap_dual_copy = std::max(read_free, compute_free);
  }

  return result;
}

}  // namespace dfg::vcl
