// Distributed layer: block-granular checkpoint journal.
//
// A long distributed evaluation that dies at block 900 of 1000 should not
// restart from block 0. The journal persists each block's output slab as
// it completes — one file per block, written atomically (tmp + rename) so
// a crash mid-write never leaves a half-entry — and a restarted run loads
// the journaled blocks instead of re-executing them.
//
// Entries are keyed by a run key (a digest of the expression, strategy,
// decomposition and cluster shape): an entry whose key does not match the
// current run is ignored, as is any entry whose payload checksum fails.
// Stale or corrupt journal files therefore degrade to "re-execute that
// block", never to wrong answers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace dfg::distrib {

class CheckpointJournal {
 public:
  /// A default-constructed journal is disabled: has() is always false and
  /// append() is a no-op.
  CheckpointJournal() = default;

  /// Opens (creating if needed) `dir` and indexes every valid entry whose
  /// run key matches. An empty `dir` disables the journal.
  CheckpointJournal(std::string dir, std::uint64_t run_key);

  bool enabled() const { return !dir_.empty(); }
  std::uint64_t run_key() const { return run_key_; }

  /// Whether a valid entry for `block` was found at open time.
  bool has(std::size_t block) const { return entries_.count(block) != 0; }

  /// The journaled output slab of `block`. The entry is re-validated on
  /// load; throws Error when absent or no longer valid.
  std::vector<float> load(std::size_t block) const;

  /// Atomically journals `block`'s output slab. Overwrites any previous
  /// entry for the block. No-op when disabled.
  void append(std::size_t block, std::span<const float> values);

  /// Number of valid entries currently indexed.
  std::size_t journaled_count() const { return entries_.size(); }

  /// Block ids of every indexed entry, ascending. Lets a restarted
  /// consumer enumerate and re-load its journaled state without knowing
  /// the block ids in advance (the shard re-warm path).
  std::vector<std::size_t> blocks() const;

 private:
  std::string entry_path(std::size_t block) const;

  std::string dir_;
  std::uint64_t run_key_ = 0;
  /// Blocks with a validated entry on disk.
  std::map<std::size_t, std::string> entries_;
};

}  // namespace dfg::distrib
