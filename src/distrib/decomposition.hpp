// Distributed layer: structured grid decomposition.
//
// The paper's distributed test decomposes a 3072^3 mesh into 3072 sub-grids
// of 192x192x256 distributed over MPI tasks (one per GPU, twelve sub-grids
// each). This module provides the block arithmetic: a regular 3-D split of
// a global cell grid into equally sized blocks, with neighbour lookups used
// by the ghost exchange.
#pragma once

#include <cstddef>
#include <optional>

#include "mesh/mesh.hpp"

namespace dfg::distrib {

struct BlockCoord {
  std::size_t bi = 0, bj = 0, bk = 0;
  bool operator==(const BlockCoord&) const = default;
};

/// Global cell-index ranges [.._begin, .._end) covered by one block.
struct BlockExtent {
  std::size_t i_begin = 0, i_end = 0;
  std::size_t j_begin = 0, j_end = 0;
  std::size_t k_begin = 0, k_end = 0;

  mesh::Dims dims() const {
    return mesh::Dims{i_end - i_begin, j_end - j_begin, k_end - k_begin};
  }
};

class GridDecomposition {
 public:
  /// Splits `global` cells into blocks_x * blocks_y * blocks_z blocks.
  /// Throws Error unless each block count divides its axis evenly.
  GridDecomposition(const mesh::Dims& global, std::size_t blocks_x,
                    std::size_t blocks_y, std::size_t blocks_z);

  const mesh::Dims& global_dims() const { return global_; }
  std::size_t block_count() const { return bx_ * by_ * bz_; }
  mesh::Dims block_dims() const;

  std::size_t block_id(const BlockCoord& coord) const;
  BlockCoord block_coord(std::size_t id) const;
  BlockExtent extent(std::size_t id) const;

  /// Face neighbour of a block along an axis (0=x, 1=y, 2=z) in direction
  /// -1 or +1; nullopt at the domain boundary.
  std::optional<std::size_t> neighbor(std::size_t id, int axis,
                                      int direction) const;

 private:
  mesh::Dims global_;
  std::size_t bx_, by_, bz_;
};

}  // namespace dfg::distrib
