// Distributed layer: the distributed-memory parallel engine.
//
// Reproduces the paper's §IV-D3/§V-C experiment functionally: a global
// rectilinear mesh decomposed into sub-grids, one simulated MPI task per
// OpenCL device (two devices per node on Edge), multiple sub-grids
// processed per device, ghost data generated before execution, and the
// derived field assembled back into the global grid. Ranks execute
// in-process (sequentially), each against its own virtual device and
// profiling log, so the report can state per-rank and critical-path
// simulated times alongside the exchange traffic.
//
// On top of the block loop sit three resilience mechanisms:
//   * straggler mitigation — every block runs against a simulated-time
//     budget derived from the planner's cost estimate; a block that blows
//     its budget (a device running slow, but under the command watchdog's
//     deadline) is speculatively re-executed on the least-loaded healthy
//     rank, the faster result wins, and the loser's time stays charged to
//     its rank (as real speculative execution pays for its duplicates);
//   * quarantine — a rank whose device times out through the whole
//     fallback ladder, or corrupts data twice, is marked unhealthy and
//     receives no further blocks; its in-flight block is re-executed on a
//     healthy rank;
//   * checkpointed restart — with a checkpoint directory configured, each
//     completed block's output slab is journaled atomically; a re-run of
//     the same evaluation loads journaled blocks instead of re-executing
//     them, so a crash at block k of n costs n-k blocks, not n.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "distrib/decomposition.hpp"
#include "distrib/ghost.hpp"
#include "kernels/backend.hpp"
#include "mesh/mesh.hpp"
#include "runtime/fallback.hpp"
#include "runtime/strategy.hpp"
#include "support/env.hpp"
#include "vcl/device.hpp"
#include "vcl/fault.hpp"

namespace dfg::distrib {

struct ClusterConfig {
  std::size_t nodes = 8;
  std::size_t devices_per_node = 2;  ///< one MPI task per device, as on Edge
  vcl::DeviceSpec device_spec;
  std::size_t ghost_width = 1;
  /// Per-block resilience, enabled by default: a block whose device fails
  /// degrades that block along the memory ladder (and a lost device is
  /// replaced) instead of failing the whole run — one bad allocation must
  /// not kill a 27-billion-cell evaluation.
  runtime::FallbackPolicy fallback = runtime::FallbackPolicy::resilient();
  /// Deterministic fault schedule armed on `fault_rank`'s device before
  /// execution (empty = no injection). Indices count across the whole
  /// evaluation, so a scheduled fault hits exactly one block.
  vcl::FaultPlan fault_plan;
  std::size_t fault_rank = 0;
  /// Straggler budget: a block whose measured simulated duration exceeds
  /// this many times the reference duration (the planner estimate for the
  /// executed strategy, or the fastest clean block seen so far if larger)
  /// is speculatively re-executed on the least-loaded healthy rank.
  /// <= 0 disables speculation.
  double straggler_budget_factor = 4.0;
  /// Checkpoint journal directory; empty disables journaling. Defaults
  /// from DFGEN_CHECKPOINT_DIR.
  std::string checkpoint_dir =
      support::env::get_string("DFGEN_CHECKPOINT_DIR", "");
  /// Crash-injection hook for restart tests: abort the evaluation (with
  /// Error) after this many blocks have been journaled. 0 = never.
  std::size_t abort_after_blocks = 0;
  /// Keep each rank's field uploads resident on its device across the
  /// blocks it executes (vcl::ResidentPool). A rank that re-runs a block
  /// (straggler speculation, corruption retry) skips the re-upload; a lost
  /// or quarantined device drops its residents. Same env overrides as the
  /// single-device engine: DFGEN_RESIDENT_POOL forces on,
  /// DFGEN_NO_RESIDENT_POOL forces off (and wins).
  bool resident_pool = false;
  /// Execution backend armed on every rank's device (and replacement
  /// devices). Unset defers to DFGEN_BACKEND. The straggler budget prices
  /// its reference estimate at the same backend's compute efficiency, so a
  /// uniformly jit cluster does not flag every block as slow or fast.
  std::optional<kernels::BackendKind> backend;
};

struct DistributedReport {
  std::vector<float> values;  ///< the derived field on the global grid
  std::size_t blocks = 0;
  std::size_t ranks = 0;
  std::size_t blocks_per_rank_max = 0;
  std::size_t ghost_messages = 0;
  std::size_t ghost_bytes = 0;
  /// Critical path: the slowest rank's simulated device time.
  double max_rank_sim_seconds = 0.0;
  /// Aggregate simulated device time across all ranks.
  double total_sim_seconds = 0.0;
  std::size_t total_dev_writes = 0;
  std::size_t total_dev_reads = 0;
  std::size_t total_kernel_execs = 0;
  /// Largest per-device memory high-water mark.
  std::size_t max_device_high_water = 0;
  /// Blocks that finished on a cheaper strategy than the requested one.
  std::size_t degraded_blocks = 0;
  /// Total rung transitions taken across all blocks.
  std::size_t strategy_degradations = 0;
  /// Devices lost mid-run and replaced (the affected block is re-run).
  std::size_t device_losses = 0;
  /// Injected faults / retried commands recorded across all rank logs.
  std::size_t injected_faults = 0;
  std::size_t command_retries = 0;
  /// Commands abandoned at their watchdog deadline (T-Out events).
  std::size_t command_timeouts = 0;
  /// Transfers whose destination checksum disagreed with the source
  /// (Chksum events); each was re-executed before any value propagated.
  std::size_t checksum_mismatches = 0;
  /// Blocks that completed but blew their simulated-time budget.
  std::size_t straggler_blocks = 0;
  /// Speculative duplicate executions launched for stragglers.
  std::size_t speculative_executions = 0;
  /// Speculations that beat the original execution (their result won).
  std::size_t speculations_won = 0;
  /// Ranks marked unhealthy (ladder-wide timeout, or repeat corruption)
  /// and excluded from further scheduling.
  std::size_t quarantined_devices = 0;
  /// Blocks loaded from the checkpoint journal instead of executing.
  std::size_t resumed_blocks = 0;
  /// Valid journal entries on disk when the evaluation finished.
  std::size_t journaled_blocks = 0;
  /// Fused-program cache traffic across the whole run. Every block of a
  /// distributed evaluation shares one pipeline, so misses stay O(1) while
  /// hits grow with the block count.
  std::size_t pipeline_cache_hits = 0;
  std::size_t pipeline_cache_misses = 0;
  /// Resident-buffer pool traffic summed across all rank devices (zeros
  /// while ClusterConfig::resident_pool is off). Measured as thread-shard
  /// deltas over the dfgen_resident_* registry series — ranks execute on
  /// the evaluating thread, so the delta is exactly this evaluation's.
  std::size_t resident_hits = 0;
  std::size_t resident_misses = 0;
  std::size_t resident_evictions = 0;
  std::size_t resident_invalidations = 0;
  std::size_t resident_upload_bytes_saved = 0;
};

class DistributedEngine {
 public:
  /// The mesh must outlive the engine. The decomposition must match the
  /// mesh's cell dims.
  DistributedEngine(const mesh::RectilinearMesh& mesh,
                    GridDecomposition decomposition, ClusterConfig config);

  /// Binds a global cell-centered array (e.g. "u"). The view must stay
  /// valid until evaluate() returns. Mesh coordinates are bound
  /// automatically per block.
  void bind_global(const std::string& name, std::span<const float> values);

  DistributedReport evaluate(std::string_view expression,
                             runtime::StrategyKind strategy);

 private:
  const mesh::RectilinearMesh* mesh_;
  GridDecomposition decomposition_;
  ClusterConfig config_;
  std::map<std::string, std::span<const float>> global_arrays_;
};

}  // namespace dfg::distrib
