// Distributed layer: the distributed-memory parallel engine.
//
// Reproduces the paper's §IV-D3/§V-C experiment functionally: a global
// rectilinear mesh decomposed into sub-grids, one simulated MPI task per
// OpenCL device (two devices per node on Edge), multiple sub-grids
// processed per device, ghost data generated before execution, and the
// derived field assembled back into the global grid. Ranks execute
// in-process (sequentially), each against its own virtual device and
// profiling log, so the report can state per-rank and critical-path
// simulated times alongside the exchange traffic.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "distrib/decomposition.hpp"
#include "distrib/ghost.hpp"
#include "mesh/mesh.hpp"
#include "runtime/strategy.hpp"
#include "vcl/device.hpp"

namespace dfg::distrib {

struct ClusterConfig {
  std::size_t nodes = 8;
  std::size_t devices_per_node = 2;  ///< one MPI task per device, as on Edge
  vcl::DeviceSpec device_spec;
  std::size_t ghost_width = 1;
};

struct DistributedReport {
  std::vector<float> values;  ///< the derived field on the global grid
  std::size_t blocks = 0;
  std::size_t ranks = 0;
  std::size_t blocks_per_rank_max = 0;
  std::size_t ghost_messages = 0;
  std::size_t ghost_bytes = 0;
  /// Critical path: the slowest rank's simulated device time.
  double max_rank_sim_seconds = 0.0;
  /// Aggregate simulated device time across all ranks.
  double total_sim_seconds = 0.0;
  std::size_t total_dev_writes = 0;
  std::size_t total_dev_reads = 0;
  std::size_t total_kernel_execs = 0;
  /// Largest per-device memory high-water mark.
  std::size_t max_device_high_water = 0;
};

class DistributedEngine {
 public:
  /// The mesh must outlive the engine. The decomposition must match the
  /// mesh's cell dims.
  DistributedEngine(const mesh::RectilinearMesh& mesh,
                    GridDecomposition decomposition, ClusterConfig config);

  /// Binds a global cell-centered array (e.g. "u"). The view must stay
  /// valid until evaluate() returns. Mesh coordinates are bound
  /// automatically per block.
  void bind_global(const std::string& name, std::span<const float> values);

  DistributedReport evaluate(std::string_view expression,
                             runtime::StrategyKind strategy);

 private:
  const mesh::RectilinearMesh* mesh_;
  GridDecomposition decomposition_;
  ClusterConfig config_;
  std::map<std::string, std::span<const float>> global_arrays_;
};

}  // namespace dfg::distrib
