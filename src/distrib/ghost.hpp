// Distributed layer: ghost-data generation.
//
// The paper's distributed run "explicitly requests ghost data generation
// from VisIt", which duplicates and exchanges a stencil of cells around
// each sub-grid so the gradient primitive computes proper values on
// sub-grid boundaries. This module is that mechanism: given per-block
// interior arrays, it assembles per-block padded arrays whose ghost layers
// are copied from face neighbours, counting the simulated messages and
// bytes exchanged. Ghost layers are clamped at the global domain boundary,
// where the gradient falls back to the same one-sided stencil a
// single-grid run uses — making distributed results bit-identical to
// serial ones on every interior cell.
#pragma once

#include <cstddef>
#include <vector>

#include "distrib/decomposition.hpp"
#include "mesh/mesh.hpp"

namespace dfg::distrib {

/// One block's array padded with ghost layers. Low-side ghost widths give
/// the offset of the interior region inside `values`.
struct PaddedBlock {
  mesh::Dims dims;  ///< padded cell dims
  std::size_t lo_i = 0, lo_j = 0, lo_k = 0;
  std::vector<float> values;

  std::size_t index(std::size_t i, std::size_t j, std::size_t k) const {
    return i + dims.nx * (j + dims.ny * k);
  }
};

class GhostExchanger {
 public:
  GhostExchanger(const GridDecomposition& decomposition, std::size_t width = 1);

  /// Splits one global cell-centered array into per-block interiors (the
  /// per-rank data a simulation would own).
  std::vector<std::vector<float>> scatter(
      std::vector<float> const& global_values) const;

  /// Assembles padded blocks from interiors, exchanging face ghost layers
  /// between neighbouring blocks. Edge/corner ghost slots (never read by
  /// the axis-aligned gradient stencil) are zero-filled.
  std::vector<PaddedBlock> exchange(
      const std::vector<std::vector<float>>& interiors);

  /// Copies each padded block's interior back into a global array.
  std::vector<float> gather(const std::vector<PaddedBlock>& blocks) const;

  /// Ghost width actually applied on each side of a block (0 at the domain
  /// boundary).
  void applied_widths(std::size_t block_id, std::size_t lo[3],
                      std::size_t hi[3]) const;

  std::size_t width() const { return width_; }
  /// Cumulative exchange traffic across all exchange() calls.
  std::size_t messages() const { return messages_; }
  std::size_t bytes() const { return bytes_; }

 private:
  const GridDecomposition* decomposition_;
  std::size_t width_;
  std::size_t messages_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace dfg::distrib
