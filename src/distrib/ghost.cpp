#include "distrib/ghost.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dfg::distrib {

GhostExchanger::GhostExchanger(const GridDecomposition& decomposition,
                               std::size_t width)
    : decomposition_(&decomposition), width_(width) {
  const mesh::Dims block = decomposition.block_dims();
  if (width >= block.nx || width >= block.ny || width >= block.nz) {
    throw Error("ghost width " + std::to_string(width) +
                " too large for block dims " + mesh::to_string(block));
  }
}

std::vector<std::vector<float>> GhostExchanger::scatter(
    std::vector<float> const& global_values) const {
  const mesh::Dims g = decomposition_->global_dims();
  if (global_values.size() < g.cell_count()) {
    throw Error("global array smaller than the global grid");
  }
  std::vector<std::vector<float>> interiors(decomposition_->block_count());
  for (std::size_t b = 0; b < decomposition_->block_count(); ++b) {
    const BlockExtent e = decomposition_->extent(b);
    const mesh::Dims d = e.dims();
    std::vector<float>& interior = interiors[b];
    interior.resize(d.cell_count());
    for (std::size_t k = 0; k < d.nz; ++k) {
      for (std::size_t j = 0; j < d.ny; ++j) {
        const std::size_t src = (e.i_begin) +
                                g.nx * ((e.j_begin + j) +
                                        g.ny * (e.k_begin + k));
        const std::size_t dst = d.nx * (j + d.ny * k);
        std::copy_n(global_values.begin() + static_cast<long>(src), d.nx,
                    interior.begin() + static_cast<long>(dst));
      }
    }
  }
  return interiors;
}

void GhostExchanger::applied_widths(std::size_t block_id, std::size_t lo[3],
                                    std::size_t hi[3]) const {
  for (int axis = 0; axis < 3; ++axis) {
    lo[axis] =
        decomposition_->neighbor(block_id, axis, -1).has_value() ? width_ : 0;
    hi[axis] =
        decomposition_->neighbor(block_id, axis, +1).has_value() ? width_ : 0;
  }
}

std::vector<PaddedBlock> GhostExchanger::exchange(
    const std::vector<std::vector<float>>& interiors) {
  if (interiors.size() != decomposition_->block_count()) {
    throw Error("exchange expects one interior array per block");
  }
  const mesh::Dims bd = decomposition_->block_dims();
  for (const auto& interior : interiors) {
    if (interior.size() != bd.cell_count()) {
      throw Error("interior array size does not match the block dims");
    }
  }

  const auto interior_at = [&](std::size_t block, std::size_t i,
                               std::size_t j, std::size_t k) {
    return interiors[block][i + bd.nx * (j + bd.ny * k)];
  };

  std::vector<PaddedBlock> blocks(decomposition_->block_count());
  for (std::size_t b = 0; b < decomposition_->block_count(); ++b) {
    std::size_t lo[3], hi[3];
    applied_widths(b, lo, hi);
    PaddedBlock& padded = blocks[b];
    padded.lo_i = lo[0];
    padded.lo_j = lo[1];
    padded.lo_k = lo[2];
    padded.dims = mesh::Dims{bd.nx + lo[0] + hi[0], bd.ny + lo[1] + hi[1],
                             bd.nz + lo[2] + hi[2]};
    padded.values.assign(padded.dims.cell_count(), 0.0f);

    // Own interior.
    for (std::size_t k = 0; k < bd.nz; ++k) {
      for (std::size_t j = 0; j < bd.ny; ++j) {
        for (std::size_t i = 0; i < bd.nx; ++i) {
          padded.values[padded.index(i + lo[0], j + lo[1], k + lo[2])] =
              interior_at(b, i, j, k);
        }
      }
    }

    // Face ghost layers from neighbours: one simulated message per face.
    for (int axis = 0; axis < 3; ++axis) {
      for (const int dir : {-1, +1}) {
        const auto nb = decomposition_->neighbor(b, axis, dir);
        if (!nb) continue;
        std::size_t copied = 0;
        for (std::size_t layer = 0; layer < width_; ++layer) {
          // Padded index of the ghost plane and neighbour-interior index of
          // the source plane along `axis`.
          const std::size_t axis_extent =
              axis == 0 ? bd.nx : (axis == 1 ? bd.ny : bd.nz);
          // Ghost plane p on the low side holds the neighbour's plane
          // (extent - width + p): padded coordinates stay globally
          // contiguous across the block boundary.
          const std::size_t ghost_pos =
              dir < 0 ? layer
                      : ((axis == 0 ? lo[0] : axis == 1 ? lo[1] : lo[2]) +
                         axis_extent + layer);
          const std::size_t src_pos =
              dir < 0 ? (axis_extent - width_ + layer) : layer;
          // Sweep the two transverse axes over the *interior* range.
          const std::size_t t1 = axis == 0 ? bd.ny : bd.nx;
          const std::size_t t2 = axis == 2 ? bd.ny : bd.nz;
          for (std::size_t b2 = 0; b2 < t2; ++b2) {
            for (std::size_t a1 = 0; a1 < t1; ++a1) {
              std::size_t pi, pj, pk;  // padded coords
              std::size_t si, sj, sk;  // neighbour interior coords
              if (axis == 0) {
                pi = ghost_pos;
                pj = a1 + lo[1];
                pk = b2 + lo[2];
                si = src_pos;
                sj = a1;
                sk = b2;
              } else if (axis == 1) {
                pi = a1 + lo[0];
                pj = ghost_pos;
                pk = b2 + lo[2];
                si = a1;
                sj = src_pos;
                sk = b2;
              } else {
                pi = a1 + lo[0];
                pj = b2 + lo[1];
                pk = ghost_pos;
                si = a1;
                sj = b2;
                sk = src_pos;
              }
              padded.values[padded.index(pi, pj, pk)] =
                  interior_at(*nb, si, sj, sk);
              ++copied;
            }
          }
        }
        messages_ += 1;
        bytes_ += copied * sizeof(float);
      }
    }
  }
  return blocks;
}

std::vector<float> GhostExchanger::gather(
    const std::vector<PaddedBlock>& blocks) const {
  if (blocks.size() != decomposition_->block_count()) {
    throw Error("gather expects one padded block per block");
  }
  const mesh::Dims g = decomposition_->global_dims();
  const mesh::Dims bd = decomposition_->block_dims();
  std::vector<float> global_values(g.cell_count(), 0.0f);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const BlockExtent e = decomposition_->extent(b);
    const PaddedBlock& padded = blocks[b];
    for (std::size_t k = 0; k < bd.nz; ++k) {
      for (std::size_t j = 0; j < bd.ny; ++j) {
        for (std::size_t i = 0; i < bd.nx; ++i) {
          global_values[(e.i_begin + i) +
                        g.nx * ((e.j_begin + j) + g.ny * (e.k_begin + k))] =
              padded.values[padded.index(i + padded.lo_i, j + padded.lo_j,
                                         k + padded.lo_k)];
        }
      }
    }
  }
  return global_values;
}

}  // namespace dfg::distrib
