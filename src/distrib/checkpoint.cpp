#include "distrib/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>

#include "support/checksum.hpp"
#include "support/error.hpp"

namespace dfg::distrib {

namespace {

namespace fs = std::filesystem;

/// First bytes of every entry; bumping the on-disk layout changes this.
const std::uint64_t kMagic = support::fnv1a("dfgen-checkpoint-v1");

struct EntryHeader {
  std::uint64_t magic = 0;
  std::uint64_t run_key = 0;
  std::uint64_t block = 0;
  std::uint64_t count = 0;
};

/// Reads and fully validates one entry file. Returns nothing on any
/// defect: wrong magic, foreign run key, truncation, checksum mismatch.
std::optional<std::vector<float>> read_entry(const std::string& path,
                                             std::uint64_t run_key,
                                             std::uint64_t* block_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  EntryHeader header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || header.magic != kMagic || header.run_key != run_key) {
    return std::nullopt;
  }
  std::vector<float> values(header.count);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(float)));
  std::uint64_t stored_digest = 0;
  in.read(reinterpret_cast<char*>(&stored_digest), sizeof(stored_digest));
  if (!in) return std::nullopt;
  if (support::checksum_floats(values, run_key) != stored_digest) {
    return std::nullopt;
  }
  if (block_out != nullptr) *block_out = header.block;
  return values;
}

}  // namespace

CheckpointJournal::CheckpointJournal(std::string dir, std::uint64_t run_key)
    : dir_(std::move(dir)), run_key_(run_key) {
  if (dir_.empty()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw Error("cannot create checkpoint directory '" + dir_ +
                "': " + ec.message());
  }
  // Index every readable entry of this run; anything else is ignored
  // (entries of other runs may share the directory). A crash between
  // writing a tmp file and the committing rename leaves a stale
  // `*.ckpt.tmp` behind: it was never committed, so it must never be
  // replayed — remove it here rather than letting orphans accumulate.
  for (const fs::directory_entry& file : fs::directory_iterator(dir_, ec)) {
    if (!file.is_regular_file()) continue;
    if (file.path().extension() == ".tmp") {
      // Only reap tmp files that are clearly orphaned checkpoint entries
      // ("<name>.ckpt.tmp"); unrelated tmp files in a shared directory are
      // left alone.
      if (file.path().stem().extension() == ".ckpt") {
        std::error_code remove_ec;
        fs::remove(file.path(), remove_ec);
      }
      continue;
    }
    if (file.path().extension() != ".ckpt") continue;
    std::uint64_t block = 0;
    if (read_entry(file.path().string(), run_key_, &block)) {
      entries_[static_cast<std::size_t>(block)] = file.path().string();
    }
  }
}

std::vector<std::size_t> CheckpointJournal::blocks() const {
  std::vector<std::size_t> ids;
  ids.reserve(entries_.size());
  for (const auto& [block, path] : entries_) ids.push_back(block);
  return ids;
}

std::string CheckpointJournal::entry_path(std::size_t block) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%016llx-block-%zu.ckpt",
                static_cast<unsigned long long>(run_key_), block);
  return (fs::path(dir_) / name).string();
}

std::vector<float> CheckpointJournal::load(std::size_t block) const {
  const auto it = entries_.find(block);
  if (it == entries_.end()) {
    throw Error("checkpoint journal has no entry for block " +
                std::to_string(block));
  }
  auto values = read_entry(it->second, run_key_, nullptr);
  if (!values) {
    throw Error("checkpoint entry for block " + std::to_string(block) +
                " failed validation on load");
  }
  return std::move(*values);
}

void CheckpointJournal::append(std::size_t block,
                               std::span<const float> values) {
  if (!enabled()) return;
  const std::string path = entry_path(block);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error("cannot write checkpoint entry '" + tmp + "'");
    }
    EntryHeader header;
    header.magic = kMagic;
    header.run_key = run_key_;
    header.block = block;
    header.count = values.size();
    const std::uint64_t digest = support::checksum_floats(values, run_key_);
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(float)));
    out.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
    if (!out) {
      throw Error("short write to checkpoint entry '" + tmp + "'");
    }
  }
  // The rename is the commit point: readers either see the whole entry or
  // none of it.
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw Error("cannot commit checkpoint entry '" + path +
                "': " + ec.message());
  }
  entries_[block] = path;
}

}  // namespace dfg::distrib
