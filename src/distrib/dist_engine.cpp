#include "distrib/dist_engine.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <utility>

#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "distrib/checkpoint.hpp"
#include "kernels/program_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "runtime/fallback.hpp"
#include "runtime/planner.hpp"
#include "support/checksum.hpp"
#include "support/error.hpp"
#include "vcl/profiling.hpp"
#include "vcl/resident_pool.hpp"

namespace dfg::distrib {

namespace {

/// Builds the padded block's rectilinear mesh from global node coordinates.
mesh::RectilinearMesh padded_mesh(const mesh::RectilinearMesh& global,
                                  const BlockExtent& extent,
                                  const PaddedBlock& padded) {
  const auto slice = [](const std::vector<float>& nodes, std::size_t begin,
                        std::size_t count) {
    return std::vector<float>(nodes.begin() + static_cast<long>(begin),
                              nodes.begin() + static_cast<long>(begin + count));
  };
  // Node counts are cell counts + 1; the low ghost offset shifts the start.
  return mesh::RectilinearMesh(
      slice(global.x_nodes(), extent.i_begin - padded.lo_i,
            padded.dims.nx + 1),
      slice(global.y_nodes(), extent.j_begin - padded.lo_j,
            padded.dims.ny + 1),
      slice(global.z_nodes(), extent.k_begin - padded.lo_k,
            padded.dims.nz + 1));
}

/// Cluster-health counters for the current registry. Resolved once per
/// evaluation; the DistributedReport itself stays derived from the per-rank
/// profiling logs, so these series form an independent record the parity
/// tests can cross-check against.
struct DistCounters {
  obs::MetricId blocks, resumed, stragglers, spec_runs, spec_wins, losses,
      quarantines, degraded;

  static DistCounters resolve() {
    obs::MetricsRegistry& reg = obs::metrics();
    DistCounters ids;
    ids.blocks = reg.counter("dfgen_dist_blocks_executed_total");
    ids.resumed = reg.counter("dfgen_dist_resumed_blocks_total");
    ids.stragglers = reg.counter("dfgen_dist_straggler_blocks_total");
    ids.spec_runs =
        reg.counter("dfgen_dist_speculations_total", {{"result", "run"}});
    ids.spec_wins =
        reg.counter("dfgen_dist_speculations_total", {{"result", "won"}});
    ids.losses = reg.counter("dfgen_dist_device_losses_total");
    ids.quarantines = reg.counter("dfgen_dist_quarantines_total");
    ids.degraded = reg.counter("dfgen_dist_degraded_blocks_total");
    return ids;
  }
};

/// The resident-pool series for this cluster's device spec. Every rank's
/// device shares the spec name, so one label set aggregates the whole
/// cluster; ranks execute on the evaluating thread, so thread-shard deltas
/// isolate this evaluation from concurrent engines.
struct ResidentCounters {
  obs::MetricId hits, misses, evictions, invalidations, saved;

  static ResidentCounters resolve(const std::string& device) {
    obs::MetricsRegistry& reg = obs::metrics();
    const obs::Labels dev = {{"device", device}};
    ResidentCounters ids;
    ids.hits = reg.counter("dfgen_resident_hits_total", dev);
    ids.misses = reg.counter("dfgen_resident_misses_total", dev);
    ids.evictions = reg.counter("dfgen_resident_evictions_total", dev);
    ids.invalidations = reg.counter("dfgen_resident_invalidations_total", dev);
    ids.saved = reg.counter("dfgen_resident_upload_bytes_saved", dev);
    return ids;
  }

  std::array<std::uint64_t, 5> sample() const {
    obs::MetricsRegistry& reg = obs::metrics();
    return {reg.thread_counter_value(hits), reg.thread_counter_value(misses),
            reg.thread_counter_value(evictions),
            reg.thread_counter_value(invalidations),
            reg.thread_counter_value(saved)};
  }
};

/// ClusterConfig::resident_pool with the env overrides applied
/// (DFGEN_NO_RESIDENT_POOL wins, then DFGEN_RESIDENT_POOL forces on) —
/// the same resolution the single-device engine uses.
bool resident_pool_enabled(const ClusterConfig& config) {
  if (support::env::get_flag("DFGEN_NO_RESIDENT_POOL", false)) return false;
  return config.resident_pool ||
         support::env::get_flag("DFGEN_RESIDENT_POOL", false);
}

/// One simulated MPI task: its device, accumulated log, and health.
struct RankState {
  std::unique_ptr<vcl::Device> device;
  vcl::ProfilingLog log;
  /// Cleared when the rank is quarantined; an unhealthy rank receives no
  /// further blocks (its accumulated time still counts in the report).
  bool healthy = true;
};

}  // namespace

DistributedEngine::DistributedEngine(const mesh::RectilinearMesh& mesh,
                                     GridDecomposition decomposition,
                                     ClusterConfig config)
    : mesh_(&mesh),
      decomposition_(std::move(decomposition)),
      config_(std::move(config)) {
  if (!(decomposition_.global_dims() == mesh.dims())) {
    throw Error("decomposition dims do not match the mesh");
  }
  if (config_.nodes == 0 || config_.devices_per_node == 0) {
    throw Error("cluster config requires positive node and device counts");
  }
}

void DistributedEngine::bind_global(const std::string& name,
                                    std::span<const float> values) {
  if (values.size() < mesh_->cell_count()) {
    throw Error("global array '" + name + "' smaller than the global grid");
  }
  global_arrays_[name] = values;
}

DistributedReport DistributedEngine::evaluate(
    std::string_view expression, runtime::StrategyKind strategy_kind) {
  // One network is built and shared by every rank (the expression is the
  // same everywhere; only the bound arrays differ per block).
  dataflow::Network network(dataflow::build_network(expression));

  // Ghost data generation for every bound field the expression uses.
  GhostExchanger exchanger(decomposition_, config_.ghost_width);
  std::map<std::string, std::vector<PaddedBlock>> padded_fields;
  for (const std::string& name : network.spec().field_names()) {
    if (name == "x" || name == "y" || name == "z" || name == "dims") continue;
    const auto it = global_arrays_.find(name);
    if (it == global_arrays_.end()) {
      throw NetworkError("expression references unbound global field '" +
                         name + "'");
    }
    std::vector<float> global_copy(it->second.begin(), it->second.end());
    padded_fields[name] = exchanger.exchange(exchanger.scatter(global_copy));
  }

  if (padded_fields.empty()) {
    throw NetworkError(
        "distributed evaluation requires at least one bound field in the "
        "expression");
  }

  const std::size_t ranks = config_.nodes * config_.devices_per_node;
  const std::size_t blocks = decomposition_.block_count();

  // One virtual device and accumulated profiling log per MPI task.
  const bool pool_on = resident_pool_enabled(config_);
  const std::shared_ptr<kernels::ExecutionBackend> backend =
      config_.backend ? kernels::backend_for(*config_.backend) : nullptr;
  std::vector<RankState> states(ranks);
  for (RankState& state : states) {
    state.device = std::make_unique<vcl::Device>(config_.device_spec);
    state.device->resident().set_enabled(pool_on);
    if (backend) state.device->set_backend(backend);
  }
  if (config_.fault_plan.armed() && ranks > 0) {
    states[config_.fault_rank % ranks].device->fault().arm(config_.fault_plan);
  }

  // The journal key pins expression, strategy, problem shape and cluster
  // shape: a journal of any other run is invisible to this one.
  std::uint64_t run_key = support::fnv1a(expression);
  run_key = support::fnv1a(
      std::string_view(runtime::strategy_name(strategy_kind)), run_key);
  const mesh::Dims global_dims = decomposition_.global_dims();
  for (const std::size_t v :
       {global_dims.nx, global_dims.ny, global_dims.nz, blocks, ranks,
        config_.ghost_width}) {
    const std::uint64_t word = v;
    run_key = support::fnv1a(&word, sizeof(word), run_key);
  }
  CheckpointJournal journal(config_.checkpoint_dir, run_key);

  // Thread-local snapshot: ranks execute on this thread, so the delta is
  // exactly this evaluation's cache traffic even when other engines
  // evaluate concurrently on other threads.
  const kernels::ProgramCacheStats cache_before =
      kernels::ProgramCache::instance().thread_stats();
  const DistCounters counters = DistCounters::resolve();
  const ResidentCounters resident_ids =
      ResidentCounters::resolve(config_.device_spec.name);
  const std::array<std::uint64_t, 5> resident_before = resident_ids.sample();
  obs::MetricsRegistry& reg = obs::metrics();
  obs::Span request_span(
      "dist_evaluate:" +
          network.spec().node(network.output_id()).label,
      "request");

  DistributedReport report;
  report.values.assign(global_dims.cell_count(), 0.0f);
  report.blocks = blocks;
  report.ranks = ranks;
  report.blocks_per_rank_max = (blocks + ranks - 1) / ranks;

  const auto scatter = [&](const BlockExtent& extent, const PaddedBlock& shape,
                           const std::vector<float>& block_result) {
    // Keep only interior cells; ghost-cell results are discarded.
    const mesh::Dims bd = extent.dims();
    for (std::size_t k = 0; k < bd.nz; ++k) {
      for (std::size_t j = 0; j < bd.ny; ++j) {
        for (std::size_t i = 0; i < bd.nx; ++i) {
          report.values[(extent.i_begin + i) +
                        global_dims.nx * ((extent.j_begin + j) +
                                          global_dims.ny *
                                              (extent.k_begin + k))] =
              block_result[shape.index(i + shape.lo_i, j + shape.lo_j,
                                       k + shape.lo_k)];
        }
      }
    }
  };

  /// The healthy rank with the least accumulated simulated time; SIZE_MAX
  /// when none qualifies.
  const auto least_loaded_healthy = [&](std::size_t exclude) {
    std::size_t best = SIZE_MAX;
    double best_time = 0.0;
    for (std::size_t r = 0; r < ranks; ++r) {
      if (!states[r].healthy || r == exclude) continue;
      const double t = states[r].log.total_sim_seconds();
      if (best == SIZE_MAX || t < best_time) {
        best = r;
        best_time = t;
      }
    }
    return best;
  };

  /// Executes one block on `rank`, recording into `block_log`. Handles a
  /// lost device (replace and re-run) and a first escaped corruption
  /// (block-level re-execution) internally; a second corruption or a
  /// ladder-wide timeout escapes to the caller, which quarantines.
  const auto run_block_on = [&](std::size_t rank,
                                const runtime::FieldBindings& bindings,
                                std::size_t elements,
                                vcl::ProfilingLog& block_log) {
    RankState& state = states[rank];
    // Faults injected outside a queue op (allocations) must still land in
    // this block's log.
    state.device->fault().set_sink(&block_log);
    bool corruption_retried = false;
    for (;;) {
      try {
        // Residents this attempt acquires stay pinned (immune to eviction)
        // until the block completes or the attempt fails.
        vcl::ResidentPool::PinScope pins(state.device->resident());
        return runtime::execute_with_fallback(network, bindings, elements,
                                              *state.device, block_log,
                                              strategy_kind, config_.fallback);
      } catch (const DeviceLost&) {
        if (!config_.fallback.enabled) throw;
        // The rank's device is gone — and with it every resident buffer:
        // replace it with a fresh one (as a real resource manager would
        // re-acquire a context) and re-run the block from cold uploads.
        // The replacement starts with no fault plan armed.
        state.device = std::make_unique<vcl::Device>(config_.device_spec);
        state.device->resident().set_enabled(pool_on);
        if (backend) state.device->set_backend(backend);
        state.device->fault().set_sink(&block_log);
        ++report.device_losses;
        reg.add(counters.losses);
      } catch (const DataCorruption&) {
        // The queue already retried the transfer; re-execute the whole
        // block once from clean buffers before giving up on the device.
        if (!config_.fallback.enabled || corruption_retried) throw;
        corruption_retried = true;
      }
    }
  };

  const auto quarantine = [&](std::size_t rank) {
    if (!states[rank].healthy) return;
    states[rank].healthy = false;
    // A quarantined device's memory is no longer trusted; drop its
    // residents so a (hypothetical) rehabilitation starts from cold.
    states[rank].device->resident().clear();
    ++report.quarantined_devices;
    reg.add(counters.quarantines);
  };

  // Fastest clean block so far: the second leg of the straggler budget,
  // guarding against a pessimistic planner estimate. Deterministic
  // simulation makes equal-shaped clean blocks take identical time, so
  // this reference never flags a healthy block.
  double fastest_clean = 0.0;
  std::size_t completed_this_run = 0;

  for (std::size_t b = 0; b < blocks; ++b) {
    const BlockExtent extent = decomposition_.extent(b);
    // Any padded field of this block describes the block's padding.
    const PaddedBlock& shape = padded_fields.begin()->second[b];

    if (journal.has(b)) {
      // Journaled by a previous (crashed) run of the same evaluation:
      // load instead of executing.
      scatter(extent, shape, journal.load(b));
      ++report.resumed_blocks;
      reg.add(counters.resumed);
      continue;
    }

    const mesh::RectilinearMesh block_mesh =
        padded_mesh(*mesh_, extent, shape);
    runtime::FieldBindings bindings;
    bindings.bind_mesh(block_mesh);
    for (const auto& [name, padded_blocks] : padded_fields) {
      bindings.bind(name, padded_blocks[b].values);
    }
    const std::size_t elements = shape.dims.cell_count();

    // Block span: parent of the strategy-attempt spans the fallback ladder
    // opens while this block executes (request -> block -> attempt ->
    // command).
    obs::Span block_span("block:" + std::to_string(b), "block");

    std::size_t rank = b % ranks;
    if (!states[rank].healthy) {
      rank = least_loaded_healthy(SIZE_MAX);
    }
    runtime::FallbackOutcome outcome;
    double duration = 0.0;
    for (;;) {
      if (rank == SIZE_MAX) {
        throw Error("all devices quarantined; block " + std::to_string(b) +
                    " cannot be scheduled");
      }
      vcl::ProfilingLog block_log;
      try {
        outcome = run_block_on(rank, bindings, elements, block_log);
        duration = block_log.total_sim_seconds();
        states[rank].log.append(block_log);
        break;
      } catch (const DeviceTimeout&) {
        // The whole fallback ladder timed out on this device: the failed
        // attempts' deadline charges stay on the rank, the rank is
        // quarantined, and the block moves to a healthy device.
        states[rank].log.append(block_log);
        if (!config_.fallback.enabled) throw;
        quarantine(rank);
      } catch (const DataCorruption&) {
        // Second escaped corruption on this block: the device is lying
        // about its transfers; quarantine and move the block.
        states[rank].log.append(block_log);
        if (!config_.fallback.enabled) throw;
        quarantine(rank);
      }
      rank = least_loaded_healthy(SIZE_MAX);
    }

    // Straggler mitigation: a block that completed but blew its
    // simulated-time budget (a slow device under the command watchdog's
    // deadline) is speculatively re-executed elsewhere; the faster result
    // wins and both executions stay charged.
    if (config_.straggler_budget_factor > 0.0) {
      const double estimate = runtime::estimate_sim_seconds(
          network, bindings, elements, config_.device_spec, outcome.executed,
          backend ? backend->compute_efficiency() : 0.0);
      const double reference = std::max(estimate, fastest_clean);
      if (reference > 0.0 &&
          duration > config_.straggler_budget_factor * reference) {
        ++report.straggler_blocks;
        reg.add(counters.stragglers);
        const std::size_t spec_rank = least_loaded_healthy(rank);
        if (spec_rank != SIZE_MAX) {
          ++report.speculative_executions;
          reg.add(counters.spec_runs);
          vcl::ProfilingLog spec_log;
          try {
            runtime::FallbackOutcome spec_outcome =
                run_block_on(spec_rank, bindings, elements, spec_log);
            const double spec_duration = spec_log.total_sim_seconds();
            states[spec_rank].log.append(spec_log);
            if (spec_duration < duration) {
              outcome = std::move(spec_outcome);
              duration = spec_duration;
              ++report.speculations_won;
              reg.add(counters.spec_wins);
            }
          } catch (const Error&) {
            // The speculation target failed too; keep the original result
            // and quarantine the target.
            states[spec_rank].log.append(spec_log);
            quarantine(spec_rank);
          }
        }
      } else {
        fastest_clean = fastest_clean == 0.0
                            ? duration
                            : std::min(fastest_clean, duration);
      }
    }

    if (outcome.executed != strategy_kind) {
      ++report.degraded_blocks;
      reg.add(counters.degraded);
    }
    report.strategy_degradations += outcome.degradations.size();
    reg.add(counters.blocks);
    block_span.add_sim_seconds(duration);

    journal.append(b, outcome.values);
    ++completed_this_run;
    if (config_.abort_after_blocks != 0 &&
        completed_this_run >= config_.abort_after_blocks &&
        b + 1 < blocks) {
      throw Error("evaluation aborted after " +
                  std::to_string(completed_this_run) +
                  " completed blocks (crash injection)");
    }

    scatter(extent, shape, outcome.values);
  }

  const kernels::ProgramCacheStats cache_after =
      kernels::ProgramCache::instance().thread_stats();
  report.pipeline_cache_hits =
      (cache_after.pipeline_hits - cache_before.pipeline_hits) +
      (cache_after.standalone_hits - cache_before.standalone_hits);
  report.pipeline_cache_misses =
      (cache_after.pipeline_misses - cache_before.pipeline_misses) +
      (cache_after.standalone_misses - cache_before.standalone_misses);

  const std::array<std::uint64_t, 5> resident_after = resident_ids.sample();
  report.resident_hits = resident_after[0] - resident_before[0];
  report.resident_misses = resident_after[1] - resident_before[1];
  report.resident_evictions = resident_after[2] - resident_before[2];
  report.resident_invalidations = resident_after[3] - resident_before[3];
  report.resident_upload_bytes_saved = resident_after[4] - resident_before[4];

  report.journaled_blocks = journal.journaled_count();
  report.ghost_messages = exchanger.messages();
  report.ghost_bytes = exchanger.bytes();
  for (std::size_t r = 0; r < ranks; ++r) {
    const vcl::ProfilingLog& log = states[r].log;
    report.max_rank_sim_seconds =
        std::max(report.max_rank_sim_seconds, log.total_sim_seconds());
    report.total_sim_seconds += log.total_sim_seconds();
    report.total_dev_writes += log.count(vcl::EventKind::host_to_device);
    report.total_dev_reads += log.count(vcl::EventKind::device_to_host);
    report.total_kernel_execs += log.count(vcl::EventKind::kernel_exec);
    report.command_timeouts += log.count(vcl::EventKind::timeout);
    report.checksum_mismatches += log.count(vcl::EventKind::integrity);
    report.max_device_high_water = std::max(
        report.max_device_high_water, states[r].device->memory().high_water());
    for (const vcl::Event& event : log.events()) {
      if (event.kind != vcl::EventKind::fault) continue;
      if (event.label.rfind("retry:", 0) == 0) {
        ++report.command_retries;
      } else {
        ++report.injected_faults;
      }
    }
  }
  request_span.add_sim_seconds(report.total_sim_seconds);
  return report;
}

}  // namespace dfg::distrib
