#include "distrib/dist_engine.hpp"

#include <algorithm>
#include <memory>

#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "runtime/fallback.hpp"
#include "support/error.hpp"
#include "vcl/profiling.hpp"

namespace dfg::distrib {

namespace {

/// Builds the padded block's rectilinear mesh from global node coordinates.
mesh::RectilinearMesh padded_mesh(const mesh::RectilinearMesh& global,
                                  const BlockExtent& extent,
                                  const PaddedBlock& padded) {
  const auto slice = [](const std::vector<float>& nodes, std::size_t begin,
                        std::size_t count) {
    return std::vector<float>(nodes.begin() + static_cast<long>(begin),
                              nodes.begin() + static_cast<long>(begin + count));
  };
  // Node counts are cell counts + 1; the low ghost offset shifts the start.
  return mesh::RectilinearMesh(
      slice(global.x_nodes(), extent.i_begin - padded.lo_i,
            padded.dims.nx + 1),
      slice(global.y_nodes(), extent.j_begin - padded.lo_j,
            padded.dims.ny + 1),
      slice(global.z_nodes(), extent.k_begin - padded.lo_k,
            padded.dims.nz + 1));
}

}  // namespace

DistributedEngine::DistributedEngine(const mesh::RectilinearMesh& mesh,
                                     GridDecomposition decomposition,
                                     ClusterConfig config)
    : mesh_(&mesh),
      decomposition_(std::move(decomposition)),
      config_(std::move(config)) {
  if (!(decomposition_.global_dims() == mesh.dims())) {
    throw Error("decomposition dims do not match the mesh");
  }
  if (config_.nodes == 0 || config_.devices_per_node == 0) {
    throw Error("cluster config requires positive node and device counts");
  }
}

void DistributedEngine::bind_global(const std::string& name,
                                    std::span<const float> values) {
  if (values.size() < mesh_->cell_count()) {
    throw Error("global array '" + name + "' smaller than the global grid");
  }
  global_arrays_[name] = values;
}

DistributedReport DistributedEngine::evaluate(
    std::string_view expression, runtime::StrategyKind strategy_kind) {
  // One network is built and shared by every rank (the expression is the
  // same everywhere; only the bound arrays differ per block).
  dataflow::Network network(dataflow::build_network(expression));

  // Ghost data generation for every bound field the expression uses.
  GhostExchanger exchanger(decomposition_, config_.ghost_width);
  std::map<std::string, std::vector<PaddedBlock>> padded_fields;
  for (const std::string& name : network.spec().field_names()) {
    if (name == "x" || name == "y" || name == "z" || name == "dims") continue;
    const auto it = global_arrays_.find(name);
    if (it == global_arrays_.end()) {
      throw NetworkError("expression references unbound global field '" +
                         name + "'");
    }
    std::vector<float> global_copy(it->second.begin(), it->second.end());
    padded_fields[name] = exchanger.exchange(exchanger.scatter(global_copy));
  }

  if (padded_fields.empty()) {
    throw NetworkError(
        "distributed evaluation requires at least one bound field in the "
        "expression");
  }

  const std::size_t ranks = config_.nodes * config_.devices_per_node;
  const std::size_t blocks = decomposition_.block_count();

  // One virtual device and profiling log per MPI task.
  std::vector<std::unique_ptr<vcl::Device>> devices;
  std::vector<vcl::ProfilingLog> logs(ranks);
  devices.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    devices.push_back(std::make_unique<vcl::Device>(config_.device_spec));
  }
  if (config_.fault_plan.armed() && ranks > 0) {
    devices[config_.fault_rank % ranks]->fault().arm(config_.fault_plan);
  }

  const mesh::Dims global_dims = decomposition_.global_dims();
  DistributedReport report;
  report.values.assign(global_dims.cell_count(), 0.0f);
  report.blocks = blocks;
  report.ranks = ranks;
  report.blocks_per_rank_max = (blocks + ranks - 1) / ranks;

  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t rank = b % ranks;
    const BlockExtent extent = decomposition_.extent(b);

    // Any padded field of this block describes the block's padding.
    const PaddedBlock& shape = padded_fields.begin()->second[b];
    const mesh::RectilinearMesh block_mesh =
        padded_mesh(*mesh_, extent, shape);

    runtime::FieldBindings bindings;
    bindings.bind_mesh(block_mesh);
    for (const auto& [name, padded_blocks] : padded_fields) {
      bindings.bind(name, padded_blocks[b].values);
    }

    // Faults injected outside a queue op (allocations) must still land in
    // this rank's log.
    devices[rank]->fault().set_sink(&logs[rank]);
    runtime::FallbackOutcome outcome;
    try {
      outcome = runtime::execute_with_fallback(
          network, bindings, shape.dims.cell_count(), *devices[rank],
          logs[rank], strategy_kind, config_.fallback);
    } catch (const DeviceLost&) {
      if (!config_.fallback.enabled) throw;
      // The rank's device is gone: replace it with a fresh one (as a real
      // resource manager would re-acquire a context) and re-run the block.
      // The replacement starts with no fault plan armed.
      devices[rank] = std::make_unique<vcl::Device>(config_.device_spec);
      ++report.device_losses;
      outcome = runtime::execute_with_fallback(
          network, bindings, shape.dims.cell_count(), *devices[rank],
          logs[rank], strategy_kind, config_.fallback);
    }
    if (outcome.executed != strategy_kind) ++report.degraded_blocks;
    report.strategy_degradations += outcome.degradations.size();
    const std::vector<float>& block_result = outcome.values;

    // Keep only interior cells; ghost-cell results are discarded.
    const mesh::Dims bd = extent.dims();
    for (std::size_t k = 0; k < bd.nz; ++k) {
      for (std::size_t j = 0; j < bd.ny; ++j) {
        for (std::size_t i = 0; i < bd.nx; ++i) {
          report.values[(extent.i_begin + i) +
                        global_dims.nx * ((extent.j_begin + j) +
                                          global_dims.ny *
                                              (extent.k_begin + k))] =
              block_result[shape.index(i + shape.lo_i, j + shape.lo_j,
                                       k + shape.lo_k)];
        }
      }
    }
  }

  report.ghost_messages = exchanger.messages();
  report.ghost_bytes = exchanger.bytes();
  for (std::size_t r = 0; r < ranks; ++r) {
    report.max_rank_sim_seconds =
        std::max(report.max_rank_sim_seconds, logs[r].total_sim_seconds());
    report.total_sim_seconds += logs[r].total_sim_seconds();
    report.total_dev_writes += logs[r].count(vcl::EventKind::host_to_device);
    report.total_dev_reads += logs[r].count(vcl::EventKind::device_to_host);
    report.total_kernel_execs += logs[r].count(vcl::EventKind::kernel_exec);
    report.max_device_high_water =
        std::max(report.max_device_high_water, devices[r]->memory().high_water());
    for (const vcl::Event& event : logs[r].events()) {
      if (event.kind != vcl::EventKind::fault) continue;
      if (event.label.rfind("retry:", 0) == 0) {
        ++report.command_retries;
      } else {
        ++report.injected_faults;
      }
    }
  }
  return report;
}

}  // namespace dfg::distrib
