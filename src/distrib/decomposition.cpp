#include "distrib/decomposition.hpp"

#include "support/error.hpp"

namespace dfg::distrib {

GridDecomposition::GridDecomposition(const mesh::Dims& global,
                                     std::size_t blocks_x, std::size_t blocks_y,
                                     std::size_t blocks_z)
    : global_(global), bx_(blocks_x), by_(blocks_y), bz_(blocks_z) {
  if (bx_ == 0 || by_ == 0 || bz_ == 0) {
    throw Error("decomposition requires positive block counts");
  }
  if (global_.nx % bx_ != 0 || global_.ny % by_ != 0 ||
      global_.nz % bz_ != 0) {
    throw Error("block counts must divide the global dims evenly (" +
                mesh::to_string(global_) + " into " + std::to_string(bx_) +
                "x" + std::to_string(by_) + "x" + std::to_string(bz_) + ")");
  }
}

mesh::Dims GridDecomposition::block_dims() const {
  return mesh::Dims{global_.nx / bx_, global_.ny / by_, global_.nz / bz_};
}

std::size_t GridDecomposition::block_id(const BlockCoord& coord) const {
  if (coord.bi >= bx_ || coord.bj >= by_ || coord.bk >= bz_) {
    throw Error("block coordinate out of range");
  }
  return coord.bi + bx_ * (coord.bj + by_ * coord.bk);
}

BlockCoord GridDecomposition::block_coord(std::size_t id) const {
  if (id >= block_count()) {
    throw Error("block id " + std::to_string(id) + " out of range");
  }
  return BlockCoord{id % bx_, (id / bx_) % by_, id / (bx_ * by_)};
}

BlockExtent GridDecomposition::extent(std::size_t id) const {
  const BlockCoord c = block_coord(id);
  const mesh::Dims b = block_dims();
  return BlockExtent{c.bi * b.nx, (c.bi + 1) * b.nx, c.bj * b.ny,
                     (c.bj + 1) * b.ny, c.bk * b.nz, (c.bk + 1) * b.nz};
}

std::optional<std::size_t> GridDecomposition::neighbor(std::size_t id,
                                                       int axis,
                                                       int direction) const {
  BlockCoord c = block_coord(id);
  const auto step = [&](std::size_t v, std::size_t limit)
      -> std::optional<std::size_t> {
    if (direction < 0) {
      if (v == 0) return std::nullopt;
      return v - 1;
    }
    if (v + 1 >= limit) return std::nullopt;
    return v + 1;
  };
  std::optional<std::size_t> moved;
  switch (axis) {
    case 0:
      moved = step(c.bi, bx_);
      if (!moved) return std::nullopt;
      c.bi = *moved;
      break;
    case 1:
      moved = step(c.bj, by_);
      if (!moved) return std::nullopt;
      c.bj = *moved;
      break;
    case 2:
      moved = step(c.bk, bz_);
      if (!moved) return std::nullopt;
      c.bk = *moved;
      break;
    default:
      throw Error("axis must be 0, 1 or 2");
  }
  return block_id(c);
}

}  // namespace dfg::distrib
