// Shard layer: one supervised evaluation shard.
//
// A Shard is the cluster's unit of failure: a full service::EvalService
// wrapped around its own isolated vcl::Device set (nobody else ever drives
// those devices), plus the machinery supervision needs —
//   * a heartbeat thread that stamps a wall-clock beat while the shard is
//     willing and able to take work; a killed or poisoned shard goes
//     silent, and the supervisor's deadline turns silence into a health
//     transition (the same deadline-factor discipline the device watchdog
//     applies to commands);
//   * a proxy thread between the router and the inner service, so a
//     configured straggler delay (or a dying service) slows *this shard*
//     without ever blocking the router's submit path;
//   * a warm result cache keyed by request digest, populated from the
//     ResultJournal when the supervisor restarts the shard — the keyed
//     range that failed over during the outage comes back able to answer
//     repeat requests instantly;
//   * restart-by-replacement: restart() tears down the service *and* the
//     devices and builds fresh ones, the virtual analogue of swapping a
//     board, so a sticky DeviceLost never outlives the restart.
//
// The router observes a shard only through Attempts: try_submit() returns
// a shared handle the shard's proxy later moves to "ticketed" (inner
// service accepted) or "refused" (shard died first), and the inner
// service resolves the ticket. All three transitions are observable
// without blocking, which is what lets one router monitor thread poll
// every in-flight request of the cluster.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/service.hpp"
#include "vcl/device.hpp"
#include "vcl/fault.hpp"

namespace dfg::shard {

/// Health state machine, owned by the supervisor:
///   healthy → suspect (one missed heartbeat deadline) → draining (two
///   deadlines: stop routing, wait for in-flight work) → restarting →
///   healthy again; draining decays to dead when auto-restart is off.
/// suspect still routes (a slow beat is not an outage); draining and
/// beyond do not.
enum class ShardHealth { healthy, suspect, draining, restarting, dead };

const char* health_name(ShardHealth h);

struct ShardOptions {
  /// Devices per shard; device names are suffixed per shard/device, so
  /// every shard's metric series and fault state are isolated.
  std::size_t devices = 1;
  /// Spec template for each device; a zero-capacity spec selects the
  /// catalog's scaled CPU device.
  vcl::DeviceSpec device_spec;
  service::ServiceOptions service;
  /// Armed on every device at construction (not re-armed after restart:
  /// replacement hardware is healthy). This is how the chaos bench kills
  /// a shard mid-run deterministically.
  vcl::FaultPlan fault_plan;
  /// Straggler injection: the proxy sleeps this long before dispatching
  /// each request, slowing the shard without blocking the router.
  double synthetic_delay_seconds = 0.0;
  double heartbeat_interval_seconds = 0.002;
};

/// What the router hands a shard: the prepared inner request plus the
/// cluster-level digest the warm cache is keyed on.
struct ShardWork {
  service::Request request;
  std::uint64_t digest = 0;
};

/// One routed attempt. Written by the shard's proxy (refused/ticketed)
/// under `mutex`; `counted`/`shard`/`hedge` are set before the handle is
/// shared and never change.
struct Attempt {
  std::size_t shard = 0;
  /// Accounted against the shard's outstanding depth (false for warm hits,
  /// which resolve inline at submit).
  bool counted = false;
  /// Set by the router: this attempt duplicates one already in flight.
  bool hedge = false;

  std::mutex mutex;
  bool refused = false;
  bool warm = false;
  std::shared_ptr<const EvaluationReport> warm_result;
  bool ticketed = false;
  service::Ticket ticket;
};

class Shard {
 public:
  Shard(std::size_t index, std::string cluster, ShardOptions options);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  std::size_t index() const { return index_; }

  /// False once the shard is killed, poisoned by a device loss, or being
  /// restarted; the router skips non-accepting shards.
  bool accepting() const;

  /// Queues `work` for the proxy; returns nullptr when not accepting.
  /// A warm-cache hit returns an attempt already resolved with the cached
  /// result (warm == true) without touching the inner service.
  std::shared_ptr<Attempt> try_submit(ShardWork work);

  /// Attempts admitted and not yet observed terminal by the router — the
  /// backpressure signal the shed policy reads.
  std::size_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }
  /// Router bookkeeping: an accounted attempt reached a terminal state.
  void note_resolved();
  /// Router observed this shard fail an attempt; a device-loss error
  /// poisons the shard (it stops beating and accepting until restarted).
  void note_failure(const std::string& error);

  std::uint64_t last_heartbeat_ns() const {
    return last_beat_ns_.load(std::memory_order_relaxed);
  }
  bool poisoned() const {
    return poisoned_.load(std::memory_order_relaxed);
  }

  /// Administrative kill: stop accepting and stop heartbeating. In-flight
  /// inner requests still resolve (their tickets are never dropped).
  void kill();

  /// Tears down the inner service and devices, builds fresh ones, installs
  /// `warm` as the digest-keyed warm cache, and resumes accepting and
  /// heartbeating. Blocks until in-flight inner work has drained.
  void restart(
      std::vector<std::pair<std::uint64_t, std::vector<float>>> warm);

  std::uint64_t restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }
  std::size_t warm_entries() const;
  std::size_t device_count() const;

  service::ServiceSnapshot service_snapshot() const;

 private:
  void build_locked();
  void proxy_loop();
  void heartbeat_loop();
  void beat();

  const std::size_t index_;
  const std::string cluster_;
  const ShardOptions options_;

  /// Guards devices_, service_, warm_ and the killed flag; taken by the
  /// proxy per dispatch, so restart() naturally waits for the dispatch in
  /// progress.
  mutable std::mutex state_mutex_;
  std::vector<std::unique_ptr<vcl::Device>> devices_;
  std::unique_ptr<service::EvalService> service_;
  std::map<std::uint64_t, std::shared_ptr<const EvaluationReport>> warm_;
  bool killed_ = false;
  bool first_build_ = true;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::pair<ShardWork, std::shared_ptr<Attempt>>> queue_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> poisoned_{false};
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::uint64_t> last_beat_ns_{0};
  std::atomic<std::uint64_t> restarts_{0};

  std::thread proxy_;
  std::thread heartbeat_;
};

}  // namespace dfg::shard
