#include "shard/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace dfg::shard {

const char* priority_class_name(PriorityClass c) {
  switch (c) {
    case PriorityClass::interactive: return "interactive";
    case PriorityClass::batch: return "batch";
    case PriorityClass::speculative: return "speculative";
  }
  return "unknown";
}

std::vector<TrafficEvent> generate_trace(const TrafficOptions& options,
                                         std::size_t catalog_size) {
  if (catalog_size == 0) catalog_size = 1;
  std::mt19937_64 rng(options.seed);

  // Zipf CDF over the catalog.
  std::vector<double> cdf(catalog_size);
  double total = 0.0;
  for (std::size_t r = 0; r < catalog_size; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1),
                            options.zipf_exponent);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;

  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  auto exponential = [&](double mean) {
    // Inverse-CDF sampling; clamp the uniform away from 0 so log() is
    // finite. Mean 0 degenerates to simultaneous arrivals.
    if (mean <= 0.0) return 0.0;
    return -mean * std::log(std::max(uniform(rng), 1e-12));
  };

  std::vector<TrafficEvent> trace;
  trace.reserve(options.requests);
  double now = 0.0;
  bool bursting = false;
  double state_ends = exponential(options.mean_quiet_seconds);
  const double burst_rate_scale =
      options.burst_factor > 0.0 ? 1.0 / options.burst_factor : 1.0;
  for (std::size_t i = 0; i < options.requests; ++i) {
    const double gap = exponential(options.mean_interarrival_seconds) *
                       (bursting ? burst_rate_scale : 1.0);
    now += gap;
    while (now >= state_ends) {
      bursting = !bursting;
      state_ends += exponential(bursting ? options.mean_burst_seconds
                                         : options.mean_quiet_seconds);
    }

    TrafficEvent event;
    event.at_seconds = now;
    const double zipf_draw = uniform(rng);
    event.expression = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), zipf_draw) - cdf.begin());
    if (event.expression >= catalog_size) event.expression = catalog_size - 1;
    event.session = static_cast<std::size_t>(
        uniform(rng) * static_cast<double>(std::max<std::size_t>(
                           options.sessions, 1)));
    if (event.session >= options.sessions && options.sessions > 0) {
      event.session = options.sessions - 1;
    }
    const double p = uniform(rng);
    if (p < options.interactive_fraction) {
      event.priority = PriorityClass::interactive;
    } else if (p < options.interactive_fraction + options.batch_fraction) {
      event.priority = PriorityClass::batch;
    } else {
      event.priority = PriorityClass::speculative;
    }
    trace.push_back(event);
  }
  return trace;
}

}  // namespace dfg::shard
