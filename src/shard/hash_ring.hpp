// Shard layer: consistent-hash ring.
//
// The router places every request on a shard by consistent-hashing its
// network fingerprint: the same expression structure always lands on the
// same shard, so that shard's ProgramCache holds the compiled pipeline and
// its ResidentPool holds the tenant's uploads — affinity is what makes
// sharding cheaper than round-robin, not just wider. Virtual nodes smooth
// the key distribution; the preference order (successor, then the next
// distinct shards clockwise) is also the deterministic reroute/hedge
// order, so when a shard drains its keyed range moves to one well-defined
// neighbour instead of scattering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfg::shard {

class HashRing {
 public:
  /// `virtual_nodes` points per shard, positioned by a seeded FNV-1a hash
  /// (two rings with equal shape and seed are identical).
  HashRing(std::size_t shards, std::size_t virtual_nodes,
           std::uint64_t seed);

  std::size_t shard_count() const { return shards_; }

  /// Every shard exactly once, in clockwise preference order for `key`:
  /// element 0 owns the key, element 1 receives its range when 0 drains,
  /// and so on.
  std::vector<std::size_t> preference(std::uint64_t key) const;

  /// preference(key)[0].
  std::size_t owner(std::uint64_t key) const { return preference(key)[0]; }

 private:
  std::size_t shards_;
  /// (ring position, shard) sorted by position.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

}  // namespace dfg::shard
