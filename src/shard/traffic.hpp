// Shard layer: seeded heavy-tailed traffic generation.
//
// Production derived-field traffic is not uniform: a handful of canonical
// expressions (velocity magnitude, Q-criterion) dominate, arrivals come in
// bursts (a timestep lands and every dashboard refreshes), and consumers
// span priority classes from a human waiting on a plot to speculative
// prefetch. The generator models all three — Zipf expression popularity,
// a two-state bursty arrival process, and a configurable priority mix —
// as a pure function of its seed, so a trace can be replayed bit-for-bit
// against different cluster shapes (the 1-shard vs 4-shard study) or
// against a fault schedule (the chaos differential).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfg::shard {

enum class PriorityClass { interactive = 0, batch = 1, speculative = 2 };

const char* priority_class_name(PriorityClass c);

struct TrafficOptions {
  std::uint64_t seed = 1;
  std::size_t requests = 1000;
  std::size_t sessions = 16;
  /// Zipf exponent over the expression catalog (rank r drawn with weight
  /// 1/r^s): larger = more skew toward the most popular expression.
  double zipf_exponent = 1.1;
  /// Mean inter-arrival gap outside bursts (exponential).
  double mean_interarrival_seconds = 0.0005;
  /// Arrival-rate multiplier while inside a burst.
  double burst_factor = 8.0;
  /// Mean dwell time of the burst / quiet states.
  double mean_burst_seconds = 0.02;
  double mean_quiet_seconds = 0.05;
  /// Priority mix; the remainder after interactive + batch is speculative.
  double interactive_fraction = 0.6;
  double batch_fraction = 0.3;
};

struct TrafficEvent {
  double at_seconds = 0.0;
  /// Index into the caller's expression catalog (Zipf rank order: 0 is
  /// the most popular).
  std::size_t expression = 0;
  std::size_t session = 0;
  PriorityClass priority = PriorityClass::batch;
};

/// Deterministic trace of `options.requests` events sorted by arrival
/// time. `catalog_size` bounds the expression index (must be >= 1).
std::vector<TrafficEvent> generate_trace(const TrafficOptions& options,
                                         std::size_t catalog_size);

}  // namespace dfg::shard
