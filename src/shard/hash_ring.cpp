#include "shard/hash_ring.hpp"

#include <algorithm>
#include <string>

#include "support/checksum.hpp"

namespace dfg::shard {

HashRing::HashRing(std::size_t shards, std::size_t virtual_nodes,
                   std::uint64_t seed)
    : shards_(shards) {
  if (virtual_nodes == 0) virtual_nodes = 1;
  ring_.reserve(shards * virtual_nodes);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t v = 0; v < virtual_nodes; ++v) {
      const std::string point =
          "shard-" + std::to_string(s) + "-vnode-" + std::to_string(v);
      ring_.emplace_back(support::fnv1a(point, seed), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::vector<std::size_t> HashRing::preference(std::uint64_t key) const {
  std::vector<std::size_t> order;
  order.reserve(shards_);
  if (ring_.empty()) return order;
  std::vector<bool> seen(shards_, false);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(key, std::size_t{0}));
  for (std::size_t steps = 0;
       steps < ring_.size() && order.size() < shards_; ++steps, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (seen[it->second]) continue;
    seen[it->second] = true;
    order.push_back(it->second);
  }
  return order;
}

}  // namespace dfg::shard
