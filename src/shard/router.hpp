// Shard layer: front router — admission, affinity, rerouting, hedging.
//
// The ShardRouter is the cluster's single front door. One submit() call:
//
//   1. fingerprints the expression (dataflow structural hash) and digests
//      the full request identity (fingerprint + elements + strategy +
//      field names + field *content* checksums) — the affinity key and the
//      journal/warm-cache key respectively;
//   2. consults the consistent-hash ring for the shard preference order,
//      so equal expressions always land on the shard whose ProgramCache
//      and ResidentPool already serve them;
//   3. applies priority-aware overload control: each shard admits up to
//      its queue-depth limit for interactive work, but batch and
//      speculative requests are shed earlier (75% / 50% of the limit under
//      the default "priority" policy), keeping headroom for the class a
//      human is waiting on. A shed is a typed AdmissionError carrying the
//      observed depth, the limit, and a retry-after hint derived from the
//      router's completion-latency EMA — backpressure a caller can act on;
//   4. hands the admitted request to the owning shard and tracks it as a
//      Flight until some attempt completes.
//
// A single monitor thread polls every flight: failed or refused attempts
// are rerouted to the next ring node under a bounded exponential-backoff
// budget; requests outliving the hedge threshold get one duplicate attempt
// on a different shard (first completion wins, the loser is discarded);
// a request whose route budget is exhausted is served from the result
// journal when an identical request completed before, else failed with the
// last observed error. Every admitted request reaches exactly one terminal
// state — completed, shed, or failed — which is the zero-lost-requests
// invariant the chaos bench gates on.
//
// End-to-end latency histograms here are wall-clock by design (the
// documented exception in obs/metrics.hpp): they measure real queueing and
// rerouting behaviour that the simulated device clock cannot see.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "shard/hash_ring.hpp"
#include "shard/journal.hpp"
#include "shard/shard.hpp"
#include "shard/supervisor.hpp"
#include "shard/traffic.hpp"

namespace dfg::shard {

/// One unit of work submitted to the cluster. Mesh and field views must
/// outlive the ticket (the same in-situ no-copy contract as the service).
struct ShardRequest {
  std::string expression;
  const mesh::RectilinearMesh* mesh = nullptr;
  std::vector<service::FieldRef> fields;
  std::string session = "default";
  PriorityClass priority = PriorityClass::batch;
  runtime::StrategyKind strategy = runtime::StrategyKind::fusion;
  /// 0 derives from the mesh, else from the first bound field.
  std::size_t elements = 0;
};

/// Typed admission rejection: which class was shed, where, how deep the
/// queue was against its class limit, and when retrying is likely to
/// succeed (EMA of recent completion latency × queued depth).
struct AdmissionError {
  PriorityClass priority = PriorityClass::batch;
  std::size_t shard = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_limit = 0;
  double retry_after_seconds = 0.0;
  std::string message() const;
};

enum class ShardRequestStatus {
  pending,    ///< still in flight
  completed,  ///< some attempt (or the journal) produced a result
  shed,       ///< refused at admission by overload control
  failed,     ///< every route failed and the journal had no answer
};

/// Terminal outcome of one cluster request.
struct ShardReport {
  ShardRequestStatus status = ShardRequestStatus::pending;
  PriorityClass priority = PriorityClass::batch;
  /// Result (completed status only); bit-exact with a single-service run.
  std::shared_ptr<const EvaluationReport> evaluation;
  /// Last route's error (failed status only).
  std::string error;
  /// Present exactly when status == shed.
  std::optional<AdmissionError> admission;
  /// Shard that served the completion (or the owner, for sheds).
  std::size_t shard = 0;
  /// Reroutes this request consumed (0 = first route completed).
  std::size_t reroutes = 0;
  /// Hedge attempts launched for this request.
  std::size_t hedges = 0;
  bool served_from_journal = false;
  /// Served by a restarted shard's journal-warmed cache at admission.
  bool served_warm = false;
  /// Wall-clock submit-to-terminal latency.
  double latency_seconds = 0.0;
};

namespace detail {
struct ShardTicketState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  ShardReport report;
};
}  // namespace detail

/// Handle to one cluster request; copyable, wait() blocks until terminal.
class ShardTicket {
 public:
  ShardTicket() = default;
  const ShardReport& wait() const;
  bool ready() const;

 private:
  friend class ShardRouter;
  explicit ShardTicket(std::shared_ptr<detail::ShardTicketState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::ShardTicketState> state_;
};

struct RouterOptions {
  /// Per-shard outstanding-attempt limit; the interactive class may fill
  /// it, lower classes are shed earlier (see shed_policy).
  std::size_t shard_queue_depth = 32;
  /// "priority": interactive sheds at 100% of the limit, batch at 75%,
  /// speculative at 50%. "hard": every class sheds at 100%.
  std::string shed_policy = "priority";
  /// Route budget per request beyond the initial attempt.
  std::size_t max_reroutes = 3;
  double backoff_base_seconds = 0.0005;
  double backoff_multiplier = 2.0;
  /// Hedge a sole in-flight attempt older than this onto a second shard
  /// (first completion wins). 0 disables hedging.
  double hedge_after_seconds = 0.0;
  /// Hedge budget: at most max(4, fraction × admitted) hedges per cluster
  /// lifetime, bounding duplicated device work on stragglers.
  double hedge_budget_fraction = 0.05;
  std::size_t virtual_nodes = 16;
  double monitor_interval_seconds = 0.0002;
};

struct ShardStatus {
  std::size_t index = 0;
  ShardHealth health = ShardHealth::healthy;
  std::size_t outstanding = 0;
  std::uint64_t restarts = 0;
  std::size_t warm_entries = 0;
  service::ServiceSnapshot service;
};

/// Cluster-wide counters: views over this cluster's `cluster=<N>` registry
/// series plus per-shard status. completed + shed + failed == submitted
/// once the cluster is drained.
struct ClusterSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  /// Indexed by PriorityClass.
  std::array<std::uint64_t, 3> shed_by_class{};
  std::uint64_t reroutes = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t journal_serves = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t restarts = 0;
  std::uint64_t heartbeat_misses = 0;
  /// Wall-clock end-to-end latency quantiles (log2-bucket upper bounds).
  std::uint64_t latency_p50_ns = 0;
  std::uint64_t latency_p99_ns = 0;
  std::uint64_t latency_p999_ns = 0;
  std::vector<ShardStatus> shards;
};

struct ClusterOptions {
  std::size_t shards = 4;
  /// Template for every shard (fault_plan may be overridden per shard).
  ShardOptions shard;
  RouterOptions router;
  SupervisorOptions supervisor;
  /// Result-journal directory; empty disables journaling (no re-warm, no
  /// last-resort serves).
  std::string journal_dir;
  /// Salts the request digest and the ring layout; clusters with different
  /// seeds never share journal entries.
  std::uint64_t cluster_seed = 0x5eed;
  /// Per-shard fault-plan overrides for chaos runs (index < shards).
  std::vector<vcl::FaultPlan> shard_fault_plans;

  /// Defaults overlaid with DFGEN_SHARDS, DFGEN_SHARD_QUEUE_DEPTH and
  /// DFGEN_SHED_POLICY.
  static ClusterOptions from_env();
};

class ShardRouter {
 public:
  explicit ShardRouter(ClusterOptions options);
  /// Drains every flight, then stops the monitor, supervisor and shards.
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Admits, sheds, or serves the request; never blocks on device work.
  /// Shed and parse-failed tickets are already resolved on return.
  ShardTicket submit(ShardRequest request);

  /// Blocks until every admitted request reached a terminal state.
  void drain();

  ClusterSnapshot snapshot() const;

  std::size_t shard_count() const { return shards_.size(); }
  /// Direct shard access for tests and chaos drivers (kill()).
  Shard& shard(std::size_t i) { return *shards_[i]; }
  const ShardSupervisor& supervisor() const { return *supervisor_; }
  const HashRing& ring() const { return ring_; }
  ResultJournal& journal() { return journal_; }

 private:
  struct Flight;

  std::size_t class_limit(PriorityClass c) const;
  void monitor_loop();
  /// One poll pass over flights and orphans; appends completed results to
  /// `records` for journaling outside the lock. Caller holds mutex_.
  void poll_locked(std::vector<std::pair<std::uint64_t,
                                         std::shared_ptr<const EvaluationReport>>>&
                       records);
  void finish_locked(Flight& flight, ShardReport report);
  bool reroute_locked(Flight& flight);
  void hedge_locked(Flight& flight);

  const ClusterOptions options_;
  const std::string cluster_;

  ResultJournal journal_;
  std::vector<std::unique_ptr<Shard>> shards_;
  HashRing ring_;
  std::unique_ptr<ShardSupervisor> supervisor_;

  // Registry handles for this cluster's series.
  obs::MetricId submitted_id_;
  obs::MetricId admitted_id_;
  obs::MetricId completed_id_;
  obs::MetricId failed_id_;
  std::array<obs::MetricId, 3> shed_id_{};
  obs::MetricId reroutes_id_;
  obs::MetricId hedges_launched_id_;
  obs::MetricId hedges_won_id_;
  obs::MetricId journal_serves_id_;
  obs::MetricId warm_hits_id_;
  obs::MetricId latency_all_id_;
  std::array<obs::MetricId, 3> latency_class_id_{};

  mutable std::mutex mutex_;
  std::condition_variable monitor_cv_;
  std::condition_variable drain_cv_;
  bool stopping_ = false;
  /// True while the monitor has dropped mutex_ to append this pass's
  /// completions to the journal; drain() waits it out.
  bool journaling_ = false;
  std::vector<std::unique_ptr<Flight>> flights_;
  /// Losing hedge / superseded attempts still outstanding on their shards;
  /// polled until terminal so shard depth accounting stays exact.
  std::vector<std::shared_ptr<Attempt>> orphans_;
  /// EMA of completion latency, feeding the shed retry-after hint.
  double ema_latency_seconds_ = 0.005;

  std::thread monitor_;
};

}  // namespace dfg::shard
