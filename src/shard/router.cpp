#include "shard/router.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <utility>

#include "dataflow/builder.hpp"
#include "dataflow/network.hpp"
#include "support/checksum.hpp"
#include "support/env.hpp"

namespace dfg::shard {

namespace {

std::atomic<std::uint64_t> g_next_cluster{1};

using Clock = std::chrono::steady_clock;

Clock::duration seconds_to_duration(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

/// Inner-service priority: higher dispatches first within a session, so
/// the class order maps onto descending integers.
int inner_priority(PriorityClass c) {
  switch (c) {
    case PriorityClass::interactive: return 2;
    case PriorityClass::batch: return 1;
    case PriorityClass::speculative: return 0;
  }
  return 0;
}

std::shared_ptr<const EvaluationReport> journal_report(
    std::vector<float> values) {
  auto report = std::make_shared<EvaluationReport>();
  report->elements = values.size();
  report->values = std::move(values);
  report->strategy = "journal";
  return report;
}

void resolve(const std::shared_ptr<detail::ShardTicketState>& state,
             ShardReport report) {
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->report = std::move(report);
    state->done = true;
  }
  state->cv.notify_all();
}

/// Option hygiene applied once at construction: clamp degenerate values
/// and wire the cross-component couplings (the shards heartbeat on the
/// supervisor's clock; the inner services get comfortable queue headroom
/// over the router's limit so router-level shedding, not inner admission,
/// is the overload policy).
ClusterOptions normalize(ClusterOptions o) {
  if (o.shards == 0) o.shards = 1;
  if (o.router.shard_queue_depth == 0) o.router.shard_queue_depth = 1;
  if (o.router.virtual_nodes == 0) o.router.virtual_nodes = 1;
  o.shard.heartbeat_interval_seconds = o.supervisor.heartbeat_interval_seconds;
  o.shard.service.max_queue_depth = std::max(
      o.shard.service.max_queue_depth, o.router.shard_queue_depth * 4);
  return o;
}

}  // namespace

std::string AdmissionError::message() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%s request shed: shard %zu at depth %zu of limit %zu; "
                "retry after %.4fs",
                priority_class_name(priority), shard, queue_depth,
                queue_limit, retry_after_seconds);
  return buf;
}

const ShardReport& ShardTicket::wait() const {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->report;
}

bool ShardTicket::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

ClusterOptions ClusterOptions::from_env() {
  ClusterOptions o;
  o.shards = static_cast<std::size_t>(std::max(
      1, support::env::get_int("DFGEN_SHARDS", static_cast<int>(o.shards))));
  o.router.shard_queue_depth = static_cast<std::size_t>(std::max(
      1, support::env::get_int(
             "DFGEN_SHARD_QUEUE_DEPTH",
             static_cast<int>(o.router.shard_queue_depth))));
  o.router.shed_policy =
      support::env::get_string("DFGEN_SHED_POLICY", o.router.shed_policy);
  return o;
}

/// One admitted request in flight: the resubmittable work, its live
/// attempts, and the reroute/hedge bookkeeping the monitor drives.
struct ShardRouter::Flight {
  ShardWork work;
  std::uint64_t fingerprint = 0;
  PriorityClass priority = PriorityClass::batch;
  std::shared_ptr<detail::ShardTicketState> ticket;
  Clock::time_point started{};
  std::vector<std::shared_ptr<Attempt>> attempts;
  /// Shards this request already attempted (cleared when exhausted, so the
  /// budget — not the memory — bounds retries).
  std::vector<char> tried;
  std::size_t reroutes_used = 0;
  std::size_t hedges = 0;
  /// In backoff: no live attempts, resubmit no earlier than not_before.
  bool waiting = false;
  Clock::time_point not_before{};
  std::string last_error;
};

ShardRouter::ShardRouter(ClusterOptions options)
    : options_(normalize(std::move(options))),
      cluster_(std::to_string(
          g_next_cluster.fetch_add(1, std::memory_order_relaxed))),
      journal_(options_.journal_dir,
               support::fnv1a("result-journal", options_.cluster_seed)),
      ring_(options_.shards, options_.router.virtual_nodes,
            options_.cluster_seed) {
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    ShardOptions so = options_.shard;
    if (i < options_.shard_fault_plans.size() &&
        options_.shard_fault_plans[i].armed()) {
      so.fault_plan = options_.shard_fault_plans[i];
    }
    shards_.push_back(
        std::make_unique<Shard>(i, "cl" + cluster_, std::move(so)));
  }
  supervisor_ = std::make_unique<ShardSupervisor>(
      shards_, journal_, options_.supervisor, cluster_);

  obs::MetricsRegistry& reg = obs::metrics();
  const obs::Labels base{{"cluster", cluster_}};
  submitted_id_ = reg.counter("dfgen_shard_submitted_total", base);
  admitted_id_ = reg.counter("dfgen_shard_admitted_total", base);
  completed_id_ = reg.counter("dfgen_shard_completed_total", base);
  failed_id_ = reg.counter("dfgen_shard_failed_total", base);
  reroutes_id_ = reg.counter("dfgen_shard_reroutes_total", base);
  hedges_launched_id_ = reg.counter("dfgen_shard_hedges_total",
                                    {{"cluster", cluster_},
                                     {"kind", "launched"}});
  hedges_won_id_ = reg.counter("dfgen_shard_hedges_total",
                               {{"cluster", cluster_}, {"kind", "won"}});
  journal_serves_id_ = reg.counter("dfgen_shard_journal_serves_total", base);
  warm_hits_id_ = reg.counter("dfgen_shard_warm_hits_total", base);
  latency_all_id_ = reg.histogram("dfgen_shard_request_latency_ns",
                                  {{"class", "all"}, {"cluster", cluster_}});
  for (int c = 0; c < 3; ++c) {
    const char* name = priority_class_name(static_cast<PriorityClass>(c));
    shed_id_[static_cast<std::size_t>(c)] =
        reg.counter("dfgen_shard_shed_total",
                    {{"class", name}, {"cluster", cluster_}});
    latency_class_id_[static_cast<std::size_t>(c)] =
        reg.histogram("dfgen_shard_request_latency_ns",
                      {{"class", name}, {"cluster", cluster_}});
  }

  supervisor_->start();
  monitor_ = std::thread([this] { monitor_loop(); });
}

ShardRouter::~ShardRouter() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  monitor_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  supervisor_->stop();
  // shards_ tear down last (member order): each drains its inner service.
}

std::size_t ShardRouter::class_limit(PriorityClass c) const {
  const std::size_t limit = options_.router.shard_queue_depth;
  if (options_.router.shed_policy == "hard") return limit;
  switch (c) {
    case PriorityClass::interactive:
      return limit;
    case PriorityClass::batch:
      return std::max<std::size_t>(1, (limit * 3) / 4);
    case PriorityClass::speculative:
      return std::max<std::size_t>(1, limit / 2);
  }
  return limit;
}

ShardTicket ShardRouter::submit(ShardRequest request) {
  obs::MetricsRegistry& reg = obs::metrics();
  reg.add(submitted_id_);
  auto state = std::make_shared<detail::ShardTicketState>();
  ShardTicket ticket(state);

  const auto fail = [&](std::string error) {
    ShardReport report;
    report.status = ShardRequestStatus::failed;
    report.priority = request.priority;
    report.error = std::move(error);
    reg.add(failed_id_);
    resolve(state, std::move(report));
    return ticket;
  };

  // Affinity key: the expression's structural fingerprint, so equal
  // expressions always route to the shard holding their compiled program.
  std::uint64_t fingerprint = 0;
  try {
    dataflow::Network net(dataflow::build_network(request.expression, {}));
    fingerprint = net.fingerprint();
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  std::size_t elements = request.elements;
  if (elements == 0 && request.mesh != nullptr) {
    elements = request.mesh->cell_count();
  }
  if (elements == 0 && !request.fields.empty()) {
    elements = request.fields.front().values.size();
  }
  if (elements == 0) {
    return fail("cannot derive element count: bind a mesh, a field, or set "
                "elements explicitly");
  }

  // Result identity: fingerprint + shape + strategy + field *content* (in
  // name order, so binding order is irrelevant). Changed input bytes change
  // the digest, which is what makes journal/warm serves safe.
  std::uint64_t digest =
      support::fnv1a(&fingerprint, sizeof(fingerprint),
                     support::kFnvOffsetBasis ^ options_.cluster_seed);
  const std::uint64_t elements64 = elements;
  digest = support::fnv1a(&elements64, sizeof(elements64), digest);
  const std::uint32_t strategy = static_cast<std::uint32_t>(request.strategy);
  digest = support::fnv1a(&strategy, sizeof(strategy), digest);
  std::vector<std::size_t> order(request.fields.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return request.fields[a].name < request.fields[b].name;
  });
  for (const std::size_t i : order) {
    digest = support::fnv1a(request.fields[i].name, digest);
    digest = support::checksum_floats(request.fields[i].values, digest);
  }

  service::Request inner;
  inner.expression = request.expression;
  inner.mesh = request.mesh;
  inner.fields = request.fields;
  inner.session = request.session;
  inner.priority = inner_priority(request.priority);
  inner.strategy = request.strategy;
  inner.elements = elements;
  ShardWork work{std::move(inner), digest};

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    lock.unlock();
    return fail("router is shutting down");
  }
  const std::vector<std::size_t> prefs = ring_.preference(fingerprint);
  const std::size_t limit = class_limit(request.priority);
  std::shared_ptr<Attempt> attempt;
  for (const std::size_t s : prefs) {
    if (!supervisor_->routable(s)) continue;
    Shard& candidate = *shards_[s];
    if (!candidate.accepting()) continue;
    if (candidate.outstanding() >= limit) continue;
    attempt = candidate.try_submit(work);
    if (attempt != nullptr) break;
  }

  if (attempt != nullptr) {
    reg.add(admitted_id_);
    bool warm = false;
    std::shared_ptr<const EvaluationReport> warm_result;
    {
      std::lock_guard<std::mutex> alock(attempt->mutex);
      warm = attempt->warm;
      warm_result = attempt->warm_result;
    }
    if (warm) {
      reg.add(warm_hits_id_);
      reg.add(completed_id_);
      const std::uint64_t zero_ns = 0;
      reg.observe(latency_all_id_, zero_ns);
      reg.observe(
          latency_class_id_[static_cast<std::size_t>(request.priority)],
          zero_ns);
      ShardReport report;
      report.status = ShardRequestStatus::completed;
      report.priority = request.priority;
      report.evaluation = std::move(warm_result);
      report.shard = attempt->shard;
      report.served_warm = true;
      lock.unlock();
      resolve(state, std::move(report));
      return ticket;
    }
    auto flight = std::make_unique<Flight>();
    flight->work = std::move(work);
    flight->fingerprint = fingerprint;
    flight->priority = request.priority;
    flight->ticket = state;
    flight->started = Clock::now();
    flight->tried.assign(shards_.size(), 0);
    flight->tried[attempt->shard] = 1;
    flight->attempts.push_back(std::move(attempt));
    flights_.push_back(std::move(flight));
    monitor_cv_.notify_all();
    return ticket;
  }

  // No shard admitted. An identical earlier result makes this a journal
  // serve instead of a shed — degraded capacity should not fail repeat
  // readers.
  if (auto cached = journal_.lookup(digest)) {
    reg.add(admitted_id_);
    reg.add(journal_serves_id_);
    reg.add(completed_id_);
    ShardReport report;
    report.status = ShardRequestStatus::completed;
    report.priority = request.priority;
    report.evaluation = journal_report(std::move(*cached));
    report.shard = prefs.front();
    report.served_from_journal = true;
    lock.unlock();
    resolve(state, std::move(report));
    return ticket;
  }

  AdmissionError admission;
  admission.priority = request.priority;
  admission.shard = prefs.front();
  admission.queue_depth = shards_[admission.shard]->outstanding();
  admission.queue_limit = limit;
  admission.retry_after_seconds =
      ema_latency_seconds_ * static_cast<double>(admission.queue_depth + 1);
  reg.add(shed_id_[static_cast<std::size_t>(request.priority)]);
  ShardReport report;
  report.status = ShardRequestStatus::shed;
  report.priority = request.priority;
  report.shard = admission.shard;
  report.admission = admission;
  lock.unlock();
  resolve(state, std::move(report));
  return ticket;
}

void ShardRouter::finish_locked(Flight& flight, ShardReport report) {
  const double latency =
      std::chrono::duration<double>(Clock::now() - flight.started).count();
  report.priority = flight.priority;
  report.reroutes = flight.reroutes_used;
  report.hedges = flight.hedges;
  report.latency_seconds = latency;
  obs::MetricsRegistry& reg = obs::metrics();
  if (report.status == ShardRequestStatus::completed) {
    reg.add(completed_id_);
    const auto ns = static_cast<std::uint64_t>(latency * 1e9);
    reg.observe(latency_all_id_, ns);
    reg.observe(latency_class_id_[static_cast<std::size_t>(flight.priority)],
                ns);
    ema_latency_seconds_ = 0.9 * ema_latency_seconds_ + 0.1 * latency;
  } else {
    reg.add(failed_id_);
  }
  resolve(flight.ticket, std::move(report));
}

bool ShardRouter::reroute_locked(Flight& flight) {
  const std::vector<std::size_t> prefs = ring_.preference(flight.fingerprint);
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::size_t s : prefs) {
      if (flight.tried[s] != 0 || !supervisor_->routable(s)) continue;
      Shard& candidate = *shards_[s];
      if (!candidate.accepting()) continue;
      if (candidate.outstanding() >= options_.router.shard_queue_depth) {
        continue;
      }
      auto attempt = candidate.try_submit(flight.work);
      if (attempt == nullptr) continue;
      flight.tried[s] = 1;
      flight.reroutes_used += 1;
      flight.waiting = false;
      obs::metrics().add(reroutes_id_);
      flight.attempts.push_back(std::move(attempt));
      return true;
    }
    // Every shard tried: forget and go around once more — the reroute
    // budget, not this memory, is what bounds the request's lifetime.
    std::fill(flight.tried.begin(), flight.tried.end(), 0);
  }
  // Nowhere to go right now (outage or uniform overload): consume budget
  // and back off, so a cluster-wide outage fails requests in bounded time.
  flight.reroutes_used += 1;
  flight.waiting = true;
  const double backoff =
      options_.router.backoff_base_seconds *
      std::pow(options_.router.backoff_multiplier,
               static_cast<double>(flight.reroutes_used));
  flight.not_before = Clock::now() + seconds_to_duration(backoff);
  return false;
}

void ShardRouter::hedge_locked(Flight& flight) {
  obs::MetricsRegistry& reg = obs::metrics();
  const std::uint64_t launched = reg.counter_value(hedges_launched_id_);
  const std::uint64_t admitted = reg.counter_value(admitted_id_);
  const auto budget = std::max<std::uint64_t>(
      4, static_cast<std::uint64_t>(options_.router.hedge_budget_fraction *
                                    static_cast<double>(admitted)));
  if (launched >= budget) return;
  const std::size_t primary = flight.attempts.front()->shard;
  for (const std::size_t s : ring_.preference(flight.fingerprint)) {
    if (s == primary || !supervisor_->routable(s)) continue;
    Shard& candidate = *shards_[s];
    if (!candidate.accepting()) continue;
    if (candidate.outstanding() >= options_.router.shard_queue_depth) continue;
    auto attempt = candidate.try_submit(flight.work);
    if (attempt == nullptr) continue;
    attempt->hedge = true;
    flight.hedges += 1;
    reg.add(hedges_launched_id_);
    flight.attempts.push_back(std::move(attempt));
    return;
  }
}

void ShardRouter::poll_locked(
    std::vector<std::pair<std::uint64_t,
                          std::shared_ptr<const EvaluationReport>>>& records) {
  obs::MetricsRegistry& reg = obs::metrics();
  const Clock::time_point now = Clock::now();

  for (std::size_t fi = 0; fi < flights_.size();) {
    Flight& flight = *flights_[fi];
    bool terminal = false;
    ShardReport report;

    for (std::size_t ai = 0; ai < flight.attempts.size();) {
      const std::shared_ptr<Attempt>& attempt = flight.attempts[ai];
      bool refused = false;
      bool ready = false;
      bool warm = false;
      std::shared_ptr<const EvaluationReport> warm_result;
      service::Ticket inner_ticket;
      {
        std::lock_guard<std::mutex> alock(attempt->mutex);
        refused = attempt->refused;
        warm = attempt->warm;
        warm_result = attempt->warm_result;
        if (attempt->ticketed) {
          inner_ticket = attempt->ticket;
          ready = inner_ticket.ready();
        }
      }
      if (warm) {
        // A reroute or hedge landed on a journal-warmed cache.
        terminal = true;
        report.status = ShardRequestStatus::completed;
        report.evaluation = std::move(warm_result);
        report.shard = attempt->shard;
        report.served_warm = true;
        reg.add(warm_hits_id_);
        if (attempt->hedge) reg.add(hedges_won_id_);
        flight.attempts.erase(flight.attempts.begin() +
                              static_cast<std::ptrdiff_t>(ai));
        break;
      }
      if (refused) {
        if (attempt->counted) shards_[attempt->shard]->note_resolved();
        flight.last_error =
            "shard " + std::to_string(attempt->shard) + " refused the request";
        flight.attempts.erase(flight.attempts.begin() +
                              static_cast<std::ptrdiff_t>(ai));
        continue;
      }
      if (ready) {
        const service::ServiceReport& inner = inner_ticket.wait();
        if (inner.status == service::RequestStatus::completed) {
          terminal = true;
          report.status = ShardRequestStatus::completed;
          report.evaluation = inner.evaluation;
          report.shard = attempt->shard;
          if (attempt->hedge) reg.add(hedges_won_id_);
          shards_[attempt->shard]->note_resolved();
          records.emplace_back(flight.work.digest, inner.evaluation);
          flight.attempts.erase(flight.attempts.begin() +
                                static_cast<std::ptrdiff_t>(ai));
          break;
        }
        const std::string error =
            inner.status == service::RequestStatus::failed
                ? inner.error
                : inner.reject_reason;
        shards_[attempt->shard]->note_failure(error);
        shards_[attempt->shard]->note_resolved();
        flight.last_error = error.empty() ? "request rejected" : error;
        flight.attempts.erase(flight.attempts.begin() +
                              static_cast<std::ptrdiff_t>(ai));
        continue;
      }
      ++ai;
    }

    if (terminal) {
      // Losing attempts stay accounted on their shards until terminal.
      for (auto& rest : flight.attempts) orphans_.push_back(std::move(rest));
      flight.attempts.clear();
      finish_locked(flight, std::move(report));
      flights_.erase(flights_.begin() + static_cast<std::ptrdiff_t>(fi));
      continue;
    }

    if (flight.attempts.empty()) {
      if (flight.reroutes_used >= options_.router.max_reroutes) {
        // Route budget exhausted: the journal is the last resort.
        if (auto cached = journal_.lookup(flight.work.digest)) {
          report.status = ShardRequestStatus::completed;
          report.evaluation = journal_report(std::move(*cached));
          report.served_from_journal = true;
          reg.add(journal_serves_id_);
        } else {
          report.status = ShardRequestStatus::failed;
          report.error = flight.last_error.empty()
                             ? "no route to any shard"
                             : flight.last_error;
        }
        finish_locked(flight, std::move(report));
        flights_.erase(flights_.begin() + static_cast<std::ptrdiff_t>(fi));
        continue;
      }
      if (!flight.waiting) {
        flight.waiting = true;
        const double backoff =
            options_.router.backoff_base_seconds *
            std::pow(options_.router.backoff_multiplier,
                     static_cast<double>(flight.reroutes_used));
        flight.not_before = now + seconds_to_duration(backoff);
      } else if (now >= flight.not_before) {
        reroute_locked(flight);
      }
      ++fi;
      continue;
    }

    if (options_.router.hedge_after_seconds > 0.0 && flight.hedges == 0 &&
        flight.attempts.size() == 1 &&
        std::chrono::duration<double>(now - flight.started).count() >
            options_.router.hedge_after_seconds) {
      hedge_locked(flight);
    }
    ++fi;
  }

  for (std::size_t oi = 0; oi < orphans_.size();) {
    const std::shared_ptr<Attempt>& attempt = orphans_[oi];
    bool done = false;
    service::Ticket inner_ticket;
    bool has_ticket = false;
    {
      std::lock_guard<std::mutex> alock(attempt->mutex);
      if (attempt->refused || attempt->warm) {
        done = true;
      } else if (attempt->ticketed) {
        inner_ticket = attempt->ticket;
        has_ticket = true;
      }
    }
    if (!done && has_ticket && inner_ticket.ready()) {
      done = true;
      const service::ServiceReport& inner = inner_ticket.wait();
      if (inner.status == service::RequestStatus::failed) {
        // A losing hedge can still carry the poison signal.
        shards_[attempt->shard]->note_failure(inner.error);
      }
    }
    if (done) {
      if (attempt->counted) shards_[attempt->shard]->note_resolved();
      orphans_.erase(orphans_.begin() + static_cast<std::ptrdiff_t>(oi));
      continue;
    }
    ++oi;
  }
}

void ShardRouter::monitor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint64_t,
                        std::shared_ptr<const EvaluationReport>>> records;
  for (;;) {
    monitor_cv_.wait_for(
        lock,
        std::chrono::duration<double>(
            options_.router.monitor_interval_seconds));
    if (stopping_ && flights_.empty() && orphans_.empty()) return;
    records.clear();
    poll_locked(records);
    if (!records.empty()) {
      // Journal writes are file I/O: keep them off the router lock so
      // submits and polls never stall behind the disk. journaling_ keeps
      // drain() from slipping through the unlocked window: a drained
      // cluster's results must already be lookupable in the journal.
      journaling_ = true;
      lock.unlock();
      for (auto& [digest, evaluation] : records) {
        journal_.record(digest, evaluation->values);
      }
      lock.lock();
      journaling_ = false;
    }
    if (flights_.empty() && orphans_.empty() && !journaling_) {
      drain_cv_.notify_all();
    }
  }
}

void ShardRouter::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  monitor_cv_.notify_all();
  drain_cv_.wait(lock, [&] {
    return flights_.empty() && orphans_.empty() && !journaling_;
  });
}

ClusterSnapshot ShardRouter::snapshot() const {
  obs::MetricsRegistry& reg = obs::metrics();
  ClusterSnapshot s;
  s.submitted = reg.counter_value(submitted_id_);
  s.admitted = reg.counter_value(admitted_id_);
  s.completed = reg.counter_value(completed_id_);
  s.failed = reg.counter_value(failed_id_);
  for (std::size_t c = 0; c < 3; ++c) {
    s.shed_by_class[c] = reg.counter_value(shed_id_[c]);
    s.shed += s.shed_by_class[c];
  }
  s.reroutes = reg.counter_value(reroutes_id_);
  s.hedges_launched = reg.counter_value(hedges_launched_id_);
  s.hedges_won = reg.counter_value(hedges_won_id_);
  s.journal_serves = reg.counter_value(journal_serves_id_);
  s.warm_hits = reg.counter_value(warm_hits_id_);
  s.restarts = supervisor_->restarts();
  s.heartbeat_misses = supervisor_->heartbeat_misses();
  s.latency_p50_ns = reg.histogram_quantile(latency_all_id_, 0.5);
  s.latency_p99_ns = reg.histogram_quantile(latency_all_id_, 0.99);
  s.latency_p999_ns = reg.histogram_quantile(latency_all_id_, 0.999);
  s.shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardStatus status;
    status.index = i;
    status.health = supervisor_->health(i);
    status.outstanding = shards_[i]->outstanding();
    status.restarts = shards_[i]->restarts();
    status.warm_entries = shards_[i]->warm_entries();
    status.service = shards_[i]->service_snapshot();
    s.shards.push_back(std::move(status));
  }
  return s;
}

}  // namespace dfg::shard
