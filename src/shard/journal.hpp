// Shard layer: digest-keyed result journal.
//
// A thread-safe facade over distrib::CheckpointJournal that keys entries
// by request *digest* (expression fingerprint + input content) instead of
// block index. The router records every completed result; the journal then
// serves two robustness roles:
//   * restart re-warm — a shard revived by the supervisor is handed the
//     journal's entries as a warm result cache, so the keyed range that
//     rerouted away during the outage comes back to a shard that can
//     answer repeat requests without re-executing;
//   * last-resort serving — a request whose retry budget is exhausted
//     (every route failed) is answered from the journal when an identical
//     request completed earlier, degrading a would-be failure into a
//     bit-exact cached result.
// Because the digest covers input *content* (checksummed fields), a stale
// entry cannot be served after inputs change: changed bytes change the
// digest.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "distrib/checkpoint.hpp"

namespace dfg::shard {

class ResultJournal {
 public:
  /// Disabled: record() is a no-op, lookup() always misses.
  ResultJournal() = default;

  /// Opens (creating if needed) `dir`; `cluster_key` plays the run-key
  /// role, so clusters with different seeds never share entries.
  ResultJournal(const std::string& dir, std::uint64_t cluster_key);

  bool enabled() const;

  /// Journals a completed result under its digest. I/O failures are
  /// reported to stderr once and swallowed: journaling is best-effort and
  /// must never fail the request it records.
  void record(std::uint64_t digest, std::span<const float> values);

  std::optional<std::vector<float>> lookup(std::uint64_t digest) const;

  /// Every (digest, values) entry currently valid — the restart re-warm
  /// payload.
  std::vector<std::pair<std::uint64_t, std::vector<float>>> all() const;

  std::size_t entries() const;

 private:
  mutable std::mutex mutex_;
  distrib::CheckpointJournal journal_;
  bool warned_ = false;
};

}  // namespace dfg::shard
