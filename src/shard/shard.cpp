#include "shard/shard.hpp"

#include <chrono>
#include <utility>

#include "vcl/catalog.hpp"

namespace dfg::shard {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* health_name(ShardHealth h) {
  switch (h) {
    case ShardHealth::healthy: return "healthy";
    case ShardHealth::suspect: return "suspect";
    case ShardHealth::draining: return "draining";
    case ShardHealth::restarting: return "restarting";
    case ShardHealth::dead: return "dead";
  }
  return "unknown";
}

Shard::Shard(std::size_t index, std::string cluster, ShardOptions options)
    : index_(index), cluster_(std::move(cluster)),
      options_(std::move(options)) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    build_locked();
  }
  beat();
  proxy_ = std::thread([this] { proxy_loop(); });
  heartbeat_ = std::thread([this] { heartbeat_loop(); });
}

Shard::~Shard() {
  stopping_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
  if (proxy_.joinable()) proxy_.join();
  if (heartbeat_.joinable()) heartbeat_.join();
  // Refuse whatever the proxy never dispatched so no router ever waits on
  // an attempt that cannot progress.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (auto& [work, attempt] : queue_) {
      std::lock_guard<std::mutex> alock(attempt->mutex);
      attempt->refused = true;
    }
    queue_.clear();
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  service_.reset();
  devices_.clear();
}

void Shard::build_locked() {
  devices_.clear();
  const std::size_t count = options_.devices == 0 ? 1 : options_.devices;
  std::vector<vcl::Device*> raw;
  raw.reserve(count);
  for (std::size_t d = 0; d < count; ++d) {
    vcl::DeviceSpec spec = options_.device_spec;
    if (spec.global_mem_bytes == 0) spec = vcl::xeon_x5660_scaled();
    spec.name += "/" + cluster_ + ".s" + std::to_string(index_) + "d" +
                 std::to_string(d);
    auto device = std::make_unique<vcl::Device>(spec);
    // Chaos plans fire on the first incarnation only: a restart models
    // swapping in replacement hardware, which is healthy.
    if (first_build_ && options_.fault_plan.armed()) {
      device->fault().arm(options_.fault_plan);
    }
    raw.push_back(device.get());
    devices_.push_back(std::move(device));
  }
  service_ = std::make_unique<service::EvalService>(raw, options_.service);
}

bool Shard::accepting() const {
  if (poisoned_.load(std::memory_order_relaxed) ||
      stopping_.load(std::memory_order_relaxed)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  return !killed_ && service_ != nullptr;
}

std::shared_ptr<Attempt> Shard::try_submit(ShardWork work) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (killed_ || poisoned_.load(std::memory_order_relaxed) ||
      stopping_.load(std::memory_order_relaxed) || service_ == nullptr) {
    return nullptr;
  }
  auto attempt = std::make_shared<Attempt>();
  attempt->shard = index_;
  const auto warm = warm_.find(work.digest);
  if (warm != warm_.end()) {
    attempt->warm = true;
    attempt->warm_result = warm->second;
    return attempt;
  }
  attempt->counted = true;
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> qlock(queue_mutex_);
    queue_.emplace_back(std::move(work), attempt);
  }
  queue_cv_.notify_all();
  return attempt;
}

void Shard::note_resolved() {
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
}

void Shard::note_failure(const std::string& error) {
  // DeviceLost is sticky on the device: once the router sees one, every
  // later evaluation there fails too — go silent so the supervisor drains
  // and restarts us. Transient failures (kernel errors, rejections) are
  // the router's retry problem, not a health event.
  if (error.find("' lost;") != std::string::npos) {
    poisoned_.store(true, std::memory_order_relaxed);
  }
}

void Shard::kill() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  killed_ = true;
}

void Shard::restart(
    std::vector<std::pair<std::uint64_t, std::vector<float>>> warm) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  // Drains in-flight inner work (tickets resolve — fast on a lost device),
  // then replaces service and devices outright.
  service_.reset();
  first_build_ = false;
  build_locked();
  warm_.clear();
  for (auto& [digest, values] : warm) {
    auto report = std::make_shared<EvaluationReport>();
    report->elements = values.size();
    report->values = std::move(values);
    report->strategy = "journal";
    warm_[digest] = std::move(report);
  }
  killed_ = false;
  poisoned_.store(false, std::memory_order_relaxed);
  restarts_.fetch_add(1, std::memory_order_relaxed);
  beat();
}

std::size_t Shard::warm_entries() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return warm_.size();
}

std::size_t Shard::device_count() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return devices_.size();
}

service::ServiceSnapshot Shard::service_snapshot() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (service_ == nullptr) return {};
  return service_->snapshot();
}

void Shard::beat() { last_beat_ns_.store(now_ns(), std::memory_order_relaxed); }

void Shard::proxy_loop() {
  for (;;) {
    std::pair<ShardWork, std::shared_ptr<Attempt>> item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    if (options_.synthetic_delay_seconds > 0.0) {
      // Straggler injection: slow this shard's intake without holding any
      // lock the router needs. Interruptible so teardown stays fast.
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait_for(
          lock,
          std::chrono::duration<double>(options_.synthetic_delay_seconds),
          [&] { return stopping_.load(std::memory_order_relaxed); });
    }
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto& [work, attempt] = item;
    std::lock_guard<std::mutex> alock(attempt->mutex);
    if (killed_ || poisoned_.load(std::memory_order_relaxed) ||
        stopping_.load(std::memory_order_relaxed) || service_ == nullptr) {
      attempt->refused = true;
      continue;
    }
    try {
      attempt->ticket = service_->submit(std::move(work.request));
      attempt->ticketed = true;
    } catch (const std::exception&) {
      attempt->refused = true;
    }
  }
}

void Shard::heartbeat_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (!killed_ && !poisoned_.load(std::memory_order_relaxed) &&
          service_ != nullptr) {
        beat();
      }
    }
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_cv_.wait_for(
        lock,
        std::chrono::duration<double>(options_.heartbeat_interval_seconds),
        [&] { return stopping_.load(std::memory_order_relaxed); });
  }
}

}  // namespace dfg::shard
