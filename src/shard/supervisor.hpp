// Shard layer: heartbeat-deadline shard supervision.
//
// The supervisor turns shard silence into routing decisions. Each shard
// heartbeats on a fixed interval while willing to take work; the
// supervisor applies the watchdog's deadline discipline to those beats —
// a beat overdue by deadline_factor × interval is a miss:
//
//   healthy ──(1 deadline)──▶ suspect ──(2 deadlines)──▶ draining
//      ▲  ◀──(beat seen)────────┘                           │
//      │                                   (outstanding==0) │
//      └─────────── restarting ◀─────────────────────────────┘
//                        (auto_restart off: draining ▶ dead)
//
// suspect still routes — a late beat is degradation, not an outage, and
// rerouting on the first miss would flap. draining stops routing (the
// ring moves the shard's keyed range to its successor) and waits for the
// router to observe every outstanding attempt, then restart() replaces
// the shard's service and devices and re-warms its result cache from the
// ResultJournal. Health states are atomics: the router reads routable()
// on every admission without taking any supervisor lock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "shard/journal.hpp"
#include "shard/shard.hpp"

namespace dfg::shard {

struct SupervisorOptions {
  double heartbeat_interval_seconds = 0.002;
  /// Beat deadline = factor × interval — the same deadline discipline the
  /// device watchdog applies to commands (DFGEN_DEADLINE_FACTOR's role,
  /// applied to liveness).
  double deadline_factor = 8.0;
  double poll_interval_seconds = 0.001;
  /// Restart drained shards (re-warmed from the journal); off, a drained
  /// shard decays to dead and stays out of the ring.
  bool auto_restart = true;
};

class ShardSupervisor {
 public:
  /// Supervises `shards` (owned by the router, which outlives the
  /// supervisor). Not started until start().
  ShardSupervisor(std::vector<std::unique_ptr<Shard>>& shards,
                  ResultJournal& journal, SupervisorOptions options,
                  std::string cluster);
  ~ShardSupervisor();
  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  void start();
  void stop();

  ShardHealth health(std::size_t shard) const {
    return states_[shard]->load(std::memory_order_relaxed);
  }
  /// Healthy and suspect shards take new work; draining/restarting/dead do
  /// not.
  bool routable(std::size_t shard) const {
    const ShardHealth h = health(shard);
    return h == ShardHealth::healthy || h == ShardHealth::suspect;
  }

  std::uint64_t restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }
  std::uint64_t heartbeat_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void step(std::size_t i, std::uint64_t now_ns);

  std::vector<std::unique_ptr<Shard>>& shards_;
  ResultJournal& journal_;
  const SupervisorOptions options_;
  const std::string cluster_;

  std::vector<std::unique_ptr<std::atomic<ShardHealth>>> states_;
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> misses_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace dfg::shard
