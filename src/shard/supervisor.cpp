#include "shard/supervisor.hpp"

#include <chrono>

#include "obs/metrics.hpp"

namespace dfg::shard {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardSupervisor::ShardSupervisor(
    std::vector<std::unique_ptr<Shard>>& shards, ResultJournal& journal,
    SupervisorOptions options, std::string cluster)
    : shards_(shards), journal_(journal), options_(options),
      cluster_(std::move(cluster)) {
  states_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    states_.push_back(
        std::make_unique<std::atomic<ShardHealth>>(ShardHealth::healthy));
  }
}

ShardSupervisor::~ShardSupervisor() { stop(); }

void ShardSupervisor::start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { loop(); });
}

void ShardSupervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ShardSupervisor::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(
        lock, std::chrono::duration<double>(options_.poll_interval_seconds),
        [&] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    const std::uint64_t now = now_ns();
    for (std::size_t i = 0; i < shards_.size(); ++i) step(i, now);
    lock.lock();
  }
}

void ShardSupervisor::step(std::size_t i, std::uint64_t now) {
  Shard& shard = *shards_[i];
  std::atomic<ShardHealth>& state = *states_[i];
  const auto deadline_ns = static_cast<std::uint64_t>(
      options_.deadline_factor * options_.heartbeat_interval_seconds * 1e9);
  const std::uint64_t beat = shard.last_heartbeat_ns();
  const std::uint64_t age = now > beat ? now - beat : 0;

  switch (state.load(std::memory_order_relaxed)) {
    case ShardHealth::healthy:
      if (age > deadline_ns) {
        state.store(ShardHealth::suspect, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        obs::MetricsRegistry& reg = obs::metrics();
        reg.add(reg.counter("dfgen_shard_heartbeat_misses_total",
                            {{"cluster", cluster_},
                             {"shard", std::to_string(i)}}));
      }
      break;
    case ShardHealth::suspect:
      if (age <= deadline_ns) {
        // The beat came back: a slow shard, not a dead one.
        state.store(ShardHealth::healthy, std::memory_order_relaxed);
      } else if (age > 2 * deadline_ns) {
        state.store(ShardHealth::draining, std::memory_order_relaxed);
      }
      break;
    case ShardHealth::draining:
      // The ring already routes around us; wait until the router has
      // observed every outstanding attempt before tearing anything down.
      if (shard.outstanding() != 0) break;
      if (!options_.auto_restart) {
        state.store(ShardHealth::dead, std::memory_order_relaxed);
        break;
      }
      state.store(ShardHealth::restarting, std::memory_order_relaxed);
      shard.restart(journal_.all());
      restarts_.fetch_add(1, std::memory_order_relaxed);
      {
        obs::MetricsRegistry& reg = obs::metrics();
        reg.add(reg.counter("dfgen_shard_restarts_total",
                            {{"cluster", cluster_},
                             {"shard", std::to_string(i)}}));
      }
      state.store(ShardHealth::healthy, std::memory_order_relaxed);
      break;
    case ShardHealth::restarting:
      // Transitional; restart() runs synchronously in this thread, so the
      // state only reads restarting from other threads mid-restart.
      break;
    case ShardHealth::dead:
      // Terminal without auto-restart; an externally restarted shard that
      // beats again is welcomed back.
      if (age <= deadline_ns) {
        state.store(ShardHealth::healthy, std::memory_order_relaxed);
      }
      break;
  }
}

}  // namespace dfg::shard
