#include "shard/journal.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace dfg::shard {

ResultJournal::ResultJournal(const std::string& dir,
                             std::uint64_t cluster_key)
    : journal_(dir, cluster_key) {}

bool ResultJournal::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return journal_.enabled();
}

void ResultJournal::record(std::uint64_t digest,
                           std::span<const float> values) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!journal_.enabled()) return;
  try {
    journal_.append(static_cast<std::size_t>(digest), values);
  } catch (const Error& e) {
    if (!warned_) {
      warned_ = true;
      std::fprintf(stderr, "dfgen: result journal write failed: %s\n",
                   e.what());
    }
  }
}

std::optional<std::vector<float>> ResultJournal::lookup(
    std::uint64_t digest) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto block = static_cast<std::size_t>(digest);
  if (!journal_.enabled() || !journal_.has(block)) return std::nullopt;
  try {
    return journal_.load(block);
  } catch (const Error&) {
    return std::nullopt;  // invalidated on disk since indexing: a miss
  }
}

std::vector<std::pair<std::uint64_t, std::vector<float>>>
ResultJournal::all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint64_t, std::vector<float>>> out;
  if (!journal_.enabled()) return out;
  for (const std::size_t block : journal_.blocks()) {
    try {
      out.emplace_back(static_cast<std::uint64_t>(block),
                       journal_.load(block));
    } catch (const Error&) {
      // Entry rotted since indexing; skip rather than fail the re-warm.
    }
  }
  return out;
}

std::size_t ResultJournal::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return journal_.journaled_count();
}

}  // namespace dfg::shard
