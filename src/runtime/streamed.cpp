// Streamed-fusion execution strategy: the paper's first future-work item
// ("we plan to investigate the runtime performance of our execution
// strategies in a streaming context").
//
// Generates the same fused kernel as the fusion strategy but executes it
// over z-plane slabs whose working set fits a configurable device budget,
// re-uploading each slab's sub-ranges (plus gradient halo planes) and
// reading each slab's interior back. Device memory becomes O(chunk) instead
// of O(problem), so expressions whose fusion working set exceeds the device
// still run — at the price of extra transfers and dispatches. Interior
// results are bit-identical to single-kernel fusion.
#include <algorithm>
#include <memory>

#include "kernels/generator.hpp"
#include "kernels/program_cache.hpp"
#include "runtime/slab.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"

namespace dfg::runtime {

StreamedFusionStrategy::StreamedFusionStrategy(std::size_t max_chunk_cells)
    : max_chunk_cells_(max_chunk_cells) {}

std::size_t StreamedFusionStrategy::pick_chunk_planes(
    const SlabPlan& plan, const kernels::Program& program,
    vcl::Device& device) const {
  std::size_t budget_cells;
  if (max_chunk_cells_ != 0) {
    budget_cells = max_chunk_cells_;
  } else {
    // Auto: target half the device's free memory for the slab working set
    // (inputs + output), leaving room for the host's other buffers. The
    // effective headroom respects an injected synthetic capacity, so a
    // degraded run sizes its chunks to the capacity that actually binds.
    const std::size_t budget_bytes = device.effective_available() / 2;
    const std::size_t bytes_per_cell =
        (plan.slabbed_params + program.out_stride()) * sizeof(float);
    budget_cells = budget_bytes / std::max<std::size_t>(bytes_per_cell, 1);
  }
  std::size_t planes = budget_cells / std::max<std::size_t>(plan.plane_cells, 1);
  // The slab adds halo planes on each side; keep at least one interior
  // plane per chunk.
  if (planes > 2 * plan.halo) {
    planes -= 2 * plan.halo;
  } else {
    planes = 1;
  }
  return std::min(std::max<std::size_t>(planes, 1), plan.total_planes);
}

std::vector<float> StreamedFusionStrategy::execute(
    const dataflow::Network& network, const FieldBindings& bindings,
    std::size_t elements, vcl::Device& device, vcl::ProfilingLog& log) const {
  const std::shared_ptr<const kernels::Program> program_ptr =
      kernels::ProgramCache::instance().fused_single(network);
  const kernels::Program& program = *program_ptr;
  const SlabPlan plan = make_slab_plan(program, bindings, elements);
  const std::vector<SlabParam> params =
      resolve_slab_params(program, bindings);

  std::vector<float> result(elements, 0.0f);
  const std::size_t chunk_planes = pick_chunk_planes(plan, program, device);
  for (std::size_t begin = 0; begin < plan.total_planes;
       begin += chunk_planes) {
    const std::size_t end =
        std::min(plan.total_planes, begin + chunk_planes);
    run_fused_slab(program, params, plan, begin, end, device, log, result);
  }
  return result;
}

}  // namespace dfg::runtime
