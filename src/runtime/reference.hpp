// Runtime layer: hand-written reference kernels.
//
// The paper compares its strategies against reference OpenCL kernels
// "written to directly compute the desired expression", with the same
// input/output transfer pattern as fusion but fewer memory fetches and
// floating point operations (e.g. the Q-criterion reference exploits the
// symmetry S_ij = S_ji instead of evaluating every tensor entry the way
// the user-level expression spells it out).
#pragma once

#include <cstddef>
#include <vector>

#include "kernels/program.hpp"
#include "runtime/bindings.hpp"
#include "vcl/device.hpp"
#include "vcl/profiling.hpp"

namespace dfg::runtime {

/// Reference kernel for velocity magnitude: sqrt(u*u + v*v + w*w).
/// Parameters: u, v, w.
kernels::Program reference_velocity_magnitude();

/// Reference kernel for vorticity magnitude |curl(v)|.
/// Parameters: u, v, w, dims, x, y, z.
kernels::Program reference_vorticity_magnitude();

/// Reference kernel for the Q-criterion, algebraically reduced to
/// Q = 0.5 * (||Omega||^2 - ||S||^2) using tensor symmetry.
/// Parameters: u, v, w, dims, x, y, z.
kernels::Program reference_q_criterion();

/// Executes a reference kernel with the fusion transfer pattern: upload
/// each parameter once, one dispatch, one readback.
std::vector<float> run_reference(const kernels::Program& program,
                                 const FieldBindings& bindings,
                                 std::size_t elements, vcl::Device& device,
                                 vcl::ProfilingLog& log);

}  // namespace dfg::runtime
