// Runtime layer: execution strategies.
//
// The paper's §III-C: a strategy controls data movement and how the
// per-primitive kernels are composed to compute a network's result. Three
// are provided — roundtrip, staged and fusion — all consuming the same
// primitive library; adding a strategy means adding a class here, never
// touching a kernel.
//
//  * roundtrip — one kernel per filter; every kernel-argument occurrence is
//    uploaded, every result downloaded, so intermediates live in host
//    memory. Decompose happens on the host (array slicing) and constants
//    are materialised host-side. Slowest, but the least device memory: its
//    footprint is the largest single kernel's working set.
//  * staged — one kernel per filter with intermediates staged in device
//    global memory; unique inputs upload once, one final download.
//    Decompose and constant materialisation become kernels. Fastest per
//    byte moved, but the largest device footprint (bounded by reference
//    counting, which releases intermediates after their last consumer).
//  * fusion — the dynamic kernel generator fuses the whole network into one
//    kernel whose intermediates live in registers; unique inputs upload
//    once, one kernel, one download.
//
// A fourth strategy implements the paper's future work:
//
//  * streamed — the fused kernel executed over z-plane slabs sized to a
//    device budget (gradient halos included), bounding device memory at
//    O(chunk) so data sets larger than the device still run.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dataflow/network.hpp"
#include "kernels/program.hpp"
#include "kernels/vm.hpp"
#include "runtime/bindings.hpp"
#include "vcl/profiling.hpp"
#include "vcl/queue.hpp"

namespace dfg::runtime {

enum class StrategyKind { roundtrip, staged, fusion, streamed };

const char* strategy_name(StrategyKind kind);

class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual StrategyKind kind() const = 0;
  const char* name() const { return strategy_name(kind()); }

  /// Executes the network over `elements` output cells, pulling inputs from
  /// the bindings and producing the derived field on the host. All device
  /// traffic goes through `device` and is recorded in `log`. Throws
  /// DeviceOutOfMemory when the strategy's working set exceeds the device
  /// (the paper's failed GPU test cases), NetworkError on unbound fields.
  virtual std::vector<float> execute(const dataflow::Network& network,
                                     const FieldBindings& bindings,
                                     std::size_t elements, vcl::Device& device,
                                     vcl::ProfilingLog& log) const = 0;
};

/// `streamed_chunk_cells` applies to the streamed strategy only: the
/// target cells per chunk, 0 meaning auto-size from the device's free
/// memory.
std::unique_ptr<Strategy> make_strategy(StrategyKind kind,
                                        std::size_t streamed_chunk_cells = 0);

class RoundtripStrategy final : public Strategy {
 public:
  StrategyKind kind() const override { return StrategyKind::roundtrip; }
  std::vector<float> execute(const dataflow::Network& network,
                             const FieldBindings& bindings,
                             std::size_t elements, vcl::Device& device,
                             vcl::ProfilingLog& log) const override;
};

class StagedStrategy final : public Strategy {
 public:
  StrategyKind kind() const override { return StrategyKind::staged; }
  std::vector<float> execute(const dataflow::Network& network,
                             const FieldBindings& bindings,
                             std::size_t elements, vcl::Device& device,
                             vcl::ProfilingLog& log) const override;
};

class FusionStrategy final : public Strategy {
 public:
  StrategyKind kind() const override { return StrategyKind::fusion; }
  std::vector<float> execute(const dataflow::Network& network,
                             const FieldBindings& bindings,
                             std::size_t elements, vcl::Device& device,
                             vcl::ProfilingLog& log) const override;
};

struct SlabPlan;

class StreamedFusionStrategy final : public Strategy {
 public:
  /// max_chunk_cells = 0 auto-sizes chunks to half the device's free
  /// memory at execution time.
  explicit StreamedFusionStrategy(std::size_t max_chunk_cells = 0);

  StrategyKind kind() const override { return StrategyKind::streamed; }
  std::vector<float> execute(const dataflow::Network& network,
                             const FieldBindings& bindings,
                             std::size_t elements, vcl::Device& device,
                             vcl::ProfilingLog& log) const override;

 private:
  std::size_t pick_chunk_planes(const SlabPlan& plan,
                                const kernels::Program& program,
                                vcl::Device& device) const;

  std::size_t max_chunk_cells_;
};

/// Shared helper: dispatches `program` over `elements` items through the
/// queue, with the VM as the kernel body. `inputs` views device buffers;
/// `out` must hold elements * program.out_stride() floats.
void launch_program(vcl::CommandQueue& queue, const kernels::Program& program,
                    std::vector<kernels::BufferBinding> inputs,
                    std::span<float> out, std::size_t elements);

/// One kernel input staged on the device: either a transient buffer owned
/// by the caller or a view of a pool-resident buffer (vcl::ResidentPool).
/// `binding` is valid either way; exactly one of `owned` / `resident` is
/// set. Movable — `binding` stays valid across moves (buffer storage does
/// not relocate).
struct StagedInput {
  kernels::BufferBinding binding{};
  vcl::Buffer owned;
  const vcl::Buffer* resident = nullptr;
};

/// Stages `host` on the queue's device under `label`. When `poolable` and
/// the device's resident pool is enabled, the pool is consulted first — a
/// hit eliminates the transfer entirely, a miss uploads and leaves the
/// buffer resident. Otherwise (and always when the pool is disabled, the
/// default) this is exactly the cold path: allocate + one profiled write.
/// Only bindings-backed field arrays may pass poolable = true; transient
/// host intermediates must not, so a freed-and-reused host address can
/// never alias a live pool entry. `generation_key` follows
/// ResidentPool::acquire (slab sub-ranges pass the base array).
StagedInput stage_input(vcl::CommandQueue& queue, std::span<const float> host,
                        const std::string& label, bool poolable = true,
                        const void* generation_key = nullptr);

}  // namespace dfg::runtime
