#include "runtime/fallback.hpp"

#include <utility>

#include "support/error.hpp"

namespace dfg::runtime {

namespace {

constexpr std::size_t kLadderLength =
    sizeof(kMemoryLadder) / sizeof(kMemoryLadder[0]);

}  // namespace

std::size_t ladder_position(StrategyKind kind) {
  for (std::size_t i = 0; i < kLadderLength; ++i) {
    if (kMemoryLadder[i] == kind) return i;
  }
  throw Error("strategy kind is not on the memory ladder");
}

FallbackOutcome execute_with_fallback(const dataflow::Network& network,
                                      const FieldBindings& bindings,
                                      std::size_t elements,
                                      vcl::Device& device,
                                      vcl::ProfilingLog& log,
                                      StrategyKind requested,
                                      const FallbackPolicy& policy,
                                      std::size_t streamed_chunk_cells) {
  device.set_retry_policy(policy.retry);
  device.set_watchdog_factor(policy.deadline_factor);
  FallbackOutcome outcome;
  for (std::size_t pos = ladder_position(requested); pos < kLadderLength;
       ++pos) {
    const StrategyKind kind = kMemoryLadder[pos];
    const bool last_rung = pos + 1 >= kLadderLength;
    const auto degrade = [&](const char* category, const std::string& what) {
      outcome.degradations.push_back(
          {kind, kMemoryLadder[pos + 1], std::string(category) + ": " + what});
    };
    try {
      const auto strategy = make_strategy(kind, streamed_chunk_cells);
      // A throw below unwinds the strategy's RAII buffers, releasing all
      // partially-written device state before the next rung re-plans.
      outcome.values =
          strategy->execute(network, bindings, elements, device, log);
      outcome.executed = kind;
      return outcome;
    } catch (const DeviceOutOfMemory& err) {
      if (!policy.enabled || last_rung) throw;
      degrade("device out of memory", err.what());
    } catch (const DeviceTimeout& err) {
      // DeviceTimeout derives from Error, not DeviceError; the watchdog's
      // bounded retries are already spent. A lower rung moves less data
      // per command, so a marginal device may still finish it.
      if (!policy.enabled || !policy.degrade_on_timeout || last_rung) {
        throw;
      }
      degrade("command deadline exceeded", err.what());
    } catch (const DeviceError& err) {
      // The queue's bounded retries are already spent by the time the
      // error reaches this layer.
      if (!policy.enabled || !policy.degrade_on_transient || last_rung) {
        throw;
      }
      degrade("transient device error", err.what());
    } catch (const KernelError& err) {
      if (!policy.enabled || kind == requested || last_rung) throw;
      degrade("strategy unsupported for this network", err.what());
    }
  }
  throw Error("fallback ladder exhausted");  // unreachable
}

}  // namespace dfg::runtime
