#include "runtime/fallback.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/error.hpp"

namespace dfg::runtime {

namespace {

constexpr std::size_t kLadderLength =
    sizeof(kMemoryLadder) / sizeof(kMemoryLadder[0]);

/// Records one finished rung attempt: the per-strategy simulated-latency
/// histogram, bucketed by how the attempt ended ("ok", "degraded" — the
/// ladder moved on — or "error" — the exception escaped the ladder).
void observe_attempt(const char* strategy, const char* outcome,
                     double sim_delta_seconds) {
  obs::MetricsRegistry& reg = obs::metrics();
  reg.observe(reg.histogram("dfgen_strategy_sim_nanos",
                            {{"strategy", strategy}, {"outcome", outcome}}),
              obs::sim_nanos(sim_delta_seconds));
}

}  // namespace

std::size_t ladder_position(StrategyKind kind) {
  for (std::size_t i = 0; i < kLadderLength; ++i) {
    if (kMemoryLadder[i] == kind) return i;
  }
  throw Error("strategy kind is not on the memory ladder");
}

FallbackOutcome execute_with_fallback(const dataflow::Network& network,
                                      const FieldBindings& bindings,
                                      std::size_t elements,
                                      vcl::Device& device,
                                      vcl::ProfilingLog& log,
                                      StrategyKind requested,
                                      const FallbackPolicy& policy,
                                      std::size_t streamed_chunk_cells) {
  device.set_retry_policy(policy.retry);
  device.set_watchdog_factor(policy.deadline_factor);
  obs::MetricsRegistry& reg = obs::metrics();
  FallbackOutcome outcome;
  for (std::size_t pos = ladder_position(requested); pos < kLadderLength;
       ++pos) {
    const StrategyKind kind = kMemoryLadder[pos];
    const char* kind_name = strategy_name(kind);
    const bool last_rung = pos + 1 >= kLadderLength;
    const double sim_before = log.total_sim_seconds();
    reg.add(reg.counter("dfgen_strategy_attempts_total",
                        {{"strategy", kind_name}}));
    obs::Span span(std::string("strategy:") + kind_name, "attempt");
    const auto finish_attempt = [&](const char* result) {
      const double sim_delta = log.total_sim_seconds() - sim_before;
      span.add_sim_seconds(sim_delta);
      observe_attempt(kind_name, result, sim_delta);
    };
    const auto degrade = [&](const char* category, const std::string& what) {
      reg.add(reg.counter(
          "dfgen_strategy_degradations_total",
          {{"from", kind_name}, {"to", strategy_name(kMemoryLadder[pos + 1])}}));
      finish_attempt("degraded");
      outcome.degradations.push_back(
          {kind, kMemoryLadder[pos + 1], std::string(category) + ": " + what});
    };
    try {
      const auto strategy = make_strategy(kind, streamed_chunk_cells);
      // A throw below unwinds the strategy's RAII buffers, releasing all
      // partially-written device state before the next rung re-plans.
      outcome.values =
          strategy->execute(network, bindings, elements, device, log);
      outcome.executed = kind;
      finish_attempt("ok");
      return outcome;
    } catch (const DeviceOutOfMemory& err) {
      if (!policy.enabled || last_rung) {
        finish_attempt("error");
        throw;
      }
      degrade("device out of memory", err.what());
    } catch (const DeviceTimeout& err) {
      // DeviceTimeout derives from Error, not DeviceError; the watchdog's
      // bounded retries are already spent. A lower rung moves less data
      // per command, so a marginal device may still finish it.
      if (!policy.enabled || !policy.degrade_on_timeout || last_rung) {
        finish_attempt("error");
        throw;
      }
      degrade("command deadline exceeded", err.what());
    } catch (const DeviceError& err) {
      // The queue's bounded retries are already spent by the time the
      // error reaches this layer.
      if (!policy.enabled || !policy.degrade_on_transient || last_rung) {
        finish_attempt("error");
        throw;
      }
      degrade("transient device error", err.what());
    } catch (const KernelError& err) {
      if (!policy.enabled || kind == requested || last_rung) {
        finish_attempt("error");
        throw;
      }
      degrade("strategy unsupported for this network", err.what());
    }
  }
  throw Error("fallback ladder exhausted");  // unreachable
}

}  // namespace dfg::runtime
