// Roundtrip execution strategy (paper §III-C1).
//
// One kernel dispatch per filter, with *every* kernel argument uploaded at
// dispatch time (an argument used twice is written twice) and every result
// transferred straight back to the host. Intermediates therefore live in
// host memory and the device only ever holds one kernel's working set —
// the least-constrained strategy, at the cost of maximal PCIe traffic.
// Decompose runs on the host as array slicing, and constants are
// materialised as host arrays uploaded per use (both per the device-event
// accounting of the paper's Table II).
#include <map>
#include <memory>
#include <vector>

#include "kernels/primitives.hpp"
#include "kernels/program_cache.hpp"
#include "kernels/vm.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"

namespace dfg::runtime {

namespace {

/// A node's value held on the host: either a view of a bound array or an
/// owned intermediate produced by a kernel readback / host-side operation.
struct HostValue {
  std::span<const float> view;
  std::vector<float> owned;
  int components = 1;

  void own(std::vector<float> data, int comps) {
    owned = std::move(data);
    view = owned;
    components = comps;
  }
};

}  // namespace

std::vector<float> RoundtripStrategy::execute(const dataflow::Network& network,
                                              const FieldBindings& bindings,
                                              std::size_t elements,
                                              vcl::Device& device,
                                              vcl::ProfilingLog& log) const {
  vcl::CommandQueue queue(device, log);
  const auto& spec = network.spec();
  std::vector<HostValue> values(spec.nodes().size());

  for (const int id : network.topo_order()) {
    const dataflow::SpecNode& node = spec.node(id);
    HostValue& value = values[id];
    switch (node.type) {
      case dataflow::NodeType::field_source:
        value.view = bindings.get(node.field_name);
        value.components = 1;
        continue;
      case dataflow::NodeType::constant:
        // Constant source filters materialise a problem-sized host array;
        // it is uploaded as a buffer argument by each consuming kernel.
        value.own(std::vector<float>(
                      elements, static_cast<float>(node.const_value)),
                  1);
        continue;
      case dataflow::NodeType::filter:
        break;
    }

    if (node.kind == "decompose") {
      // Host-side slicing of the transferred vector-valued array: roundtrip
      // already holds the intermediate on the host, so no kernel is needed.
      const HostValue& in = values[node.inputs[0]];
      std::vector<float> sliced(elements);
      for (std::size_t i = 0; i < elements; ++i) {
        sliced[i] = in.view[i * 4 + static_cast<std::size_t>(node.component)];
      }
      value.own(std::move(sliced), 1);
      continue;
    }

    const std::shared_ptr<const kernels::Program> program_ptr =
        kernels::ProgramCache::instance().standalone(node.kind,
                                                     node.component);
    const kernels::Program& program = *program_ptr;

    // Upload one buffer per argument occurrence. Only bound field arrays
    // are pool-eligible: host intermediates (owned vectors above) die at
    // the end of this evaluation and must stay transient.
    std::vector<StagedInput> arg_buffers;
    std::vector<kernels::BufferBinding> arg_bindings;
    arg_buffers.reserve(node.inputs.size());
    arg_bindings.reserve(node.inputs.size());
    for (std::size_t a = 0; a < node.inputs.size(); ++a) {
      const HostValue& in = values[node.inputs[a]];
      const bool poolable = spec.node(node.inputs[a]).type ==
                            dataflow::NodeType::field_source;
      StagedInput staged =
          stage_input(queue, in.view,
                      node.kind + ":" + spec.node(node.inputs[a]).label,
                      poolable);
      arg_bindings.push_back(staged.binding);
      arg_buffers.push_back(std::move(staged));
    }

    vcl::Buffer out_buffer = device.allocate(elements * program.out_stride());
    launch_program(queue, program, std::move(arg_bindings),
                   out_buffer.device_view(), elements);

    std::vector<float> host_out(out_buffer.size());
    queue.read(out_buffer, host_out, node.label);
    value.own(std::move(host_out), program.out_components());
    // arg_buffers and out_buffer release here: the device never holds more
    // than one filter's working set.
  }

  const HostValue& out = values[spec.output_id()];
  return std::vector<float>(out.view.begin(),
                            out.view.begin() + static_cast<long>(elements));
}

}  // namespace dfg::runtime
