// Runtime layer: multi-device single-node execution.
//
// The paper's second future-work item: "strategies that use multiple
// target devices on a single node". The fused kernel's NDRange is split
// into contiguous z-plane parts, one per device; each device receives its
// part's slab (with gradient halo planes), executes one fused kernel, and
// returns its interior planes. Because every part's interior sees exactly
// the operands a whole-grid run sees, the assembled result is bit-identical
// to single-device fusion.
//
// Devices execute in sequence on the host (the devices are virtual), but
// each has its own profiling log, so the report exposes both the aggregate
// device time and the critical path — the slowest device — which is what a
// truly concurrent dispatch would cost.
#pragma once

#include <cstddef>
#include <vector>

#include "dataflow/network.hpp"
#include "runtime/bindings.hpp"
#include "vcl/device.hpp"
#include "vcl/profiling.hpp"

namespace dfg::runtime {

struct MultiDeviceReport {
  std::vector<float> values;
  std::size_t devices_used = 0;
  /// Simulated seconds per device, index-aligned with the device list.
  std::vector<double> device_sim_seconds;
  double critical_path_sim_seconds = 0.0;
  double aggregate_sim_seconds = 0.0;
};

/// Executes the network's fused kernel across `devices`, splitting planes
/// evenly. Each log records its device's traffic. Throws NetworkError if
/// `devices` is empty or the logs span has a different length.
MultiDeviceReport execute_multi_device_fusion(
    const dataflow::Network& network, const FieldBindings& bindings,
    std::size_t elements, std::vector<vcl::Device*> devices,
    std::vector<vcl::ProfilingLog>& logs);

}  // namespace dfg::runtime
