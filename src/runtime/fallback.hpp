// Runtime layer: automatic strategy degradation.
//
// The paper's §V-D concludes that hosts must "select from multiple
// execution strategies and target devices" under memory constraints; its
// own GPU evaluation simply aborts the cells that do not fit. This module
// closes that gap at runtime: when a strategy fails, the engine degrades
// along the paper-ordered memory ladder
//
//     fusion → streamed → staged → roundtrip
//
// re-planning the evaluation on the next rung. Each rung trades simulated
// speed for a different (ultimately host-resident) memory discipline, so
// the final rung — roundtrip, whose device footprint is one kernel's
// working set — succeeds whenever any strategy can. The ladder is reactive:
// a rung's partially-written device state unwinds via buffer RAII before
// the next rung re-plans, so degradation is safe mid-execution, not just at
// admission time.
//
// Failure handling per error type:
//   * DeviceOutOfMemory — degrade to the next rung (the working set was
//     too big; lower rungs hold less on the device).
//   * DeviceError (transient) — the CommandQueue already retried the
//     failed command with bounded, seeded backoff; if the error still
//     escapes, degrade.
//   * DeviceTimeout — the queue's watchdog abandoned the command at its
//     deadline and already retried it; if it still escapes (a persistent
//     slowdown), degrade. The DistributedEngine additionally quarantines
//     the device and re-executes the block elsewhere when the whole
//     ladder times out.
//   * DataCorruption — propagates. The queue already re-executed the
//     corrupted transfer within its retry budget; corruption that
//     persists is a device problem no cheaper strategy fixes, so the
//     caller (the DistributedEngine) re-runs the block and quarantines
//     the device on repeat.
//   * KernelError on a rung we degraded *into* — the rung is structurally
//     unsupported (e.g. streamed cannot execute gradients of computed
//     values); skip to the next rung. On the rung the caller requested the
//     error propagates unchanged.
//   * DeviceLost — propagates: no rung can run on a lost device. The
//     DistributedEngine recovers above this layer by replacing the device.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dataflow/network.hpp"
#include "runtime/bindings.hpp"
#include "runtime/strategy.hpp"
#include "vcl/device.hpp"
#include "vcl/fault.hpp"
#include "vcl/profiling.hpp"

namespace dfg::runtime {

/// Governs degradation and command retries for one engine / one cluster.
struct FallbackPolicy {
  /// Off by default for the single-device Engine: strict mode preserves
  /// the paper's abort-at-capacity semantics (benchmarks chart the failed
  /// cells). The DistributedEngine defaults it on.
  bool enabled = false;
  /// Degrade to the next rung when a transient fault survives the command
  /// retries; disable to make transient exhaustion fatal.
  bool degrade_on_transient = true;
  /// Degrade to the next rung when a command timeout survives the
  /// watchdog's retries; disable to make timeouts fatal immediately.
  bool degrade_on_timeout = true;
  /// Watchdog deadline: a command charged more than this many times its
  /// cost-model estimate is abandoned with DeviceTimeout. Installed on the
  /// device at execution time (vcl::Device::set_watchdog_factor); <= 0
  /// disables slowdown detection (hangs still time out). Benches override
  /// it from DFGEN_DEADLINE_FACTOR.
  double deadline_factor = 8.0;
  /// Command-level retry behaviour, installed on the device at execution
  /// time and applied by the CommandQueue.
  vcl::RetryPolicy retry;

  /// The resilient preset: degradation on, default retries.
  static FallbackPolicy resilient() {
    FallbackPolicy policy;
    policy.enabled = true;
    return policy;
  }
};

/// One rung transition, with the error text that forced it.
struct DegradationRecord {
  StrategyKind from{};
  StrategyKind to{};
  std::string reason;
};

struct FallbackOutcome {
  std::vector<float> values;
  /// The rung that actually produced `values`.
  StrategyKind executed{};
  std::vector<DegradationRecord> degradations;
};

/// The ladder, in degradation order. Position in this array defines which
/// rungs a requested strategy may degrade to (everything after it).
inline constexpr StrategyKind kMemoryLadder[] = {
    StrategyKind::fusion, StrategyKind::streamed, StrategyKind::staged,
    StrategyKind::roundtrip};

/// Index of `kind` in kMemoryLadder.
std::size_t ladder_position(StrategyKind kind);

/// Executes `network` starting at `requested`, degrading along the ladder
/// per `policy`. With the policy disabled this is exactly
/// make_strategy(requested)->execute(...): same command stream, same
/// errors. Throws the last rung's error when no rung succeeds.
FallbackOutcome execute_with_fallback(const dataflow::Network& network,
                                      const FieldBindings& bindings,
                                      std::size_t elements,
                                      vcl::Device& device,
                                      vcl::ProfilingLog& log,
                                      StrategyKind requested,
                                      const FallbackPolicy& policy,
                                      std::size_t streamed_chunk_cells = 0);

}  // namespace dfg::runtime
