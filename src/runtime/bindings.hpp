// Runtime layer: host field bindings.
//
// The host-interface data contract of the paper's §III-D: the host
// application hands the framework views of its existing arrays (velocity
// components, axis coordinates, dims) keyed by the names the expression
// uses. Arrays are never copied on binding — the framework operates on the
// host's memory in situ; copies happen only as profiled host-to-device
// transfers.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "mesh/mesh.hpp"

namespace dfg::runtime {

class FieldBindings {
 public:
  FieldBindings() = default;
  /// Retires the generation tags of owned arrays (see vcl/resident_pool.hpp):
  /// their heap addresses may be recycled, and a recycled address must never
  /// satisfy a resident-pool lookup keyed on the dead array.
  ~FieldBindings();
  // Move-only: bound views may reference this object's owned arrays.
  FieldBindings(FieldBindings&&) = default;
  FieldBindings& operator=(FieldBindings&&) = default;
  FieldBindings(const FieldBindings&) = delete;
  FieldBindings& operator=(const FieldBindings&) = delete;

  /// Binds (or rebinds) a named host array. The view must stay valid for
  /// the lifetime of evaluations using it.
  void bind(const std::string& name, std::span<const float> values);

  /// Binds a named array whose storage the bindings own (used for derived
  /// arrays like mesh coordinates).
  void bind_owned(const std::string& name, std::vector<float> values);

  /// Binds the mesh-provided arrays a gradient expression needs: the
  /// problem-sized cell-center coordinate arrays "x", "y", "z" and the
  /// 3-entry "dims" array. The coordinate arrays are generated from the
  /// mesh and owned by the bindings; the mesh may be discarded afterwards.
  void bind_mesh(const mesh::RectilinearMesh& mesh);

  bool has(const std::string& name) const;

  /// Throws NetworkError naming the missing field.
  std::span<const float> get(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::span<const float>> arrays_;
  /// Backing storage for bind_owned; map nodes keep vector storage stable
  /// under container moves, so the spans in arrays_ stay valid.
  std::map<std::string, std::vector<float>> owned_;
};

}  // namespace dfg::runtime
