#include "runtime/strategy.hpp"

#include <memory>
#include <utility>

#include "kernels/backend.hpp"
#include "kernels/vm.hpp"
#include "support/error.hpp"

namespace dfg::runtime {

const char* strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::roundtrip:
      return "roundtrip";
    case StrategyKind::staged:
      return "staged";
    case StrategyKind::fusion:
      return "fusion";
    case StrategyKind::streamed:
      return "streamed";
  }
  return "?";
}

std::unique_ptr<Strategy> make_strategy(StrategyKind kind,
                                        std::size_t streamed_chunk_cells) {
  switch (kind) {
    case StrategyKind::roundtrip:
      return std::make_unique<RoundtripStrategy>();
    case StrategyKind::staged:
      return std::make_unique<StagedStrategy>();
    case StrategyKind::fusion:
      return std::make_unique<FusionStrategy>();
    case StrategyKind::streamed:
      return std::make_unique<StreamedFusionStrategy>(streamed_chunk_cells);
  }
  throw Error("unknown strategy kind");
}

StagedInput stage_input(vcl::CommandQueue& queue, std::span<const float> host,
                        const std::string& label, bool poolable,
                        const void* generation_key) {
  vcl::Device& device = queue.device();
  StagedInput in;
  if (poolable) {
    if (const vcl::Buffer* res =
            device.resident().acquire(queue, host, label, generation_key)) {
      in.resident = res;
      in.binding =
          kernels::BufferBinding{res->device_view().data(), res->size()};
      return in;
    }
  }
  in.owned = device.allocate(host.size());
  queue.write(in.owned, host, label);
  in.binding =
      kernels::BufferBinding{in.owned.device_view().data(), in.owned.size()};
  return in;
}

void launch_program(vcl::CommandQueue& queue, const kernels::Program& program,
                    std::vector<kernels::BufferBinding> inputs,
                    std::span<float> out, std::size_t elements) {
  // Preparation happens before the launch is enqueued: a jit backend's
  // one-time compile (or its decision to degrade this program to the VM)
  // is charged as its own span, never against the kernel-exec command the
  // watchdog deadlines.
  kernels::ExecutionBackend& backend = queue.device().backend();
  std::shared_ptr<const kernels::CompiledKernel> kernel =
      backend.prepare(program);
  vcl::KernelLaunch launch;
  launch.label = program.name();
  launch.ndrange = elements;
  launch.flops = program.flops_per_item() * elements;
  launch.global_bytes = program.global_bytes_per_item() * elements;
  launch.registers_used = program.max_live_scalar_registers();
  launch.grain = kernels::kTileSize;
  launch.compute_efficiency = backend.compute_efficiency();
  float* out_data = out.data();
  const std::size_t out_elements = out.size();
  launch.body = [&program, kernel = std::move(kernel),
                 bindings = std::move(inputs), out_data,
                 out_elements](std::size_t begin, std::size_t end) {
    kernel->run(program, bindings, out_data, out_elements, begin, end);
  };
  queue.launch(launch);
}

}  // namespace dfg::runtime
