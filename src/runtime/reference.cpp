#include "runtime/reference.hpp"

#include "kernels/vm.hpp"
#include "runtime/strategy.hpp"
#include "vcl/queue.hpp"

namespace dfg::runtime {

namespace {

using kernels::Op;
using kernels::ProgramBuilder;

/// Emits the three velocity-gradient vectors; returns their registers.
struct GradRegs {
  std::uint16_t du, dv, dw;
};

GradRegs emit_velocity_gradients(ProgramBuilder& b, std::uint16_t u,
                                 std::uint16_t v, std::uint16_t w,
                                 std::uint16_t dims, std::uint16_t x,
                                 std::uint16_t y, std::uint16_t z) {
  GradRegs g;
  g.du = b.emit_grad3d(u, dims, x, y, z);
  g.dv = b.emit_grad3d(v, dims, x, y, z);
  g.dw = b.emit_grad3d(w, dims, x, y, z);
  return g;
}

}  // namespace

kernels::Program reference_velocity_magnitude() {
  ProgramBuilder b("ref_velocity_magnitude");
  const std::uint16_t u = b.emit_load_global(b.add_param("u"));
  const std::uint16_t v = b.emit_load_global(b.add_param("v"));
  const std::uint16_t w = b.emit_load_global(b.add_param("w"));
  const std::uint16_t uu = b.emit_binary(Op::mul, u, u);
  const std::uint16_t vv = b.emit_binary(Op::mul, v, v);
  const std::uint16_t ww = b.emit_binary(Op::mul, w, w);
  const std::uint16_t sum =
      b.emit_binary(Op::add, b.emit_binary(Op::add, uu, vv), ww);
  return b.finish(b.emit_unary(Op::sqrt, sum), 1);
}

kernels::Program reference_vorticity_magnitude() {
  ProgramBuilder b("ref_vorticity_magnitude");
  const std::uint16_t u = b.add_param("u");
  const std::uint16_t v = b.add_param("v");
  const std::uint16_t w = b.add_param("w");
  const std::uint16_t dims = b.add_param("dims");
  const std::uint16_t x = b.add_param("x");
  const std::uint16_t y = b.add_param("y");
  const std::uint16_t z = b.add_param("z");
  const GradRegs g = emit_velocity_gradients(b, u, v, w, dims, x, y, z);

  // omega = (dw/dy - dv/dz, du/dz - dw/dx, dv/dx - du/dy)
  const std::uint16_t wx = b.emit_binary(Op::sub, b.emit_component(g.dw, 1),
                                         b.emit_component(g.dv, 2));
  const std::uint16_t wy = b.emit_binary(Op::sub, b.emit_component(g.du, 2),
                                         b.emit_component(g.dw, 0));
  const std::uint16_t wz = b.emit_binary(Op::sub, b.emit_component(g.dv, 0),
                                         b.emit_component(g.du, 1));
  const std::uint16_t sum = b.emit_binary(
      Op::add,
      b.emit_binary(Op::add, b.emit_binary(Op::mul, wx, wx),
                    b.emit_binary(Op::mul, wy, wy)),
      b.emit_binary(Op::mul, wz, wz));
  return b.finish(b.emit_unary(Op::sqrt, sum), 1);
}

kernels::Program reference_q_criterion() {
  ProgramBuilder b("ref_q_criterion");
  const std::uint16_t u = b.add_param("u");
  const std::uint16_t v = b.add_param("v");
  const std::uint16_t w = b.add_param("w");
  const std::uint16_t dims = b.add_param("dims");
  const std::uint16_t x = b.add_param("x");
  const std::uint16_t y = b.add_param("y");
  const std::uint16_t z = b.add_param("z");
  const GradRegs g = emit_velocity_gradients(b, u, v, w, dims, x, y, z);

  // J[r][c] components: row r is the gradient of velocity component r.
  const std::uint16_t j00 = b.emit_component(g.du, 0);
  const std::uint16_t j01 = b.emit_component(g.du, 1);
  const std::uint16_t j02 = b.emit_component(g.du, 2);
  const std::uint16_t j10 = b.emit_component(g.dv, 0);
  const std::uint16_t j11 = b.emit_component(g.dv, 1);
  const std::uint16_t j12 = b.emit_component(g.dv, 2);
  const std::uint16_t j20 = b.emit_component(g.dw, 0);
  const std::uint16_t j21 = b.emit_component(g.dw, 1);
  const std::uint16_t j22 = b.emit_component(g.dw, 2);

  const std::uint16_t half = b.emit_load_const(0.5f);
  const std::uint16_t two = b.emit_load_const(2.0f);

  // Exploit symmetry: only the three upper-triangle entries of S and Omega
  // are computed; diagonal of Omega is zero and diagonal of S equals J's.
  const auto sym = [&](std::uint16_t ab, std::uint16_t ba) {
    return b.emit_binary(Op::mul, half, b.emit_binary(Op::add, ab, ba));
  };
  const auto antisym = [&](std::uint16_t ab, std::uint16_t ba) {
    return b.emit_binary(Op::mul, half, b.emit_binary(Op::sub, ab, ba));
  };
  const std::uint16_t s01 = sym(j01, j10);
  const std::uint16_t s02 = sym(j02, j20);
  const std::uint16_t s12 = sym(j12, j21);
  const std::uint16_t w01 = antisym(j01, j10);
  const std::uint16_t w02 = antisym(j02, j20);
  const std::uint16_t w12 = antisym(j12, j21);

  const auto square = [&](std::uint16_t r) {
    return b.emit_binary(Op::mul, r, r);
  };
  const std::uint16_t diag = b.emit_binary(
      Op::add, b.emit_binary(Op::add, square(j00), square(j11)), square(j22));
  const std::uint16_t off_s = b.emit_binary(
      Op::add, b.emit_binary(Op::add, square(s01), square(s02)), square(s12));
  const std::uint16_t s_norm =
      b.emit_binary(Op::add, diag, b.emit_binary(Op::mul, two, off_s));
  const std::uint16_t off_w = b.emit_binary(
      Op::add, b.emit_binary(Op::add, square(w01), square(w02)), square(w12));
  const std::uint16_t w_norm = b.emit_binary(Op::mul, two, off_w);

  const std::uint16_t q = b.emit_binary(
      Op::mul, half, b.emit_binary(Op::sub, w_norm, s_norm));
  return b.finish(q, 1);
}

std::vector<float> run_reference(const kernels::Program& program,
                                 const FieldBindings& bindings,
                                 std::size_t elements, vcl::Device& device,
                                 vcl::ProfilingLog& log) {
  vcl::CommandQueue queue(device, log);
  std::vector<vcl::Buffer> input_buffers;
  std::vector<kernels::BufferBinding> input_bindings;
  input_buffers.reserve(program.params().size());
  for (const kernels::BufferParam& param : program.params()) {
    const auto view = bindings.get(param.name);
    vcl::Buffer buffer = device.allocate(view.size());
    queue.write(buffer, view, param.name);
    input_bindings.push_back(
        kernels::BufferBinding{buffer.device_view().data(), buffer.size()});
    input_buffers.push_back(std::move(buffer));
  }
  vcl::Buffer out_buffer = device.allocate(elements * program.out_stride());
  launch_program(queue, program, std::move(input_bindings),
                 out_buffer.device_view(), elements);
  std::vector<float> result(out_buffer.size());
  queue.read(out_buffer, result, program.name());
  result.resize(elements);
  return result;
}

}  // namespace dfg::runtime
