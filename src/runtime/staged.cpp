// Staged execution strategy (paper §III-C2).
//
// One kernel per filter, but intermediates never leave the device: unique
// external inputs are uploaded once, results are staged in device global
// memory between kernel invocations, and only the network output is read
// back. Consequences measured by the paper: host-device traffic collapses
// to (unique inputs + 1), kernel count grows — decompose becomes a kernel
// moving intermediate lanes on the device, and each unique constant is
// materialised by one constant-fill kernel — and the device footprint is
// the largest of the three strategies, bounded by reference counting that
// releases each intermediate after its last consumer has run.
#include <memory>
#include <vector>

#include "kernels/primitives.hpp"
#include "kernels/program_cache.hpp"
#include "kernels/vm.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"

namespace dfg::runtime {

std::vector<float> StagedStrategy::execute(const dataflow::Network& network,
                                           const FieldBindings& bindings,
                                           std::size_t elements,
                                           vcl::Device& device,
                                           vcl::ProfilingLog& log) const {
  vcl::CommandQueue queue(device, log);
  const auto& spec = network.spec();
  std::vector<vcl::Buffer> buffers(spec.nodes().size());
  std::vector<int> refs = network.use_counts();

  // Sources are materialised lazily, at their first consumer: each unique
  // external input still uploads exactly once and each unique constant is
  // filled by exactly one kernel, but buffers do not occupy device memory
  // before they are needed (this is what gives the paper's Figure 2 example
  // its staged footprint of 4 arrays rather than 5).
  const auto materialise_source = [&](int id) {
    const dataflow::SpecNode& node = spec.node(id);
    if (node.type == dataflow::NodeType::field_source) {
      const auto view = bindings.get(node.field_name);
      buffers[id] = device.allocate(view.size());
      queue.write(buffers[id], view, node.field_name);
    } else {  // constant
      buffers[id] = device.allocate(elements);
      const std::shared_ptr<const kernels::Program> fill =
          kernels::ProgramCache::instance().standalone(
              "const_fill", 0, static_cast<float>(node.const_value));
      launch_program(queue, *fill, {}, buffers[id].device_view(), elements);
    }
  };

  const auto binding_of = [&](int id) {
    if (!buffers[id].valid()) {
      if (spec.node(id).type == dataflow::NodeType::filter) {
        throw NetworkError("staged execution consumed '" +
                           spec.node(id).label +
                           "' after its buffer was released");
      }
      materialise_source(id);
    }
    return kernels::BufferBinding{buffers[id].device_view().data(),
                                  buffers[id].size()};
  };

  for (const int id : network.topo_order()) {
    const dataflow::SpecNode& node = spec.node(id);
    if (node.type != dataflow::NodeType::filter) continue;

    const std::shared_ptr<const kernels::Program> program =
        kernels::ProgramCache::instance().standalone(node.kind,
                                                     node.component);
    std::vector<kernels::BufferBinding> inputs;
    inputs.reserve(node.inputs.size());
    for (const int in : node.inputs) inputs.push_back(binding_of(in));

    buffers[id] = device.allocate(elements * program->out_stride());
    launch_program(queue, *program, std::move(inputs),
                   buffers[id].device_view(), elements);

    // Reference counting: release intermediates after their last consumer.
    for (const int in : node.inputs) {
      if (--refs[in] == 0) buffers[in].release();
    }
  }

  const int out_id = spec.output_id();
  if (!buffers[out_id].valid()) {
    // The output can be a bare source (e.g. "r = 3.0") that no filter
    // consumed; materialise it now.
    if (spec.node(out_id).type == dataflow::NodeType::filter) {
      throw NetworkError("staged execution lost the output buffer");
    }
    materialise_source(out_id);
  }
  std::vector<float> result(buffers[out_id].size());
  queue.read(buffers[out_id], result, spec.node(out_id).label);
  result.resize(elements);
  return result;
}

}  // namespace dfg::runtime
