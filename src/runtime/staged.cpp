// Staged execution strategy (paper §III-C2).
//
// One kernel per filter, but intermediates never leave the device: unique
// external inputs are uploaded once, results are staged in device global
// memory between kernel invocations, and only the network output is read
// back. Consequences measured by the paper: host-device traffic collapses
// to (unique inputs + 1), kernel count grows — decompose becomes a kernel
// moving intermediate lanes on the device, and each unique constant is
// materialised by one constant-fill kernel — and the device footprint is
// the largest of the three strategies, bounded by reference counting that
// releases each intermediate after its last consumer has run.
#include <memory>
#include <vector>

#include "kernels/primitives.hpp"
#include "kernels/program_cache.hpp"
#include "kernels/vm.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"

namespace dfg::runtime {

std::vector<float> StagedStrategy::execute(const dataflow::Network& network,
                                           const FieldBindings& bindings,
                                           std::size_t elements,
                                           vcl::Device& device,
                                           vcl::ProfilingLog& log) const {
  vcl::CommandQueue queue(device, log);
  const auto& spec = network.spec();
  // A node's device value is either owned (filter outputs, constants) or a
  // view of a pool-resident field upload; exactly one side is set.
  std::vector<vcl::Buffer> buffers(spec.nodes().size());
  std::vector<const vcl::Buffer*> resident(spec.nodes().size(), nullptr);
  std::vector<int> refs = network.use_counts();

  const auto node_buffer = [&](int id) -> const vcl::Buffer& {
    return resident[id] != nullptr ? *resident[id] : buffers[id];
  };
  const auto node_live = [&](int id) {
    return resident[id] != nullptr || buffers[id].valid();
  };

  // Sources are materialised lazily, at their first consumer: each unique
  // external input still uploads exactly once and each unique constant is
  // filled by exactly one kernel, but buffers do not occupy device memory
  // before they are needed (this is what gives the paper's Figure 2 example
  // its staged footprint of 4 arrays rather than 5).
  const auto materialise_source = [&](int id) {
    const dataflow::SpecNode& node = spec.node(id);
    if (node.type == dataflow::NodeType::field_source) {
      const auto view = bindings.get(node.field_name);
      StagedInput staged = stage_input(queue, view, node.field_name);
      if (staged.resident != nullptr) {
        resident[id] = staged.resident;
      } else {
        buffers[id] = std::move(staged.owned);
      }
    } else {  // constant
      buffers[id] = device.allocate(elements);
      const std::shared_ptr<const kernels::Program> fill =
          kernels::ProgramCache::instance().standalone(
              "const_fill", 0, static_cast<float>(node.const_value));
      launch_program(queue, *fill, {}, buffers[id].device_view(), elements);
    }
  };

  const auto binding_of = [&](int id) {
    if (!node_live(id)) {
      if (spec.node(id).type == dataflow::NodeType::filter) {
        throw NetworkError("staged execution consumed '" +
                           spec.node(id).label +
                           "' after its buffer was released");
      }
      materialise_source(id);
    }
    const vcl::Buffer& buffer = node_buffer(id);
    return kernels::BufferBinding{buffer.device_view().data(),
                                  buffer.size()};
  };

  for (const int id : network.topo_order()) {
    const dataflow::SpecNode& node = spec.node(id);
    if (node.type != dataflow::NodeType::filter) continue;

    const std::shared_ptr<const kernels::Program> program =
        kernels::ProgramCache::instance().standalone(node.kind,
                                                     node.component);
    std::vector<kernels::BufferBinding> inputs;
    inputs.reserve(node.inputs.size());
    for (const int in : node.inputs) inputs.push_back(binding_of(in));

    buffers[id] = device.allocate(elements * program->out_stride());
    launch_program(queue, *program, std::move(inputs),
                   buffers[id].device_view(), elements);

    // Reference counting: release intermediates after their last consumer.
    // Dropping a resident view just forgets the pointer — the buffer stays
    // in the pool for the next evaluation; that is the transfer saving.
    for (const int in : node.inputs) {
      if (--refs[in] == 0) {
        buffers[in].release();
        resident[in] = nullptr;
      }
    }
  }

  const int out_id = spec.output_id();
  if (!node_live(out_id)) {
    // The output can be a bare source (e.g. "r = 3.0") that no filter
    // consumed; materialise it now.
    if (spec.node(out_id).type == dataflow::NodeType::filter) {
      throw NetworkError("staged execution lost the output buffer");
    }
    materialise_source(out_id);
  }
  const vcl::Buffer& out_buffer = node_buffer(out_id);
  std::vector<float> result(out_buffer.size());
  queue.read(out_buffer, result, spec.node(out_id).label);
  result.resize(elements);
  return result;
}

}  // namespace dfg::runtime
